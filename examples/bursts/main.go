// Bursts visualizes the §5.2 open question: how bursty are writes and
// dirty victims? It prints burst-length histograms for each benchmark
// and the victim-buffer depth needed to ride out the worst window.
package main

import (
	"fmt"
	"log"

	"cachewrite/internal/burst"
	"cachewrite/internal/cache"
	"cachewrite/internal/textplot"
	"cachewrite/internal/workload"
)

func main() {
	cfg := cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
	for _, name := range workload.PaperOrder() {
		t, err := workload.Generate(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		wr, err := burst.AnalyzeWrites(t, 2, 64)
		if err != nil {
			log.Fatal(err)
		}
		vr, err := burst.AnalyzeVictims(t, cfg, 2, 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(textplot.RenderHistogram(
			fmt.Sprintf("%s — store burst lengths (max %d, peak/avg %.1fx)",
				name, wr.MaxBurst, wr.PeakToAvg()),
			burst.BucketLabels(), wr.Bursts[:], 40))
		fmt.Println(textplot.RenderHistogram(
			fmt.Sprintf("%s — dirty-victim burst lengths (buffer depth needed: %d)",
				name, vr.MaxPending),
			burst.BucketLabels(), vr.Bursts[:], 40))
		fmt.Println()
	}
}
