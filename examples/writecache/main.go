// Writecache sizes the paper's proposed write cache (§3.2) for a
// workload mix: it sweeps entry counts, reports absolute and relative
// write-traffic reduction, and prints the sizing recommendation the
// paper derives (a five-entry write cache sits at the knee of the
// curve).
package main

import (
	"fmt"
	"log"

	"cachewrite/internal/cache"
	"cachewrite/internal/workload"
	"cachewrite/internal/writecache"
)

func main() {
	traces, err := workload.GenerateAll(1)
	if err != nil {
		log.Fatal(err)
	}

	// Reference: how much write traffic a 4KB direct-mapped write-back
	// cache removes on the same traces (Fig 8's baseline).
	var wbRemoved float64
	for _, t := range traces {
		c := cache.MustNew(cache.Config{Size: 4 << 10, LineSize: 16, Assoc: 1,
			WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite})
		c.AccessTrace(t)
		wbRemoved += c.Stats().WritesToDirtyFraction()
	}
	wbRemoved /= float64(len(traces))
	fmt.Printf("4KB write-back cache removes %.1f%% of write traffic on average\n\n", 100*wbRemoved)

	fmt.Printf("%-8s %16s %20s\n", "entries", "writes removed", "relative to 4KB WB")
	best, bestGain := 0, 0.0
	prev := 0.0
	for n := 0; n <= 16; n++ {
		var removed float64
		for _, t := range traces {
			wc, err := writecache.New(writecache.Config{Entries: n, LineSize: 8})
			if err != nil {
				log.Fatal(err)
			}
			wc.Run(t)
			removed += wc.Stats().RemovedFraction()
		}
		removed /= float64(len(traces))
		fmt.Printf("%-8d %15.1f%% %19.1f%%\n", n, 100*removed, 100*removed/wbRemoved)
		// Knee detection: the largest marginal gain past 2 entries marks
		// the region before diminishing returns; track the last entry
		// count whose marginal gain is at least 1 percentage point.
		if gain := removed - prev; n > 0 && gain > 0.01 {
			best, bestGain = n, gain
		}
		prev = removed
	}
	fmt.Printf("\nknee of the curve: ~%d entries (last >=1pp marginal gain %.1fpp);\n", best, 100*bestGain)
	fmt.Println("the paper recommends a five-entry write cache for the same reason.")
}
