// Copyblock reproduces the paper's §4 block-copy argument: "given a
// total bandwidth available for reads and writes, a fetch-on-write
// strategy would have only two-thirds of the performance on large
// block copies as a no-fetch-on-write policy since half of the items
// fetched would be discarded."
//
// The example builds a block-copy reference stream (interleaved source
// reads and destination writes, as memcpy generates), runs it under
// fetch-on-write and write-validate, and derives the effective copy
// bandwidth from the fetch traffic each policy needs.
package main

import (
	"fmt"
	"log"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
)

const (
	copyBytes = 1 << 20 // 1MB copy, far beyond any cache here
	wordSize  = 8
)

func buildCopyTrace() *trace.Trace {
	t := &trace.Trace{Name: "blockcopy"}
	src := uint32(0x0010_0000)
	dst := uint32(0x0800_0000)
	for off := uint32(0); off < copyBytes; off += wordSize {
		t.Append(trace.Event{Addr: src + off, Size: wordSize, Kind: trace.Read, Gap: 1})
		t.Append(trace.Event{Addr: dst + off, Size: wordSize, Kind: trace.Write, Gap: 1})
	}
	return t
}

func main() {
	t := buildCopyTrace()
	base := cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: cache.WriteBack}

	fmt.Printf("copying %d KB through an %s cache\n\n", copyBytes>>10, base)
	fmt.Printf("%-16s %12s %14s %14s %16s\n",
		"policy", "fetch bytes", "wasted fetch", "bus bytes", "rel. bandwidth")

	var fowBus uint64
	for _, p := range []cache.WriteMissPolicy{cache.FetchOnWrite, cache.WriteValidate} {
		cfg := base
		cfg.WriteMiss = p
		c, err := cache.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		c.AccessTrace(t)
		c.Flush()
		s := c.Stats()

		// Useful traffic: the copy must read copyBytes and write back
		// copyBytes. Anything more is wasted bus bandwidth.
		busBytes := s.BacksideBytes(false) +
			// flush write-backs move the remaining dirty destination data
			s.FlushVictimDirtyBytes
		wasted := int64(busBytes) - 2*copyBytes
		if p == cache.FetchOnWrite {
			fowBus = busBytes
		}
		rel := float64(fowBus) / float64(busBytes)
		fmt.Printf("%-16s %12d %14d %14d %15.2fx\n",
			p, s.FetchBytes, wasted, busBytes, rel)
	}

	fmt.Println("\nfetch-on-write fetches every destination line only to overwrite it,")
	fmt.Println("so it moves ~3 bytes over the bus per byte copied; write-validate moves ~2.")
	fmt.Println("That is the paper's 3:2 bandwidth advantage for no-fetch-on-write,")
	fmt.Println("achieved without cache-line-allocate instructions or compiler support.")
}
