// Quickstart: simulate one benchmark through the paper's standard
// first-level data cache under all four write-miss policies and print
// the headline comparison — the shortest path from this library to the
// paper's §4 result.
package main

import (
	"fmt"
	"log"

	"cachewrite/internal/cache"
	"cachewrite/internal/core"
	"cachewrite/internal/workload"
)

func main() {
	// 1. Generate a reference trace by actually running a workload (a
	//    mini C compiler, the stand-in for the paper's ccom benchmark).
	t, err := workload.Generate("ccom", 1)
	if err != nil {
		log.Fatal(err)
	}
	s := t.Stats()
	fmt.Printf("ccom: %d instructions, %d reads, %d writes (%.2f reads/write)\n\n",
		s.Instructions, s.Reads, s.Writes, s.LoadStoreRatio())

	// 2. The paper's standard geometry: 8KB direct-mapped, 16B lines.
	base := cache.Config{
		Size:     8 << 10,
		LineSize: 16,
		Assoc:    1,
		WriteHit: cache.WriteBack,
	}

	// 3. Compare the four write-miss policies on the same trace.
	cmp, err := core.ComparePolicies(base, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %10s %10s %12s %22s\n",
		"policy", "misses", "miss rate", "fetch traffic", "total miss reduction")
	for _, p := range []cache.WriteMissPolicy{
		cache.FetchOnWrite, cache.WriteInvalidate, cache.WriteAround, cache.WriteValidate,
	} {
		cs := cmp.ByPolicy[p]
		fmt.Printf("%-18s %10d %9.2f%% %11dB %21.1f%%\n",
			p, cs.Misses(), 100*cs.MissRate(), cs.FetchBytes,
			100*cmp.TotalMissReduction(p))
	}

	// 4. One full simulation with the winner, flush-stop accounted.
	cfg := base
	cfg.WriteMiss = cache.WriteValidate
	res, err := core.Run(core.Config{L1: cfg}, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith write-validate: %d eliminated write misses, %d partial-validity read misses\n",
		res.L1.EliminatedWriteMisses, res.L1.PartialValidReadMisses)
	fmt.Printf("back side: %d transactions, %d bytes\n",
		res.L1.BacksideTransactions(), res.L1.BacksideBytes(false))
}
