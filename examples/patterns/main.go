// Patterns crosses the canonical synthetic access patterns with the
// four write-miss policies and prints the miss-rate matrix — the
// fastest way to build intuition for when each policy wins:
//
//   - streaming writes: write-validate eliminates everything;
//   - block copy: no-fetch policies recover the wasted fetches (§4);
//   - read-modify-write: policies barely matter (linpack's lesson);
//   - re-read-old-data: write-around's niche (liver's lesson);
//   - pointer chase: writes are irrelevant, all policies tie.
package main

import (
	"fmt"
	"log"

	"cachewrite/internal/cache"
	"cachewrite/internal/synth"
	"cachewrite/internal/trace"
)

func main() {
	patterns := []struct {
		name string
		t    *trace.Trace
	}{
		{"streaming writes", synth.Sequential(trace.Write, 0x100000, 20000, 8, 8, 2)},
		{"block copy", synth.Copy(0x100000, 0x800000, 10000, 8)},
		{"read-modify-write", rmw()},
		{"re-read old data", reReadOld()},
		{"pointer chase", chase()},
	}

	fmt.Printf("%-18s", "miss rate (%)")
	for _, p := range []cache.WriteMissPolicy{cache.FetchOnWrite, cache.WriteValidate, cache.WriteAround, cache.WriteInvalidate} {
		fmt.Printf(" %16s", p)
	}
	fmt.Println()
	for _, pat := range patterns {
		fmt.Printf("%-18s", pat.name)
		for _, p := range []cache.WriteMissPolicy{cache.FetchOnWrite, cache.WriteValidate, cache.WriteAround, cache.WriteInvalidate} {
			hit := cache.WriteBack
			if p == cache.WriteAround || p == cache.WriteInvalidate {
				hit = cache.WriteThrough
			}
			c, err := cache.New(cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
				WriteHit: hit, WriteMiss: p})
			if err != nil {
				log.Fatal(err)
			}
			c.AccessTrace(pat.t)
			fmt.Printf(" %15.2f%%", 100*c.Stats().MissRate())
		}
		fmt.Println()
	}
}

// rmw reads then writes each word (the saxpy shape).
func rmw() *trace.Trace {
	t := &trace.Trace{Name: "rmw"}
	for i := 0; i < 10000; i++ {
		a := 0x100000 + uint32(i*8)
		t.Append(trace.Event{Addr: a, Size: 8, Gap: 1, Kind: trace.Read})
		t.Append(trace.Event{Addr: a, Size: 8, Gap: 1, Kind: trace.Write})
	}
	return t
}

// reReadOld writes a region, then re-reads the *original* region it
// displaced — liver's pattern, where write-around shines.
func reReadOld() *trace.Trace {
	t := &trace.Trace{Name: "rereads"}
	// Inputs fit in the cache; results alias the same sets.
	for round := 0; round < 50; round++ {
		for i := 0; i < 400; i++ {
			t.Append(trace.Event{Addr: 0x10000 + uint32(i*16), Size: 8, Gap: 1, Kind: trace.Read})
			// Result region maps onto the same cache sets (8KB apart).
			t.Append(trace.Event{Addr: 0x10000 + 0x2000 + uint32(i*16), Size: 8, Gap: 1, Kind: trace.Write})
		}
	}
	return t
}

func chase() *trace.Trace {
	t, err := synth.PointerChase(11, 4096, 40000, 64)
	if err != nil {
		log.Fatal(err)
	}
	return t
}
