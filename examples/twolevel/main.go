// Twolevel explores the paper's framing context: the first-level
// write policy determines the traffic the *second-level* cache must
// absorb ("this is especially important if the cycle time of the CPU
// is faster than that of the interface to the second-level cache",
// §1). The example runs the benchmark mix through four first-level
// organizations in front of the same 256KB L2 and compares traffic at
// both boundaries.
package main

import (
	"fmt"
	"log"

	"cachewrite/internal/cache"
	"cachewrite/internal/core"
	"cachewrite/internal/workload"
	"cachewrite/internal/writecache"
)

func main() {
	traces, err := workload.GenerateAll(1)
	if err != nil {
		log.Fatal(err)
	}

	l2 := cache.Config{Size: 256 << 10, LineSize: 64, Assoc: 4,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}

	type org struct {
		name string
		cfg  core.Config
	}
	mk := func(hit cache.WriteHitPolicy, miss cache.WriteMissPolicy, wc *writecache.Config) core.Config {
		l2c := l2
		return core.Config{
			L1: cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
				WriteHit: hit, WriteMiss: miss},
			WriteCache: wc,
			L2:         &l2c,
		}
	}
	orgs := []org{
		{"WT + fetch-on-write", mk(cache.WriteThrough, cache.FetchOnWrite, nil)},
		{"WT + 5-entry write cache", mk(cache.WriteThrough, cache.FetchOnWrite,
			&writecache.Config{Entries: 5, LineSize: 8})},
		{"WB + fetch-on-write", mk(cache.WriteBack, cache.FetchOnWrite, nil)},
		{"WB + write-validate", mk(cache.WriteBack, cache.WriteValidate, nil)},
	}

	fmt.Printf("%-26s %14s %14s %14s %12s\n",
		"L1 organization", "L1->L2 tx", "L1->L2 bytes", "L2->mem tx", "L2 missrate")
	var baseTx uint64
	for i, o := range orgs {
		var tx, bytes, memTx uint64
		var l2Miss float64
		for _, t := range traces {
			res, err := core.Run(o.cfg, t)
			if err != nil {
				log.Fatal(err)
			}
			tx += res.Hierarchy.L1ToL2Transactions
			bytes += res.Hierarchy.L1ToL2Bytes
			memTx += res.Hierarchy.L2ToMemTransactions
			l2Miss += res.L2.MissRate()
		}
		l2Miss /= float64(len(traces))
		if i == 0 {
			baseTx = tx
		}
		fmt.Printf("%-26s %14d %14d %14d %11.2f%%\n",
			o.name, tx, bytes, memTx, 100*l2Miss)
		if i > 0 {
			fmt.Printf("%-26s %13.1f%%\n", "  vs WT+FOW", 100*(1-float64(tx)/float64(baseTx)))
		}
	}

	fmt.Println("\nthe second-level interface sees: write-through dominated by store")
	fmt.Println("words; a write cache merging away a third of them; write-back")
	fmt.Println("collapsing words into dirty lines; and write-validate removing the")
	fmt.Println("write-miss fetches on top — the paper's §5 story end to end.")
}
