// Errortolerance quantifies the paper's §3 fourth dimension of
// comparison — fault tolerance — and its interaction with traffic:
// a write-through cache needs only byte parity (correctable by
// refetching), while a write-back cache holds unique dirty data and
// needs ECC. The example computes the storage overhead of each scheme
// across cache sizes and weighs it against the write-traffic reduction
// measured on the benchmark mix, reproducing §3.3's sizing guidance
// ("only when cache sizes reach 32KB does the additional traffic
// reduction provided by write-back caches become significant").
package main

import (
	"fmt"
	"log"

	"cachewrite/internal/cache"
	"cachewrite/internal/workload"
	"cachewrite/internal/writecache"
)

const (
	// Byte parity: 1 bit per 8-bit byte (12.5%). Four single-bit errors
	// per word are correctable by refetch in a write-through cache.
	parityBitsPerWord = 4
	// SEC ECC on a 32-bit word: 6 bits (18.75%); only one error per
	// word is correctable, and byte writes need read-modify-write.
	eccBitsPerWord = 6
	wordBits       = 32
)

func main() {
	traces, err := workload.GenerateAll(1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("protection overhead (data array only):")
	fmt.Printf("  write-through + byte parity: %d/%d = %.2f%%\n",
		parityBitsPerWord, wordBits, 100*float64(parityBitsPerWord)/wordBits)
	fmt.Printf("  write-back + word SEC ECC:   %d/%d = %.2f%%\n\n",
		eccBitsPerWord, wordBits, 100*float64(eccBitsPerWord)/wordBits)

	fmt.Printf("%-8s %14s %18s %22s %12s\n", "size", "parity bits", "ECC bits",
		"WB extra traffic cut*", "verdict")
	for _, size := range []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10} {
		words := size / 4
		parityBits := words * parityBitsPerWord
		eccBits := words * eccBitsPerWord

		// Write-back's traffic advantage over a write-through cache that
		// already has a 5-entry write cache (the paper's §3.3 framing).
		var wbFrac, wcFrac float64
		for _, t := range traces {
			c := cache.MustNew(cache.Config{Size: size, LineSize: 16, Assoc: 1,
				WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite})
			c.AccessTrace(t)
			wbFrac += c.Stats().WritesToDirtyFraction()

			wc, err := writecache.New(writecache.Config{Entries: 5, LineSize: 8})
			if err != nil {
				log.Fatal(err)
			}
			wc.Run(t)
			wcFrac += wc.Stats().RemovedFraction()
		}
		wbFrac /= float64(len(traces))
		wcFrac /= float64(len(traces))
		extra := wbFrac - wcFrac

		// The paper's §3.3 criterion: write-back is decisively worth its
		// ECC overhead once it at least halves the write traffic
		// remaining after a write-cache-equipped write-through design.
		verdict := "write-through"
		if (1-wcFrac)/(1-wbFrac) >= 2 {
			verdict = "write-back"
		}
		fmt.Printf("%-8s %13.1fKb %17.1fKb %21.1f%% %12s\n",
			fmtSize(size), float64(parityBits)/1024, float64(eccBits)/1024,
			100*extra, verdict)
	}
	fmt.Println("\n* additional write traffic removed by a write-back cache beyond a")
	fmt.Println("  write-through cache fronted by a 5-entry write cache (paper §3.3).")
	fmt.Println("  The verdict flips to write-back where the remaining write traffic")
	fmt.Println("  at least halves — which, as in the paper, it does only as the")
	fmt.Println("  cache grows (our write cache removes a somewhat smaller share")
	fmt.Println("  than the paper's 40%, so the crossover lands earlier).")
}

func fmtSize(n int) string {
	return fmt.Sprintf("%dKB", n>>10)
}
