module cachewrite

go 1.22
