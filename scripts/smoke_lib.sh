# smoke_lib.sh — shared helpers for the repository's smoke scripts.
# POSIX sh; source it after setting $SMOKE_NAME:
#
#   SMOKE_NAME=resilience-smoke
#   . "$(dirname "$0")/smoke_lib.sh"
#
# Exit-code conventions the helpers understand (see
# internal/resilience):
#   0    success
#   3    resilience.ExitInterrupted — the process observed SIGINT/
#        SIGTERM and checkpointed; resumable, not a failure
#   137  128+SIGKILL — the process was killed (only OK when the
#        script itself sent the kill)

SMOKE_NAME="${SMOKE_NAME:-smoke}"

smoke_log() {
    echo "$SMOKE_NAME: $*"
}

smoke_fail() {
    echo "$SMOKE_NAME: FAIL — $*" >&2
    exit 1
}

# smoke_require_go resolves $GO (default "go") and fails fast with a
# clear message when the toolchain is missing.
smoke_require_go() {
    GO="${GO:-go}"
    if ! command -v "$GO" >/dev/null 2>&1; then
        echo "$SMOKE_NAME: error: Go toolchain '$GO' not found in PATH; install Go or set GO=/path/to/go" >&2
        exit 1
    fi
}

# smoke_classify_exit <rc> <killed> — map a child's exit code to one
# of: ok / killed / interrupted. Anything else fails the smoke loudly,
# including a 137 the script never caused: an OOM-killed or externally
# killed child must not be silently retried as if it were part of the
# chaos plan. <killed> is "yes" when the script sent SIGKILL to this
# child, anything else otherwise.
smoke_classify_exit() {
    rc="$1"
    killed="${2:-no}"
    case "$rc" in
    0)
        echo ok
        ;;
    3)
        # resilience.ExitInterrupted: graceful SIGINT/SIGTERM stop with
        # a checkpoint behind it. Resumable by rerunning.
        echo interrupted
        ;;
    137)
        if [ "$killed" = "yes" ]; then
            echo killed
        else
            smoke_fail "child exited 137 (SIGKILL) but this script sent no kill — OOM or external interference, not a planned crash"
        fi
        ;;
    *)
        smoke_fail "child exited with unexpected code $rc (expected 0, 3, or a planned 137); see its stderr above"
        ;;
    esac
}
