#!/bin/sh
# bench_compare.sh — the sweep-engine performance regression gate.
# Runs sweepbench in -compare mode: measure a fresh (reduced-event)
# sweep at the full worker matrix and compare it against the committed
# BENCH_sweep.json. Fails when the gang engine's ns/event regresses
# more than 10% on identical silicon, when a hot loop starts
# allocating, or when the committed artifact violates the scaling
# invariants (no scaling[] matrix, speedup below 2x at the top worker
# count on a multi-core recording host, single-worker kernel cost over
# the pre-kernel baseline). `make bench-compare` runs this; it is part
# of `make check`.
#
# BENCH_COMPARE_EVENTS caps the per-trace event count for the fresh
# measurement. The default matches `make bench` (250000): the relative
# ns/event check only fires when fresh and committed runs cover the
# same event window, because a shorter trace prefix has different miss
# locality and would read as a phantom regression.
set -eu

cd "$(dirname "$0")/.."

GO="${GO:-go}"
EVENTS="${BENCH_COMPARE_EVENTS:-250000}"

command -v "$GO" >/dev/null 2>&1 || {
    echo "bench-compare: Go toolchain '$GO' not found in PATH" >&2
    exit 1
}

[ -f BENCH_sweep.json ] || {
    echo "bench-compare: no committed BENCH_sweep.json; run 'make bench' first" >&2
    exit 1
}

exec "$GO" run ./cmd/sweepbench -workers auto -events "$EVENTS" -compare BENCH_sweep.json
