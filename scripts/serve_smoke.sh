#!/bin/sh
# serve_smoke.sh — chaos smoke for the simserved service: build server
# and load harness with the race detector, then let simload spawn the
# server with a deliberately small admission queue, drive 64 concurrent
# tenant sessions against it, SIGKILL the server three times mid-run,
# and finally SIGTERM it for a graceful drain.
#
# simload exits 0 only if every assertion held: no admitted job lost
# across kills, no completed unit lost or double-reported (every
# result byte-identical to a locally computed golden), 503 responses
# bounded and carrying Retry-After, shedding actually observed, and
# the final drain clean. `make serve-smoke` runs this; it is part of
# `make check`.
set -eu

cd "$(dirname "$0")/.."

SMOKE_NAME=serve-smoke
. ./scripts/smoke_lib.sh

smoke_require_go

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

smoke_log "building simserved and simload with -race"
"$GO" build -race -o "$work/simserved" ./cmd/simserved
"$GO" build -race -o "$work/simload" ./cmd/simload

# Port derived from the PID so parallel checks do not collide.
port=$((20000 + $$ % 20000))

# Small queue and per-tenant cap so 64 clients force real shedding;
# shared trace cache so restarts resume into sweeps, not generation.
smoke_log "chaos run: 64 clients, 3 SIGKILLs, queue 12, port $port"
set +e
"$work/simload" \
    -addr "127.0.0.1:$port" \
    -spawn "$work/simserved" \
    -state "$work/state" \
    -server-flags "-queue 12 -per-tenant 2 -jobs 2 -tracecache $work/tracecache" \
    -tracecache "$work/tracecache" \
    -clients 64 -jobs 1 -events 40000 \
    -kills 3 -kill-every 1500ms \
    -expect-shed \
    -timeout 4m
rc=$?
set -e
if [ "$rc" -ne 0 ]; then
    smoke_fail "simload reported violations (exit $rc)"
fi
smoke_log "OK — zero lost or double-reported units across 3 SIGKILLs, bounded shedding, clean drain"
