#!/bin/sh
# faultfs_smoke.sh — storage-fault chaos smoke for simserved: the
# serve_smoke chaos plan (concurrent tenants + SIGKILLs + graceful
# drain) with the state directory mounted on a fault-injecting
# filesystem (-faultfs): torn writes, ENOSPC and failed renames hit
# the job journal and the sweep checkpoints while the server runs.
#
# The pass criteria are the strongest the repo has: simload exits 0
# only if every admitted job survived, every result came back
# byte-identical to a locally computed golden, and shedding was
# bounded — now with the disk actively eating writes underneath the
# durability layer. Read faults (eio) are excluded: a disk that cannot
# be read is not recoverable-from by software, and the crash harness
# in internal/resilience covers that surface separately.
# `make faultfs-smoke` runs this; it is part of `make check`.
set -eu

cd "$(dirname "$0")/.."

SMOKE_NAME=faultfs-smoke
. ./scripts/smoke_lib.sh

smoke_require_go

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

smoke_log "building simserved and simload with -race"
"$GO" build -race -o "$work/simserved" ./cmd/simserved
"$GO" build -race -o "$work/simload" ./cmd/simload

# Pre-create the state tree so an injected fault on the startup
# MkdirAll cannot kill a restarting server (serve.New tolerates a
# failed mkdir of an existing directory, like the real syscall).
mkdir -p "$work/state/sweeps" "$work/tracecache"

# Offset from serve_smoke's port formula so parallel checks and the
# sibling smoke do not collide.
port=$((20000 + ($$ + 7919) % 20000))

plan="seed=7,rate=0.05,kinds=torn+enospc+rename"
smoke_log "chaos run: 24 clients, 2 SIGKILLs, fault plan $plan, port $port"
set +e
"$work/simload" \
    -addr "127.0.0.1:$port" \
    -spawn "$work/simserved" \
    -state "$work/state" \
    -server-flags "-queue 12 -per-tenant 2 -jobs 2 -tracecache $work/tracecache -faultfs $plan" \
    -tracecache "$work/tracecache" \
    -clients 24 -jobs 1 -events 40000 \
    -kills 2 -kill-every 1500ms \
    -timeout 4m 2>"$work/log"
rc=$?
set -e
cat "$work/log" >&2
if [ "$rc" -ne 0 ]; then
    smoke_fail "simload reported violations under storage faults (exit $rc)"
fi
if ! grep -q "fault injection armed" "$work/log"; then
    smoke_fail "server never armed the fault plan — the smoke tested nothing"
fi
tally=$(grep "fault injection tally" "$work/log" | tail -n 1 || true)
smoke_log "final server segment ${tally:-reported no tally}"
smoke_log "OK — golden results and zero lost jobs despite injected storage faults and 2 SIGKILLs"
