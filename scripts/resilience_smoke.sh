#!/bin/sh
# resilience_smoke.sh — end-to-end crash-safety check for the sweep
# checkpoint journal: run a golden (uninterrupted) cachesweep, then run
# the same sweep with a checkpoint and SIGKILL it mid-flight a few
# times, resume to completion, and require the resumed CSV to be
# byte-identical to the golden one. `make resilience-smoke` runs this;
# it is part of `make check`.
set -eu

cd "$(dirname "$0")/.."

# Honor the Makefile's GO override and fail fast with a clear message
# when the toolchain is missing.
GO="${GO:-go}"
if ! command -v "$GO" >/dev/null 2>&1; then
    echo "resilience-smoke: error: Go toolchain '$GO' not found in PATH; install Go or set GO=/path/to/go" >&2
    exit 1
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

bin="$work/cachesweep"
"$GO" build -o "$bin" ./cmd/cachesweep

# One shared trace cache: the golden run pays for trace generation, the
# kill/resume attempts hit the cache so every SIGKILL lands in the
# sweep itself rather than in generation.
args="-workload ccom -scale 2 -workers 2 -lines 16,32 -tracecache $work/tracecache"

echo "resilience-smoke: golden run"
# shellcheck disable=SC2086
"$bin" $args > "$work/golden.csv"

ckpt="$work/sweep.ckpt"
kills=0
max_kills=3
attempt=0
echo "resilience-smoke: kill/resume loop (SIGKILL x$max_kills)"
while :; do
    attempt=$((attempt + 1))
    if [ "$attempt" -gt 10 ]; then
        echo "resilience-smoke: FAIL — sweep never completed after $attempt attempts" >&2
        exit 1
    fi
    set +e
    # shellcheck disable=SC2086
    "$bin" $args -checkpoint "$ckpt" > "$work/resumed.csv" 2> "$work/stderr.log" &
    pid=$!
    if [ "$kills" -lt "$max_kills" ]; then
        sleep 0.5
        kill -9 "$pid" 2>/dev/null
    fi
    wait "$pid"
    rc=$?
    set -e
    if [ "$rc" -eq 0 ]; then
        break
    fi
    kills=$((kills + 1))
    echo "resilience-smoke: attempt $attempt killed (exit $rc), resuming"
done

if [ "$kills" -eq 0 ]; then
    echo "resilience-smoke: FAIL — no attempt was killed; sweep too fast for the kill window" >&2
    exit 1
fi
if [ -e "$ckpt" ]; then
    echo "resilience-smoke: FAIL — completed sweep left its checkpoint behind" >&2
    exit 1
fi
if ! cmp -s "$work/golden.csv" "$work/resumed.csv"; then
    echo "resilience-smoke: FAIL — resumed CSV differs from uninterrupted run" >&2
    diff "$work/golden.csv" "$work/resumed.csv" | head -20 >&2
    exit 1
fi
echo "resilience-smoke: OK — survived $kills SIGKILLs, resumed byte-identical"
