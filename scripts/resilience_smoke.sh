#!/bin/sh
# resilience_smoke.sh — end-to-end crash-safety check for the sweep
# checkpoint journal: run a golden (uninterrupted) cachesweep, then run
# the same sweep with a checkpoint and SIGKILL it mid-flight a few
# times, resume to completion, and require the resumed CSV to be
# byte-identical to the golden one. `make resilience-smoke` runs this;
# it is part of `make check`.
#
# Child exit codes are classified strictly (see smoke_lib.sh): 0 is
# success, 3 (resilience.ExitInterrupted) is a resumable graceful
# stop, 137 is acceptable only for a SIGKILL this script itself sent.
# Anything else — a panic, a journal error, an unexplained signal —
# fails the smoke immediately instead of being retried into silence.
set -eu

cd "$(dirname "$0")/.."

SMOKE_NAME=resilience-smoke
. ./scripts/smoke_lib.sh

smoke_require_go

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

bin="$work/cachesweep"
"$GO" build -o "$bin" ./cmd/cachesweep

# One shared trace cache: the golden run pays for trace generation, the
# kill/resume attempts hit the cache so every SIGKILL lands in the
# sweep itself rather than in generation.
args="-workload ccom -scale 2 -workers 2 -lines 16,32 -tracecache $work/tracecache"

smoke_log "golden run"
# shellcheck disable=SC2086
"$bin" $args > "$work/golden.csv"

ckpt="$work/sweep.ckpt"
kills=0
interrupts=0
max_kills=3
attempt=0
smoke_log "kill/resume loop (SIGKILL x$max_kills)"
while :; do
    attempt=$((attempt + 1))
    if [ "$attempt" -gt 10 ]; then
        smoke_fail "sweep never completed after $attempt attempts"
    fi
    set +e
    # shellcheck disable=SC2086
    "$bin" $args -checkpoint "$ckpt" > "$work/resumed.csv" 2> "$work/stderr.log" &
    pid=$!
    sent_kill=no
    if [ "$kills" -lt "$max_kills" ]; then
        sleep 0.5
        if kill -9 "$pid" 2>/dev/null; then
            sent_kill=yes
        fi
    fi
    wait "$pid"
    rc=$?
    set -e
    outcome=$(smoke_classify_exit "$rc" "$sent_kill")
    case "$outcome" in
    ok)
        break
        ;;
    killed)
        kills=$((kills + 1))
        smoke_log "attempt $attempt killed (exit $rc), resuming"
        ;;
    interrupted)
        # Graceful stop (exit 3): checkpointed, resumable — but this
        # script never sends SIGINT/SIGTERM, so surface it for the log
        # and keep resuming rather than miscounting it as a kill.
        interrupts=$((interrupts + 1))
        smoke_log "attempt $attempt interrupted gracefully (exit 3), resuming"
        ;;
    esac
done

if [ "$kills" -eq 0 ]; then
    smoke_fail "no attempt was killed; sweep too fast for the kill window"
fi
if [ -e "$ckpt" ]; then
    smoke_fail "completed sweep left its checkpoint behind"
fi
if ! cmp -s "$work/golden.csv" "$work/resumed.csv"; then
    diff "$work/golden.csv" "$work/resumed.csv" | head -20 >&2
    smoke_fail "resumed CSV differs from uninterrupted run"
fi
smoke_log "OK — survived $kills SIGKILLs ($interrupts graceful interrupts), resumed byte-identical"
