package cachewrite

// Simlint self-gate: the merged tree must always be clean under the
// repository's own analyzer suite. This is the programmatic twin of
// `make lint`; it runs the multichecker in-process over ./... so a
// plain `go test ./...` (without -short) also enforces the engine
// invariants. Skipped in -short mode because Load shells out to
// `go list -export` for the whole module.

import (
	"strings"
	"testing"

	"cachewrite/internal/simlint"
)

func TestSimlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping simlint whole-module pass in short mode")
	}
	mod, err := simlint.Load(".", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := simlint.RunAnalyzers(mod, simlint.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	if len(diags) > 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString("\n  ")
			b.WriteString(d.String())
		}
		t.Errorf("simlint reported %d diagnostic(s) on the tree:%s", len(diags), b.String())
	}
}
