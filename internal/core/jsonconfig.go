package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"cachewrite/internal/cache"
	"cachewrite/internal/writecache"
)

// JSONConfig is the serializable form of a full simulation
// configuration, for cachesim -config files and scripting. Policy
// fields take the paper's names ("write-back", "write-validate", ...);
// sizes accept plain byte counts.
type JSONConfig struct {
	L1         JSONCache  `json:"l1"`
	WriteCache *JSONWC    `json:"write_cache,omitempty"`
	VictimMode bool       `json:"victim_mode,omitempty"`
	L2         *JSONCache `json:"l2,omitempty"`
	Inclusive  bool       `json:"inclusive,omitempty"`
}

// JSONCache mirrors cache.Config.
type JSONCache struct {
	Size               int    `json:"size"`
	LineSize           int    `json:"line_size"`
	Assoc              int    `json:"assoc"`
	WriteHit           string `json:"write_hit"`
	WriteMiss          string `json:"write_miss"`
	Replacement        string `json:"replacement,omitempty"`
	ValidGranularity   int    `json:"valid_granularity,omitempty"`
	SectorFetch        bool   `json:"sector_fetch,omitempty"`
	WVMissWriteThrough bool   `json:"wv_miss_write_through,omitempty"`
}

// JSONWC mirrors writecache.Config.
type JSONWC struct {
	Entries  int `json:"entries"`
	LineSize int `json:"line_size"`
}

// ParseWriteHit maps a policy name ("write-through"/"wt",
// "write-back"/"wb") to the enum.
func ParseWriteHit(s string) (cache.WriteHitPolicy, error) {
	switch strings.ToLower(s) {
	case "write-through", "wt":
		return cache.WriteThrough, nil
	case "write-back", "wb":
		return cache.WriteBack, nil
	default:
		return 0, fmt.Errorf("core: unknown write-hit policy %q", s)
	}
}

// ParseWriteMiss maps a policy name to the enum. Short forms fow, wv,
// wa and wi are accepted.
func ParseWriteMiss(s string) (cache.WriteMissPolicy, error) {
	switch strings.ToLower(s) {
	case "fetch-on-write", "fow":
		return cache.FetchOnWrite, nil
	case "write-validate", "wv":
		return cache.WriteValidate, nil
	case "write-around", "wa":
		return cache.WriteAround, nil
	case "write-invalidate", "wi":
		return cache.WriteInvalidate, nil
	default:
		return 0, fmt.Errorf("core: unknown write-miss policy %q", s)
	}
}

// ParseReplacement maps a replacement policy name to the enum; the
// empty string means LRU.
func ParseReplacement(s string) (cache.Replacement, error) {
	switch strings.ToLower(s) {
	case "", "lru":
		return cache.LRU, nil
	case "fifo":
		return cache.FIFO, nil
	case "random":
		return cache.Random, nil
	default:
		return 0, fmt.Errorf("core: unknown replacement policy %q", s)
	}
}

// toCacheConfig converts the JSON form, validating the policy names.
func (j JSONCache) toCacheConfig() (cache.Config, error) {
	hit, err := ParseWriteHit(j.WriteHit)
	if err != nil {
		return cache.Config{}, err
	}
	miss, err := ParseWriteMiss(j.WriteMiss)
	if err != nil {
		return cache.Config{}, err
	}
	repl, err := ParseReplacement(j.Replacement)
	if err != nil {
		return cache.Config{}, err
	}
	return cache.Config{
		Size: j.Size, LineSize: j.LineSize, Assoc: j.Assoc,
		WriteHit: hit, WriteMiss: miss, Replacement: repl,
		ValidGranularity:   j.ValidGranularity,
		SectorFetch:        j.SectorFetch,
		WVMissWriteThrough: j.WVMissWriteThrough,
	}, nil
}

// LoadConfig reads a JSONConfig document and converts it to a validated
// simulation Config.
func LoadConfig(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var j JSONConfig
	if err := dec.Decode(&j); err != nil {
		return Config{}, fmt.Errorf("core: parsing config: %w", err)
	}
	if dec.More() {
		return Config{}, fmt.Errorf("core: trailing data after config document")
	}
	var cfg Config
	var err error
	if cfg.L1, err = j.L1.toCacheConfig(); err != nil {
		return Config{}, err
	}
	if j.WriteCache != nil {
		cfg.WriteCache = &writecache.Config{Entries: j.WriteCache.Entries, LineSize: j.WriteCache.LineSize}
	}
	cfg.VictimMode = j.VictimMode
	cfg.Inclusive = j.Inclusive
	if j.L2 != nil {
		l2, err := j.L2.toCacheConfig()
		if err != nil {
			return Config{}, err
		}
		cfg.L2 = &l2
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
