package core

import (
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
	"cachewrite/internal/writecache"
)

func baseCfg() cache.Config {
	return cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
}

func copyTrace(n int) *trace.Trace {
	// A block copy: read source, write destination — the paper's §4
	// motivating example for no-fetch-on-write.
	tr := &trace.Trace{Name: "copy"}
	for i := 0; i < n; i++ {
		tr.Append(trace.Event{Addr: 0x1_0000 + uint32(i*8), Size: 8, Kind: trace.Read})
		tr.Append(trace.Event{Addr: 0x8_0000 + uint32(i*8), Size: 8, Kind: trace.Write})
	}
	return tr
}

func TestRun(t *testing.T) {
	tr := copyTrace(500)
	res, err := Run(Config{L1: baseCfg()}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Refs() != 1000 {
		t.Errorf("trace refs = %d", res.Trace.Refs())
	}
	if res.L1.Reads != 500 || res.L1.Writes != 500 {
		t.Errorf("L1 saw %d/%d reads/writes", res.L1.Reads, res.L1.Writes)
	}
	if res.L1.Misses() == 0 {
		t.Error("streaming copy produced no misses")
	}
	if res.Hierarchy.L1ToL2Transactions == 0 {
		t.Error("no back-side traffic recorded")
	}
}

func TestRunBadConfig(t *testing.T) {
	if _, err := Run(Config{}, copyTrace(1)); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestRunWithL2AndWriteCache(t *testing.T) {
	l1 := baseCfg()
	l1.WriteHit = cache.WriteThrough
	l2 := cache.Config{Size: 8 << 10, LineSize: 32, Assoc: 2,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
	res, err := Run(Config{
		L1:         l1,
		WriteCache: &writecache.Config{Entries: 5, LineSize: 8},
		L2:         &l2,
	}, copyTrace(500))
	if err != nil {
		t.Fatal(err)
	}
	if res.L2.Reads == 0 {
		t.Error("L2 saw no traffic")
	}
}

func TestRunWorkload(t *testing.T) {
	res, err := RunWorkload(Config{L1: baseCfg()}, "liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.L1.Refs() == 0 {
		t.Error("no references simulated")
	}
	if _, err := RunWorkload(Config{L1: baseCfg()}, "nosuch", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestComparePoliciesOnBlockCopy(t *testing.T) {
	// The paper's block-copy argument: with fetch-on-write, half the
	// fetch bandwidth is wasted on destination lines that are fully
	// overwritten. Write-validate should eliminate essentially all write
	// misses here.
	cmp, err := ComparePolicies(baseCfg(), copyTrace(2000))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.ByPolicy) != 4 {
		t.Fatalf("compared %d policies", len(cmp.ByPolicy))
	}
	wv := cmp.WriteMissReduction(cache.WriteValidate)
	if wv < 0.95 {
		t.Errorf("write-validate removed %.0f%% of copy write misses, want ~100%%", wv*100)
	}
	// Total reduction: write misses are half of all misses in a copy.
	tot := cmp.TotalMissReduction(cache.WriteValidate)
	if tot < 0.45 || tot > 0.55 {
		t.Errorf("write-validate total reduction %.2f, want ~0.5", tot)
	}
	// Fetch-on-write is the baseline: zero reduction by definition.
	if cmp.TotalMissReduction(cache.FetchOnWrite) != 0 {
		t.Error("baseline reduction must be zero")
	}
	// The Fig 17 order.
	if cmp.ByPolicy[cache.WriteValidate].Misses() > cmp.ByPolicy[cache.WriteInvalidate].Misses() ||
		cmp.ByPolicy[cache.WriteAround].Misses() > cmp.ByPolicy[cache.WriteInvalidate].Misses() ||
		cmp.ByPolicy[cache.WriteInvalidate].Misses() > cmp.ByPolicy[cache.FetchOnWrite].Misses() {
		t.Error("Fig 17 partial order violated on block copy")
	}
}

func TestComparePoliciesBadConfig(t *testing.T) {
	if _, err := ComparePolicies(cache.Config{}, copyTrace(1)); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestReductionsZeroDenominators(t *testing.T) {
	cmp := PolicyComparison{ByPolicy: map[cache.WriteMissPolicy]cache.Stats{
		cache.FetchOnWrite: {},
	}}
	if cmp.WriteMissReduction(cache.WriteValidate) != 0 ||
		cmp.TotalMissReduction(cache.WriteValidate) != 0 {
		t.Error("zero denominators must give zero, not NaN")
	}
}
