// Package core is the public façade of the cachewrite library: one
// import that surfaces the paper's contribution — the write-hit /
// write-miss policy taxonomy, the write cache, and the measurement
// machinery — as a small API over the underlying subsystem packages.
//
// Typical use:
//
//	t, _ := workload.Generate("ccom", 1)
//	res, _ := core.Run(core.Config{L1: cache.Config{
//	    Size: 8192, LineSize: 16, Assoc: 1,
//	    WriteHit: cache.WriteBack, WriteMiss: cache.WriteValidate,
//	}}, t)
//	fmt.Println(res.L1.MissRate())
//
// or, for the paper's headline comparison:
//
//	cmp, _ := core.ComparePolicies(baseCfg, t)
//	fmt.Println(cmp.TotalMissReduction(cache.WriteValidate))
package core

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/hierarchy"
	"cachewrite/internal/trace"
	"cachewrite/internal/workload"
)

// Config is the simulated memory system configuration; it aliases
// hierarchy.Config so the façade and the subsystem speak the same
// language.
type Config = hierarchy.Config

// Result bundles everything one simulation produces.
type Result struct {
	// Trace summarises the input reference stream.
	Trace trace.Stats
	// L1 holds the first-level cache counters (the paper's primary
	// subject).
	L1 cache.Stats
	// L2 holds the second-level counters when an L2 was configured.
	L2 cache.Stats
	// Hierarchy holds the between-level traffic counters.
	Hierarchy hierarchy.Stats
}

// Run simulates the trace through the configured hierarchy, flushes
// dirty state (flush-stop accounting; cold-stop numbers remain
// available in the non-Flush counters), and returns all statistics.
func Run(cfg Config, t *trace.Trace) (Result, error) {
	h, err := hierarchy.New(cfg)
	if err != nil {
		return Result{}, err
	}
	h.AccessTrace(t)
	h.Flush()
	res := Result{
		Trace:     t.Stats(),
		L1:        h.L1().Stats(),
		Hierarchy: h.Stats(),
	}
	if h.L2() != nil {
		res.L2 = h.L2().Stats()
	}
	return res, nil
}

// RunWorkload generates the named workload at the given scale and runs
// it through the configuration.
func RunWorkload(cfg Config, name string, scale int) (Result, error) {
	t, err := workload.Generate(name, scale)
	if err != nil {
		return Result{}, err
	}
	return Run(cfg, t)
}

// PolicyComparison holds the four write-miss policies' results on one
// trace and one base cache geometry — the paper's §4 experiment.
type PolicyComparison struct {
	// Base is the shared geometry; its WriteMiss field is ignored.
	Base cache.Config
	// ByPolicy maps each policy to its L1 statistics.
	ByPolicy map[cache.WriteMissPolicy]cache.Stats
}

// ComparePolicies runs the trace under all four write-miss policies
// with the given geometry and write-hit policy.
func ComparePolicies(base cache.Config, t *trace.Trace) (PolicyComparison, error) {
	cmp := PolicyComparison{Base: base, ByPolicy: map[cache.WriteMissPolicy]cache.Stats{}}
	for _, p := range cache.WriteMissPolicies() {
		cfg := base
		cfg.WriteMiss = p
		c, err := cache.New(cfg)
		if err != nil {
			return PolicyComparison{}, fmt.Errorf("core: policy %s: %w", p, err)
		}
		c.AccessTrace(t)
		c.Flush()
		cmp.ByPolicy[p] = c.Stats()
	}
	return cmp, nil
}

// WriteMissReduction returns the paper's Figs 13/15 metric for policy
// p: the reduction in fetch-triggering misses relative to
// fetch-on-write, expressed as a fraction of fetch-on-write's *write*
// misses. Values above 1 are possible (the paper's liver/write-around
// case) when a policy also avoids read misses.
func (c PolicyComparison) WriteMissReduction(p cache.WriteMissPolicy) float64 {
	fow := c.ByPolicy[cache.FetchOnWrite]
	if fow.FetchedWriteMisses == 0 {
		return 0
	}
	saved := float64(fow.Misses()) - float64(c.ByPolicy[p].Misses())
	return saved / float64(fow.FetchedWriteMisses)
}

// TotalMissReduction returns the paper's Figs 14/16 metric: the
// reduction in all fetch-triggering misses relative to fetch-on-write,
// as a fraction of fetch-on-write's total misses.
func (c PolicyComparison) TotalMissReduction(p cache.WriteMissPolicy) float64 {
	fow := c.ByPolicy[cache.FetchOnWrite]
	if fow.Misses() == 0 {
		return 0
	}
	saved := float64(fow.Misses()) - float64(c.ByPolicy[p].Misses())
	return saved / float64(fow.Misses())
}
