package core_test

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/core"
	"cachewrite/internal/trace"
)

// ExampleComparePolicies reproduces the paper's headline comparison on
// a synthetic block copy: write-validate eliminates every write miss.
func ExampleComparePolicies() {
	t := &trace.Trace{Name: "copy"}
	for i := 0; i < 1000; i++ {
		t.Append(trace.Event{Addr: 0x10000 + uint32(i*8), Size: 8, Kind: trace.Read})
		t.Append(trace.Event{Addr: 0x80000 + uint32(i*8), Size: 8, Kind: trace.Write})
	}
	cmp, err := core.ComparePolicies(cache.Config{
		Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: cache.WriteBack,
	}, t)
	if err != nil {
		panic(err)
	}
	fmt.Printf("write-validate removes %.0f%% of this copy's misses\n",
		100*cmp.TotalMissReduction(cache.WriteValidate))
	// Output:
	// write-validate removes 50% of this copy's misses
}

// ExampleRun shows a complete two-level simulation.
func ExampleRun() {
	t := &trace.Trace{}
	for i := 0; i < 100; i++ {
		t.Append(trace.Event{Addr: uint32(i * 16), Size: 4, Kind: trace.Write, Gap: 3})
	}
	l2 := cache.Config{Size: 64 << 10, LineSize: 64, Assoc: 4,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
	res, err := core.Run(core.Config{
		L1: cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1,
			WriteHit: cache.WriteBack, WriteMiss: cache.WriteValidate},
		L2: &l2,
	}, t)
	if err != nil {
		panic(err)
	}
	fmt.Printf("eliminated write misses: %d\n", res.L1.EliminatedWriteMisses)
	// 36 capacity write-backs during the run plus 64 flush write-backs.
	fmt.Printf("L1->L2 transactions: %d\n", res.Hierarchy.L1ToL2Transactions)
	// Output:
	// eliminated write misses: 100
	// L1->L2 transactions: 100
}
