package core

import (
	"strings"
	"testing"

	"cachewrite/internal/cache"
)

func TestLoadConfigFull(t *testing.T) {
	doc := `{
	  "l1": {
	    "size": 8192, "line_size": 16, "assoc": 1,
	    "write_hit": "write-through", "write_miss": "fetch-on-write"
	  },
	  "write_cache": {"entries": 5, "line_size": 16},
	  "victim_mode": true,
	  "l2": {
	    "size": 262144, "line_size": 64, "assoc": 4,
	    "write_hit": "wb", "write_miss": "fow", "replacement": "fifo"
	  }
	}`
	cfg, err := LoadConfig(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.L1.Size != 8192 || cfg.L1.WriteHit != cache.WriteThrough {
		t.Errorf("L1 = %+v", cfg.L1)
	}
	if cfg.WriteCache == nil || cfg.WriteCache.Entries != 5 {
		t.Error("write cache not loaded")
	}
	if !cfg.VictimMode {
		t.Error("victim mode not loaded")
	}
	if cfg.L2 == nil || cfg.L2.Replacement != cache.FIFO {
		t.Error("L2 not loaded")
	}
}

func TestLoadConfigVariantFields(t *testing.T) {
	doc := `{"l1": {"size": 8192, "line_size": 16, "assoc": 1,
	  "write_hit": "wb", "write_miss": "wv",
	  "valid_granularity": 8, "wv_miss_write_through": true}}`
	cfg, err := LoadConfig(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.L1.ValidGranularity != 8 || !cfg.L1.WVMissWriteThrough {
		t.Errorf("variants not loaded: %+v", cfg.L1)
	}
}

func TestLoadConfigErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"l1": {"size": 8192, "line_size": 16, "assoc": 1, "write_hit": "nope", "write_miss": "fow"}}`,
		`{"l1": {"size": 8192, "line_size": 16, "assoc": 1, "write_hit": "wb", "write_miss": "nope"}}`,
		`{"l1": {"size": 8192, "line_size": 16, "assoc": 1, "write_hit": "wb", "write_miss": "fow", "replacement": "nope"}}`,
		`{"l1": {"size": 8192, "line_size": 16, "assoc": 1, "write_hit": "wb", "write_miss": "fow"}, "unknown_field": 1}`,
		`{"l1": {"size": 3000, "line_size": 16, "assoc": 1, "write_hit": "wb", "write_miss": "fow"}}`,
		`{"l1": {"size": 8192, "line_size": 16, "assoc": 1, "write_hit": "wb", "write_miss": "fow"},
		  "l2": {"size": 4096, "line_size": 64, "assoc": 4, "write_hit": "wb", "write_miss": "nope"}}`,
		`{"l1": {"size": 8192, "line_size": 16, "assoc": 1, "write_hit": "wb", "write_miss": "fow"}}  extra`,
	}
	for i, doc := range cases {
		if _, err := LoadConfig(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d accepted:\n%s", i, doc)
		}
	}
	// The trailing-data case above relies on validation failing... check
	// a clean minimal doc parses.
	ok := `{"l1": {"size": 8192, "line_size": 16, "assoc": 1, "write_hit": "wb", "write_miss": "fow"}}`
	if _, err := LoadConfig(strings.NewReader(ok)); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestParseHelpers(t *testing.T) {
	if p, err := ParseWriteHit("WT"); err != nil || p != cache.WriteThrough {
		t.Error("case-insensitive parse failed")
	}
	if _, err := ParseWriteHit(""); err == nil {
		t.Error("empty write-hit accepted")
	}
	if p, err := ParseReplacement(""); err != nil || p != cache.LRU {
		t.Error("empty replacement should default to LRU")
	}
	if p, err := ParseWriteMiss("WI"); err != nil || p != cache.WriteInvalidate {
		t.Error("short-form write-miss parse failed")
	}
}

func TestLoadConfigInclusiveAndSector(t *testing.T) {
	doc := `{
	  "l1": {"size": 8192, "line_size": 16, "assoc": 1,
	    "write_hit": "wb", "write_miss": "fow",
	    "valid_granularity": 8, "sector_fetch": true},
	  "l2": {"size": 262144, "line_size": 64, "assoc": 4,
	    "write_hit": "wb", "write_miss": "fow"},
	  "inclusive": true
	}`
	cfg, err := LoadConfig(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Inclusive || !cfg.L1.SectorFetch {
		t.Errorf("options not loaded: %+v", cfg)
	}
}
