package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cachewrite/internal/faults"
)

func testConfig(t *testing.T, trials int) Config {
	t.Helper()
	arms, err := ParseArms("wt+parity,wb+ecc,wb+parity", Options{
		ErrorEvery: 50, ScrubInterval: 2000, XactFaultEvery: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{Arms: arms, Trials: trials, Seed: 1, TraceEvents: 5000}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunDeterministicJSON is the acceptance check: the same seed
// produces byte-identical JSON output across runs.
func TestRunDeterministicJSON(t *testing.T) {
	cfg := testConfig(t, 4)
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := mustJSON(t, a), mustJSON(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed produced different JSON:\n%s\n----\n%s", ja, jb)
	}
	if a.TrialsCompleted != cfg.Trials {
		t.Fatalf("completed %d/%d trials", a.TrialsCompleted, cfg.Trials)
	}
}

// TestRunSeedMatters guards against the opposite failure: a campaign
// that ignores its seed would pass the determinism test trivially.
func TestRunSeedMatters(t *testing.T) {
	cfg := testConfig(t, 2)
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(mustJSON(t, a), mustJSON(t, b)) {
		t.Fatal("different seeds produced identical results")
	}
}

// TestRunPairedTrials checks trial pairing: every arm replays the same
// traces, so access counts agree across arms.
func TestRunPairedTrials(t *testing.T) {
	res, err := Run(context.Background(), testConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range res.Arms[1:] {
		if arm.Report.Accesses != res.Arms[0].Report.Accesses {
			t.Errorf("arm %s saw %d accesses, arm %s saw %d — trials not paired",
				arm.Name, arm.Report.Accesses, res.Arms[0].Name, res.Arms[0].Report.Accesses)
		}
	}
}

// TestRunSchemeOrdering checks the campaign-level §3 reproduction:
// the write-through + parity arm loses no clean-array data while the
// write-back parity-only arm is the most vulnerable protected arm.
func TestRunSchemeOrdering(t *testing.T) {
	res, err := Run(context.Background(), testConfig(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ArmResult{}
	for _, a := range res.Arms {
		byName[a.Name] = a
	}
	wtp := byName["wt+parity"].Report
	for _, l := range []faults.Layer{faults.LayerL1, faults.LayerL2} {
		if lr := wtp.Layer(l); lr.DUE != 0 || lr.SDC != 0 {
			t.Errorf("wt+parity %s lost clean data: %+v", l, lr)
		}
	}
	wbp := byName["wb+parity"].Report.Total()
	wbe := byName["wb+ecc"].Report.Total()
	if !(wbe.DUE < wbp.DUE) {
		t.Errorf("wb+ecc DUE %d should be below wb+parity DUE %d", wbe.DUE, wbp.DUE)
	}
	if wtp.Total().DUE >= wbp.DUE {
		t.Errorf("wt+parity DUE %d should be below wb+parity DUE %d", wtp.Total().DUE, wbp.DUE)
	}
}

// TestRunCheckpointResume cancels a campaign before any work,
// verifies a checkpoint lands, then resumes to completion: the result
// must be byte-identical to an uninterrupted run, and the completed
// campaign must remove its checkpoint.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "camp.ckpt")

	cfg := testConfig(t, 6)
	want, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.CheckpointPath = ckpt
	cfg.CheckpointEvery = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err = Run(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
	if _, statErr := os.Stat(ckpt); statErr != nil {
		t.Fatalf("no checkpoint after cancellation: %v", statErr)
	}

	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, res), mustJSON(t, want)) {
		t.Fatalf("resumed result differs from uninterrupted result")
	}
	if _, statErr := os.Stat(ckpt); !os.IsNotExist(statErr) {
		t.Errorf("completed campaign left its checkpoint behind (stat err %v)", statErr)
	}
}

// TestRunCheckpointMidway resumes from a genuine mid-campaign
// checkpoint: the first 3 trials run as their own campaign (trial
// seeds depend only on (master seed, trial position), so the prefix
// accumulates identically), their totals are written as a Done=3
// checkpoint of the 6-trial campaign, and the resumed run must finish
// byte-identical to an uninterrupted 6-trial run.
func TestRunCheckpointMidway(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "camp.ckpt")

	cfg := testConfig(t, 6)
	want, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	prefix := cfg
	prefix.Trials = 3
	pres, err := Run(context.Background(), prefix)
	if err != nil {
		t.Fatal(err)
	}
	ck := checkpoint{
		Seed:        cfg.Seed,
		Trials:      cfg.Trials,
		TraceEvents: cfg.TraceEvents,
		WritePct:    40, // Run's default, recorded by its checkpoints
		Done:        3,
	}
	for _, a := range pres.Arms {
		ck.ArmNames = append(ck.ArmNames, a.Name)
		ck.Reports = append(ck.Reports, a.Report)
	}
	if err := saveCheckpoint(ckpt, &ck); err != nil {
		t.Fatal(err)
	}

	cfg.CheckpointPath = ckpt
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, res), mustJSON(t, want)) {
		t.Fatalf("resume from trial 3 differs from uninterrupted run:\n%s\n----\n%s",
			mustJSON(t, res), mustJSON(t, want))
	}
}

// TestCheckpointCorruptFallsBack: a corrupt current snapshot must fall
// back to the previous good one and still finish byte-identical to an
// uninterrupted run; when both snapshots are corrupt the campaign
// starts fresh instead of failing — with the same final result.
func TestCheckpointCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "camp.ckpt")

	cfg := testConfig(t, 6)
	want, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Two snapshots (Done=1 rotated to .prev, Done=2 current), then a
	// corrupted current: resume must use the rotation.
	mk := func(done int) *checkpoint {
		prefix := cfg
		prefix.Trials = done
		pres, err := Run(context.Background(), prefix)
		if err != nil {
			t.Fatal(err)
		}
		ck := &checkpoint{Seed: cfg.Seed, Trials: cfg.Trials, TraceEvents: cfg.TraceEvents,
			WritePct: 40, Done: done}
		for _, a := range pres.Arms {
			ck.ArmNames = append(ck.ArmNames, a.Name)
			ck.Reports = append(ck.Reports, a.Report)
		}
		return ck
	}
	if err := saveCheckpoint(ckpt, mk(1)); err != nil {
		t.Fatal(err)
	}
	if err := saveCheckpoint(ckpt, mk(2)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, []byte("torn snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	var warnings []string
	cfg.CheckpointPath = ckpt
	cfg.Logf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, res), mustJSON(t, want)) {
		t.Fatal("fallback resume differs from uninterrupted run")
	}
	if len(warnings) == 0 {
		t.Fatal("corrupt snapshot produced no warning")
	}

	// Both snapshots corrupt: start fresh, same result.
	cfg2 := testConfig(t, 6)
	cfg2.CheckpointPath = ckpt
	if err := os.WriteFile(ckpt, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt+".prev", []byte("also torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	res2, err := Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustJSON(t, res2), mustJSON(t, want)) {
		t.Fatal("fresh start after double corruption differs from uninterrupted run")
	}
}

// TestCheckpointMismatch rejects resuming with different parameters.
func TestCheckpointMismatch(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "camp.ckpt")
	cfg := testConfig(t, 4)
	ck := checkpoint{Seed: cfg.Seed + 1, Trials: cfg.Trials, TraceEvents: cfg.TraceEvents,
		WritePct: 40, ArmNames: []string{"wt+parity", "wb+ecc", "wb+parity"}, Done: 1,
		Reports: make([]faults.HierarchyReport, 3)}
	if err := saveCheckpoint(ckpt, &ck); err != nil {
		t.Fatal(err)
	}
	cfg.CheckpointPath = ckpt
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("mismatched checkpoint accepted")
	}
}

func TestStandardArmErrors(t *testing.T) {
	for _, bad := range []string{"wt", "wt+", "+parity", "wt+hamming", "l3+ecc", ""} {
		if _, err := StandardArm(bad, Options{}); err == nil {
			t.Errorf("arm %q accepted", bad)
		}
	}
	if _, err := ParseArms(",,", Options{}); err == nil {
		t.Error("empty arm list accepted")
	}
}
