// Package campaign runs deterministic Monte Carlo fault-injection
// sweeps across write-policy and protection-scheme arms. Each trial
// generates a fresh synthetic reference stream and replays it through
// every arm's hierarchy under hierarchy-wide bit-upset injection
// (faults.InjectHierarchy); outcomes accumulate into per-arm,
// per-layer corrected / DUE / SDC tables.
//
// Determinism is the design center: the campaign seed derives every
// trial's trace seed and every arm's injection seed through splitmix64,
// so the same seed always produces byte-identical results regardless of
// wall-clock, interleaving or resume points. Trials are paired — trial
// t replays the same trace through every arm — so arm-to-arm deltas are
// not confounded by trace sampling noise.
//
// Long campaigns checkpoint their progress through the shared
// resilience journal (atomic temp-file + rename snapshots with a
// checksummed header and fallback to the previous good snapshot) and
// resume exactly: a resumed run continues from the last completed
// trial and, because trial seeds are position-derived, finishes with
// the same result an uninterrupted run would have produced. A corrupt
// checkpoint falls back to the previous snapshot — or starts fresh —
// instead of failing the campaign. Cancellation and deadlines arrive
// via context.Context.
package campaign

import (
	"context"
	"fmt"
	"strings"

	"cachewrite/internal/cache"
	"cachewrite/internal/faults"
	"cachewrite/internal/hierarchy"
	"cachewrite/internal/resilience"
	"cachewrite/internal/synth"
	"cachewrite/internal/writebuffer"
	"cachewrite/internal/writecache"
)

// Arm is one configuration under test: a named hierarchy topology with
// per-layer protection schemes. The Seed field of Config is overridden
// per trial.
type Arm struct {
	// Name labels the arm in reports, e.g. "wt+parity".
	Name string
	// Config is the injection configuration (Seed ignored).
	Config faults.HierarchyConfig
}

// Options carries the injection knobs shared by every standard arm.
type Options struct {
	// Layers selects the layers upsets strike (default all).
	Layers []faults.Layer
	// ErrorEvery injects one upset per layer per this many accesses
	// (default 50).
	ErrorEvery int
	// ScrubInterval scrubs ECC upset accumulation every this many
	// accesses (0 = no scrubbing).
	ScrubInterval int
	// XactFaultEvery injects one transient back-side transaction fault
	// per this many transactions (0 = none).
	XactFaultEvery int
}

func (o Options) withDefaults() Options {
	if len(o.Layers) == 0 {
		o.Layers = faults.AllLayers()
	}
	if o.ErrorEvery == 0 {
		o.ErrorEvery = 50
	}
	return o
}

// StandardArm builds one of the canonical policy/protection arms from
// a spec of the form "<wt|wb>+<parity|ecc|none>".
//
// The wt topology is the paper's Fig 6 write-through pipeline: an 8KB
// direct-mapped fetch-on-write write-through L1, a 5-entry 8B write
// cache, an 8-entry coalescing write buffer, and a 64KB write-through
// L2 — no level ever holds the only copy of clean data, which is what
// lets parity alone recover every clean-data upset (§3). The wb
// topology is a plain write-back L1 + write-back L2: dirty lines hold
// sole copies, so parity-only arms lose data on every dirty strike and
// ECC is required (§3 again, quantified).
func StandardArm(spec string, opt Options) (Arm, error) {
	opt = opt.withDefaults()
	policy, schemeName, ok := strings.Cut(spec, "+")
	if !ok {
		return Arm{}, fmt.Errorf("campaign: arm %q: want <wt|wb>+<parity|ecc|none>", spec)
	}
	scheme, err := faults.ParseScheme(schemeName)
	if err != nil {
		return Arm{}, fmt.Errorf("campaign: arm %q: %w", spec, err)
	}
	cfg := faults.HierarchyConfig{
		Layers:         opt.Layers,
		ErrorEvery:     opt.ErrorEvery,
		ScrubInterval:  opt.ScrubInterval,
		XactFaultEvery: opt.XactFaultEvery,
	}
	for l := range cfg.Schemes {
		cfg.Schemes[l] = scheme
	}
	l1 := cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1}
	l2 := cache.Config{Size: 64 << 10, LineSize: 32, Assoc: 2,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
	switch policy {
	case "wt":
		l1.WriteHit = cache.WriteThrough
		l1.WriteMiss = cache.FetchOnWrite
		l2.WriteHit = cache.WriteThrough
		cfg.Hierarchy = hierarchy.Config{
			L1:         l1,
			WriteCache: &writecache.Config{Entries: 5, LineSize: 8},
			L2:         &l2,
		}
		cfg.Buffer = &writebuffer.Config{Entries: 8, LineSize: 16, RetireInterval: 8}
	case "wb":
		l1.WriteHit = cache.WriteBack
		l1.WriteMiss = cache.FetchOnWrite
		cfg.Hierarchy = hierarchy.Config{L1: l1, L2: &l2}
	default:
		return Arm{}, fmt.Errorf("campaign: arm %q: unknown policy %q (want wt or wb)", spec, policy)
	}
	return Arm{Name: spec, Config: cfg}, nil
}

// ParseArms builds arms from a comma-separated spec list, e.g.
// "wt+parity,wb+ecc,wb+parity".
func ParseArms(specs string, opt Options) ([]Arm, error) {
	var arms []Arm
	seen := map[string]bool{}
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		if seen[spec] {
			continue
		}
		seen[spec] = true
		a, err := StandardArm(spec, opt)
		if err != nil {
			return nil, err
		}
		arms = append(arms, a)
	}
	if len(arms) == 0 {
		return nil, fmt.Errorf("campaign: no arms in %q", specs)
	}
	return arms, nil
}

// Config parameterizes a campaign.
type Config struct {
	// Arms are the configurations under test.
	Arms []Arm
	// Trials is the number of Monte Carlo trials (traces) to run.
	Trials int
	// Seed is the campaign master seed; every trial and arm seed
	// derives from it deterministically.
	Seed uint64
	// TraceEvents is the synthetic trace length per trial (default
	// 30000).
	TraceEvents int
	// WritePct is the synthetic trace's store percentage (default 40,
	// roughly the paper's integer-workload store share).
	WritePct int
	// CheckpointPath, when non-empty, persists progress so an
	// interrupted campaign can resume. Written atomically.
	CheckpointPath string
	// CheckpointEvery checkpoints after this many completed trials
	// (default 16 when CheckpointPath is set).
	CheckpointEvery int
	// Logf, when non-nil, receives warnings (e.g. a corrupt checkpoint
	// snapshot that was dropped in favor of the previous good one).
	Logf func(format string, args ...any)
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if len(c.Arms) == 0 {
		return fmt.Errorf("campaign: no arms")
	}
	seen := map[string]bool{}
	for _, a := range c.Arms {
		if a.Name == "" {
			return fmt.Errorf("campaign: unnamed arm")
		}
		if seen[a.Name] {
			return fmt.Errorf("campaign: duplicate arm %q", a.Name)
		}
		seen[a.Name] = true
		if err := a.Config.Validate(); err != nil {
			return fmt.Errorf("campaign: arm %q: %w", a.Name, err)
		}
	}
	if c.Trials <= 0 {
		return fmt.Errorf("campaign: Trials must be positive")
	}
	if c.TraceEvents < 0 || c.WritePct < 0 || c.WritePct > 100 {
		return fmt.Errorf("campaign: bad trace parameters")
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("campaign: CheckpointEvery must be non-negative")
	}
	return nil
}

// ArmResult is one arm's accumulated outcome.
type ArmResult struct {
	// Name is the arm's label.
	Name string `json:"name"`
	// Report aggregates every completed trial.
	Report faults.HierarchyReport `json:"report"`
}

// Result is a campaign's outcome. Fields and slice orders are fixed,
// so encoding/json produces byte-identical output for identical seeds.
type Result struct {
	// Seed is the campaign master seed.
	Seed uint64 `json:"seed"`
	// TrialsRequested and TrialsCompleted describe progress; they
	// differ only when the campaign was cancelled.
	TrialsRequested int `json:"trialsRequested"`
	TrialsCompleted int `json:"trialsCompleted"`
	// Arms holds per-arm results in configuration order.
	Arms []ArmResult `json:"arms"`
}

// splitmix64 is the canonical seed-derivation hash: uniform,
// bijective, and cheap. Deriving every trial/arm seed by position from
// the master seed makes resumption exact.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// traceSeed derives the trial's trace-generation seed.
func traceSeed(master uint64, trial int) uint64 {
	return splitmix64(master ^ uint64(trial)<<1)
}

// injectSeed derives one arm's injection seed for a trial.
func injectSeed(master uint64, trial, arm int) uint64 {
	return splitmix64(splitmix64(master^uint64(trial)<<1) + uint64(arm) + 1)
}

// checkpoint is the persisted progress of a campaign.
type checkpoint struct {
	Seed        uint64                   `json:"seed"`
	Trials      int                      `json:"trials"`
	TraceEvents int                      `json:"traceEvents"`
	WritePct    int                      `json:"writePct"`
	ArmNames    []string                 `json:"armNames"`
	Done        int                      `json:"done"`
	Reports     []faults.HierarchyReport `json:"reports"`
}

// matches reports whether the checkpoint belongs to this configuration.
func (ck *checkpoint) matches(cfg Config) error {
	if ck.Seed != cfg.Seed || ck.Trials != cfg.Trials ||
		ck.TraceEvents != cfg.TraceEvents || ck.WritePct != cfg.WritePct {
		return fmt.Errorf("campaign: checkpoint parameters (seed %d, %d trials) do not match the requested campaign (seed %d, %d trials)",
			ck.Seed, ck.Trials, cfg.Seed, cfg.Trials)
	}
	if len(ck.ArmNames) != len(cfg.Arms) {
		return fmt.Errorf("campaign: checkpoint has %d arms, campaign has %d", len(ck.ArmNames), len(cfg.Arms))
	}
	for i, a := range cfg.Arms {
		if ck.ArmNames[i] != a.Name {
			return fmt.Errorf("campaign: checkpoint arm %d is %q, campaign wants %q", i, ck.ArmNames[i], a.Name)
		}
	}
	if ck.Done < 0 || ck.Done > ck.Trials || len(ck.Reports) != len(ck.ArmNames) {
		return fmt.Errorf("campaign: corrupt checkpoint")
	}
	return nil
}

// checkpointVersion is the campaign checkpoint schema version
// recorded in the journal header; bump it when checkpoint or
// faults.HierarchyReport changes shape so stale snapshots read as
// "start fresh" instead of misdecoding.
const checkpointVersion = 1

// checkpointJournal is the resilience journal campaigns persist
// through: atomic snapshots, CRC-validated header, and fallback to the
// previous good snapshot when the current one is corrupt.
func checkpointJournal(path string) *resilience.Journal[checkpoint] {
	return resilience.NewJournal[checkpoint](path, "campaign", checkpointVersion)
}

// saveCheckpoint persists the checkpoint through the journal.
func saveCheckpoint(path string, ck *checkpoint) error {
	return checkpointJournal(path).Save(*ck)
}

// loadCheckpoint reads the most recent good checkpoint if one exists.
// A missing journal — or one corrupt beyond the previous-snapshot
// fallback — is not an error: the campaign starts fresh (warnings go
// to logf). A checkpoint for *different* campaign parameters is an
// error: silently discarding it would surprise the user, who asked to
// resume something else.
func loadCheckpoint(path string, cfg Config, logf func(string, ...any)) (*checkpoint, error) {
	ck, info, err := checkpointJournal(path).Load()
	if err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
	}
	if logf != nil {
		for _, w := range info.Warnings {
			logf("campaign: checkpoint %s: %s", path, w)
		}
		if info.Fallback {
			logf("campaign: checkpoint %s: resumed from previous good snapshot (%d/%d trials)", path, ck.Done, ck.Trials)
		}
	}
	if !info.Found {
		return nil, nil
	}
	if err := ck.matches(cfg); err != nil {
		return nil, err
	}
	return &ck, nil
}

// Run executes the campaign. It honors ctx: on cancellation or
// deadline it checkpoints (when configured), returns the partial
// result, and reports the context's error. A completed campaign whose
// CheckpointPath is set removes the checkpoint file.
//
// For a fixed Config (including Seed), Run is fully deterministic:
// the returned Result — and its JSON encoding — is byte-identical
// across runs, interruptions and resumes.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.TraceEvents == 0 {
		cfg.TraceEvents = 30000
	}
	if cfg.WritePct == 0 {
		cfg.WritePct = 40
	}
	ckEvery := cfg.CheckpointEvery
	if ckEvery == 0 {
		ckEvery = 16
	}

	ck := &checkpoint{
		Seed:        cfg.Seed,
		Trials:      cfg.Trials,
		TraceEvents: cfg.TraceEvents,
		WritePct:    cfg.WritePct,
		Reports:     make([]faults.HierarchyReport, len(cfg.Arms)),
	}
	for _, a := range cfg.Arms {
		ck.ArmNames = append(ck.ArmNames, a.Name)
	}
	if cfg.CheckpointPath != "" {
		prev, err := loadCheckpoint(cfg.CheckpointPath, cfg, cfg.Logf)
		if err != nil {
			return Result{}, err
		}
		if prev != nil {
			ck = prev
		}
	}

	result := func() Result {
		res := Result{Seed: cfg.Seed, TrialsRequested: cfg.Trials, TrialsCompleted: ck.Done}
		for i, a := range cfg.Arms {
			res.Arms = append(res.Arms, ArmResult{Name: a.Name, Report: ck.Reports[i]})
		}
		return res
	}

	for trial := ck.Done; trial < cfg.Trials; trial++ {
		if err := ctx.Err(); err != nil {
			if cfg.CheckpointPath != "" {
				if serr := saveCheckpoint(cfg.CheckpointPath, ck); serr != nil {
					return result(), fmt.Errorf("campaign: interrupted and checkpoint failed: %w", serr)
				}
			}
			return result(), fmt.Errorf("campaign: interrupted after %d/%d trials: %w", ck.Done, cfg.Trials, err)
		}
		// One trace per trial, shared by every arm (paired trials).
		tr, err := synth.HotCold(traceSeed(cfg.Seed, trial), cfg.TraceEvents,
			64, 16, 1<<20, 80, cfg.WritePct)
		if err != nil {
			return result(), fmt.Errorf("campaign: trial %d: %w", trial, err)
		}
		for i, a := range cfg.Arms {
			acfg := a.Config
			acfg.Seed = injectSeed(cfg.Seed, trial, i)
			rep, err := faults.InjectHierarchy(acfg, tr)
			if err != nil {
				return result(), fmt.Errorf("campaign: trial %d arm %q: %w", trial, a.Name, err)
			}
			ck.Reports[i].Add(rep)
		}
		ck.Done = trial + 1
		if cfg.CheckpointPath != "" && ck.Done%ckEvery == 0 && ck.Done < cfg.Trials {
			if err := saveCheckpoint(cfg.CheckpointPath, ck); err != nil {
				return result(), fmt.Errorf("campaign: checkpoint: %w", err)
			}
		}
	}
	if cfg.CheckpointPath != "" {
		_ = checkpointJournal(cfg.CheckpointPath).Remove()
	}
	return result(), nil
}
