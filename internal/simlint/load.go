package simlint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Module is a loaded, type-checked set of packages sharing one
// FileSet — the unit RunAnalyzers operates on.
type Module struct {
	// Path is the module path (e.g. "cachewrite").
	Path string
	// Dir is the module root directory.
	Dir string
	// Fset positions every file in every package.
	Fset *token.FileSet
	// Packages are the matched (non-dependency) packages, sorted by
	// import path.
	Packages []*Package
}

// Load lists patterns in dir with the go tool, parses every matched
// package's non-test Go files and type-checks them against compiled
// export data for their dependencies. It needs no network and no
// modules beyond the standard library: dependency type information
// comes from `go list -export` build-cache artifacts, decoded by the
// standard gc importer.
//
// Test files (*_test.go) are not loaded: the simulator's invariants
// are engine contracts, and tests legitimately panic, measure time
// and exercise error paths.
func Load(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,ImportMap,Standard,DepOnly,Incomplete,Module,Error",
		"--"}, patterns...)
	cmd := exec.Command(goTool(), args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("simlint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	importMap := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if derr := dec.Decode(&p); errors.Is(derr, io.EOF) {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("simlint: decoding go list output: %w", derr)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("simlint: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("simlint: no packages matched %s", strings.Join(patterns, " "))
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	mod := &Module{Dir: dir, Fset: token.NewFileSet()}
	if targets[0].Module != nil {
		mod.Path = targets[0].Module.Path
		mod.Dir = targets[0].Module.Dir
	}
	imp := exportImporter(mod.Fset, exports, importMap)
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("simlint: package %s uses cgo, which the loader does not support", t.ImportPath)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, perr := parser.ParseFile(mod.Fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if perr != nil {
				return nil, fmt.Errorf("simlint: %w", perr)
			}
			files = append(files, f)
		}
		pkg, cerr := newPackage(t.ImportPath, mod.Fset, files, imp)
		if cerr != nil {
			return nil, fmt.Errorf("simlint: type-checking %s: %w", t.ImportPath, cerr)
		}
		mod.Packages = append(mod.Packages, pkg)
	}
	return mod, nil
}

// goTool returns the go command to invoke, honoring $GO so the
// Makefile's GO override reaches programmatic runs too.
func goTool() string {
	if g := os.Getenv("GO"); g != "" {
		return g
	}
	return "go"
}

// exportImporter builds a types.Importer that resolves every import
// from the compiled export data files `go list -export` reported.
// importMap carries vendor/test redirections (source import path →
// resolved path).
func exportImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newPackage type-checks one package's parsed files and scans its
// simlint directives. Shared by the module loader and the
// simlinttest harness.
func newPackage(pkgPath string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &Package{
		PkgPath: pkgPath,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		allow:   map[string]map[int][]string{},
	}
	p.scanDirectives()
	return p, nil
}

// CheckPackage type-checks parsed files as package pkgPath with the
// given importer and scans simlint directives — the entry point for
// the simlinttest harness, which loads testdata packages the go tool
// cannot see.
func CheckPackage(pkgPath string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	return newPackage(pkgPath, fset, files, imp)
}

// RunOnPackages runs the analyzers over explicitly loaded packages
// with package scoping disabled: harness packages exercise analyzer
// logic regardless of where the rule applies in the real module.
func RunOnPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runAnalyzers("", pkgs, analyzers, false)
}

// TestImporter resolves imports for harness-loaded packages: standard
// library packages through lazily fetched `go list -export` data, and
// sibling testdata packages registered with Add.
type TestImporter struct {
	exports   map[string]string
	importMap map[string]string
	extra     map[string]*types.Package
	gc        types.Importer
}

// NewTestImporter returns an importer whose lookups run `go list` in
// dir (any directory inside a module) on first use of each new
// import path.
func NewTestImporter(fset *token.FileSet, dir string) *TestImporter {
	ti := &TestImporter{
		exports:   map[string]string{},
		importMap: map[string]string{},
		extra:     map[string]*types.Package{},
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := ti.importMap[path]; ok {
			path = to
		}
		if _, ok := ti.exports[path]; !ok {
			if err := ti.fetch(dir, path); err != nil {
				return nil, err
			}
		}
		f, ok := ti.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	ti.gc = importer.ForCompiler(fset, "gc", lookup)
	return ti
}

// Add registers a source-checked package so later harness packages can
// import it by path.
func (ti *TestImporter) Add(pkg *types.Package) { ti.extra[pkg.Path()] = pkg }

// Import implements types.Importer.
func (ti *TestImporter) Import(path string) (*types.Package, error) {
	if p, ok := ti.extra[path]; ok {
		return p, nil
	}
	return ti.gc.Import(path)
}

// fetch populates export-data locations for path and its entire
// dependency closure.
func (ti *TestImporter) fetch(dir, path string) error {
	cmd := exec.Command(goTool(), "list", "-export", "-deps",
		"-json=ImportPath,Export,ImportMap", "--", path)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list -export %s: %w\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if derr := dec.Decode(&p); errors.Is(derr, io.EOF) {
			break
		} else if derr != nil {
			return derr
		}
		if p.Export != "" {
			ti.exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			ti.importMap[from] = to
		}
	}
	return nil
}
