package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// SentinelErr enforces the engine's error-matching contract,
// module-wide: sentinel errors (package-level `var ErrFoo = ...`
// values, plus io.EOF, context.Canceled and context.DeadlineExceeded)
// must be matched with errors.Is, never ==/!= or a switch case, and an
// error formatted into another error must be wrapped with %w so the
// sentinel stays reachable through the chain. The engine wraps every
// sentinel (`fmt.Errorf("%w after %d instructions", ErrLimit, n)`), so
// a == comparison is not merely style — it is wrong today.
var SentinelErr = &Analyzer{
	Name: "sentinelerr",
	Doc:  "sentinel errors must be compared with errors.Is and wrapped with %w",
	Run:  runSentinelErr,
}

// extraSentinels are well-known stdlib sentinels whose names do not
// start with Err.
var extraSentinels = map[string]bool{
	"io.EOF":                   true,
	"context.Canceled":         true,
	"context.DeadlineExceeded": true,
}

// sentinelVar resolves expr to a package-level error variable that
// looks like a sentinel (Err* naming convention or a known stdlib
// sentinel), returning nil otherwise.
func sentinelVar(info *types.Info, expr ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !implementsError(v.Type()) {
		return nil
	}
	if strings.HasPrefix(v.Name(), "Err") || strings.HasPrefix(v.Name(), "err") {
		return v
	}
	if extraSentinels[v.Pkg().Name()+"."+v.Name()] {
		return v
	}
	return nil
}

// isErrorExpr reports whether expr has an error-implementing type and
// is not the nil literal.
func isErrorExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.IsNil() {
		return false
	}
	return implementsError(tv.Type)
}

func runSentinelErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, pair := range [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
					if s := sentinelVar(pass.Info, pair[0]); s != nil && isErrorExpr(pass.Info, pair[1]) {
						pass.Reportf(n.Pos(), "sentinel %s compared with %s; the engine wraps its sentinels, so use errors.Is", s.Name(), n.Op)
						break
					}
				}

			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorExpr(pass.Info, n.Tag) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if s := sentinelVar(pass.Info, e); s != nil {
							pass.Reportf(e.Pos(), "sentinel %s matched in a switch case (== semantics); use errors.Is", s.Name())
						}
					}
				}

			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf calls that format an error value
// with a verb other than %w, which hides it from errors.Is/As.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if strings.Contains(format, "%[") {
		return // explicit argument indexes: too clever to map reliably
	}
	verbs := formatVerbs(format)
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) {
			break
		}
		if verb != 'w' && isErrorExpr(pass.Info, args[i]) {
			pass.Reportf(args[i].Pos(), "error formatted with %%%c loses the chain for errors.Is; wrap it with %%w", verb)
		}
	}
}

// formatVerbs returns the verb letter for each argument a fmt format
// string consumes, in order ('*' width/precision arguments are
// reported as '*').
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	verb:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '%':
				break verb // literal %%
			case c == '*':
				verbs = append(verbs, '*') // dynamic width/precision eats an arg
			case strings.ContainsRune("+-# 0.", rune(c)) || (c >= '0' && c <= '9'):
				// flags, width, precision digits
			default:
				verbs = append(verbs, rune(c))
				break verb
			}
		}
	}
	return verbs
}
