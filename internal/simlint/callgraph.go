package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// CallGraph is the module-wide static call-graph fact layer shared by
// every analyzer in a run. It is built once over all loaded packages —
// before any collect or run phase — so cross-package questions
// ("does this call transitively block?", "is this counter read from an
// exported stats emitter?") have one answer no matter which package is
// being checked.
//
// Nodes are keyed by the callee's canonical FullName (generic methods
// are canonicalized through types.Func.Origin, so a call to
// (*Journal[persistedState]).Save and the declaration of
// (*Journal[T]).Save meet at the same node — string keys, not object
// identity, because each package resolves its imports from compiled
// export data and never shares *types.Func pointers with the source-
// checked package).
//
// Edges record synchronous calls only: a call inside a `go` statement
// (or inside a function literal that is launched by one) starts a new
// goroutine and neither blocks the caller nor returns it an error, so
// it must not propagate either fact. Deferred calls and calls inside
// other function literals run on the caller's goroutine and are
// included, attributed to the enclosing declaration.
//
// The graph also records function-value bindings: every site that
// stores a statically known function into a variable or struct field
// of function type (assignment, var declaration, keyed composite
// literal). Analyzers use Bindings to resolve indirect calls through
// such slots — the hotpath analyzer resolves the kernel-dispatch
// pattern this way instead of skipping it.
type CallGraph struct {
	callees map[string]map[string]bool // caller FullName -> callee FullNames
	callers map[string]map[string]bool // reverse edges
	decls   map[string]*FuncInfo       // FullName -> declaration info
	binds   map[string]*bindSet        // func-typed slot key -> bound functions

	memo map[string]map[string]bool // analyzer-keyed closure cache
}

// FuncInfo is one declared function in the loaded packages.
type FuncInfo struct {
	// Obj is the source-checked function object.
	Obj *types.Func
	// Decl is the declaration (Body may be nil for assembly stubs).
	Decl *ast.FuncDecl
	// Pkg is the package declaring the function.
	Pkg *Package
}

// bindSet is every statically known function stored into one
// function-typed slot, plus whether any store was unresolvable (a
// closure, a call result, a parameter) — in which case the slot's
// callee set is unknown and analyzers must fall back to their
// dynamic-call behavior.
type bindSet struct {
	funcs   []*types.Func
	tainted bool
}

// canonFunc canonicalizes a function object: methods of generic
// instantiations map to their generic origin so call sites and
// declarations share one FullName.
func canonFunc(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// FuncKey is the canonical node key for a function object.
func FuncKey(fn *types.Func) string { return canonFunc(fn).FullName() }

// BuildCallGraph constructs the fact layer over the loaded packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		callees: map[string]map[string]bool{},
		callers: map[string]map[string]bool{},
		decls:   map[string]*FuncInfo{},
		binds:   map[string]*bindSet{},
		memo:    map[string]map[string]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				key := FuncKey(obj)
				g.decls[key] = &FuncInfo{Obj: obj, Decl: fn, Pkg: pkg}
				if fn.Body != nil {
					g.walkBody(pkg, key, fn.Body)
				}
			}
		}
		g.collectBindings(pkg)
	}
	return g
}

// walkBody records the synchronous call edges and skips goroutine
// launches: `go f(...)` contributes neither the edge to f nor, when f
// is a literal, the calls inside its body.
func (g *CallGraph) walkBody(pkg *Package, caller string, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned call runs on its own goroutine; its arguments,
			// however, are evaluated synchronously.
			for _, arg := range n.Call.Args {
				g.walkBody(pkg, caller, arg)
			}
			return false
		case *ast.CallExpr:
			if fn := usedFunc(pkg.Info, n); fn != nil {
				g.addEdge(caller, FuncKey(fn))
			}
		}
		return true
	})
}

func (g *CallGraph) addEdge(caller, callee string) {
	set := g.callees[caller]
	if set == nil {
		set = map[string]bool{}
		g.callees[caller] = set
	}
	set[callee] = true
	rev := g.callers[callee]
	if rev == nil {
		rev = map[string]bool{}
		g.callers[callee] = rev
	}
	rev[caller] = true
}

// collectBindings records function values stored into variables and
// struct fields of function type.
func (g *CallGraph) collectBindings(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					g.bind(pkg, lhs, n.Rhs[i])
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, name := range n.Names {
					g.bind(pkg, name, n.Values[i])
				}
			case *ast.CompositeLit:
				tv, ok := pkg.Info.Types[n]
				if !ok {
					return true
				}
				if _, isStruct := tv.Type.Underlying().(*types.Struct); !isStruct {
					return true
				}
				named := namedOf(tv.Type)
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					id, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					v, ok := pkg.Info.Uses[id].(*types.Var)
					if !ok {
						v, ok = pkg.Info.Defs[id].(*types.Var)
					}
					if !ok || !isFuncType(v.Type()) {
						continue
					}
					// Key by the literal's named type so the store meets
					// selector-based calls (`table.op(x)`) on the same slot.
					slot := fieldFallbackKey(v)
					if named != nil {
						slot = fieldKey(named, id.Name)
					}
					g.bindValue(pkg, slot, kv.Value)
				}
			}
			return true
		})
	}
}

// bind records one store of value into slot when the slot has function
// type. An unresolvable value taints the slot.
func (g *CallGraph) bind(pkg *Package, slot, value ast.Expr) {
	key, ok := slotKey(pkg, slot)
	if !ok {
		return
	}
	g.bindValue(pkg, key, value)
}

// bindValue records one store into a pre-resolved slot key.
func (g *CallGraph) bindValue(pkg *Package, key string, value ast.Expr) {
	set := g.binds[key]
	if set == nil {
		set = &bindSet{}
		g.binds[key] = set
	}
	switch v := ast.Unparen(value).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[v].(*types.Func); ok {
			set.funcs = append(set.funcs, fn)
			return
		}
		if b, ok := pkg.Info.Types[v]; ok && b.IsNil() {
			return // clearing the slot binds nothing
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[v.Sel].(*types.Func); ok {
			// Method values (x.M where M has a receiver) close over x and
			// are still a statically known callee for analysis purposes.
			set.funcs = append(set.funcs, fn)
			return
		}
	}
	set.tainted = true
}

// slotKey names a function-typed variable or field so stores and calls
// meet: fields key as "<pkg>.<Type>.<field>" (stable across packages),
// package vars as "<pkg>.<name>", locals by declaration position.
func slotKey(pkg *Package, expr ast.Expr) (string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok || !isFuncType(v.Type()) {
			return "", false
		}
		if v.IsField() {
			// A bare field ident with no recoverable owner type (composite
			// literals resolve their keys against the literal's type in
			// collectBindings instead): fall back to a position key scoped
			// to the defining package.
			return fieldFallbackKey(v), true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
		return localKey(v), true
	case *ast.SelectorExpr:
		sel, ok := pkg.Info.Selections[e]
		if !ok {
			// Qualified package-level var: pkg.Var.
			if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && isFuncType(v.Type()) && v.Pkg() != nil && !v.IsField() {
				return v.Pkg().Path() + "." + v.Name(), true
			}
			return "", false
		}
		v, ok := sel.Obj().(*types.Var)
		if !ok || !v.IsField() || !isFuncType(v.Type()) {
			return "", false
		}
		if named := namedOf(sel.Recv()); named != nil {
			return fieldKey(named, v.Name()), true
		}
		return fieldFallbackKey(v), true
	}
	return "", false
}

// fieldKey names a struct field slot.
func fieldKey(named *types.Named, field string) string {
	obj := named.Obj()
	path := ""
	if obj.Pkg() != nil {
		path = obj.Pkg().Path()
	}
	return path + "." + obj.Name() + "." + field
}

// fieldFallbackKey keys a field by its declaring package and position
// when the owning named type is not recoverable at the use site (e.g.
// a composite-literal key ident). Position-keyed stores and selector
// uses of the same field then disagree; resolveCall treats an unknown
// slot as dynamic, which is the safe direction.
func fieldFallbackKey(v *types.Var) string {
	path := ""
	if v.Pkg() != nil {
		path = v.Pkg().Path()
	}
	return path + ".field@" + posKey(v.Pos())
}

func localKey(v *types.Var) string {
	path := ""
	if v.Pkg() != nil {
		path = v.Pkg().Path()
	}
	return path + ".local@" + posKey(v.Pos())
}

func posKey(p token.Pos) string { return strconv.Itoa(int(p)) }

func isFuncType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// namedOf unwraps pointers to the named type, if any.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// Decl returns the declaration info for a function key, or nil when
// the function is not declared in the loaded packages (stdlib,
// interface methods).
func (g *CallGraph) Decl(key string) *FuncInfo { return g.decls[key] }

// Callees returns the synchronous static callees of a function key.
func (g *CallGraph) Callees(key string) map[string]bool { return g.callees[key] }

// Callers returns the functions that synchronously call the given
// function key.
func (g *CallGraph) Callers(key string) map[string]bool { return g.callers[key] }

// Decls exposes every declared function for whole-module scans (seed
// computation for analyzer closures).
func (g *CallGraph) Decls() map[string]*FuncInfo { return g.decls }

// Memo caches an analyzer-computed set under key for the lifetime of
// the run, so per-package passes share one module-wide computation.
func (g *CallGraph) Memo(key string, compute func() map[string]bool) map[string]bool {
	if got, ok := g.memo[key]; ok {
		return got
	}
	v := compute()
	g.memo[key] = v
	return v
}

// Bindings resolves an indirect call through a function-typed variable
// or field: the statically known functions stored into that slot
// module-wide. ok is false when the slot is unknown or any store was
// unresolvable — callers must then treat the call as dynamic.
func (g *CallGraph) Bindings(pkg *Package, callee ast.Expr) (fns []*types.Func, ok bool) {
	key, found := slotKey(pkg, callee)
	if !found {
		return nil, false
	}
	set := g.binds[key]
	if set == nil || set.tainted || len(set.funcs) == 0 {
		return nil, false
	}
	return set.funcs, true
}

// Reaching returns every function from which some function in targets
// is reachable over synchronous call edges (targets included). The
// result is memoized under key — analyzers compute their closure once
// per run and share it across per-package passes.
func (g *CallGraph) Reaching(key string, targets map[string]bool) map[string]bool {
	if got, ok := g.memo[key]; ok {
		return got
	}
	closed := closure(targets, g.callers)
	g.memo[key] = closed
	return closed
}

// ReachableFrom returns every function reachable from roots over
// synchronous call edges (roots included), memoized under key.
func (g *CallGraph) ReachableFrom(key string, roots map[string]bool) map[string]bool {
	if got, ok := g.memo[key]; ok {
		return got
	}
	closed := closure(roots, g.callees)
	g.memo[key] = closed
	return closed
}

func closure(seed map[string]bool, edges map[string]map[string]bool) map[string]bool {
	out := make(map[string]bool, len(seed))
	var stack []string
	for k := range seed {
		out[k] = true
		stack = append(stack, k)
	}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := range edges[k] {
			if !out[next] {
				out[next] = true
				stack = append(stack, next)
			}
		}
	}
	return out
}
