package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrFlow audits storage-error handling in the durability packages:
// every error produced by a vfs.FS/vfs.File operation — directly, or
// through any module function that transitively performs vfs I/O and
// returns an error — must be checked before the value dies, and a
// branch that decides to swallow one must first classify it (via
// vfs.IsStorageFault, errors.Is or errors.As) or wrap it with %w so
// the cause survives. A silently dropped storage error is how a torn
// write becomes "the journal was empty": the crash-consistency proofs
// in the fault harness only hold when every error either propagates or
// is classified as an injected fault.
//
// Two shapes are flagged:
//
//   - discards: `_ = op()`, `x, _ := op()`, or a bare `op()` expression
//     statement whose error result is vfs-derived. Deferred calls are
//     exempt (`defer f.Close()` is the sanctioned best-effort cleanup
//     idiom), as are goroutine launches (their results are unusable by
//     construction).
//
//   - swallows: an `if err != nil { ... }` branch that neither returns
//     the error, wraps it with %w, stores or forwards it, nor
//     classifies it — logging with %v does not count, because the
//     typed cause is lost.
var ErrFlow = &Analyzer{
	Name:     "errflow",
	Doc:      "vfs errors must be checked before they die; swallowing branches must classify (vfs.IsStorageFault) or wrap (%w)",
	Packages: DurabilityPackages,
	Run:      runErrFlow,
}

// errflowKey memoizes the set of module functions whose error results
// are vfs-derived.
const errflowKey = "errflow:vfserr"

// vfsErrClosure computes the module functions that return an error and
// perform vfs I/O — directly, or by synchronously calling another such
// function. An error received from any of them is a storage error for
// errflow's purposes.
func vfsErrClosure(g *CallGraph) map[string]bool {
	return g.Memo(errflowKey, func() map[string]bool {
		out := map[string]bool{}
		var queue []string
		for key, fi := range g.Decls() {
			if fi.Decl.Body == nil || !returnsError(fi.Obj) {
				continue
			}
			direct := false
			ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
				if direct {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if fn := usedFunc(fi.Pkg.Info, call); fn != nil && isVFSOp(fn) {
						direct = true
						return false
					}
				}
				return true
			})
			if direct {
				out[key] = true
				queue = append(queue, key)
			}
		}
		for len(queue) > 0 {
			key := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for caller := range g.Callers(key) {
				if out[caller] {
					continue
				}
				fi := g.Decl(caller)
				if fi == nil || !returnsError(fi.Obj) {
					continue
				}
				out[caller] = true
				queue = append(queue, caller)
			}
		}
		return out
	})
}

// returnsError reports whether any of fn's results satisfies error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if implementsError(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// vfsDerivedCall reports whether the call's error result originates in
// vfs I/O: the callee is a vfs operation itself, or a module function
// in the vfs-error closure. The callee's rendered name is returned for
// diagnostics.
func vfsDerivedCall(pass *Pass, vfsErr map[string]bool, call *ast.CallExpr) (string, bool) {
	fn := usedFunc(pass.Info, call)
	if fn == nil {
		return "", false
	}
	if isVFSOp(fn) {
		return "vfs." + fn.Name(), true
	}
	if vfsErr[FuncKey(fn)] {
		return fn.Name(), true
	}
	return "", false
}

func runErrFlow(pass *Pass) error {
	vfsErr := vfsErrClosure(pass.Graph)
	for _, f := range pass.Files {
		w := &errflowWalker{pass: pass, vfsErr: vfsErr}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				// defer f.Close() is the sanctioned best-effort idiom; the
				// deferred call's result is structurally unusable.
				return false
			case *ast.GoStmt:
				for _, arg := range n.Call.Args {
					ast.Inspect(arg, func(c ast.Node) bool { w.visit(c); return true })
				}
				return false
			default:
				w.visit(n)
			}
			return true
		})
	}
	return nil
}

type errflowWalker struct {
	pass   *Pass
	vfsErr map[string]bool
}

func (w *errflowWalker) visit(n ast.Node) {
	switch n := n.(type) {
	case *ast.ExprStmt:
		// Bare call statement: every result, error included, dies here.
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if name, ok := vfsDerivedCall(w.pass, w.vfsErr, call); ok && callReturnsError(w.pass.Info, call) {
				w.pass.ReportRangef(n, "error from %s discarded: check it before the value dies (classify storage faults with vfs.IsStorageFault or propagate with %%w)", name)
			}
		}
	case *ast.AssignStmt:
		w.checkBlankAssign(n)
	case *ast.IfStmt:
		// if err := op(); err != nil { ... } — init-statement form.
		if init, ok := n.Init.(*ast.AssignStmt); ok {
			w.checkSwallowIf(init, n)
		}
	case *ast.BlockStmt:
		w.checkAdjacent(n.List)
	case *ast.CaseClause:
		w.checkAdjacent(n.Body)
	case *ast.CommClause:
		w.checkAdjacent(n.Body)
	}
}

// checkAdjacent handles the two-statement canonical form
//
//	err := op()
//	if err != nil { ... }
//
// within one statement list. Only the immediately-adjacent pairing is
// checked — flows that separate the assignment from its test are out
// of scope for a local analysis.
func (w *errflowWalker) checkAdjacent(stmts []ast.Stmt) {
	for i := 0; i+1 < len(stmts); i++ {
		assign, ok := stmts[i].(*ast.AssignStmt)
		if !ok {
			continue
		}
		ifStmt, ok := stmts[i+1].(*ast.IfStmt)
		if !ok || ifStmt.Init != nil {
			continue
		}
		w.checkSwallowIf(assign, ifStmt)
	}
}

// checkBlankAssign flags `_ = op()` / `x, _ := op()` where the blanked
// position is the vfs-derived error.
func (w *errflowWalker) checkBlankAssign(n *ast.AssignStmt) {
	if len(n.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, derived := vfsDerivedCall(w.pass, w.vfsErr, call)
	if !derived {
		return
	}
	for i, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if resultIsError(w.pass.Info, call, i, len(n.Lhs)) {
			w.pass.ReportRangef(n, "error from %s discarded into _: check it before the value dies (classify storage faults with vfs.IsStorageFault or propagate with %%w)", name)
			return
		}
	}
}

// checkSwallowIf analyzes `if err := op(); err != nil { body }` (and is
// also invoked for the adjacent form with the paired assignment).
func (w *errflowWalker) checkSwallowIf(assign *ast.AssignStmt, ifStmt *ast.IfStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, derived := vfsDerivedCall(w.pass, w.vfsErr, call)
	if !derived {
		return
	}
	errObj := condErrObj(w.pass.Info, ifStmt.Cond)
	if errObj == nil || !assignsObj(w.pass.Info, assign, errObj) {
		return
	}
	if branchHandlesErr(w.pass, ifStmt.Body, errObj) {
		return
	}
	w.pass.ReportRangef(ifStmt, "storage error from %s swallowed: branch neither propagates it, wraps it with %%w, nor classifies it via vfs.IsStorageFault/errors.Is", name)
}

// condErrObj matches `x != nil` and returns x's object.
func condErrObj(info *types.Info, cond ast.Expr) types.Object {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return nil
	}
	id, ok := ast.Unparen(bin.X).(*ast.Ident)
	if !ok {
		return nil
	}
	if y, ok := info.Types[bin.Y]; !ok || !y.IsNil() {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || !implementsError(obj.Type()) {
		return nil
	}
	return obj
}

// assignsObj reports whether the assignment defines or assigns obj.
func assignsObj(info *types.Info, assign *ast.AssignStmt, obj types.Object) bool {
	for _, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		if info.Defs[id] == obj || info.Uses[id] == obj {
			return true
		}
	}
	return false
}

// branchHandlesErr reports whether the error escapes or is classified
// inside the branch: any use of the variable outside a "bad" context —
// a log-like call, or fmt.Errorf without %w — counts as handling
// (return, store, send, wrap, errors.Join, vfs.IsStorageFault,
// errors.Is/As all qualify structurally).
func branchHandlesErr(pass *Pass, body *ast.BlockStmt, errObj types.Object) bool {
	// First index the "bad" call ranges: uses inside them do not count.
	type span struct{ from, to token.Pos }
	var bad []span
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBadWrap(pass.Info, call) || isLogLike(pass.Info, call) {
			bad = append(bad, span{call.Pos(), call.End()})
		}
		return true
	})
	handled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if handled {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != errObj {
			return true
		}
		for _, s := range bad {
			if id.Pos() >= s.from && id.Pos() < s.to {
				return true
			}
		}
		handled = true
		return false
	})
	return handled
}

// isBadWrap matches fmt.Errorf calls whose format verb loses the typed
// error: no %w in the (literal) format string.
func isBadWrap(info *types.Info, call *ast.CallExpr) bool {
	if !isPkgFunc(info, call, "fmt", "Errorf") || len(call.Args) == 0 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return false // non-literal format: give it the benefit of the doubt
	}
	return !strings.Contains(lit.Value, "%w")
}

// isLogLike matches calls that only report: the log package, testing
// helpers, and anything named like logging.
func isLogLike(info *types.Info, call *ast.CallExpr) bool {
	fn := usedFunc(info, call)
	if fn == nil {
		return false
	}
	if calleePath(fn) == "log" {
		return true
	}
	name := strings.ToLower(fn.Name())
	for _, frag := range []string{"log", "print", "warn", "debug"} {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}

// callReturnsError reports whether the call produces at least one
// error value.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if implementsError(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return implementsError(tv.Type)
	}
}

// resultIsError reports whether result position i of the call (out of
// n assigned positions) has error type.
func resultIsError(info *types.Info, call *ast.CallExpr, i, n int) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		if i >= tuple.Len() {
			return false
		}
		return implementsError(tuple.At(i).Type())
	}
	return n == 1 && i == 0 && implementsError(tv.Type)
}
