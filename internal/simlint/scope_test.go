package simlint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cachewrite/internal/simlint"
)

// TestScopedPackagesExist asserts that every package path named in an
// analyzer scope corresponds to a real directory with Go sources. A
// renamed or deleted engine package would otherwise silently drop out
// of enforcement.
func TestScopedPackagesExist(t *testing.T) {
	seen := map[string]bool{}
	var scoped []string
	for _, list := range [][]string{
		simlint.EnginePackages,
		simlint.DeterministicPackages,
		simlint.WorkerLoopPackages,
		simlint.DurabilityPackages,
		simlint.LockedPackages,
		simlint.StatsPackages,
	} {
		for _, p := range list {
			if !seen[p] {
				seen[p] = true
				scoped = append(scoped, p)
			}
		}
	}
	if len(scoped) == 0 {
		t.Fatal("no scoped packages registered")
	}
	for _, rel := range scoped {
		// Tests run with internal/simlint as the working directory;
		// scope entries are module-relative.
		dir := filepath.Join("..", "..", filepath.FromSlash(rel))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("scoped package %s: %v", rel, err)
			continue
		}
		hasGo := false
		for _, e := range entries {
			name := e.Name()
			if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			t.Errorf("scoped package %s has no non-test Go files", rel)
		}
	}
}

// TestAnalyzerRegistry asserts the suite stays complete: nine
// analyzers, unique names, docs present.
func TestAnalyzerRegistry(t *testing.T) {
	all := simlint.All()
	if len(all) != 9 {
		t.Fatalf("expected 9 analyzers, got %d", len(all))
	}
	names := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		names[a.Name] = true
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}
