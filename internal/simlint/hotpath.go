package simlint

import (
	"go/ast"
	"go/types"
)

// Hotpath enforces the zero-allocation contract on functions marked
// //simlint:hotpath and on everything they statically call: the cache
// access loop runs once per trace event across every gang member, so
// a single stray allocation multiplies into millions and shows up
// directly in ns/event (TestAccessZeroAlloc pins the runtime truth;
// this analyzer pins it at compile time, for every build).
//
// Inside the hot-path closure the analyzer rejects the constructs that
// allocate or defeat escape analysis: calls into package fmt, the
// append/make/new builtins, map/slice composite literals, closures
// (func literals), string<->[]byte/[]rune conversions, and interface
// boxing of concrete values (in call arguments, assignments and
// returns). Static calls must stay inside the closure: a call into
// another package is only legal when the callee is itself marked
// //simlint:hotpath (the marks are collected module-wide before any
// package is checked) or belongs to a whitelisted allocation-free
// package (math/bits). Calls through interfaces dispatch dynamically
// and are accepted — annotate the concrete implementations instead.
// Indirect calls through function values are resolved via the module
// call graph's binding facts: when every store into the slot is a
// statically known function (the kernel-dispatch pattern), each bound
// callee is held to the same closure rule; only slots with an
// unresolvable store remain dynamic.
var Hotpath = &Analyzer{
	Name:    hotpathName,
	Doc:     "functions marked //simlint:hotpath (and their static callees) may not allocate",
	Collect: collectHotpath,
	Run:     runHotpath,
}

// hotpathName is the analyzer name, also the Facts namespace the
// collect phase writes //simlint:hotpath marks under (a named
// constant so the collect hook does not refer back to the Analyzer
// value, which would be an initialization cycle).
const hotpathName = "hotpath"

// hotpathSafePackages never allocate in any exported call.
var hotpathSafePackages = map[string]bool{
	"math/bits": true,
	"math":      true,
}

// collectHotpath records the FullName of every //simlint:hotpath
// function, module-wide, so cross-package calls between hot functions
// resolve during the run phase.
func collectHotpath(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !HasFuncDirective(fn, HotpathDirective) {
				continue
			}
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
				pass.Facts.Set(hotpathName, obj.FullName())
			}
		}
	}
	return nil
}

func runHotpath(pass *Pass) error {
	// Index this package's function declarations by object, so static
	// same-package calls can be followed into their bodies.
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
				decls[obj] = fn
			}
			if HasFuncDirective(fn, HotpathDirective) {
				roots = append(roots, fn)
			}
		}
	}

	visited := map[*ast.FuncDecl]bool{}
	var check func(fn *ast.FuncDecl, root string)
	check = func(fn *ast.FuncDecl, root string) {
		if visited[fn] {
			return
		}
		visited[fn] = true
		if fn.Body == nil {
			return
		}
		w := &hotpathWalker{pass: pass, root: root, decls: decls, check: check, results: funcResults(pass.Info, fn)}
		ast.Inspect(fn.Body, w.visit)
	}
	for _, fn := range roots {
		check(fn, fn.Name.Name)
	}
	return nil
}

// funcResults returns the declared result types of fn, for boxing
// checks on return statements.
func funcResults(info *types.Info, fn *ast.FuncDecl) []types.Type {
	obj, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	out := make([]types.Type, sig.Results().Len())
	for i := range out {
		out[i] = sig.Results().At(i).Type()
	}
	return out
}

// hotpathWalker reports allocation sites in one hot-path function
// body.
type hotpathWalker struct {
	pass    *Pass
	root    string // the hotpath root this function is reached from
	decls   map[*types.Func]*ast.FuncDecl
	check   func(fn *ast.FuncDecl, root string)
	results []types.Type
}

func (w *hotpathWalker) visit(n ast.Node) bool {
	pass := w.pass
	switch n := n.(type) {
	case *ast.FuncLit:
		pass.Reportf(n.Pos(), "closure in hot path (reached from %s): func literals allocate", w.root)
		return false // the literal is already rejected; don't double-report its body

	case *ast.CompositeLit:
		if tv, ok := pass.Info.Types[n]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hot path (reached from %s) allocates", w.root)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hot path (reached from %s) allocates", w.root)
			}
		}

	case *ast.CallExpr:
		w.call(n)

	case *ast.ValueSpec:
		if len(n.Names) == len(n.Values) {
			for i, v := range n.Values {
				w.boxing(v, pass.Info.TypeOf(n.Names[i]), "declaration")
			}
		}

	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			if len(n.Lhs) != len(n.Rhs) {
				break // multi-value RHS: conversion to interface impossible here
			}
			lt := pass.Info.TypeOf(n.Lhs[i])
			w.boxing(rhs, lt, "assignment")
		}

	case *ast.ReturnStmt:
		if len(n.Results) == len(w.results) {
			for i, res := range n.Results {
				w.boxing(res, w.results[i], "return")
			}
		}
	}
	return true
}

// call checks one call expression: builtins that allocate, type
// conversions that allocate, fmt, and the static-callee closure rule.
func (w *hotpathWalker) call(call *ast.CallExpr) {
	pass := w.pass

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "append in hot path (reached from %s) may grow and allocate", w.root)
			case "make", "new":
				pass.Reportf(call.Pos(), "%s in hot path (reached from %s) allocates", b.Name(), w.root)
			}
			return
		}
	}

	// Conversions: string <-> []byte/[]rune allocate; conversion to an
	// interface type boxes.
	if tv, ok := pass.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := pass.Info.TypeOf(call.Args[0])
		if isStringSliceConv(dst, src) {
			pass.Reportf(call.Pos(), "string/slice conversion in hot path (reached from %s) allocates", w.root)
		}
		w.boxing(call.Args[0], dst, "conversion")
		return
	}

	fn := usedFunc(pass.Info, call)
	if fn != nil {
		sig := fn.Type().(*types.Signature)
		// Interface method call: dynamic dispatch, checked at the
		// implementations.
		if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
			w.callArgs(call, sig)
			return
		}
		switch path := calleePath(fn); {
		case path == "fmt":
			pass.Reportf(call.Pos(), "fmt.%s in hot path (reached from %s) allocates", fn.Name(), w.root)
			return
		case path == pass.PkgPath || path == pass.Types.Path():
			if decl, ok := w.decls[fn]; ok {
				w.check(decl, w.root)
			}
		case hotpathSafePackages[path]:
			// whitelisted allocation-free package
		case pass.Facts.Has(hotpathName, fn.FullName()):
			// cross-package callee carries its own //simlint:hotpath mark
		default:
			pass.Reportf(call.Pos(), "hot path (reached from %s) calls %s, which is outside the package and not marked //simlint:hotpath", w.root, fn.FullName())
			return
		}
		w.callArgs(call, sig)
		return
	}

	// Indirect call through a function value. The call graph's binding
	// facts resolve the kernel-dispatch pattern — a function variable or
	// struct field only ever assigned statically known functions — so
	// each possible callee is held to the closure rule instead of being
	// skipped. A slot with an unresolvable store stays dynamic and only
	// the arguments are checked.
	if sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature); ok {
		if w.pass.Graph != nil {
			if bound, ok := pass.Graph.Bindings(pass.Package, ast.Unparen(call.Fun)); ok {
				for _, fn := range bound {
					w.boundCallee(call, fn)
				}
			}
		}
		w.callArgs(call, sig)
	}
}

// boundCallee applies the static-closure rule to one function resolved
// through a function-value slot.
func (w *hotpathWalker) boundCallee(call *ast.CallExpr, fn *types.Func) {
	pass := w.pass
	switch path := calleePath(fn); {
	case path == "fmt":
		pass.Reportf(call.Pos(), "fmt.%s reached through a function value in hot path (reached from %s) allocates", fn.Name(), w.root)
	case path == pass.PkgPath || path == pass.Types.Path():
		if decl, ok := w.decls[fn]; ok {
			w.check(decl, w.root)
		}
	case hotpathSafePackages[path]:
		// whitelisted allocation-free package
	case pass.Facts.Has(hotpathName, fn.FullName()):
		// bound callee carries its own //simlint:hotpath mark
	default:
		pass.Reportf(call.Pos(), "hot path (reached from %s) dispatches to %s through a function value; it is outside the package and not marked //simlint:hotpath", w.root, fn.FullName())
	}
}

// callArgs flags concrete arguments passed to interface parameters.
func (w *hotpathWalker) callArgs(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarded slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		w.boxing(arg, pt, "argument")
	}
}

// boxing reports expr when it is a concrete, non-nil value placed
// into an interface-typed slot.
func (w *hotpathWalker) boxing(expr ast.Expr, target types.Type, what string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := w.pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) {
		return // interface-to-interface: no box
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	w.pass.Reportf(expr.Pos(), "interface boxing in hot path (reached from %s): %s %s converted to %s allocates", w.root, what, tv.Type, target)
}

// isStringSliceConv reports a conversion between string and a byte or
// rune slice (either direction), which copies and allocates.
func isStringSliceConv(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isString(src) && isByteOrRuneSlice(dst))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32
}
