package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StatSound is the static analogue of the paper's traffic-accounting
// exactness: a counter that exists but is never incremented reports a
// traffic class as zero forever, and a counter that is incremented but
// never exported is accounting nobody can audit. For every counter
// candidate in the stats packages — an integer or atomic field of a
// struct whose name contains "Stats" or "Metrics", or a package-level
// atomic variable — the analyzer requires both sides of the contract:
//
//   - bumped: some function in the module writes it (++, +=, =, an
//     atomic Add/Store/Swap, or a keyed composite-literal entry), and
//   - published: some function reachable from an exported emitter (a
//     function whose name contains Stats, Snapshot, Metrics, Status,
//     Health or Report) reads it — individually, through an atomic
//     Load, or by copying/returning the whole struct.
//
// Reachability uses the module call graph, so a helper that gathers
// fields for MetricsSnapshot publishes them even though the helper
// itself is unexported.
var StatSound = &Analyzer{
	Name:     "statsound",
	Doc:      "every stats counter must be both incremented somewhere and read by an exported snapshot/Stats/statusz emitter",
	Packages: StatsPackages,
	Run:      runStatSound,
}

const statsoundKey = "statsound:facts"

// statStructName reports struct type names that hold accounting.
func statStructName(name string) bool {
	return strings.Contains(name, "Stats") || strings.Contains(name, "Metrics")
}

// emitterName reports exported-function names that publish accounting.
func emitterName(name string) bool {
	for _, frag := range []string{"Stats", "Snapshot", "Metrics", "Status", "Health", "Report"} {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}

// isAtomicCounter reports sync/atomic integer wrapper types.
func isAtomicCounter(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Int32", "Int64", "Uint32", "Uint64":
		return true
	}
	return false
}

// isCounterType reports types a counter field may have: plain integers
// (but not time.Duration and friends from outside the module) or the
// atomic wrappers.
func isCounterType(t types.Type) bool {
	if isAtomicCounter(t) {
		return true
	}
	if named := namedOf(t); named != nil {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "time" {
			return false
		}
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// statFacts computes, once per run, the module-wide write ("w:<slot>")
// and publish ("p:<slot>" / whole-struct "P:<pkg>.<Type>") facts for
// every counter-shaped slot. Publish facts are only recorded inside
// functions reachable from an exported emitter.
func statFacts(g *CallGraph) map[string]bool {
	return g.Memo(statsoundKey, func() map[string]bool {
		seeds := map[string]bool{}
		for key, fi := range g.Decls() {
			if fi.Obj.Exported() && emitterName(fi.Obj.Name()) {
				seeds[key] = true
			}
		}
		emit := g.ReachableFrom("statsound:emitters", seeds)
		out := map[string]bool{}
		for key, fi := range g.Decls() {
			if fi.Decl.Body == nil {
				continue
			}
			collectStatFacts(fi.Pkg, fi.Decl.Body, emit[key], out)
		}
		return out
	})
}

// collectStatFacts walks one function body. inEmit marks bodies inside
// the emitter closure, where reads count as publication.
func collectStatFacts(pkg *Package, body ast.Node, inEmit bool, out map[string]bool) {
	// LHS and atomic-write receivers must not double as reads.
	written := map[ast.Expr]bool{}
	wholeRead := func(expr ast.Expr) {
		if !inEmit {
			return
		}
		e := ast.Unparen(expr)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return
		}
		t := pkg.Info.TypeOf(e)
		if t == nil {
			return
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named := namedOf(t); named != nil && statStructName(named.Obj().Name()) {
			out["P:"+typeKeyOf(named)] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if k, ok := statKey(pkg, n.X); ok {
				out["w:"+k] = true
			}
			written[n.X] = true
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if k, ok := statKey(pkg, lhs); ok {
					out["w:"+k] = true
				}
				written[lhs] = true
			}
			for _, rhs := range n.Rhs {
				wholeRead(rhs)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				wholeRead(r)
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Add", "Store", "Swap", "CompareAndSwap":
					if t := pkg.Info.TypeOf(sel.X); t != nil && isAtomicCounter(t) {
						if k, ok := statKey(pkg, sel.X); ok {
							out["w:"+k] = true
						}
						written[sel.X] = true
					}
				}
			}
			for _, a := range n.Args {
				wholeRead(a)
			}
		case *ast.CompositeLit:
			tv, ok := pkg.Info.Types[n]
			if !ok {
				return true
			}
			named := namedOf(tv.Type)
			if named == nil || !statStructName(named.Obj().Name()) {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				fk := fieldKey(named, key.Name)
				// A keyed entry writes the snapshot field; inside the
				// emitter closure it also publishes it (the value flows out
				// with the snapshot).
				out["w:"+fk] = true
				if inEmit {
					out["p:"+fk] = true
				}
				written[kv.Key] = true
				wholeRead(kv.Value)
			}
		case *ast.SelectorExpr:
			if written[n] {
				return true
			}
			if inEmit {
				if k, ok := statKey(pkg, n); ok {
					out["p:"+k] = true
				}
			}
		case *ast.Ident:
			if written[n] || !inEmit {
				return true
			}
			if k, ok := statIdentKey(pkg, n); ok {
				out["p:"+k] = true
			}
		}
		return true
	})
}

// statKey names a counter slot: struct fields as
// "<pkg>.<Type>.<field>" (instance-insensitive), package-level vars as
// "<pkg>.<name>".
func statKey(pkg *Package, expr ast.Expr) (string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return statIdentKey(pkg, e)
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok {
			v, ok := sel.Obj().(*types.Var)
			if !ok || !v.IsField() {
				return "", false
			}
			if named := namedOf(sel.Recv()); named != nil {
				return fieldKey(named, v.Name()), true
			}
			return "", false
		}
		// Qualified package-level var (pkg.Counter).
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	}
	return "", false
}

func statIdentKey(pkg *Package, e *ast.Ident) (string, bool) {
	obj := pkg.Info.Uses[e]
	if obj == nil {
		obj = pkg.Info.Defs[e]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	return v.Pkg().Path() + "." + v.Name(), true
}

// typeKeyOf names a struct type for whole-struct publish facts.
func typeKeyOf(named *types.Named) string {
	obj := named.Obj()
	path := ""
	if obj.Pkg() != nil {
		path = obj.Pkg().Path()
	}
	return path + "." + obj.Name()
}

func runStatSound(pass *Pass) error {
	facts := statFacts(pass.Graph)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.TYPE:
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !statStructName(ts.Name.Name) {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					named, ok := tn.Type().(*types.Named)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							v, ok := pass.Info.Defs[name].(*types.Var)
							if !ok || !isCounterType(v.Type()) {
								continue
							}
							reportStat(pass, name, facts,
								fieldKey(named, name.Name), "P:"+typeKeyOf(named),
								ts.Name.Name+"."+name.Name)
						}
					}
				}
			case token.VAR:
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						v, ok := pass.Info.Defs[name].(*types.Var)
						if !ok || !isAtomicCounter(v.Type()) {
							continue
						}
						if v.Parent() != pass.Types.Scope() {
							continue
						}
						reportStat(pass, name, facts,
							v.Pkg().Path()+"."+v.Name(), "", name.Name)
					}
				}
			}
		}
	}
	return nil
}

// reportStat checks one counter candidate against the module facts and
// reports the missing side(s) of the accounting contract.
func reportStat(pass *Pass, at ast.Node, facts map[string]bool, slot, wholeKey, display string) {
	bumped := facts["w:"+slot]
	published := facts["p:"+slot] || (wholeKey != "" && facts[wholeKey])
	switch {
	case !bumped && !published:
		pass.ReportRangef(at, "counter %s is never incremented and never read by an exported stats emitter: dead accounting", display)
	case !bumped:
		pass.ReportRangef(at, "counter %s is read by a stats emitter but never incremented anywhere in the module: it always reports zero", display)
	case !published:
		pass.ReportRangef(at, "counter %s is incremented but never read by an exported snapshot/Stats/statusz emitter: the accounting is unobservable", display)
	}
}
