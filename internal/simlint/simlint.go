// Package simlint is a custom static-analysis suite that enforces the
// simulator's engine invariants at compile time: panic-free engine
// packages, a zero-allocation access hot path, errors.Is-only sentinel
// comparisons, deterministic result emission, and cancellable worker
// loops. cmd/simlint runs every analyzer over the module as part of
// `make check`; docs/simlint.md describes each rule and its escape
// hatches.
//
// The framework mirrors golang.org/x/tools/go/analysis in miniature,
// but is built only on the standard library so the repository carries
// no external dependencies: packages are enumerated with
// `go list -export -deps -json` and dependency types are decoded from
// the build cache's compiled export data.
package simlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Directive comments:
//
//	//simlint:allow <analyzer> [reason]
//	//simlint:allow
//
// placed on the flagged line or the line directly above it suppress
// that analyzer's diagnostics (the bare form suppresses every
// analyzer). A reason is strongly encouraged.
//
//	//simlint:hotpath
//
// in a function's doc comment marks it (and, transitively, everything
// it statically calls) as part of the zero-allocation hot path checked
// by the hotpath analyzer.
const (
	directivePrefix = "simlint:"
	allowDirective  = "allow"
	// HotpathDirective is the doc-comment directive that puts a
	// function under the hotpath analyzer's contract.
	HotpathDirective = "hotpath"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Pos locates the start of the finding.
	Pos token.Position
	// End locates the end of the flagged expression (same file as Pos).
	// For point diagnostics End equals Pos; editors and the SARIF
	// output use the pair to underline the full expression rather than
	// a single column.
	End token.Position
	// Analyzer names the reporting analyzer.
	Analyzer string
	// Message describes the violation and how to resolve it.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the package's import path.
	PkgPath string
	// Fset positions every file.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression/object maps.
	Info *types.Info

	// allow maps filename → line → analyzer names suppressed there
	// ("" suppresses all).
	allow map[string]map[int][]string
}

// scanDirectives indexes every //simlint:allow comment by file and
// line.
func (p *Package) scanDirectives() {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 || fields[0] != allowDirective {
					continue
				}
				name := "" // bare allow: every analyzer
				if len(fields) > 1 {
					name = fields[1]
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.allow[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					p.allow[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], name)
			}
		}
	}
}

// directiveText returns the text after "//simlint:" when the comment
// is a simlint directive.
func directiveText(comment string) (string, bool) {
	if !strings.HasPrefix(comment, "//") {
		return "", false
	}
	rest := strings.TrimPrefix(comment, "//")
	if !strings.HasPrefix(rest, directivePrefix) {
		return "", false
	}
	return strings.TrimPrefix(rest, directivePrefix), true
}

// suppressed reports whether analyzer diagnostics at pos are covered
// by an allow directive on the same line or the line above.
func (p *Package) suppressed(analyzer string, pos token.Position) bool {
	byLine := p.allow[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == "" || name == analyzer {
				return true
			}
		}
	}
	return false
}

// HasFuncDirective reports whether the function declaration's doc
// comment carries the given simlint directive (e.g. "hotpath").
func HasFuncDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		rest, ok := directiveText(c.Text)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) > 0 && fields[0] == directive {
			return true
		}
	}
	return false
}

// Facts is the cross-package blackboard written during the collect
// phase and read during the run phase (the miniature counterpart of
// go/analysis facts). Keys are namespaced per analyzer.
type Facts struct {
	m map[string]map[string]bool
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts { return &Facts{m: map[string]map[string]bool{}} }

// Set records fact key for analyzer.
func (f *Facts) Set(analyzer, key string) {
	set := f.m[analyzer]
	if set == nil {
		set = map[string]bool{}
		f.m[analyzer] = set
	}
	set[key] = true
}

// Has reports whether fact key was recorded for analyzer.
func (f *Facts) Has(analyzer, key string) bool { return f.m[analyzer][key] }

// Pass carries one analyzer's view of one package.
type Pass struct {
	*Package
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Facts is shared by every pass of the run.
	Facts *Facts
	// Graph is the module-wide call-graph fact layer, built once over
	// every loaded package before any collect or run phase.
	Graph *CallGraph

	diags *[]Diagnostic
}

// Reportf records a point diagnostic at pos unless an allow directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, pos, format, args...)
}

// ReportRangef records a diagnostic spanning node's full extent, so
// editors and SARIF underline the whole flagged expression.
func (p *Pass) ReportRangef(node ast.Node, format string, args ...any) {
	p.report(node.Pos(), node.End(), format, args...)
}

func (p *Pass) report(pos, end token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(p.Analyzer.Name, position) {
		return
	}
	endPosition := position
	if end.IsValid() && end != pos {
		endPosition = p.Fset.Position(end)
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		End:      endPosition,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow
	// directives.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Packages restricts the run phase to these module-relative
	// package paths (e.g. "internal/cache"); nil means every package.
	// The collect phase always sees every package.
	Packages []string
	// Collect, when non-nil, runs over every loaded package before
	// any Run, recording cross-package facts.
	Collect func(*Pass) error
	// Run reports diagnostics for one package.
	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer's run phase covers the
// package, given the module path ("" matches by suffix only, for
// harness-loaded packages).
func (a *Analyzer) AppliesTo(modulePath, pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if modulePath != "" && pkgPath == modulePath+"/"+p {
			return true
		}
		if modulePath == "" && (pkgPath == p || strings.HasSuffix(pkgPath, "/"+p)) {
			return true
		}
	}
	return false
}

// RunAnalyzers executes the analyzers over the module in two phases —
// collect (facts, every package) then run (scoped) — and returns the
// surviving diagnostics sorted by position.
func RunAnalyzers(mod *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runAnalyzers(mod.Path, mod.Packages, analyzers, true)
}

func runAnalyzers(modulePath string, pkgs []*Package, analyzers []*Analyzer, scoped bool) ([]Diagnostic, error) {
	var diags []Diagnostic
	facts := NewFacts()
	graph := BuildCallGraph(pkgs)
	for _, a := range analyzers {
		if a.Collect == nil {
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{Package: pkg, Analyzer: a, Facts: facts, Graph: graph, diags: &diags}
			if err := a.Collect(pass); err != nil {
				return nil, fmt.Errorf("simlint: %s: collect %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			if scoped && !a.AppliesTo(modulePath, pkg.PkgPath) {
				continue
			}
			pass := &Pass{Package: pkg, Analyzer: a, Facts: facts, Graph: graph, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("simlint: %s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// errorInterface is the universe error interface, for Implements
// checks.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface)
}

// usedFunc resolves a call's callee to the *types.Func it statically
// invokes, or nil for builtins, conversions, and indirect calls
// through function values.
func usedFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr:
		return usedFuncIdent(info, fun.X)
	case *ast.IndexListExpr:
		return usedFuncIdent(info, fun.X)
	}
	return nil
}

func usedFuncIdent(info *types.Info, x ast.Expr) *types.Func {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[x].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[x.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleePath returns the defining package path of fn ("" for
// universe-scope objects).
func calleePath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPkgFunc reports whether the call statically invokes
// pkgPath.name (a package-level function, not a method).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := usedFunc(info, call)
	if fn == nil || fn.Name() != name || calleePath(fn) != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
