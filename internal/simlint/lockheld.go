package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHeld keeps critical sections honest in the concurrent packages:
// while a sync.Mutex or sync.RWMutex is held, no blocking operation
// may run — a channel send or receive, a select without a default, a
// WaitGroup/Cond Wait, time.Sleep, a vfs.FS/vfs.File operation, or a
// call to any function that transitively performs one of those (per
// the module-wide call graph). A blocking operation inside a critical
// section turns one slow disk or one unready channel into a stall of
// every goroutine contending for that lock — the service-layer twin of
// the paper's write-stall argument (a bounded buffer must not hold the
// pipeline while it drains).
//
// The analyzer also checks lock acquisition order: when a function
// acquires lock B while holding lock A, the pair (A, B) becomes the
// package's ordering; another function acquiring A while holding B is
// an inversion (the classic AB/BA deadlock), and re-acquiring a held
// mutex is reported as a self-deadlock. Locks are identified by their
// declaration (the struct field or package variable), so every
// instance of Server.mu is one lock class.
//
// Known intentional violations (e.g. a journal flush that must stay
// atomic with the state it snapshots) carry a
// //simlint:allow lockheld <reason> directive at the call site.
var LockHeld = &Analyzer{
	Name:     "lockheld",
	Doc:      "no blocking operation while a sync.Mutex/RWMutex is held; lock order must be consistent",
	Packages: LockedPackages,
	Run:      runLockHeld,
}

// lockBlockingKey memoizes the transitively-blocking function closure
// on the run's call graph.
const lockBlockingKey = "lockheld:blocking"

// isVFSPath reports whether a package path is the vfs filesystem seam
// (the real internal/vfs, or the harness's testdata stand-in).
func isVFSPath(path string) bool {
	return path == "vfs" || strings.HasSuffix(path, "/vfs")
}

// isVFSOp reports whether fn is a method of the vfs package — an FS or
// File operation (or a concrete implementation's method), i.e. file
// I/O that can block on a disk.
func isVFSOp(fn *types.Func) bool {
	if fn == nil || !isVFSPath(calleePath(fn)) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isStdBlocking reports well-known blocking calls from outside the
// module: WaitGroup/Cond Wait and time.Sleep.
func isStdBlocking(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	switch calleePath(fn) {
	case "sync":
		if fn.Name() == "Wait" {
			return fn.FullName(), true
		}
	case "time":
		if fn.Name() == "Sleep" && func() bool {
			sig, ok := fn.Type().(*types.Signature)
			return ok && sig.Recv() == nil
		}() {
			return "time.Sleep", true
		}
	}
	return "", false
}

// blockingClosure returns the set of module functions that perform a
// blocking operation directly or through any chain of synchronous
// calls.
func blockingClosure(g *CallGraph) map[string]bool {
	return g.Reaching(lockBlockingKey, func() map[string]bool {
		seeds := map[string]bool{}
		for key, fi := range g.Decls() {
			if fi.Decl.Body == nil {
				continue
			}
			if directlyBlocks(fi.Pkg.Info, fi.Decl.Body) {
				seeds[key] = true
			}
		}
		return seeds
	}())
}

// directlyBlocks reports whether a function body contains a blocking
// operation outside goroutine launches.
func directlyBlocks(info *types.Info, body ast.Node) bool {
	found := false
	scanBlockingOps(info, body, func(ast.Node, string) { found = true })
	return found
}

// scanBlockingOps walks a body and calls hit for every blocking
// operation: channel sends and receives, ranges over channels, selects
// without a default, Wait/Sleep calls and vfs I/O. Goroutine bodies
// are skipped (they block their own goroutine, not the caller); the
// communication clauses of a select *with* a default are skipped (the
// default makes the select non-blocking).
func scanBlockingOps(info *types.Info, root ast.Node, hit func(n ast.Node, what string)) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				walk(arg)
			}
			return
		case *ast.SendStmt:
			hit(n, "channel send")
			walk(n.Value)
			return
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				hit(n, "channel receive")
			}
			walk(n.X)
			return
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					hit(n, "range over channel")
				}
			}
			walk(n.X)
			walk(n.Body)
			return
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				hit(n, "select without default")
			}
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				// The comm operations themselves are covered by the select
				// verdict; only the clause bodies are walked.
				for _, s := range cc.Body {
					walk(s)
				}
			}
			return
		case *ast.CallExpr:
			if fn := usedFunc(info, n); fn != nil {
				if what, ok := isStdBlocking(fn); ok {
					hit(n, what)
				} else if isVFSOp(fn) {
					hit(n, "vfs I/O ("+fn.Name()+")")
				}
			}
			walk(n.Fun)
			for _, a := range n.Args {
				walk(a)
			}
			return
		}
		// Generic descent.
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			switch c.(type) {
			case *ast.GoStmt, *ast.SendStmt, *ast.UnaryExpr, *ast.RangeStmt,
				*ast.SelectStmt, *ast.CallExpr:
				walk(c)
				return false
			}
			return true
		})
	}
	walk(root)
}

// heldLock is one acquired mutex in the current critical section.
type heldLock struct {
	obj  types.Object
	name string
}

// orderEdge records one "acquired b while holding a" site.
type orderEdge struct {
	node ast.Node
	from types.Object
	to   types.Object
}

func runLockHeld(pass *Pass) error {
	w := &lockWalker{
		pass:     pass,
		blocking: blockingClosure(pass.Graph),
		names:    map[types.Object]string{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w.walkRegion(fn.Body)
		}
	}
	w.reportOrder()
	return nil
}

type lockWalker struct {
	pass     *Pass
	blocking map[string]bool
	names    map[types.Object]string
	edges    []orderEdge
	regions  []*ast.BlockStmt // function-literal bodies pending their own walk
}

// walkRegion analyzes one function (or function-literal) body with an
// empty held set, then drains any literals discovered inside it.
func (w *lockWalker) walkRegion(body *ast.BlockStmt) {
	w.walkStmts(body.List, nil)
	for len(w.regions) > 0 {
		next := w.regions[0]
		w.regions = w.regions[1:]
		w.walkStmts(next.List, nil)
	}
}

// walkStmts tracks the held-lock set through a statement list. Nested
// blocks see a copy of the current set: an unlock inside a branch
// frees the lock for the rest of that branch, while the outer walk
// keeps it held (the conservative direction for the code that follows
// the branch).
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, stmt := range stmts {
		held = w.walkStmt(stmt, held)
	}
	return held
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held []heldLock) []heldLock {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if obj, name, op, ok := lockCall(w.pass, s.X); ok {
			switch op {
			case "Lock", "RLock":
				for _, h := range held {
					w.edges = append(w.edges, orderEdge{node: s.X, from: h.obj, to: obj})
				}
				w.names[obj] = name
				held = append(held[:len(held):len(held)], heldLock{obj: obj, name: name})
			case "Unlock", "RUnlock":
				held = releaseLock(held, obj)
			}
			return held
		}
		w.scan(s.X, held)
	case *ast.DeferStmt:
		if obj, _, op, ok := lockCall(w.pass, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// Deferred unlock: held until function exit — which is the
			// whole remainder of this walk. Nothing to do.
			_ = obj
			return held
		}
		w.scan(s.Call, held)
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.scan(arg, held)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.regions = append(w.regions, lit.Body)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scan(s.Cond, held)
		w.walkStmts(s.Body.List, held)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			w.walkStmts(e.List, held)
		case *ast.IfStmt:
			w.walkStmt(e, held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scan(s.Cond, held)
		if s.Post != nil {
			w.walkStmt(s.Post, held)
		}
		w.walkStmts(s.Body.List, held)
	case *ast.RangeStmt:
		if held != nil {
			if t := w.pass.Info.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					w.report(s, "range over channel", held)
				}
			}
		}
		w.scan(s.X, held)
		w.walkStmts(s.Body.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scan(s.Tag, held)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 {
			hasDefault := false
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				w.report(s, "select without default", held)
			}
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	default:
		w.scan(stmt, held)
	}
	return held
}

// scan inspects an expression or simple statement for blocking
// operations under the current held set, queueing function literals
// for their own lock-free walk.
func (w *lockWalker) scan(n ast.Node, held []heldLock) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			w.regions = append(w.regions, c.Body)
			return false
		case *ast.GoStmt:
			for _, arg := range c.Call.Args {
				w.scan(arg, held)
			}
			return false
		}
		if len(held) == 0 {
			return true
		}
		switch c := c.(type) {
		case *ast.SendStmt:
			w.report(c, "channel send", held)
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				w.report(c, "channel receive", held)
			}
		case *ast.CallExpr:
			fn := usedFunc(w.pass.Info, c)
			if fn == nil {
				return true
			}
			if what, ok := isStdBlocking(fn); ok {
				w.report(c, what, held)
				return true
			}
			if isVFSOp(fn) {
				w.report(c, "vfs I/O via "+fn.Name(), held)
				return true
			}
			if isLockMethod(fn) {
				return true // nested locking is the order check's concern
			}
			if w.blocking[FuncKey(fn)] {
				w.report(c, "call to "+FuncKey(fn)+", which transitively blocks", held)
			}
		}
		return true
	})
}

func (w *lockWalker) report(n ast.Node, what string, held []heldLock) {
	names := make([]string, len(held))
	for i, h := range held {
		names[i] = h.name
	}
	w.pass.ReportRangef(n, "%s while %s is held: a blocked critical section stalls every contender", what, strings.Join(names, ", "))
}

// reportOrder flags self-deadlocks and AB/BA inversions accumulated
// over the package.
func (w *lockWalker) reportOrder() {
	type pair struct{ from, to types.Object }
	first := map[pair]orderEdge{}
	for _, e := range w.edges {
		if e.from == e.to {
			w.pass.ReportRangef(e.node, "%s re-acquired while already held: guaranteed self-deadlock", w.names[e.to])
			continue
		}
		p := pair{e.from, e.to}
		if prev, ok := first[p]; !ok || w.pass.Fset.Position(e.node.Pos()).Offset < w.pass.Fset.Position(prev.node.Pos()).Offset {
			first[p] = e
		}
	}
	// Deterministic pair order for reporting.
	pairs := make([]pair, 0, len(first))
	for p := range first {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		a, b := first[pairs[i]], first[pairs[j]]
		return w.pass.Fset.Position(a.node.Pos()).Offset < w.pass.Fset.Position(b.node.Pos()).Offset
	})
	seen := map[pair]bool{}
	for _, p := range pairs {
		inv := pair{p.to, p.from}
		other, ok := first[inv]
		if !ok || seen[p] || seen[inv] {
			continue
		}
		seen[p], seen[inv] = true, true
		// Report at the later-appearing direction: the first-seen order
		// is treated as the package's convention.
		e := first[p]
		conv := other
		if w.pass.Fset.Position(e.node.Pos()).Offset < w.pass.Fset.Position(other.node.Pos()).Offset {
			e, conv = other, e
		}
		cp := w.pass.Fset.Position(conv.node.Pos())
		w.pass.ReportRangef(e.node,
			"lock order inverted: %s acquired while %s is held, but %s:%d acquires them in the opposite order — pick one order package-wide",
			w.names[e.to], w.names[e.from], cp.Filename, cp.Line)
	}
}

// isLockMethod reports sync mutex methods.
func isLockMethod(fn *types.Func) bool {
	if fn == nil || calleePath(fn) != "sync" {
		return false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
		return true
	}
	return false
}

// lockCall matches `x.Lock()` / `x.Unlock()` (and RW variants) on a
// sync.Mutex or sync.RWMutex and resolves the lock's identity: the
// declared field or variable, with a human name.
func lockCall(pass *Pass, expr ast.Expr) (obj types.Object, name, op string, ok bool) {
	call, isCall := ast.Unparen(expr).(*ast.CallExpr)
	if !isCall {
		return nil, "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", "", false
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || calleePath(fn) != "sync" {
		return nil, "", "", false
	}
	obj, name = lockIdent(pass, sel.X)
	if obj == nil {
		return nil, "", "", false
	}
	return obj, name, sel.Sel.Name, true
}

// lockIdent resolves the mutex expression to its declared object and a
// display name ("Server.mu" for fields, the variable name otherwise).
func lockIdent(pass *Pass, expr ast.Expr) (types.Object, string) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			return nil, ""
		}
		if !isMutexType(obj.Type()) {
			return nil, ""
		}
		return obj, e.Name
	case *ast.SelectorExpr:
		sel, ok := pass.Info.Selections[e]
		if ok {
			obj := sel.Obj()
			if obj == nil || !isMutexType(obj.Type()) {
				return nil, ""
			}
			name := obj.Name()
			if named := namedOf(sel.Recv()); named != nil {
				name = named.Obj().Name() + "." + name
			}
			return obj, name
		}
		// Qualified package-level mutex: pkg.Mu.
		if obj := pass.Info.Uses[e.Sel]; obj != nil && isMutexType(obj.Type()) {
			return obj, e.Sel.Name
		}
	}
	return nil, ""
}

// isMutexType reports sync.Mutex / sync.RWMutex (possibly behind a
// pointer).
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t.String() {
	case "sync.Mutex", "sync.RWMutex":
		return true
	}
	return false
}

// releaseLock removes the most recent acquisition of obj.
func releaseLock(held []heldLock, obj types.Object) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].obj == obj {
			out := make([]heldLock, 0, len(held)-1)
			out = append(out, held[:i]...)
			out = append(out, held[i+1:]...)
			return out
		}
	}
	return held
}
