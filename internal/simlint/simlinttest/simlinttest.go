// Package simlinttest is the golden-file test harness for the simlint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library alone. Test packages live under
// internal/simlint/testdata/src/<dir> (testdata is invisible to the go
// tool, so seeded violations never reach a real build) and mark every
// expected diagnostic with a trailing comment:
//
//	err == ErrLimit // want "use errors.Is"
//	ok()            // no comment: any diagnostic here fails the test
//
// Each `// want` comment carries one or more quoted Go string literals
// interpreted as regular expressions; every diagnostic reported on
// that line must match one of them, and every want must be matched by
// exactly one diagnostic. Imports in test packages are limited to the
// standard library and sibling testdata packages listed in the same
// Run call.
package simlinttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cachewrite/internal/simlint"
)

// Run loads each testdata/src/<dir> as one package, applies the
// analyzer (collect phase over all of them first, then the run
// phase), and compares diagnostics against the `// want` comments in
// every file.
func Run(t *testing.T, a *simlint.Analyzer, dirs ...string) {
	t.Helper()
	if len(dirs) == 0 {
		t.Fatal("simlinttest.Run: no testdata dirs given")
	}
	fset := token.NewFileSet()
	imp := simlint.NewTestImporter(fset, ".")
	var pkgs []*simlint.Package
	wants := map[string][]*want{} // filename -> line-ordered expectations
	for _, dir := range dirs {
		// Tests calling the harness run with the analyzer package
		// (internal/simlint) as working directory.
		root := filepath.Join("testdata", "src", filepath.FromSlash(dir))
		files, names, err := parseDir(fset, root)
		if err != nil {
			t.Fatalf("simlinttest: %v", err)
		}
		for _, name := range names {
			ws, err := parseWants(name)
			if err != nil {
				t.Fatalf("simlinttest: %v", err)
			}
			for file, list := range ws {
				wants[file] = append(wants[file], list...)
			}
		}
		pkg, err := simlint.CheckPackage(dir, fset, files, imp)
		if err != nil {
			t.Fatalf("simlinttest: type-checking %s: %v", dir, err)
		}
		imp.Add(pkg.Types)
		pkgs = append(pkgs, pkg)
	}

	diags, err := simlint.RunOnPackages(pkgs, []*simlint.Analyzer{a})
	if err != nil {
		t.Fatalf("simlinttest: %v", err)
	}

	for _, d := range diags {
		if !claim(wants[d.Pos.Filename], d) {
			t.Errorf("%s: unexpected diagnostic: %s", position(d.Pos), d.Message)
		}
	}
	var missing []string
	for file, list := range wants {
		for _, w := range list {
			if !w.matched {
				missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", file, w.line, w.pattern))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("%s", m)
	}
}

// want is one expected-diagnostic marker.
type want struct {
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched want on the diagnostic's line whose
// pattern matches, reporting whether one existed.
func claim(ws []*want, d simlint.Diagnostic) bool {
	for _, w := range ws {
		if w.line == d.Pos.Line && !w.matched && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func position(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

// parseDir parses every .go file directly inside root.
func parseDir(fset *token.FileSet, root string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(root, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		names = append(names, name)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no .go files in %s", root)
	}
	return files, names, nil
}

// wantRE matches the prefix of a want comment; the quoted patterns
// after it are parsed with parseStrings.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

// parseWants scans one file's source for `// want "re"` comments.
func parseWants(filename string) (map[string][]*want, error) {
	src, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	out := map[string][]*want{}
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		patterns, err := parseStrings(m[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad want comment: %w", filename, i+1, err)
		}
		for _, p := range patterns {
			re, err := regexp.Compile(p)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", filename, i+1, p, err)
			}
			out[filename] = append(out[filename], &want{line: i + 1, pattern: p, re: re})
		}
	}
	return out, nil
}

// parseStrings reads consecutive Go string literals (double-quoted or
// backquoted) from s.
func parseStrings(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf("unterminated string in %q", s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", s)
			}
			lit = s[1 : end+1]
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return out, nil
}
