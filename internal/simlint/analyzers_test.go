package simlint_test

import (
	"testing"

	"cachewrite/internal/simlint"
	"cachewrite/internal/simlint/simlinttest"
)

func TestNoPanic(t *testing.T) {
	simlinttest.Run(t, simlint.NoPanic, "nopanic")
}

func TestHotpath(t *testing.T) {
	// hotpathdep is loaded first so the app package can import it and
	// so the dep's //simlint:hotpath facts are collected before the
	// app's hot roots are walked.
	simlinttest.Run(t, simlint.Hotpath, "hotpathdep", "hotpath")
}

func TestSentinelErr(t *testing.T) {
	simlinttest.Run(t, simlint.SentinelErr, "sentinelerr")
}

func TestDeterminism(t *testing.T) {
	simlinttest.Run(t, simlint.Determinism, "determinism")
}

func TestCtxLoop(t *testing.T) {
	simlinttest.Run(t, simlint.CtxLoop, "ctxloop")
}

func TestVFSOnly(t *testing.T) {
	simlinttest.Run(t, simlint.VFSOnly, "vfsonly")
}

func TestLockHeld(t *testing.T) {
	// vfs and blockdep are loaded first so the app package can import
	// them; blockdep seeds the cross-package blocking fact.
	simlinttest.Run(t, simlint.LockHeld, "vfs", "blockdep", "lockheld")
}

func TestErrFlow(t *testing.T) {
	simlinttest.Run(t, simlint.ErrFlow, "vfs", "errflow")
}

func TestStatSound(t *testing.T) {
	simlinttest.Run(t, simlint.StatSound, "statsound")
}
