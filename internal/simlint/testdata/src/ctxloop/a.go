// Package ctxloop seeds violations and counterexamples for the
// ctxloop analyzer.
package ctxloop

import "context"

func spins(ctx context.Context, work chan int) int {
	total := 0
	for { // want `worker loop never observes cancellation`
		w, ok := <-work
		if !ok {
			return total
		}
		total += w
	}
}

func drains(ctx context.Context, work chan int) int {
	total := 0
	for w := range work { // want `worker loop never observes cancellation`
		total += w
	}
	return total
}

// polls is compliant: ctx.Err() is checked every iteration, the
// pulseStride pattern.
func polls(ctx context.Context, work chan int) int {
	total := 0
	for {
		if ctx.Err() != nil {
			return total
		}
		w, ok := <-work
		if !ok {
			return total
		}
		total += w
	}
}

// selects is compliant: the done channel is part of the select.
func selects(done chan struct{}, work chan int) int {
	total := 0
	for {
		select {
		case <-done:
			return total
		case w := <-work:
			total += w
		}
	}
}

// delegates is compliant: the context is handed to the unit of work,
// which owns cancellation from there.
func delegates(ctx context.Context, units []func(context.Context) error) error {
	for {
		for _, u := range units {
			if err := u(ctx); err != nil {
				return err
			}
		}
	}
}

// bounded is compliant: conditional loops terminate on their own and
// are outside the worker-loop contract.
func bounded(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
