// Package nopanic seeds violations and counterexamples for the
// nopanic analyzer.
package nopanic

import (
	"errors"
	"fmt"
	"log"
	"os"
)

// ErrBad is the sentinel failures should travel through.
var ErrBad = errors.New("nopanic: bad state")

func panics(n int) int {
	if n < 0 {
		panic("negative") // want `panic in engine package`
	}
	return n
}

func fatals(err error) {
	if err != nil {
		log.Fatalf("giving up: %v", err) // want `log\.Fatalf in engine package`
	}
}

func exits(code int) {
	os.Exit(code) // want `os\.Exit in engine package`
}

func panicsViaLogger(l *log.Logger) {
	l.Panicln("corrupt") // want `log\.Panicln in engine package`
}

// returnsError is compliant: the failure is an error return.
func returnsError(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("%w: n=%d", ErrBad, n)
	}
	return n, nil
}

// allowed is compliant: a justified, annotated unreachable state.
func allowed(n int) int {
	if n < 0 {
		//simlint:allow nopanic unreachable by construction
		panic("unreachable")
	}
	return n
}

// logsWithoutDying is compliant: non-fatal logging is fine.
func logsWithoutDying(err error) {
	log.Printf("recovered: %v", err)
}
