// Package errflow seeds violations and counterexamples for the
// errflow analyzer: storage errors must be checked before they die,
// and branches that swallow one must classify or wrap it first.
package errflow

import (
	"errors"
	"fmt"
	"log"

	"vfs"
)

// store mirrors the durability packages' shape: filesystem access only
// through an injected vfs.FS.
type store struct {
	fs vfs.FS
}

// discards blanks a vfs error outright.
func (s *store) discards() {
	_ = s.fs.Remove("x") // want `error from vfs\.Remove discarded`
}

// bareCall drops every result of a vfs.File operation on the floor.
func bareCall(f vfs.File) {
	f.Sync() // want `error from vfs\.Sync discarded`
}

// blankTuple keeps the data but blanks the error.
func (s *store) blankTuple() int {
	data, _ := s.fs.ReadFile("x") // want `error from vfs\.ReadFile discarded into _`
	return len(data)
}

// swallowsAdjacent checks the error but the branch only logs %v: the
// typed cause is lost without classification.
func (s *store) swallowsAdjacent() {
	err := s.fs.Rename("a", "b")
	if err != nil { // want `storage error from vfs\.Rename swallowed`
		log.Printf("rename failed: %v", err)
	}
}

// swallowsInit drops the error without touching it at all.
func (s *store) swallowsInit() int {
	if err := s.fs.Remove("x"); err != nil { // want `storage error from vfs\.Remove swallowed`
		return 0
	}
	return 1
}

// losesType wraps with %v, which erases the fault type the
// crash-consistency harness needs to classify.
func (s *store) losesType() error {
	err := s.fs.Remove("x")
	if err != nil { // want `storage error from vfs\.Remove swallowed`
		return fmt.Errorf("remove: %v", err)
	}
	return nil
}

// save propagates vfs errors, so its callers inherit the vfs-derived
// fact through the call graph.
func (s *store) save(p string, b []byte) error {
	return s.fs.WriteFile(p, b)
}

// dropsHelper discards a transitively vfs-derived error.
func (s *store) dropsHelper() {
	_ = s.save("x", nil) // want `error from save discarded`
}

// propagates wraps with %w: the cause survives.
func (s *store) propagates() error {
	if err := s.fs.Remove("x"); err != nil {
		return fmt.Errorf("remove: %w", err)
	}
	return nil
}

// classifies consults vfs.IsStorageFault before deciding to swallow.
func (s *store) classifies() {
	if err := s.fs.Remove("x"); err != nil {
		if vfs.IsStorageFault(err) {
			log.Printf("injected fault: %v", err)
		}
	}
}

// joins stores the error for aggregation: it escapes the branch.
func (s *store) joins() error {
	var errs []error
	if err := s.fs.Remove("a"); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// deferredClose is the sanctioned best-effort cleanup idiom.
func deferredClose(f vfs.File) error {
	defer f.Close()
	_, err := f.Write(nil)
	return err
}
