// Package determinism seeds violations and counterexamples for the
// determinism analyzer.
package determinism

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"time"
)

func emitsMapOrder(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is non-deterministic`
		out = append(out, k)
	}
	return out
}

func emitsMapValues(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is non-deterministic`
		total += v
	}
	return total
}

func stampsResults() string {
	return time.Now().String() // want `time\.Now in a result-producing package`
}

func measuresSince(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in a result-producing package`
}

func globalRand() int {
	return rand.Intn(10) // want `math/rand\.Intn uses the global rand source`
}

func walks(root string) error {
	return filepath.Walk(root, nil) // want `filepath\.Walk feeding results must gather and sort`
}

// sortedEmission is compliant: keys are extracted, sorted, then
// iterated in deterministic order.
func sortedEmission(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//simlint:allow determinism key collection is sorted before any output
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return out
}

// seededRand is compliant: the generator is explicitly seeded and
// injected, so every run draws the same sequence.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// slicesAreFine is compliant: slice iteration is ordered.
func slicesAreFine(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
