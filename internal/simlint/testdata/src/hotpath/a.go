// Package hotpath seeds violations and counterexamples for the
// hotpath analyzer.
package hotpath

import (
	"fmt"
	"math/bits"

	"hotpathdep"
)

// event is a value type flowing through the hot loop.
type event struct {
	addr uint32
	size uint8
}

// sink is the observer interface hot code may call through.
type sink interface {
	observe(addr uint32)
}

// state is the hot structure.
type state struct {
	ticks uint64
	cnt   hotpathdep.Counter
	out   sink
	buf   []uint64
}

// hotAllocs is a hot function full of violations.
//
//simlint:hotpath
func (s *state) hotAllocs(e event) string {
	s.buf = append(s.buf, uint64(e.addr)) // want `append in hot path .* may grow and allocate`
	m := map[uint32]uint8{e.addr: e.size} // want `map literal in hot path .* allocates`
	_ = m
	p := new(event) // want `new in hot path .* allocates`
	_ = p
	f := func() uint32 { return e.addr } // want `closure in hot path .* func literals allocate`
	_ = f
	return fmt.Sprintf("%d", e.addr) // want `fmt\.Sprintf in hot path .* allocates`
}

// hotBoxes boxes a concrete value into an interface and converts a
// string, both allocation sites.
//
//simlint:hotpath
func hotBoxes(e event) int {
	var x interface{} = e // want `interface boxing in hot path`
	_ = x
	b := []byte("header") // want `string/slice conversion in hot path .* allocates`
	return len(b)
}

// hotCallsCold reaches allocations transitively: coldHelper is pulled
// into the closure by the static call and checked there.
//
//simlint:hotpath
func (s *state) hotCallsCold(e event) {
	s.coldHelper(e)
}

func (s *state) coldHelper(e event) {
	s.buf = append(s.buf, uint64(e.size)) // want `append in hot path .* may grow and allocate`
}

// hotEscapes calls an unmarked function in another package.
//
//simlint:hotpath
func hotEscapes(c *hotpathdep.Counter) uint64 {
	return hotpathdep.Snapshot(c) // want `calls hotpathdep\.Snapshot, which is outside the package and not marked`
}

// hotClean is fully compliant: arithmetic, struct values, bit tricks,
// an in-package hot callee, a marked cross-package callee, and an
// interface method call.
//
//simlint:hotpath
func (s *state) hotClean(e event) uint64 {
	s.ticks++
	mask := uint64(1)<<e.size - 1
	s.cnt.Bump(uint64(bits.OnesCount64(mask)))
	if s.out != nil {
		s.out.observe(e.addr)
	}
	ev := event{addr: e.addr + 1, size: e.size}
	return s.hotLookup(ev) + s.ticks
}

//simlint:hotpath
func (s *state) hotLookup(e event) uint64 {
	if int(e.addr) < len(s.buf) {
		return s.buf[e.addr]
	}
	return 0
}

// coldIsFree is not marked and never called from hot code: it may
// allocate at will.
func coldIsFree(e event) string {
	return fmt.Sprintf("%d:%d", e.addr, e.size)
}
