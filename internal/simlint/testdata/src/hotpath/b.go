// Kernel-dispatch cases: indirect calls through function values are
// resolved via the call graph's binding facts instead of being
// skipped, so a hot loop that dispatches through a kernel table is
// still held to the zero-allocation contract.
package hotpath

import "hotpathdep"

// kern is only ever bound to a clean same-package kernel: the binding
// resolves and the callee passes.
var kern = fastKern

func fastKern(x int) int { return x*2 + 1 }

//simlint:hotpath
func DispatchClean(x int) int { return kern(x) }

// heapSlot is bound to an allocating kernel: the binding is followed
// into the kernel's body, where the allocation reports.
var heapSlot = heapKern

func heapKern(x int) int {
	buf := make([]int, x) // want `make in hot path \(reached from DispatchHeap\) allocates`
	return len(buf)
}

//simlint:hotpath
func DispatchHeap(x int) int { return heapSlot(x) }

// kernelTable is the struct-field dispatch shape: composite-literal
// bindings key by the literal's type, so `dispatch.op(x)` resolves to
// tableKern.
type kernelTable struct {
	op func(int) int
}

var dispatch = kernelTable{op: tableKern}

func tableKern(x int) int { return x + 3 }

//simlint:hotpath
func DispatchTable(x int) int { return dispatch.op(x) }

// depSlot is bound to an unmarked function in another package: the
// resolved callee is outside the closure.
var depSlot = hotpathdep.Scale

//simlint:hotpath
func DispatchDep(x uint64) uint64 {
	return depSlot(x) // want `dispatches to hotpathdep\.Scale through a function value; it is outside the package and not marked`
}

// dynSlot receives a caller-supplied function: the slot is tainted and
// the call stays dynamic (accepted).
var dynSlot func(int) int

func installKern(f func(int) int) { dynSlot = f }

//simlint:hotpath
func DispatchDyn(x int) int { return dynSlot(x) }
