// Package sentinelerr seeds violations and counterexamples for the
// sentinelerr analyzer.
package sentinelerr

import (
	"errors"
	"fmt"
	"io"
)

// ErrLimit mimics an engine sentinel.
var ErrLimit = errors.New("limit reached")

// ErrPageCross mimics a second engine sentinel.
var ErrPageCross = errors.New("page cross")

func compares(err error) bool {
	return err == ErrLimit // want `sentinel ErrLimit compared with ==`
}

func comparesNeq(err error) bool {
	return err != ErrPageCross // want `sentinel ErrPageCross compared with !=`
}

func comparesStdlib(err error) bool {
	return err == io.EOF // want `sentinel EOF compared with ==`
}

func switches(err error) string {
	switch err {
	case ErrLimit: // want `sentinel ErrLimit matched in a switch case`
		return "limit"
	case nil:
		return "ok"
	}
	return "other"
}

func wrapsWrong(err error) error {
	return fmt.Errorf("sweep failed: %v", err) // want `error formatted with %v loses the chain`
}

func wrapsWrongVerb(err error) error {
	return fmt.Errorf("unit %d: %s", 7, err) // want `error formatted with %s loses the chain`
}

// usesErrorsIs is compliant: sentinel matching through the chain.
func usesErrorsIs(err error) bool {
	return errors.Is(err, ErrLimit)
}

// wrapsRight is compliant: %w keeps the chain intact.
func wrapsRight(err error) error {
	return fmt.Errorf("sweep failed: %w", err)
}

// nilChecks are compliant: comparing an error against nil is the
// normal control-flow idiom, not sentinel matching.
func nilChecks(err error) bool {
	return err != nil
}

// stringifies is compliant: the error is already reduced to a string.
func stringifies(err error) string {
	return fmt.Sprintf("failed: %v", err)
}
