// Package blockdep is the cross-package dependency for the lockheld
// analyzer tests: one function blocks, so callers in other packages
// inherit the blocking fact through the module call graph; one does
// not.
package blockdep

// WaitForSignal blocks on a channel receive.
func WaitForSignal(ch chan struct{}) {
	<-ch
}

// Quick is pure arithmetic and never blocks.
func Quick(x int) int {
	return x + 1
}
