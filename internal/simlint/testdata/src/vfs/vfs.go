// Package vfs is the testdata stand-in for the module's filesystem
// seam. Its package path ends in "vfs", so the lockheld and errflow
// analyzers treat its interface methods as storage I/O, exactly like
// the real internal/vfs.
package vfs

// FS is the filesystem boundary.
type FS interface {
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// File is one open file.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// IsStorageFault classifies an error as an injected storage fault.
func IsStorageFault(err error) bool {
	return err != nil
}
