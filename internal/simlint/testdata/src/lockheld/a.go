// Package lockheld seeds violations and counterexamples for the
// lockheld analyzer: no blocking operation inside a mutex critical
// section, and one lock acquisition order per package.
package lockheld

import (
	"sync"

	"blockdep"
	"vfs"
)

// server mirrors the real serve.Server shape: a mutex guarding state,
// a wake channel, and an injected filesystem.
type server struct {
	mu    sync.Mutex
	state int
	fs    vfs.FS
	wake  chan struct{}
}

// sendsWhileLocked blocks on a channel send inside the critical
// section: if the receiver is not ready, every other contender stalls.
func (s *server) sendsWhileLocked() {
	s.mu.Lock()
	s.state++
	s.wake <- struct{}{} // want `channel send while server\.mu is held`
	s.mu.Unlock()
}

// receivesUnderDefer holds the lock to function end via defer, so the
// receive at the bottom is still inside the critical section.
func (s *server) receivesUnderDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.wake // want `channel receive while server\.mu is held`
	return s.state
}

// selectsWhileLocked parks in a select with no default while holding
// the lock.
func (s *server) selectsWhileLocked(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while server\.mu is held`
	case <-done:
	case <-s.wake:
	}
}

// persistsWhileLocked does file I/O inside the critical section: one
// slow disk write stalls every goroutine contending for mu.
func (s *server) persistsWhileLocked(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.WriteFile("state", data) // want `vfs I/O via WriteFile while server\.mu is held`
}

// waitsTransitively calls a helper whose body blocks; the module call
// graph propagates the fact to the call site.
func (s *server) waitsTransitively() {
	s.mu.Lock()
	s.drain() // want `call to .*drain, which transitively blocks while server\.mu is held`
	s.mu.Unlock()
}

// drain consumes wakeups until the channel closes: it blocks.
func (s *server) drain() {
	for range s.wake {
	}
}

// waitsCrossPackage inherits the blocking fact from another package
// through the call graph.
func (s *server) waitsCrossPackage(ch chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blockdep.WaitForSignal(ch) // want `call to blockdep\.WaitForSignal, which transitively blocks while server\.mu is held`
}

// waitsOnGroup parks on a WaitGroup inside the critical section.
func (s *server) waitsOnGroup(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `\(\*sync\.WaitGroup\)\.Wait while server\.mu is held`
}

// relocks re-acquires the mutex it already holds.
func (s *server) relocks() {
	s.mu.Lock()
	s.mu.Lock() // want `server\.mu re-acquired while already held: guaranteed self-deadlock`
	s.mu.Unlock()
	s.mu.Unlock()
}

// pair carries two locks whose acquisition order must be consistent.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// lockAB establishes the package's a-then-b convention.
func (p *pair) lockAB() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

// lockBA inverts the order lockAB established: the classic AB/BA
// deadlock.
func (p *pair) lockBA() {
	p.b.Lock()
	p.a.Lock() // want `lock order inverted: pair\.a acquired while pair\.b is held`
	p.a.Unlock()
	p.b.Unlock()
}

// unlocksBeforeBlocking releases the lock before touching channels —
// the compliant pattern.
func (s *server) unlocksBeforeBlocking() {
	s.mu.Lock()
	v := s.state
	s.mu.Unlock()
	s.wake <- struct{}{}
	_ = v
}

// nonBlockingWake signals through a defaulted select, which cannot
// park, so holding the lock is fine.
func (s *server) nonBlockingWake() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state++
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// spawnsWorker launches a goroutine that blocks: the worker runs on
// its own stack with no lock held, so nothing is flagged.
func (s *server) spawnsWorker() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		<-s.wake
	}()
}

// branchReleases unlocks inside the early branch before blocking
// there; the analyzer tracks the release through the branch.
func (s *server) branchReleases(fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		<-s.wake
		return
	}
	s.state++
	s.mu.Unlock()
}

// consistentOrder matches lockAB's a-then-b order: no inversion.
func (p *pair) consistentOrder() int {
	p.a.Lock()
	p.b.Lock()
	x := blockdep.Quick(1)
	p.b.Unlock()
	p.a.Unlock()
	return x
}
