// Package vfsonly seeds violations and counterexamples for the
// vfsonly analyzer: durability code must reach the filesystem through
// an injected FS interface, never os.* directly.
package vfsonly

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
)

// FS is a stand-in for the real vfs.FS boundary.
type FS interface {
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
}

func writesDirectly(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil { // want `os\.MkdirAll in durability package`
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*") // want `os\.CreateTemp in durability package`
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	tmp.Close()
	return os.Rename(tmp.Name(), path) // want `os\.Rename in durability package`
}

func readsDirectly(path string) ([]byte, error) {
	if _, err := os.Stat(path); err != nil { // want `os\.Stat in durability package`
		return nil, err
	}
	return os.ReadFile(path) // want `os\.ReadFile in durability package`
}

func cleansDirectly(path string) {
	_ = os.Remove(path) // want `os\.Remove in durability package`
}

// throughFS is compliant: every operation flows through the injected
// boundary, where the fault harness can see it.
func throughFS(fsys FS, path string, repl string) ([]byte, error) {
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	if err := fsys.Rename(repl, path); err != nil {
		return nil, err
	}
	return fsys.ReadFile(path)
}

// errorPlumbing is compliant: error predicates and environment lookups
// are not file I/O.
func errorPlumbing(err error) (string, bool) {
	if errors.Is(err, fs.ErrNotExist) {
		return "", false
	}
	dir, derr := os.UserCacheDir()
	return dir, derr == nil
}

// allowed is compliant: an annotated, justified escape hatch.
func allowed(path string) {
	//simlint:allow vfsonly best-effort cleanup outside the durability contract
	_ = os.Remove(path)
}
