// Package statsound seeds violations and counterexamples for the
// statsound analyzer: every counter must be both incremented somewhere
// in the module and read by an exported stats emitter.
package statsound

import "sync/atomic"

// Stats is published whole by Snapshot and every field is bumped:
// fully compliant.
type Stats struct {
	Hits   uint64
	Misses uint64
}

type tracker struct {
	stats Stats
}

func (t *tracker) record(hit bool) {
	if hit {
		t.stats.Hits++
	} else {
		t.stats.Misses++
	}
}

// Snapshot publishes the whole struct by value.
func (t *tracker) Snapshot() Stats {
	return t.stats
}

// DropMetrics is bumped but no exported emitter ever reads it: the
// accounting exists but nobody can observe it.
type DropMetrics struct {
	Drops  uint64 // want `counter DropMetrics\.Drops is incremented but never read by an exported snapshot/Stats/statusz emitter`
	Spills uint64 // want `counter DropMetrics\.Spills is incremented but never read by an exported snapshot/Stats/statusz emitter`
}

type dropper struct {
	m DropMetrics
}

func (d *dropper) drop() {
	d.m.Drops++
	d.m.Spills++
}

// internalTally reads the counters, but it is not an emitter and is
// not reachable from one, so the read does not count as publication.
func (d *dropper) internalTally() uint64 {
	return d.m.Drops + d.m.Spills
}

// GaugeMetrics is read by an emitter but nothing ever writes it: it
// always reports zero.
type GaugeMetrics struct {
	Backlog int64 // want `counter GaugeMetrics\.Backlog is read by a stats emitter but never incremented`
}

type gauge struct {
	g GaugeMetrics
}

// MetricsReport is an exported emitter reading the gauge.
func (g *gauge) MetricsReport() int64 {
	return g.g.Backlog
}

// DeadStats is neither bumped nor published.
type DeadStats struct {
	Unused uint64 // want `counter DeadStats\.Unused is never incremented and never read by an exported stats emitter`
}

// Package-level atomic counters, the workload tracecache pattern.
var (
	published atomic.Uint64
	silent    atomic.Uint64 // want `counter silent is incremented but never read by an exported snapshot/Stats/statusz emitter`
)

func touch() {
	published.Add(1)
	silent.Add(1)
}

// VarStats publishes the package-level counter.
func VarStats() uint64 {
	return published.Load()
}

// CacheStats is the snapshot-mirror pattern: fields are filled from
// the live atomics inside the emitter and flow out with the snapshot.
type CacheStats struct {
	Gets uint64
	Puts uint64
}

var (
	gets atomic.Uint64
	puts atomic.Uint64
)

func bump() {
	gets.Add(1)
	puts.Add(1)
}

// CacheStatsSnapshot builds the published mirror from the atomics.
func CacheStatsSnapshot() CacheStats {
	return CacheStats{Gets: gets.Load(), Puts: puts.Load()}
}

// HelperMetrics is read through an unexported helper reachable from an
// exported emitter: such reads count as publication.
type HelperMetrics struct {
	Deep uint64
}

type nested struct {
	h HelperMetrics
}

func (n *nested) bumpDeep() {
	n.h.Deep++
}

func (n *nested) gather() uint64 {
	return n.h.Deep
}

// StatusReport reaches the read through an unexported helper.
func (n *nested) StatusReport() uint64 {
	return n.gather()
}
