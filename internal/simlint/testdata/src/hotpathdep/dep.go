// Package hotpathdep is the cross-package dependency for the hotpath
// analyzer tests: one callee carries the hotpath mark, one does not.
package hotpathdep

// Counter accumulates events.
type Counter struct {
	n uint64
}

// Bump is marked hot, so hot callers in other packages may call it.
//
//simlint:hotpath
func (c *Counter) Bump(delta uint64) {
	c.n += delta
}

// Snapshot is not marked hot: calling it from a hot path is a
// violation at the caller.
func Snapshot(c *Counter) uint64 {
	return c.n
}

// Scale is not marked hot either: binding it into another package's
// kernel slot and dispatching from a hot path is a violation at the
// dispatch site.
func Scale(x uint64) uint64 {
	return x << 1
}
