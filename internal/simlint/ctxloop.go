package simlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxLoop enforces the pulseStride cancellation contract on worker
// loops: in the scheduler packages, a potentially unbounded loop —
// `for { ... }` with no condition, or a range over a channel — must
// observe cancellation on every iteration, either by touching a
// context.Context value (ctx.Err(), ctx.Done(), or passing ctx into
// the unit of work) or through a select that can receive from a done
// channel. A worker loop that cannot observe cancellation strands the
// pool: RunUnits waits on its WaitGroup forever and SIGTERM-triggered
// checkpoint flushes never happen.
var CtxLoop = &Analyzer{
	Name:     "ctxloop",
	Doc:      "worker loops must check ctx.Err()/ctx.Done() (or a done channel) every iteration",
	Packages: WorkerLoopPackages,
	Run:      runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Init == nil && n.Cond == nil && n.Post == nil {
					checkWorkerLoop(pass, n, n.Body)
				}
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						checkWorkerLoop(pass, n, n.Body)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkWorkerLoop reports the loop unless its body can observe
// cancellation.
func checkWorkerLoop(pass *Pass, loop ast.Node, body *ast.BlockStmt) {
	observes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if observes {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			// Any touch of a context value counts: ctx.Err(), ctx.Done(),
			// or handing ctx to the unit of work (which then owns
			// cancellation).
			if obj := pass.Info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				observes = true
			}
		case *ast.SelectStmt:
			// A select with a receive case is the done-channel variant of
			// the contract (e.g. the watchdog's <-w.done).
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				if commIsReceive(cc.Comm) {
					observes = true
				}
			}
		}
		return !observes
	})
	if !observes {
		pass.Reportf(loop.Pos(), "worker loop never observes cancellation; check ctx.Err()/ctx.Done() (or select on a done channel) each iteration — the pulseStride contract")
	}
}

// commIsReceive reports whether a select comm clause receives.
func commIsReceive(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		u, ok := ast.Unparen(s.X).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
			return ok && u.Op == token.ARROW
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	return t.String() == "context.Context"
}
