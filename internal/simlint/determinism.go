package simlint

import (
	"go/ast"
	"go/types"
)

// Determinism guards the byte-identical-output contract of the
// result-producing packages: sweeps, experiments, campaigns and stats
// must emit the same bytes for the same seed, across runs and across
// checkpoint resumes (resume_test.go and the campaign tests pin this
// end to end). The analyzer rejects, in those packages:
//
//   - ranging over a map (iteration order leaks into any ordered
//     output; iterate a sorted key slice instead),
//   - time.Now/time.Since (wall-clock values in results),
//   - math/rand's global-source functions (unseeded; use a
//     seeded *rand.Rand),
//   - filepath.Walk/WalkDir (directory contents feeding results must
//     be gathered and sorted explicitly).
//
// Uses that provably cannot reach output (e.g. a map range whose
// results are sorted before emission) are annotated
// //simlint:allow determinism with the reason.
var Determinism = &Analyzer{
	Name:     "determinism",
	Doc:      "no map-order, wall-clock or unseeded-rand dependence in result-producing packages",
	Packages: DeterministicPackages,
	Run:      runDeterminism,
}

// randConstructors build explicitly seeded generators and are the
// sanctioned way to use math/rand.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.Pos(), "map iteration order is non-deterministic and %s produces results; iterate a sorted key slice", pass.PkgPath)
					}
				}

			case *ast.CallExpr:
				fn := usedFunc(pass.Info, n)
				if fn == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				isMethod := sig != nil && sig.Recv() != nil
				switch path := calleePath(fn); path {
				case "time":
					if !isMethod && (fn.Name() == "Now" || fn.Name() == "Since") {
						pass.Reportf(n.Pos(), "time.%s in a result-producing package; wall-clock values are non-deterministic", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !isMethod && !randConstructors[fn.Name()] {
						pass.Reportf(n.Pos(), "%s.%s uses the global rand source; inject a seeded *rand.Rand instead", path, fn.Name())
					}
				case "path/filepath":
					if fn.Name() == "Walk" || fn.Name() == "WalkDir" {
						pass.Reportf(n.Pos(), "filepath.%s feeding results must gather and sort entries explicitly", fn.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}
