package simlint

// EnginePackages are the simulation-engine packages that must stay
// panic-free: every failure is reported through sentinel errors
// (memsim.ErrLimit, memsim.ErrPageCross, trace.ErrBadMagic, ...) so a
// bad configuration or trace can never take down a sweep worker. The
// meta-test in scope_test.go pins each entry to an existing package so
// a rename cannot silently shrink coverage.
var EnginePackages = []string{
	"internal/cache",
	"internal/memsim",
	"internal/hierarchy",
	"internal/writebuffer",
	"internal/writecache",
	"internal/bus",
	"internal/timing",
	"internal/sweep",
	"internal/coherence",
	"internal/serve", // a panic in the service would take down every tenant
	"internal/vfs",   // fault injection must report errors, never abort the host
}

// DeterministicPackages produce results (figures, tables, campaign
// reports, checkpoint journals) that must be byte-identical across
// runs and resumes; nothing order-, time- or globally-random-dependent
// may reach their output.
var DeterministicPackages = []string{
	"internal/sweep",
	"internal/experiments",
	"internal/campaign",
	"internal/stats",
	"internal/coherence", // snoop order and stats must not depend on map order
	"internal/serve",     // resumed jobs must report byte-identical results
	"internal/vfs",       // fault plans must replay identically from their seed
}

// DurabilityPackages own a durability surface (journals, trace cache,
// job state) and must reach the filesystem only through an injected
// vfs.FS, so the fault-injection harness and crash-consistency proofs
// cover every write they make. internal/vfs itself is excluded: its OS
// passthrough is the sanctioned home for the real os.* calls.
var DurabilityPackages = []string{
	"internal/resilience",
	"internal/workload",
	"internal/serve",
}

// LockedPackages coordinate goroutines with sync.Mutex/RWMutex and are
// checked by lockheld: no blocking operation inside a critical section,
// and one lock acquisition order per package.
var LockedPackages = []string{
	"internal/serve",
	"internal/sweep",
	"internal/workload",
	"internal/resilience",
}

// StatsPackages publish counter structs (serve statusz metrics,
// workload CacheStats, coherence traffic Stats) whose accounting must
// be sound: every counter both bumped somewhere in the module and read
// by an exported snapshot/Stats/statusz emitter.
var StatsPackages = []string{
	"internal/serve",
	"internal/workload",
	"internal/coherence",
}

// WorkerLoopPackages host long-running worker loops that must honor
// the pulseStride cancellation contract: every iteration observes the
// context (or an equivalent done channel) so cancellation lands
// mid-unit, not only between units.
var WorkerLoopPackages = []string{
	"internal/sweep",
	"internal/campaign",
	"internal/resilience",
	"internal/coherence", // multi-core replay loops run long enough to need ctx
	"internal/serve",     // job workers and the drain loop must observe ctx
}

// All returns every simlint analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NoPanic,
		Hotpath,
		SentinelErr,
		Determinism,
		CtxLoop,
		VFSOnly,
		LockHeld,
		ErrFlow,
		StatSound,
	}
}
