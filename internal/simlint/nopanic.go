package simlint

import (
	"go/ast"
	"go/types"
)

// NoPanic forbids panic, log.Fatal*/log.Panic* (package-level or on a
// *log.Logger) and os.Exit inside the engine packages. The engine's
// contract since the fault-injection PR is that every failure travels
// through error returns — sentinel errors matched with errors.Is — so
// one bad unit can never abort a whole sweep or campaign. Truly
// unreachable states may be annotated //simlint:allow nopanic with a
// justification.
var NoPanic = &Analyzer{
	Name:     "nopanic",
	Doc:      "forbid panic/log.Fatal/os.Exit in engine packages; failures must be error returns",
	Packages: EnginePackages,
	Run:      runNoPanic,
}

// fatalLogNames are the log functions/methods that terminate or panic.
var fatalLogNames = map[string]bool{
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

func runNoPanic(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					pass.Reportf(call.Pos(), "panic in engine package %s; return an error (sentinel + errors.Is) instead", pass.PkgPath)
					return true
				}
			}
			fn := usedFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			switch calleePath(fn) {
			case "os":
				if fn.Name() == "Exit" {
					pass.Reportf(call.Pos(), "os.Exit in engine package %s; only the CLI layer may choose exit codes", pass.PkgPath)
				}
			case "log":
				if fatalLogNames[fn.Name()] {
					pass.Reportf(call.Pos(), "log.%s in engine package %s; return an error instead of terminating", fn.Name(), pass.PkgPath)
				}
			}
			return true
		})
	}
	return nil
}
