package simlint

import (
	"go/ast"
)

// VFSOnly keeps the durability packages honest about their filesystem
// boundary: every file operation must travel through an injected
// vfs.FS, never os.* directly. The fault-injection harness and the
// crash-consistency proofs only cover what flows through that
// interface — a stray os.Rename in a journal would be a write the
// torn-write and power-cut tests can never see. internal/vfs itself is
// deliberately out of scope: its OS passthrough is the one sanctioned
// home for the real calls.
var VFSOnly = &Analyzer{
	Name:     "vfsonly",
	Doc:      "durability packages must reach the filesystem through vfs.FS, not os.* directly",
	Packages: DurabilityPackages,
	Run:      runVFSOnly,
}

// osFileOps are the os package functions that touch the filesystem.
// Environment lookups (os.UserCacheDir, os.Getenv), process plumbing
// (os.Stderr, os.Exit — nopanic's concern) and error predicates stay
// allowed.
var osFileOps = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Rename": true, "Remove": true,
	"RemoveAll": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Stat": true, "Lstat": true, "ReadDir": true, "Chtimes": true,
	"Truncate": true, "Chmod": true, "Chown": true, "Symlink": true,
	"Link": true, "Readlink": true,
}

func runVFSOnly(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := usedFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			if calleePath(fn) == "os" && osFileOps[fn.Name()] {
				pass.Reportf(call.Pos(),
					"os.%s in durability package %s bypasses the vfs fault-injection boundary; take a vfs.FS",
					fn.Name(), pass.PkgPath)
			}
			return true
		})
	}
	return nil
}
