package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestWatchdogDetectsStall(t *testing.T) {
	var mu sync.Mutex
	var stalls []Stall
	w := NewWatchdog(WatchdogConfig{
		SoftDeadline: 50 * time.Millisecond,
		Poll:         10 * time.Millisecond,
		OnStall: func(s Stall) {
			mu.Lock()
			stalls = append(stalls, s)
			mu.Unlock()
		},
	})
	defer w.Stop()

	task := w.Begin("stuck-unit")
	defer w.End(task)
	deadline := time.Now().Add(5 * time.Second)
	for w.Stalls() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never reported the silent task")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(stalls) == 0 || stalls[0].Task != "stuck-unit" || stalls[0].Idle < 50*time.Millisecond {
		t.Fatalf("stalls = %+v", stalls)
	}
}

func TestWatchdogBeatingTaskNeverStalls(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{SoftDeadline: 40 * time.Millisecond, Poll: 10 * time.Millisecond})
	defer w.Stop()
	task := w.Begin("busy-unit")
	stop := time.After(200 * time.Millisecond)
	for {
		select {
		case <-stop:
			w.End(task)
			if n := w.Stalls(); n != 0 {
				t.Fatalf("beating task reported %d stalls", n)
			}
			return
		default:
			task.Beat()
			time.Sleep(time.Millisecond)
		}
	}
}

// TestWatchdogStallEpisodes: a task that stalls, resumes, and stalls
// again is two episodes, not a report per poll.
func TestWatchdogStallEpisodes(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{SoftDeadline: 30 * time.Millisecond, Poll: 10 * time.Millisecond})
	defer w.Stop()
	task := w.Begin("bursty-unit")
	defer w.End(task)

	waitStalls := func(want uint64) {
		deadline := time.Now().Add(5 * time.Second)
		for w.Stalls() < want {
			if time.Now().After(deadline) {
				t.Fatalf("stalls stuck at %d, want %d", w.Stalls(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitStalls(1)
	// Resume: the episode must end, and staying silent again must open
	// exactly one more.
	for i := 0; i < 5; i++ {
		task.Beat()
		time.Sleep(15 * time.Millisecond)
	}
	waitStalls(2)
	if n := w.Stalls(); n != 2 {
		t.Fatalf("stalls = %d, want 2", n)
	}
}

func TestWatchdogInertWhenDisabled(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{})
	task := w.Begin("unit")
	task.Beat()
	w.End(task)
	w.Stop() // must not hang: no monitor goroutine exists
	if w.Stalls() != 0 {
		t.Fatal("inert watchdog reported stalls")
	}
}

func TestRetrySucceedsWithinBudget(t *testing.T) {
	calls := 0
	var retries []int
	err := Retry(context.Background(), "u", RetryConfig{Attempts: 3, Backoff: time.Millisecond},
		func() error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		},
		func(attempt int, err error) { retries = append(retries, attempt) })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(retries) != 2 {
		t.Fatalf("calls = %d, retries = %v", calls, retries)
	}
}

func TestRetryExhaustionIsStructured(t *testing.T) {
	boom := errors.New("boom")
	err := Retry(context.Background(), "ccom/cfgs[0:8]", RetryConfig{Attempts: 2, Backoff: time.Millisecond},
		func() error { return boom }, nil)
	var ue *UnitError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v (%T), want *UnitError", err, err)
	}
	if ue.Unit != "ccom/cfgs[0:8]" || ue.Attempts != 2 || !errors.Is(err, boom) {
		t.Fatalf("UnitError = %+v", ue)
	}
}

// TestRetryStopsOnCancellation: cancellation is never retried — it is
// a decision, not a transient fault.
func TestRetryStopsOnCancellation(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), "u", RetryConfig{Attempts: 5, Backoff: time.Millisecond},
		func() error { calls++; return context.Canceled }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("cancelled unit was tried %d times", calls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls = 0
	err = Retry(ctx, "u", RetryConfig{Attempts: 5, Backoff: time.Minute},
		func() error { calls++; return errors.New("transient") }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ctx error from backoff wait", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (backoff wait must honor ctx)", calls)
	}
}
