package resilience

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"cachewrite/internal/vfs"
)

// crashState is the payload the crash-consistency harness journals:
// enough structure (slice + scalar) that torn decodes cannot
// accidentally reproduce it.
type crashState struct {
	Units []string
	Gen   int
}

func stateA() crashState {
	return crashState{Units: []string{"u0", "u1", "u2"}, Gen: 1}
}

func stateB() crashState {
	return crashState{Units: []string{"u0", "u1", "u2", "u3", "u4"}, Gen: 2}
}

const crashJournalPath = "/state/sweeps/job.ckpt"

// newCrashRig builds a Mem filesystem with snapshot A committed
// cleanly, wrapped in a zero-plan Faulty ready for one faulted Save.
func newCrashRig(t *testing.T) (*vfs.Mem, *vfs.Faulty, *Journal[crashState]) {
	t.Helper()
	mem := vfs.NewMem()
	faulty := vfs.NewFaulty(mem, vfs.Plan{})
	j := NewJournalFS[crashState](faulty, crashJournalPath, "sweep", 1)
	if err := j.Save(stateA()); err != nil {
		t.Fatalf("seed save: %v", err)
	}
	return mem, faulty, j
}

// commitOps measures how many mutating operations one Save of B over an
// existing snapshot performs — the write-boundary count the harness
// enumerates.
func commitOps(t *testing.T) int {
	t.Helper()
	_, faulty, j := newCrashRig(t)
	faulty.Reset(vfs.Plan{})
	if err := j.Save(stateB()); err != nil {
		t.Fatalf("probe save: %v", err)
	}
	n := faulty.Ops()
	if n < 6 {
		t.Fatalf("probe counted %d ops; a commit has at least mkdir, createtemp, 2 writes, sync, rename", n)
	}
	return n
}

// loadClean recovers from mem with a fault-free journal, as a restarted
// process would.
func loadClean(t *testing.T, mem *vfs.Mem) (crashState, LoadInfo) {
	t.Helper()
	j := NewJournalFS[crashState](mem, crashJournalPath, "sweep", 1)
	v, info, err := j.Load()
	if err != nil {
		t.Fatalf("recovery load: %v", err)
	}
	return v, info
}

// assertAckInvariant is the core crash-consistency property: if Save
// acked (returned nil) the recovered state must be the new snapshot; if
// Save failed, recovery must return the previous snapshot — never a
// torn hybrid, never nothing.
func assertAckInvariant(t *testing.T, boundary string, saveErr error, got crashState, info LoadInfo) {
	t.Helper()
	if !info.Found {
		t.Fatalf("%s: recovery found no snapshot (save err: %v)", boundary, saveErr)
	}
	want := stateA()
	if saveErr == nil {
		want = stateB()
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: recovered %+v, want %+v (save err: %v)", boundary, got, want, saveErr)
	}
}

// TestCrashAtEveryWriteBoundary simulates power loss at every mutating
// operation of a journal commit and proves recovery returns exactly the
// old or the new snapshot — an acked Save is never lost, a failed Save
// never corrupts.
func TestCrashAtEveryWriteBoundary(t *testing.T) {
	n := commitOps(t)
	for op := 1; op <= n; op++ {
		t.Run(fmt.Sprintf("crash-at-op-%d", op), func(t *testing.T) {
			mem, faulty, j := newCrashRig(t)
			faulty.Reset(vfs.Plan{CrashAtOp: op})
			saveErr := j.Save(stateB())
			if saveErr != nil && !errors.Is(saveErr, vfs.ErrCrashed) {
				t.Fatalf("save failed with non-crash error: %v", saveErr)
			}
			mem.Crash()
			got, info := loadClean(t, mem)
			assertAckInvariant(t, fmt.Sprintf("crash@%d", op), saveErr, got, info)
		})
	}
}

// TestFaultAtEveryWriteBoundary pins each write-path fault kind to each
// operation of a commit in turn (no crash — the process survives the
// error) and proves the same ack invariant.
func TestFaultAtEveryWriteBoundary(t *testing.T) {
	n := commitOps(t)
	for _, kind := range []vfs.Kind{vfs.KindTornWrite, vfs.KindENOSPC, vfs.KindRenameFail} {
		for op := 1; op <= n; op++ {
			t.Run(fmt.Sprintf("%s-at-op-%d", kind, op), func(t *testing.T) {
				mem, faulty, j := newCrashRig(t)
				faulty.Reset(vfs.Plan{FailAtOp: op, FailKind: kind})
				saveErr := j.Save(stateB())
				if saveErr != nil && !vfs.IsStorageFault(saveErr) {
					t.Fatalf("save failed with non-storage error: %v", saveErr)
				}
				got, info := loadClean(t, mem)
				assertAckInvariant(t, fmt.Sprintf("%s@%d", kind, op), saveErr, got, info)
			})
		}
	}
}

// TestTornRotationRecovery is the satellite case: a crash exactly
// between the rename of current→.prev and the new snapshot landing.
// The current snapshot is gone, the new one never arrived — recovery
// must fall back to the rotated previous snapshot.
func TestTornRotationRecovery(t *testing.T) {
	n := commitOps(t)
	// Op n is the deferred temp-file cleanup, op n-1 the commit rename,
	// op n-2 the rotation; crashing at the commit rename is the torn
	// window between the two renames.
	mem, faulty, j := newCrashRig(t)
	faulty.Reset(vfs.Plan{CrashAtOp: n - 1})
	saveErr := j.Save(stateB())
	if saveErr == nil {
		t.Fatal("save must fail when the commit rename crashes")
	}
	mem.Crash()
	if _, err := mem.Stat(crashJournalPath); err == nil {
		t.Fatal("setup failed to crash inside the rotation window: current still exists")
	}
	got, info := loadClean(t, mem)
	if !info.Found || !info.Fallback {
		t.Fatalf("recovery did not fall back to .prev: %+v", info)
	}
	if !reflect.DeepEqual(got, stateA()) {
		t.Fatalf("recovered %+v, want rotated previous snapshot %+v", got, stateA())
	}
}

// TestRotationSparesPrevWhenCurrentCorrupt proves the rotation-hole
// fix: when the current snapshot is corrupt (torn by an earlier crash)
// and .prev holds the last good state, a Save that fails at any
// boundary must never destroy .prev by rotating garbage over it.
func TestRotationSparesPrevWhenCurrentCorrupt(t *testing.T) {
	corruptCurrent := func(t *testing.T, mem *vfs.Mem) {
		t.Helper()
		f, err := mem.CreateTemp("/state/sweeps", ".garbage-*")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.WriteString(f, "RSJ1 sweep v1 crc32=deadbeef len=999\ntorn"); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := mem.Rename(f.Name(), crashJournalPath); err != nil {
			t.Fatal(err)
		}
	}

	// Probe the op count of a commit over a corrupt current (the
	// corrupt path skips the rotation, so it is one op shorter — but a
	// regressed implementation would rotate, so enumerate generously).
	probeMem, probeFaulty, probeJ := func() (*vfs.Mem, *vfs.Faulty, *Journal[crashState]) {
		mem, faulty, j := newCrashRig(t)
		if err := j.Save(stateB()); err != nil { // rotate A to .prev
			t.Fatal(err)
		}
		return mem, faulty, j
	}()
	_ = probeJ
	corruptCurrent(t, probeMem)
	probeFaulty.Reset(vfs.Plan{})
	if err := probeJ.Save(crashState{Gen: 3}); err != nil {
		t.Fatalf("probe save: %v", err)
	}
	n := probeFaulty.Ops() + 1 // +1 covers the extra rotate op of a regressed Save

	for op := 1; op <= n; op++ {
		t.Run(fmt.Sprintf("crash-at-op-%d", op), func(t *testing.T) {
			mem, faulty, j := newCrashRig(t)
			if err := j.Save(stateB()); err != nil { // current=B, .prev=A
				t.Fatal(err)
			}
			corruptCurrent(t, mem) // current=garbage, .prev=A: last good state is A
			next := crashState{Units: []string{"u9"}, Gen: 3}
			faulty.Reset(vfs.Plan{CrashAtOp: op})
			saveErr := j.Save(next)
			mem.Crash()
			got, info := loadClean(t, mem)
			if !info.Found {
				t.Fatalf("crash@%d destroyed the last good snapshot (save err: %v)", op, saveErr)
			}
			want := stateA()
			if saveErr == nil {
				want = next
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("crash@%d: recovered %+v, want %+v (save err: %v)", op, got, want, saveErr)
			}
		})
	}
}

// TestFsyncLieFallsBackToPrev: a device that acknowledges Sync without
// flushing loses the new snapshot at the next power cut. No software
// recovers bytes a lying disk dropped — the provable invariant is that
// recovery is never torn: it falls back cleanly to the previous
// snapshot whose data did reach the platter.
func TestFsyncLieFallsBackToPrev(t *testing.T) {
	mem, faulty, j := newCrashRig(t) // A synced honestly
	faulty.Reset(vfs.Plan{Kinds: vfs.KindFsyncLie})
	if err := j.Save(stateB()); err != nil {
		t.Fatalf("save over a lying device still acks: %v", err)
	}
	if c := faulty.CountsSnapshot(); c.FsyncLies == 0 {
		t.Fatal("no sync lie recorded; harness is not exercising the fault")
	}
	mem.Crash()
	got, info := loadClean(t, mem)
	if !info.Found || !info.Fallback {
		t.Fatalf("expected clean fallback to .prev, got %+v", info)
	}
	if !reflect.DeepEqual(got, stateA()) {
		t.Fatalf("recovered %+v, want previous snapshot %+v", got, stateA())
	}
	if len(info.Warnings) == 0 {
		t.Fatal("the torn current snapshot should be reported in warnings")
	}
}

// TestLoadReadEIOSurfacesError: a dying device that fails reads must
// surface an I/O error from Load — never a silent "no snapshot" that
// would restart the run from scratch while the checkpoint still exists.
func TestLoadReadEIOSurfacesError(t *testing.T) {
	mem, _, _ := newCrashRig(t)
	faulty := vfs.NewFaulty(mem, vfs.Plan{Rate: 1, Kinds: vfs.KindReadEIO})
	j := NewJournalFS[crashState](faulty, crashJournalPath, "sweep", 1)
	_, info, err := j.Load()
	if err == nil {
		t.Fatal("Load over a failing device returned no error")
	}
	if !vfs.IsStorageFault(err) {
		t.Fatalf("Load error %v is not classified as a storage fault", err)
	}
	if info.Found {
		t.Fatalf("Load claimed success over a failing device: %+v", info)
	}
}
