package resilience

import (
	"reflect"
	"testing"

	"cachewrite/internal/vfs"
)

// putFile plants raw bytes at path on a Mem filesystem, synced, the way
// arbitrary post-crash disk contents would appear to recovery.
func putFile(t *testing.T, mem *vfs.Mem, path string, data []byte) {
	t.Helper()
	f, err := mem.CreateTemp("/state/sweeps", ".plant-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := mem.Rename(f.Name(), path); err != nil {
		t.Fatal(err)
	}
}

// FuzzJournalRecover feeds arbitrary bytes into the current-snapshot
// slot with a known-good .prev behind it. Recovery must never panic,
// never return an I/O error from a healthy device, and — whenever it
// rejects the current snapshot — always land on the .prev payload.
func FuzzJournalRecover(f *testing.F) {
	goodPrev := stateA()

	// Seed corpus: a valid snapshot, truncations and mutations of it,
	// plus degenerate shapes.
	seedMem := vfs.NewMem()
	seedJournal := NewJournalFS[crashState](seedMem, crashJournalPath, "sweep", 1)
	if err := seedJournal.Save(stateB()); err != nil {
		f.Fatal(err)
	}
	valid, err := seedMem.ReadFile(crashJournalPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)-3] ^= 0x40
	f.Add(mutated)
	f.Add([]byte{})
	f.Add([]byte("RSJ1 sweep v1 crc32=00000000 len=0\n"))
	f.Add([]byte("RSJ1 sweep v1"))
	f.Add([]byte("not a journal at all"))

	f.Fuzz(func(t *testing.T, current []byte) {
		mem := vfs.NewMem()
		j := NewJournalFS[crashState](mem, crashJournalPath, "sweep", 1)
		if err := j.Save(goodPrev); err != nil {
			t.Fatal(err)
		}
		// Rotate the good snapshot into .prev and plant the fuzzed bytes
		// as current.
		if err := mem.Rename(crashJournalPath, crashJournalPath+prevSuffix); err != nil {
			t.Fatal(err)
		}
		putFile(t, mem, crashJournalPath, current)

		got, info, err := j.Load()
		if err != nil {
			t.Fatalf("Load returned an error on a healthy device: %v", err)
		}
		if !info.Found {
			t.Fatalf("good .prev present but recovery found nothing (current = %d bytes)", len(current))
		}
		if info.Fallback && !reflect.DeepEqual(got, goodPrev) {
			t.Fatalf("fallback recovered %+v, want .prev payload %+v", got, goodPrev)
		}
		// Whatever was recovered must survive a round trip: Save it and
		// load it back byte-identically.
		if err := j.Save(got); err != nil {
			t.Fatalf("re-save of recovered state: %v", err)
		}
		again, _, err := j.Load()
		if err != nil || !reflect.DeepEqual(again, got) {
			t.Fatalf("round trip diverged: %+v vs %+v (%v)", again, got, err)
		}
	})
}
