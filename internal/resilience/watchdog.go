package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one watched unit of in-flight work. Workers call Beat as
// they make progress (every few thousand events is plenty); the
// watchdog's monitor declares the task stalled when the beat counter
// stops advancing for longer than the soft deadline. Beat is a single
// atomic add, safe for hot loops.
type Task struct {
	name  string
	beats atomic.Uint64

	// Monitor-goroutine state (no locking needed: one reader).
	lastBeats   uint64
	lastAdvance time.Time
	stalled     bool
}

// Beat records forward progress.
func (t *Task) Beat() { t.beats.Add(1) }

// Stall describes one stall episode observed by the watchdog.
type Stall struct {
	// Task is the stalled task's name.
	Task string
	// Idle is how long the task had made no progress when the stall
	// was declared.
	Idle time.Duration
}

// WatchdogConfig tunes a Watchdog.
type WatchdogConfig struct {
	// SoftDeadline is the maximum time a task may go without a beat
	// before it is reported stalled. Zero disables the watchdog
	// entirely (Begin returns tasks, but nothing monitors them).
	SoftDeadline time.Duration
	// Poll is the monitor wake-up interval (default SoftDeadline/4,
	// minimum 10ms).
	Poll time.Duration
	// OnStall, when non-nil, is called (from the monitor goroutine)
	// once per stall episode: when a task first exceeds the deadline,
	// and again only after it has resumed and stalled anew.
	OnStall func(Stall)
}

// Watchdog monitors the liveness of a pool of workers via heartbeat
// counters. It detects stalls — a worker stuck on one unit past its
// soft deadline — and surfaces them as structured events without
// killing anything: goroutines cannot be preempted, and a stall on an
// oversized unit is information, not necessarily failure.
type Watchdog struct {
	cfg    WatchdogConfig
	mu     sync.Mutex
	active map[*Task]struct{}
	stalls atomic.Uint64
	stop   chan struct{}
	done   chan struct{}
}

// NewWatchdog starts a watchdog. Stop must be called to release its
// monitor goroutine; a zero SoftDeadline yields an inert watchdog with
// no goroutine at all.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	w := &Watchdog{cfg: cfg, active: make(map[*Task]struct{})}
	if cfg.SoftDeadline <= 0 {
		return w
	}
	if w.cfg.Poll <= 0 {
		w.cfg.Poll = cfg.SoftDeadline / 4
	}
	if w.cfg.Poll < 10*time.Millisecond {
		w.cfg.Poll = 10 * time.Millisecond
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go w.monitor()
	return w
}

// Begin registers a unit of work under the given name and returns its
// heartbeat task. The caller must pair it with End.
func (w *Watchdog) Begin(name string) *Task {
	t := &Task{name: name, lastAdvance: time.Now()}
	w.mu.Lock()
	w.active[t] = struct{}{}
	w.mu.Unlock()
	return t
}

// End deregisters a finished unit.
func (w *Watchdog) End(t *Task) {
	w.mu.Lock()
	delete(w.active, t)
	w.mu.Unlock()
}

// Stalls reports how many stall episodes the watchdog has observed.
func (w *Watchdog) Stalls() uint64 { return w.stalls.Load() }

// Stop shuts the monitor down and waits for it to exit. Safe to call
// on an inert watchdog.
func (w *Watchdog) Stop() {
	if w.stop == nil {
		return
	}
	close(w.stop)
	<-w.done
}

// monitor compares each active task's beat counter against its value
// at the previous poll: a counter that has not advanced for longer
// than the soft deadline is a stall. Comparing counters in the monitor
// keeps time.Now out of the workers' beat path.
func (w *Watchdog) monitor() {
	defer close(w.done)
	ticker := time.NewTicker(w.cfg.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case now := <-ticker.C:
			w.mu.Lock()
			tasks := make([]*Task, 0, len(w.active))
			for t := range w.active {
				tasks = append(tasks, t)
			}
			w.mu.Unlock()
			for _, t := range tasks {
				beats := t.beats.Load()
				if beats != t.lastBeats {
					t.lastBeats = beats
					t.lastAdvance = now
					t.stalled = false
					continue
				}
				idle := now.Sub(t.lastAdvance)
				if idle >= w.cfg.SoftDeadline && !t.stalled {
					t.stalled = true
					w.stalls.Add(1)
					if w.cfg.OnStall != nil {
						w.cfg.OnStall(Stall{Task: t.name, Idle: idle})
					}
				}
			}
		}
	}
}

// RetryConfig bounds re-execution of a failed unit of work.
type RetryConfig struct {
	// Attempts is the total number of tries (default 1, i.e. no
	// retries).
	Attempts int
	// Backoff is the wait before the first retry, doubling on each
	// subsequent one (default 10ms). The wait honors ctx.
	Backoff time.Duration
}

// UnitError reports a unit of work that still failed after its retry
// budget was exhausted. It unwraps to the final attempt's error.
type UnitError struct {
	// Unit names the failed unit (e.g. "ccom/cfgs[24:32]").
	Unit string
	// Attempts is how many times the unit was tried.
	Attempts int
	// Err is the final attempt's error.
	Err error
}

func (e *UnitError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("resilience: unit %s failed after %d attempts: %v", e.Unit, e.Attempts, e.Err)
	}
	return fmt.Sprintf("resilience: unit %s failed: %v", e.Unit, e.Err)
}

func (e *UnitError) Unwrap() error { return e.Err }

// Retry runs f up to cfg.Attempts times, sleeping an exponentially
// growing backoff between tries, and wraps the final failure in a
// *UnitError. Context cancellation — of ctx itself, or an f error that
// is a context error — stops retrying immediately: cancellation is a
// decision, not a transient fault. onRetry (may be nil) is told about
// each failed attempt that will be retried.
func Retry(ctx context.Context, unit string, cfg RetryConfig, f func() error, onRetry func(attempt int, err error)) error {
	attempts := cfg.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := cfg.Backoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		if err = f(); err == nil {
			return nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if attempt == attempts {
			break
		}
		if onRetry != nil {
			onRetry(attempt, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
	return &UnitError{Unit: unit, Attempts: attempts, Err: err}
}
