package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRetryZeroAttemptsMeansOneTry: a zero or negative budget still
// runs the unit exactly once — "no retries", never "no tries".
func TestRetryZeroAttemptsMeansOneTry(t *testing.T) {
	for _, attempts := range []int{0, -3} {
		calls, retries := 0, 0
		boom := errors.New("boom")
		err := Retry(context.Background(), "u", RetryConfig{Attempts: attempts},
			func() error { calls++; return boom },
			func(int, error) { retries++ })
		if calls != 1 {
			t.Fatalf("Attempts=%d: unit ran %d times, want exactly 1", attempts, calls)
		}
		if retries != 0 {
			t.Fatalf("Attempts=%d: onRetry fired %d times for a no-retry budget", attempts, retries)
		}
		var ue *UnitError
		if !errors.As(err, &ue) || ue.Attempts != 1 {
			t.Fatalf("Attempts=%d: err = %v, want *UnitError with Attempts=1", attempts, err)
		}
	}
}

// TestRetryZeroAttemptsSuccess: the single try succeeding returns nil.
func TestRetryZeroAttemptsSuccess(t *testing.T) {
	if err := Retry(context.Background(), "u", RetryConfig{}, func() error { return nil }, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
}

// TestRetryCancelledMidBackoff: cancellation arriving while Retry
// sleeps between attempts must interrupt the sleep promptly and return
// the context's error — not sit out the full (long) backoff.
func TestRetryCancelledMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := Retry(ctx, "u", RetryConfig{Attempts: 3, Backoff: time.Hour},
		func() error { calls++; return errors.New("transient") }, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("unit ran %d times; the second attempt must never start after cancellation", calls)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("Retry returned after %s; cancellation must interrupt the backoff sleep", elapsed)
	}
}

// TestRetryDeadlineErrorNotRetried: an f error that wraps
// context.DeadlineExceeded is treated like cancellation (the deadline
// is a decision), even when ctx itself is still alive.
func TestRetryDeadlineErrorNotRetried(t *testing.T) {
	calls := 0
	wrapped := errors.Join(errors.New("sweep aborted"), context.DeadlineExceeded)
	err := Retry(context.Background(), "u", RetryConfig{Attempts: 5, Backoff: time.Millisecond},
		func() error { calls++; return wrapped }, nil)
	if calls != 1 {
		t.Fatalf("deadline-failed unit was tried %d times, want 1", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the deadline error through unchanged", err)
	}
	var ue *UnitError
	if errors.As(err, &ue) {
		t.Fatalf("deadline errors must not be wrapped in UnitError, got %+v", ue)
	}
}

// TestRetryUnitErrorUnwrapping: the final failure must stay reachable
// through the UnitError with errors.Is/As across wrapping layers.
func TestRetryUnitErrorUnwrapping(t *testing.T) {
	sentinel := errors.New("disk on fire")
	wrapped := errors.Join(errors.New("unit 3 failed"), sentinel)
	err := Retry(context.Background(), "grr/cfgs[8:16]", RetryConfig{Attempts: 2, Backoff: time.Millisecond},
		func() error { return wrapped }, nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is cannot reach the sentinel through %v", err)
	}
	var ue *UnitError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v (%T), want *UnitError", err, err)
	}
	if ue.Unit != "grr/cfgs[8:16]" || ue.Attempts != 2 {
		t.Fatalf("UnitError = %+v, want unit grr/cfgs[8:16] after 2 attempts", ue)
	}
	if !errors.Is(ue.Unwrap(), sentinel) {
		t.Fatalf("Unwrap() = %v does not reach the sentinel", ue.Unwrap())
	}
	// And a fresh errors.Is against an unrelated error still says no.
	if errors.Is(err, context.Canceled) {
		t.Fatalf("UnitError leaked a context error it never saw")
	}
}

// TestRetryOnRetryNumbering: onRetry reports 1-based attempt numbers,
// once per failed attempt that will be retried — never for the last.
func TestRetryOnRetryNumbering(t *testing.T) {
	var attempts []int
	var errs []string
	calls := 0
	err := Retry(context.Background(), "u", RetryConfig{Attempts: 4, Backoff: time.Microsecond},
		func() error { calls++; return errors.New("boom " + string(rune('0'+calls))) },
		func(attempt int, err error) {
			attempts = append(attempts, attempt)
			errs = append(errs, err.Error())
		})
	if err == nil {
		t.Fatal("want exhaustion error")
	}
	if want := []int{1, 2, 3}; len(attempts) != 3 || attempts[0] != want[0] || attempts[1] != want[1] || attempts[2] != want[2] {
		t.Fatalf("onRetry attempts = %v, want %v", attempts, want)
	}
	for i, msg := range errs {
		if want := "boom " + string(rune('1'+i)); msg != want {
			t.Fatalf("onRetry err[%d] = %q, want %q (the attempt that just failed)", i, msg, want)
		}
	}
}

// TestRetryBackoffDoubles: each sleep doubles, so the total wait for
// n retries is bounded by 2^n * Backoff — verified coarsely so the
// test stays robust on slow machines (lower bound only).
func TestRetryBackoffDoubles(t *testing.T) {
	const base = 10 * time.Millisecond
	start := time.Now()
	_ = Retry(context.Background(), "u", RetryConfig{Attempts: 3, Backoff: base},
		func() error { return errors.New("transient") }, nil)
	// Sleeps: base + 2*base = 30ms minimum.
	if elapsed := time.Since(start); elapsed < 3*base {
		t.Fatalf("elapsed %s < %s; backoff did not accumulate exponentially", elapsed, 3*base)
	}
}
