package resilience

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

type snap struct {
	N     int      `json:"n"`
	Names []string `json:"names"`
}

func TestJournalRoundTrip(t *testing.T) {
	j := NewJournal[snap](filepath.Join(t.TempDir(), "j.ckpt"), "test", 1)
	want := snap{N: 7, Names: []string{"a", "b"}}
	if err := j.Save(want); err != nil {
		t.Fatal(err)
	}
	got, info, err := j.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Found || info.Fallback || len(info.Warnings) != 0 {
		t.Fatalf("info = %+v, want clean load", info)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestJournalMissingIsNotFound(t *testing.T) {
	j := NewJournal[snap](filepath.Join(t.TempDir(), "j.ckpt"), "test", 1)
	_, info, err := j.Load()
	if err != nil {
		t.Fatal(err)
	}
	if info.Found {
		t.Fatal("found a snapshot in an empty directory")
	}
}

// TestJournalCorruptFallsBack corrupts the current snapshot in several
// ways; every one must fall back to the rotated previous snapshot.
func TestJournalCorruptFallsBack(t *testing.T) {
	corruptions := map[string]func(path string) error{
		"truncated": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, data[:len(data)-3], 0o644)
		},
		"bit-flip": func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			data[len(data)-2] ^= 0x40
			return os.WriteFile(path, data, 0o644)
		},
		"garbage": func(path string) error {
			return os.WriteFile(path, []byte("not a journal at all"), 0o644)
		},
		"empty": func(path string) error {
			return os.WriteFile(path, nil, 0o644)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			j := NewJournal[snap](filepath.Join(t.TempDir(), "j.ckpt"), "test", 1)
			prev := snap{N: 1, Names: []string{"old"}}
			if err := j.Save(prev); err != nil {
				t.Fatal(err)
			}
			if err := j.Save(snap{N: 2, Names: []string{"new"}}); err != nil {
				t.Fatal(err)
			}
			if err := corrupt(j.Path()); err != nil {
				t.Fatal(err)
			}
			got, info, err := j.Load()
			if err != nil {
				t.Fatal(err)
			}
			if !info.Found || !info.Fallback {
				t.Fatalf("info = %+v, want fallback load", info)
			}
			if len(info.Warnings) == 0 || !strings.Contains(info.Warnings[0], "unusable") {
				t.Fatalf("warnings = %v, want corruption warning", info.Warnings)
			}
			if !reflect.DeepEqual(got, prev) {
				t.Fatalf("got %+v, want previous snapshot %+v", got, prev)
			}
		})
	}
}

func TestJournalBothCorruptReadsAsFresh(t *testing.T) {
	j := NewJournal[snap](filepath.Join(t.TempDir(), "j.ckpt"), "test", 1)
	if err := j.Save(snap{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Save(snap{N: 2}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{j.Path(), j.Path() + prevSuffix} {
		if err := os.WriteFile(p, []byte("zap"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, info, err := j.Load()
	if err != nil {
		t.Fatal(err)
	}
	if info.Found {
		t.Fatal("corrupt journal pair loaded as found")
	}
	if len(info.Warnings) != 2 {
		t.Fatalf("warnings = %v, want one per corrupt snapshot", info.Warnings)
	}
}

// TestJournalKindVersionMismatch: a snapshot from another tool or an
// older schema must be ignored, not misdecoded.
func TestJournalKindVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ckpt")
	if err := NewJournal[snap](path, "sweep", 1).Save(snap{N: 9}); err != nil {
		t.Fatal(err)
	}
	if _, info, err := NewJournal[snap](path, "campaign", 1).Load(); err != nil || info.Found {
		t.Fatalf("cross-kind load: found=%v err=%v, want ignored", info.Found, err)
	}
	if _, info, err := NewJournal[snap](path, "sweep", 2).Load(); err != nil || info.Found {
		t.Fatalf("cross-version load: found=%v err=%v, want ignored", info.Found, err)
	}
}

func TestJournalRemove(t *testing.T) {
	j := NewJournal[snap](filepath.Join(t.TempDir(), "j.ckpt"), "test", 1)
	if err := j.Save(snap{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Save(snap{N: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.Remove(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{j.Path(), j.Path() + prevSuffix} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s still exists after Remove", p)
		}
	}
	// Removing an already-removed journal is fine.
	if err := j.Remove(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalNoStrayTempFiles: every Save path must clean up its
// temporary file.
func TestJournalNoStrayTempFiles(t *testing.T) {
	dir := t.TempDir()
	j := NewJournal[snap](filepath.Join(dir, "j.ckpt"), "test", 1)
	for i := 0; i < 5; i++ {
		if err := j.Save(snap{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".journal-") {
			t.Fatalf("stray temp file %s left behind", e.Name())
		}
	}
}
