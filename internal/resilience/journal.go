// Package resilience is the shared crash-safety layer for every
// long-running path in the repository: a generic checkpoint journal
// (atomic snapshots with a versioned, checksummed header and fallback
// to the previous good snapshot), a heartbeat watchdog for worker
// pools, and bounded retry-with-backoff for failed units of work.
//
// The journal generalizes the checkpoint discipline internal/campaign
// proved out: snapshots are written to a temporary file in the target
// directory and renamed into place, so a crash at any instant leaves
// either the old snapshot, the new snapshot, or the old snapshot
// rotated to its ".prev" slot — never a torn file. Corruption that
// slips past rename atomicity (bit rot, truncation by a full disk,
// hand editing) is caught by the CRC and length recorded in the
// header, and Load falls back to the previous good snapshot instead
// of failing the run.
package resilience

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"path/filepath"

	"cachewrite/internal/vfs"
)

// ExitInterrupted is the process exit code the CLIs use when a run was
// cancelled by SIGINT/SIGTERM after flushing a final checkpoint. It is
// distinct from 1 (failure) and 2 (usage) so scripts can distinguish
// "re-run to resume" from "broken".
const ExitInterrupted = 3

// journalMagic opens every snapshot file. The trailing format version
// is the *container* version; the payload schema carries its own
// version in the header's kind/version fields.
const journalMagic = "RSJ1"

// prevSuffix is appended to the snapshot path for the rotated
// previous-good snapshot.
const prevSuffix = ".prev"

// Journal persists snapshots of T at a fixed path. Save is atomic and
// rotates the prior snapshot to a ".prev" sibling; Load verifies the
// header (magic, kind, version, payload length, CRC-32) and falls back
// to the rotation when the current snapshot is corrupt. The zero value
// is not usable; construct with NewJournal.
type Journal[T any] struct {
	path    string
	kind    string
	version int
	fs      vfs.FS
}

// NewJournal returns a journal for snapshots of T at path. kind names
// the payload schema (e.g. "sweep", "campaign") and version its schema
// revision; Load ignores snapshots whose kind or version differ, so a
// schema change invalidates old journals instead of misdecoding them.
func NewJournal[T any](path, kind string, version int) *Journal[T] {
	return NewJournalFS[T](vfs.OS{}, path, kind, version)
}

// NewJournalFS is NewJournal on an explicit filesystem — the seam the
// crash-consistency harness uses to inject storage faults under every
// write boundary of a commit.
func NewJournalFS[T any](fsys vfs.FS, path, kind string, version int) *Journal[T] {
	return &Journal[T]{path: path, kind: kind, version: version, fs: fsys}
}

// Path returns the snapshot path.
func (j *Journal[T]) Path() string { return j.path }

// LoadInfo describes where a Load found its snapshot.
type LoadInfo struct {
	// Found reports whether any usable snapshot was loaded.
	Found bool
	// Fallback reports that the current snapshot was missing or corrupt
	// and the previous good snapshot was used instead.
	Fallback bool
	// Warnings describes corrupt snapshots encountered along the way
	// (empty on a clean load).
	Warnings []string
}

// Save atomically persists a snapshot: encode, write to a temp file in
// the same directory, rename the current snapshot (if any) to its
// ".prev" slot, then rename the temp file into place. A crash between
// the two renames leaves the previous snapshot in the ".prev" slot,
// which Load recovers.
func (j *Journal[T]) Save(v T) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("resilience: journal %s: encode: %w", j.path, err)
	}
	header := fmt.Sprintf("%s %s v%d crc32=%08x len=%d\n",
		journalMagic, j.kind, j.version, crc32.ChecksumIEEE(payload), len(payload))
	dir := filepath.Dir(j.path)
	if err := j.fs.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("resilience: journal %s: %w", j.path, err)
	}
	tmp, err := j.fs.CreateTemp(dir, ".journal-*")
	if err != nil {
		return fmt.Errorf("resilience: journal %s: %w", j.path, err)
	}
	defer j.fs.Remove(tmp.Name())
	if _, err := fmt.Fprint(tmp, header); err != nil {
		tmp.Close()
		return fmt.Errorf("resilience: journal %s: %w", j.path, err)
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return fmt.Errorf("resilience: journal %s: %w", j.path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("resilience: journal %s: %w", j.path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resilience: journal %s: %w", j.path, err)
	}
	// Rotate the current snapshot to the ".prev" slot so Load has a
	// good snapshot to fall back to if anything corrupts the new one —
	// but only if the current snapshot itself validates. Rotating
	// blindly would shove a corrupt current (torn by an earlier crash)
	// over the last *good* ".prev", destroying the only recoverable
	// copy; a corrupt current is instead left for the commit rename to
	// overwrite.
	if _, err := j.fs.Stat(j.path); err == nil {
		if _, derr := j.decodeFile(j.path); derr == nil {
			if err := j.fs.Rename(j.path, j.path+prevSuffix); err != nil {
				return fmt.Errorf("resilience: journal %s: rotate: %w", j.path, err)
			}
		}
	}
	if err := j.fs.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("resilience: journal %s: %w", j.path, err)
	}
	return nil
}

// Load reads the most recent good snapshot. A missing journal is not
// an error (Found is false); a corrupt current snapshot falls back to
// the ".prev" rotation with a warning recorded in LoadInfo. Load
// returns an error only for I/O failures other than not-exist — a
// journal corrupt beyond recovery reads as "no snapshot" so the run
// starts fresh rather than dying.
func (j *Journal[T]) Load() (T, LoadInfo, error) {
	var zero T
	var info LoadInfo
	for _, cand := range []struct {
		path     string
		fallback bool
	}{{j.path, false}, {j.path + prevSuffix, true}} {
		v, err := j.decodeFile(cand.path)
		if err == nil {
			info.Found = true
			info.Fallback = cand.fallback
			return v, info, nil
		}
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if _, corrupt := err.(*corruptError); corrupt {
			info.Warnings = append(info.Warnings,
				fmt.Sprintf("snapshot %s unusable (%v); dropped", cand.path, err))
			continue
		}
		return zero, info, fmt.Errorf("resilience: journal %s: %w", cand.path, err)
	}
	return zero, info, nil
}

// Remove deletes the snapshot and its rotation (a completed run's
// cleanup). Missing files are not errors.
func (j *Journal[T]) Remove() error {
	var first error
	for _, p := range []string{j.path, j.path + prevSuffix} {
		if err := j.fs.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) && first == nil {
			first = err
		}
	}
	return first
}

// corruptError marks snapshots rejected by header or checksum
// validation, as opposed to I/O failures.
type corruptError struct{ msg string }

func (e *corruptError) Error() string { return e.msg }

func corruptf(format string, args ...any) error {
	return &corruptError{msg: fmt.Sprintf(format, args...)}
}

// decodeFile reads and validates one snapshot file.
func (j *Journal[T]) decodeFile(path string) (T, error) {
	var zero T
	data, err := j.fs.ReadFile(path)
	if err != nil {
		return zero, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return zero, corruptf("no header line")
	}
	var (
		magic, kind string
		version     int
		crc         uint32
		plen        int
	)
	n, err := fmt.Sscanf(string(data[:nl]), "%s %s v%d crc32=%x len=%d",
		&magic, &kind, &version, &crc, &plen)
	if err != nil || n != 5 || magic != journalMagic {
		return zero, corruptf("bad header %q", string(data[:nl]))
	}
	if kind != j.kind || version != j.version {
		return zero, corruptf("snapshot is %s v%d, want %s v%d", kind, version, j.kind, j.version)
	}
	payload := data[nl+1:]
	if len(payload) != plen {
		return zero, corruptf("truncated payload: %d bytes, header says %d", len(payload), plen)
	}
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return zero, corruptf("checksum mismatch: crc32 %08x, header says %08x", got, crc)
	}
	var v T
	if err := json.Unmarshal(payload, &v); err != nil {
		return zero, corruptf("payload decode: %v", err)
	}
	return v, nil
}
