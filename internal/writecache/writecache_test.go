package writecache

import (
	"testing"

	"cachewrite/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{Entries: 5, LineSize: 8}).Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if err := (Config{Entries: 0, LineSize: 8}).Validate(); err != nil {
		t.Fatalf("zero entries must be legal (figure 7's origin): %v", err)
	}
	bad := []Config{
		{Entries: -1, LineSize: 8},
		{Entries: 4, LineSize: 0},
		{Entries: 4, LineSize: 12},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
}

func TestZeroEntriesPassThrough(t *testing.T) {
	c, _ := New(Config{Entries: 0, LineSize: 8})
	if ev := c.Write(0x100, 8); ev != 1 {
		t.Errorf("evicted = %d, want 1 (pass-through)", ev)
	}
	s := c.Stats()
	if s.Merged != 0 || s.Evicted != 1 {
		t.Errorf("merged=%d evicted=%d", s.Merged, s.Evicted)
	}
	if s.RemovedFraction() != 0 {
		t.Error("zero-entry cache removed traffic")
	}
}

func TestMergeSameLine(t *testing.T) {
	c, _ := New(Config{Entries: 4, LineSize: 8})
	c.Write(0x100, 4)
	c.Write(0x104, 4) // same 8B line
	s := c.Stats()
	if s.Merged != 1 || s.Writes != 2 {
		t.Errorf("merged=%d writes=%d, want 1/2", s.Merged, s.Writes)
	}
	if s.RemovedFraction() != 0.5 {
		t.Errorf("RemovedFraction = %v", s.RemovedFraction())
	}
	if c.Resident() != 1 {
		t.Errorf("resident = %d, want 1", c.Resident())
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := New(Config{Entries: 2, LineSize: 8})
	c.Write(0x100, 8)
	c.Write(0x200, 8)
	c.Write(0x100, 8) // touch 0x100: 0x200 becomes LRU
	if ev := c.Write(0x300, 8); ev != 1 {
		t.Fatalf("evicted = %d, want 1", ev)
	}
	// 0x200 must be gone; 0x100 must still merge.
	if merged := c.Write(0x200, 8); merged == 0 {
		// Write returns evictions, not merge status — check via stats.
	}
	s := c.Stats()
	// Writes so far: 5. Merges: the 0x100 touch (1). The final 0x200
	// write must NOT have merged (it was evicted), so merges stay 1...
	// plus the 0x100 write after eviction if issued. Re-check precisely:
	if s.Merged != 1 {
		t.Errorf("merged = %d, want 1 (LRU evicted the right entry)", s.Merged)
	}
}

func TestOnEvictAddresses(t *testing.T) {
	c, _ := New(Config{Entries: 1, LineSize: 8})
	var got []uint32
	c.SetOnEvict(func(a uint32) { got = append(got, a) })
	c.Write(0x100, 8)
	c.Write(0x200, 8) // evicts line 0x100
	c.Drain()         // evicts line 0x200
	if len(got) != 2 || got[0] != 0x100 || got[1] != 0x200 {
		t.Fatalf("evicted addresses %#x, want [0x100 0x200]", got)
	}
	if c.Resident() != 0 {
		t.Errorf("resident after drain = %d", c.Resident())
	}
}

func TestDrainCountsOnlyDirty(t *testing.T) {
	c, _ := New(Config{Entries: 4, LineSize: 8})
	c.Write(0x100, 8)
	c.AllocateVictim(0x200) // clean victim-cache entry
	n := c.Drain()
	if n != 1 {
		t.Errorf("drained %d dirty entries, want 1", n)
	}
}

func TestVictimCacheMode(t *testing.T) {
	c, _ := New(Config{Entries: 2, LineSize: 8})
	c.AllocateVictim(0x100)
	if !c.ProbeRead(0x100, 4) {
		t.Error("victim line not readable")
	}
	if c.ProbeRead(0x300, 4) {
		t.Error("phantom read hit")
	}
	s := c.Stats()
	if s.ReadProbes != 2 || s.ReadHits != 1 {
		t.Errorf("probes=%d hits=%d", s.ReadProbes, s.ReadHits)
	}
	// Re-allocating the same victim is idempotent.
	if ev := c.AllocateVictim(0x100); ev != 0 {
		t.Errorf("re-allocating victim evicted %d", ev)
	}
	// Clean victims evict silently (no write-buffer traffic).
	c.AllocateVictim(0x200)
	if ev := c.AllocateVictim(0x300); ev != 0 {
		t.Errorf("clean eviction reported %d dirty evictions", ev)
	}
}

func TestVictimModeZeroEntries(t *testing.T) {
	c, _ := New(Config{Entries: 0, LineSize: 8})
	if c.AllocateVictim(0x100) != 0 {
		t.Error("zero-entry victim allocation evicted")
	}
	if c.ProbeRead(0x100, 4) {
		t.Error("zero-entry cache hit a read")
	}
}

func TestSpanningWrite(t *testing.T) {
	// 8B write over 4B lines occupies two entries but counts one write.
	c, _ := New(Config{Entries: 4, LineSize: 4})
	c.Write(0x100, 8)
	if c.Resident() != 2 {
		t.Errorf("resident = %d, want 2", c.Resident())
	}
	s := c.Stats()
	if s.Writes != 1 {
		t.Errorf("writes = %d, want 1", s.Writes)
	}
	// A spanning write merges only when every spanned line is resident.
	c.Write(0x100, 8)
	if c.Stats().Merged != 1 {
		t.Errorf("merged = %d, want 1", c.Stats().Merged)
	}
}

func TestRunFiltersReads(t *testing.T) {
	c, _ := New(Config{Entries: 4, LineSize: 8})
	tr := &trace.Trace{Events: []trace.Event{
		{Addr: 0x100, Size: 4, Kind: trace.Read},
		{Addr: 0x100, Size: 4, Kind: trace.Write},
		{Addr: 0x104, Size: 4, Kind: trace.Write},
	}}
	c.Run(tr)
	s := c.Stats()
	if s.Writes != 2 || s.Merged != 1 {
		t.Errorf("writes=%d merged=%d, want 2/1", s.Writes, s.Merged)
	}
}

func TestReset(t *testing.T) {
	c, _ := New(Config{Entries: 4, LineSize: 8})
	c.Write(0x100, 8)
	c.Reset()
	if c.Resident() != 0 || c.Stats() != (Stats{}) {
		t.Error("Reset incomplete")
	}
}

func TestLineSizeAccessor(t *testing.T) {
	c, _ := New(Config{Entries: 4, LineSize: 8})
	if c.LineSize() != 8 {
		t.Errorf("LineSize = %d", c.LineSize())
	}
}

// TestMoreEntriesNeverWorse: write-cache removal is monotone in entry
// count (the paper's Fig 7 curves never decrease).
func TestMoreEntriesNeverWorse(t *testing.T) {
	var tr trace.Trace
	for i := 0; i < 3000; i++ {
		tr.Append(trace.Event{Addr: uint32((i*7)%97) * 8, Size: 8, Kind: trace.Write})
	}
	prev := -1.0
	for n := 0; n <= 16; n++ {
		c, _ := New(Config{Entries: n, LineSize: 8})
		c.Run(&tr)
		f := c.Stats().RemovedFraction()
		if f < prev-1e-9 {
			t.Fatalf("removal decreased at %d entries: %v -> %v", n, prev, f)
		}
		prev = f
	}
}

func TestRemovedFractionZeroWrites(t *testing.T) {
	var s Stats
	if s.RemovedFraction() != 0 {
		t.Error("zero writes should give zero fraction")
	}
}

func TestProbeVictim(t *testing.T) {
	c, _ := New(Config{Entries: 2, LineSize: 16})
	// Dirty (partial) entries never serve refills.
	c.Write(0x100, 4)
	if c.ProbeVictim(0x100, 16) {
		t.Error("dirty partial entry served a refill")
	}
	// Captured victims do.
	c.AllocateVictim(0x200)
	if !c.ProbeVictim(0x200, 16) {
		t.Error("captured victim not served")
	}
	// Capturing a victim for a dirty entry promotes it to full.
	c.AllocateVictim(0x100)
	if !c.ProbeVictim(0x100, 16) {
		t.Error("promoted entry not served")
	}
	// Misses and zero-entry caches.
	if c.ProbeVictim(0x900, 16) {
		t.Error("phantom victim hit")
	}
	z, _ := New(Config{Entries: 0, LineSize: 16})
	if z.ProbeVictim(0x100, 16) {
		t.Error("zero-entry cache hit")
	}
	s := c.Stats()
	if s.ReadProbes == 0 || s.ReadHits == 0 {
		t.Error("victim probes not counted")
	}
}

func TestProbeVictimSpanning(t *testing.T) {
	// A refill spanning two write-cache lines requires both full.
	c, _ := New(Config{Entries: 4, LineSize: 8})
	c.AllocateVictim(0x100)
	if c.ProbeVictim(0x100, 16) {
		t.Error("half-resident span served")
	}
	c.AllocateVictim(0x108)
	if !c.ProbeVictim(0x100, 16) {
		t.Error("fully-resident span not served")
	}
}
