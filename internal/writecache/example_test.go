package writecache_test

import (
	"fmt"

	"cachewrite/internal/writecache"
)

// Example demonstrates write coalescing in the paper's five-entry
// write cache: repeated writes to hot words merge instead of leaving
// the chip.
func Example() {
	wc, err := writecache.New(writecache.Config{Entries: 5, LineSize: 8})
	if err != nil {
		panic(err)
	}
	// A hot spot: the same two 8B lines written 10 times each.
	for i := 0; i < 10; i++ {
		wc.Write(0x100, 8)
		wc.Write(0x108, 8)
	}
	s := wc.Stats()
	fmt.Printf("writes: %d, merged: %d (%.0f%% removed)\n",
		s.Writes, s.Merged, 100*s.RemovedFraction())
	// Output:
	// writes: 20, merged: 18 (90% removed)
}
