// Package writecache implements the paper's proposed write cache
// (§3.2, Fig 6): a small fully-associative cache of 8-byte lines placed
// behind a write-through data cache and in front of the write buffer.
// Writes that hit an entry coalesce; a miss evicts the LRU entry to the
// write buffer and allocates the new line. Unlike the plain coalescing
// write buffer, entries stay resident until capacity forces them out,
// so the majority of write coalescing opportunities are captured
// without stalling the CPU.
//
// The cache can optionally also behave as a victim cache (the paper
// notes the two structures can be merged, citing Jouppi 1990): clean
// victim lines from the data cache may be allocated, and reads may
// probe for them.
package writecache

import (
	"fmt"

	"cachewrite/internal/trace"
)

// Config describes a write cache.
type Config struct {
	// Entries is the number of fully-associative lines. Zero is legal
	// and means every write misses (the paper's Figs 7-8 zero point).
	Entries int
	// LineSize is the line width in bytes; the paper uses 8B, "since no
	// writes larger than 8B exist in most architectures, and write paths
	// leaving chips are often 8B."
	LineSize int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Entries < 0 {
		return fmt.Errorf("writecache: entries %d must be non-negative", c.Entries)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("writecache: line size %d must be a positive power of two", c.LineSize)
	}
	return nil
}

// Stats reports write-cache effectiveness.
type Stats struct {
	Writes     uint64 // write events offered
	Merged     uint64 // writes absorbed by a resident entry
	Evicted    uint64 // dirty entries pushed to the write buffer
	ReadProbes uint64 // victim-mode read probes
	ReadHits   uint64 // victim-mode read probes that hit
}

// RemovedFraction is the fraction of write traffic removed — the
// paper's Figs 7-9 metric.
func (s Stats) RemovedFraction() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.Merged) / float64(s.Writes)
}

type entry struct {
	lineNum uint32
	// dirty marks data the next level has not seen (word writes).
	dirty bool
	// full marks entries holding a complete line image (captured
	// victims); only these can service a line refill.
	full bool
	lru  uint64
}

// Cache is the write cache simulator.
type Cache struct {
	cfg     Config
	entries []entry
	used    int
	tick    uint64
	stats   Stats
	onEvict func(lineAddr uint32)
}

// SetOnEvict registers a callback invoked with the byte address of each
// dirty line evicted to the next level (nil unregisters).
func (c *Cache) SetOnEvict(fn func(lineAddr uint32)) { c.onEvict = fn }

// LineSize returns the configured line width in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// New builds a write cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cache{cfg: cfg, entries: make([]entry, cfg.Entries)}, nil
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears entries and counters.
func (c *Cache) Reset() {
	for i := range c.entries {
		c.entries[i] = entry{}
	}
	c.used = 0
	c.tick = 0
	c.stats = Stats{}
}

// Write offers a store of size bytes at addr. It returns the number of
// entries evicted to the write buffer (0 when the write merged or the
// cache had a free slot; writes spanning multiple lines may evict more
// than once).
func (c *Cache) Write(addr uint32, size uint8) int {
	c.stats.Writes++
	if c.cfg.Entries == 0 {
		c.evictLine(addr / uint32(c.cfg.LineSize))
		return 1
	}
	evicted := 0
	first := addr / uint32(c.cfg.LineSize)
	last := (addr + uint32(size) - 1) / uint32(c.cfg.LineSize)
	merged := true
	for ln := first; ln <= last; ln++ {
		if !c.touchLine(ln, true) {
			merged = false
			evicted += c.allocLine(ln, true, false)
		}
	}
	if merged {
		c.stats.Merged++
	}
	return evicted
}

// AllocateVictim installs a clean victim line from the data cache
// (victim-cache mode). If the line is already resident (as a dirty
// word entry), the victim data completes it into a full line. It
// returns the number of dirty entries evicted.
func (c *Cache) AllocateVictim(addr uint32) int {
	if c.cfg.Entries == 0 {
		return 0
	}
	ln := addr / uint32(c.cfg.LineSize)
	for i := 0; i < c.used; i++ {
		if c.entries[i].lineNum == ln {
			c.tick++
			c.entries[i].lru = c.tick
			c.entries[i].full = true
			return 0
		}
	}
	return c.allocLine(ln, false, true)
}

// ProbeVictim checks whether a line refill of size bytes at addr can be
// served from captured victim entries. Only clean entries qualify: a
// dirty entry was allocated by a word write and holds a partial line,
// which cannot service a full-line refill. The LRU state is refreshed
// on a hit, as a real victim cache would.
func (c *Cache) ProbeVictim(addr uint32, size uint8) bool {
	c.stats.ReadProbes++
	if c.cfg.Entries == 0 {
		return false
	}
	first := addr / uint32(c.cfg.LineSize)
	last := (addr + uint32(size) - 1) / uint32(c.cfg.LineSize)
	for ln := first; ln <= last; ln++ {
		found := false
		for i := 0; i < c.used; i++ {
			if c.entries[i].lineNum == ln && c.entries[i].full {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for ln := first; ln <= last; ln++ {
		c.touchLine(ln, false)
	}
	c.stats.ReadHits++
	return true
}

// ProbeRead checks whether a read of size bytes at addr would be
// satisfied by resident entries (victim-cache mode). The LRU state is
// refreshed on a hit, as a real victim cache would.
func (c *Cache) ProbeRead(addr uint32, size uint8) bool {
	c.stats.ReadProbes++
	if c.cfg.Entries == 0 {
		return false
	}
	first := addr / uint32(c.cfg.LineSize)
	last := (addr + uint32(size) - 1) / uint32(c.cfg.LineSize)
	for ln := first; ln <= last; ln++ {
		if !c.probeLine(ln) {
			return false
		}
	}
	for ln := first; ln <= last; ln++ {
		c.touchLine(ln, false)
	}
	c.stats.ReadHits++
	return true
}

// Run offers every store in the trace to the cache.
func (c *Cache) Run(t *trace.Trace) {
	for _, e := range t.Events {
		if e.Kind == trace.Write {
			c.Write(e.Addr, e.Size)
		}
	}
}

// Drain evicts all resident dirty entries (end of simulation).
func (c *Cache) Drain() int {
	n := 0
	for i := 0; i < c.used; i++ {
		if c.entries[i].dirty {
			c.evictLine(c.entries[i].lineNum)
			n++
		}
	}
	c.used = 0
	return n
}

// evictLine accounts one dirty eviction and notifies the handler.
func (c *Cache) evictLine(lineNum uint32) {
	c.stats.Evicted++
	if c.onEvict != nil {
		c.onEvict(lineNum * uint32(c.cfg.LineSize))
	}
}

// Resident returns the number of occupied entries (for tests).
func (c *Cache) Resident() int { return c.used }

// ResidentEntry describes one occupied write-cache entry, for fault
// injection and debugging tools.
type ResidentEntry struct {
	// LineAddr is the entry's byte address.
	LineAddr uint32
	// Dirty marks data the next level has not seen yet.
	Dirty bool
	// Full marks a complete captured-victim line image.
	Full bool
}

// ResidentEntries lists the occupied entries in allocation order.
func (c *Cache) ResidentEntries() []ResidentEntry {
	out := make([]ResidentEntry, 0, c.used)
	for i := 0; i < c.used; i++ {
		e := c.entries[i]
		out = append(out, ResidentEntry{
			LineAddr: e.lineNum * uint32(c.cfg.LineSize),
			Dirty:    e.dirty,
			Full:     e.full,
		})
	}
	return out
}

func (c *Cache) probeLine(ln uint32) bool {
	for i := 0; i < c.used; i++ {
		if c.entries[i].lineNum == ln {
			return true
		}
	}
	return false
}

// touchLine refreshes LRU for a resident line, optionally marking it
// dirty; it reports whether the line was resident.
func (c *Cache) touchLine(ln uint32, markDirty bool) bool {
	for i := 0; i < c.used; i++ {
		if c.entries[i].lineNum == ln {
			c.tick++
			c.entries[i].lru = c.tick
			if markDirty {
				c.entries[i].dirty = true
			}
			return true
		}
	}
	return false
}

// allocLine installs a new line, evicting the LRU entry if the cache
// is at capacity. It returns the number of dirty evictions performed
// (0 or 1).
func (c *Cache) allocLine(ln uint32, dirty, full bool) int {
	c.tick++
	if c.used < c.cfg.Entries {
		c.entries[c.used] = entry{lineNum: ln, dirty: dirty, full: full, lru: c.tick}
		c.used++
		return 0
	}
	victim := 0
	for i := 1; i < c.used; i++ {
		if c.entries[i].lru < c.entries[victim].lru {
			victim = i
		}
	}
	wasDirty := c.entries[victim].dirty
	victimLine := c.entries[victim].lineNum
	c.entries[victim] = entry{lineNum: ln, dirty: dirty, full: full, lru: c.tick}
	if wasDirty {
		c.evictLine(victimLine)
		return 1
	}
	return 0
}
