package faults

import (
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/synth"
)

// TestInjectGoldenCounts pins the exact recovery accounting of every
// protection scheme at both paper-relevant line sizes. Injection is
// documented to be deterministic for a given seed; these goldens turn
// that promise into a regression tripwire — any change to the RNG
// stream, the strike-selection loop or the classification rules shows
// up as a count drift here.
func TestInjectGoldenCounts(t *testing.T) {
	tr, err := synth.HotCold(3, 30000, 16, 16, 1<<16, 80, 40)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		lineSize int
		scheme   Scheme
		want     Report
	}{
		{16, ByteParity, Report{Injected: 364, RecoveredByRefetch: 276, DataLoss: 88, RefetchTraffic: 4416}},
		{16, WordSECECC, Report{Injected: 364, CorrectedInPlace: 224, RecoveredByRefetch: 104, DataLoss: 36, RefetchTraffic: 1664}},
		{16, None, Report{Injected: 364, DataLoss: 364}},
		{32, ByteParity, Report{Injected: 263, RecoveredByRefetch: 212, DataLoss: 51, RefetchTraffic: 6784}},
		{32, WordSECECC, Report{Injected: 263, CorrectedInPlace: 174, RecoveredByRefetch: 66, DataLoss: 23, RefetchTraffic: 2112}},
		{32, None, Report{Injected: 263, DataLoss: 263}},
	}
	for _, tc := range cases {
		cfg := Config{
			Cache: cache.Config{Size: 4 << 10, LineSize: tc.lineSize, Assoc: 1,
				WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite},
			Scheme:     tc.scheme,
			ErrorEvery: 50,
			Seed:       7,
		}
		rep, err := Inject(cfg, tr)
		if err != nil {
			t.Fatalf("line %d %s: %v", tc.lineSize, tc.scheme, err)
		}
		if rep != tc.want {
			t.Errorf("line %d %s:\n got  %+v\n want %+v", tc.lineSize, tc.scheme, rep, tc.want)
		}
		if got := rep.CorrectedInPlace + rep.RecoveredByRefetch + rep.DataLoss; got != rep.Injected {
			t.Errorf("line %d %s: outcomes %d != injected %d", tc.lineSize, tc.scheme, got, rep.Injected)
		}
	}
}

// TestInjectSchemeOrdering checks the paper's §3 argument holds at
// both line sizes: ECC loses least, parity-only more, and an
// unprotected array loses everything it is struck with.
func TestInjectSchemeOrdering(t *testing.T) {
	tr, err := synth.HotCold(3, 30000, 16, 16, 1<<16, 80, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range []int{16, 32} {
		loss := map[Scheme]uint64{}
		for _, s := range []Scheme{ByteParity, WordSECECC, None} {
			cfg := Config{
				Cache: cache.Config{Size: 4 << 10, LineSize: ls, Assoc: 1,
					WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite},
				Scheme:     s,
				ErrorEvery: 50,
				Seed:       7,
			}
			rep, err := Inject(cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			loss[s] = rep.DataLoss
		}
		if !(loss[WordSECECC] < loss[ByteParity] && loss[ByteParity] < loss[None]) {
			t.Errorf("line %d: loss ordering violated: ecc %d, parity %d, none %d",
				ls, loss[WordSECECC], loss[ByteParity], loss[None])
		}
	}
}
