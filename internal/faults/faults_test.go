package faults

import (
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/synth"
	"cachewrite/internal/trace"
)

func wbCfg() cache.Config {
	return cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
}

func wtCfg() cache.Config {
	return cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteThrough, WriteMiss: cache.FetchOnWrite}
}

func TestSchemeStrings(t *testing.T) {
	if ByteParity.String() != "byte parity" || WordSECECC.String() != "word SEC ECC" {
		t.Error("scheme names wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme should render")
	}
	if ByteParity.OverheadBitsPerWord() != 4 || WordSECECC.OverheadBitsPerWord() != 6 {
		t.Error("overhead bits wrong (paper: 4 parity vs 6 ECC per 32b word)")
	}
	if Scheme(9).OverheadBitsPerWord() != 0 {
		t.Error("unknown scheme overhead should be 0")
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{Cache: wbCfg(), ErrorEvery: 100}).Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if (Config{Cache: cache.Config{}, ErrorEvery: 100}).Validate() == nil {
		t.Error("bad cache accepted")
	}
	if (Config{Cache: wbCfg(), ErrorEvery: 0}).Validate() == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Inject(Config{}, &trace.Trace{}); err == nil {
		t.Error("Inject accepted bad config")
	}
}

func TestWriteThroughParityNeverLosesData(t *testing.T) {
	// A write-through cache never holds dirty data, so byte parity plus
	// refetch recovers every error — the paper's core claim.
	tr, err := synth.HotCold(3, 30000, 16, 16, 1<<16, 80, 40)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Inject(Config{Cache: wtCfg(), Scheme: ByteParity, ErrorEvery: 50}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected == 0 {
		t.Fatal("no errors injected")
	}
	if rep.DataLoss != 0 {
		t.Errorf("write-through + parity lost data %d times", rep.DataLoss)
	}
	if rep.RecoveredByRefetch != rep.Injected {
		t.Errorf("recovered %d of %d", rep.RecoveredByRefetch, rep.Injected)
	}
	if rep.RefetchTraffic == 0 {
		t.Error("recovery traffic not accounted")
	}
}

func TestWriteBackParityLosesDirtyData(t *testing.T) {
	// A write-back cache with only parity loses data whenever an upset
	// strikes a dirty word — the paper's reason WB "requires" ECC.
	tr, err := synth.HotCold(3, 30000, 16, 16, 1<<16, 80, 40)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Inject(Config{Cache: wbCfg(), Scheme: ByteParity, ErrorEvery: 50}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataLoss == 0 {
		t.Error("write-back + parity never lost data on a write-heavy trace")
	}
	if rep.LossRate() <= 0 || rep.LossRate() > 1 {
		t.Errorf("loss rate = %v", rep.LossRate())
	}
}

func TestWriteBackECCCorrectsSingles(t *testing.T) {
	tr, err := synth.HotCold(3, 30000, 16, 16, 1<<16, 80, 40)
	if err != nil {
		t.Fatal(err)
	}
	parity, err := Inject(Config{Cache: wbCfg(), Scheme: ByteParity, ErrorEvery: 50}, tr)
	if err != nil {
		t.Fatal(err)
	}
	ecc, err := Inject(Config{Cache: wbCfg(), Scheme: WordSECECC, ErrorEvery: 50}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ecc.CorrectedInPlace == 0 {
		t.Error("ECC corrected nothing")
	}
	if ecc.DataLoss >= parity.DataLoss {
		t.Errorf("ECC (%d losses) not better than parity (%d) on a write-back cache",
			ecc.DataLoss, parity.DataLoss)
	}
}

func TestDeterminism(t *testing.T) {
	tr, _ := synth.HotCold(5, 10000, 16, 16, 1<<16, 80, 40)
	cfg := Config{Cache: wbCfg(), Scheme: WordSECECC, ErrorEvery: 64, Seed: 42}
	a, err := Inject(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Inject(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("injection not deterministic")
	}
}

func TestLossRateZeroSafe(t *testing.T) {
	var r Report
	if r.LossRate() != 0 {
		t.Error("zero report divides by zero")
	}
}
