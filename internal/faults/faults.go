// Package faults quantifies the paper's fourth dimension of write-hit
// comparison (§3): error tolerance. The paper's argument is
// qualitative — "a write-through cache can function with either hard
// or soft single-bit errors, if parity is provided ... a write-back
// cache can not tolerate a single-bit error of any type unless ECC is
// provided ... byte parity on a four-byte word would allow four
// single-bit errors to be corrected by refetching a write-through line
// in comparison to only one error for an ECC-protected write-back
// cache word."
//
// This package makes it quantitative: it injects single-bit upsets
// into the cache's data array at a configurable rate during a trace
// replay and classifies each error's outcome under a protection
// scheme:
//
//   - Write-through + byte parity: any number of errors in a clean
//     line is recovered by refetch (counted, with its traffic); only
//     errors that race a line's brief residency in the write buffer
//     could be lost, which the model treats as protected (buffer
//     entries are parity-checked before leaving).
//   - Write-back + word SEC ECC: one error per 32-bit word corrects;
//     two errors in the same word of a dirty line are an uncorrectable
//     data loss (clean lines still recover by refetch).
//   - Write-back + parity only: any error on a dirty line is a data
//     loss — the paper's reason write-back "requires" ECC.
//
// Injection is deterministic for a given seed.
package faults

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
)

// Scheme is a protection configuration.
type Scheme uint8

const (
	// ByteParity detects any odd number of bit errors per byte;
	// correction is by refetch, so it only saves clean data.
	ByteParity Scheme = iota
	// WordSECECC corrects one bit error per 32-bit word in place.
	WordSECECC
	// None is an unprotected array: upsets are never detected, so any
	// struck data is consumed or written onward silently corrupted —
	// the SDC baseline the campaign tables compare against.
	None
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case ByteParity:
		return "byte parity"
	case WordSECECC:
		return "word SEC ECC"
	case None:
		return "unprotected"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// OverheadBitsPerWord returns the storage overhead per 32-bit data
// word (§3: 4 parity bits vs 6 ECC bits; an unprotected array pays
// nothing).
func (s Scheme) OverheadBitsPerWord() int {
	switch s {
	case ByteParity:
		return 4
	case WordSECECC:
		return 6
	default:
		return 0
	}
}

// ParseScheme reads a scheme name as used by CLI flags: "parity",
// "ecc" or "none".
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "parity":
		return ByteParity, nil
	case "ecc":
		return WordSECECC, nil
	case "none":
		return None, nil
	default:
		return 0, fmt.Errorf("faults: unknown protection scheme %q (want parity, ecc or none)", s)
	}
}

// Config parameterizes an injection run.
type Config struct {
	// Cache is the cache configuration under test.
	Cache cache.Config
	// Scheme is the protection applied to the data array.
	Scheme Scheme
	// ErrorEvery injects one single-bit upset per this many accesses
	// (deterministically spread). Must be positive.
	ErrorEvery int
	// Seed randomizes which resident line and word each upset strikes.
	Seed uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Cache.Validate(); err != nil {
		return fmt.Errorf("faults: %w", err)
	}
	if c.ErrorEvery <= 0 {
		return fmt.Errorf("faults: ErrorEvery must be positive")
	}
	return nil
}

// Report classifies injected errors.
type Report struct {
	Injected uint64
	// CorrectedInPlace counts ECC single-bit corrections.
	CorrectedInPlace uint64
	// RecoveredByRefetch counts errors on clean data healed by
	// re-reading the next level (possible under both schemes).
	RecoveredByRefetch uint64
	// DataLoss counts unrecoverable errors: any dirty-data error under
	// parity, double-bit-in-word dirty errors under ECC.
	DataLoss uint64
	// RefetchTraffic is the extra fetch bytes spent healing.
	RefetchTraffic uint64
}

// LossRate returns data losses per injected error.
func (r Report) LossRate() float64 {
	if r.Injected == 0 {
		return 0
	}
	return float64(r.DataLoss) / float64(r.Injected)
}

// wordState tracks accumulated upsets per (line, word) so ECC
// double-bit failures can be detected.
type wordKey struct {
	lineAddr uint32
	word     uint8
}

// Inject replays the trace, injecting upsets into resident lines and
// classifying outcomes. The functional cache simulation is unaffected
// (errors are modelled on the side): the paper's question is about
// recoverability, not about corrupting the reference stream.
func Inject(cfg Config, t *trace.Trace) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	c, err := cache.New(cfg.Cache)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	rng := cfg.Seed
	if rng == 0 {
		rng = 0x9e3779b97f4a7c15
	}
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x2545f4914f6cdd1d
	}
	upsets := make(map[wordKey]int)
	wordsPerLine := cfg.Cache.LineSize / 4

	for i, e := range t.Events {
		c.Access(e)
		if (i+1)%cfg.ErrorEvery != 0 {
			continue
		}
		// Strike a pseudo-random resident line: probe random addresses
		// near this access until one is resident (bounded tries).
		var struck uint32
		found := false
		for try := 0; try < 8; try++ {
			cand := (e.Addr &^ uint32(cfg.Cache.LineSize-1)) +
				uint32(next()%64)*uint32(cfg.Cache.LineSize)
			if c.Probe(cand).Present {
				struck = cand &^ uint32(cfg.Cache.LineSize-1)
				found = true
				break
			}
		}
		if !found {
			continue // no resident victim found; no upset this period
		}
		rep.Injected++
		word := uint8(next() % uint64(wordsPerLine))
		key := wordKey{struck, word}
		upsets[key]++

		st := c.Probe(struck)
		// The struck word's 4 bytes within the line's per-byte dirty mask.
		wordDirty := st.Dirty&(uint64(0xf)<<(uint32(word)*4)) != 0

		switch cfg.Scheme {
		case None:
			// Undetected: the corruption is consumed or written back
			// silently. It is still a loss of correct data.
			rep.DataLoss++
		case ByteParity:
			if wordDirty {
				// Parity detects but cannot correct; the only copy of the
				// dirty data is gone.
				rep.DataLoss++
			} else {
				rep.RecoveredByRefetch++
				rep.RefetchTraffic += uint64(cfg.Cache.LineSize)
			}
		case WordSECECC:
			if upsets[key] == 1 {
				rep.CorrectedInPlace++
			} else if wordDirty {
				// Second upset in the same word before any scrub: SEC
				// cannot correct a double; dirty data lost.
				rep.DataLoss++
			} else {
				rep.RecoveredByRefetch++
				rep.RefetchTraffic += uint64(cfg.Cache.LineSize)
			}
		}
		// A refetch or correction scrubs the word.
		if cfg.Scheme == ByteParity || upsets[key] > 1 {
			delete(upsets, key)
		}
	}
	return rep, nil
}
