package faults

import (
	"fmt"
	"strings"

	"cachewrite/internal/cache"
	"cachewrite/internal/hierarchy"
	"cachewrite/internal/trace"
	"cachewrite/internal/writebuffer"
)

// Hierarchy-wide fault injection. The paper's §3 error-tolerance
// argument is stated for the first-level cache, but every buffering
// structure between the CPU and memory holds data whose only copy may
// be in flight: the coalescing write buffer, the write cache and the
// L2 all have the same clean-vs-dirty recoverability split. This file
// extends the single-cache model of Inject to the whole hierarchy and
// classifies every upset into the standard reliability taxonomy:
//
//   - corrected: the error was repaired — in place (ECC), by
//     refetching clean data from the next level, or by replaying a
//     pending store from the still-resident write-through L1 line.
//   - DUE (detected unrecoverable error): protection detected the
//     upset but no good copy exists; the run must stop or the data is
//     known-lost. Dirty data under parity-only protection lands here.
//   - SDC (silent data corruption): no protection, so the corrupted
//     value is consumed or written onward without anyone noticing —
//     the worst outcome.
//
// Recovery mechanisms modelled: refetch of clean lines, word-SEC ECC
// correction, periodic scrubbing of accumulated single-bit upsets
// (bounding ECC double-bit windows), replay of buffered stores from
// the L1, and bounded retry of transiently-faulting back-side
// transactions.

// Layer identifies one buffering level of the simulated hierarchy.
type Layer uint8

const (
	// LayerL1 is the first-level data cache.
	LayerL1 Layer = iota
	// LayerWriteBuffer is the coalescing write buffer (paper §3.2,
	// Fig 5) behind a write-through L1.
	LayerWriteBuffer
	// LayerWriteCache is the paper's proposed write cache (§3.2, Fig 6).
	LayerWriteCache
	// LayerL2 is the second-level cache.
	LayerL2
	// NumLayers bounds per-layer arrays.
	NumLayers = 4
)

// String returns the CLI name of the layer: l1, wb, wcache or l2.
func (l Layer) String() string {
	switch l {
	case LayerL1:
		return "l1"
	case LayerWriteBuffer:
		return "wb"
	case LayerWriteCache:
		return "wcache"
	case LayerL2:
		return "l2"
	default:
		return fmt.Sprintf("Layer(%d)", uint8(l))
	}
}

// AllLayers lists every layer in hierarchy order.
func AllLayers() []Layer {
	return []Layer{LayerL1, LayerWriteBuffer, LayerWriteCache, LayerL2}
}

// ParseLayers reads a comma-separated layer list ("l1,wb,wcache,l2"),
// deduplicating and preserving hierarchy order.
func ParseLayers(s string) ([]Layer, error) {
	var have [NumLayers]bool
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "l1":
			have[LayerL1] = true
		case "wb":
			have[LayerWriteBuffer] = true
		case "wcache":
			have[LayerWriteCache] = true
		case "l2":
			have[LayerL2] = true
		case "":
		default:
			return nil, fmt.Errorf("faults: unknown layer %q (want l1, wb, wcache, l2)", strings.TrimSpace(f))
		}
	}
	var out []Layer
	for _, l := range AllLayers() {
		if have[l] {
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("faults: no layers in %q", s)
	}
	return out, nil
}

// LayerReport classifies every upset injected into one layer. The
// invariant Injected == Corrected + DUE + SDC always holds; the
// Recovered*/CorrectedInPlace counters break Corrected down by
// mechanism.
type LayerReport struct {
	// Injected counts upsets that actually struck resident data.
	Injected uint64 `json:"injected"`
	// Corrected counts upsets repaired by any mechanism.
	Corrected uint64 `json:"corrected"`
	// DUE counts detected-unrecoverable errors (data known lost).
	DUE uint64 `json:"due"`
	// SDC counts silent data corruptions (unprotected data struck).
	SDC uint64 `json:"sdc"`
	// CorrectedInPlace counts ECC single-bit corrections.
	CorrectedInPlace uint64 `json:"correctedInPlace"`
	// RecoveredByRefetch counts clean data healed by re-reading the
	// next level.
	RecoveredByRefetch uint64 `json:"recoveredByRefetch"`
	// RecoveredByReplay counts buffered stores healed by replaying the
	// still-resident write-through L1 line.
	RecoveredByReplay uint64 `json:"recoveredByReplay"`
	// Scrubbed counts words whose accumulated upsets a periodic scrub
	// cleared before they could pair into a double-bit error.
	Scrubbed uint64 `json:"scrubbed"`
	// RefetchTraffic is the extra fetch bytes spent healing.
	RefetchTraffic uint64 `json:"refetchTraffic"`
}

// add accumulates o into r (campaign aggregation).
func (r *LayerReport) add(o LayerReport) {
	r.Injected += o.Injected
	r.Corrected += o.Corrected
	r.DUE += o.DUE
	r.SDC += o.SDC
	r.CorrectedInPlace += o.CorrectedInPlace
	r.RecoveredByRefetch += o.RecoveredByRefetch
	r.RecoveredByReplay += o.RecoveredByReplay
	r.Scrubbed += o.Scrubbed
	r.RefetchTraffic += o.RefetchTraffic
}

// XactReport accounts transient back-side transaction faults and
// their bounded-retry recovery.
type XactReport struct {
	// Transactions counts back-side transactions observed (L1->L2 and
	// L2->memory).
	Transactions uint64 `json:"transactions"`
	// Faults counts injected transient transaction faults.
	Faults uint64 `json:"faults"`
	// Retries counts retry attempts issued.
	Retries uint64 `json:"retries"`
	// Corrected counts faults that a retry recovered.
	Corrected uint64 `json:"corrected"`
	// DUE counts faults that exhausted the retry budget.
	DUE uint64 `json:"due"`
}

func (x *XactReport) add(o XactReport) {
	x.Transactions += o.Transactions
	x.Faults += o.Faults
	x.Retries += o.Retries
	x.Corrected += o.Corrected
	x.DUE += o.DUE
}

// HierarchyReport aggregates one injection run over every layer.
type HierarchyReport struct {
	// Accesses is the number of trace events replayed.
	Accesses uint64 `json:"accesses"`
	// Layers holds per-layer outcomes, indexed by Layer.
	Layers [NumLayers]LayerReport `json:"layers"`
	// Xact accounts transient back-side transaction faults.
	Xact XactReport `json:"xact"`
}

// Layer returns the report for one layer.
func (r HierarchyReport) Layer(l Layer) LayerReport { return r.Layers[l] }

// Add accumulates o into r (campaign aggregation across trials).
func (r *HierarchyReport) Add(o HierarchyReport) {
	r.Accesses += o.Accesses
	for i := range r.Layers {
		r.Layers[i].add(o.Layers[i])
	}
	r.Xact.add(o.Xact)
}

// Total sums the per-layer reports.
func (r HierarchyReport) Total() LayerReport {
	var t LayerReport
	for i := range r.Layers {
		t.add(r.Layers[i])
	}
	return t
}

// HierarchyConfig parameterizes a hierarchy-wide injection run.
type HierarchyConfig struct {
	// Hierarchy is the memory system under test: L1, optional write
	// cache, optional L2.
	Hierarchy hierarchy.Config
	// Buffer, if non-nil, adds a coalescing write buffer fed by the
	// CPU's store stream (only meaningful behind a write-through L1,
	// as in the paper's Fig 5).
	Buffer *writebuffer.Config
	// Layers selects which layers upsets strike. Layers absent from
	// the configured topology (no write cache, no L2, no buffer) are
	// skipped and report zeroes.
	Layers []Layer
	// Schemes assigns a protection scheme to each layer, indexed by
	// Layer.
	Schemes [NumLayers]Scheme
	// ErrorEvery injects one upset per layer per this many accesses.
	// Must be positive.
	ErrorEvery int
	// Seed randomizes strike targets; deterministic for a given value.
	Seed uint64
	// ScrubInterval, when positive, scrubs accumulated single-bit
	// upsets in ECC-protected arrays every this many accesses,
	// bounding the window in which a second upset can pair into an
	// uncorrectable double.
	ScrubInterval int
	// XactFaultEvery, when positive, injects one transient back-side
	// transaction fault per this many transactions.
	XactFaultEvery int
	// RetryLimit bounds retries of a faulted transaction (default 3
	// when transaction faults are enabled).
	RetryLimit int
	// RetrySuccessPct is the per-retry success probability in percent
	// (default 90).
	RetrySuccessPct int
}

// Validate reports whether the configuration is usable.
func (c HierarchyConfig) Validate() error {
	if err := c.Hierarchy.Validate(); err != nil {
		return fmt.Errorf("faults: %w", err)
	}
	if c.Buffer != nil {
		if err := c.Buffer.Validate(); err != nil {
			return fmt.Errorf("faults: %w", err)
		}
	}
	if c.ErrorEvery <= 0 {
		return fmt.Errorf("faults: ErrorEvery must be positive")
	}
	if len(c.Layers) == 0 {
		return fmt.Errorf("faults: no layers selected")
	}
	for _, l := range c.Layers {
		if l >= NumLayers {
			return fmt.Errorf("faults: bad layer %d", l)
		}
	}
	if c.ScrubInterval < 0 {
		return fmt.Errorf("faults: ScrubInterval must be non-negative")
	}
	if c.XactFaultEvery < 0 {
		return fmt.Errorf("faults: XactFaultEvery must be non-negative")
	}
	if c.RetryLimit < 0 {
		return fmt.Errorf("faults: RetryLimit must be non-negative")
	}
	if c.RetrySuccessPct < 0 || c.RetrySuccessPct > 100 {
		return fmt.Errorf("faults: RetrySuccessPct must be in [0,100]")
	}
	return nil
}

// injector carries one run's mutable state.
type injector struct {
	cfg HierarchyConfig
	h   *hierarchy.Hierarchy
	buf *writebuffer.Buffer
	rng uint64
	rep HierarchyReport
	// accumulated single-bit upsets per (line, word) for ECC-protected
	// cache arrays.
	l1Upsets map[wordKey]int
	l2Upsets map[wordKey]int
	// lastXacts tracks the back-side transaction count already examined
	// for transient faults.
	lastXacts uint64
}

func (in *injector) next() uint64 {
	in.rng ^= in.rng >> 12
	in.rng ^= in.rng << 25
	in.rng ^= in.rng >> 27
	return in.rng * 0x2545f4914f6cdd1d
}

// InjectHierarchy replays the trace through the configured hierarchy,
// striking every selected layer once per ErrorEvery accesses and
// classifying each upset as corrected, DUE or SDC under that layer's
// protection scheme. Like Inject, the functional simulation is
// unaffected — errors are modelled on the side, because the question
// is recoverability, not the corrupted values themselves. Injection is
// deterministic for a given configuration and trace.
func InjectHierarchy(cfg HierarchyConfig, t *trace.Trace) (HierarchyReport, error) {
	if err := cfg.Validate(); err != nil {
		return HierarchyReport{}, err
	}
	h, err := hierarchy.New(cfg.Hierarchy)
	if err != nil {
		return HierarchyReport{}, fmt.Errorf("faults: %w", err)
	}
	in := &injector{cfg: cfg, h: h, rng: cfg.Seed}
	if in.rng == 0 {
		in.rng = 0x9e3779b97f4a7c15
	}
	if cfg.Buffer != nil && cfg.Hierarchy.L1.WriteHit == cache.WriteThrough {
		if in.buf, err = writebuffer.New(*cfg.Buffer); err != nil {
			return HierarchyReport{}, fmt.Errorf("faults: %w", err)
		}
	}
	in.l1Upsets = make(map[wordKey]int)
	in.l2Upsets = make(map[wordKey]int)

	layerOn := [NumLayers]bool{}
	for _, l := range cfg.Layers {
		layerOn[l] = true
	}

	for i, e := range t.Events {
		h.Access(e)
		if in.buf != nil {
			in.buf.Step(e)
		}
		in.rep.Accesses++
		in.checkXactFaults()
		if cfg.ScrubInterval > 0 && (i+1)%cfg.ScrubInterval == 0 {
			in.scrub()
		}
		if (i+1)%cfg.ErrorEvery != 0 {
			continue
		}
		if layerOn[LayerL1] {
			in.strikeCacheLayer(LayerL1, e.Addr)
		}
		if layerOn[LayerWriteBuffer] && in.buf != nil {
			in.strikeWriteBuffer()
		}
		if layerOn[LayerWriteCache] && h.WriteCache() != nil {
			in.strikeWriteCache()
		}
		if layerOn[LayerL2] && h.L2() != nil {
			in.strikeCacheLayer(LayerL2, e.Addr)
		}
	}
	return in.rep, nil
}

// strikeCacheLayer injects one upset into a pseudo-random resident
// line of the L1 or L2 data array near addr and classifies the
// outcome under the layer's scheme.
func (in *injector) strikeCacheLayer(layer Layer, addr uint32) {
	c := in.h.L1()
	upsets := in.l1Upsets
	if layer == LayerL2 {
		c = in.h.L2()
		upsets = in.l2Upsets
	}
	lineSize := uint32(c.Config().LineSize)
	rep := &in.rep.Layers[layer]

	// Probe random addresses near this access until one is resident
	// (bounded tries), as Inject does.
	var struck uint32
	found := false
	for try := 0; try < 8; try++ {
		cand := (addr &^ (lineSize - 1)) + uint32(in.next()%64)*lineSize
		if c.Probe(cand).Present {
			struck = cand &^ (lineSize - 1)
			found = true
			break
		}
	}
	if !found {
		return // no resident victim; no upset this period
	}
	rep.Injected++
	wordsPerLine := lineSize / 4
	word := uint8(in.next() % uint64(wordsPerLine))
	st := c.Probe(struck)
	wordDirty := st.Dirty&(uint64(0xf)<<(uint32(word)*4)) != 0

	switch in.cfg.Schemes[layer] {
	case None:
		rep.SDC++
	case ByteParity:
		if wordDirty {
			// Detected, but the only copy of the dirty data is gone.
			rep.DUE++
		} else {
			rep.Corrected++
			rep.RecoveredByRefetch++
			rep.RefetchTraffic += uint64(lineSize)
		}
	case WordSECECC:
		key := wordKey{struck, word}
		upsets[key]++
		if upsets[key] == 1 {
			rep.Corrected++
			rep.CorrectedInPlace++
		} else {
			// Second upset in the same word before any scrub: SEC cannot
			// correct a double, but SEC-DED detects it.
			if wordDirty {
				rep.DUE++
			} else {
				rep.Corrected++
				rep.RecoveredByRefetch++
				rep.RefetchTraffic += uint64(lineSize)
			}
			delete(upsets, key) // correction or refetch scrubs the word
		}
	}
}

// strikeWriteBuffer injects one upset into a pseudo-random pending
// write-buffer entry. Buffer entries hold stores the next level has
// not seen; the recovery path for detected errors is replaying the
// line from the write-through L1, which still holds the stored data
// while the line stays resident.
func (in *injector) strikeWriteBuffer() {
	lines := in.buf.PendingLineAddrs()
	if len(lines) == 0 {
		return
	}
	lineAddr := lines[in.next()%uint64(len(lines))]
	in.rep.Layers[LayerWriteBuffer].Injected++
	in.classifyBufferedStore(LayerWriteBuffer, lineAddr)
}

// strikeWriteCache injects one upset into a pseudo-random resident
// write-cache entry. Dirty entries are buffered stores (replayable
// from the L1); clean full entries are captured victims (refetchable
// from the next level).
func (in *injector) strikeWriteCache() {
	entries := in.h.WriteCache().ResidentEntries()
	if len(entries) == 0 {
		return
	}
	entry := entries[in.next()%uint64(len(entries))]
	rep := &in.rep.Layers[LayerWriteCache]
	rep.Injected++
	if entry.Dirty {
		in.classifyBufferedStore(LayerWriteCache, entry.LineAddr)
		return
	}
	// Clean captured victim: the next level holds a good copy.
	switch in.cfg.Schemes[LayerWriteCache] {
	case None:
		rep.SDC++
	case ByteParity:
		rep.Corrected++
		rep.RecoveredByRefetch++
		rep.RefetchTraffic += uint64(in.h.WriteCache().LineSize())
	case WordSECECC:
		rep.Corrected++
		rep.CorrectedInPlace++
	}
}

// classifyBufferedStore classifies an upset on a buffered (dirty)
// store entry of the write buffer or write cache under that layer's
// scheme: ECC corrects in place; parity detects and replays from the
// L1 when the written line is still resident there; nothing else can
// recover the only in-flight copy.
func (in *injector) classifyBufferedStore(layer Layer, lineAddr uint32) {
	rep := &in.rep.Layers[layer]
	switch in.cfg.Schemes[layer] {
	case None:
		rep.SDC++
	case ByteParity:
		if st := in.h.L1().Probe(lineAddr); st.Present {
			rep.Corrected++
			rep.RecoveredByReplay++
		} else {
			rep.DUE++
		}
	case WordSECECC:
		rep.Corrected++
		rep.CorrectedInPlace++
	}
}

// scrub clears accumulated single-bit upsets in the ECC-protected
// cache arrays, counting the words each layer's scrubber repaired.
func (in *injector) scrub() {
	if in.cfg.Schemes[LayerL1] == WordSECECC {
		in.rep.Layers[LayerL1].Scrubbed += uint64(len(in.l1Upsets))
		clear(in.l1Upsets)
	}
	if in.cfg.Schemes[LayerL2] == WordSECECC {
		in.rep.Layers[LayerL2].Scrubbed += uint64(len(in.l2Upsets))
		clear(in.l2Upsets)
	}
}

// checkXactFaults observes new back-side transactions and injects
// transient faults with bounded retry.
func (in *injector) checkXactFaults() {
	if in.cfg.XactFaultEvery <= 0 {
		return
	}
	st := in.h.Stats()
	now := st.L1ToL2Transactions + st.L2ToMemTransactions
	for in.lastXacts < now {
		in.lastXacts++
		in.rep.Xact.Transactions++
		if in.rep.Xact.Transactions%uint64(in.cfg.XactFaultEvery) != 0 {
			continue
		}
		in.rep.Xact.Faults++
		limit := in.cfg.RetryLimit
		if limit == 0 {
			limit = 3
		}
		pct := in.cfg.RetrySuccessPct
		if pct == 0 {
			pct = 90
		}
		recovered := false
		for r := 0; r < limit; r++ {
			in.rep.Xact.Retries++
			if in.next()%100 < uint64(pct) {
				recovered = true
				break
			}
		}
		if recovered {
			in.rep.Xact.Corrected++
		} else {
			in.rep.Xact.DUE++
		}
	}
}
