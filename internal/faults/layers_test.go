package faults

import (
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/hierarchy"
	"cachewrite/internal/synth"
	"cachewrite/internal/trace"
	"cachewrite/internal/writebuffer"
	"cachewrite/internal/writecache"
)

func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := synth.HotCold(3, 30000, 16, 16, 1<<16, 80, 40)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// wtConfig is the paper's Fig 6 write-through pipeline with every
// layer present: L1 + write cache + write buffer + write-through L2.
func wtConfig(scheme Scheme) HierarchyConfig {
	cfg := HierarchyConfig{
		Hierarchy: hierarchy.Config{
			L1: cache.Config{Size: 4 << 10, LineSize: 16, Assoc: 1,
				WriteHit: cache.WriteThrough, WriteMiss: cache.FetchOnWrite},
			WriteCache: &writecache.Config{Entries: 5, LineSize: 8},
			L2: &cache.Config{Size: 32 << 10, LineSize: 32, Assoc: 2,
				WriteHit: cache.WriteThrough, WriteMiss: cache.FetchOnWrite},
		},
		Buffer:     &writebuffer.Config{Entries: 8, LineSize: 16, RetireInterval: 8},
		Layers:     AllLayers(),
		ErrorEvery: 50,
		Seed:       7,
	}
	for l := range cfg.Schemes {
		cfg.Schemes[l] = scheme
	}
	return cfg
}

func wbConfig(scheme Scheme) HierarchyConfig {
	cfg := HierarchyConfig{
		Hierarchy: hierarchy.Config{
			L1: cache.Config{Size: 4 << 10, LineSize: 16, Assoc: 1,
				WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite},
			L2: &cache.Config{Size: 32 << 10, LineSize: 32, Assoc: 2,
				WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite},
		},
		Layers:     AllLayers(),
		ErrorEvery: 50,
		Seed:       7,
	}
	for l := range cfg.Schemes {
		cfg.Schemes[l] = scheme
	}
	return cfg
}

// TestInjectHierarchyInvariants checks the taxonomy is total: every
// injected upset is classified exactly once, in every layer, under
// every scheme and both topologies.
func TestInjectHierarchyInvariants(t *testing.T) {
	tr := testTrace(t)
	for _, scheme := range []Scheme{ByteParity, WordSECECC, None} {
		for name, cfg := range map[string]HierarchyConfig{"wt": wtConfig(scheme), "wb": wbConfig(scheme)} {
			rep, err := InjectHierarchy(cfg, tr)
			if err != nil {
				t.Fatalf("%s %s: %v", name, scheme, err)
			}
			if rep.Accesses != uint64(len(tr.Events)) {
				t.Errorf("%s %s: accesses %d != %d events", name, scheme, rep.Accesses, len(tr.Events))
			}
			struck := uint64(0)
			for _, l := range AllLayers() {
				lr := rep.Layer(l)
				struck += lr.Injected
				if lr.Corrected+lr.DUE+lr.SDC != lr.Injected {
					t.Errorf("%s %s %s: corrected %d + due %d + sdc %d != injected %d",
						name, scheme, l, lr.Corrected, lr.DUE, lr.SDC, lr.Injected)
				}
				if lr.CorrectedInPlace+lr.RecoveredByRefetch+lr.RecoveredByReplay != lr.Corrected {
					t.Errorf("%s %s %s: recovery mechanisms do not sum to corrected", name, scheme, l)
				}
			}
			if struck == 0 {
				t.Errorf("%s %s: no upsets landed anywhere", name, scheme)
			}
		}
	}
}

// TestInjectHierarchyWTParityClean checks the paper's central §3
// claim: with parity, a write-through pipeline never loses clean data
// — every upset in the L1 and (write-through) L2 data arrays recovers
// by refetch, because a good copy always exists below.
func TestInjectHierarchyWTParityClean(t *testing.T) {
	rep, err := InjectHierarchy(wtConfig(ByteParity), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []Layer{LayerL1, LayerL2} {
		lr := rep.Layer(l)
		if lr.Injected == 0 {
			t.Fatalf("%s: no upsets injected", l)
		}
		if lr.DUE != 0 || lr.SDC != 0 {
			t.Errorf("%s: clean write-through array lost data under parity: %+v", l, lr)
		}
		if lr.RecoveredByRefetch != lr.Injected {
			t.Errorf("%s: want all %d upsets refetched, got %d", l, lr.Injected, lr.RecoveredByRefetch)
		}
	}
	// Buffered stores (write buffer, write cache) are the only
	// at-risk data, and most recover by replaying the resident L1 line.
	for _, l := range []Layer{LayerWriteBuffer, LayerWriteCache} {
		lr := rep.Layer(l)
		if lr.Injected == 0 {
			t.Fatalf("%s: no upsets injected", l)
		}
		if lr.RecoveredByReplay == 0 {
			t.Errorf("%s: no replay recoveries recorded", l)
		}
	}
}

// TestInjectHierarchyWBParityDirtyLoss checks the §3 converse: under
// parity alone, a write-back cache turns every dirty-line upset into a
// detected-unrecoverable error.
func TestInjectHierarchyWBParityDirtyLoss(t *testing.T) {
	rep, err := InjectHierarchy(wbConfig(ByteParity), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []Layer{LayerL1, LayerL2} {
		lr := rep.Layer(l)
		if lr.DUE == 0 {
			t.Errorf("%s: write-back + parity-only reported no dirty-line losses: %+v", l, lr)
		}
	}
	ecc, err := InjectHierarchy(wbConfig(WordSECECC), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if ecc.Total().DUE >= rep.Total().DUE {
		t.Errorf("ECC DUE %d should be below parity-only DUE %d", ecc.Total().DUE, rep.Total().DUE)
	}
	none, err := InjectHierarchy(wbConfig(None), testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	tot := none.Total()
	if tot.SDC != tot.Injected || tot.Corrected != 0 || tot.DUE != 0 {
		t.Errorf("unprotected arrays should be all-SDC: %+v", tot)
	}
}

// TestInjectHierarchyScrub checks that scrubbing clears accumulated
// single-bit ECC upsets and thereby reduces double-bit DUEs.
func TestInjectHierarchyScrub(t *testing.T) {
	tr := testTrace(t)
	base := wbConfig(WordSECECC)
	noScrub, err := InjectHierarchy(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	base.ScrubInterval = 500
	scrubbed, err := InjectHierarchy(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	if scrubbed.Total().Scrubbed == 0 {
		t.Fatal("scrubbing interval set but nothing scrubbed")
	}
	if scrubbed.Total().DUE >= noScrub.Total().DUE {
		t.Errorf("scrubbing should reduce double-bit DUEs: %d (scrubbed) vs %d (unscrubbed)",
			scrubbed.Total().DUE, noScrub.Total().DUE)
	}
}

// TestInjectHierarchyXactRetry checks transient back-side transaction
// faults are injected, retried, and fully accounted.
func TestInjectHierarchyXactRetry(t *testing.T) {
	cfg := wbConfig(WordSECECC)
	cfg.XactFaultEvery = 100
	cfg.RetryLimit = 2
	cfg.RetrySuccessPct = 50
	rep, err := InjectHierarchy(cfg, testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	x := rep.Xact
	if x.Transactions == 0 || x.Faults == 0 {
		t.Fatalf("no transaction faults injected: %+v", x)
	}
	if x.Corrected+x.DUE != x.Faults {
		t.Errorf("xact outcomes %d+%d != faults %d", x.Corrected, x.DUE, x.Faults)
	}
	if x.Retries < x.Faults {
		t.Errorf("every fault should retry at least once: %d retries, %d faults", x.Retries, x.Faults)
	}
	if x.DUE == 0 {
		t.Errorf("retry limit 2 at 50%% should exhaust sometimes: %+v", x)
	}
}

// TestInjectHierarchyDeterminism checks the whole engine is a pure
// function of (config, trace).
func TestInjectHierarchyDeterminism(t *testing.T) {
	tr := testTrace(t)
	cfg := wtConfig(WordSECECC)
	cfg.ScrubInterval = 1000
	cfg.XactFaultEvery = 150
	a, err := InjectHierarchy(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := InjectHierarchy(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same config + trace produced different reports:\n%+v\n%+v", a, b)
	}
}

// TestInjectHierarchySkipsAbsentLayers checks layers missing from the
// topology report zeroes rather than failing.
func TestInjectHierarchySkipsAbsentLayers(t *testing.T) {
	cfg := wbConfig(ByteParity) // no write cache, no write buffer
	rep, err := InjectHierarchy(cfg, testTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []Layer{LayerWriteBuffer, LayerWriteCache} {
		if lr := rep.Layer(l); lr != (LayerReport{}) {
			t.Errorf("%s absent from topology but reported %+v", l, lr)
		}
	}
}

func TestParseLayers(t *testing.T) {
	ls, err := ParseLayers("l2, wb,l1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Layer{LayerL1, LayerWriteBuffer, LayerL2}
	if len(ls) != len(want) {
		t.Fatalf("got %v, want %v", ls, want)
	}
	for i := range want {
		if ls[i] != want[i] {
			t.Fatalf("got %v, want %v (hierarchy order)", ls, want)
		}
	}
	if _, err := ParseLayers("l1,tlb"); err == nil {
		t.Error("unknown layer accepted")
	}
	if _, err := ParseLayers(""); err == nil {
		t.Error("empty layer list accepted")
	}
}
