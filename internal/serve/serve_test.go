package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cachewrite/internal/sweep"
	"cachewrite/internal/workload"
)

// testEvents keeps sweeps quick enough for the -race suite while still
// spanning several scheduler units.
const testEvents = 20_000

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		StateDir:        t.TempDir(),
		Queue:           16,
		PerTenant:       8,
		JobWorkers:      2,
		SweepWorkers:    2,
		MaxEvents:       testEvents,
		DefaultDeadline: time.Minute,
		MaxDeadline:     time.Minute,
		DrainGrace:      200 * time.Millisecond,
		StallWarn:       time.Minute,
		TraceMem:        4,
		Now:             time.Now,
		Logf:            func(string, ...any) {}, // tests assert, they don't read logs
	}
}

func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := testConfig(t)
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// testSpec is a small but multi-config job: 2 sizes x 2 write-miss
// policies = 4 configurations.
func testSpec(tenant, reqID string) JobSpec {
	return JobSpec{
		Tenant:      tenant,
		RequestID:   reqID,
		Workloads:   []string{"liver"},
		Events:      testEvents,
		Sizes:       []int{4096, 8192},
		Lines:       []int{16},
		Assocs:      []int{1},
		WriteHits:   []string{"wb"},
		WriteMisses: []string{"fow", "wv"},
	}
}

// golden computes the rows the server must report for spec's single
// workload, with the same engine it uses.
func golden(t *testing.T, spec JobSpec) []Row {
	t.Helper()
	spec.normalize()
	cfgs, err := spec.Configs()
	if err != nil {
		t.Fatalf("Configs: %v", err)
	}
	tr, err := workload.Generate(spec.Workloads[0], spec.Scale)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if spec.Events > 0 && tr.Len() > spec.Events {
		tr = tr.Slice(0, spec.Events)
	}
	stats, err := sweep.Gang(tr, cfgs)
	if err != nil {
		t.Fatalf("Gang: %v", err)
	}
	return RowsFor(cfgs, stats)
}

// startRun launches Run on a cancellable context and returns a stop
// function that drains and waits for it.
func startRun(t *testing.T, s *Server) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	return func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Run: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("Run did not drain")
		}
	}
}

func awaitTerminal(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

func mustSubmit(t *testing.T, s *Server, spec JobSpec) JobStatus {
	t.Helper()
	st, rej, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if rej != nil {
		t.Fatalf("Submit shed unexpectedly: %s", rej.Reason)
	}
	return st
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name   string
		mutate func(*JobSpec)
		want   string
	}{
		{"empty tenant", func(sp *JobSpec) { sp.Tenant = "" }, "tenant"},
		{"bad tenant chars", func(sp *JobSpec) { sp.Tenant = "a/b" }, "tenant"},
		{"no workloads", func(sp *JobSpec) { sp.Workloads = nil }, "workloads"},
		{"unknown workload", func(sp *JobSpec) { sp.Workloads = []string{"doom"} }, "unknown workload"},
		{"duplicate workload", func(sp *JobSpec) { sp.Workloads = []string{"liver", "liver"} }, "duplicate"},
		{"no sizes", func(sp *JobSpec) { sp.Sizes = nil }, "no valid cache configuration"},
		{"bad policy", func(sp *JobSpec) { sp.WriteMisses = []string{"nope"} }, "nope"},
		{"negative deadline", func(sp *JobSpec) { sp.DeadlineMs = -1 }, "deadline_ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := testSpec("tenant-a", "")
			tc.mutate(&spec)
			_, rej, err := s.Submit(spec)
			if err == nil {
				t.Fatalf("want validation error, got rej=%v", rej)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestConfigGridCap(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxConfigs = 2 })
	_, _, err := s.Submit(testSpec("tenant-a", "")) // 4 configs > cap 2
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("want grid-cap error, got %v", err)
	}
}

// TestAdmissionQueueBound: the global queue sheds with a jittered
// Retry-After hint once full. No Run loop — jobs stay queued.
func TestAdmissionQueueBound(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Queue = 2; c.PerTenant = 8 })
	mustSubmit(t, s, testSpec("tenant-a", ""))
	mustSubmit(t, s, testSpec("tenant-a", ""))
	_, rej, err := s.Submit(testSpec("tenant-b", ""))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if rej == nil {
		t.Fatalf("third submit should have been shed")
	}
	if !strings.Contains(rej.Reason, "queue full") {
		t.Errorf("reason %q should mention the full queue", rej.Reason)
	}
	if rej.RetryAfterMs < 250 || rej.RetryAfterMs > 30_000 {
		t.Errorf("RetryAfterMs %d outside the [250ms, 30s] clamp", rej.RetryAfterMs)
	}
	if rej.retrySeconds() < 1 {
		t.Errorf("Retry-After header value must be >= 1s, got %d", rej.retrySeconds())
	}
	if m := s.MetricsSnapshot(); m.RejectedQueue != 1 {
		t.Errorf("RejectedQueue = %d, want 1", m.RejectedQueue)
	}
}

func TestAdmissionPerTenantBound(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Queue = 16; c.PerTenant = 1 })
	mustSubmit(t, s, testSpec("tenant-a", ""))
	_, rej, err := s.Submit(testSpec("tenant-a", ""))
	if err != nil || rej == nil {
		t.Fatalf("tenant-a's second submit should be shed; rej=%v err=%v", rej, err)
	}
	if !strings.Contains(rej.Reason, "tenant-a") {
		t.Errorf("reason %q should name the capped tenant", rej.Reason)
	}
	// The cap is per tenant: another tenant still gets in.
	mustSubmit(t, s, testSpec("tenant-b", ""))
	if m := s.MetricsSnapshot(); m.RejectedTenant != 1 {
		t.Errorf("RejectedTenant = %d, want 1", m.RejectedTenant)
	}
}

// TestDedupRequestID: an idempotent re-submit maps onto the admitted
// job instead of double-queueing — the client-retry-after-crash path.
func TestDedupRequestID(t *testing.T) {
	s := newTestServer(t, nil)
	first := mustSubmit(t, s, testSpec("tenant-a", "req-1"))
	again := mustSubmit(t, s, testSpec("tenant-a", "req-1"))
	if first.ID != again.ID {
		t.Fatalf("dedup returned a different job: %s vs %s", first.ID, again.ID)
	}
	// Same request_id under another tenant is a distinct job.
	other := mustSubmit(t, s, testSpec("tenant-b", "req-1"))
	if other.ID == first.ID {
		t.Fatalf("request_id must be scoped per tenant")
	}
	if m := s.MetricsSnapshot(); m.Deduplicated != 1 || m.Accepted != 2 {
		t.Errorf("metrics = %+v, want 1 dedup / 2 accepted", m)
	}
}

// TestFairShareRoundRobin drives the scheduler directly: a burst from
// one tenant must not starve the others.
func TestFairShareRoundRobin(t *testing.T) {
	s := newTestServer(t, nil)
	for i := 0; i < 3; i++ {
		mustSubmit(t, s, testSpec("tenant-a", ""))
	}
	mustSubmit(t, s, testSpec("tenant-b", ""))
	mustSubmit(t, s, testSpec("tenant-c", ""))

	var order []string
	for {
		j := s.next()
		if j == nil {
			break
		}
		order = append(order, j.Tenant)
	}
	want := []string{"tenant-a", "tenant-b", "tenant-c", "tenant-a", "tenant-a"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("fair-share order = %v, want %v", order, want)
	}
}

// TestRunJobToCompletion is the end-to-end happy path: submit, run,
// and require the reported rows to equal an independently computed
// golden exactly.
func TestRunJobToCompletion(t *testing.T) {
	s := newTestServer(t, nil)
	stop := startRun(t, s)
	defer stop()

	spec := testSpec("tenant-a", "req-1")
	st := mustSubmit(t, s, spec)
	st = awaitTerminal(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", st.State, st.Error)
	}
	if st.UnitsDone != st.UnitsTotal || st.UnitsTotal == 0 {
		t.Errorf("units %d/%d, want all of a non-zero total", st.UnitsDone, st.UnitsTotal)
	}
	if len(st.Results) != 1 || st.Results[0].Workload != "liver" {
		t.Fatalf("results = %+v, want one liver entry", st.Results)
	}
	if want := golden(t, spec); !reflect.DeepEqual(st.Results[0].Rows, want) {
		t.Errorf("rows differ from golden:\n got  %+v\n want %+v", st.Results[0].Rows, want)
	}
	if m := s.MetricsSnapshot(); m.JobsDone != 1 || m.UnitsDone == 0 {
		t.Errorf("metrics = %+v, want a completed job with units", m)
	}
}

// TestJobDeadline: a 1ms deadline cannot finish a sweep; the job must
// degrade into a deadline failure, not hang or panic. The job is made
// deliberately heavy (full trace, wide grid, serial sweep) so the
// deadline expires mid-sweep even if the runtime timer fires late.
func TestJobDeadline(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxEvents = -1 // unlimited: let the job use the full trace
		c.SweepWorkers = 1
	})
	stop := startRun(t, s)
	defer stop()

	spec := testSpec("tenant-a", "")
	spec.Events = 0 // full trace
	spec.Sizes = []int{1024, 4096, 16384, 65536}
	spec.WriteHits = []string{"wb", "wt"}
	spec.DeadlineMs = 1
	st := mustSubmit(t, s, spec)
	st = awaitTerminal(t, s, st.ID)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if len(st.Failures) != 1 || !strings.Contains(st.Failures[0].Error, "deadline") {
		t.Fatalf("failures = %+v, want one deadline entry", st.Failures)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("job error %q should surface the deadline", st.Error)
	}
}

// TestDrainClosesAdmissions: after ctx cancellation Run returns nil
// and Submit sheds with a draining hint.
func TestDrainClosesAdmissions(t *testing.T) {
	s := newTestServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Run did not return after cancel")
	}
	_, rej, err := s.Submit(testSpec("tenant-a", ""))
	if err != nil || rej == nil {
		t.Fatalf("submit while draining: rej=%v err=%v, want rejection", rej, err)
	}
	if !strings.Contains(rej.Reason, "draining") {
		t.Errorf("reason %q should say draining", rej.Reason)
	}
	if h := s.Health(); h.Status != "draining" {
		t.Errorf("health = %q, want draining", h.Status)
	}
}

// TestRestartResumesQueuedJobs is the crash half of the contract: jobs
// admitted (and 202-acknowledged) by a process that never ran them are
// re-queued by the next process and produce golden results.
func TestRestartResumesQueuedJobs(t *testing.T) {
	cfg := testConfig(t)
	s1, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec := testSpec("tenant-a", "req-1")
	admitted := mustSubmit(t, s1, spec)
	mustSubmit(t, s1, testSpec("tenant-b", "req-2"))
	// s1 is never Run and never drained — the process just dies.

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("New after restart: %v", err)
	}
	if m := s2.MetricsSnapshot(); m.JobsResumed != 2 {
		t.Fatalf("JobsResumed = %d, want 2", m.JobsResumed)
	}
	// The dedup index must survive too: a client retrying its submit
	// against the restarted server maps onto the journaled job.
	again := mustSubmit(t, s2, spec)
	if again.ID != admitted.ID {
		t.Fatalf("post-restart dedup returned %s, want %s", again.ID, admitted.ID)
	}

	stop := startRun(t, s2)
	defer stop()
	st := awaitTerminal(t, s2, admitted.ID)
	if st.State != StateDone {
		t.Fatalf("resumed job state = %s (error %q), want done", st.State, st.Error)
	}
	if want := golden(t, spec); !reflect.DeepEqual(st.Results[0].Rows, want) {
		t.Errorf("resumed rows differ from golden")
	}
}

// TestCompletedJobSurvivesRestart: terminal jobs keep their results
// across restarts and are not re-run.
func TestCompletedJobSurvivesRestart(t *testing.T) {
	cfg := testConfig(t)
	s1, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	stop := startRun(t, s1)
	spec := testSpec("tenant-a", "req-1")
	st := mustSubmit(t, s1, spec)
	st = awaitTerminal(t, s1, st.ID)
	stop()
	if st.State != StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("New after restart: %v", err)
	}
	if m := s2.MetricsSnapshot(); m.JobsResumed != 0 {
		t.Errorf("JobsResumed = %d, want 0 (job was terminal)", m.JobsResumed)
	}
	got, ok := s2.Job(st.ID)
	if !ok {
		t.Fatalf("job %s lost across restart", st.ID)
	}
	if got.State != StateDone || !reflect.DeepEqual(got.Results, st.Results) {
		t.Errorf("restored job differs from the one that completed")
	}
}

// TestHTTPAPI covers the submit/poll/list/health endpoints end to end
// over real HTTP.
func TestHTTPAPI(t *testing.T) {
	s := newTestServer(t, nil)
	stop := startRun(t, s)
	defer stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := testSpec("tenant-a", "req-http")
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode 202: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/sweeps/"+st.ID {
		t.Errorf("Location = %q, want /v1/sweeps/%s", loc, st.ID)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err = http.Get(ts.URL + "/v1/sweeps/" + st.ID)
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		resp.Body.Close()
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished over HTTP; state %s", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", st.State, st.Error)
	}
	if want := golden(t, spec); !reflect.DeepEqual(st.Results[0].Rows, want) {
		t.Errorf("HTTP rows differ from golden")
	}

	// Invalid JSON and unknown jobs.
	resp, _ = http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader("{"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d, want 400", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/v1/sweeps/j999999")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}

	// Tenant listing and health.
	resp, _ = http.Get(ts.URL + "/v1/tenants/tenant-a/sweeps")
	var listing struct {
		Tenant string      `json:"tenant"`
		Jobs   []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatalf("decode tenant list: %v", err)
	}
	resp.Body.Close()
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != st.ID {
		t.Errorf("tenant listing = %+v, want the one job", listing)
	}
	if len(listing.Jobs) == 1 && listing.Jobs[0].Results != nil {
		t.Errorf("tenant listing must be brief (no result payloads)")
	}
	resp, _ = http.Get(ts.URL + "/healthz")
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode health: %v", err)
	}
	resp.Body.Close()
	if h.Status != "ok" {
		t.Errorf("health = %q, want ok", h.Status)
	}
}

// TestHTTPShedding: a full queue answers 503 with a Retry-After header
// and a structured body.
func TestHTTPShedding(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Queue = 1 }) // no Run: the job stays queued
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(testSpec("tenant-a", ""))
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", resp.StatusCode)
	}

	body, _ = json.Marshal(testSpec("tenant-b", ""))
	start := time.Now()
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var rej Rejection
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatalf("decode 503 body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second POST = %d, want 503", resp.StatusCode)
	}
	if lat := time.Since(start); lat > 5*time.Second {
		t.Errorf("shedding took %s; rejections must be fast", lat)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("503 without Retry-After header")
	}
	if rej.RetryAfterMs <= 0 || rej.Reason == "" {
		t.Errorf("rejection body %+v incomplete", rej)
	}
}

// TestConcurrentTenants is the in-process load test: many tenants
// submitting at once (riding out shed responses), every job verified
// against the golden, under the race detector.
func TestConcurrentTenants(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Queue = 8 // small enough that shedding actually happens
		c.PerTenant = 2
		c.JobWorkers = 4
		c.SweepWorkers = 1
	})
	stop := startRun(t, s)
	defer stop()

	spec0 := testSpec("x", "")
	want := golden(t, spec0)

	const tenants, jobsPer = 8, 2
	var wg sync.WaitGroup
	errs := make(chan error, tenants*jobsPer)
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			for ji := 0; ji < jobsPer; ji++ {
				spec := testSpec(fmt.Sprintf("tenant-%02d", ti), fmt.Sprintf("req-%d", ji))
				var st JobStatus
				for { // ride out 503s like a well-behaved client
					got, rej, err := s.Submit(spec)
					if err != nil {
						errs <- fmt.Errorf("tenant %d: %v", ti, err)
						return
					}
					if rej == nil {
						st = got
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
				deadline := time.Now().Add(120 * time.Second)
				for {
					got, ok := s.Job(st.ID)
					if !ok {
						errs <- fmt.Errorf("job %s lost", st.ID)
						return
					}
					if got.State.Terminal() {
						st = got
						break
					}
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("job %s stuck in %s", st.ID, got.State)
						return
					}
					time.Sleep(10 * time.Millisecond)
				}
				if st.State != StateDone {
					errs <- fmt.Errorf("job %s: state %s (error %q)", st.ID, st.State, st.Error)
					return
				}
				if !reflect.DeepEqual(st.Results[0].Rows, want) {
					errs <- fmt.Errorf("job %s: rows differ from golden", st.ID)
					return
				}
			}
		}(ti)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := s.MetricsSnapshot()
	if m.JobsDone != tenants*jobsPer {
		t.Errorf("JobsDone = %d, want %d", m.JobsDone, tenants*jobsPer)
	}
}
