package serve

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cachewrite/internal/vfs"
	"cachewrite/internal/workload"
)

// fakeClock is an injectable wall clock for the breaker cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBreakerShedsAfterStorageFaultJobs drives the per-tenant circuit
// breaker end to end: a filesystem that eats every checkpoint read
// makes the tenant's jobs die on storage faults; after BreakerThreshold
// of them the tenant's submits are shed with an honest Retry-After,
// and a clean probe job after the cooldown closes the breaker again.
func TestBreakerShedsAfterStorageFaultJobs(t *testing.T) {
	clk := newFakeClock()
	faulty := vfs.NewFaulty(vfs.NewMem(), vfs.Plan{})
	const cooldown = 30 * time.Second
	s := newTestServer(t, func(c *Config) {
		c.StateDir = "/state"
		c.FS = faulty
		c.Now = clk.Now
		c.BreakerThreshold = 3
		c.BreakerCooldown = cooldown
	})
	stop := startRun(t, s)
	defer stop()

	// From here on every read fails with EIO: the sweep checkpoint
	// Load at the start of each workload dies on a storage fault.
	faulty.Reset(vfs.Plan{Seed: 1, Rate: 1, Kinds: vfs.KindReadEIO})

	for i := 0; i < 3; i++ {
		st := mustSubmit(t, s, testSpec("tenant-a", ""))
		st = awaitTerminal(t, s, st.ID)
		if st.State != StateFailed {
			t.Fatalf("job %d: state = %s (error %q), want failed", i, st.State, st.Error)
		}
		if len(st.Failures) == 0 || !st.Failures[0].Storage {
			t.Fatalf("job %d: failures %+v should be classified as storage faults", i, st.Failures)
		}
	}
	if m := s.MetricsSnapshot(); m.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1 after %d storage-fault jobs", m.BreakerOpens, 3)
	}

	// The breaker is open: tenant-a is shed with the remaining cooldown.
	_, rej, err := s.Submit(testSpec("tenant-a", ""))
	if err != nil || rej == nil {
		t.Fatalf("open breaker should shed: rej=%v err=%v", rej, err)
	}
	if !strings.Contains(rej.Reason, "circuit breaker") {
		t.Errorf("reason %q should name the breaker", rej.Reason)
	}
	if rej.RetryAfterMs != cooldown.Milliseconds() {
		t.Errorf("RetryAfterMs = %d, want the honest remaining cooldown %d",
			rej.RetryAfterMs, cooldown.Milliseconds())
	}
	if m := s.MetricsSnapshot(); m.RejectedBreaker != 1 {
		t.Errorf("RejectedBreaker = %d, want 1", m.RejectedBreaker)
	}
	// Other tenants are unaffected: the breaker is per tenant. (The job
	// will fail on the same disk, but it is admitted.)
	st := mustSubmit(t, s, testSpec("tenant-b", ""))
	awaitTerminal(t, s, st.ID)

	// Cooldown over and the disk healed: the probe job runs clean and
	// closes the breaker.
	clk.Advance(cooldown + time.Second)
	faulty.Reset(vfs.Plan{})
	st = mustSubmit(t, s, testSpec("tenant-a", ""))
	st = awaitTerminal(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("probe job state = %s (error %q), want done", st.State, st.Error)
	}
	mustSubmit(t, s, testSpec("tenant-a", ""))
}

// TestBreakerHalfOpenProbeRace hammers the breaker's half-open
// transition from many goroutines at once (meaningful under -race):
// after the cooldown expires, concurrent submits race to clear
// openUntil, and none of them may be shed with a stale breaker
// rejection. A storage-fault probe outcome then reopens the breaker
// immediately for the next submit.
func TestBreakerHalfOpenProbeRace(t *testing.T) {
	clk := newFakeClock()
	const cooldown = 30 * time.Second
	s := newTestServer(t, func(c *Config) {
		c.StateDir = "/state"
		c.FS = vfs.NewMem()
		c.Now = clk.Now
		c.BreakerThreshold = 1
		c.BreakerCooldown = cooldown
	})

	// One storage-fault job trips the breaker (threshold 1).
	s.mu.Lock()
	s.recordJobStorageOutcomeLocked("tenant-a", true)
	s.mu.Unlock()
	if _, rej, err := s.Submit(testSpec("tenant-a", "")); err != nil || rej == nil {
		t.Fatalf("open breaker should shed: rej=%v err=%v", rej, err)
	}

	// Cooldown over: half-open. Race the probe slot with as many
	// contenders as the per-tenant cap admits — every one must see the
	// expired cooldown, none may observe a torn breaker state.
	clk.Advance(cooldown + time.Second)
	contenders := s.cfg.PerTenant
	var admitted, shedBreaker, shedOther atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, rej, err := s.Submit(testSpec("tenant-a", ""))
			switch {
			case err != nil:
				t.Errorf("Submit: %v", err)
			case rej == nil && st.ID != "":
				admitted.Add(1)
			case rej != nil && strings.Contains(rej.Reason, "circuit breaker"):
				shedBreaker.Add(1)
			default:
				shedOther.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := shedBreaker.Load(); n != 0 {
		t.Errorf("%d submit(s) shed by a breaker whose cooldown had expired", n)
	}
	if n := admitted.Load(); n != int64(contenders) {
		t.Errorf("admitted = %d, want all %d half-open submits (other rejections: %d)",
			n, contenders, shedOther.Load())
	}

	// The probe died on another storage fault: the breaker reopens at
	// once, ahead of the queue and tenant caps in the submit path.
	s.mu.Lock()
	s.recordJobStorageOutcomeLocked("tenant-a", true)
	s.mu.Unlock()
	_, rej, err := s.Submit(testSpec("tenant-a", ""))
	if err != nil || rej == nil || !strings.Contains(rej.Reason, "circuit breaker") {
		t.Fatalf("storage-fault probe must reopen the breaker: rej=%+v err=%v", rej, err)
	}

	// A clean probe closes it: the tenant's submits flow again (here the
	// tenant cap rejects, which proves the breaker no longer does).
	s.mu.Lock()
	s.recordJobStorageOutcomeLocked("tenant-a", false)
	s.mu.Unlock()
	_, rej, err = s.Submit(testSpec("tenant-a", ""))
	if err != nil || rej == nil || strings.Contains(rej.Reason, "circuit breaker") {
		t.Fatalf("clean probe must close the breaker: rej=%+v err=%v", rej, err)
	}
}

// TestAckedJobSurvivesPowerCut is the serve half of the ack contract: a
// job the client saw admitted (Submit returned, i.e. the 202 was
// writable) survives a power cut — admission is flushed and fsynced
// before it is visible.
func TestAckedJobSurvivesPowerCut(t *testing.T) {
	mem := vfs.NewMem()
	cfg := testConfig(t)
	cfg.StateDir = "/state"
	cfg.FS = mem
	s1, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	admitted := mustSubmit(t, s1, testSpec("tenant-a", "req-1"))

	// Power cut: everything not fsynced is gone.
	mem.Crash()

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("New after crash: %v", err)
	}
	if m := s2.MetricsSnapshot(); m.JobsResumed != 1 {
		t.Fatalf("JobsResumed = %d, want the acked job back", m.JobsResumed)
	}
	st, ok := s2.Job(admitted.ID)
	if !ok {
		t.Fatalf("acked job %s lost across power cut", admitted.ID)
	}
	if st.State != StateQueued {
		t.Errorf("resumed job state = %s, want queued", st.State)
	}
}

// TestStatuszSurfacesStoreDegraded: trace-cache stores downgraded by a
// full disk show up in the server's statusz counters, and the job that
// hit them still completes (degrade, don't fail).
func TestStatuszSurfacesStoreDegraded(t *testing.T) {
	oldFS := workload.FS
	workload.FS = vfs.NewFaulty(vfs.OS{}, vfs.Plan{Seed: 1, Rate: 1, Kinds: vfs.KindENOSPC})
	t.Cleanup(func() { workload.FS = oldFS })

	s := newTestServer(t, func(c *Config) { c.TraceDir = t.TempDir() })
	before := s.MetricsSnapshot().StoreDegraded
	stop := startRun(t, s)
	defer stop()

	st := mustSubmit(t, s, testSpec("tenant-a", ""))
	st = awaitTerminal(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("state = %s (error %q): a failing trace cache must degrade, not fail the job", st.State, st.Error)
	}
	if after := s.MetricsSnapshot().StoreDegraded; after <= before {
		t.Errorf("StoreDegraded = %d -> %d, want an increase", before, after)
	}
}

// TestRemoveCkptsSparesPoisonedJobs: a terminal job with quarantined
// units keeps its sweep checkpoints (the poison set must survive for
// resubmits to skip), while a clean terminal job's are reaped.
func TestRemoveCkptsSparesPoisonedJobs(t *testing.T) {
	mem := vfs.NewMem()
	s := newTestServer(t, func(c *Config) {
		c.StateDir = "/state"
		c.FS = mem
	})

	plant := func(j *job) {
		for ti := range j.Spec.Workloads {
			f, err := mem.CreateTemp("/state/sweeps", "ckpt")
			if err != nil {
				t.Fatalf("CreateTemp: %v", err)
			}
			f.Close()
			if err := mem.Rename(f.Name(), s.ckptPath(j.ID, ti)); err != nil {
				t.Fatalf("Rename: %v", err)
			}
		}
	}
	exists := func(p string) bool { _, err := mem.Stat(p); return err == nil }

	clean := &job{ID: "j000001", Spec: testSpec("tenant-a", "")}
	poisoned := &job{
		ID:       "j000002",
		Spec:     testSpec("tenant-a", ""),
		Failures: []Failure{{Workload: "liver", Poisoned: []string{"liver/shard0"}}},
	}
	plant(clean)
	plant(poisoned)

	s.removeCkpts(clean)
	if exists(s.ckptPath(clean.ID, 0)) {
		t.Errorf("clean job's checkpoint should be reaped")
	}
	s.removeCkpts(poisoned)
	if !exists(s.ckptPath(poisoned.ID, 0)) {
		t.Errorf("poisoned job's checkpoint must survive for resubmits to skip the quarantine")
	}
}
