package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/sweeps                  submit a JobSpec; 202 JobStatus,
//	                                 400 invalid, 503 + Retry-After shed
//	GET  /v1/sweeps/{id}             full job status incl. results and
//	                                 the failures manifest
//	GET  /v1/tenants/{tenant}/sweeps tenant's jobs, brief form
//	GET  /healthz                    liveness + load ("ok"/"draining")
//	GET  /statusz                    admission/scheduler counters
//
// Handlers only read and mutate guarded state; the heavy lifting
// happens on the Run job workers, so requests stay fast and the
// listener can keep answering polls while the server drains.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/tenants/{tenant}/sweeps", s.handleTenant)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statusz", s.handleMetrics)
	return mux
}

// maxBodyBytes bounds submit payloads; a JobSpec is axis lists, not
// data, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // a failed write means the client went away
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	st, rej, err := s.Submit(spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if rej != nil {
		w.Header().Set("Retry-After", strconv.Itoa(rej.retrySeconds()))
		writeJSON(w, http.StatusServiceUnavailable, rej)
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleTenant(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if !validTenant(tenant) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid tenant"})
		return
	}
	jobs := s.TenantJobs(tenant)
	if jobs == nil {
		jobs = []JobStatus{}
	}
	writeJSON(w, http.StatusOK, struct {
		Tenant string      `json:"tenant"`
		Jobs   []JobStatus `json:"jobs"`
	}{tenant, jobs})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}
