// Package serve is the multi-tenant simulation service behind
// cmd/simserved: long-lived sessions submit sweep jobs over HTTP/JSON
// and the server runs them on the gang engine with the same
// crash-safety contract the CLIs have — and the overload tolerance
// they never needed.
//
// The design carries the paper's write-buffer lesson (Jouppi §3: a
// bounded buffer must stall or shed when the arrival rate exceeds the
// retirement rate) up to the service layer:
//
//   - Admission control: the run queue is bounded globally and
//     per-tenant. A full queue sheds load with 503 + Retry-After
//     (a jittered hint derived from observed job durations) instead of
//     queueing unboundedly.
//   - Fair-share scheduling: job workers pick the next job round-robin
//     across tenants, so one tenant's burst cannot starve the rest.
//   - Crash safety: admitted jobs are journaled through
//     internal/resilience before the client sees 202; each running
//     sweep checkpoints its completed (trace, config-shard) units. A
//     SIGKILLed server resumes every in-flight job on restart and
//     re-derives byte-identical results; client re-submits are
//     deduplicated by (tenant, request_id).
//   - Deadlines: each job's deadline context reaches the gang inner
//     loop (the pulseStride contract), so an expired or cancelled job
//     stops mid-unit, not at the next unit boundary.
//   - Graceful degradation: a job whose workloads partially fail still
//     returns every computable result plus a failures manifest.
//   - Graceful drain: Run(ctx) stops admitting when ctx is cancelled
//     (SIGTERM), waits a bounded grace for running jobs, checkpoints
//     whatever is still in flight, and flushes the job journal.
//
// The package is in simlint's nopanic, determinism and ctxloop scopes:
// it never panics or exits, its result-producing paths are
// deterministic (the wall clock and jitter RNG are injected and feed
// only Retry-After hints), and its worker loops observe cancellation
// every iteration.
package serve

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cachewrite/internal/resilience"
	"cachewrite/internal/sweep"
	"cachewrite/internal/vfs"
	"cachewrite/internal/workload"
)

// Config tunes a Server. The zero value of every field has a usable
// default (documented per field).
type Config struct {
	// StateDir holds the job journal and per-job sweep checkpoints
	// (default "simserved-state"). It must persist across restarts for
	// crash-safe resume.
	StateDir string
	// Queue bounds admitted-but-unfinished jobs across all tenants
	// (default 64). Submits beyond it are shed with 503.
	Queue int
	// PerTenant bounds one tenant's admitted-but-unfinished jobs
	// (default 8).
	PerTenant int
	// JobWorkers is how many jobs run concurrently (default 2).
	JobWorkers int
	// SweepWorkers is each job's gang scheduler pool size (default 0 =
	// GOMAXPROCS; with several JobWorkers, a smaller value avoids
	// oversubscription).
	SweepWorkers int
	// MaxConfigs caps one job's configuration grid (default 4096).
	MaxConfigs int
	// MaxEvents clamps each trace's per-job event cap (default
	// 2,000,000; 0 keeps the default — use a negative value for
	// "unlimited").
	MaxEvents int
	// DefaultDeadline is the per-attempt execution budget for jobs that
	// do not set deadline_ms (default 5m).
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (default 10m).
	MaxDeadline time.Duration
	// Retries is the per-unit retry budget inside each sweep
	// (default 1; negative disables retries).
	Retries int
	// StallWarn is the per-unit soft deadline for the sweep watchdog;
	// stalls are surfaced in statusz counters (default 30s).
	StallWarn time.Duration
	// DrainGrace is how long Run waits for running jobs after ctx is
	// cancelled before cancelling them into their checkpoints
	// (default 5s).
	DrainGrace time.Duration
	// TraceDir is the on-disk trace cache shared by all sessions
	// ("" disables the disk layer).
	TraceDir string
	// TraceMem bounds the decoded traces shared in memory across
	// sessions (default 16).
	TraceMem int
	// Seed seeds the jitter RNG for Retry-After hints (default 1).
	Seed int64
	// FS is the filesystem under the durability surfaces — the job
	// journal, sweep checkpoints and checkpoint cleanup (default: the
	// real one). The chaos harness passes a vfs.Faulty here to prove
	// the service degrades honestly under storage faults.
	FS vfs.FS
	// BreakerThreshold is how many consecutive jobs of one tenant must
	// end with storage-fault failures before that tenant's circuit
	// breaker opens (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds a tenant's
	// submits before admitting a probe job again (default 30s). The
	// cooldown is measured on the injected Now clock.
	BreakerCooldown time.Duration
	// Now is the clock (required by the determinism contract to be
	// injected; cmd/simserved passes time.Now). Wall-clock values feed
	// only Retry-After estimates, never results.
	Now func() time.Time
	// Logf receives operational log lines (default os.Stderr).
	Logf func(format string, args ...any)
}

// journalVersion is the job-journal schema version; bump when
// persistedState or JobSpec changes shape.
const journalVersion = 1

// persistedState is the journaled server state: the job sequence
// counter and every job in admission order. Jobs are a slice, not a
// map, so encoding is deterministic by construction.
type persistedState struct {
	Seq  int   `json:"seq"`
	Jobs []job `json:"jobs"`
}

// Metrics is the statusz counter snapshot.
type Metrics struct {
	Accepted         int64 `json:"accepted"`
	Deduplicated     int64 `json:"deduplicated"`
	RejectedQueue    int64 `json:"rejected_queue_full"`
	RejectedTenant   int64 `json:"rejected_tenant_full"`
	RejectedDraining int64 `json:"rejected_draining"`
	// RejectedBreaker counts submits shed because the tenant's circuit
	// breaker was open after repeated storage-fault failures.
	RejectedBreaker int64 `json:"rejected_breaker_open"`
	// BreakerOpens counts circuit-breaker trips across all tenants.
	BreakerOpens  int64 `json:"breaker_opens"`
	JobsDone      int64 `json:"jobs_done"`
	JobsPartial   int64 `json:"jobs_partial"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsResumed   int64 `json:"jobs_resumed"`
	UnitsDone     int64 `json:"units_done"`
	UnitsRestored int64 `json:"units_restored"`
	UnitsRetried  int64 `json:"units_retried"`
	UnitStalls    int64 `json:"unit_stalls"`
	// UnitsPoisoned counts sweep units journaled as poisoned after
	// exhausting their retry budget (skipped, not retried forever).
	UnitsPoisoned int64 `json:"units_poisoned"`
	// CheckpointDegraded counts sweep checkpoint snapshots or cleanups
	// that failed and were degraded (the run continued).
	CheckpointDegraded int64 `json:"checkpoint_degraded"`
	// StoreDegraded mirrors the process-wide trace-cache counter: cache
	// stores downgraded to in-memory generation by a failing disk.
	StoreDegraded int64 `json:"store_degraded"`
}

// Server is the resident sweep service. Construct with New, serve its
// Handler, and call Run to process jobs until the context is
// cancelled.
type Server struct {
	cfg     Config
	now     func() time.Time
	logf    func(string, ...any)
	fs      vfs.FS
	traces  *workload.SharedTraces
	journal *resilience.Journal[persistedState]

	mu         sync.Mutex
	jobs       []*job          // admission order; persisted in this order
	byID       map[string]*job // lookup only — never ranged over
	byRequest  map[string]*job // (tenant, request_id) dedup index
	breakers   map[string]*tenantBreaker
	seq        int
	draining   bool
	running    int
	lastTenant string  // fair-share round-robin cursor
	avgJobNs   float64 // EWMA of job durations, feeds Retry-After
	rng        *rand.Rand
	metrics    Metrics

	wake chan struct{}
}

// New builds a server over cfg.StateDir, loading the job journal and
// re-queueing every job a previous process left unfinished. It does
// not start any goroutine; call Run.
func New(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		cfg.StateDir = "simserved-state"
	}
	if cfg.Queue < 1 {
		cfg.Queue = 64
	}
	if cfg.PerTenant < 1 {
		cfg.PerTenant = 8
	}
	if cfg.JobWorkers < 1 {
		cfg.JobWorkers = 2
	}
	if cfg.MaxConfigs < 1 {
		cfg.MaxConfigs = 4096
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 2_000_000
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 5 * time.Minute
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 10 * time.Minute
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	if cfg.StallWarn <= 0 {
		cfg.StallWarn = 30 * time.Second
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 5 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.BreakerThreshold < 1 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	if cfg.FS == nil {
		cfg.FS = vfs.OS{}
	}
	if cfg.Now == nil {
		cfg.Now = func() time.Time { return time.Time{} }
	}
	if cfg.Logf == nil {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "simserved: "+format+"\n", args...)
		}
	}
	if err := cfg.FS.MkdirAll(filepath.Join(cfg.StateDir, "sweeps"), 0o755); err != nil {
		// A real mkdir of an existing directory is a no-op; only refuse
		// to start when the state dir genuinely is not there (a faulty
		// disk can report ENOSPC for the no-op case too).
		if _, serr := cfg.FS.Stat(filepath.Join(cfg.StateDir, "sweeps")); serr != nil {
			return nil, fmt.Errorf("serve: state dir: %w (stat: %w)", err, serr)
		}
	}
	s := &Server{
		cfg:       cfg,
		now:       cfg.Now,
		logf:      cfg.Logf,
		fs:        cfg.FS,
		traces:    workload.NewSharedTraces(cfg.TraceDir, cfg.TraceMem),
		journal:   resilience.NewJournalFS[persistedState](cfg.FS, filepath.Join(cfg.StateDir, "jobs.journal"), "simserved", journalVersion),
		byID:      map[string]*job{},
		byRequest: map[string]*job{},
		breakers:  map[string]*tenantBreaker{},
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		wake:      make(chan struct{}, cfg.JobWorkers),
	}
	if err := s.restore(); err != nil {
		return nil, err
	}
	return s, nil
}

// restore loads the job journal and re-queues unfinished jobs.
func (s *Server) restore() error {
	state, info, err := s.journal.Load()
	if err != nil {
		return fmt.Errorf("serve: job journal: %w", err)
	}
	for _, w := range info.Warnings {
		s.logf("job journal: %s", w)
	}
	if !info.Found {
		return nil
	}
	s.seq = state.Seq
	resumed := 0
	for i := range state.Jobs {
		j := state.Jobs[i] // copy out of the slice
		if !j.State.Terminal() {
			// Anything unfinished — queued, or running when the previous
			// process died — goes back to the queue; its sweep
			// checkpoints make the resume cheap and byte-identical.
			j.State = StateQueued
			resumed++
		}
		jp := &j
		s.jobs = append(s.jobs, jp)
		s.byID[j.ID] = jp
		if j.RequestID != "" {
			s.byRequest[requestKey(j.Tenant, j.RequestID)] = jp
		}
	}
	if resumed > 0 {
		s.metrics.JobsResumed += int64(resumed)
		s.logf("restored %d job(s) from journal, %d unfinished re-queued", len(s.jobs), resumed)
	}
	return nil
}

func requestKey(tenant, requestID string) string {
	return tenant + "\x00" + requestID
}

// persistLocked snapshots the full job table through the resilience
// journal (atomic rename + CRC + previous-good fallback) and returns
// the save error. Callers on the completion path log and continue
// (the server keeps serving from memory and retries on the next state
// change); the admission path instead refuses to admit what it cannot
// make durable. Caller holds mu.
func (s *Server) persistLocked() error {
	state := persistedState{Seq: s.seq, Jobs: make([]job, 0, len(s.jobs))}
	for _, j := range s.jobs {
		state.Jobs = append(state.Jobs, *j)
	}
	if err := s.journal.Save(state); err != nil {
		s.logf("job journal save failed: %v", err)
		return err
	}
	return nil
}

// ckptPath is the sweep checkpoint for one (job, workload-index) pair.
func (s *Server) ckptPath(jobID string, ti int) string {
	return filepath.Join(s.cfg.StateDir, "sweeps", fmt.Sprintf("%s-t%d.ckpt", jobID, ti))
}

// removeCkpts clears a terminal job's sweep checkpoints (successful
// sweeps already removed their own; this reaps the failed ones). A
// poisoned job keeps its checkpoints: the poison set must survive so a
// resubmission of the same job skips the quarantined units.
func (s *Server) removeCkpts(j *job) {
	if j.poisoned() {
		return
	}
	for ti := range j.Spec.Workloads {
		p := s.ckptPath(j.ID, ti)
		_ = s.fs.Remove(p)           //simlint:allow errflow best-effort reap: successful sweeps already removed their checkpoint, so a missing file is the common case
		_ = s.fs.Remove(p + ".prev") //simlint:allow errflow best-effort reap of the journal's previous generation; a leftover is reclaimed by the next run
	}
}

// unitsPerWorkload is how many scheduler units one workload's sweep
// splits into under the default sharding.
func unitsPerWorkload(nConfigs int) int {
	return (nConfigs + sweep.DefaultShard - 1) / sweep.DefaultShard
}

// Job returns the status of one job (full results included).
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status(false), true
}

// TenantJobs lists a tenant's jobs in admission order (brief form:
// no result payloads).
func (s *Server) TenantJobs(tenant string) []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobStatus
	for _, j := range s.jobs {
		if j.Tenant == tenant {
			out = append(out, j.status(true))
		}
	}
	return out
}

// Health is the healthz payload.
type Health struct {
	Status  string `json:"status"` // "ok" or "draining"
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Jobs    int    `json:"jobs"`
}

// Health reports liveness and load.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{Status: "ok", Running: s.running, Jobs: len(s.jobs)}
	if s.draining {
		h.Status = "draining"
	}
	for _, j := range s.jobs {
		if j.State == StateQueued {
			h.Queued++
		}
	}
	return h
}

// MetricsSnapshot returns the statusz counters. StoreDegraded is read
// from the process-wide trace-cache counters at snapshot time.
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.metrics
	m.StoreDegraded = workload.CacheStatsSnapshot().StoreDegraded
	return m
}

// queuedTenantsLocked returns the sorted tenants that have at least
// one queued job. Caller holds mu.
func (s *Server) queuedTenantsLocked() []string {
	seen := map[string]bool{}
	var tenants []string
	for _, j := range s.jobs {
		if j.State == StateQueued && !seen[j.Tenant] {
			seen[j.Tenant] = true
			tenants = append(tenants, j.Tenant)
		}
	}
	sort.Strings(tenants)
	return tenants
}

// next claims the next job under fair-share scheduling: tenants with
// queued work are ordered by name and the pick rotates round-robin
// from the previously served tenant, taking that tenant's oldest
// queued job. Returns nil when nothing is runnable (or the server is
// draining).
func (s *Server) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil
	}
	tenants := s.queuedTenantsLocked()
	if len(tenants) == 0 {
		return nil
	}
	pick := tenants[0]
	for _, t := range tenants {
		if t > s.lastTenant {
			pick = t
			break
		}
	}
	for _, j := range s.jobs {
		if j.State == StateQueued && j.Tenant == pick {
			s.lastTenant = pick
			j.State = StateRunning
			s.running++
			return j
		}
	}
	return nil
}
