package serve

import (
	"fmt"
	"time"

	"cachewrite/internal/cache"
	"cachewrite/internal/core"
	"cachewrite/internal/workload"
)

// JobState is the lifecycle state of a submitted sweep job.
type JobState string

const (
	// StateQueued: admitted, waiting for a job worker (also the state a
	// crashed or drained server's in-flight jobs resume from).
	StateQueued JobState = "queued"
	// StateRunning: a job worker is simulating it right now.
	StateRunning JobState = "running"
	// StateDone: every workload completed; Results is full.
	StateDone JobState = "done"
	// StatePartial: some workloads completed and some failed; Results
	// holds the completed ones and Failures the manifest of the rest.
	StatePartial JobState = "partial"
	// StateFailed: no workload completed.
	StateFailed JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StatePartial || s == StateFailed
}

// JobSpec is one tenant's sweep request: a set of workloads crossed
// with a cartesian grid of cache configurations, plus an execution
// deadline. The zero values of the optional axes are filled in by
// normalize (documented per field).
type JobSpec struct {
	// Tenant is the owning session's identifier (required;
	// [A-Za-z0-9._-], at most 64 bytes).
	Tenant string `json:"tenant"`
	// RequestID, when set, makes the submit idempotent per tenant: a
	// re-submit with the same (tenant, request_id) — e.g. a client
	// retrying after the server was SIGKILLed between admitting and
	// responding — returns the already-admitted job instead of queueing
	// a duplicate.
	RequestID string `json:"request_id,omitempty"`
	// Workloads names the benchmark traces to sweep (no duplicates).
	Workloads []string `json:"workloads"`
	// Scale is the workload scale factor (default 1).
	Scale int `json:"scale,omitempty"`
	// Events caps each trace to its first N events (0 = full trace;
	// silently clamped to the server's MaxEvents).
	Events int `json:"events,omitempty"`
	// Sizes are the cache sizes in bytes (required).
	Sizes []int `json:"sizes"`
	// Lines are the line sizes in bytes (default [16]).
	Lines []int `json:"lines,omitempty"`
	// Assocs are the set associativities (default [1]).
	Assocs []int `json:"assocs,omitempty"`
	// WriteHits are write-hit policy names (default ["wb"]).
	WriteHits []string `json:"write_hits,omitempty"`
	// WriteMisses are write-miss policy names (default ["fow"]).
	WriteMisses []string `json:"write_misses,omitempty"`
	// DeadlineMs bounds job execution wall-clock per attempt; the
	// deadline context reaches the gang inner loop, so an expired job
	// stops mid-unit. 0 means the server default; values above the
	// server maximum are clamped.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// normalize fills the defaulted axes in place so the spec that is
// journaled (and fingerprinted by the sweep checkpoints) is explicit.
func (s *JobSpec) normalize() {
	if s.Scale < 1 {
		s.Scale = 1
	}
	if len(s.Lines) == 0 {
		s.Lines = []int{16}
	}
	if len(s.Assocs) == 0 {
		s.Assocs = []int{1}
	}
	if len(s.WriteHits) == 0 {
		s.WriteHits = []string{"wb"}
	}
	if len(s.WriteMisses) == 0 {
		s.WriteMisses = []string{"fow"}
	}
}

// validTenant enforces the tenant charset: path- and filename-safe.
func validTenant(t string) bool {
	if t == "" || len(t) > 64 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// validate checks a normalized spec. The error text is safe to return
// to the client verbatim (400).
func (s *JobSpec) validate(maxConfigs int) error {
	if !validTenant(s.Tenant) {
		return fmt.Errorf("tenant must be 1-64 chars of [A-Za-z0-9._-], got %q", s.Tenant)
	}
	if len(s.RequestID) > 128 {
		return fmt.Errorf("request_id longer than 128 bytes")
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("workloads is required")
	}
	seen := map[string]bool{}
	for _, w := range s.Workloads {
		if _, err := workload.Get(w); err != nil {
			return fmt.Errorf("unknown workload %q", w)
		}
		if seen[w] {
			return fmt.Errorf("duplicate workload %q", w)
		}
		seen[w] = true
	}
	if s.Events < 0 {
		return fmt.Errorf("events must be >= 0")
	}
	if s.DeadlineMs < 0 {
		return fmt.Errorf("deadline_ms must be >= 0")
	}
	cfgs, err := s.Configs()
	if err != nil {
		return err
	}
	if len(cfgs) == 0 {
		return fmt.Errorf("no valid cache configuration in the sweep grid")
	}
	if maxConfigs > 0 && len(cfgs) > maxConfigs {
		return fmt.Errorf("sweep grid has %d configurations, server cap is %d", len(cfgs), maxConfigs)
	}
	return nil
}

// Configs expands the normalized spec's cartesian grid, skipping
// invalid combinations exactly like cmd/cachesweep does. Exported so
// the load harness can rebuild the server's exact configuration
// order when computing golden results.
func (s *JobSpec) Configs() ([]cache.Config, error) {
	var hits []cache.WriteHitPolicy
	for _, h := range s.WriteHits {
		p, err := core.ParseWriteHit(h)
		if err != nil {
			return nil, err
		}
		hits = append(hits, p)
	}
	var misses []cache.WriteMissPolicy
	for _, m := range s.WriteMisses {
		p, err := core.ParseWriteMiss(m)
		if err != nil {
			return nil, err
		}
		misses = append(misses, p)
	}
	var cfgs []cache.Config
	for _, size := range s.Sizes {
		for _, line := range s.Lines {
			for _, assoc := range s.Assocs {
				for _, hit := range hits {
					for _, miss := range misses {
						cfg := cache.Config{Size: size, LineSize: line, Assoc: assoc,
							WriteHit: hit, WriteMiss: miss}
						if cfg.Validate() == nil {
							cfgs = append(cfgs, cfg)
						}
					}
				}
			}
		}
	}
	return cfgs, nil
}

// deadline resolves the job's per-attempt execution budget against the
// server's default and cap.
func (s *JobSpec) deadline(def, max time.Duration) time.Duration {
	d := time.Duration(s.DeadlineMs) * time.Millisecond
	if d <= 0 {
		d = def
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// Row is one configuration's results, mirroring cmd/cachesweep's CSV
// columns as JSON. Rows are derived deterministically from cache.Stats,
// so a resumed job reports bytes identical to an uninterrupted one.
type Row struct {
	Size                  int     `json:"size"`
	Line                  int     `json:"line"`
	Assoc                 int     `json:"assoc"`
	WriteHit              string  `json:"write_hit"`
	WriteMiss             string  `json:"write_miss"`
	MissRate              float64 `json:"miss_rate"`
	WriteMissPct          float64 `json:"write_miss_pct"`
	WritesToDirtyPct      float64 `json:"writes_to_dirty_pct"`
	BacksideTxPerInstr    float64 `json:"backside_tx_per_instr"`
	BacksideBytesPerInstr float64 `json:"backside_bytes_per_instr"`
}

// RowsFor derives the response rows for one workload from the sweep's
// per-configuration stats. Exported so the load harness can compute
// the golden answer with the same arithmetic.
func RowsFor(cfgs []cache.Config, stats []cache.Stats) []Row {
	rows := make([]Row, len(cfgs))
	for i, cfg := range cfgs {
		st := stats[i]
		inst := float64(st.Instructions)
		rows[i] = Row{
			Size: cfg.Size, Line: cfg.LineSize, Assoc: cfg.Assoc,
			WriteHit: cfg.WriteHit.String(), WriteMiss: cfg.WriteMiss.String(),
			MissRate:              st.MissRate(),
			WriteMissPct:          100 * st.WriteMissFraction(),
			WritesToDirtyPct:      100 * st.WritesToDirtyFraction(),
			BacksideTxPerInstr:    float64(st.BacksideTransactions()) / inst,
			BacksideBytesPerInstr: float64(st.BacksideBytes(false)) / inst,
		}
	}
	return rows
}

// WorkloadResult is the completed sweep of one workload.
type WorkloadResult struct {
	Workload string `json:"workload"`
	Rows     []Row  `json:"rows"`
}

// Failure is one entry of a job's graceful-degradation manifest — the
// failures.json idiom from cmd/paperfigs carried into the API: a job
// whose workloads partially fail still returns every computable result
// plus a machine-readable account of what is missing and why.
type Failure struct {
	Workload string `json:"workload"`
	Unit     string `json:"unit,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error"`
	// Storage marks failures classified as storage faults
	// (vfs.IsStorageFault): injected faults, ENOSPC, EIO. These feed
	// the tenant's circuit breaker.
	Storage bool `json:"storage,omitempty"`
	// Poisoned lists sweep units quarantined after exhausting their
	// retry budget; resubmitting the job skips them.
	Poisoned []string `json:"poisoned,omitempty"`
}

// JobStatus is the client-visible snapshot of a job.
type JobStatus struct {
	ID         string           `json:"id"`
	Tenant     string           `json:"tenant"`
	State      JobState         `json:"state"`
	UnitsDone  int              `json:"units_done"`
	UnitsTotal int              `json:"units_total"`
	Results    []WorkloadResult `json:"results,omitempty"`
	Failures   []Failure        `json:"failures,omitempty"`
	Error      string           `json:"error,omitempty"`
}

// job is the server-side record. Mutable fields are guarded by the
// server mutex; unitsDone is read by status snapshots while the runner
// advances it, hence the dedicated counter on the server side.
type job struct {
	ID         string
	Tenant     string
	RequestID  string
	Spec       JobSpec
	State      JobState
	UnitsTotal int
	UnitsDone  int
	Results    []WorkloadResult
	Failures   []Failure
	Error      string
}

// poisoned reports whether any of the job's failures carry quarantined
// units (their sweep checkpoints must outlive the job).
func (j *job) poisoned() bool {
	for _, f := range j.Failures {
		if len(f.Poisoned) > 0 {
			return true
		}
	}
	return false
}

// status snapshots the job. Caller holds the server mutex. brief drops
// the (potentially large) results payload for list endpoints.
func (j *job) status(brief bool) JobStatus {
	st := JobStatus{
		ID: j.ID, Tenant: j.Tenant, State: j.State,
		UnitsDone: j.UnitsDone, UnitsTotal: j.UnitsTotal,
		Error: j.Error,
	}
	if !brief {
		st.Results = j.Results
		st.Failures = j.Failures
	}
	return st
}
