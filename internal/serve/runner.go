package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"cachewrite/internal/cache"
	"cachewrite/internal/resilience"
	"cachewrite/internal/sweep"
	"cachewrite/internal/vfs"
)

// Run processes jobs until ctx is cancelled, then drains: admissions
// close immediately (Submit starts shedding with a draining hint),
// running jobs get up to DrainGrace to finish, stragglers are
// cancelled into their sweep checkpoints, and the job journal is
// flushed one final time. Run returns nil on a clean drain; a killed
// process skips all of this and relies on the journals instead.
func (s *Server) Run(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.JobWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.runner(runCtx)
		}()
	}
	<-ctx.Done()

	s.mu.Lock()
	s.draining = true
	running := s.running
	s.mu.Unlock()
	s.logf("draining: admissions closed, %d job(s) running, grace %s", running, s.cfg.DrainGrace)

	grace := time.NewTimer(s.cfg.DrainGrace)
	defer grace.Stop()
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
wait:
	for {
		s.mu.Lock()
		running = s.running
		s.mu.Unlock()
		if running == 0 {
			break
		}
		select {
		case <-grace.C:
			s.logf("drain grace expired with %d job(s) running; checkpointing them", running)
			break wait
		case <-tick.C:
		}
	}
	cancel()
	wg.Wait()

	s.mu.Lock()
	//simlint:allow lockheld final drain flush: every worker has exited wg.Wait above, so no contender can stall on mu
	_ = s.persistLocked() //simlint:allow errflow shutdown flush is best-effort; persistLocked logs the failure and unfinished jobs resume from the journal on restart
	queued := 0
	for _, j := range s.jobs {
		if !j.State.Terminal() {
			queued++
		}
	}
	s.mu.Unlock()
	s.logf("drained: journal flushed, %d unfinished job(s) will resume on restart", queued)
	return nil
}

// runner is one job worker: claim the next fair-share job, run it,
// repeat. It observes ctx every iteration (the pulseStride contract —
// enforced by simlint's ctxloop analyzer on this package).
func (s *Server) runner(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		j := s.next()
		if j == nil {
			select {
			case <-ctx.Done():
				return
			case <-s.wake:
			}
			continue
		}
		s.runJob(ctx, j)
	}
}

// runJob executes one job to a terminal state — or back to queued if
// the server itself is stopping. Workload sweeps run in spec order,
// each under the job's deadline context and its own crash-safe sweep
// checkpoint; completed workloads are journaled immediately, so a
// restart (crash or drain) resumes only what is missing. Failed
// workloads degrade gracefully into the job's failures manifest
// instead of failing the whole job.
func (s *Server) runJob(ctx context.Context, j *job) {
	start := s.now()
	jctx, cancel := context.WithTimeout(ctx, j.Spec.deadline(s.cfg.DefaultDeadline, s.cfg.MaxDeadline))
	defer cancel()

	cfgs, cfgErr := j.Spec.Configs()
	perWL := unitsPerWorkload(len(cfgs))

	s.mu.Lock()
	// A resumed job already has some workloads' results journaled;
	// account for them and only simulate the rest.
	done := map[string]bool{}
	for _, r := range j.Results {
		done[r.Workload] = true
	}
	j.UnitsDone = len(j.Results) * perWL
	j.Failures = nil // failures are per-attempt; this attempt re-tries them
	j.Error = ""
	s.mu.Unlock()

	interrupted := false
	var failures []Failure
	for ti, name := range j.Spec.Workloads {
		if cfgErr != nil {
			failures = append(failures, Failure{Workload: name, Error: cfgErr.Error()})
			continue
		}
		if done[name] {
			continue
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		res, failure, itr := s.runWorkload(ctx, jctx, j, ti, name, cfgs)
		if itr {
			interrupted = true
			break
		}
		if failure != nil {
			failures = append(failures, *failure)
			continue
		}
		s.mu.Lock()
		j.Results = append(j.Results, *res)
		j.UnitsDone = len(j.Results) * perWL
		//simlint:allow lockheld results must persist atomically with the in-memory progress they record; a resumed job may not see results its journal lacks
		_ = s.persistLocked() //simlint:allow errflow a failed progress checkpoint only costs recomputation on resume; persistLocked logs the cause
		s.mu.Unlock()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	if interrupted {
		// The server is stopping (drain past its grace, or Run's ctx
		// cancelled). The job goes back to the queue; its journaled
		// results and sweep checkpoints make the next attempt cheap.
		j.State = StateQueued
		j.Failures = nil
		return
	}
	j.Failures = failures
	switch {
	case len(failures) == 0:
		j.State = StateDone
		s.metrics.JobsDone++
	case len(j.Results) > 0:
		j.State = StatePartial
		s.metrics.JobsPartial++
	default:
		j.State = StateFailed
		s.metrics.JobsFailed++
		if len(failures) > 0 {
			j.Error = failures[0].Error
		}
	}
	storageFault := false
	for _, f := range failures {
		if f.Storage {
			storageFault = true
		}
	}
	s.recordJobStorageOutcomeLocked(j.Tenant, storageFault)
	s.observeJobLocked(s.now().Sub(start))
	//simlint:allow lockheld the terminal state must persist atomically with the transition other goroutines will observe
	_ = s.persistLocked() //simlint:allow errflow a failed terminal flush re-runs the job's tail on restart; persistLocked logs the cause
	//simlint:allow lockheld checkpoint reaping under mu keeps it atomic with the terminal transition; the files are tiny and local
	s.removeCkpts(j)
}

// runWorkload sweeps one workload of one job. It returns exactly one
// of: a result, a failure-manifest entry, or interrupted=true when the
// server (not the job) is stopping and the job should be re-queued.
func (s *Server) runWorkload(ctx, jctx context.Context, j *job, ti int, name string, cfgs []cache.Config) (*WorkloadResult, *Failure, bool) {
	if jctx.Err() != nil {
		// The job's deadline already expired (an earlier workload spent
		// the budget); record the miss without paying for trace
		// generation.
		if ctx.Err() != nil {
			return nil, nil, true
		}
		return nil, &Failure{Workload: name, Error: "deadline exceeded"}, false
	}
	t, err := s.traces.Get(jctx, name, j.Spec.Scale)
	if err != nil {
		if ctx.Err() != nil {
			return nil, nil, true
		}
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, &Failure{Workload: name, Error: "deadline exceeded before trace was ready"}, false
		}
		return nil, &Failure{Workload: name, Error: err.Error(), Storage: vfs.IsStorageFault(err)}, false
	}
	if j.Spec.Events > 0 && t.Len() > j.Spec.Events {
		t = t.Slice(0, j.Spec.Events)
	}
	units := sweep.Shard(ti, t, cfgs, 0)
	stats := make([]cache.Stats, len(cfgs))
	opt := sweep.Options{
		Workers:      s.cfg.SweepWorkers,
		Checkpoint:   s.ckptPath(j.ID, ti),
		Retries:      s.cfg.Retries,
		SoftDeadline: s.cfg.StallWarn,
		FS:           s.fs,
		Quarantine:   true,
		OnEvent: func(e sweep.Event) {
			// Called under the sweep's collect lock; counter updates take
			// the server lock briefly.
			s.mu.Lock()
			switch e.Kind {
			case sweep.UnitDone:
				s.metrics.UnitsDone++
				j.UnitsDone++
			case sweep.UnitRestored:
				s.metrics.UnitsRestored++
				j.UnitsDone++
			case sweep.UnitRetried:
				s.metrics.UnitsRetried++
			case sweep.UnitStalled:
				s.metrics.UnitStalls++
			case sweep.UnitPoisoned:
				s.metrics.UnitsPoisoned++
			case sweep.JournalDegraded:
				s.metrics.CheckpointDegraded++
			}
			s.mu.Unlock()
		},
	}
	err = sweep.RunUnits(jctx, units, opt, func(u sweep.Unit, st []cache.Stats) {
		copy(stats[u.Base:], st)
	})
	if err == nil {
		return &WorkloadResult{Workload: name, Rows: RowsFor(cfgs, stats)}, nil, false
	}
	if ctx.Err() != nil {
		return nil, nil, true
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return nil, &Failure{Workload: name, Error: "deadline exceeded"}, false
	}
	f := &Failure{Workload: name, Error: err.Error(), Storage: vfs.IsStorageFault(err)}
	var ue *resilience.UnitError
	if errors.As(err, &ue) {
		f.Unit = ue.Unit
		f.Attempts = ue.Attempts
	}
	var pe *sweep.PoisonedError
	if errors.As(err, &pe) {
		// Quarantined units: name them so the client knows exactly what
		// is missing from the results and will be skipped on resubmit.
		//simlint:allow determinism keys are sorted before use
		for unit := range pe.Units {
			f.Poisoned = append(f.Poisoned, unit)
		}
		sort.Strings(f.Poisoned)
	}
	return nil, f, false
}
