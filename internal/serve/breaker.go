package serve

import (
	"time"
)

// tenantBreaker is the per-tenant storage-fault circuit breaker. When a
// tenant's jobs keep failing on storage faults (a broken state volume,
// a full disk the degrade paths could not absorb), re-admitting more of
// that tenant's jobs just burns workers on a disk that cannot serve
// them. After BreakerThreshold consecutive storage-fault jobs the
// breaker opens: the tenant's submits are shed with 503 and an honest
// Retry-After equal to the remaining cooldown. One probe job is
// admitted after the cooldown; a clean job closes the breaker, another
// storage-fault job reopens it immediately.
type tenantBreaker struct {
	// consecutive counts the tenant's storage-fault jobs since its last
	// clean one.
	consecutive int
	// openUntil is when the cooldown ends (zero when closed).
	openUntil time.Time
}

// breakerWaitLocked returns the remaining cooldown for the tenant and
// whether its breaker is currently open. Caller holds mu.
func (s *Server) breakerWaitLocked(tenant string) (time.Duration, bool) {
	b, ok := s.breakers[tenant]
	if !ok || b.openUntil.IsZero() {
		return 0, false
	}
	wait := b.openUntil.Sub(s.now())
	if wait <= 0 {
		// Cooldown over: half-open. The next submit is the probe; the
		// job outcome decides whether the breaker closes or reopens.
		b.openUntil = time.Time{}
		return 0, false
	}
	return wait, true
}

// recordJobStorageOutcomeLocked feeds one terminal job into its
// tenant's breaker: storageFault says whether the job ended with at
// least one storage-fault failure. Caller holds mu.
func (s *Server) recordJobStorageOutcomeLocked(tenant string, storageFault bool) {
	if !storageFault {
		if b, ok := s.breakers[tenant]; ok {
			b.consecutive = 0
			b.openUntil = time.Time{}
		}
		return
	}
	b, ok := s.breakers[tenant]
	if !ok {
		b = &tenantBreaker{}
		s.breakers[tenant] = b
	}
	b.consecutive++
	if b.consecutive >= s.cfg.BreakerThreshold {
		b.openUntil = s.now().Add(s.cfg.BreakerCooldown)
		s.metrics.BreakerOpens++
		s.logf("tenant %s: circuit breaker open for %s after %d consecutive storage-fault job(s)",
			tenant, s.cfg.BreakerCooldown, b.consecutive)
	}
}
