package serve

import (
	"fmt"
	"time"
)

// Rejection is a shed submit: the 503 body. RetryAfterMs is the
// jittered backoff hint; the HTTP layer also rounds it up into the
// standard Retry-After header.
type Rejection struct {
	Reason       string `json:"error"`
	RetryAfterMs int64  `json:"retry_after_ms"`
}

// retrySeconds rounds the hint up to whole seconds for the
// Retry-After header (minimum 1).
func (r *Rejection) retrySeconds() int {
	sec := int((r.RetryAfterMs + 999) / 1000)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// pendingLocked counts admitted-but-unfinished jobs, total and for one
// tenant. Caller holds mu.
func (s *Server) pendingLocked(tenant string) (total, forTenant int) {
	for _, j := range s.jobs {
		if j.State.Terminal() {
			continue
		}
		total++
		if j.Tenant == tenant {
			forTenant++
		}
	}
	return total, forTenant
}

// retryAfterLocked estimates when capacity should free up: the depth
// of the queue ahead of the caller divided across the job workers,
// priced at the EWMA job duration, clamped to [250ms, 30s] and
// jittered ±25% so a rejected fleet of clients does not return in
// lockstep (the thundering-herd half of the paper's bounded-buffer
// lesson). Caller holds mu.
func (s *Server) retryAfterLocked(queued int) int64 {
	avg := s.avgJobNs
	if avg <= 0 {
		avg = float64(500 * time.Millisecond)
	}
	waves := float64(queued)/float64(s.cfg.JobWorkers) + 1
	est := avg * waves
	if min := float64(250 * time.Millisecond); est < min {
		est = min
	}
	if max := float64(30 * time.Second); est > max {
		est = max
	}
	est *= 0.75 + 0.5*s.rng.Float64()
	return int64(est / float64(time.Millisecond))
}

// observeJobLocked folds a finished job's duration into the EWMA that
// prices Retry-After hints. Caller holds mu.
func (s *Server) observeJobLocked(d time.Duration) {
	if d <= 0 {
		return
	}
	if s.avgJobNs == 0 {
		s.avgJobNs = float64(d)
		return
	}
	s.avgJobNs = 0.8*s.avgJobNs + 0.2*float64(d)
}

// Submit validates and admits one sweep job. Exactly one of the three
// returns is meaningful: a status (admitted, or deduplicated onto an
// existing job), a rejection (load shed / draining — the 503 path), or
// an error (invalid spec — the 400 path).
//
// Admission is durable before it is visible: the job journal is
// flushed before Submit returns, so a client that got its 202 can
// SIGKILL the server and still find the job after restart.
func (s *Server) Submit(spec JobSpec) (JobStatus, *Rejection, error) {
	spec.normalize()
	if err := spec.validate(s.cfg.MaxConfigs); err != nil {
		return JobStatus{}, nil, err
	}
	if s.cfg.MaxEvents > 0 && (spec.Events == 0 || spec.Events > s.cfg.MaxEvents) {
		spec.Events = s.cfg.MaxEvents
	}
	cfgs, err := spec.Configs()
	if err != nil {
		return JobStatus{}, nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	if spec.RequestID != "" {
		if j, ok := s.byRequest[requestKey(spec.Tenant, spec.RequestID)]; ok {
			s.metrics.Deduplicated++
			return j.status(false), nil, nil
		}
	}
	if s.draining {
		s.metrics.RejectedDraining++
		return JobStatus{}, &Rejection{
			Reason:       "server is draining; resubmit after restart",
			RetryAfterMs: s.retryAfterLocked(0) + s.cfg.DrainGrace.Milliseconds(),
		}, nil
	}
	if wait, open := s.breakerWaitLocked(spec.Tenant); open {
		// The tenant's recent jobs kept dying on storage faults;
		// shedding with the remaining cooldown is more honest than
		// admitting a job onto a disk that keeps eating them.
		s.metrics.RejectedBreaker++
		return JobStatus{}, &Rejection{
			Reason: fmt.Sprintf("tenant %s circuit breaker open after repeated storage faults (cooldown %s)",
				spec.Tenant, wait.Round(time.Millisecond)),
			RetryAfterMs: wait.Milliseconds(),
		}, nil
	}
	total, forTenant := s.pendingLocked(spec.Tenant)
	if total >= s.cfg.Queue {
		s.metrics.RejectedQueue++
		return JobStatus{}, &Rejection{
			Reason:       fmt.Sprintf("run queue full (%d jobs pending)", total),
			RetryAfterMs: s.retryAfterLocked(total),
		}, nil
	}
	if forTenant >= s.cfg.PerTenant {
		s.metrics.RejectedTenant++
		return JobStatus{}, &Rejection{
			Reason:       fmt.Sprintf("tenant %s has %d jobs pending (cap %d)", spec.Tenant, forTenant, s.cfg.PerTenant),
			RetryAfterMs: s.retryAfterLocked(forTenant),
		}, nil
	}

	s.seq++
	j := &job{
		ID:         fmt.Sprintf("j%06d", s.seq),
		Tenant:     spec.Tenant,
		RequestID:  spec.RequestID,
		Spec:       spec,
		State:      StateQueued,
		UnitsTotal: len(spec.Workloads) * unitsPerWorkload(len(cfgs)),
	}
	s.jobs = append(s.jobs, j)
	s.byID[j.ID] = j
	if j.RequestID != "" {
		s.byRequest[requestKey(j.Tenant, j.RequestID)] = j
	}
	//simlint:allow lockheld durable-before-visible: the admission record must reach the journal under mu, before any contender can observe the job
	if err := s.persistLocked(); err != nil { //simlint:allow errflow the rollback below sheds the request; persistLocked already logged the cause and the client only needs the rejection
		// Admission must be durable before it is visible: roll the job
		// back and shed the request rather than acknowledge state a
		// crash would forget.
		s.jobs = s.jobs[:len(s.jobs)-1]
		delete(s.byID, j.ID)
		if j.RequestID != "" {
			delete(s.byRequest, requestKey(j.Tenant, j.RequestID))
		}
		s.seq--
		return JobStatus{}, &Rejection{
			Reason:       "job journal unavailable; admission refused",
			RetryAfterMs: s.retryAfterLocked(total),
		}, nil
	}
	s.metrics.Accepted++
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return j.status(false), nil, nil
}
