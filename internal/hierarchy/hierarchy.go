// Package hierarchy composes a two-level memory hierarchy around the
// first-level data cache: L1 → (optional write cache) → L2 → memory.
// The paper assumes "two or more levels of caching" (§1); this package
// provides that second level and the measurement points for the traffic
// "out the back" of the first-level cache that §5 characterizes.
package hierarchy

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
	"cachewrite/internal/writecache"
)

// Config describes the hierarchy.
type Config struct {
	// L1 is the first-level data cache configuration.
	L1 cache.Config
	// WriteCache, if non-nil, places a write cache between L1 and L2.
	// Only sensible when L1 is write-through (as in the paper's Fig 6).
	WriteCache *writecache.Config
	// VictimMode additionally runs the write cache as a victim cache
	// (the paper notes the two structures can be merged, citing Jouppi
	// 1990): clean L1 victims are captured and L1 line fetches that hit
	// a captured victim skip the L2. Requires WriteCache with a line
	// size equal to L1's.
	VictimMode bool
	// L2, if non-nil, adds a second-level cache. When nil the back side
	// of L1 (or the write cache) talks straight to memory.
	L2 *cache.Config
	// Inclusive enforces multi-level inclusion: an L2 eviction
	// back-invalidates any L1 lines it covered, with L1 dirty data
	// merged into the outgoing victim. Requires an L2.
	Inclusive bool
}

// Validate reports whether the configuration is realizable.
func (c Config) Validate() error {
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("hierarchy: L1: %w", err)
	}
	if c.WriteCache != nil {
		if err := c.WriteCache.Validate(); err != nil {
			return fmt.Errorf("hierarchy: write cache: %w", err)
		}
		if c.L1.WriteHit != cache.WriteThrough {
			return fmt.Errorf("hierarchy: a write cache requires a write-through L1 (got %s)", c.L1.WriteHit)
		}
	}
	if c.VictimMode {
		if c.WriteCache == nil {
			return fmt.Errorf("hierarchy: victim mode requires a write cache")
		}
		if c.WriteCache.LineSize != c.L1.LineSize {
			return fmt.Errorf("hierarchy: victim mode needs write-cache lines (%dB) matching L1 lines (%dB)",
				c.WriteCache.LineSize, c.L1.LineSize)
		}
	}
	if c.Inclusive && c.L2 == nil {
		return fmt.Errorf("hierarchy: inclusion requires an L2")
	}
	if c.L2 != nil {
		if err := c.L2.Validate(); err != nil {
			return fmt.Errorf("hierarchy: L2: %w", err)
		}
		if c.L2.LineSize < c.L1.LineSize {
			return fmt.Errorf("hierarchy: L2 line size %dB smaller than L1's %dB", c.L2.LineSize, c.L1.LineSize)
		}
		if c.L2.Size < c.L1.Size {
			return fmt.Errorf("hierarchy: L2 size %dB smaller than L1's %dB (inclusion impossible)", c.L2.Size, c.L1.Size)
		}
	}
	return nil
}

// Stats aggregates the hierarchy's traffic counters.
type Stats struct {
	// L1ToL2Transactions counts transactions leaving the L1 complex
	// (after write-cache merging): line fetches, dirty write-backs, and
	// write-through words or write-cache evictions.
	L1ToL2Transactions uint64
	// L1ToL2Bytes is the same traffic in bytes (whole-line write-backs).
	L1ToL2Bytes uint64
	// L2ToMemTransactions and L2ToMemBytes count traffic at the back of
	// the L2 (zero when no L2 is configured). L2ToMemBytes charges
	// write-backs their full line size, matching a memory port without
	// sub-block write capability.
	L2ToMemTransactions uint64
	L2ToMemBytes        uint64
	// L2ToMemWritebacks counts the write-back transactions within
	// L2ToMemTransactions; L2ToMemWritebackBytes is their full-line
	// share of L2ToMemBytes and L2ToMemDirtyBytes the bytes actually
	// dirty in those victims, so sub-block dirty-write-back accounting
	// (bus.Config.SubblockWriteback) is exact at the L2 backside too.
	L2ToMemWritebacks     uint64
	L2ToMemWritebackBytes uint64
	L2ToMemDirtyBytes     uint64
	// VictimHits counts L1 line fetches satisfied by the write cache in
	// victim mode (each one is an avoided L1->L2 transaction).
	VictimHits uint64
	// BackInvalidations counts L1 lines invalidated to preserve
	// inclusion when the L2 evicted; InclusionDirtyBytes is the L1 dirty
	// data merged into outgoing L2 victims in the process.
	BackInvalidations   uint64
	InclusionDirtyBytes uint64
}

// L2ToMemBytesSubblock returns the L2 back-side byte traffic with
// write-backs charged only their dirty bytes — the traffic a memory
// port with sub-block write capability would carry
// (bus.Config.SubblockWriteback at the L2 backside).
func (s Stats) L2ToMemBytesSubblock() uint64 {
	return s.L2ToMemBytes - s.L2ToMemWritebackBytes + s.L2ToMemDirtyBytes
}

// Hierarchy is a composed simulator. Drive it with Access/AccessTrace
// and read the per-level statistics afterwards.
type Hierarchy struct {
	cfg Config
	l1  *cache.Cache
	wc  *writecache.Cache
	l2  *cache.Cache

	stats Stats
}

// New builds the hierarchy.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg}
	var err error
	if h.l1, err = cache.New(cfg.L1); err != nil {
		return nil, err
	}
	if cfg.WriteCache != nil {
		if h.wc, err = writecache.New(*cfg.WriteCache); err != nil {
			return nil, err
		}
		h.wc.SetOnEvict(func(lineAddr uint32) {
			h.stats.L1ToL2Transactions++
			h.stats.L1ToL2Bytes += uint64(h.wc.LineSize())
			if h.l2 != nil {
				h.l2.Access(trace.Event{Addr: lineAddr, Size: uint8(h.wc.LineSize()), Kind: trace.Write})
			}
		})
	}
	if cfg.L2 != nil {
		if h.l2, err = cache.New(*cfg.L2); err != nil {
			return nil, err
		}
		h.l2.SetBackside(&memSink{h: h})
	}
	h.l1.SetBackside(&l1Sink{h: h})
	return h, nil
}

// Access simulates one event through the hierarchy.
func (h *Hierarchy) Access(e trace.Event) { h.l1.Access(e) }

// AccessTrace simulates the whole trace.
func (h *Hierarchy) AccessTrace(t *trace.Trace) {
	for _, e := range t.Events {
		h.l1.Access(e)
	}
}

// Flush drains dirty state from every level (flush-stop accounting).
func (h *Hierarchy) Flush() {
	h.l1.Flush()
	if h.wc != nil {
		h.wc.Drain()
	}
	if h.l2 != nil {
		h.l2.Flush()
	}
}

// L1 returns the first-level cache (for its statistics).
func (h *Hierarchy) L1() *cache.Cache { return h.l1 }

// L2 returns the second-level cache, or nil.
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// WriteCache returns the write cache, or nil.
func (h *Hierarchy) WriteCache() *writecache.Cache { return h.wc }

// Stats returns the hierarchy-level traffic counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// l1Sink receives L1 back-side traffic, routes write words through the
// write cache when present, and forwards everything to the L2.
type l1Sink struct{ h *Hierarchy }

func (s *l1Sink) FetchLine(addr uint32, size int) {
	h := s.h
	if h.cfg.VictimMode && h.wc.ProbeVictim(addr, uint8(size)) {
		// The line is a captured victim: refill from the write cache and
		// skip the lower level entirely.
		h.stats.VictimHits++
		return
	}
	h.stats.L1ToL2Transactions++
	h.stats.L1ToL2Bytes += uint64(size)
	if h.l2 != nil {
		h.l2.Access(trace.Event{Addr: addr, Size: uint8(size), Kind: trace.Read})
	}
}

func (s *l1Sink) WritebackLine(addr uint32, size, dirtyBytes int) {
	h := s.h
	h.stats.L1ToL2Transactions++
	h.stats.L1ToL2Bytes += uint64(size)
	if h.l2 != nil {
		h.l2.Access(trace.Event{Addr: addr, Size: uint8(size), Kind: trace.Write})
	}
}

func (s *l1Sink) WriteWord(addr uint32, size uint8) {
	h := s.h
	if h.wc != nil {
		// Only write-cache evictions proceed to the next level; the
		// SetOnEvict handler registered in New accounts them.
		h.wc.Write(addr, size)
		return
	}
	h.stats.L1ToL2Transactions++
	h.stats.L1ToL2Bytes += uint64(size)
	if h.l2 != nil {
		h.l2.Access(trace.Event{Addr: addr, Size: size, Kind: trace.Write})
	}
}

// ObserveVictim captures clean L1 victims into the write cache when
// victim mode is on. (Dirty victims cannot occur behind a write-through
// L1.) Evictions forced by the allocation are accounted by the write
// cache's SetOnEvict handler.
func (s *l1Sink) ObserveVictim(addr uint32, size, dirtyBytes int) {
	h := s.h
	if !h.cfg.VictimMode || dirtyBytes != 0 {
		return
	}
	h.wc.AllocateVictim(addr)
}

// memSink counts traffic at the back of the L2 and, in inclusive mode,
// back-invalidates the L1 on L2 evictions.
type memSink struct{ h *Hierarchy }

// ObserveVictim implements cache.VictimObserver for the L2: every L2
// victim (clean or dirty) back-invalidates its L1 cover when inclusion
// is enforced.
func (s *memSink) ObserveVictim(addr uint32, size, dirtyBytes int) {
	h := s.h
	if !h.cfg.Inclusive {
		return
	}
	lines, l1Dirty := h.l1.InvalidateRange(addr, size)
	h.stats.BackInvalidations += uint64(lines)
	h.stats.InclusionDirtyBytes += uint64(l1Dirty)
}

func (s *memSink) FetchLine(addr uint32, size int) {
	s.h.stats.L2ToMemTransactions++
	s.h.stats.L2ToMemBytes += uint64(size)
}

func (s *memSink) WritebackLine(addr uint32, size, dirtyBytes int) {
	s.h.stats.L2ToMemTransactions++
	s.h.stats.L2ToMemBytes += uint64(size)
	s.h.stats.L2ToMemWritebacks++
	s.h.stats.L2ToMemWritebackBytes += uint64(size)
	s.h.stats.L2ToMemDirtyBytes += uint64(dirtyBytes)
}

func (s *memSink) WriteWord(addr uint32, size uint8) {
	s.h.stats.L2ToMemTransactions++
	s.h.stats.L2ToMemBytes += uint64(size)
}
