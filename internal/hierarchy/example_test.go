package hierarchy_test

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/hierarchy"
	"cachewrite/internal/synth"
	"cachewrite/internal/writecache"
)

// Example composes the paper's Fig 6 organization: a write-through L1
// with a five-entry write cache in front of an L2, and shows how much
// write traffic the write cache absorbs.
func Example() {
	t, err := synth.HotCold(1, 20000, 8, 16, 1<<18, 85, 40)
	if err != nil {
		panic(err)
	}
	l2 := cache.Config{Size: 256 << 10, LineSize: 64, Assoc: 4,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
	run := func(wc *writecache.Config) uint64 {
		h, err := hierarchy.New(hierarchy.Config{
			L1: cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
				WriteHit: cache.WriteThrough, WriteMiss: cache.FetchOnWrite},
			WriteCache: wc,
			L2:         &l2,
		})
		if err != nil {
			panic(err)
		}
		h.AccessTrace(t)
		return h.Stats().L1ToL2Transactions
	}
	plain := run(nil)
	cached := run(&writecache.Config{Entries: 5, LineSize: 8})
	fmt.Printf("write cache removes %.0f%% of L1->L2 transactions\n",
		100*(1-float64(cached)/float64(plain)))
	// Output:
	// write cache removes 31% of L1->L2 transactions
}
