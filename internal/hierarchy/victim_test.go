package hierarchy

import (
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
	"cachewrite/internal/writecache"
)

func victimCfg(on bool) Config {
	return Config{
		L1: cache.Config{Size: 256, LineSize: 16, Assoc: 1,
			WriteHit: cache.WriteThrough, WriteMiss: cache.FetchOnWrite},
		WriteCache: &writecache.Config{Entries: 4, LineSize: 16},
		VictimMode: on,
	}
}

func TestVictimModeValidation(t *testing.T) {
	if err := victimCfg(true).Validate(); err != nil {
		t.Fatalf("good victim config rejected: %v", err)
	}
	// Victim mode without a write cache.
	bad := victimCfg(true)
	bad.WriteCache = nil
	if err := bad.Validate(); err == nil {
		t.Error("victim mode without write cache accepted")
	}
	// Mismatched line sizes.
	bad = victimCfg(true)
	bad.WriteCache = &writecache.Config{Entries: 4, LineSize: 8}
	if err := bad.Validate(); err == nil {
		t.Error("victim mode with 8B write-cache lines behind 16B L1 lines accepted")
	}
}

// TestVictimModeCapturesConflictMisses: two lines that conflict in the
// tiny direct-mapped L1 ping-pong; the victim cache absorbs the misses
// after the first round trip.
func TestVictimModeCapturesConflictMisses(t *testing.T) {
	a, b := uint32(0x000), uint32(0x100) // same set in a 256B DM cache

	run := func(victim bool) (victimHits, transactions uint64) {
		h := mustNew(t, victimCfg(victim))
		for i := 0; i < 10; i++ {
			h.Access(trace.Event{Addr: a, Size: 4, Kind: trace.Read})
			h.Access(trace.Event{Addr: b, Size: 4, Kind: trace.Read})
		}
		return h.Stats().VictimHits, h.Stats().L1ToL2Transactions
	}

	offHits, offTx := run(false)
	onHits, onTx := run(true)
	if offHits != 0 {
		t.Fatalf("victim hits without victim mode: %d", offHits)
	}
	// 20 accesses ping-ponging: first two fetch from below; every later
	// refill should come from the victim cache.
	if onHits < 17 {
		t.Errorf("victim hits = %d, want >= 17", onHits)
	}
	if onTx >= offTx {
		t.Errorf("victim mode did not cut L1->L2 transactions: %d vs %d", onTx, offTx)
	}
}

// TestVictimModeIgnoresDirtyEntries: a line known to the write cache
// only through a word write (partial line) must not satisfy a refill.
func TestVictimModeIgnoresDirtyEntries(t *testing.T) {
	h := mustNew(t, victimCfg(true))
	a := uint32(0x000)
	// Write-miss at a: fetch-on-write fills L1, the written word enters
	// the write cache as a dirty (partial) entry.
	h.Access(trace.Event{Addr: a, Size: 4, Kind: trace.Write})
	// Evict a with a conflicting read; a's clean victim IS captured, so
	// to test the dirty-entry path use a third line never read before:
	b := uint32(0x100)
	h.Access(trace.Event{Addr: b, Size: 4, Kind: trace.Write}) // dirty wc entry for b
	base := h.Stats().VictimHits
	// b is resident in L1 (fetch-on-write); evict it via a conflicting
	// access c, then re-read b: the victim cache has b both as a dirty
	// write entry and as a captured clean victim — the clean capture
	// happens at eviction, so this hit is legitimate.
	c := uint32(0x200)
	h.Access(trace.Event{Addr: c, Size: 4, Kind: trace.Read})
	h.Access(trace.Event{Addr: b, Size: 4, Kind: trace.Read})
	_ = base
	// The core invariant: ProbeVictim never fires for lines whose only
	// write-cache presence is a dirty word entry. Exercise it directly.
	wc, err := writecache.New(writecache.Config{Entries: 4, LineSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	wc.Write(0x40, 4)
	if wc.ProbeVictim(0x40, 16) {
		t.Error("dirty partial entry served a full-line refill")
	}
	wc.AllocateVictim(0x40)
	if !wc.ProbeVictim(0x40, 16) {
		t.Error("clean captured victim not served")
	}
}

func inclusiveCfg(on bool) Config {
	l2 := cache.Config{Size: 1 << 10, LineSize: 64, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
	return Config{
		L1: cache.Config{Size: 256, LineSize: 16, Assoc: 1,
			WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite},
		L2:        &l2,
		Inclusive: on,
	}
}

func TestInclusionValidation(t *testing.T) {
	cfg := inclusiveCfg(true)
	cfg.L2 = nil
	if cfg.Validate() == nil {
		t.Error("inclusion without L2 accepted")
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	h := mustNew(t, inclusiveCfg(true))
	// Dirty an L1 line at 0x100 (inside L2 line 0x100-0x13f, set 4).
	h.Access(wr(0x100))
	if !h.L1().Probe(0x100).Present {
		t.Fatal("line not resident")
	}
	// Evict the covering L2 line with an address that conflicts in the
	// L2 (1KB/64B: set 4, as 0x510/64 = 20 ≡ 4 mod 16) but NOT in the
	// 256B/16B L1 (0x510/16 = 81 ≡ 1 mod 16 vs 0x100's set 0).
	h.Access(rd(0x510))
	if h.L1().Probe(0x100).Present {
		t.Error("inclusion violated: L1 line survived its L2 eviction")
	}
	s := h.Stats()
	if s.BackInvalidations != 1 {
		t.Errorf("back invalidations = %d, want 1", s.BackInvalidations)
	}
	if s.InclusionDirtyBytes != 4 {
		t.Errorf("inclusion dirty bytes = %d, want 4", s.InclusionDirtyBytes)
	}
}

func TestNonInclusiveKeepsL1Lines(t *testing.T) {
	h := mustNew(t, inclusiveCfg(false))
	h.Access(wr(0x100))
	h.Access(rd(0x510)) // evicts the covering L2 line, not the L1 line
	if !h.L1().Probe(0x100).Present {
		t.Error("non-inclusive hierarchy invalidated an L1 line")
	}
	if h.Stats().BackInvalidations != 0 {
		t.Error("phantom back-invalidations")
	}
}

// TestInclusionHolds: after a mixed workload, every resident L1 line is
// covered by a resident L2 line.
func TestInclusionHolds(t *testing.T) {
	h := mustNew(t, inclusiveCfg(true))
	for i := 0; i < 5000; i++ {
		addr := uint32((i*313)%(1<<13)) &^ 3
		if i%3 == 0 {
			h.Access(wr(addr))
		} else {
			h.Access(rd(addr))
		}
	}
	// Probe every possible L1-resident line address in the touched range
	// and check L2 coverage.
	for addr := uint32(0); addr < 1<<13; addr += 16 {
		if h.L1().Probe(addr).Present && !h.L2().Probe(addr).Present {
			t.Fatalf("L1 line %#x resident without L2 cover", addr)
		}
	}
}
