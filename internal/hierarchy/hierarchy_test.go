package hierarchy

import (
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
	"cachewrite/internal/writecache"
)

func l1cfg(hit cache.WriteHitPolicy) cache.Config {
	return cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1,
		WriteHit: hit, WriteMiss: cache.FetchOnWrite}
}

func l2cfg() *cache.Config {
	return &cache.Config{Size: 16 << 10, LineSize: 32, Assoc: 2,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
}

func rd(addr uint32) trace.Event { return trace.Event{Addr: addr, Size: 4, Kind: trace.Read} }
func wr(addr uint32) trace.Event { return trace.Event{Addr: addr, Size: 4, Kind: trace.Write} }

// mustNew builds a hierarchy from a known-good test configuration.
func mustNew(t *testing.T, cfg Config) *Hierarchy {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestValidate(t *testing.T) {
	good := Config{L1: l1cfg(cache.WriteBack), L2: l2cfg()}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"bad L1", Config{L1: cache.Config{}}},
		{"write cache on write-back L1", Config{
			L1:         l1cfg(cache.WriteBack),
			WriteCache: &writecache.Config{Entries: 5, LineSize: 8},
		}},
		{"bad write cache", Config{
			L1:         l1cfg(cache.WriteThrough),
			WriteCache: &writecache.Config{Entries: -1, LineSize: 8},
		}},
		{"bad L2", Config{L1: l1cfg(cache.WriteBack), L2: &cache.Config{}}},
		{"L2 line smaller than L1", Config{
			L1: l1cfg(cache.WriteBack),
			L2: &cache.Config{Size: 16 << 10, LineSize: 4, Assoc: 1,
				WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite},
		}},
		{"L2 smaller than L1", Config{
			L1: l1cfg(cache.WriteBack),
			L2: &cache.Config{Size: 512, LineSize: 16, Assoc: 1,
				WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite},
		}},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted", tc.name)
		}
	}
}

func TestNewPropagatesConfigError(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty (invalid) configuration")
	}
}

func TestBacksideCountsMatchL1(t *testing.T) {
	// Without a write cache, hierarchy transactions must equal the L1's
	// own back-side accounting (program execution only).
	h := mustNew(t, Config{L1: l1cfg(cache.WriteBack)})
	tr := &trace.Trace{}
	for i := 0; i < 500; i++ {
		tr.Append(rd(uint32(i*16) % 4096))
		tr.Append(wr(uint32(i*32) % 8192))
	}
	h.AccessTrace(tr)
	s1 := h.L1().Stats()
	if got, want := h.Stats().L1ToL2Transactions, s1.BacksideTransactions(); got != want {
		t.Errorf("hierarchy counted %d transactions, L1 says %d", got, want)
	}
	if got, want := h.Stats().L1ToL2Bytes, s1.BacksideBytes(false); got != want {
		t.Errorf("hierarchy counted %d bytes, L1 says %d", got, want)
	}
}

func TestL2SeesL1Misses(t *testing.T) {
	h := mustNew(t, Config{L1: l1cfg(cache.WriteBack), L2: l2cfg()})
	h.Access(rd(0x100))
	h.Access(rd(0x100)) // L1 hit: L2 silent
	l2 := h.L2().Stats()
	if l2.Reads != 1 {
		t.Fatalf("L2 saw %d reads, want 1", l2.Reads)
	}
	if l2.ReadMissEvents != 1 {
		t.Errorf("L2 read misses = %d, want 1", l2.ReadMissEvents)
	}
	// L2-to-memory traffic counted.
	if h.Stats().L2ToMemTransactions != 1 {
		t.Errorf("L2->mem transactions = %d, want 1", h.Stats().L2ToMemTransactions)
	}
	// Second L1 miss to a nearby line hits in the L2's 32B line.
	h.Access(rd(0x110))
	l2 = h.L2().Stats()
	if l2.ReadMissEvents != 1 {
		t.Errorf("nearby L1 miss should hit the L2's longer line (misses=%d)", l2.ReadMissEvents)
	}
}

func TestWriteThroughWordsReachL2(t *testing.T) {
	h := mustNew(t, Config{L1: l1cfg(cache.WriteThrough), L2: l2cfg()})
	h.Access(rd(0x100))
	h.Access(wr(0x100))
	l2 := h.L2().Stats()
	if l2.Writes != 1 {
		t.Errorf("L2 saw %d writes, want 1 (the written-through word)", l2.Writes)
	}
}

func TestDirtyVictimWritebackReachesL2(t *testing.T) {
	h := mustNew(t, Config{L1: l1cfg(cache.WriteBack), L2: l2cfg()})
	h.Access(wr(0x100))         // dirty line in L1 (fetch-on-write)
	h.Access(rd(0x100 + 1<<10)) // conflicting line evicts it
	l2 := h.L2().Stats()
	if l2.Writes != 1 {
		t.Errorf("L2 saw %d writes, want 1 (the victim write-back)", l2.Writes)
	}
}

func TestWriteCachePath(t *testing.T) {
	h := mustNew(t, Config{
		L1:         l1cfg(cache.WriteThrough),
		WriteCache: &writecache.Config{Entries: 2, LineSize: 8},
		L2:         l2cfg(),
	})
	// Fill the line so writes hit in L1 and pass through to the write
	// cache.
	h.Access(rd(0x100))
	h.Access(wr(0x100))
	h.Access(wr(0x104)) // merges in the write cache
	// No write-cache eviction yet: the only L1->L2 traffic is the fetch.
	if got := h.Stats().L1ToL2Transactions; got != 1 {
		t.Fatalf("transactions = %d, want 1 (fetch only; writes merged)", got)
	}
	// Two more distinct lines force an eviction of line 0x100.
	h.Access(rd(0x200))
	h.Access(wr(0x200))
	h.Access(rd(0x300))
	h.Access(wr(0x300))
	st := h.Stats()
	// Fetches: 3 reads -> 3. Write-cache evictions: 1 (line 0x100).
	if st.L1ToL2Transactions != 4 {
		t.Errorf("transactions = %d, want 4 (3 fetches + 1 write-cache eviction)", st.L1ToL2Transactions)
	}
	if h.WriteCache() == nil {
		t.Error("WriteCache accessor nil")
	}
	// The evicted write's address (0x100) must have reached the L2 as a
	// write.
	if h.L2().Stats().Writes != 1 {
		t.Errorf("L2 writes = %d, want 1", h.L2().Stats().Writes)
	}
}

func TestFlushDrainsAllLevels(t *testing.T) {
	h := mustNew(t, Config{
		L1:         l1cfg(cache.WriteThrough),
		WriteCache: &writecache.Config{Entries: 8, LineSize: 8},
		L2:         l2cfg(),
	})
	h.Access(wr(0x100)) // write miss: fetch + write through into WC
	before := h.Stats().L1ToL2Transactions
	h.Flush()
	after := h.Stats().L1ToL2Transactions
	if after <= before {
		t.Error("flush did not drain the write cache")
	}
	if h.L1().ResidentLines() != 0 {
		t.Error("L1 not flushed")
	}
	if h.L2().ResidentLines() != 0 {
		t.Error("L2 not flushed")
	}
}

func TestNoL2IsLegal(t *testing.T) {
	h := mustNew(t, Config{L1: l1cfg(cache.WriteBack)})
	h.Access(rd(0x100))
	if h.L2() != nil {
		t.Error("L2 should be nil")
	}
	if h.Stats().L2ToMemTransactions != 0 {
		t.Error("phantom L2 traffic")
	}
	h.Flush() // must not panic
}

// TestL2SubblockWritebackAccounting is the regression test for the
// memSink accounting bug: L2 victim write-backs used to charge only
// the full line size, discarding the dirty-byte count, so sub-block
// write-back traffic could not be computed at the L2 backside. A
// partially dirty L2 victim must show dirty < size.
func TestL2SubblockWritebackAccounting(t *testing.T) {
	l2 := cache.Config{Size: 128, LineSize: 64, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
	h := mustNew(t, Config{
		L1: cache.Config{Size: 64, LineSize: 16, Assoc: 1,
			WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite},
		L2: &l2,
	})
	// Dirty L1 line 0x0, then evict it (0x40 shares L1 set 0): the
	// write-back dirties 16 of the 64 bytes of L2 line 0x0.
	h.Access(wr(0x0))
	h.Access(wr(0x40))
	// 0x80 shares L2 set 0 with line 0x0: the fetch evicts the
	// partially dirty L2 victim.
	h.Access(rd(0x80))
	hs := h.Stats()
	if hs.L2ToMemWritebacks != 1 {
		t.Fatalf("L2->mem writebacks = %d, want 1", hs.L2ToMemWritebacks)
	}
	if hs.L2ToMemWritebackBytes != 64 {
		t.Errorf("writeback bytes = %d, want full line 64", hs.L2ToMemWritebackBytes)
	}
	if hs.L2ToMemDirtyBytes != 16 {
		t.Errorf("dirty bytes = %d, want 16 (one L1 line of the victim)", hs.L2ToMemDirtyBytes)
	}
	if hs.L2ToMemDirtyBytes >= hs.L2ToMemWritebackBytes {
		t.Error("partially dirty victim should show dirty < size")
	}
	if got, want := hs.L2ToMemBytesSubblock(), hs.L2ToMemBytes-64+16; got != want {
		t.Errorf("subblock bytes = %d, want %d", got, want)
	}
}
