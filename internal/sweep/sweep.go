// Package sweep implements single-pass gang simulation: many cache
// configurations driven by one walk over a shared trace, plus a bounded
// parallel scheduler for running whole sweeps.
//
// Every figure in the paper's evaluation is a sweep — the same six
// traces replayed across dozens of (size, line, policy) points. Walking
// the event slice once per configuration reads the same trace memory N
// times; the gang engine reads it once and fans each event out to a
// gang of cache instances. Large gangs are sharded so each
// (trace, config-shard) pair stays an independent unit of work for the
// scheduler, keeping all cores busy without giving up the single-pass
// memory behaviour within a unit.
//
// Caches simulated by a gang are completely independent, so gang
// results are bit-identical to simulating each configuration on its
// own (sweep_test.go pins this for every write-policy combination).
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
)

// DefaultShard is the default number of configurations driven by one
// gang pass. Large enough to amortize the per-event fan-out loop,
// small enough that a full paper sweep still splits into several times
// more units than cores.
const DefaultShard = 8

// Gang simulates every configuration over the trace in a single pass
// over its events, applying a final Flush to each cache (the
// accounting the paper's flush-stop methodology and Env.CacheStats
// use). It returns one Stats per configuration, in input order. The
// results are bit-identical to running each configuration alone.
func Gang(t *trace.Trace, cfgs []cache.Config) ([]cache.Stats, error) {
	caches := make([]*cache.Cache, len(cfgs))
	for i, cfg := range cfgs {
		c, err := cache.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s on %s: %w", cfg, t.Name, err)
		}
		caches[i] = c
	}
	for _, e := range t.Events {
		for _, c := range caches {
			c.Access(e)
		}
	}
	out := make([]cache.Stats, len(caches))
	for i, c := range caches {
		c.Flush()
		out[i] = c.Stats()
	}
	return out, nil
}

// Unit is one independent unit of scheduled work: one trace against a
// shard of configurations.
type Unit struct {
	// TraceIndex identifies the trace within the caller's trace slice
	// (carried through so collectors can file results).
	TraceIndex int
	// Trace is the reference stream to replay.
	Trace *trace.Trace
	// Cfgs is the configuration shard simulated in one gang pass.
	Cfgs []cache.Config
	// Base is the index of Cfgs[0] within the caller's full
	// configuration slice.
	Base int
}

// Shard splits cfgs into shards of at most size configurations and
// pairs each with the trace, producing independent units. size < 1
// uses DefaultShard. The shards partition cfgs in order (unit i covers
// cfgs[i*size : (i+1)*size]).
func Shard(ti int, t *trace.Trace, cfgs []cache.Config, size int) []Unit {
	if size < 1 {
		size = DefaultShard
	}
	units := make([]Unit, 0, (len(cfgs)+size-1)/size)
	for base := 0; base < len(cfgs); base += size {
		end := base + size
		if end > len(cfgs) {
			end = len(cfgs)
		}
		units = append(units, Unit{TraceIndex: ti, Trace: t, Cfgs: cfgs[base:end], Base: base})
	}
	return units
}

// Run executes the units on a bounded worker pool and reports each
// unit's gang results through collect (which may be nil). Workers pull
// units from a shared atomic cursor, so there is no producer goroutine
// to strand: on the first error — or when ctx is cancelled — the
// remaining units are abandoned and Run returns promptly with that
// error. collect is called serially (under an internal lock), in
// completion order. workers < 1 means GOMAXPROCS.
func Run(ctx context.Context, units []Unit, workers int, collect func(Unit, []cache.Stats)) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		cursor   atomic.Int64
		errOnce  sync.Once
		firstErr error
		mu       sync.Mutex
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if gctx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(units) {
					return
				}
				u := units[i]
				stats, err := Gang(u.Trace, u.Cfgs)
				if err != nil {
					fail(err)
					return
				}
				if collect != nil {
					mu.Lock()
					collect(u, stats)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Options tunes a Sweep.
type Options struct {
	// Workers is the scheduler pool size; < 1 means GOMAXPROCS.
	Workers int
	// Shard is the number of configurations per gang pass; < 1 means
	// DefaultShard.
	Shard int
}

// Sweep runs every configuration over every trace with the gang engine
// on a bounded worker pool and returns stats indexed [trace][config],
// matching the input slices. It is the single-call form of
// Shard + Run for full cartesian sweeps.
func Sweep(ctx context.Context, traces []*trace.Trace, cfgs []cache.Config, opt Options) ([][]cache.Stats, error) {
	out := make([][]cache.Stats, len(traces))
	var units []Unit
	for ti, t := range traces {
		out[ti] = make([]cache.Stats, len(cfgs))
		units = append(units, Shard(ti, t, cfgs, opt.Shard)...)
	}
	err := Run(ctx, units, opt.Workers, func(u Unit, stats []cache.Stats) {
		copy(out[u.TraceIndex][u.Base:], stats)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
