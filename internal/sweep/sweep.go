// Package sweep implements single-pass gang simulation: many cache
// configurations driven by one walk over a shared trace, plus a bounded
// parallel scheduler for running whole sweeps.
//
// Every figure in the paper's evaluation is a sweep — the same six
// traces replayed across dozens of (size, line, policy) points. Walking
// the event slice once per configuration reads the same trace memory N
// times; the gang engine reads it once and fans each event out to a
// gang of cache instances. Large gangs are sharded so each
// (trace, config-shard) pair stays an independent unit of work for the
// scheduler, keeping all cores busy without giving up the single-pass
// memory behaviour within a unit.
//
// Caches simulated by a gang are completely independent, so gang
// results are bit-identical to simulating each configuration on its
// own (sweep_test.go pins this for every write-policy combination).
//
// Long sweeps are crash-safe: with Options.Checkpoint set, completed
// (trace, config-shard) units are journaled through
// internal/resilience, so a killed run re-invoked with the same sweep
// resumes mid-gang and finishes with byte-identical results
// (resume_test.go pins this). A heartbeat watchdog reports workers
// stalled past a soft deadline, and failed units are retried with
// backoff before the sweep surfaces a structured error.
package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"cachewrite/internal/cache"
	"cachewrite/internal/resilience"
	"cachewrite/internal/trace"
	"cachewrite/internal/vfs"
)

// DefaultShard is the default number of configurations driven by one
// gang pass. Large enough to amortize the per-event fan-out loop,
// small enough that a full paper sweep still splits into several times
// more units than cores.
const DefaultShard = 8

// Gang simulates every configuration over the trace in a single pass
// over its events, applying a final Flush to each cache (the
// accounting the paper's flush-stop methodology and Env.CacheStats
// use). It returns one Stats per configuration, in input order. The
// results are bit-identical to running each configuration alone.
func Gang(t *trace.Trace, cfgs []cache.Config) ([]cache.Stats, error) {
	return gang(context.Background(), t, cfgs, nil)
}

// pulseStride is how many trace events a gang processes between
// watchdog heartbeats and cancellation checks. Small enough for
// sub-second stall resolution, large enough to stay invisible in the
// hot loop.
const pulseStride = 8192

// gang is Gang with a heartbeat: every pulseStride events it beats the
// watchdog task (when non-nil) and polls ctx so cancellation lands
// mid-unit instead of only between units.
func gang(ctx context.Context, t *trace.Trace, cfgs []cache.Config, task *resilience.Task) ([]cache.Stats, error) {
	caches := make([]*cache.Cache, len(cfgs))
	for i, cfg := range cfgs {
		c, err := cache.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s on %s: %w", cfg, t.Name, err)
		}
		caches[i] = c
	}
	groups := groupByGeometry(caches)
	events := t.Events
	scratch := pulseStride
	if len(events) < scratch {
		scratch = len(events)
	}
	dec := make([]cache.Decoded, scratch)
	for start := 0; start < len(events); start += pulseStride {
		end := start + pulseStride
		if end > len(events) {
			end = len(events)
		}
		fanout(events[start:end], groups, dec)
		if task != nil {
			task.Beat()
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	out := make([]cache.Stats, len(caches))
	for i, c := range caches {
		c.Flush()
		out[i] = c.Stats()
	}
	return out, nil
}

// geomGroup is the subset of one gang sharing an address-decode
// geometry (cache.Geometry): one DecodeBatch serves every member, so
// the per-event address arithmetic is paid once per group per window
// instead of once per cache per event. In the paper sweep, each
// (size, line) point carries four policy configs, so a shard's decode
// cost is amortized 4× before the kernels even start.
type geomGroup struct {
	caches []*cache.Cache
}

// groupByGeometry buckets gang members by geometry key, preserving
// first-appearance group order and input order within each group, so
// the fan-out stays deterministic. Setup-time only — never in the hot
// loop.
func groupByGeometry(caches []*cache.Cache) []geomGroup {
	groups := make([]geomGroup, 0, len(caches))
	index := make(map[uint64]int, len(caches))
	for _, c := range caches {
		key := c.Geometry()
		i, ok := index[key]
		if !ok {
			i = len(groups)
			index[key] = i
			groups = append(groups, geomGroup{})
		}
		groups[i].caches = append(groups[i].caches, c)
	}
	return groups
}

// fanout is the gang inner loop: one pulse window is pre-decoded once
// per geometry group (hoisted line-number/tag/byte-mask computation
// into the dec scratch array) and every group member consumes the
// decoded batch through its specialized kernel. It dominates sweep
// wall-clock, so it is under the simlint zero-allocation contract
// together with cache.AccessBatch and cache.Access.
//
//simlint:hotpath
func fanout(events []trace.Event, groups []geomGroup, dec []cache.Decoded) {
	for _, g := range groups {
		g.caches[0].DecodeBatch(events, dec)
		for _, c := range g.caches {
			c.AccessBatch(events, dec)
		}
	}
}

// Unit is one independent unit of scheduled work: one trace against a
// shard of configurations.
type Unit struct {
	// TraceIndex identifies the trace within the caller's trace slice
	// (carried through so collectors can file results).
	TraceIndex int
	// Trace is the reference stream to replay.
	Trace *trace.Trace
	// Cfgs is the configuration shard simulated in one gang pass.
	Cfgs []cache.Config
	// Base is the index of Cfgs[0] within the caller's full
	// configuration slice.
	Base int
}

// Shard splits cfgs into shards of at most size configurations and
// pairs each with the trace, producing independent units. size < 1
// uses DefaultShard. The shards partition cfgs in order (unit i covers
// cfgs[i*size : (i+1)*size]).
func Shard(ti int, t *trace.Trace, cfgs []cache.Config, size int) []Unit {
	if size < 1 {
		size = DefaultShard
	}
	units := make([]Unit, 0, (len(cfgs)+size-1)/size)
	for base := 0; base < len(cfgs); base += size {
		end := base + size
		if end > len(cfgs) {
			end = len(cfgs)
		}
		units = append(units, Unit{TraceIndex: ti, Trace: t, Cfgs: cfgs[base:end], Base: base})
	}
	return units
}

// Key identifies the unit stably across runs of the same sweep: the
// journal files completed results under it.
func (u Unit) Key() string {
	return fmt.Sprintf("%s#%d/cfgs[%d:%d]", u.Trace.Name, u.TraceIndex, u.Base, u.Base+len(u.Cfgs))
}

// Run executes the units on a bounded worker pool and reports each
// unit's gang results through collect (which may be nil). Workers pull
// units from a shared atomic cursor, so there is no producer goroutine
// to strand: on the first error — or when ctx is cancelled — the
// remaining units are abandoned and Run returns promptly with that
// error. collect is called serially (under an internal lock), in
// completion order. workers < 1 means GOMAXPROCS.
func Run(ctx context.Context, units []Unit, workers int, collect func(Unit, []cache.Stats)) error {
	return RunUnits(ctx, units, Options{Workers: workers}, collect)
}

// EventKind classifies scheduler progress events.
type EventKind uint8

const (
	// UnitDone: a unit was freshly simulated and collected.
	UnitDone EventKind = iota
	// UnitRestored: a unit's results were recovered from the checkpoint
	// journal instead of being recomputed.
	UnitRestored
	// UnitRetried: a unit attempt failed and will be retried.
	UnitRetried
	// UnitStalled: the watchdog saw no heartbeat from a unit for longer
	// than the soft deadline.
	UnitStalled
	// JournalFallback: the checkpoint journal was corrupt or stale and
	// was (partially) discarded.
	JournalFallback
	// JournalDegraded: a checkpoint snapshot or cleanup failed. The
	// sweep continues — a checkpoint is an optimization, and losing one
	// costs recomputation, never correctness — but the degradation is
	// surfaced so operators see the disk misbehaving.
	JournalDegraded
	// UnitPoisoned: a unit exhausted its retry budget and was journaled
	// as poisoned (Options.Quarantine); the sweep skips it now and on
	// every resume instead of wedging the job on it forever.
	UnitPoisoned
)

// Event is one structured scheduler observation, delivered through
// Options.OnEvent.
type Event struct {
	// Kind says what happened.
	Kind EventKind
	// Unit is the affected unit's Key (empty for journal-level events).
	Unit string
	// Attempt is the failed attempt number for UnitRetried.
	Attempt int
	// Idle is the no-progress duration for UnitStalled.
	Idle time.Duration
	// Err carries the failure for UnitRetried, or context for
	// JournalFallback.
	Err error
	// Worker is the scheduler pool index that produced a UnitDone or
	// UnitRetried event (-1 for events with no owning worker, e.g.
	// UnitRestored and journal events). Exposed so tests and progress
	// UIs can observe the trace-affinity/work-stealing behaviour.
	Worker int
}

// Options tunes a Sweep.
type Options struct {
	// Workers is the scheduler pool size; < 1 means GOMAXPROCS.
	Workers int
	// Shard is the number of configurations per gang pass; < 1 means
	// DefaultShard.
	Shard int
	// Checkpoint, when non-empty, makes the sweep crash-safe: completed
	// unit results are journaled here (atomically, with CRC and
	// previous-snapshot fallback), and a later run of the same sweep
	// resumes from the journal instead of recomputing. The journal is
	// removed when the sweep completes.
	Checkpoint string
	// CheckpointEvery snapshots the journal after this many newly
	// completed units (default 4). Cancellation always flushes a final
	// snapshot regardless.
	CheckpointEvery int
	// SoftDeadline is the per-unit stall threshold for the worker-pool
	// watchdog: a unit making no progress for this long is reported via
	// OnEvent (UnitStalled). Zero disables the watchdog.
	SoftDeadline time.Duration
	// Retries is how many times a failed unit is re-attempted (with
	// exponential backoff) before the sweep fails with a structured
	// *resilience.UnitError. Zero means fail on the first error.
	Retries int
	// RetryBackoff is the wait before a unit's first retry, doubling on
	// each subsequent one (default 10ms).
	RetryBackoff time.Duration
	// OnEvent, when non-nil, receives structured progress events. It is
	// called under the scheduler's collect lock — keep it fast.
	OnEvent func(Event)
	// FS is the filesystem the checkpoint journal writes through; nil
	// means the real one. Fault-injection tests and the chaos harness
	// pass a vfs.Faulty to prove sweeps survive storage failures.
	FS vfs.FS
	// Quarantine enables poison-unit handling: a unit that exhausts its
	// retry budget is journaled as poisoned and skipped — now and on
	// resume — instead of failing the sweep. The sweep then completes
	// the remaining units and returns a *PoisonedError naming the
	// skipped units, keeping the checkpoint journal so a resubmission
	// does not re-grind the poison.
	Quarantine bool
}

// PoisonedError reports units journaled as poisoned: every other unit
// completed, but the named units exhausted their retry budget and their
// results are missing.
type PoisonedError struct {
	// Units maps each poisoned unit's Key to the failure that poisoned
	// it.
	Units map[string]string
}

func (e *PoisonedError) Error() string {
	keys := make([]string, 0, len(e.Units))
	//simlint:allow determinism keys are sorted before use
	for k := range e.Units {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return fmt.Sprintf("sweep: %d unit(s) poisoned after exhausting retries: %s",
		len(keys), strings.Join(keys, ", "))
}

// journalVersion is the sweep checkpoint schema version; bump it when
// journalState or cache.Stats changes shape.
const journalVersion = 2

// journalState is the persisted progress of a sweep: the fingerprint
// binding it to one exact (traces, configs, sharding) request, the
// completed units' results, and the units quarantined as poisoned.
type journalState struct {
	Fingerprint string                   `json:"fingerprint"`
	Done        map[string][]cache.Stats `json:"done"`
	// Poisoned maps unit keys to the failure that exhausted their retry
	// budget; resumed runs skip them instead of re-grinding.
	Poisoned map[string]string `json:"poisoned,omitempty"`
}

// fingerprint binds a journal to the exact sweep that wrote it: trace
// names and lengths, shard boundaries, and every configuration. Any
// difference — reordered traces, a changed axis, different sharding —
// changes the fingerprint, and the journal reads as stale.
func fingerprint(units []Unit) string {
	h := sha256.New()
	for _, u := range units {
		fmt.Fprintf(h, "%s|%d|%d|%d|", u.Trace.Name, u.Trace.Len(), u.TraceIndex, u.Base)
		for _, cfg := range u.Cfgs {
			fmt.Fprintf(h, "%s;", cfg)
		}
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// RunUnits is Run with the full option set: checkpoint/resume through
// the resilience journal, stall detection, and bounded retry. The
// collect callback (may be nil) is called serially; restored units are
// delivered through it before any fresh simulation starts.
func RunUnits(ctx context.Context, units []Unit, opt Options, collect func(Unit, []cache.Stats)) error {
	var mu sync.Mutex // serializes collect, state updates and OnEvent
	emit := func(e Event) {
		if opt.OnEvent != nil {
			mu.Lock()
			opt.OnEvent(e)
			mu.Unlock()
		}
	}

	// Load and replay the journal, if any.
	var journal *resilience.Journal[journalState]
	state := journalState{Done: map[string][]cache.Stats{}}
	if opt.Checkpoint != "" {
		jfs := opt.FS
		if jfs == nil {
			jfs = vfs.OS{}
		}
		journal = resilience.NewJournalFS[journalState](jfs, opt.Checkpoint, "sweep", journalVersion)
		fp := fingerprint(units)
		prev, info, err := journal.Load()
		if err != nil {
			return fmt.Errorf("sweep: checkpoint: %w", err)
		}
		for _, w := range info.Warnings {
			emit(Event{Kind: JournalFallback, Err: fmt.Errorf("%s", w), Worker: -1})
		}
		if info.Found && prev.Fingerprint == fp && prev.Done != nil {
			state = prev
		} else if info.Found {
			emit(Event{Kind: JournalFallback, Worker: -1,
				Err: fmt.Errorf("checkpoint %s belongs to a different sweep; starting fresh", opt.Checkpoint)})
		}
		state.Fingerprint = fp
	}
	if state.Poisoned == nil {
		state.Poisoned = map[string]string{}
	}
	var pending []Unit
	for _, u := range units {
		if cause, bad := state.Poisoned[u.Key()]; bad && opt.Quarantine {
			// Journaled poison: skip without re-attempting.
			emit(Event{Kind: UnitPoisoned, Unit: u.Key(), Worker: -1,
				Err: fmt.Errorf("poisoned by earlier run: %s", cause)})
			continue
		}
		if stats, ok := state.Done[u.Key()]; ok && len(stats) == len(u.Cfgs) {
			if collect != nil {
				mu.Lock()
				collect(u, stats)
				mu.Unlock()
			}
			emit(Event{Kind: UnitRestored, Unit: u.Key(), Worker: -1})
			continue
		}
		pending = append(pending, u)
	}

	workers := opt.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	ckEvery := opt.CheckpointEvery
	if ckEvery < 1 {
		ckEvery = 4
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()

	watchdog := resilience.NewWatchdog(resilience.WatchdogConfig{
		SoftDeadline: opt.SoftDeadline,
		OnStall: func(s resilience.Stall) {
			emit(Event{Kind: UnitStalled, Unit: s.Task, Idle: s.Idle, Worker: -1})
		},
	})
	defer watchdog.Stop()

	var (
		errOnce   sync.Once
		firstErr  error
		sinceSnap int
		wg        sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	// Trace-affinity scheduling: units are partitioned into per-worker
	// queues grouped by trace (see steal.go), so each streamed trace
	// stays hot in one worker's cache; workers that drain their own
	// queue steal from the others instead of idling.
	var queues *stealQueues
	if workers > 0 {
		queues = newStealQueues(pending, workers)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if gctx.Err() != nil {
					return
				}
				u, ok := queues.next(w)
				if !ok {
					return
				}
				key := u.Key()
				task := watchdog.Begin(key)
				var stats []cache.Stats
				err := resilience.Retry(gctx, key,
					resilience.RetryConfig{Attempts: opt.Retries + 1, Backoff: opt.RetryBackoff},
					func() error {
						var gerr error
						stats, gerr = gang(gctx, u.Trace, u.Cfgs, task)
						return gerr
					},
					func(attempt int, err error) {
						emit(Event{Kind: UnitRetried, Unit: key, Attempt: attempt, Err: err, Worker: w})
					})
				watchdog.End(task)
				if err != nil {
					if opt.Quarantine && gctx.Err() == nil &&
						!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
						// Retry budget exhausted: quarantine the unit instead
						// of wedging the whole sweep on it. The poison is
						// journaled immediately so a crash right after cannot
						// re-grind the unit on resume.
						var degraded error
						mu.Lock()
						state.Poisoned[key] = err.Error()
						if journal != nil {
							//simlint:allow lockheld the poison entry must be journaled from an atomic snapshot of state; contenders only add units, they never block on this save
							degraded = journal.Save(state)
						}
						mu.Unlock()
						emit(Event{Kind: UnitPoisoned, Unit: key, Err: err, Worker: w})
						if degraded != nil {
							emit(Event{Kind: JournalDegraded, Unit: key, Err: degraded, Worker: w})
						}
						continue
					}
					fail(err)
					return
				}
				var degraded error
				mu.Lock()
				if collect != nil {
					collect(u, stats)
				}
				if journal != nil {
					state.Done[key] = stats
					sinceSnap++
					if sinceSnap >= ckEvery && len(state.Done) < len(units) {
						// A failed snapshot degrades (the next one retries, a
						// resume just recomputes more) — it never fails a
						// sweep whose simulation work is succeeding.
						//simlint:allow lockheld the checkpoint must serialize an atomic snapshot of state; snapshots are paced by ckEvery so contention is bounded
						degraded = journal.Save(state)
						sinceSnap = 0
					}
				}
				mu.Unlock()
				if degraded != nil {
					emit(Event{Kind: JournalDegraded, Unit: key, Err: degraded, Worker: w})
				}
				emit(Event{Kind: UnitDone, Unit: key, Worker: w})
			}
		}(w)
	}
	wg.Wait()

	err := firstErr
	if err == nil {
		err = ctx.Err()
	}
	var poisonErr error
	if len(state.Poisoned) > 0 {
		poisonErr = &PoisonedError{Units: state.Poisoned}
	}
	if journal != nil {
		if err != nil {
			// Flush a final snapshot so the interrupted (or failed) run
			// resumes from everything that did complete. A failed flush
			// degrades — it must not mask why the run stopped.
			if serr := journal.Save(state); serr != nil {
				emit(Event{Kind: JournalDegraded, Err: serr, Worker: -1})
			}
			return err
		}
		if poisonErr != nil {
			// Keep the journal: the poison set and the completed results
			// must survive so a resubmission skips both.
			if serr := journal.Save(state); serr != nil {
				emit(Event{Kind: JournalDegraded, Err: serr, Worker: -1})
			}
			return poisonErr
		}
		if rerr := journal.Remove(); rerr != nil {
			// Cleanup failure costs a leftover file, not correctness: a
			// rerun of the same sweep restores from it instantly, any
			// other sweep reads it as stale and starts fresh.
			emit(Event{Kind: JournalDegraded, Err: rerr, Worker: -1})
		}
		return nil
	}
	if err == nil {
		err = poisonErr
	}
	return err
}

// Sweep runs every configuration over every trace with the gang engine
// on a bounded worker pool and returns stats indexed [trace][config],
// matching the input slices. It is the single-call form of
// Shard + RunUnits for full cartesian sweeps, including the
// checkpoint/resume, watchdog and retry behaviour of Options.
func Sweep(ctx context.Context, traces []*trace.Trace, cfgs []cache.Config, opt Options) ([][]cache.Stats, error) {
	out := make([][]cache.Stats, len(traces))
	var units []Unit
	for ti, t := range traces {
		out[ti] = make([]cache.Stats, len(cfgs))
		units = append(units, Shard(ti, t, cfgs, opt.Shard)...)
	}
	err := RunUnits(ctx, units, opt, func(u Unit, stats []cache.Stats) {
		copy(out[u.TraceIndex][u.Base:], stats)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
