package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"cachewrite/internal/cache"
	"cachewrite/internal/vfs"
)

// TestSweepCompletesUnderCheckpointFaults: checkpointing is an
// optimization, so a sweep whose journal writes all fail (disk full)
// must still complete with correct results, surfacing the degradation
// as JournalDegraded events instead of a run failure.
func TestSweepCompletesUnderCheckpointFaults(t *testing.T) {
	traces, cfgs, _ := resumeFixture(t)
	want, err := Sweep(context.Background(), traces, cfgs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	mem := vfs.NewMem()
	faulty := vfs.NewFaulty(mem, vfs.Plan{Rate: 1, Kinds: vfs.KindENOSPC})
	var degraded, done atomic.Int64
	got, err := Sweep(context.Background(), traces, cfgs, Options{
		Workers:         2,
		Checkpoint:      "/state/sweep.ckpt",
		CheckpointEvery: 1,
		FS:              faulty,
		OnEvent: func(e Event) {
			switch e.Kind {
			case JournalDegraded:
				degraded.Add(1)
			case UnitDone:
				done.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatalf("sweep failed on a full checkpoint disk: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("results diverged under checkpoint faults")
	}
	if degraded.Load() == 0 {
		t.Fatal("no JournalDegraded event despite every snapshot failing")
	}
	if done.Load() == 0 {
		t.Fatal("no units simulated")
	}
}

// poisonFixture: two good single-config units around one unit whose
// config cache.New always rejects, so every attempt on it fails.
func poisonFixture() ([]Unit, string) {
	tr := testTrace(500)
	good := cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
	good2 := good
	good2.WriteHit = cache.WriteThrough
	good2.WriteMiss = cache.WriteAround
	bad := cache.Config{Size: 3, LineSize: 16} // invalid: cache.New always fails
	units := []Unit{
		{TraceIndex: 0, Trace: tr, Cfgs: []cache.Config{good}, Base: 0},
		{TraceIndex: 0, Trace: tr, Cfgs: []cache.Config{bad}, Base: 1},
		{TraceIndex: 0, Trace: tr, Cfgs: []cache.Config{good2}, Base: 2},
	}
	return units, units[1].Key()
}

// TestPoisonUnitQuarantine: with Quarantine set, a unit that exhausts
// its retry budget is journaled as poisoned and the sweep completes the
// rest, returning *PoisonedError instead of wedging.
func TestPoisonUnitQuarantine(t *testing.T) {
	units, badKey := poisonFixture()
	ckpt := filepath.Join(t.TempDir(), "poison.ckpt")
	var poisoned, retried, collected atomic.Int64
	err := RunUnits(context.Background(), units, Options{
		Workers: 1, Retries: 1, RetryBackoff: time.Millisecond,
		Checkpoint: ckpt,
		Quarantine: true,
		OnEvent: func(e Event) {
			switch e.Kind {
			case UnitPoisoned:
				poisoned.Add(1)
				if e.Unit != badKey {
					t.Errorf("poisoned unit %q, want %q", e.Unit, badKey)
				}
			case UnitRetried:
				retried.Add(1)
			}
		},
	}, func(Unit, []cache.Stats) { collected.Add(1) })

	var pe *PoisonedError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PoisonedError", err, err)
	}
	if len(pe.Units) != 1 || pe.Units[badKey] == "" {
		t.Fatalf("PoisonedError.Units = %v, want cause under %q", pe.Units, badKey)
	}
	if poisoned.Load() != 1 || retried.Load() != 1 {
		t.Fatalf("poisoned=%d retried=%d, want 1 and 1", poisoned.Load(), retried.Load())
	}
	if collected.Load() != 2 {
		t.Fatalf("collected %d good units, want 2", collected.Load())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("poisoned sweep must keep its journal for resume: %v", err)
	}
}

// TestPoisonSkippedOnResume: a resumed (or resubmitted) sweep must skip
// journaled poison without a single new attempt, and restore the good
// units' results from the journal.
func TestPoisonSkippedOnResume(t *testing.T) {
	units, badKey := poisonFixture()
	ckpt := filepath.Join(t.TempDir(), "poison.ckpt")
	opts := func(onEvent func(Event)) Options {
		return Options{
			Workers: 1, Retries: 1, RetryBackoff: time.Millisecond,
			Checkpoint: ckpt, Quarantine: true, OnEvent: onEvent,
		}
	}
	if err := RunUnits(context.Background(), units, opts(nil), nil); err == nil {
		t.Fatal("setup run reported no poison")
	}

	var poisoned, retried, restored, fresh atomic.Int64
	err := RunUnits(context.Background(), units, opts(func(e Event) {
		switch e.Kind {
		case UnitPoisoned:
			poisoned.Add(1)
			if e.Worker != -1 {
				t.Errorf("resume poisoned worker = %d, want -1 (skipped, not re-run)", e.Worker)
			}
		case UnitRetried:
			retried.Add(1)
		case UnitRestored:
			restored.Add(1)
		case UnitDone:
			fresh.Add(1)
		}
	}), nil)

	var pe *PoisonedError
	if !errors.As(err, &pe) {
		t.Fatalf("resume err = %v (%T), want *PoisonedError", err, err)
	}
	if pe.Units[badKey] == "" {
		t.Fatalf("resume lost the poison cause: %v", pe.Units)
	}
	if retried.Load() != 0 || fresh.Load() != 0 {
		t.Fatalf("resume re-attempted work: retried=%d fresh=%d, want 0 and 0",
			retried.Load(), fresh.Load())
	}
	if poisoned.Load() != 1 || restored.Load() != 2 {
		t.Fatalf("poisoned=%d restored=%d, want 1 and 2", poisoned.Load(), restored.Load())
	}
}

// TestSweepFaultyCrashResumeByteIdentical is the end-to-end proof for
// the sweep surface: interrupt a sweep whose checkpoint disk is
// injecting write faults, cut the power (dropping everything unsynced),
// and resume on a healthy disk. Whatever mix of current/.prev/absent
// the journal was left in, the resumed results must be byte-identical
// to an uninterrupted run. Several seeds vary which snapshots were torn.
func TestSweepFaultyCrashResumeByteIdentical(t *testing.T) {
	traces, cfgs, _ := resumeFixture(t)
	want, err := Sweep(context.Background(), traces, cfgs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			mem := vfs.NewMem()
			faulty := vfs.NewFaulty(mem, vfs.Plan{
				Seed: seed, Rate: 0.4,
				Kinds: vfs.KindTornWrite | vfs.KindENOSPC | vfs.KindRenameFail,
			})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var done atomic.Int64
			_, err := Sweep(ctx, traces, cfgs, Options{
				Workers: 1, Checkpoint: "/state/sweep.ckpt", CheckpointEvery: 1,
				FS: faulty,
				OnEvent: func(e Event) {
					if e.Kind == UnitDone && done.Add(1) == 3 {
						cancel()
					}
				},
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted sweep returned %v, want context.Canceled", err)
			}
			mem.Crash() // power loss on top of the write faults

			got, err := Sweep(context.Background(), traces, cfgs, Options{
				Workers: 2, Checkpoint: "/state/sweep.ckpt", FS: mem,
			})
			if err != nil {
				t.Fatalf("resume after faults+crash: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("resumed results differ from uninterrupted run")
			}
		})
	}
}
