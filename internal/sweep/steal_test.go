package sweep

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
)

// TestStealQueuesTraceAffinity pins the affinity property: all units
// of one trace land on the same worker queue, and the queues together
// cover every pending unit exactly once.
func TestStealQueuesTraceAffinity(t *testing.T) {
	traces := []*trace.Trace{testTrace(1000), testTrace(2000), testTrace(500), testTrace(1500)}
	for i, tr := range traces {
		tr.Name = string(rune('a' + i))
	}
	var pending []Unit
	for ti, tr := range traces {
		pending = append(pending, Shard(ti, tr, policyConfigs(), 4)...)
	}
	q := newStealQueues(pending, 3)

	owner := map[*trace.Trace]int{}
	seen := map[string]int{}
	for w, queue := range q.queues {
		for _, u := range queue {
			if prev, ok := owner[u.Trace]; ok && prev != w {
				t.Errorf("trace %s split across workers %d and %d", u.Trace.Name, prev, w)
			}
			owner[u.Trace] = w
			seen[u.Key()]++
		}
	}
	if len(seen) != len(pending) {
		t.Fatalf("queues cover %d distinct units, want %d", len(seen), len(pending))
	}
	for key, n := range seen {
		if n != 1 {
			t.Errorf("unit %s appears %d times", key, n)
		}
	}
	// Determinism: the same input yields the same assignment.
	q2 := newStealQueues(pending, 3)
	if !reflect.DeepEqual(keysOf(q.queues), keysOf(q2.queues)) {
		t.Error("queue assignment is not deterministic")
	}
}

func keysOf(queues [][]Unit) [][]string {
	out := make([][]string, len(queues))
	for i, q := range queues {
		for _, u := range q {
			out[i] = append(out[i], u.Key())
		}
	}
	return out
}

// TestStealQueuesNoStarvation pins the liveness property behind the
// work-stealing drain: a single worker popping alone — every other
// worker stalled forever — still receives every unit, because next
// falls through to the other queues once its own is dry.
func TestStealQueuesNoStarvation(t *testing.T) {
	traces := []*trace.Trace{testTrace(100), testTrace(50000), testTrace(200)}
	for i, tr := range traces {
		tr.Name = string(rune('a' + i))
	}
	var pending []Unit
	for ti, tr := range traces {
		pending = append(pending, Shard(ti, tr, policyConfigs(), 2)...)
	}
	q := newStealQueues(pending, 4)

	got := map[string]bool{}
	for w := 0; w < 4; w++ {
		// Each worker in turn drains what it can see; worker 0 alone
		// must already reach everything.
		for {
			u, ok := q.next(w)
			if !ok {
				break
			}
			if got[u.Key()] {
				t.Fatalf("unit %s dispatched twice", u.Key())
			}
			got[u.Key()] = true
		}
		if w == 0 && len(got) != len(pending) {
			t.Fatalf("lone worker 0 drained %d of %d units; stealing is broken", len(got), len(pending))
		}
	}
	if len(got) != len(pending) {
		t.Fatalf("drained %d of %d units", len(got), len(pending))
	}
}

// TestStealQueuesUnevenLoad pins the LPT-style balancing: with one
// giant trace and several small ones on two workers, the giant trace
// must not share a queue with everything else.
func TestStealQueuesUnevenLoad(t *testing.T) {
	big := testTrace(100000)
	big.Name = "big"
	var pending []Unit
	pending = append(pending, Shard(0, big, policyConfigs(), 4)...)
	for i := 0; i < 3; i++ {
		small := testTrace(100)
		small.Name = string(rune('x' + i))
		pending = append(pending, Shard(1+i, small, policyConfigs(), 4)...)
	}
	q := newStealQueues(pending, 2)
	for w, queue := range q.queues {
		hasBig, hasSmall := false, false
		for _, u := range queue {
			if u.Trace == big {
				hasBig = true
			} else {
				hasSmall = true
			}
		}
		if hasBig && hasSmall {
			t.Errorf("worker %d holds the big trace and small traces; LPT balancing failed", w)
		}
	}
}

// TestUnevenDurationsByteIdentical injects wildly uneven unit
// durations (one 60k-event trace next to 300-event traces) and
// asserts the scheduler finishes every unit exactly once, reports a
// valid worker index for each, and produces results byte-identical to
// the sequential baseline — the end-to-end guarantee that stealing
// never corrupts or drops work.
func TestUnevenDurationsByteIdentical(t *testing.T) {
	traces := []*trace.Trace{testTrace(60000), testTrace(300), testTrace(300), testTrace(300)}
	for i, tr := range traces {
		tr.Name = string(rune('a' + i))
	}
	cfgs := policyConfigs()

	var mu sync.Mutex
	done := map[string]int{}
	workersSeen := map[int]bool{}
	opt := Options{
		Workers: 4,
		Shard:   3,
		OnEvent: func(e Event) {
			if e.Kind == UnitDone {
				mu.Lock()
				done[e.Unit]++
				workersSeen[e.Worker] = true
				mu.Unlock()
			}
		},
	}
	got, err := Sweep(context.Background(), traces, cfgs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tr := range traces {
		want := sequential(t, tr, cfgs)
		for i := range cfgs {
			if !reflect.DeepEqual(got[ti][i], want[i]) {
				t.Errorf("trace %d %s: stolen-work results differ from sequential", ti, cfgs[i])
			}
		}
	}
	wantUnits := 0
	for range traces {
		wantUnits += (len(cfgs) + 2) / 3
	}
	if len(done) != wantUnits {
		t.Errorf("%d distinct units completed, want %d", len(done), wantUnits)
	}
	for key, n := range done {
		if n != 1 {
			t.Errorf("unit %s completed %d times", key, n)
		}
	}
	for w := range workersSeen {
		if w < 0 || w >= 4 {
			t.Errorf("UnitDone reported out-of-range worker %d", w)
		}
	}
}

// TestFanoutZeroAlloc pins the batched gang inner loop at zero
// allocations per window, covering decode + every kernel class in one
// mixed gang — the fanout-level companion of TestAccessZeroAlloc.
func TestFanoutZeroAlloc(t *testing.T) {
	tr := testTrace(4000)
	cfgs := []cache.Config{
		// Direct-mapped kernel.
		{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: cache.WriteBack, WriteMiss: cache.WriteValidate},
		{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: cache.WriteThrough, WriteMiss: cache.WriteAround},
		// Set-associative kernel (same geometry as the 4KB direct one).
		{Size: 16 << 10, LineSize: 16, Assoc: 2, WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite},
		// Generic fallback (sub-block granularity).
		{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: cache.WriteBack, WriteMiss: cache.WriteValidate, ValidGranularity: 4},
	}
	caches := make([]*cache.Cache, len(cfgs))
	for i, cfg := range cfgs {
		caches[i] = cache.MustNew(cfg)
	}
	groups := groupByGeometry(caches)
	dec := make([]cache.Decoded, tr.Len())
	// Warm once so steady state is measured.
	fanout(tr.Events, groups, dec)
	if av := testing.AllocsPerRun(10, func() { fanout(tr.Events, groups, dec) }); av != 0 {
		t.Fatalf("fanout allocates: %v allocs/run", av)
	}
}

// TestGroupByGeometry pins the grouping: same-geometry caches share a
// group in input order, distinct geometries get their own groups in
// first-appearance order.
func TestGroupByGeometry(t *testing.T) {
	mk := func(size, line, assoc int) *cache.Cache {
		return cache.MustNew(cache.Config{Size: size, LineSize: line, Assoc: assoc,
			WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite})
	}
	a := mk(4<<10, 16, 1)  // 256 sets × 16B
	b := mk(8<<10, 16, 2)  // 256 sets × 16B — same geometry as a
	c := mk(8<<10, 16, 1)  // 512 sets × 16B
	d := mk(4<<10, 32, 1)  // 128 sets × 32B
	e := mk(16<<10, 16, 4) // 256 sets × 16B — same geometry as a
	groups := groupByGeometry([]*cache.Cache{a, b, c, d, e})
	want := [][]*cache.Cache{{a, b, e}, {c}, {d}}
	if len(groups) != len(want) {
		t.Fatalf("got %d groups, want %d", len(groups), len(want))
	}
	for i, g := range groups {
		if !reflect.DeepEqual(g.caches, want[i]) {
			t.Errorf("group %d holds wrong members", i)
		}
	}
}
