package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"cachewrite/internal/cache"
	"cachewrite/internal/resilience"
	"cachewrite/internal/trace"
)

// resumeFixture returns the traces, configs and checkpoint path shared
// by the resume tests: enough units that an interruption lands
// mid-sweep.
func resumeFixture(t *testing.T) ([]*trace.Trace, []cache.Config, string) {
	t.Helper()
	traces := []*trace.Trace{testTrace(4000), testTrace(7000).Slice(500, 7000)}
	traces[1].Name = "sweeptest2"
	return traces, policyConfigs(), filepath.Join(t.TempDir(), "sweep.ckpt")
}

// TestSweepResumeByteIdentical is the kill-and-resume golden test: a
// sweep interrupted after N units, resumed from its journal, must
// produce results byte-identical to an uninterrupted run — and must
// not recompute the journaled units.
func TestSweepResumeByteIdentical(t *testing.T) {
	traces, cfgs, ckpt := resumeFixture(t)

	want, err := Sweep(context.Background(), traces, cfgs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt: cancel after 3 completed units. A single worker makes
	// "3 units then stop" deterministic enough; the final flush must
	// still journal everything that completed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	_, err = Sweep(ctx, traces, cfgs, Options{
		Workers:         1,
		Checkpoint:      ckpt,
		CheckpointEvery: 2,
		OnEvent: func(e Event) {
			if e.Kind == UnitDone && done.Add(1) == 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep returned %v, want context.Canceled", err)
	}
	if done.Load() < 3 {
		t.Fatalf("only %d units completed before cancel", done.Load())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after interruption: %v", err)
	}

	// Resume: journaled units must be restored, not recomputed, and the
	// final results must match the uninterrupted run byte for byte.
	var restored, fresh atomic.Int64
	got, err := Sweep(context.Background(), traces, cfgs, Options{
		Workers:    2,
		Checkpoint: ckpt,
		OnEvent: func(e Event) {
			switch e.Kind {
			case UnitRestored:
				restored.Add(1)
			case UnitDone:
				fresh.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Load() < 3 {
		t.Fatalf("resume restored %d units, want >= 3", restored.Load())
	}
	totalUnits := 0
	for range traces {
		totalUnits += (len(cfgs) + DefaultShard - 1) / DefaultShard
	}
	if n := restored.Load() + fresh.Load(); int(n) != totalUnits {
		t.Fatalf("restored %d + fresh %d != %d units", restored.Load(), fresh.Load(), totalUnits)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed sweep differs from uninterrupted run")
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Fatal("resumed sweep JSON differs from uninterrupted run")
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("completed sweep left its checkpoint behind (stat err %v)", err)
	}
}

// TestSweepResumeCorruptJournal: a corrupt checkpoint (both snapshots)
// must start fresh — with a JournalFallback event — and still finish
// with correct results.
func TestSweepResumeCorruptJournal(t *testing.T) {
	traces, cfgs, ckpt := resumeFixture(t)
	want, err := Sweep(context.Background(), traces, cfgs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, []byte("RSJ1 sweep v1 crc32=deadbeef len=4\nzap"), 0o644); err != nil {
		t.Fatal(err)
	}
	var fallbacks atomic.Int64
	got, err := Sweep(context.Background(), traces, cfgs, Options{
		Workers:    2,
		Checkpoint: ckpt,
		OnEvent: func(e Event) {
			if e.Kind == JournalFallback {
				fallbacks.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fallbacks.Load() == 0 {
		t.Fatal("corrupt journal produced no fallback event")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fresh-start sweep differs from baseline")
	}
}

// TestSweepResumeStaleJournal: a journal from a *different* sweep
// (other configs) must be ignored via the fingerprint, not misapplied.
func TestSweepResumeStaleJournal(t *testing.T) {
	traces, cfgs, ckpt := resumeFixture(t)

	// Journal a different sweep to the same path, interrupting it so
	// the checkpoint file survives.
	otherCfgs := cfgs[:DefaultShard+1]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	_, err := Sweep(ctx, traces, otherCfgs, Options{
		Workers: 1, Checkpoint: ckpt, CheckpointEvery: 1,
		OnEvent: func(e Event) {
			if e.Kind == UnitDone && done.Add(1) == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("setup sweep: %v", err)
	}

	want, err := Sweep(context.Background(), traces, cfgs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var restored, fallbacks atomic.Int64
	got, err := Sweep(context.Background(), traces, cfgs, Options{
		Workers:    2,
		Checkpoint: ckpt,
		OnEvent: func(e Event) {
			switch e.Kind {
			case UnitRestored:
				restored.Add(1)
			case JournalFallback:
				fallbacks.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Load() != 0 {
		t.Fatalf("stale journal restored %d units", restored.Load())
	}
	if fallbacks.Load() == 0 {
		t.Fatal("stale journal produced no fallback event")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sweep after stale journal differs from baseline")
	}
}

// TestRunUnitsRetriesFailedUnit: transient unit failures are retried
// with backoff and surface nothing; exhaustion surfaces a structured
// *resilience.UnitError naming the unit.
func TestRunUnitsRetriesFailedUnit(t *testing.T) {
	tr := testTrace(500)
	good := cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
	bad := cache.Config{Size: 3, LineSize: 16} // invalid: cache.New always fails
	units := []Unit{
		{TraceIndex: 0, Trace: tr, Cfgs: []cache.Config{good}, Base: 0},
		{TraceIndex: 0, Trace: tr, Cfgs: []cache.Config{bad}, Base: 1},
	}
	var retried atomic.Int64
	err := RunUnits(context.Background(), units, Options{
		Workers: 1, Retries: 2, RetryBackoff: time.Millisecond,
		OnEvent: func(e Event) {
			if e.Kind == UnitRetried {
				retried.Add(1)
			}
		},
	}, nil)
	var ue *resilience.UnitError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v (%T), want *resilience.UnitError", err, err)
	}
	if ue.Attempts != 3 || ue.Unit != units[1].Key() {
		t.Fatalf("UnitError = %+v", ue)
	}
	if retried.Load() != 2 {
		t.Fatalf("retried %d times, want 2", retried.Load())
	}
}

// TestRunUnitsWatchdogCancellationRace drives cancellation into a
// watchdogged sweep from a racing goroutine. Run under -race (make
// check), it pins that the watchdog monitor, the workers' heartbeats
// and the cancellation path share no unsynchronized state.
func TestRunUnitsWatchdogCancellationRace(t *testing.T) {
	traces := []*trace.Trace{testTrace(20000)}
	cfgs := policyConfigs()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(i) * 2 * time.Millisecond)
			cancel()
		}()
		_, err := Sweep(ctx, traces, cfgs, Options{
			Workers:      4,
			SoftDeadline: time.Millisecond, // hair-trigger: stall events race completion
			Checkpoint:   filepath.Join(t.TempDir(), "race.ckpt"),
			OnEvent:      func(Event) {},
		})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatal(err)
		}
		cancel()
	}
}

// TestUnitKeyStable pins the journal key format: changing it silently
// invalidates every existing checkpoint.
func TestUnitKeyStable(t *testing.T) {
	u := Unit{TraceIndex: 2, Trace: &trace.Trace{Name: "ccom"}, Base: 24,
		Cfgs: make([]cache.Config, 8)}
	if got, want := u.Key(), "ccom#2/cfgs[24:32]"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
}
