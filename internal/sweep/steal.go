// Trace-affinity scheduling: instead of all workers pulling from one
// global cursor — which interleaves traces across workers and makes a
// streamed trace ping-pong between their caches — pending units are
// partitioned into per-worker queues grouped by trace. A worker drains
// its own queue first (so one trace's event slice stays hot in that
// worker's cache across all of its config shards) and steals from the
// other queues only when its own runs dry, so no worker ever idles
// while work remains.
package sweep

import (
	"sync/atomic"

	"cachewrite/internal/trace"
)

// stealQueues is the scheduler's work source: one unit queue per
// worker, each drained through its own atomic cursor. Queues are
// immutable after construction; only the cursors move, so next is
// safe for concurrent use by all workers.
type stealQueues struct {
	queues [][]Unit
	cursor []atomic.Int64
}

// newStealQueues partitions pending into len-workers queues. Units
// sharing a trace form one affinity group (first-appearance order,
// preserving unit order within the group) and each group is placed
// whole onto the least-loaded queue, weighted by the group's total
// event count — a deterministic greedy LPT assignment, so the same
// sweep always produces the same queues. workers must be >= 1.
func newStealQueues(pending []Unit, workers int) *stealQueues {
	type group struct {
		units  []Unit
		events int64
	}
	groups := make([]*group, 0, len(pending))
	byTrace := make(map[*trace.Trace]*group, len(pending))
	for _, u := range pending {
		g, ok := byTrace[u.Trace]
		if !ok {
			g = &group{}
			byTrace[u.Trace] = g
			groups = append(groups, g)
		}
		g.units = append(g.units, u)
		g.events += int64(u.Trace.Len())
	}

	q := &stealQueues{
		queues: make([][]Unit, workers),
		cursor: make([]atomic.Int64, workers),
	}
	load := make([]int64, workers)
	for _, g := range groups {
		w := 0
		for i := 1; i < workers; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		q.queues[w] = append(q.queues[w], g.units...)
		load[w] += g.events
	}
	return q
}

// next returns the next unit for worker w: from its own queue while
// one remains, then stolen from the nearest non-empty neighbour.
// ok is false only when every queue is drained, so a worker can never
// starve while any unit is unclaimed.
func (q *stealQueues) next(w int) (u Unit, ok bool) {
	own := q.queues[w]
	if i := int(q.cursor[w].Add(1)) - 1; i < len(own) {
		return own[i], true
	}
	n := len(q.queues)
	for off := 1; off < n; off++ {
		v := (w + off) % n
		victim := q.queues[v]
		if i := int(q.cursor[v].Add(1)) - 1; i < len(victim) {
			return victim[i], true
		}
	}
	return Unit{}, false
}
