package sweep

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
)

// testTrace builds a deterministic LCG-driven mixed trace with hot and
// cold regions, both kinds, several sizes, and (for small line sizes)
// line-crossing accesses.
func testTrace(n int) *trace.Trace {
	tr := &trace.Trace{Name: "sweeptest"}
	state := uint32(99991)
	next := func() uint32 { state = state*1664525 + 1013904223; return state }
	for i := 0; i < n; i++ {
		r := next()
		addr := (r % (1 << 15)) &^ 3
		size := uint8(4)
		switch r % 4 {
		case 0:
			size = 8
		case 1:
			size = 3 // odd size: exercises the line-crossing slow path
		}
		k := trace.Read
		if r%3 == 0 {
			k = trace.Write
		}
		tr.Append(trace.Event{Addr: addr, Size: size, Gap: uint16(r % 5), Kind: k})
	}
	return tr
}

// policyConfigs enumerates every write-hit x write-miss combination at
// a fixed geometry, plus sub-block and sector variants.
func policyConfigs() []cache.Config {
	var cfgs []cache.Config
	for _, hit := range []cache.WriteHitPolicy{cache.WriteThrough, cache.WriteBack} {
		for _, miss := range cache.WriteMissPolicies() {
			for _, line := range []int{4, 16, 64} {
				c := cache.Config{Size: 4 << 10, LineSize: line, Assoc: 1, WriteHit: hit, WriteMiss: miss}
				if c.Validate() == nil {
					cfgs = append(cfgs, c)
				}
				c.Assoc = 2
				if c.Validate() == nil {
					cfgs = append(cfgs, c)
				}
				c.Assoc = 1
				c.ValidGranularity = 4
				c.SectorFetch = line >= 16
				if c.Validate() == nil {
					cfgs = append(cfgs, c)
				}
			}
		}
	}
	return cfgs
}

// sequential is the baseline the gang engine must match bit-for-bit:
// one full pass over the trace per configuration.
func sequential(t *testing.T, tr *trace.Trace, cfgs []cache.Config) []cache.Stats {
	t.Helper()
	out := make([]cache.Stats, len(cfgs))
	for i, cfg := range cfgs {
		c, err := cache.New(cfg)
		if err != nil {
			t.Fatalf("cache.New(%s): %v", cfg, err)
		}
		c.AccessTrace(tr)
		c.Flush()
		out[i] = c.Stats()
	}
	return out
}

// TestGangMatchesSequential pins the tentpole guarantee: gang-pass
// stats are identical to per-config sequential stats for every
// write-hit/write-miss policy combination (and sub-block variants).
func TestGangMatchesSequential(t *testing.T) {
	tr := testTrace(30000)
	cfgs := policyConfigs()
	if len(cfgs) < 8 {
		t.Fatalf("want at least the 2x4 policy matrix, got %d configs", len(cfgs))
	}
	want := sequential(t, tr, cfgs)
	got, err := Gang(tr, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("%s: gang stats differ from sequential:\n gang %+v\n seq  %+v", cfgs[i], got[i], want[i])
		}
	}
}

func TestGangBadConfig(t *testing.T) {
	tr := testTrace(10)
	if _, err := Gang(tr, []cache.Config{{}}); err == nil {
		t.Fatal("Gang accepted an invalid configuration")
	}
}

func TestShardPartitions(t *testing.T) {
	tr := testTrace(1)
	cfgs := policyConfigs()
	units := Shard(3, tr, cfgs, 5)
	n := 0
	for i, u := range units {
		if u.TraceIndex != 3 || u.Trace != tr {
			t.Fatalf("unit %d has wrong trace identity", i)
		}
		if u.Base != n {
			t.Fatalf("unit %d: base %d, want %d", i, u.Base, n)
		}
		if len(u.Cfgs) > 5 || len(u.Cfgs) == 0 {
			t.Fatalf("unit %d: shard of %d configs", i, len(u.Cfgs))
		}
		for j, cfg := range u.Cfgs {
			if cfg != cfgs[n+j] {
				t.Fatalf("unit %d config %d out of order", i, j)
			}
		}
		n += len(u.Cfgs)
	}
	if n != len(cfgs) {
		t.Fatalf("shards cover %d configs, want %d", n, len(cfgs))
	}
	if got := Shard(0, tr, cfgs, 0); len(got) != (len(cfgs)+DefaultShard-1)/DefaultShard {
		t.Fatalf("default shard size: %d units", len(got))
	}
}

// TestSweepMatchesSequential checks the full scheduler path assembles
// results in the right [trace][config] slots.
func TestSweepMatchesSequential(t *testing.T) {
	traces := []*trace.Trace{testTrace(5000), testTrace(8000).Slice(1000, 8000)}
	traces[1].Name = "sweeptest2"
	cfgs := policyConfigs()[:10]
	got, err := Sweep(context.Background(), traces, cfgs, Options{Workers: 4, Shard: 3})
	if err != nil {
		t.Fatal(err)
	}
	for ti, tr := range traces {
		want := sequential(t, tr, cfgs)
		for i := range cfgs {
			if !reflect.DeepEqual(got[ti][i], want[i]) {
				t.Errorf("trace %d %s: sweep stats differ from sequential", ti, cfgs[i])
			}
		}
	}
}

// TestRunErrorNoDeadlock is the regression test for the Env.Precompute
// deadlock: with a single worker hitting an error on the first unit and
// many units still queued, Run must return the error promptly instead
// of blocking on an abandoned work queue.
func TestRunErrorNoDeadlock(t *testing.T) {
	tr := testTrace(100)
	bad := Unit{Trace: tr, Cfgs: []cache.Config{{}}} // invalid: fails in cache.New
	units := []Unit{bad}
	for i := 0; i < 256; i++ {
		units = append(units, Shard(0, tr, policyConfigs()[:2], 1)...)
	}
	done := make(chan error, 1)
	go func() {
		done <- Run(context.Background(), units, 1, nil)
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil for a failing unit")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run deadlocked after a unit error")
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	tr := testTrace(100)
	units := []Unit{
		{Trace: tr, Cfgs: []cache.Config{{Size: 3}}},
		{Trace: tr, Cfgs: []cache.Config{{Size: 5}}},
	}
	err := Run(context.Background(), units, 2, nil)
	if err == nil {
		t.Fatal("Run returned nil for failing units")
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := testTrace(100)
	err := Run(ctx, Shard(0, tr, policyConfigs(), 1), 2, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled context: err = %v, want context.Canceled", err)
	}
}

func TestRunEmptyAndNilCollect(t *testing.T) {
	if err := Run(context.Background(), nil, 4, nil); err != nil {
		t.Fatalf("Run with no units: %v", err)
	}
	tr := testTrace(100)
	if err := Run(context.Background(), Shard(0, tr, policyConfigs()[:3], 2), 0, nil); err != nil {
		t.Fatalf("Run with default workers and nil collect: %v", err)
	}
}
