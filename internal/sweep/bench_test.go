package sweep

import (
	"context"
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
)

// paperConfigs mirrors the experiments package's figure sweep: the
// capacity sweep at 16B lines plus the line-size sweep at 8KB, each
// under all four write-miss policies.
func paperConfigs() []cache.Config {
	var cfgs []cache.Config
	add := func(size, line int) {
		for _, p := range cache.WriteMissPolicies() {
			cfg := cache.Config{Size: size, LineSize: line, Assoc: 1,
				WriteHit: cache.WriteBack, WriteMiss: p}
			if p == cache.WriteAround || p == cache.WriteInvalidate {
				cfg.WriteHit = cache.WriteThrough
			}
			cfgs = append(cfgs, cfg)
		}
	}
	for _, size := range []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10} {
		add(size, 16)
	}
	for _, line := range []int{4, 8, 32, 64} {
		add(8<<10, line)
	}
	return cfgs
}

const benchEvents = 100_000

func benchTraces() []*trace.Trace {
	ts := make([]*trace.Trace, 6)
	for i := range ts {
		ts[i] = testTrace(benchEvents)
	}
	return ts
}

// reportPerEvent attaches ns/event and allocs/event metrics, where an
// "event" is one trace event applied to one cache configuration.
func reportPerEvent(b *testing.B, configEvents int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(configEvents), "ns/event")
}

// BenchmarkSweepSequential is the pre-gang baseline: one full pass over
// every trace per configuration, single-threaded.
func BenchmarkSweepSequential(b *testing.B) {
	ts := benchTraces()
	cfgs := paperConfigs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range ts {
			for _, cfg := range cfgs {
				c, err := cache.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				c.AccessTrace(t)
				c.Flush()
				_ = c.Stats()
			}
		}
	}
	b.StopTimer()
	reportPerEvent(b, len(ts)*len(cfgs)*benchEvents)
}

// BenchmarkSweepGang runs the same matrix through the gang engine and
// the parallel scheduler (GOMAXPROCS workers).
func BenchmarkSweepGang(b *testing.B) {
	ts := benchTraces()
	cfgs := paperConfigs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(context.Background(), ts, cfgs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportPerEvent(b, len(ts)*len(cfgs)*benchEvents)
}

// BenchmarkSweepGangSingle isolates the single-pass win from the
// parallelism win: gang engine, one worker.
func BenchmarkSweepGangSingle(b *testing.B) {
	ts := benchTraces()
	cfgs := paperConfigs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(context.Background(), ts, cfgs, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportPerEvent(b, len(ts)*len(cfgs)*benchEvents)
}

// BenchmarkGangAccess measures the steady-state access loop alone:
// pre-built gang, allocation-free event fan-out.
func BenchmarkGangAccess(b *testing.B) {
	t := testTrace(benchEvents)
	cfgs := paperConfigs()[:DefaultShard]
	caches := make([]*cache.Cache, len(cfgs))
	for i, cfg := range cfgs {
		caches[i] = cache.MustNew(cfg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range t.Events {
			for _, c := range caches {
				c.Access(e)
			}
		}
	}
	b.StopTimer()
	reportPerEvent(b, len(cfgs)*benchEvents)
}

// TestAccessZeroAlloc pins the acceptance criterion that the
// steady-state access loop performs zero allocations per event.
func TestAccessZeroAlloc(t *testing.T) {
	tr := testTrace(5000)
	c := cache.MustNew(cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite})
	// Warm once so steady state (not cold-map growth) is measured.
	c.AccessTrace(tr)
	if av := testing.AllocsPerRun(10, func() { c.AccessTrace(tr) }); av != 0 {
		t.Fatalf("steady-state access loop allocates: %v allocs/run", av)
	}
}
