// Package bus models the port between the first-level cache and the
// next level of the hierarchy. §5.2 opens by noting that transaction
// counts are not enough: "when implementing actual systems, in order
// to choose the width of the port from the cache to the next lower
// level in the memory systems, information on the actual traffic in
// bytes is more useful", and closes by asking what average write-back
// bandwidth is needed relative to fetch bandwidth (the paper's answer:
// about half, varying widely by benchmark).
//
// The model charges each transaction a fixed arbitration overhead plus
// one cycle per port-width beats of data, separately for the fetch
// (read) direction and the write direction, and reports per-direction
// occupancy in cycles per instruction. Write-backs can be charged
// whole lines or only dirty sub-blocks (the §5.2 sub-block dirty-bit
// question).
package bus

import (
	"fmt"

	"cachewrite/internal/cache"
)

// Config describes the back-side port.
type Config struct {
	// WidthBytes is the port width (bytes transferred per cycle).
	WidthBytes int
	// OverheadCycles is the fixed per-transaction cost (arbitration,
	// address transfer).
	OverheadCycles int
	// SubblockWriteback charges write-backs only their dirty bytes
	// (requires sub-block dirty bits in the cache).
	SubblockWriteback bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.WidthBytes <= 0 || c.WidthBytes&(c.WidthBytes-1) != 0 {
		return fmt.Errorf("bus: width %d must be a positive power of two", c.WidthBytes)
	}
	if c.OverheadCycles < 0 {
		return fmt.Errorf("bus: negative overhead %d", c.OverheadCycles)
	}
	return nil
}

// Occupancy is the port utilization breakdown.
type Occupancy struct {
	// FetchCycles is the read-direction occupancy (line fetches).
	FetchCycles uint64
	// WriteCycles is the write-direction occupancy (write-through words
	// plus write-backs, including post-execution flush write-backs).
	WriteCycles uint64
	// Instructions normalizes the occupancies.
	Instructions uint64
}

// FetchPerInstr returns read-direction cycles per instruction.
func (o Occupancy) FetchPerInstr() float64 {
	if o.Instructions == 0 {
		return 0
	}
	return float64(o.FetchCycles) / float64(o.Instructions)
}

// WritePerInstr returns write-direction cycles per instruction.
func (o Occupancy) WritePerInstr() float64 {
	if o.Instructions == 0 {
		return 0
	}
	return float64(o.WriteCycles) / float64(o.Instructions)
}

// WriteToFetchRatio returns the §5.2 design number: the write-direction
// bandwidth requirement as a fraction of the fetch direction's.
func (o Occupancy) WriteToFetchRatio() float64 {
	if o.FetchCycles == 0 {
		return 0
	}
	return float64(o.WriteCycles) / float64(o.FetchCycles)
}

// beats returns the cycles to move n bytes over the port.
func (c Config) beats(n uint64) uint64 {
	w := uint64(c.WidthBytes)
	return (n + w - 1) / w
}

// txCycles returns the full cost of one transaction moving n bytes.
func (c Config) txCycles(n uint64) uint64 {
	return uint64(c.OverheadCycles) + c.beats(n)
}

// FromStats computes the port occupancy implied by a cache run. The
// line size comes from the cache configuration; write-through word
// sizes are averaged from the byte counters (exact when all words are
// the same size, within one beat otherwise).
func FromStats(cfg Config, cc cache.Config, s cache.Stats) (Occupancy, error) {
	if err := cfg.Validate(); err != nil {
		return Occupancy{}, err
	}
	if err := cc.Validate(); err != nil {
		return Occupancy{}, err
	}
	var o Occupancy
	o.Instructions = s.Instructions

	o.FetchCycles = s.Fetches * cfg.txCycles(uint64(cc.LineSize))

	// Write-through words: charge the exact byte total in beats plus
	// per-transaction overheads.
	if s.WriteThroughs > 0 {
		o.WriteCycles += s.WriteThroughs*uint64(cfg.OverheadCycles) + cfg.beats(s.WriteThroughBytes)
	}

	// Write-backs, program execution plus flush.
	wbs := s.Writebacks + s.FlushWritebacks
	if wbs > 0 {
		if cfg.SubblockWriteback {
			dirty := s.WritebackBytesDirty + s.FlushVictimDirtyBytes
			o.WriteCycles += wbs*uint64(cfg.OverheadCycles) + cfg.beats(dirty)
		} else {
			o.WriteCycles += wbs * cfg.txCycles(uint64(cc.LineSize))
		}
	}
	return o, nil
}
