package bus_test

import (
	"fmt"

	"cachewrite/internal/bus"
	"cachewrite/internal/cache"
	"cachewrite/internal/synth"
)

// Example sizes the back-side port for a copy workload: §5.2's
// write-vs-fetch bandwidth question.
func Example() {
	t := synth.Copy(0x10000, 0x80000, 2000, 8)
	cc := cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
	c := cache.MustNew(cc)
	c.AccessTrace(t)
	c.Flush()
	o, err := bus.FromStats(bus.Config{WidthBytes: 8, OverheadCycles: 1}, cc, c.Stats())
	if err != nil {
		panic(err)
	}
	fmt.Printf("write/fetch bandwidth ratio: %.2f\n", o.WriteToFetchRatio())
	// Output:
	// write/fetch bandwidth ratio: 0.50
}
