package bus

import (
	"testing"

	"cachewrite/internal/cache"
)

func cacheCfg() cache.Config {
	return cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
}

func TestValidate(t *testing.T) {
	if err := (Config{WidthBytes: 8, OverheadCycles: 1}).Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{WidthBytes: 0},
		{WidthBytes: -4},
		{WidthBytes: 12},
		{WidthBytes: 8, OverheadCycles: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := FromStats(Config{}, cacheCfg(), cache.Stats{}); err == nil {
		t.Error("FromStats accepted bad bus config")
	}
	if _, err := FromStats(Config{WidthBytes: 8}, cache.Config{}, cache.Stats{}); err == nil {
		t.Error("FromStats accepted bad cache config")
	}
}

func TestBeatsAndOverhead(t *testing.T) {
	cfg := Config{WidthBytes: 8, OverheadCycles: 2}
	// A 16B line fetch: 2 overhead + 2 beats = 4 cycles.
	s := cache.Stats{Fetches: 3, Instructions: 100}
	o, err := FromStats(cfg, cacheCfg(), s)
	if err != nil {
		t.Fatal(err)
	}
	if o.FetchCycles != 12 {
		t.Errorf("fetch cycles = %d, want 12", o.FetchCycles)
	}
	if o.FetchPerInstr() != 0.12 {
		t.Errorf("fetch/instr = %v", o.FetchPerInstr())
	}
}

func TestWriteThroughWordCharging(t *testing.T) {
	cfg := Config{WidthBytes: 8, OverheadCycles: 1}
	// 10 words totalling 48 bytes: 10 overheads + 6 beats = 16 cycles.
	s := cache.Stats{WriteThroughs: 10, WriteThroughBytes: 48, Instructions: 10}
	o, err := FromStats(cfg, cacheCfg(), s)
	if err != nil {
		t.Fatal(err)
	}
	if o.WriteCycles != 16 {
		t.Errorf("write cycles = %d, want 16", o.WriteCycles)
	}
}

func TestSubblockWriteback(t *testing.T) {
	s := cache.Stats{
		Writebacks: 4, WritebackBytesFull: 64, WritebackBytesDirty: 20,
		FlushWritebacks: 1, FlushVictimDirtyBytes: 4,
		Instructions: 100,
	}
	full := Config{WidthBytes: 8, OverheadCycles: 1}
	o1, err := FromStats(full, cacheCfg(), s)
	if err != nil {
		t.Fatal(err)
	}
	// 5 write-backs x (1 overhead + 2 beats of 16B) = 15.
	if o1.WriteCycles != 15 {
		t.Errorf("full-line write cycles = %d, want 15", o1.WriteCycles)
	}
	sub := full
	sub.SubblockWriteback = true
	o2, err := FromStats(sub, cacheCfg(), s)
	if err != nil {
		t.Fatal(err)
	}
	// 5 overheads + ceil(24/8)=3 beats = 8.
	if o2.WriteCycles != 8 {
		t.Errorf("sub-block write cycles = %d, want 8", o2.WriteCycles)
	}
	if o2.WriteCycles >= o1.WriteCycles {
		t.Error("sub-block write-back did not reduce occupancy")
	}
}

func TestRatios(t *testing.T) {
	var o Occupancy
	if o.FetchPerInstr() != 0 || o.WritePerInstr() != 0 || o.WriteToFetchRatio() != 0 {
		t.Error("zero occupancy divides by zero")
	}
	o = Occupancy{FetchCycles: 100, WriteCycles: 50, Instructions: 1000}
	if o.WriteToFetchRatio() != 0.5 {
		t.Errorf("ratio = %v, want 0.5 (the paper's answer)", o.WriteToFetchRatio())
	}
}

func TestOddByteTotalRoundsUp(t *testing.T) {
	cfg := Config{WidthBytes: 16}
	s := cache.Stats{WriteThroughs: 1, WriteThroughBytes: 17}
	o, err := FromStats(cfg, cacheCfg(), s)
	if err != nil {
		t.Fatal(err)
	}
	if o.WriteCycles != 2 {
		t.Errorf("write cycles = %d, want 2 (17B over a 16B port)", o.WriteCycles)
	}
}
