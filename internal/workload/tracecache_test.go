package workload

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cachewrite/internal/trace"
)

func TestGenerateCachedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want, err := Generate("liver", 1)
	if err != nil {
		t.Fatal(err)
	}

	// Miss: generates and stores.
	got, err := GenerateCached(dir, "liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cached-miss trace differs from direct generation")
	}
	path := CachePath(dir, "liver", 1)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache entry not written: %v", err)
	}

	// Hit: decodes the stored file and matches byte-for-byte.
	got2, err := GenerateCached(dir, "liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("cache-hit trace differs from direct generation")
	}
}

func TestGenerateCachedEmptyDirDisables(t *testing.T) {
	got, err := GenerateCached("", "liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Fatal("empty trace")
	}
}

func TestGenerateCachedCorruptEntryRegenerates(t *testing.T) {
	dir := t.TempDir()
	path := CachePath(dir, "liver", 1)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("CWT1 garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := Generate("liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenerateCached(dir, "liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("regenerated trace differs after corrupt cache entry")
	}
	// The corrupt entry must have been replaced with a decodable one.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := trace.ReadBinary(f); err != nil {
		t.Fatalf("cache entry still corrupt after regeneration: %v", err)
	}
}

func TestGenerateCachedRejectsWrongName(t *testing.T) {
	dir := t.TempDir()
	// Store grr's trace where liver's entry should live.
	grr, err := Generate("grr", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := storeCached(CachePath(dir, "liver", 1), grr); err != nil {
		t.Fatal(err)
	}
	got, err := GenerateCached(dir, "liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "liver" {
		t.Fatalf("got trace %q, want regenerated liver", got.Name)
	}
}

func TestCachePathKeying(t *testing.T) {
	a := CachePath("d", "liver", 1)
	if CachePath("d", "liver", 1) != a {
		t.Fatal("CachePath is not deterministic")
	}
	if CachePath("d", "liver", 2) == a || CachePath("d", "grr", 1) == a {
		t.Fatal("CachePath does not distinguish name/scale")
	}
	// Scale <= 0 is clamped to 1 everywhere, including the key.
	if CachePath("d", "liver", 0) != a {
		t.Fatal("CachePath(scale 0) should alias scale 1")
	}
	if !strings.Contains(a, "liver-s1-") {
		t.Fatalf("CachePath %q lacks the human-readable prefix", a)
	}
}

func TestGenerateAllCached(t *testing.T) {
	if testing.Short() {
		t.Skip("real workloads in -short mode")
	}
	dir := t.TempDir()
	ts, err := GenerateAllCached(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != len(PaperOrder()) {
		t.Fatalf("got %d traces, want %d", len(ts), len(PaperOrder()))
	}
	for i, name := range PaperOrder() {
		if ts[i].Name != name {
			t.Fatalf("trace %d is %q, want %q", i, ts[i].Name, name)
		}
	}
	// Second pass is a pure cache hit and must agree.
	ts2, err := GenerateAllCached(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		if !reflect.DeepEqual(ts[i], ts2[i]) {
			t.Fatalf("cache-hit trace %q differs", ts[i].Name)
		}
	}
}

func TestResolveCacheDir(t *testing.T) {
	if got := ResolveCacheDir("off"); got != "" {
		t.Fatalf("ResolveCacheDir(off) = %q", got)
	}
	if got := ResolveCacheDir("none"); got != "" {
		t.Fatalf("ResolveCacheDir(none) = %q", got)
	}
	if got := ResolveCacheDir("/tmp/x"); got != "/tmp/x" {
		t.Fatalf("ResolveCacheDir(/tmp/x) = %q", got)
	}
	def, err := DefaultCacheDir()
	if err == nil {
		if got := ResolveCacheDir("auto"); got != def {
			t.Fatalf("ResolveCacheDir(auto) = %q, want %q", got, def)
		}
		if got := ResolveCacheDir(""); got != def {
			t.Fatalf("ResolveCacheDir(\"\") = %q, want %q", got, def)
		}
	}
}
