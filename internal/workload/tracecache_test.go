package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cachewrite/internal/trace"
)

// captureLogf swaps Logf for a collector for the test's duration.
func captureLogf(t *testing.T) func() []string {
	t.Helper()
	var mu sync.Mutex
	var lines []string
	prev := Logf
	Logf = func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	t.Cleanup(func() { Logf = prev })
	return func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), lines...)
	}
}

func TestGenerateCachedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want, err := Generate("liver", 1)
	if err != nil {
		t.Fatal(err)
	}

	// Miss: generates and stores.
	got, err := GenerateCached(dir, "liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cached-miss trace differs from direct generation")
	}
	path := CachePath(dir, "liver", 1)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache entry not written: %v", err)
	}

	// Hit: decodes the stored file and matches byte-for-byte.
	got2, err := GenerateCached(dir, "liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("cache-hit trace differs from direct generation")
	}
}

func TestGenerateCachedEmptyDirDisables(t *testing.T) {
	got, err := GenerateCached("", "liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Fatal("empty trace")
	}
}

func TestGenerateCachedCorruptEntryRegenerates(t *testing.T) {
	logs := captureLogf(t)
	dir := t.TempDir()
	path := CachePath(dir, "liver", 1)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("CWT1 garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := Generate("liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenerateCached(dir, "liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("regenerated trace differs after corrupt cache entry")
	}
	// The corrupt entry must have been replaced with a decodable one.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := trace.ReadBinary(f); err != nil {
		t.Fatalf("cache entry still corrupt after regeneration: %v", err)
	}
	// The corrupt bytes must be quarantined for post-mortem, with a
	// warning logged, not silently destroyed.
	q, err := os.ReadFile(path + quarantineSuffix)
	if err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	if string(q) != "CWT1 garbage" {
		t.Fatalf("quarantined bytes = %q", q)
	}
	found := false
	for _, l := range logs() {
		if strings.Contains(l, "quarantined") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no quarantine warning logged; logs: %v", logs())
	}
}

// TestGenerateCachedTruncatedEntryRegenerates: a torn (truncated)
// CWT1 entry — the shape a full disk or kill-during-copy leaves — is
// quarantined and regenerated, not fatal.
func TestGenerateCachedTruncatedEntryRegenerates(t *testing.T) {
	captureLogf(t)
	dir := t.TempDir()
	want, err := GenerateCached(dir, "liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	path := CachePath(dir, "liver", 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := GenerateCached(dir, "liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("regenerated trace differs after truncated cache entry")
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Fatalf("truncated entry not quarantined: %v", err)
	}
}

// TestGenerateCachedReadOnlyDirDowngrades: when the cache directory
// cannot be written the run continues on the in-memory trace with a
// warning — it must never fail.
func TestGenerateCachedReadOnlyDirDowngrades(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	logs := captureLogf(t)
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })
	got, err := GenerateCached(dir, "liver", 1)
	if err != nil {
		t.Fatalf("read-only cache dir failed the run: %v", err)
	}
	if got.Len() == 0 {
		t.Fatal("empty trace")
	}
	found := false
	for _, l := range logs() {
		if strings.Contains(l, "in-memory") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no downgrade warning logged; logs: %v", logs())
	}
}

// TestSweepTempFiles: stale .tmp-* leftovers from killed runs are
// removed on first cache use; fresh ones (a concurrent run's in-flight
// write) and real entries are kept.
func TestSweepTempFiles(t *testing.T) {
	captureLogf(t)
	dir := t.TempDir()
	stale := filepath.Join(dir, ".tmp-12345")
	fresh := filepath.Join(dir, ".tmp-67890")
	keep := filepath.Join(dir, "liver-s1-feedface.cwt")
	for _, p := range []string{stale, fresh, keep} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpMaxAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateCached(dir, "liver", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived the sweep (stat err %v)", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp file was swept: %v", err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("cache entry was swept: %v", err)
	}
}

// TestEnforceBudgetLRU: eviction removes least-recently-used entries
// first and stops as soon as the directory fits the budget.
func TestEnforceBudgetLRU(t *testing.T) {
	captureLogf(t)
	dir := t.TempDir()
	mk := func(name string, age time.Duration) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, make([]byte, 1000), 0o644); err != nil {
			t.Fatal(err)
		}
		when := time.Now().Add(-age)
		if err := os.Chtimes(p, when, when); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldest := mk("a-s1-00.cwt", 3*time.Hour)
	middle := mk("b-s1-01.cwt", 2*time.Hour)
	newest := mk("c-s1-02.cwt", time.Hour)
	other := filepath.Join(dir, "unrelated.txt")
	if err := os.WriteFile(other, make([]byte, 4000), 0o644); err != nil {
		t.Fatal(err)
	}

	evicted, err := EnforceBudget(dir, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 1 {
		t.Fatalf("evicted %d entries, want 1", evicted)
	}
	if _, err := os.Stat(oldest); !os.IsNotExist(err) {
		t.Error("oldest entry survived eviction")
	}
	for _, p := range []string{middle, newest, other} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s wrongly evicted: %v", p, err)
		}
	}
	// Under budget: no-op. Disabled budget: no-op.
	if n, err := EnforceBudget(dir, 1<<30); err != nil || n != 0 {
		t.Fatalf("under-budget eviction = %d, %v", n, err)
	}
	if n, err := EnforceBudget(dir, 0); err != nil || n != 0 {
		t.Fatalf("disabled budget eviction = %d, %v", n, err)
	}
}

// TestEnforceBudgetHitRefreshesLRU: a cache hit must protect the entry
// from eviction ahead of colder entries.
func TestEnforceBudgetHitRefreshesLRU(t *testing.T) {
	captureLogf(t)
	dir := t.TempDir()
	if _, err := GenerateCached(dir, "liver", 1); err != nil {
		t.Fatal(err)
	}
	hot := CachePath(dir, "liver", 1)
	// Age the real entry, then add a newer decoy; a hit on the real
	// entry must out-recent the decoy.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(hot, old, old); err != nil {
		t.Fatal(err)
	}
	cold := filepath.Join(dir, "decoy-s1-00.cwt")
	if err := os.WriteFile(cold, []byte("decoy"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateCached(dir, "liver", 1); err != nil { // hit: bumps mtime
		t.Fatal(err)
	}
	info, err := os.Stat(hot)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ModTime().After(old.Add(time.Minute)) {
		t.Fatalf("cache hit did not refresh mtime (still %v)", info.ModTime())
	}
	hotSize, err := os.Stat(hot)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EnforceBudget(dir, hotSize.Size()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(hot); err != nil {
		t.Errorf("recently hit entry was evicted: %v", err)
	}
	if _, err := os.Stat(cold); !os.IsNotExist(err) {
		t.Errorf("cold decoy survived eviction (stat err %v)", err)
	}
}

func TestGenerateCachedRejectsWrongName(t *testing.T) {
	dir := t.TempDir()
	// Store grr's trace where liver's entry should live.
	grr, err := Generate("grr", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := storeCached(CachePath(dir, "liver", 1), grr); err != nil {
		t.Fatal(err)
	}
	got, err := GenerateCached(dir, "liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "liver" {
		t.Fatalf("got trace %q, want regenerated liver", got.Name)
	}
}

func TestCachePathKeying(t *testing.T) {
	a := CachePath("d", "liver", 1)
	if CachePath("d", "liver", 1) != a {
		t.Fatal("CachePath is not deterministic")
	}
	if CachePath("d", "liver", 2) == a || CachePath("d", "grr", 1) == a {
		t.Fatal("CachePath does not distinguish name/scale")
	}
	// Scale <= 0 is clamped to 1 everywhere, including the key.
	if CachePath("d", "liver", 0) != a {
		t.Fatal("CachePath(scale 0) should alias scale 1")
	}
	if !strings.Contains(a, "liver-s1-") {
		t.Fatalf("CachePath %q lacks the human-readable prefix", a)
	}
}

func TestGenerateAllCached(t *testing.T) {
	if testing.Short() {
		t.Skip("real workloads in -short mode")
	}
	dir := t.TempDir()
	ts, err := GenerateAllCached(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != len(PaperOrder()) {
		t.Fatalf("got %d traces, want %d", len(ts), len(PaperOrder()))
	}
	for i, name := range PaperOrder() {
		if ts[i].Name != name {
			t.Fatalf("trace %d is %q, want %q", i, ts[i].Name, name)
		}
	}
	// Second pass is a pure cache hit and must agree.
	ts2, err := GenerateAllCached(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		if !reflect.DeepEqual(ts[i], ts2[i]) {
			t.Fatalf("cache-hit trace %q differs", ts[i].Name)
		}
	}
}

func TestResolveCacheDir(t *testing.T) {
	if got := ResolveCacheDir("off"); got != "" {
		t.Fatalf("ResolveCacheDir(off) = %q", got)
	}
	if got := ResolveCacheDir("none"); got != "" {
		t.Fatalf("ResolveCacheDir(none) = %q", got)
	}
	if got := ResolveCacheDir("/tmp/x"); got != "/tmp/x" {
		t.Fatalf("ResolveCacheDir(/tmp/x) = %q", got)
	}
	def, err := DefaultCacheDir()
	if err == nil {
		if got := ResolveCacheDir("auto"); got != def {
			t.Fatalf("ResolveCacheDir(auto) = %q, want %q", got, def)
		}
		if got := ResolveCacheDir(""); got != def {
			t.Fatalf("ResolveCacheDir(\"\") = %q, want %q", got, def)
		}
	}
}
