package workload

import "cachewrite/internal/memsim"

func init() { register(liver{}) }

// liver reproduces the paper's "liver" benchmark: the first fourteen
// Livermore Fortran kernels. Each kernel streams with unit stride
// through shared input vectors and writes its own result vector.
//
// Properties the paper reports and this stand-in preserves (§4):
//   - "liver is a synthetic benchmark made from a series of loop
//     kernels, and the results of loop kernels are not read by
//     successive kernels. However, successive loop kernels read the
//     original matrices again." Result vectors here are per-kernel and
//     never re-read; input vectors are re-read on every pass.
//   - Inputs (~32KB) fit in a 32–64KB cache; inputs plus results
//     (~120KB) only fit at 128KB — giving write-around its >100%
//     write-miss reduction window at 32–64KB (Fig 13) and the miss-rate
//     drop at 128KB (Fig 18).
//   - All data is 8B double precision with unit stride, so 4B and 8B
//     lines behave identically (Fig 1) and dirty victims are ~100%
//     dirty on 8B lines (Fig 24).
type liver struct{}

func (liver) Name() string { return "liver" }

func (liver) Description() string {
	return "Livermore Fortran kernels 1-14 over shared inputs with per-kernel result vectors"
}

const (
	liverN     = 980 // 1D vector length (kernels index up to n+11)
	liverPass  = 5   // kernel-set passes per unit of scale
	liverJ     = 30  // 2D minor dimension for kernels 8-10, 13
	liverK2    = 32  // 2D major dimension
	liverLoop3 = 3   // inner repetitions for the cheap kernels
)

func (liver) Run(m *memsim.Mem, scale int) {
	scale = clampScale(scale)
	r := newRNG(0x11fe4)

	// Shared inputs, re-read by every kernel on every pass: 4 x 992
	// doubles = ~31KB.
	u := m.NewF64Array(liverN + 12)
	v := m.NewF64Array(liverN + 12)
	w := m.NewF64Array(liverN + 12)
	z := m.NewF64Array(liverN + 12)
	for _, a := range []memsim.F64Array{u, v, w, z} {
		for i := 0; i < a.Len(); i++ {
			m.Step(2)
			a.Set(i, 0.5+r.f64())
		}
	}

	// Per-kernel result vectors, written but never re-read across
	// kernels: ~11 x 8KB = 88KB, plus 2D planes.
	res := make([]memsim.F64Array, 15)
	for k := 1; k <= 14; k++ {
		res[k] = m.NewF64Array(liverN + 12)
	}
	px := m.NewF64Array(liverJ * liverK2)   // 2D plane for kernels 9, 10
	plan := m.NewF64Array(liverJ * liverK2) // 2D plane for kernel 8

	for pass := 0; pass < scale*liverPass; pass++ {
		liverPassOnce(m, u, v, w, z, res, px, plan)
	}
}

func liverPassOnce(m *memsim.Mem, u, v, w, z memsim.F64Array, res []memsim.F64Array, px, plan memsim.F64Array) {
	n := liverN
	q, r5, t5 := 0.5, 0.3, 0.2

	// Kernel 1: hydro fragment.
	for rep := 0; rep < liverLoop3; rep++ {
		for k := 0; k < n; k++ {
			m.Step(3)
			res[1].Set(k, q+v.Get(k)*(r5*z.Get(k+10)+t5*z.Get(k+11)))
		}
	}

	// Kernel 2: ICCG excerpt (incomplete Cholesky conjugate gradient).
	// Operates in place on its own result vector, seeded from inputs.
	for k := 0; k < n; k++ {
		m.Step(2)
		res[2].Set(k, u.Get(k)+v.Get(k))
	}
	for ipnt, ii := 0, n; ii >= 4; {
		ipntp := ipnt + ii
		ii /= 2
		i := ipntp
		for k := ipnt + 1; k < ipntp; k += 2 {
			m.Step(4)
			i++
			if i >= res[2].Len() {
				break
			}
			res[2].Set(i, res[2].Get(k)-v.Get(k%n)*res[2].Get(k-1))
		}
		ipnt = ipntp
		if ipnt+1 >= res[2].Len() {
			break
		}
	}

	// Kernel 3: inner product (reads only; result is a scalar in a
	// register).
	for rep := 0; rep < 2; rep++ {
		sum := 0.0
		for k := 0; k < n; k++ {
			m.Step(2)
			sum += z.Get(k) * u.Get(k)
		}
		res[3].Set(0, sum)
	}

	// Kernel 4: banded linear equations.
	for l := 6; l < n; l += 7 {
		m.Step(3)
		sum := 0.0
		for k := l - 6; k < l; k++ {
			m.Step(2)
			sum += w.Get(k) * v.Get(k)
		}
		res[4].Set(l, u.Get(l)-sum)
	}

	// Kernel 5: tri-diagonal elimination, below diagonal. The previous
	// element is loop-carried in a register, as any compiler would
	// allocate it.
	prev := z.Get(0)
	res[5].Set(0, prev)
	for i := 1; i < n; i++ {
		m.Step(3)
		prev = z.Get(i) * (u.Get(i) - prev)
		res[5].Set(i, prev)
	}

	// Kernel 6: general linear recurrence (triangular read pattern over
	// the input, bounded band to keep cost linear-ish).
	for i := 1; i < n; i++ {
		m.Step(2)
		sum := 0.0
		lo := i - 4
		if lo < 0 {
			lo = 0
		}
		for k := lo; k < i; k++ {
			m.Step(2)
			sum += z.Get(i-k-1) * w.Get(k)
		}
		res[6].Set(i, sum)
	}

	// Kernel 7: equation of state fragment. u[k+1..k+3] are loop-carried
	// in registers (they were read as u[k+2..k+4] on earlier iterations),
	// so each element costs three fresh loads.
	for rep := 0; rep < liverLoop3; rep++ {
		u1, u2, u3 := u.Get(1), u.Get(2), u.Get(3)
		for k := 0; k < n; k++ {
			m.Step(4)
			uk := u1
			if k > 0 {
				uk = u.Get(k)
			}
			_ = uk
			res[7].Set(k, u1+q*(z.Get(k)+q*v.Get(k))+
				t5*(u3+q*(u2+q*u1)))
			u1, u2, u3 = u2, u3, u.Get(k+4)
		}
	}

	// Kernel 8: ADI integration (2D plane, reads inputs, writes plan).
	for j := 1; j < liverJ-1; j++ {
		for k := 1; k < liverK2-1; k++ {
			m.Step(4)
			idx := j*liverK2 + k
			plan.Set(idx, q*(u.Get(idx%liverN)+v.Get((idx+1)%liverN))+
				t5*z.Get((idx+2)%liverN))
		}
	}

	// Kernel 9: integrate predictors (row read-modify-write over px).
	for j := 0; j < liverJ; j++ {
		m.Step(2)
		idx := j * liverK2
		px.Set(idx, px.Get(idx+1)+q*px.Get(idx+2)+t5*px.Get(idx+3)+
			u.Get(j)*v.Get(j))
	}

	// Kernel 10: difference predictors (column-ish RMW over px).
	for j := 0; j < liverJ; j++ {
		base := j * liverK2
		for k := 4; k < 12; k++ {
			m.Step(2)
			px.Set(base+k, px.Get(base+k-1)+z.Get((base+k)%liverN))
		}
	}

	// Kernel 11: first sum — the running sum is register-carried; each
	// element is one load and one store.
	sum11 := w.Get(0)
	res[11].Set(0, sum11)
	for k := 1; k < n; k++ {
		m.Step(2)
		sum11 += w.Get(k)
		res[11].Set(k, sum11)
	}

	// Kernel 12: first difference — pure streaming, never reads its own
	// output.
	for rep := 0; rep < liverLoop3+2; rep++ {
		for k := 0; k < n; k++ {
			m.Step(2)
			res[12].Set(k, v.Get(k+1)-v.Get(k))
		}
	}

	// Kernel 13: 2D particle in cell (gather from the plane, scatter to
	// the result).
	for ip := 0; ip < n/2; ip++ {
		m.Step(5)
		i1 := int(px.Peek((ip%liverJ)*liverK2)) & (liverJ - 2)
		if i1 < 0 {
			i1 = 0
		}
		j1 := ip % (liverK2 - 2)
		idx := i1*liverK2 + j1
		res[13].Set(ip, px.Get(idx)+u.Get(ip)+v.Get(ip))
	}

	// Kernel 14: 1D particle in cell (gather-scatter with RMW on the
	// result vector).
	for ip := 0; ip < n; ip++ {
		m.Step(4)
		grid := int(z.Peek(ip)*float64(n)) % n
		if grid < 0 {
			grid = -grid
		}
		res[14].Set(grid, res[14].Get(grid)+w.Get(ip))
	}
}
