package workload

import "cachewrite/internal/memsim"

func init() { register(yaccWL{}) }

// yaccWL reproduces the paper's "yacc" benchmark as the thing yacc
// actually spends its time being: a table-driven LR parser. The SLR
// parse tables for the classic expression grammar
//
//	E -> E + T | T
//	T -> T * F | F
//	F -> ( E ) | id
//
// live in traced static memory and are consulted on every token; the
// state and value stacks live in traced stack memory.
//
// Property preserved (paper §3, Fig 2): yacc has very good write
// locality — ≥80% of its write traffic is removed by a write-back
// cache — because almost all stores hit the top few words of the parse
// stacks. Reads dominate (table and input scanning), matching yacc's
// 3.4:1 load:store ratio in Table 1.
type yaccWL struct{}

func (yaccWL) Name() string { return "yacc" }

func (yaccWL) Description() string {
	return "SLR(1) table-driven expression parser with traced parse tables and stacks"
}

// Terminal symbols.
const (
	yID = iota
	yPlus
	yStar
	yLParen
	yRParen
	yEOF
	yNumTerms
)

// Nonterminals (for the goto table).
const (
	yE = iota
	yT
	yF
	yNumNonterms
)

// Action encoding in the table words.
const (
	actErr    = 0
	actShift  = 0x1000
	actReduce = 0x2000
	actAccept = 0x3000
	actMask   = 0xf000
	argMask   = 0x0fff
)

const yaccStates = 12

// slrAction is the textbook SLR table for the grammar (dragon book Fig
// 4.37). Productions: 1:E->E+T 2:E->T 3:T->T*F 4:T->F 5:F->(E) 6:F->id.
var slrAction = [yaccStates][yNumTerms]uint32{
	0:  {yID: actShift | 5, yLParen: actShift | 4},
	1:  {yPlus: actShift | 6, yEOF: actAccept},
	2:  {yPlus: actReduce | 2, yStar: actShift | 7, yRParen: actReduce | 2, yEOF: actReduce | 2},
	3:  {yPlus: actReduce | 4, yStar: actReduce | 4, yRParen: actReduce | 4, yEOF: actReduce | 4},
	4:  {yID: actShift | 5, yLParen: actShift | 4},
	5:  {yPlus: actReduce | 6, yStar: actReduce | 6, yRParen: actReduce | 6, yEOF: actReduce | 6},
	6:  {yID: actShift | 5, yLParen: actShift | 4},
	7:  {yID: actShift | 5, yLParen: actShift | 4},
	8:  {yPlus: actShift | 6, yRParen: actShift | 11},
	9:  {yPlus: actReduce | 1, yStar: actShift | 7, yRParen: actReduce | 1, yEOF: actReduce | 1},
	10: {yPlus: actReduce | 3, yStar: actReduce | 3, yRParen: actReduce | 3, yEOF: actReduce | 3},
	11: {yPlus: actReduce | 5, yStar: actReduce | 5, yRParen: actReduce | 5, yEOF: actReduce | 5},
}

var slrGoto = [yaccStates][yNumNonterms]uint32{
	0: {yE: 1, yT: 2, yF: 3},
	4: {yE: 8, yT: 2, yF: 3},
	6: {yT: 9, yF: 3},
	7: {yF: 10},
}

// prodLen[p] and prodLHS[p] describe production p.
var prodLen = [7]uint32{0, 3, 1, 3, 1, 3, 1}
var prodLHS = [7]uint32{0, yE, yE, yT, yT, yF, yF}

const (
	yaccInputToks = 11000 // tokens per parse batch (~88KB: yacc fits a 128KB cache, not a 64KB one)
	yaccBatches   = 8     // batches per unit of scale
	yaccStackMax  = 256
)

func (yaccWL) Run(m *memsim.Mem, scale int) {
	scale = clampScale(scale)
	r := newRNG(0x9acc)

	// Load the parse tables into traced static memory (yacc's tables are
	// static data in the real program).
	action := m.NewU32ArrayStatic(yaccStates * yNumTerms)
	gotoTab := m.NewU32ArrayStatic(yaccStates * yNumNonterms)
	for s := 0; s < yaccStates; s++ {
		for t := 0; t < yNumTerms; t++ {
			m.Step(1)
			action.Set(s*yNumTerms+t, slrAction[s][t])
		}
		for nt := 0; nt < yNumNonterms; nt++ {
			m.Step(1)
			gotoTab.Set(s*yNumNonterms+nt, slrGoto[s][nt])
		}
	}

	// Token input buffer: (kind, value) pairs.
	input := m.NewU32Array(yaccInputToks * 2)
	stateStack := m.NewU32ArrayStack(yaccStackMax)
	valueStack := m.NewU32ArrayStack(yaccStackMax)

	for batch := 0; batch < scale*yaccBatches; batch++ {
		n := genTokens(m, input, r)
		parseLR(m, action, gotoTab, input, n, stateStack, valueStack)
	}
}

// genTokens writes a stream of valid expressions (each terminated by
// EOF) into the input buffer and returns the token count.
func genTokens(m *memsim.Mem, input memsim.U32Array, r *rng) int {
	n := 0
	put := func(kind, val uint32) {
		if 2*n+1 >= input.Len() {
			return
		}
		m.Step(2)
		input.Set(2*n, kind)
		input.Set(2*n+1, val)
		n++
	}
	// Emit expressions until the buffer is nearly full, leaving room to
	// close every expression with EOF.
	for 2*n+64 < input.Len() {
		genYaccExpr(put, r, 4)
		put(yEOF, 0)
	}
	return n
}

func genYaccExpr(put func(kind, val uint32), r *rng, depth int) {
	if depth == 0 || r.intn(3) == 0 {
		put(yID, uint32(r.intn(97)+1))
		return
	}
	paren := r.intn(3) == 0
	if paren {
		put(yLParen, 0)
	}
	genYaccExpr(put, r, depth-1)
	if r.intn(2) == 0 {
		put(yPlus, 0)
	} else {
		put(yStar, 0)
	}
	genYaccExpr(put, r, depth-1)
	if paren {
		put(yRParen, 0)
	}
}

// parseLR runs the LR automaton over the token stream, evaluating
// expression values on the value stack. It returns the sum of all
// accepted expression values (used by tests to check the parser really
// parses).
func parseLR(m *memsim.Mem, action, gotoTab, input memsim.U32Array, nTok int, stateStack, valueStack memsim.U32Array) uint32 {
	var accSum uint32
	pos := 0
	for pos < nTok {
		// Begin a new expression parse.
		sp := 0
		m.Step(1)
		stateStack.Set(0, 0)
		for pos < nTok {
			m.Step(2)
			tok := input.Get(2 * pos)
			tokVal := input.Get(2*pos + 1)
			state := stateStack.Get(sp)
			act := action.Get(int(state)*yNumTerms + int(tok))
			switch act & actMask {
			case actShift:
				if sp+1 >= yaccStackMax {
					pos++
					continue
				}
				sp++
				stateStack.Set(sp, act&argMask)
				valueStack.Set(sp, tokVal)
				pos++
			case actReduce:
				p := act & argMask
				l := int(prodLen[p])
				// Semantic action over the popped values.
				var v uint32
				switch p {
				case 1: // E -> E + T
					v = valueStack.Get(sp-2) + valueStack.Get(sp)
				case 3: // T -> T * F
					v = valueStack.Get(sp-2) * valueStack.Get(sp)
				case 5: // F -> ( E )
					v = valueStack.Get(sp - 1)
				default: // unit productions
					v = valueStack.Get(sp)
				}
				sp -= l
				if sp < 0 {
					sp = 0
				}
				top := stateStack.Get(sp)
				next := gotoTab.Get(int(top)*yNumNonterms + int(prodLHS[p]))
				if sp+1 >= yaccStackMax {
					continue
				}
				sp++
				stateStack.Set(sp, next)
				valueStack.Set(sp, v)
			case actAccept:
				accSum += valueStack.Get(sp)
				pos++ // consume the EOF
				sp = -1
			default:
				// Error: skip the offending token (yacc's error recovery
				// is of course fancier; a skip keeps the automaton moving).
				pos++
			}
			if sp < 0 {
				break
			}
		}
	}
	return accSum
}
