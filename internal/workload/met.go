package workload

import "cachewrite/internal/memsim"

func init() { register(met{}) }

// met reproduces the paper's "met" benchmark (the second PC-board CAD
// tool) as iterative force-directed standard-cell placement: every
// iteration accumulates spring forces from each net into per-cell force
// accumulators, then sweeps the cell array applying the displacements.
//
// Properties preserved: met is read-heavy (Table 1: 36.4M reads vs
// 13.8M writes, 2.6:1) — force accumulation reads two positions per pin
// but writes one accumulator — and has good write locality (Fig 2):
// accumulators of well-connected cells are written repeatedly within an
// iteration and the update sweep writes sequentially.
type met struct{}

func (met) Name() string { return "met" }

func (met) Description() string {
	return "force-directed standard-cell placement over a netlist (accumulate/apply sweeps)"
}

const (
	metCells = 640
	metNets  = 1100
	metIters = 40 // placement iterations per unit of scale
)

func (met) Run(m *memsim.Mem, scale int) {
	scale = clampScale(scale)
	r := newRNG(0x3e70)

	// Cell positions as fixed-point u32 pairs (x, y): 1500*8B = 12KB.
	posX := m.NewU32Array(metCells)
	posY := m.NewU32Array(metCells)
	// Force accumulators: 12KB.
	forceX := m.NewU32Array(metCells)
	forceY := m.NewU32Array(metCells)
	// Netlist: each net is a (cellA, cellB) two-pin connection.
	netA := m.NewU32Array(metNets)
	netB := m.NewU32Array(metNets)
	// Per-iteration placement snapshots, written round-robin and read
	// back only by the (much later) detailed-placement stage -- i.e.
	// write-only at this timescale.
	const snapBufs = 48
	snaps := make([]memsim.U32Array, snapBufs)
	for i := range snaps {
		snaps[i] = m.NewU32Array(metCells)
	}

	// Initial random placement and netlist with locality: most nets
	// connect nearby cell indices (real netlists are locality-rich).
	for i := 0; i < metCells; i++ {
		m.Step(2)
		posX.Set(i, uint32(r.intn(1<<16)))
		posY.Set(i, uint32(r.intn(1<<16)))
	}
	for i := 0; i < metNets; i++ {
		m.Step(3)
		a := r.intn(metCells)
		b := a + r.intn(32) - 16
		if r.intn(8) == 0 {
			b = r.intn(metCells) // occasional long-distance net
		}
		if b < 0 {
			b = 0
		}
		if b >= metCells {
			b = metCells - 1
		}
		netA.Set(i, uint32(a))
		netB.Set(i, uint32(b))
	}

	for iter := 0; iter < scale*metIters; iter++ {
		// Zero the accumulators (sequential writes).
		for i := 0; i < metCells; i++ {
			m.Step(1)
			forceX.Set(i, 0)
			forceY.Set(i, 0)
		}
		// Accumulate: for each net read both endpoints' positions and
		// add the displacement into both accumulators (read-heavy,
		// write-locality-rich RMW). Forces are signed values carried in
		// uint32 words.
		for n := 0; n < metNets; n++ {
			m.Step(4)
			a := int(netA.Get(n))
			b := int(netB.Get(n))
			ax, ay := int32(posX.Get(a)), int32(posY.Get(a))
			bx, by := int32(posX.Get(b)), int32(posY.Get(b))
			dx := (bx - ax) / 4
			dy := (by - ay) / 4
			forceX.Set(a, uint32(int32(forceX.Get(a))+dx))
			forceY.Set(a, uint32(int32(forceY.Get(a))+dy))
			forceX.Set(b, uint32(int32(forceX.Get(b))-dx))
			forceY.Set(b, uint32(int32(forceY.Get(b))-dy))
		}
		// Apply: sweep the cells, moving each toward its force centroid.
		for i := 0; i < metCells; i++ {
			m.Step(3)
			posX.Set(i, uint32(int32(posX.Get(i))+int32(forceX.Get(i))/8))
			posY.Set(i, uint32(int32(posY.Get(i))+int32(forceY.Get(i))/8))
		}
		// Evaluate: total wirelength of the new placement (read-only
		// sweep over the netlist and positions).
		var wl int64
		for n := 0; n < metNets; n++ {
			m.Step(4)
			a := int(netA.Get(n))
			b := int(netB.Get(n))
			dx := int64(int32(posX.Get(b)) - int32(posX.Get(a)))
			dy := int64(int32(posY.Get(b)) - int32(posY.Get(a)))
			wl += dx*dx + dy*dy
		}
		// Snapshot the placement for the reporting stage (write-only).
		snap := snaps[iter%snapBufs]
		for i := 0; i < metCells; i++ {
			m.Step(1)
			snap.Set(i, posX.Get(i)<<16|posY.Get(i)&0xffff)
		}
		_ = wl
	}
}
