package workload_test

import (
	"fmt"

	"cachewrite/internal/workload"
)

// Example generates a benchmark trace and prints its Table 1 row.
func Example() {
	c, err := workload.Characterize("liver", 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d instructions, %d reads, %d writes\n",
		c.Name, c.Instructions, c.Reads, c.Writes)
	// Output:
	// liver: 693129 instructions, 277290 reads, 91128 writes
}
