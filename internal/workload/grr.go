package workload

import "cachewrite/internal/memsim"

func init() { register(grr{}) }

// grr reproduces the paper's "grr" benchmark (a printed-circuit-board
// CAD router) as a Lee-style BFS maze router: nets are routed one at a
// time by wavefront expansion inside the net's bounding box (plus a
// detour margin), then committed by backtracing the cost field.
//
// Grid cells pack everything a router consults per step into one word —
// obstacle flag, routed flag, and an epoch-tagged BFS cost — the way
// routers of the era laid out their grids. Epoch tagging means no
// clearing pass between nets, so each net's working set is its search
// region plus the BFS ring buffer. That gives grr the properties the
// paper reports: very good write locality (Fig 2: >=80% of write traffic
// removed by a write-back cache at moderate sizes, because the frontier
// queue and nearby cost cells are rewritten net after net) and the
// largest reference count of the six benchmarks (Table 1).
type grr struct{}

func (grr) Name() string { return "grr" }

func (grr) Description() string {
	return "Lee BFS maze router over a 48x48 grid with packed epoch-tagged cells and bounded search"
}

const (
	grrW         = 48 // grid width
	grrH         = 48 // grid height
	grrNets      = 3600
	grrBoards    = 14 // distinct board grids touched over the run
	grrBoardNets = 50 // nets routed per board-layer visit
	grrQueue     = 512
	grrMargin    = 6 // detour margin around the net bounding box

	grrObstacle = 1 << 31
	grrRouted   = 1 << 30
	grrEpochSh  = 12
	grrEpochMax = 1 << 17 // epochs wrap; the grid is re-tagged untraced
	grrCostMask = (1 << grrEpochSh) - 1
)

func (grr) Run(m *memsim.Mem, scale int) {
	scale = clampScale(scale)
	r := newRNG(0x6e12)

	// A routing job covers several boards; the router finishes a batch of
	// nets on one board before moving to the next. Within a board the
	// working set is one grid plus the BFS ring buffer; across the run
	// the footprint is grrBoards grids, so large caches still see
	// capacity misses, as the real (much longer) grr run did.
	boards := make([]memsim.U32Array, grrBoards)
	for b := range boards {
		boards[b] = m.NewU32Array(grrW * grrH)
		grid := boards[b]
		// Place fixed obstacles (components on the board).
		for i := 0; i < grid.Len(); i++ {
			m.Step(1)
			v := uint32(0)
			if r.intn(14) == 0 {
				v = grrObstacle
			}
			grid.Set(i, v)
		}
	}
	queue := m.NewU32Array(grrQueue) // BFS ring buffer (2KB)
	grid := boards[0]

	routedCount := 0
	epoch := uint32(0)
	for rep := 0; rep < scale; rep++ {
		for net := 0; net < grrNets; net++ {
			if net%grrBoardNets == 0 {
				grid = boards[(net/grrBoardNets)%grrBoards]
				// Each visit starts a fresh routing layer on the board:
				// rip up committed segments (untraced bookkeeping).
				for i := 0; i < grid.Len(); i++ {
					grid.Poke(i, grid.Peek(i)&grrObstacle)
				}
			}
			epoch++
			if epoch >= grrEpochMax {
				// Re-tag the whole grid (rare; untraced bookkeeping --
				// equivalent to widening the epoch field).
				for i := 0; i < grid.Len(); i++ {
					grid.Poke(i, grid.Peek(i)&(grrObstacle|grrRouted))
				}
				epoch = 1
			}
			sx, sy := r.intn(grrW), r.intn(grrH)
			// Mostly short nets: real netlists are locality-rich.
			var tx, ty int
			if r.intn(4) == 0 {
				tx, ty = r.intn(grrW), r.intn(grrH)
			} else {
				tx = clampInt(sx+r.intn(17)-8, 0, grrW-1)
				ty = clampInt(sy+r.intn(17)-8, 0, grrH-1)
			}
			if routeNet(m, grid, queue, epoch, sx, sy, tx, ty) {
				routedCount++
			}
		}
	}
	// Record the result where tests can see it (untraced bookkeeping).
	m.PokeU32(boards[0].Addr(0), uint32(routedCount))
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// routeNet runs a Lee BFS from (sx,sy) to (tx,ty) within the bounding
// box plus margin, then backtraces and commits the path. One grid read
// answers "obstacle? routed? visited this net? at what cost?".
func routeNet(m *memsim.Mem, grid, queue memsim.U32Array, epoch uint32, sx, sy, tx, ty int) bool {
	idx := func(x, y int) int { return y*grrW + x }
	x0 := clampInt(min(sx, tx)-grrMargin, 0, grrW-1)
	x1 := clampInt(max(sx, tx)+grrMargin, 0, grrW-1)
	y0 := clampInt(min(sy, ty)-grrMargin, 0, grrH-1)
	y1 := clampInt(max(sy, ty)+grrMargin, 0, grrH-1)

	if grid.Peek(idx(sx, sy))&grrObstacle != 0 || grid.Peek(idx(tx, ty))&grrObstacle != 0 {
		return false
	}

	head, tail := 0, 0
	push := func(x, y int, c uint32, flags uint32) {
		if tail-head >= grrQueue {
			return
		}
		m.Step(2)
		queue.Set(tail%grrQueue, uint32(y*grrW+x))
		tail++
		grid.Set(idx(x, y), flags|epoch<<grrEpochSh|c)
	}
	// cellInfo decodes one traced read of a grid cell.
	cellInfo := func(x, y int) (cost uint32, visited, blocked bool) {
		m.Step(1)
		v := grid.Get(idx(x, y))
		blocked = v&(grrObstacle|grrRouted) != 0
		if v&^uint32(grrObstacle|grrRouted)>>grrEpochSh == epoch {
			return v & grrCostMask, true, blocked
		}
		return 0, false, blocked
	}
	push(sx, sy, 1, 0)

	found := false
	for head < tail {
		m.Step(2)
		cell := int(queue.Get(head % grrQueue))
		head++
		x, y := cell%grrW, cell/grrW
		c, _, _ := cellInfo(x, y)
		if x == tx && y == ty {
			found = true
			break
		}
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx < x0 || nx > x1 || ny < y0 || ny > y1 {
				continue
			}
			_, seen, blocked := cellInfo(nx, ny)
			if seen || blocked {
				continue
			}
			push(nx, ny, c+1, 0)
		}
	}
	if !found {
		return false
	}

	// Backtrace: walk from target to source along decreasing cost,
	// committing the path (set the routed flag, keep the epoch tag).
	x, y := tx, ty
	for !(x == sx && y == sy) {
		m.Step(2)
		c, _, _ := cellInfo(x, y)
		grid.Set(idx(x, y), grrRouted|epoch<<grrEpochSh|c)
		moved := false
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx < x0 || nx > x1 || ny < y0 || ny > y1 {
				continue
			}
			if nc, seen, _ := cellInfo(nx, ny); seen && nc == c-1 {
				x, y = nx, ny
				moved = true
				break
			}
		}
		if !moved {
			break
		}
	}
	c, _, _ := cellInfo(sx, sy)
	grid.Set(idx(sx, sy), grrRouted|epoch<<grrEpochSh|c)
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
