package workload

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"cachewrite/internal/vfs"
)

// swapFS installs fsys as the package filesystem for one test.
func swapFS(t *testing.T, fsys vfs.FS) {
	t.Helper()
	old := FS
	FS = fsys
	t.Cleanup(func() { FS = old })
}

// captureEvents records structured cache events for one test.
func captureEvents(t *testing.T) *[]CacheEvent {
	t.Helper()
	var events []CacheEvent
	old := OnCacheEvent
	OnCacheEvent = func(e CacheEvent) { events = append(events, e) }
	t.Cleanup(func() { OnCacheEvent = old })
	return &events
}

// TestStoreDegradedUnderENOSPC proves the satellite fix: a full disk
// during a cache store no longer just logs — it emits a structured
// StoreDegraded event, bumps the counter, and the call still returns a
// working in-memory trace.
func TestStoreDegradedUnderENOSPC(t *testing.T) {
	dir := t.TempDir()
	// Op 1 is storeCached's MkdirAll, op 2 its CreateTemp — fail that
	// with ENOSPC. (Reads — the sweep's ReadDir, the lookup Open — are
	// not counted operations.)
	swapFS(t, vfs.NewFaulty(vfs.OS{}, vfs.Plan{FailAtOp: 2, FailKind: vfs.KindENOSPC}))
	events := captureEvents(t)
	before := CacheStatsSnapshot()

	tr, err := GenerateCached(dir, "ccom", 1)
	if err != nil {
		t.Fatalf("a full cache disk must not fail generation: %v", err)
	}
	if tr == nil || tr.Name != "ccom" {
		t.Fatalf("degraded call returned trace %+v", tr)
	}

	after := CacheStatsSnapshot()
	if after.StoreDegraded != before.StoreDegraded+1 {
		t.Fatalf("StoreDegraded counter %d -> %d, want +1", before.StoreDegraded, after.StoreDegraded)
	}
	if after.Misses != before.Misses+1 {
		t.Fatalf("Misses counter %d -> %d, want +1", before.Misses, after.Misses)
	}
	var degraded *CacheEvent
	for i := range *events {
		if (*events)[i].Kind == EventStoreDegraded {
			degraded = &(*events)[i]
		}
	}
	if degraded == nil {
		t.Fatalf("no StoreDegraded event emitted (events: %v)", *events)
	}
	if degraded.Name != "ccom" || degraded.Cause != "disk full" {
		t.Fatalf("event = %+v, want name ccom cause \"disk full\"", *degraded)
	}
	if !errors.Is(degraded.Err, syscall.ENOSPC) || !vfs.IsStorageFault(degraded.Err) {
		t.Fatalf("event error %v should classify as ENOSPC storage fault", degraded.Err)
	}

	// Nothing may be left in the cache dir: no entry, no temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("degraded store left files behind: %v", entries)
	}

	// With the disk healthy again the same call stores and then hits.
	swapFS(t, vfs.OS{})
	if _, err := GenerateCached(dir, "ccom", 1); err != nil {
		t.Fatalf("store after recovery: %v", err)
	}
	preHit := CacheStatsSnapshot()
	if _, err := GenerateCached(dir, "ccom", 1); err != nil {
		t.Fatalf("hit after recovery: %v", err)
	}
	if got := CacheStatsSnapshot(); got.Hits != preHit.Hits+1 {
		t.Fatalf("Hits counter %d -> %d, want +1 after recovery", preHit.Hits, got.Hits)
	}
}

// TestQuarantineEmitsEvent: a corrupt cache entry is quarantined with a
// structured event and counter, not just a log line.
func TestQuarantineEmitsEvent(t *testing.T) {
	dir := t.TempDir()
	path := CachePath(dir, "ccom", 1)
	if err := os.WriteFile(path, []byte("CWT1 but torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	events := captureEvents(t)
	before := CacheStatsSnapshot()

	if _, err := GenerateCached(dir, "ccom", 1); err != nil {
		t.Fatalf("corrupt entry must not fail generation: %v", err)
	}
	if got := CacheStatsSnapshot(); got.Quarantined != before.Quarantined+1 {
		t.Fatalf("Quarantined counter %d -> %d, want +1", before.Quarantined, got.Quarantined)
	}
	found := false
	for _, e := range *events {
		if e.Kind == EventQuarantine && e.Name == "ccom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no quarantine event (events: %v)", *events)
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Fatalf("corrupt entry not moved aside: %v", err)
	}
}

// TestEnforceBudgetEmitsEvictEvent covers the eviction counter/event.
func TestEnforceBudgetEmitsEvictEvent(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.cwt", "b.cwt"} {
		if err := os.WriteFile(filepath.Join(dir, name), make([]byte, 1024), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	events := captureEvents(t)
	before := CacheStatsSnapshot()
	evicted, err := EnforceBudget(dir, 1024)
	if err != nil || evicted != 1 {
		t.Fatalf("EnforceBudget = %d, %v; want 1 eviction", evicted, err)
	}
	if got := CacheStatsSnapshot(); got.Evicted != before.Evicted+1 {
		t.Fatalf("Evicted counter %d -> %d, want +1", before.Evicted, got.Evicted)
	}
	if len(*events) != 1 || (*events)[0].Kind != EventEvict {
		t.Fatalf("events = %v, want one evict event", *events)
	}
}
