package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"cachewrite/internal/trace"
)

// GeneratorVersion identifies the trace-generation algorithm across
// all workloads. It is part of the on-disk trace-cache key: bump it
// whenever any generator's output stream changes (new workload logic,
// memsim layout changes, RNG changes) so stale cached traces are
// regenerated instead of silently reused.
const GeneratorVersion = 1

// DefaultCacheDir returns the default on-disk trace cache location,
// <user cache dir>/cachewrite/traces (e.g. ~/.cache/cachewrite/traces
// on Linux).
func DefaultCacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("workload: no user cache dir: %w", err)
	}
	return filepath.Join(base, "cachewrite", "traces"), nil
}

// ResolveCacheDir maps a CLI -tracecache flag value to a cache
// directory: "off" or "none" disables the cache (empty result), "" or
// "auto" selects DefaultCacheDir, and anything else is used verbatim.
// When the default directory cannot be determined the cache is
// silently disabled — generation always still works.
func ResolveCacheDir(flagVal string) string {
	switch flagVal {
	case "off", "none":
		return ""
	case "", "auto":
		dir, err := DefaultCacheDir()
		if err != nil {
			return ""
		}
		return dir
	default:
		return flagVal
	}
}

// CachePath returns the content-addressed file path for the trace of
// (name, scale) under dir. The name and scale appear in the filename
// for humans; the hash binds the file to the exact generator version,
// so bumping GeneratorVersion invalidates every old entry.
func CachePath(dir, name string, scale int) string {
	scale = clampScale(scale)
	sum := sha256.Sum256(fmt.Appendf(nil, "cwt1|gen%d|%s|scale%d", GeneratorVersion, name, scale))
	return filepath.Join(dir, fmt.Sprintf("%s-s%d-%s.cwt", name, scale, hex.EncodeToString(sum[:8])))
}

// GenerateCached is Generate backed by the on-disk trace cache at dir:
// a hit decodes the stored CWT1 file instead of re-executing the
// workload; a miss generates the trace and stores it for next time.
// An empty dir disables caching. Cache I/O failures never fail the
// call — the freshly generated trace is returned regardless.
func GenerateCached(dir, name string, scale int) (*trace.Trace, error) {
	if dir == "" {
		return Generate(name, scale)
	}
	path := CachePath(dir, name, scale)
	if t, err := loadCached(path, name); err == nil {
		return t, nil
	}
	t, err := Generate(name, scale)
	if err != nil {
		return nil, err
	}
	// Best-effort store: a read-only or full disk must not break runs.
	_ = storeCached(path, t)
	return t, nil
}

// GenerateAllCached produces traces for the six paper benchmarks in
// paper order through the cache at dir (empty dir disables caching).
func GenerateAllCached(dir string, scale int) ([]*trace.Trace, error) {
	var ts []*trace.Trace
	for _, name := range PaperOrder() {
		t, err := GenerateCached(dir, name, scale)
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	return ts, nil
}

// loadCached decodes a cached trace, rejecting files whose recorded
// name does not match (hash collision or hand-copied file).
func loadCached(path, name string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := trace.ReadBinary(f)
	if err != nil {
		return nil, err
	}
	if t.Name != name {
		return nil, fmt.Errorf("workload: cached trace %s holds %q, want %q", path, t.Name, name)
	}
	return t, nil
}

// storeCached writes the trace atomically (temp file + rename) so a
// crashed or concurrent run never leaves a torn cache entry behind.
func storeCached(path string, t *trace.Trace) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := trace.WriteBinary(tmp, t); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
