package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cachewrite/internal/trace"
	"cachewrite/internal/vfs"
)

// GeneratorVersion identifies the trace-generation algorithm across
// all workloads. It is part of the on-disk trace-cache key: bump it
// whenever any generator's output stream changes (new workload logic,
// memsim layout changes, RNG changes) so stale cached traces are
// regenerated instead of silently reused.
const GeneratorVersion = 1

// Logf receives trace-cache warnings: quarantined corrupt entries,
// stores downgraded to in-memory generation by a full or read-only
// disk, stray temp files swept at startup. The cache never fails a
// run over its own I/O, so warnings are the only signal that it is
// degraded. Tests may swap it; the default writes to stderr.
var Logf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "workload: "+format+"\n", args...)
}

// FS is the filesystem the trace cache runs on. Production uses the
// passthrough default; fault-injection tests and the chaos harness swap
// in a vfs.Faulty to prove the cache degrades instead of failing. Like
// Logf it is a package variable rather than a parameter so the dozens
// of existing call sites stay unchanged.
var FS vfs.FS = vfs.OS{}

// CacheEventKind names a structured trace-cache incident.
type CacheEventKind string

const (
	// EventStoreDegraded: a cache store failed (full disk, read-only
	// cache, injected fault) and the run continued on the in-memory
	// trace. The cache is now cold for that entry.
	EventStoreDegraded CacheEventKind = "store_degraded"
	// EventQuarantine: a corrupt entry was moved aside and regenerated.
	EventQuarantine CacheEventKind = "quarantine"
	// EventEvict: EnforceBudget removed entries to stay under budget.
	EventEvict CacheEventKind = "evict"
)

// CacheEvent is one structured trace-cache incident. Cause is the
// human classification ("disk full", …); Err the underlying error.
type CacheEvent struct {
	Kind  CacheEventKind
	Dir   string
	Name  string // workload name, when the event concerns one entry
	Cause string
	Err   error
}

// OnCacheEvent, when non-nil, receives every structured cache event in
// addition to the Logf warning line. The serve layer hooks it to count
// degradations per process and expose them in /statusz.
var OnCacheEvent func(CacheEvent)

func emitCacheEvent(e CacheEvent) {
	switch e.Kind {
	case EventStoreDegraded:
		cacheStoreDegraded.Add(1)
	case EventQuarantine:
		cacheQuarantined.Add(1)
	}
	if OnCacheEvent != nil {
		OnCacheEvent(e)
	}
}

// CacheStats is a snapshot of the process-wide trace-cache counters.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Quarantined   int64
	StoreDegraded int64
	Evicted       int64
}

var (
	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	cacheQuarantined   atomic.Int64
	cacheStoreDegraded atomic.Int64
	cacheEvicted       atomic.Int64
)

// CacheStatsSnapshot returns the current trace-cache counters.
func CacheStatsSnapshot() CacheStats {
	return CacheStats{
		Hits:          cacheHits.Load(),
		Misses:        cacheMisses.Load(),
		Quarantined:   cacheQuarantined.Load(),
		StoreDegraded: cacheStoreDegraded.Load(),
		Evicted:       cacheEvicted.Load(),
	}
}

// DefaultCacheDir returns the default on-disk trace cache location,
// <user cache dir>/cachewrite/traces (e.g. ~/.cache/cachewrite/traces
// on Linux).
func DefaultCacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("workload: no user cache dir: %w", err)
	}
	return filepath.Join(base, "cachewrite", "traces"), nil
}

// ResolveCacheDir maps a CLI -tracecache flag value to a cache
// directory: "off" or "none" disables the cache (empty result), "" or
// "auto" selects DefaultCacheDir, and anything else is used verbatim.
// When the default directory cannot be determined the cache is
// silently disabled — generation always still works.
func ResolveCacheDir(flagVal string) string {
	switch flagVal {
	case "off", "none":
		return ""
	case "", "auto":
		dir, err := DefaultCacheDir()
		if err != nil {
			return ""
		}
		return dir
	default:
		return flagVal
	}
}

// CachePath returns the content-addressed file path for the trace of
// (name, scale) under dir. The name and scale appear in the filename
// for humans; the hash binds the file to the exact generator version,
// so bumping GeneratorVersion invalidates every old entry.
func CachePath(dir, name string, scale int) string {
	scale = clampScale(scale)
	sum := sha256.Sum256(fmt.Appendf(nil, "cwt1|gen%d|%s|scale%d", GeneratorVersion, name, scale))
	return filepath.Join(dir, fmt.Sprintf("%s-s%d-%s.cwt", name, scale, hex.EncodeToString(sum[:8])))
}

// quarantineSuffix is appended to corrupt cache entries moved aside
// for post-mortem instead of being decoded again (or silently
// deleted).
const quarantineSuffix = ".quarantined"

// tmpMaxAge is how old a stray temp file must be before the startup
// sweep removes it; younger ones may belong to a concurrent run's
// in-flight atomic write.
const tmpMaxAge = 15 * time.Minute

// sweptDirs remembers which cache directories this process has already
// swept for stray temp files, so the sweep costs one ReadDir per dir
// per process.
var sweptDirs sync.Map

// sweepTempFiles removes stray ".tmp-*" files older than tmpMaxAge
// from dir — the leftovers of runs killed between creating the temp
// file and renaming it into place. It runs once per directory per
// process and reports how many files it removed.
func sweepTempFiles(dir string) int {
	if dir == "" {
		return 0
	}
	if _, done := sweptDirs.LoadOrStore(dir, true); done {
		return 0
	}
	entries, err := FS.ReadDir(dir)
	if err != nil { //simlint:allow errflow janitor pass: a missing or unreadable dir means nothing to sweep, and the cache is built to degrade silently
		return 0
	}
	removed := 0
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), ".tmp-") || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil || time.Since(info.ModTime()) < tmpMaxAge {
			continue
		}
		if FS.Remove(filepath.Join(dir, e.Name())) == nil {
			removed++
		}
	}
	if removed > 0 {
		Logf("trace cache %s: removed %d stale temp file(s) from interrupted runs", dir, removed)
	}
	return removed
}

// GenerateCached is Generate backed by the on-disk trace cache at dir:
// a hit decodes the stored CWT1 file instead of re-executing the
// workload; a miss generates the trace and stores it for next time.
// An empty dir disables caching.
//
// The cache never fails the call. A corrupt or truncated entry is
// quarantined (renamed aside with a ".quarantined" suffix) and the
// trace regenerated; a store that fails — full disk, read-only cache,
// permissions — downgrades to in-memory generation with a warning
// through Logf. A hit refreshes the entry's modification time so
// EnforceBudget evicts least-recently-used entries first.
func GenerateCached(dir, name string, scale int) (*trace.Trace, error) {
	if dir == "" {
		return Generate(name, scale)
	}
	sweepTempFiles(dir)
	path := CachePath(dir, name, scale)
	t, lerr := loadCached(path, name)
	if lerr == nil {
		cacheHits.Add(1)
		now := time.Now()
		_ = FS.Chtimes(path, now, now) //simlint:allow errflow LRU bump is best effort: a failed mtime refresh only skews eviction order
		return t, nil
	}
	cacheMisses.Add(1)
	if !errors.Is(lerr, fs.ErrNotExist) {
		// The entry exists but cannot be used: quarantine it for
		// post-mortem so the next run does not trip over it again.
		//simlint:allow errflow quarantine is best effort; the Logf below reports the corrupt entry either way and regeneration proceeds
		if qerr := FS.Rename(path, path+quarantineSuffix); qerr != nil {
			_ = FS.Remove(path) //simlint:allow errflow last-resort cleanup of an entry that can be neither read nor renamed; regeneration overwrites it
		}
		Logf("trace cache %s: quarantined corrupt entry and regenerating %s: %v", dir, name, lerr)
		emitCacheEvent(CacheEvent{Kind: EventQuarantine, Dir: dir, Name: name, Cause: "corrupt entry", Err: lerr})
	}
	t, err := Generate(name, scale)
	if err != nil {
		return nil, err
	}
	if serr := storeCached(path, t); serr != nil {
		cause := classifyStoreError(serr)
		Logf("trace cache %s: cannot store %s (%s); continuing with in-memory trace: %v",
			dir, name, cause, serr)
		emitCacheEvent(CacheEvent{Kind: EventStoreDegraded, Dir: dir, Name: name, Cause: cause, Err: serr})
	}
	return t, nil
}

// classifyStoreError names the downgrade cause for the warning line.
func classifyStoreError(err error) string {
	switch {
	case errors.Is(err, syscall.ENOSPC):
		return "disk full"
	case errors.Is(err, fs.ErrPermission), errors.Is(err, syscall.EROFS):
		return "no write permission"
	default:
		return "store failed"
	}
}

// GenerateAllCached produces traces for the six paper benchmarks in
// paper order through the cache at dir (empty dir disables caching).
func GenerateAllCached(dir string, scale int) ([]*trace.Trace, error) {
	var ts []*trace.Trace
	for _, name := range PaperOrder() {
		t, err := GenerateCached(dir, name, scale)
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	return ts, nil
}

// EnforceBudget prunes the cache directory to at most budget bytes of
// ".cwt" entries, evicting least-recently-used entries first (cache
// hits refresh modification times, so mtime order is use order). It
// also drops quarantined entries beyond the budget. budget <= 0 or an
// empty dir is a no-op. Returns how many files were evicted; I/O
// errors are reported but never interrupt eviction.
func EnforceBudget(dir string, budget int64) (int, error) {
	if dir == "" || budget <= 0 {
		return 0, nil
	}
	entries, err := FS.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []entry
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if !strings.HasSuffix(name, ".cwt") && !strings.HasSuffix(name, quarantineSuffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, entry{filepath.Join(dir, name), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= budget {
		return 0, nil
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	evicted := 0
	var firstErr error
	for _, f := range files {
		if total <= budget {
			break
		}
		if err := FS.Remove(f.path); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		total -= f.size
		evicted++
	}
	if evicted > 0 {
		cacheEvicted.Add(int64(evicted))
		Logf("trace cache %s: evicted %d least-recently-used entries to stay under %d-byte budget",
			dir, evicted, budget)
		emitCacheEvent(CacheEvent{Kind: EventEvict, Dir: dir,
			Cause: fmt.Sprintf("%d entries over %d-byte budget", evicted, budget)})
	}
	return evicted, firstErr
}

// loadCached decodes a cached trace, rejecting files whose recorded
// name does not match (hash collision or hand-copied file).
func loadCached(path, name string) (*trace.Trace, error) {
	f, err := FS.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := trace.ReadBinary(f)
	if err != nil {
		return nil, err
	}
	if t.Name != name {
		return nil, fmt.Errorf("workload: cached trace %s holds %q, want %q", path, t.Name, name)
	}
	return t, nil
}

// storeCached writes the trace atomically (temp file + sync + rename)
// so a crashed or concurrent run never leaves a torn cache entry
// behind — the sync before the rename closes the window where a rename
// commits a name whose data never reached the disk. The deferred
// Remove also reaps the temp file on every error path; a run killed
// outright leaves it to the next run's sweepTempFiles.
func storeCached(path string, t *trace.Trace) error {
	dir := filepath.Dir(path)
	if err := FS.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := FS.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer FS.Remove(tmp.Name())
	if err := trace.WriteBinary(tmp, t); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return FS.Rename(tmp.Name(), path)
}
