package workload

import (
	"context"
	"fmt"
	"sync"

	"cachewrite/internal/trace"
)

// SharedTraces is a process-wide trace provider for multi-session
// callers (the simserved sessions): many concurrent requests for the
// same (workload, scale) pair share one generation and one decoded
// in-memory copy instead of each paying for generation or a disk
// decode. It layers two mechanisms over GenerateCached:
//
//   - single-flight: the first request for a key generates (or decodes
//     from the on-disk cache); every concurrent duplicate blocks on
//     that one flight and shares its result;
//   - a bounded in-memory LRU of decoded traces, so a hot working set
//     of workloads is served without touching the disk cache at all.
//
// Returned traces are shared between callers and must be treated as
// read-only; use Trace.Slice for capped views (it shares the backing
// array without mutating it).
type SharedTraces struct {
	dir string
	max int

	mu       sync.Mutex
	entries  map[sharedKey]*sharedEntry
	order    []sharedKey // LRU order: front is coldest
	inflight int
}

type sharedKey struct {
	name  string
	scale int
}

type sharedEntry struct {
	ready chan struct{} // closed once t/err are set
	done  bool          // set under the owning SharedTraces' mu, before close(ready)
	t     *trace.Trace
	err   error
}

// NewSharedTraces returns a shared provider over the on-disk trace
// cache at dir (empty dir disables the disk layer; generation still
// works). maxEntries bounds the decoded in-memory traces kept live
// (< 1 means 16).
func NewSharedTraces(dir string, maxEntries int) *SharedTraces {
	if maxEntries < 1 {
		maxEntries = 16
	}
	return &SharedTraces{dir: dir, max: maxEntries, entries: map[sharedKey]*sharedEntry{}}
}

// Get returns the trace for (name, scale), generating it at most once
// per process no matter how many sessions ask concurrently. Waiting on
// another session's in-flight generation honors ctx; the flight itself
// is never cancelled (another waiter may still want it).
func (s *SharedTraces) Get(ctx context.Context, name string, scale int) (*trace.Trace, error) {
	scale = clampScale(scale)
	key := sharedKey{name, scale}
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.bump(key)
		s.mu.Unlock()
		select {
		case <-e.ready:
			return e.t, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &sharedEntry{ready: make(chan struct{})}
	s.entries[key] = e
	s.order = append(s.order, key)
	s.inflight++
	s.evictLocked()
	s.mu.Unlock()

	t, err := GenerateCached(s.dir, name, scale)
	s.mu.Lock()
	e.t, e.err = t, err
	e.done = true
	s.inflight--
	if err != nil {
		// Failed flights are not cached: the next Get retries (the
		// failure may have been transient — disk pressure, a corrupt
		// cache entry since quarantined).
		s.dropLocked(key)
	}
	s.mu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, fmt.Errorf("workload: shared trace %s/s%d: %w", name, scale, err)
	}
	return t, nil
}

// Len reports how many decoded traces (including in-flight ones) are
// currently held.
func (s *SharedTraces) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// bump moves key to the hot end of the LRU order. Caller holds mu.
func (s *SharedTraces) bump(key sharedKey) {
	for i, k := range s.order {
		if k == key {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = key
			return
		}
	}
}

// dropLocked removes key from the map and order. Caller holds mu.
func (s *SharedTraces) dropLocked(key sharedKey) {
	delete(s.entries, key)
	for i, k := range s.order {
		if k == key {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

// evictLocked trims the coldest completed entries until the table fits
// the budget again. In-flight entries are never evicted — waiters hold
// their channel. Caller holds mu.
func (s *SharedTraces) evictLocked() {
	for i := 0; len(s.entries) > s.max && i < len(s.order); {
		key := s.order[i]
		e := s.entries[key]
		if e == nil || !e.done {
			i++
			continue
		}
		s.dropLocked(key)
	}
}

// sharedByDir holds one process-wide SharedTraces provider per cache
// directory, so every subsystem asking for the same (workload, scale)
// — CLI sweeps, the bench harness, concurrent service sessions —
// shares a single decode instead of each holding a duplicate.
var (
	sharedMu    sync.Mutex
	sharedByDir = map[string]*SharedTraces{}
)

// SharedFor returns the process-wide shared trace provider for the
// on-disk cache at dir (empty dir: generation only, still shared
// in-memory). Providers are created on first use and live for the
// process; repeated calls with the same dir return the same provider.
func SharedFor(dir string) *SharedTraces {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	s, ok := sharedByDir[dir]
	if !ok {
		s = NewSharedTraces(dir, 16)
		sharedByDir[dir] = s
	}
	return s
}

// GenerateAllShared produces the six paper benchmarks in paper order
// through the process-wide shared provider for dir: concurrent callers
// (sweep workers, racing sessions) never hold duplicate decodes of the
// same trace. Returned traces are shared and must be treated as
// read-only; use Trace.Slice for capped views.
func GenerateAllShared(ctx context.Context, dir string, scale int) ([]*trace.Trace, error) {
	s := SharedFor(dir)
	ts := make([]*trace.Trace, 0, len(PaperOrder()))
	for _, name := range PaperOrder() {
		t, err := s.Get(ctx, name, scale)
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	return ts, nil
}
