package workload

import "cachewrite/internal/memsim"

func init() { register(ccom{}) }

// ccom reproduces the paper's "ccom" benchmark (a C compiler front end)
// as a real multi-pass mini compiler: source generation, lexing,
// parsing to an AST arena, constant folding into a second arena, and
// stack-machine code emission.
//
// The property the paper highlights (§4, Fig 14): "write-validate would
// be useful for a compiler if it has a number of sequential passes,
// each one reading the data structure written by the last pass and
// writing a different one." Every pass here reads its predecessor's
// output arena and writes a fresh one, so most stores target lines that
// are never read first — exactly the copy-like behaviour that makes
// ccom one of the two biggest write-validate winners.
//
// The source is held one character per 32-bit word: the MultiTitan has
// no byte loads/stores (paper §2), so a word-oriented representation is
// the faithful one.
type ccom struct{}

func (ccom) Name() string { return "ccom" }

func (ccom) Description() string {
	return "multi-pass mini C compiler: lex, parse, constant-fold, emit stack code"
}

// Token kinds.
const (
	tokEOF = iota
	tokNum
	tokIdent
	tokPlus
	tokMinus
	tokStar
	tokLParen
	tokRParen
	tokAssign
	tokSemi
)

// AST node ops.
const (
	opNum = iota
	opVar
	opAdd
	opSub
	opMul
	opAssign
)

// Emitted instructions.
const (
	insPush = iota
	insLoad
	insAdd
	insSub
	insMul
	insStore
)

const (
	ccomUnits      = 22  // compilation units per unit of scale
	ccomStmtsPer   = 110 // statements per unit
	ccomSrcWords   = 1 << 12
	ccomTokWords   = 1 << 12
	ccomArenaWords = 1 << 12
	ccomCodeWords  = 1 << 12
)

// ccomPool is the number of per-unit buffer sets the compiler cycles
// through: compilers allocate fresh arenas per translation unit, so the
// total data footprint grows well past any first-level cache even
// though each unit's working set is modest.
const ccomPool = 10

func (ccom) Run(m *memsim.Mem, scale int) {
	scale = clampScale(scale)
	r := newRNG(0xcc03)

	type unitBufs struct {
		src, toks, ast, folded, code memsim.U32Array
	}
	pool := make([]unitBufs, ccomPool)
	for i := range pool {
		pool[i] = unitBufs{
			src:    m.NewU32Array(ccomSrcWords),     // source text, one char per word
			toks:   m.NewU32Array(ccomTokWords * 2), // (kind, value) pairs
			ast:    m.NewU32Array(ccomArenaWords * 4),
			folded: m.NewU32Array(ccomArenaWords * 4),
			code:   m.NewU32Array(ccomCodeWords * 2), // (op, operand) pairs
		}
	}
	syms := m.NewU32Array(64) // symbol table: value per variable

	for unit := 0; unit < scale*ccomUnits; unit++ {
		b := pool[unit%ccomPool]
		srcLen := genSource(m, b.src, r)
		nTok := lex(m, b.src, srcLen, b.toks)
		p := &ccomParser{m: m, toks: b.toks, nTok: nTok, ast: b.ast}
		roots := p.parseProgram()
		semcheck(m, b.ast, p.nNode)
		nFold := fold(m, b.ast, b.folded, roots, p.nNode)
		pc := emit(m, b.folded, roots[:nFold], b.code, syms)
		verify(m, b.code, pc, syms)
	}
}

// semcheck is the read-only semantic analysis pass: it walks the AST
// arena counting uses per variable and checking operator arity, writing
// nothing (diagnostics accumulate in registers). Real compilers spend a
// large share of their references in passes like this, which is what
// tips ccom's load:store ratio above 1 (Table 1).
func semcheck(m *memsim.Mem, ast memsim.U32Array, nNode int) uint32 {
	var uses uint32
	for id := 0; id < nNode && id*4+3 < ast.Len(); id++ {
		m.Step(3)
		op := ast.Get(id*4 + 0)
		switch op {
		case opVar:
			uses += ast.Get(id*4+3) + 1
		case opAdd, opSub, opMul, opAssign:
			// Check both children exist (reads).
			l := ast.Get(id*4 + 1)
			rr := ast.Get(id*4 + 2)
			if op != opAssign && int(l) < nNode && int(rr) < nNode {
				m.Step(1)
				_ = ast.Get(int(l)*4 + 0)
				_ = ast.Get(int(rr)*4 + 0)
			}
		}
	}
	return uses
}

// verify is the read-only output pass: it re-reads the emitted code
// (as an assembler or listing generator would) and re-executes it with
// an untraced register stack, cross-checking the symbol table.
func verify(m *memsim.Mem, code memsim.U32Array, pc int, syms memsim.U32Array) uint32 {
	var stack [64]uint32
	sp := 0
	var last uint32
	for i := 0; i < pc && 2*i+1 < code.Len(); i++ {
		m.Step(2)
		op := code.Get(2 * i)
		arg := code.Get(2*i + 1)
		switch op {
		case insPush:
			if sp < len(stack) {
				stack[sp] = arg
				sp++
			}
		case insLoad:
			if sp < len(stack) {
				stack[sp] = syms.Get(int(arg % 64))
				sp++
			}
		case insAdd, insSub, insMul:
			if sp >= 2 {
				b, a := stack[sp-1], stack[sp-2]
				sp -= 2
				switch op {
				case insAdd:
					stack[sp] = a + b
				case insSub:
					stack[sp] = a - b
				case insMul:
					stack[sp] = a * b
				}
				sp++
			}
		case insStore:
			if sp >= 1 {
				sp--
				last = stack[sp]
			}
		}
	}
	return last
}

// genSource writes a deterministic pseudo-C translation unit into src
// and returns its length in words. Statements look like
// "a = ( b + 3 ) * c - 7 ;" with single-character identifiers.
func genSource(m *memsim.Mem, src memsim.U32Array, r *rng) int {
	pos := 0
	put := func(c byte) {
		if pos >= src.Len() {
			return
		}
		m.Step(2)
		src.Set(pos, uint32(c))
		pos++
	}
	putStr := func(s string) {
		for i := 0; i < len(s); i++ {
			put(s[i])
		}
	}
	for s := 0; s < ccomStmtsPer; s++ {
		put(byte('a' + r.intn(26)))
		putStr(" = ")
		genExpr(put, putStr, r, 3)
		putStr(" ;\n")
	}
	put(0)
	return pos
}

func genExpr(put func(byte), putStr func(string), r *rng, depth int) {
	if depth == 0 || r.intn(3) == 0 {
		if r.intn(2) == 0 {
			// Number literal, 1-3 digits.
			n := r.intn(999) + 1
			if n >= 100 {
				put(byte('0' + n/100))
			}
			if n >= 10 {
				put(byte('0' + (n/10)%10))
			}
			put(byte('0' + n%10))
		} else {
			put(byte('a' + r.intn(26)))
		}
		return
	}
	wrap := r.intn(2) == 0
	if wrap {
		putStr("( ")
	}
	genExpr(put, putStr, r, depth-1)
	switch r.intn(3) {
	case 0:
		putStr(" + ")
	case 1:
		putStr(" - ")
	default:
		putStr(" * ")
	}
	genExpr(put, putStr, r, depth-1)
	if wrap {
		putStr(" )")
	}
}

// lex reads the source words and writes (kind, value) token pairs,
// returning the token count.
func lex(m *memsim.Mem, src memsim.U32Array, srcLen int, toks memsim.U32Array) int {
	n := 0
	emitTok := func(kind, val uint32) {
		if 2*n+1 >= toks.Len() {
			return
		}
		m.Step(1)
		toks.Set(2*n, kind)
		toks.Set(2*n+1, val)
		n++
	}
	i := 0
	for i < srcLen {
		m.Step(2)
		c := src.Get(i)
		switch {
		case c == 0:
			i = srcLen
		case c == ' ' || c == '\n':
			i++
		case c >= '0' && c <= '9':
			v := uint32(0)
			for i < srcLen {
				m.Step(2)
				d := src.Get(i)
				if d < '0' || d > '9' {
					break
				}
				v = v*10 + (d - '0')
				i++
			}
			emitTok(tokNum, v)
		case c >= 'a' && c <= 'z':
			emitTok(tokIdent, c-'a')
			i++
		case c == '+':
			emitTok(tokPlus, 0)
			i++
		case c == '-':
			emitTok(tokMinus, 0)
			i++
		case c == '*':
			emitTok(tokStar, 0)
			i++
		case c == '(':
			emitTok(tokLParen, 0)
			i++
		case c == ')':
			emitTok(tokRParen, 0)
			i++
		case c == '=':
			emitTok(tokAssign, 0)
			i++
		case c == ';':
			emitTok(tokSemi, 0)
			i++
		default:
			i++
		}
	}
	emitTok(tokEOF, 0)
	return n
}

// ccomParser is a recursive-descent parser writing AST nodes
// (op, lhs, rhs, value) into a traced arena.
type ccomParser struct {
	m     *memsim.Mem
	toks  memsim.U32Array
	nTok  int
	pos   int
	ast   memsim.U32Array
	nNode int
}

func (p *ccomParser) peek() uint32 {
	p.m.Step(1)
	return p.toks.Get(2 * p.pos)
}

func (p *ccomParser) val() uint32 {
	return p.toks.Get(2*p.pos + 1)
}

func (p *ccomParser) advance() { p.pos++ }

func (p *ccomParser) node(op, lhs, rhs, value uint32) uint32 {
	id := uint32(p.nNode)
	if int(id)*4+3 >= p.ast.Len() {
		return id // arena full; drop silently (bounded workload)
	}
	p.m.Step(2)
	p.ast.Set(int(id)*4+0, op)
	p.ast.Set(int(id)*4+1, lhs)
	p.ast.Set(int(id)*4+2, rhs)
	p.ast.Set(int(id)*4+3, value)
	p.nNode++
	return id
}

// parseProgram parses assignment statements until EOF and returns the
// root node ids.
func (p *ccomParser) parseProgram() []uint32 {
	var roots []uint32
	for p.pos < p.nTok && p.peek() != tokEOF {
		if p.peek() != tokIdent {
			p.advance()
			continue
		}
		name := p.val()
		p.advance()
		if p.pos >= p.nTok || p.peek() != tokAssign {
			continue
		}
		p.advance()
		rhs := p.parseExpr()
		roots = append(roots, p.node(opAssign, name, rhs, 0))
		if p.pos < p.nTok && p.peek() == tokSemi {
			p.advance()
		}
	}
	return roots
}

// parseExpr handles + and - (left associative).
func (p *ccomParser) parseExpr() uint32 {
	lhs := p.parseTerm()
	for p.pos < p.nTok {
		switch p.peek() {
		case tokPlus:
			p.advance()
			lhs = p.node(opAdd, lhs, p.parseTerm(), 0)
		case tokMinus:
			p.advance()
			lhs = p.node(opSub, lhs, p.parseTerm(), 0)
		default:
			return lhs
		}
	}
	return lhs
}

// parseTerm handles *.
func (p *ccomParser) parseTerm() uint32 {
	lhs := p.parsePrimary()
	for p.pos < p.nTok && p.peek() == tokStar {
		p.advance()
		lhs = p.node(opMul, lhs, p.parsePrimary(), 0)
	}
	return lhs
}

func (p *ccomParser) parsePrimary() uint32 {
	if p.pos >= p.nTok {
		return p.node(opNum, 0, 0, 0)
	}
	switch p.peek() {
	case tokNum:
		v := p.val()
		p.advance()
		return p.node(opNum, 0, 0, v)
	case tokIdent:
		v := p.val()
		p.advance()
		return p.node(opVar, 0, 0, v)
	case tokLParen:
		p.advance()
		e := p.parseExpr()
		if p.pos < p.nTok && p.peek() == tokRParen {
			p.advance()
		}
		return e
	default:
		p.advance()
		return p.node(opNum, 0, 0, 0)
	}
}

// fold copies the AST into a second arena, folding constant sub-trees —
// the pass that reads one structure and writes another. Returns the
// number of roots (all roots are preserved).
func fold(m *memsim.Mem, ast, folded memsim.U32Array, roots []uint32, nNode int) int {
	// Copy node by node; constant-fold binary ops over two opNum
	// children. Node ids are preserved so roots stay valid.
	for id := 0; id < nNode && id*4+3 < folded.Len(); id++ {
		m.Step(3)
		op := ast.Get(id*4 + 0)
		lhs := ast.Get(id*4 + 1)
		rhs := ast.Get(id*4 + 2)
		val := ast.Get(id*4 + 3)
		if op == opAdd || op == opSub || op == opMul {
			m.Step(2)
			lop := folded.Get(int(lhs)*4 + 0)
			rop := folded.Get(int(rhs)*4 + 0)
			if lop == opNum && rop == opNum {
				lv := folded.Get(int(lhs)*4 + 3)
				rv := folded.Get(int(rhs)*4 + 3)
				switch op {
				case opAdd:
					val = lv + rv
				case opSub:
					val = lv - rv
				case opMul:
					val = lv * rv
				}
				op = opNum
			}
		}
		folded.Set(id*4+0, op)
		folded.Set(id*4+1, lhs)
		folded.Set(id*4+2, rhs)
		folded.Set(id*4+3, val)
	}
	return len(roots)
}

// emit walks the folded arena and writes stack-machine code, evaluating
// it against the symbol table as it goes (so the compiler's output is
// checked by construction in tests). The evaluation stack lives in
// traced stack memory — the kind of bursty, high-locality store traffic
// §3 discusses.
func emit(m *memsim.Mem, arena memsim.U32Array, roots []uint32, code, syms memsim.U32Array) int {
	stackBase := m.AllocStack(64*4, 8)
	pc := 0
	put := func(op, operand uint32) {
		if 2*pc+1 >= code.Len() {
			return
		}
		m.Step(1)
		code.Set(2*pc, op)
		code.Set(2*pc+1, operand)
		pc++
	}
	sp := 0
	push := func(v uint32) {
		if sp < 64 {
			m.WriteU32(stackBase+uint32(sp)*4, v)
			sp++
		}
	}
	pop := func() uint32 {
		if sp == 0 {
			return 0
		}
		sp--
		return m.ReadU32(stackBase + uint32(sp)*4)
	}

	var walk func(id uint32)
	walk = func(id uint32) {
		if int(id)*4+3 >= arena.Len() {
			return
		}
		m.Step(2)
		op := arena.Get(int(id)*4 + 0)
		switch op {
		case opNum:
			v := arena.Get(int(id)*4 + 3)
			put(insPush, v)
			push(v)
		case opVar:
			name := arena.Get(int(id)*4 + 3)
			put(insLoad, name)
			push(syms.Get(int(name % 64)))
		case opAdd, opSub, opMul:
			walk(arena.Get(int(id)*4 + 1))
			walk(arena.Get(int(id)*4 + 2))
			b, a := pop(), pop()
			switch op {
			case opAdd:
				put(insAdd, 0)
				push(a + b)
			case opSub:
				put(insSub, 0)
				push(a - b)
			case opMul:
				put(insMul, 0)
				push(a * b)
			}
		case opAssign:
			walk(arena.Get(int(id)*4 + 2))
			name := arena.Get(int(id)*4 + 1)
			put(insStore, name)
			syms.Set(int(name%64), pop())
		}
	}
	for _, root := range roots {
		walk(root)
	}
	return pc
}
