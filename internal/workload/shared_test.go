package workload

import (
	"context"
	"sync"
	"testing"
)

// TestSharedTracesReusesDecodedTrace: the second Get must return the
// very same in-memory trace, not a second generation.
func TestSharedTracesReusesDecodedTrace(t *testing.T) {
	s := NewSharedTraces("", 4)
	a, err := s.Get(context.Background(), "liver", 1)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	b, err := s.Get(context.Background(), "liver", 1)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if a != b {
		t.Fatalf("second Get returned a different trace instance")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

// TestSharedTracesSingleFlight: concurrent requests for the same key
// share one flight and one result.
func TestSharedTracesSingleFlight(t *testing.T) {
	s := NewSharedTraces("", 4)
	const callers = 16
	results := make(chan any, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := s.Get(context.Background(), "liver", 1)
			if err != nil {
				results <- err
				return
			}
			results <- tr
		}()
	}
	wg.Wait()
	close(results)
	var first any
	for r := range results {
		if err, ok := r.(error); ok {
			t.Fatalf("Get: %v", err)
		}
		if first == nil {
			first = r
			continue
		}
		if r != first {
			t.Fatalf("concurrent callers got distinct trace instances")
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (single flight)", s.Len())
	}
}

// TestSharedTracesEviction: the LRU stays within its budget and evicts
// the coldest entry.
func TestSharedTracesEviction(t *testing.T) {
	s := NewSharedTraces("", 2)
	ctx := context.Background()
	for _, name := range []string{"liver", "ccom", "yacc"} {
		if _, err := s.Get(ctx, name, 1); err != nil {
			t.Fatalf("Get %s: %v", name, err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after eviction", s.Len())
	}
	// liver was coldest and must have been evicted; a re-Get works
	// (regenerates) and evicts the next-coldest in turn.
	if _, err := s.Get(ctx, "liver", 1); err != nil {
		t.Fatalf("re-Get after eviction: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after re-Get", s.Len())
	}
}

// TestSharedTracesWaiterHonorsContext: a waiter blocked on another
// session's flight leaves promptly when its own ctx dies.
func TestSharedTracesWaiterHonorsContext(t *testing.T) {
	s := NewSharedTraces("", 4)
	key := sharedKey{"liver", 1}
	// Install a never-finishing flight by hand so the waiter must rely
	// on its context.
	s.mu.Lock()
	s.entries[key] = &sharedEntry{ready: make(chan struct{})}
	s.order = append(s.order, key)
	s.inflight++
	s.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Get(ctx, "liver", 1); err != context.Canceled {
		t.Fatalf("Get on dead ctx = %v, want context.Canceled", err)
	}
}

// TestSharedTracesErrorNotCached: a failed flight is retried by the
// next Get instead of pinning the error forever.
func TestSharedTracesErrorNotCached(t *testing.T) {
	s := NewSharedTraces("", 4)
	if _, err := s.Get(context.Background(), "no-such-workload", 1); err == nil {
		t.Fatalf("Get of unknown workload should fail")
	}
	if s.Len() != 0 {
		t.Fatalf("failed flight was cached; Len = %d, want 0", s.Len())
	}
}

// TestSharedForProcessWide: the per-dir provider registry returns the
// same provider for the same dir and distinct providers for distinct
// dirs, and GenerateAllShared serves the paper set through it with
// one decode per trace.
func TestSharedForProcessWide(t *testing.T) {
	dir := t.TempDir()
	if SharedFor(dir) != SharedFor(dir) {
		t.Fatal("SharedFor returned distinct providers for the same dir")
	}
	if SharedFor(dir) == SharedFor(t.TempDir()) {
		t.Fatal("SharedFor shares a provider across distinct dirs")
	}
	ts, err := GenerateAllShared(context.Background(), dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != len(PaperOrder()) {
		t.Fatalf("got %d traces, want %d", len(ts), len(PaperOrder()))
	}
	// A second call returns the very same shared decodes, not copies.
	ts2, err := GenerateAllShared(context.Background(), dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		if ts[i] != ts2[i] {
			t.Errorf("trace %d (%s) was decoded twice", i, ts[i].Name)
		}
	}
}
