package workload

import "cachewrite/internal/memsim"

func init() { register(linpack{}) }

// linpack reproduces the memory behaviour of the paper's "linpack"
// benchmark (numeric, 100x100): LU decomposition with partial pivoting
// whose inner loop is daxpy — y[i] = y[i] + a*x[i] — a unit-stride
// double-precision read-modify-write over an 80KB matrix.
//
// Properties the paper reports and this stand-in preserves:
//   - the 8KB first-level cache cannot hold the working set, so written
//     lines are replaced before being written again (Figs 1–2);
//   - almost every write is preceded by a read of the same word, so
//     write-validate eliminates few misses (§4, Fig 14: "the inner loop
//     of linpack, saxpy, loads a matrix row and adds to it another row
//     multiplied by a scalar; the result is placed into the old row");
//   - stores are nearly all 8B doubles, so on 8B lines ~100% of dirty
//     bytes in a victim are dirty (Fig 24).
type linpack struct{}

func (linpack) Name() string { return "linpack" }

func (linpack) Description() string {
	return "LU decomposition with partial pivoting of a 100x100 float64 matrix (daxpy inner loop)"
}

const linpackN = 100

func (linpack) Run(m *memsim.Mem, scale int) {
	scale = clampScale(scale)
	r := newRNG(0x11aac)

	// Column-major matrix (Fortran layout, as in the original LINPACK),
	// plus right-hand side and pivot vector. 100*100*8 = 80KB.
	a := m.NewF64Array(linpackN * linpackN)
	b := m.NewF64Array(linpackN)
	ipvt := m.NewU32Array(linpackN)

	at := func(i, j int) int { return j*linpackN + i } // column-major

	for rep := 0; rep < scale; rep++ {
		// matgen: fill the matrix (traced writes — the original benchmark
		// times matrix generation too).
		for j := 0; j < linpackN; j++ {
			for i := 0; i < linpackN; i++ {
				m.Step(3)
				a.Set(at(i, j), r.f64()-0.5)
			}
		}
		for i := 0; i < linpackN; i++ {
			m.Step(2)
			b.Set(i, r.f64())
		}

		dgefa(m, a, ipvt, linpackN, at)
		dgesl(m, a, b, ipvt, linpackN, at)
	}
}

// dgefa factors the matrix by Gaussian elimination with partial
// pivoting (LINPACK DGEFA).
func dgefa(m *memsim.Mem, a memsim.F64Array, ipvt memsim.U32Array, n int, at func(i, j int) int) {
	for k := 0; k < n-1; k++ {
		// idamax: find pivot in column k.
		l := k
		vmax := abs(a.Get(at(k, k)))
		for i := k + 1; i < n; i++ {
			m.Step(3)
			v := abs(a.Get(at(i, k)))
			if v > vmax {
				vmax, l = v, i
			}
		}
		ipvt.Set(k, uint32(l))
		pivot := a.Get(at(l, k))
		if pivot == 0 {
			continue
		}
		if l != k {
			// Swap a[l,k] and a[k,k].
			t := a.Get(at(l, k))
			a.Set(at(l, k), a.Get(at(k, k)))
			a.Set(at(k, k), t)
		}
		// Compute multipliers: scale column k below the diagonal.
		t := -1.0 / a.Get(at(k, k))
		for i := k + 1; i < n; i++ {
			m.Step(2)
			a.Set(at(i, k), a.Get(at(i, k))*t)
		}
		// Row elimination with column indexing: daxpy on each column to
		// the right.
		for j := k + 1; j < n; j++ {
			m.Step(2)
			t := a.Get(at(l, j))
			if l != k {
				a.Set(at(l, j), a.Get(at(k, j)))
				a.Set(at(k, j), t)
			}
			// daxpy: a[k+1..n, j] += t * a[k+1..n, k]
			for i := k + 1; i < n; i++ {
				m.Step(2)
				a.Set(at(i, j), a.Get(at(i, j))+t*a.Get(at(i, k)))
			}
		}
	}
	ipvt.Set(n-1, uint32(n-1))
}

// dgesl solves the factored system (LINPACK DGESL).
func dgesl(m *memsim.Mem, a, b memsim.F64Array, ipvt memsim.U32Array, n int, at func(i, j int) int) {
	// Forward elimination.
	for k := 0; k < n-1; k++ {
		l := int(ipvt.Get(k))
		t := b.Get(l)
		if l != k {
			b.Set(l, b.Get(k))
			b.Set(k, t)
		}
		for i := k + 1; i < n; i++ {
			m.Step(2)
			b.Set(i, b.Get(i)+t*a.Get(at(i, k)))
		}
	}
	// Back substitution.
	for k := n - 1; k >= 0; k-- {
		d := a.Get(at(k, k))
		if d != 0 {
			b.Set(k, b.Get(k)/d)
		}
		t := -b.Get(k)
		for i := 0; i < k; i++ {
			m.Step(2)
			b.Set(i, b.Get(i)+t*a.Get(at(i, k)))
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
