// Package workload implements the six benchmark stand-ins for the
// paper's trace set (Table 1): ccom, grr, yacc, met, linpack and liver.
//
// The paper simulated real DEC programs on a MultiTitan simulator. We
// do not have those binaries or their inputs, so each workload here is
// a real algorithm of the same species, executed for real against a
// traced virtual memory (package memsim). What the cache experiments
// consume is only the memory reference stream, so the substitution
// preserves the behaviours the paper's evaluation depends on:
//
//   - linpack: unit-stride double-precision read-modify-write over an
//     80KB matrix (write-validate nearly useless).
//   - liver: Livermore loop kernels whose results are not re-read but
//     whose inputs are (write-around can win).
//   - ccom: multi-pass compiler that reads one structure and writes
//     another (write-validate wins big).
//   - yacc/grr/met: pointer/table/grid codes with strong write locality
//     (write-back caches remove most write traffic).
//
// Workloads are deterministic: the same name and scale always produce
// the identical trace.
package workload

import (
	"errors"
	"fmt"
	"sort"

	"cachewrite/internal/memsim"
	"cachewrite/internal/trace"
)

// Workload is a runnable benchmark stand-in.
type Workload interface {
	// Name is the paper's benchmark name ("linpack", "ccom", ...).
	Name() string
	// Description is a one-line summary of what the stand-in computes.
	Description() string
	// Run executes the workload against m. Scale multiplies the amount
	// of work (iterations, not data sizes); scale <= 0 is treated as 1.
	Run(m *memsim.Mem, scale int)
}

var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Name()]; dup {
		panic(fmt.Sprintf("workload: duplicate registration of %q", w.Name()))
	}
	registry[w.Name()] = w
}

// Names returns all registered workload names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PaperOrder lists the six benchmarks in the order of the paper's
// Table 1.
func PaperOrder() []string {
	return []string{"ccom", "grr", "yacc", "met", "linpack", "liver"}
}

// Get returns the named workload.
func Get(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return w, nil
}

// Generate runs the named workload at the given scale and returns its
// trace.
func Generate(name string, scale int) (*trace.Trace, error) {
	w, err := Get(name)
	if err != nil {
		return nil, err
	}
	m := memsim.New(name)
	w.Run(m, scale)
	if err := m.Err(); err != nil {
		return m.Trace(), fmt.Errorf("workload %q: %w", name, err)
	}
	return m.Trace(), nil
}

// GenerateBudget runs the named workload at the given scale under an
// instruction budget and returns the (possibly truncated) trace.
// truncated reports whether the budget was exhausted; any other
// tracing failure is returned as an error alongside the partial trace.
func GenerateBudget(name string, scale int, limit uint64) (t *trace.Trace, truncated bool, err error) {
	w, err := Get(name)
	if err != nil {
		return nil, false, err
	}
	m := memsim.New(name)
	m.SetLimit(limit)
	w.Run(m, scale)
	if err := m.Err(); err != nil {
		if errors.Is(err, memsim.ErrLimit) {
			return m.Trace(), true, nil
		}
		return m.Trace(), false, fmt.Errorf("workload %q: %w", name, err)
	}
	return m.Trace(), false, nil
}

// GenerateAll produces traces for the six paper benchmarks in paper
// order.
func GenerateAll(scale int) ([]*trace.Trace, error) {
	var ts []*trace.Trace
	for _, name := range PaperOrder() {
		t, err := Generate(name, scale)
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	return ts, nil
}

// rng is a deterministic xorshift64* generator. We use our own instead
// of math/rand so traces are reproducible byte-for-byte regardless of
// Go version or seeding behaviour.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("workload: intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// f64 returns a value in [0, 1).
func (r *rng) f64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

func clampScale(scale int) int {
	if scale <= 0 {
		return 1
	}
	return scale
}

// Characteristics summarises a workload the way the paper's Table 1
// does, plus a one-line description.
type Characteristics struct {
	Name         string
	Description  string
	Instructions uint64
	Reads        uint64
	Writes       uint64
}

// Refs returns total data references.
func (c Characteristics) Refs() uint64 { return c.Reads + c.Writes }

// Characterize generates the named workload at the given scale and
// returns its Table 1 row.
func Characterize(name string, scale int) (Characteristics, error) {
	w, err := Get(name)
	if err != nil {
		return Characteristics{}, err
	}
	t, err := Generate(name, scale)
	if err != nil {
		return Characteristics{}, err
	}
	s := t.Stats()
	return Characteristics{
		Name:         name,
		Description:  w.Description(),
		Instructions: s.Instructions,
		Reads:        s.Reads,
		Writes:       s.Writes,
	}, nil
}
