package workload

import (
	"testing"

	"cachewrite/internal/memsim"
)

// These tests verify the workloads are real algorithms producing
// correct results — not just plausible address streams.

// TestLiverKernel11PrefixSum: res[11] must be the running sum of w.
func TestLiverKernel11PrefixSum(t *testing.T) {
	m := memsim.New("liver-verify")
	u := m.NewF64Array(liverN + 12)
	v := m.NewF64Array(liverN + 12)
	w := m.NewF64Array(liverN + 12)
	z := m.NewF64Array(liverN + 12)
	r := newRNG(7)
	for _, a := range []memsim.F64Array{u, v, w, z} {
		for i := 0; i < a.Len(); i++ {
			a.Poke(i, 0.5+r.f64())
		}
	}
	res := make([]memsim.F64Array, 15)
	for k := 1; k <= 14; k++ {
		res[k] = m.NewF64Array(liverN + 12)
	}
	px := m.NewF64Array(liverJ * liverK2)
	plan := m.NewF64Array(liverJ * liverK2)

	liverPassOnce(m, u, v, w, z, res, px, plan)

	sum := 0.0
	for k := 0; k < liverN; k++ {
		sum += w.Peek(k)
		got := res[11].Peek(k)
		if diff := got - sum; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("kernel 11 prefix sum wrong at %d: %v vs %v", k, got, sum)
		}
	}
}

// TestLiverKernel12FirstDifference: res[12][k] == v[k+1] - v[k].
func TestLiverKernel12FirstDifference(t *testing.T) {
	m := memsim.New("liver-verify")
	u := m.NewF64Array(liverN + 12)
	v := m.NewF64Array(liverN + 12)
	w := m.NewF64Array(liverN + 12)
	z := m.NewF64Array(liverN + 12)
	r := newRNG(11)
	for _, a := range []memsim.F64Array{u, v, w, z} {
		for i := 0; i < a.Len(); i++ {
			a.Poke(i, r.f64())
		}
	}
	res := make([]memsim.F64Array, 15)
	for k := 1; k <= 14; k++ {
		res[k] = m.NewF64Array(liverN + 12)
	}
	px := m.NewF64Array(liverJ * liverK2)
	plan := m.NewF64Array(liverJ * liverK2)
	liverPassOnce(m, u, v, w, z, res, px, plan)

	for k := 0; k < liverN; k++ {
		want := v.Peek(k+1) - v.Peek(k)
		if got := res[12].Peek(k); got != want {
			t.Fatalf("kernel 12 wrong at %d: %v vs %v", k, got, want)
		}
	}
}

// TestLiverKernel5Recurrence: res[5][i] = z[i]*(u[i] - res[5][i-1]).
func TestLiverKernel5Recurrence(t *testing.T) {
	m := memsim.New("liver-verify")
	u := m.NewF64Array(liverN + 12)
	v := m.NewF64Array(liverN + 12)
	w := m.NewF64Array(liverN + 12)
	z := m.NewF64Array(liverN + 12)
	r := newRNG(13)
	for _, a := range []memsim.F64Array{u, v, w, z} {
		for i := 0; i < a.Len(); i++ {
			a.Poke(i, 0.25+r.f64()/2)
		}
	}
	res := make([]memsim.F64Array, 15)
	for k := 1; k <= 14; k++ {
		res[k] = m.NewF64Array(liverN + 12)
	}
	px := m.NewF64Array(liverJ * liverK2)
	plan := m.NewF64Array(liverJ * liverK2)
	liverPassOnce(m, u, v, w, z, res, px, plan)

	prev := res[5].Peek(0)
	for i := 1; i < liverN; i++ {
		want := z.Peek(i) * (u.Peek(i) - prev)
		got := res[5].Peek(i)
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("kernel 5 wrong at %d: %v vs %v", i, got, want)
		}
		prev = got
	}
}

// TestMetConverges: total squared wirelength decreases from the random
// initial placement over the run (forces pull connected cells
// together).
func TestMetConverges(t *testing.T) {
	// Run met twice with different iteration budgets by abusing the
	// instruction limit: instead, replicate its wiring here via two mems
	// and compare wirelength through the traced data left in memory.
	m := memsim.New("met")
	met{}.Run(m, 1)
	// Positions live at the first two arrays allocated after New: we
	// cannot reach them by address here, so instead verify convergence
	// by construction: re-run the same algorithm untraced and measure.
	r := newRNG(0x3e70)
	posX := make([]uint32, metCells)
	posY := make([]uint32, metCells)
	forceX := make([]uint32, metCells)
	forceY := make([]uint32, metCells)
	netA := make([]uint32, metNets)
	netB := make([]uint32, metNets)
	for i := 0; i < metCells; i++ {
		posX[i] = uint32(r.intn(1 << 16))
		posY[i] = uint32(r.intn(1 << 16))
	}
	for i := 0; i < metNets; i++ {
		a := r.intn(metCells)
		b := a + r.intn(32) - 16
		if r.intn(8) == 0 {
			b = r.intn(metCells)
		}
		if b < 0 {
			b = 0
		}
		if b >= metCells {
			b = metCells - 1
		}
		netA[i] = uint32(a)
		netB[i] = uint32(b)
	}
	wirelength := func() float64 {
		var wl float64
		for n := 0; n < metNets; n++ {
			dx := float64(int32(posX[netB[n]]) - int32(posX[netA[n]]))
			dy := float64(int32(posY[netB[n]]) - int32(posY[netA[n]]))
			wl += dx*dx + dy*dy
		}
		return wl
	}
	initial := wirelength()
	for iter := 0; iter < metIters; iter++ {
		for i := range forceX {
			forceX[i], forceY[i] = 0, 0
		}
		for n := 0; n < metNets; n++ {
			a, b := netA[n], netB[n]
			dx := (int32(posX[b]) - int32(posX[a])) / 4
			dy := (int32(posY[b]) - int32(posY[a])) / 4
			forceX[a] = uint32(int32(forceX[a]) + dx)
			forceY[a] = uint32(int32(forceY[a]) + dy)
			forceX[b] = uint32(int32(forceX[b]) - dx)
			forceY[b] = uint32(int32(forceY[b]) - dy)
		}
		for i := 0; i < metCells; i++ {
			posX[i] = uint32(int32(posX[i]) + int32(forceX[i])/8)
			posY[i] = uint32(int32(posY[i]) + int32(forceY[i])/8)
		}
	}
	final := wirelength()
	if final >= initial/2 {
		t.Errorf("placement did not converge: wirelength %g -> %g", initial, final)
	}
}

// TestGrrRoutesMostNets: on the standard board, the router completes a
// healthy majority of its nets (the routed count is stashed in the
// first grid word).
func TestGrrRoutesMostNets(t *testing.T) {
	m := memsim.New("grr")
	grr{}.Run(m, 1)
	routed := m.PeekU32(memsim.HeapBase) // first allocation, first word
	if routed < grrNets*3/5 {
		t.Errorf("routed only %d of %d nets", routed, grrNets)
	}
	if routed > grrNets {
		t.Errorf("routed %d nets out of %d offered", routed, grrNets)
	}
}

// TestYaccBatchesParse: the registered workload's full run encounters
// no conditions that crash the automaton, and the parse tables it
// loads into traced memory match the Go-side constants.
func TestYaccTablesFaithful(t *testing.T) {
	m := memsim.New("yacc")
	yaccWL{}.Run(m, 1)
	// The action table is the first static allocation.
	base := memsim.StaticBase
	for s := 0; s < yaccStates; s++ {
		for tt := 0; tt < yNumTerms; tt++ {
			addr := base + uint32(s*yNumTerms+tt)*4
			if got := m.PeekU32(addr); got != slrAction[s][tt] {
				t.Fatalf("action[%d][%d] in memory = %#x, want %#x", s, tt, got, slrAction[s][tt])
			}
		}
	}
}
