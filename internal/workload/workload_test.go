package workload

import (
	"bytes"
	"testing"

	"cachewrite/internal/memsim"
	"cachewrite/internal/trace"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("registered %d workloads, want 6: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, n := range PaperOrder() {
		if _, err := Get(n); err != nil {
			t.Errorf("paper benchmark %q not registered: %v", n, err)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nosuch"); err == nil {
		t.Fatal("unknown workload returned no error")
	}
	if _, err := Generate("nosuch", 1); err == nil {
		t.Fatal("Generate of unknown workload returned no error")
	}
}

func TestDescriptions(t *testing.T) {
	for _, n := range Names() {
		w, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != n {
			t.Errorf("workload %q reports name %q", n, w.Name())
		}
		if w.Description() == "" {
			t.Errorf("workload %q has no description", n)
		}
	}
}

// smallTrace generates the named workload with a tight instruction
// budget so per-workload tests stay fast.
func smallTrace(t *testing.T, name string, limit uint64) *trace.Trace {
	t.Helper()
	tr, _, err := GenerateBudget(name, 1, limit)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAllWorkloadsProduceValidTraces(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr := smallTrace(t, name, 300_000)
			if tr.Len() == 0 {
				t.Fatal("empty trace")
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			s := tr.Stats()
			if s.Reads == 0 || s.Writes == 0 {
				t.Errorf("reads=%d writes=%d; want both non-zero", s.Reads, s.Writes)
			}
			for i, e := range tr.Events {
				if e.Size != 4 && e.Size != 8 {
					t.Fatalf("event %d has size %d; want 4 or 8 (word machine)", i, e.Size)
				}
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		a := smallTrace(t, name, 150_000)
		b := smallTrace(t, name, 150_000)
		if a.Len() != b.Len() {
			t.Fatalf("%s: lengths differ: %d vs %d", name, a.Len(), b.Len())
		}
		var bufA, bufB bytes.Buffer
		if err := trace.WriteBinary(&bufA, a); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteBinary(&bufB, b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
			t.Fatalf("%s: traces differ between runs", name)
		}
	}
}

func TestGenerateAllOrder(t *testing.T) {
	// Use tiny per-workload traces via Generate on the real scale only
	// for liver (the cheapest); GenerateAll is exercised at full scale by
	// the experiments tests. Here just check the order contract with one
	// call.
	ts, err := GenerateAll(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 6 {
		t.Fatalf("GenerateAll returned %d traces", len(ts))
	}
	for i, name := range PaperOrder() {
		if ts[i].Name != name {
			t.Errorf("trace %d is %q, want %q", i, ts[i].Name, name)
		}
	}
}

func TestRNGDeterministicAndBounded(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatal("same-seed RNGs diverge")
		}
	}
	r := newRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.intn(10); v < 0 || v >= 10 {
			t.Fatalf("intn(10) = %d", v)
		}
		if f := r.f64(); f < 0 || f >= 1 {
			t.Fatalf("f64() = %v", f)
		}
	}
	// Zero seed must still work (remapped internally).
	z := newRNG(0)
	if z.next() == 0 && z.next() == 0 {
		t.Error("zero-seeded RNG looks stuck")
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("intn(0) did not panic")
		}
	}()
	newRNG(1).intn(0)
}

func TestClampScale(t *testing.T) {
	if clampScale(0) != 1 || clampScale(-5) != 1 || clampScale(3) != 3 {
		t.Error("clampScale wrong")
	}
}

// TestLinpackSolvesSystem checks that the traced LU decomposition
// actually solves linear systems: A x = b with known solution.
func TestLinpackSolvesSystem(t *testing.T) {
	m := memsim.New("lin")
	const n = 5
	a := m.NewF64Array(n * n)
	b := m.NewF64Array(n)
	ipvt := m.NewU32Array(n)
	at := func(i, j int) int { return j*n + i }

	// A = diag-dominant matrix, x_true = [1, 2, 3, 4, 5].
	xTrue := []float64{1, 2, 3, 4, 5}
	r := newRNG(99)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := r.f64() - 0.5
			if i == j {
				v += float64(n)
			}
			a.Poke(at(i, j), v)
		}
	}
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += a.Peek(at(i, j)) * xTrue[j]
		}
		b.Poke(i, sum)
	}

	dgefa(m, a, ipvt, n, at)
	dgesl(m, a, b, ipvt, n, at)

	for i := 0; i < n; i++ {
		got := b.Peek(i)
		if diff := got - xTrue[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, got, xTrue[i])
		}
	}
}

// TestYaccParsesExpression drives the LR automaton over a hand-built
// token stream and checks the computed value: 2 + 3 * 4 = 14.
func TestYaccParsesExpression(t *testing.T) {
	m := memsim.New("y")
	action := m.NewU32ArrayStatic(yaccStates * yNumTerms)
	gotoTab := m.NewU32ArrayStatic(yaccStates * yNumNonterms)
	for s := 0; s < yaccStates; s++ {
		for tt := 0; tt < yNumTerms; tt++ {
			action.Poke(s*yNumTerms+tt, slrAction[s][tt])
		}
		for nt := 0; nt < yNumNonterms; nt++ {
			gotoTab.Poke(s*yNumNonterms+nt, slrGoto[s][nt])
		}
	}
	input := m.NewU32Array(32)
	toks := []struct{ k, v uint32 }{
		{yID, 2}, {yPlus, 0}, {yID, 3}, {yStar, 0}, {yID, 4}, {yEOF, 0},
	}
	for i, tk := range toks {
		input.Poke(2*i, tk.k)
		input.Poke(2*i+1, tk.v)
	}
	stateStack := m.NewU32ArrayStack(yaccStackMax)
	valueStack := m.NewU32ArrayStack(yaccStackMax)
	got := parseLR(m, action, gotoTab, input, len(toks), stateStack, valueStack)
	if got != 14 {
		t.Errorf("2 + 3 * 4 parsed to %d, want 14 (precedence broken)", got)
	}
}

// TestYaccParentheses checks that parentheses override precedence:
// (2 + 3) * 4 = 20.
func TestYaccParentheses(t *testing.T) {
	m := memsim.New("y")
	action := m.NewU32ArrayStatic(yaccStates * yNumTerms)
	gotoTab := m.NewU32ArrayStatic(yaccStates * yNumNonterms)
	for s := 0; s < yaccStates; s++ {
		for tt := 0; tt < yNumTerms; tt++ {
			action.Poke(s*yNumTerms+tt, slrAction[s][tt])
		}
		for nt := 0; nt < yNumNonterms; nt++ {
			gotoTab.Poke(s*yNumNonterms+nt, slrGoto[s][nt])
		}
	}
	input := m.NewU32Array(32)
	toks := []struct{ k, v uint32 }{
		{yLParen, 0}, {yID, 2}, {yPlus, 0}, {yID, 3}, {yRParen, 0},
		{yStar, 0}, {yID, 4}, {yEOF, 0},
	}
	for i, tk := range toks {
		input.Poke(2*i, tk.k)
		input.Poke(2*i+1, tk.v)
	}
	got := parseLR(m, action, gotoTab, input, len(toks),
		m.NewU32ArrayStack(yaccStackMax), m.NewU32ArrayStack(yaccStackMax))
	if got != 20 {
		t.Errorf("(2 + 3) * 4 parsed to %d, want 20", got)
	}
}

// TestCcomPipeline compiles "a = 2 + 3 * 4 ;" end to end and checks the
// compiler computes 14 into symbol a.
func TestCcomPipeline(t *testing.T) {
	m := memsim.New("cc")
	src := m.NewU32Array(64)
	text := "a = 2 + 3 * 4 ;\n"
	for i := 0; i < len(text); i++ {
		src.Poke(i, uint32(text[i]))
	}
	src.Poke(len(text), 0)

	toks := m.NewU32Array(64)
	nTok := lex(m, src, len(text)+1, toks)
	// Tokens: ident, =, 2, +, 3, *, 4, ;, EOF = 9.
	if nTok != 9 {
		t.Fatalf("lex produced %d tokens, want 9", nTok)
	}
	ast := m.NewU32Array(64 * 4)
	p := &ccomParser{m: m, toks: toks, nTok: nTok, ast: ast}
	roots := p.parseProgram()
	if len(roots) != 1 {
		t.Fatalf("parsed %d statements, want 1", len(roots))
	}
	folded := m.NewU32Array(64 * 4)
	fold(m, ast, folded, roots, p.nNode)
	// The whole expression is constant: the root's rhs should fold to
	// opNum 14.
	rhs := folded.Peek(int(roots[0])*4 + 2)
	if op := folded.Peek(int(rhs) * 4); op != opNum {
		t.Errorf("rhs op after fold = %d, want opNum", op)
	}
	if v := folded.Peek(int(rhs)*4 + 3); v != 14 {
		t.Errorf("folded value = %d, want 14 (precedence broken)", v)
	}
	code := m.NewU32Array(64 * 2)
	syms := m.NewU32Array(64)
	pc := emit(m, folded, roots, code, syms)
	if pc == 0 {
		t.Fatal("no code emitted")
	}
	if got := syms.Peek(0); got != 14 {
		t.Errorf("symbol a = %d, want 14", got)
	}
	if got := verify(m, code, pc, syms); got != 14 {
		t.Errorf("verify recomputed %d, want 14", got)
	}
}

// TestCcomFoldPreservesVariables checks that non-constant expressions
// survive folding: "a = b + 1" keeps its opAdd.
func TestCcomFoldPreservesVariables(t *testing.T) {
	m := memsim.New("cc")
	src := m.NewU32Array(32)
	text := "a = b + 1 ;\n"
	for i := 0; i < len(text); i++ {
		src.Poke(i, uint32(text[i]))
	}
	src.Poke(len(text), 0)
	toks := m.NewU32Array(64)
	nTok := lex(m, src, len(text)+1, toks)
	ast := m.NewU32Array(64 * 4)
	p := &ccomParser{m: m, toks: toks, nTok: nTok, ast: ast}
	roots := p.parseProgram()
	folded := m.NewU32Array(64 * 4)
	fold(m, ast, folded, roots, p.nNode)
	rhs := folded.Peek(int(roots[0])*4 + 2)
	if op := folded.Peek(int(rhs) * 4); op != opAdd {
		t.Errorf("rhs op after fold = %d, want opAdd preserved", op)
	}
}

// TestGrrRoutesNet checks the maze router finds and commits a path on
// an empty board.
func TestGrrRoutesNet(t *testing.T) {
	m := memsim.New("g")
	grid := m.NewU32Array(grrW * grrH)
	queue := m.NewU32Array(grrQueue)
	if !routeNet(m, grid, queue, 1, 1, 1, 10, 8) {
		t.Fatal("no route found on an empty board")
	}
	// The target must have been committed.
	if grid.Peek(8*grrW+10)&grrRouted == 0 {
		t.Error("target cell not marked routed")
	}
	if grid.Peek(1*grrW+1)&grrRouted == 0 {
		t.Error("source cell not marked routed")
	}
	// Routed cells must form a connected path of the right length: at
	// least the Manhattan distance (9+7+1 cells).
	count := 0
	for i := 0; i < grid.Len(); i++ {
		if grid.Peek(i)&grrRouted != 0 {
			count++
		}
	}
	if count < 17 {
		t.Errorf("%d routed cells, want >= 17 (Manhattan path)", count)
	}
}

// TestGrrBlockedTarget checks that a fully-walled target is unreachable.
func TestGrrBlockedTarget(t *testing.T) {
	m := memsim.New("g")
	grid := m.NewU32Array(grrW * grrH)
	queue := m.NewU32Array(grrQueue)
	tx, ty := 10, 10
	for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		grid.Poke((ty+d[1])*grrW+tx+d[0], grrObstacle)
	}
	if routeNet(m, grid, queue, 2, 1, 1, tx, ty) {
		t.Fatal("routed through obstacles")
	}
}

// TestGrrObstacleEndpoint checks obstacle endpoints fail immediately.
func TestGrrObstacleEndpoint(t *testing.T) {
	m := memsim.New("g")
	grid := m.NewU32Array(grrW * grrH)
	queue := m.NewU32Array(grrQueue)
	grid.Poke(5*grrW+5, grrObstacle)
	if routeNet(m, grid, queue, 3, 5, 5, 1, 1) {
		t.Fatal("routed from an obstacle cell")
	}
	before := m.Trace().Len()
	if routeNet(m, grid, queue, 4, 1, 1, 5, 5) {
		t.Fatal("routed to an obstacle cell")
	}
	// The obstacle check happens before any traced work.
	if m.Trace().Len() != before {
		t.Error("endpoint check should be untraced (tag probe happens in registers)")
	}
}

// TestWorkloadCharacteristics pins the coarse Table 1 shape: every
// benchmark's load:store ratio is within a plausible band and grr is
// the largest trace, as in the paper.
func TestWorkloadCharacteristics(t *testing.T) {
	ts, err := GenerateAll(1)
	if err != nil {
		t.Fatal(err)
	}
	var totalReads, totalWrites uint64
	maxRefs, maxName := uint64(0), ""
	for _, tr := range ts {
		s := tr.Stats()
		ratio := s.LoadStoreRatio()
		if ratio < 0.7 || ratio > 6 {
			t.Errorf("%s: load:store ratio %.2f outside [0.7, 6]", tr.Name, ratio)
		}
		if s.Refs() > maxRefs {
			maxRefs, maxName = s.Refs(), tr.Name
		}
		totalReads += s.Reads
		totalWrites += s.Writes
	}
	overall := float64(totalReads) / float64(totalWrites)
	if overall < 1.5 || overall > 3.5 {
		t.Errorf("overall load:store ratio %.2f; paper has 2.4", overall)
	}
	if maxName != "grr" {
		t.Errorf("largest trace is %s, want grr (as in Table 1)", maxName)
	}
}

func TestCharacterize(t *testing.T) {
	c, err := Characterize("liver", 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "liver" || c.Description == "" {
		t.Errorf("characteristics = %+v", c)
	}
	if c.Refs() != c.Reads+c.Writes || c.Refs() == 0 {
		t.Error("refs inconsistent")
	}
	if c.Instructions < c.Refs() {
		t.Error("fewer instructions than references")
	}
	if _, err := Characterize("nosuch", 1); err == nil {
		t.Error("unknown workload characterized")
	}
}
