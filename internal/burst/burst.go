// Package burst studies the burstiness of write traffic and of dirty
// victims. The paper raises both and quantifies neither: §3 compares
// the organizations' "ability to handle bursty writes" qualitatively,
// and §5.2 closes with "this section did not study the burstiness of
// dirty victims ... dirty victims are likely to be bursty as well.
// This would imply that the write back port bandwidth would need to be
// made wider than that required by the average bandwidth and/or that
// buffering to hold more than one dirty victim could be useful."
//
// AnalyzeWrites measures store bursts in the instruction stream;
// AnalyzeVictims replays the trace through a write-back cache and
// measures when dirty victims emerge. Both report peak-to-average
// bandwidth over fixed instruction windows — the number a designer
// needs to size the write-back port and the victim buffer.
package burst

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
)

// Buckets bounds the burst-length histogram: lengths 1, 2, 3-4, 5-8,
// 9-16, 17+.
var bucketBounds = []int{1, 2, 4, 8, 16}

// BucketLabels returns the histogram bucket labels.
func BucketLabels() []string {
	return []string{"1", "2", "3-4", "5-8", "9-16", "17+"}
}

func bucketOf(n int) int {
	for i, hi := range bucketBounds {
		if n <= hi {
			return i
		}
	}
	return len(bucketBounds)
}

// WriteReport summarizes store burstiness.
type WriteReport struct {
	// Writes is the total store count.
	Writes uint64
	// Bursts histograms maximal store runs (consecutive stores separated
	// by fewer than GapThreshold instructions) by length.
	Bursts [6]uint64
	// MaxBurst is the longest store run observed.
	MaxBurst int
	// Window is the instruction window used for rate measurements.
	Window uint64
	// PeakRate and AvgRate are stores per instruction in the busiest
	// window and on average.
	PeakRate, AvgRate float64
}

// PeakToAvg returns the over-provisioning factor the write path needs
// to absorb the worst window without stalling.
func (r WriteReport) PeakToAvg() float64 {
	if r.AvgRate == 0 {
		return 0
	}
	return r.PeakRate / r.AvgRate
}

// AnalyzeWrites scans the trace for store bursts. gapThreshold is the
// maximum instruction spacing within a burst (2 captures back-to-back
// and one-gap stores, the register-save pattern §3 describes); window
// is the rate-measurement window in instructions.
func AnalyzeWrites(t *trace.Trace, gapThreshold, window uint64) (WriteReport, error) {
	if gapThreshold == 0 || window == 0 {
		return WriteReport{}, fmt.Errorf("burst: gapThreshold and window must be positive")
	}
	r := WriteReport{Window: window}
	var (
		now        uint64 // instruction clock
		lastWrite  uint64
		runLen     int
		haveRun    bool
		winStart   uint64
		winWrites  uint64
		totalInstr uint64
	)
	endRun := func() {
		if haveRun && runLen > 0 {
			r.Bursts[bucketOf(runLen)]++
			if runLen > r.MaxBurst {
				r.MaxBurst = runLen
			}
		}
		runLen = 0
		haveRun = false
	}
	for _, e := range t.Events {
		now += e.Instructions()
		if e.Kind != trace.Write {
			continue
		}
		r.Writes++
		if haveRun && now-lastWrite <= gapThreshold {
			runLen++
		} else {
			endRun()
			haveRun = true
			runLen = 1
		}
		lastWrite = now

		// Windowed rate.
		for now-winStart >= window {
			rate := float64(winWrites) / float64(window)
			if rate > r.PeakRate {
				r.PeakRate = rate
			}
			winStart += window
			winWrites = 0
		}
		winWrites++
	}
	endRun()
	totalInstr = now
	if totalInstr > 0 {
		r.AvgRate = float64(r.Writes) / float64(totalInstr)
	}
	if rate := float64(winWrites) / float64(window); rate > r.PeakRate {
		r.PeakRate = rate
	}
	return r, nil
}

// VictimReport summarizes dirty-victim burstiness at the back of a
// write-back cache.
type VictimReport struct {
	// DirtyVictims is the total write-back count during execution.
	DirtyVictims uint64
	// Bursts histograms runs of dirty victims emerging within
	// GapThreshold instructions of each other.
	Bursts [6]uint64
	// MaxBurst is the longest run.
	MaxBurst int
	// MaxPending is the maximum number of dirty victims produced within
	// one window — the victim buffer depth needed to avoid stalling the
	// refill path if the next level retires one victim per window.
	MaxPending uint64
	// Window, PeakRate, AvgRate as in WriteReport, for write-backs.
	Window            uint64
	PeakRate, AvgRate float64
}

// PeakToAvg returns the peak-to-average write-back bandwidth ratio.
func (r VictimReport) PeakToAvg() float64 {
	if r.AvgRate == 0 {
		return 0
	}
	return r.PeakRate / r.AvgRate
}

// AnalyzeVictims replays the trace through a write-back fetch-on-write
// cache of the given geometry and measures when dirty victims emerge.
func AnalyzeVictims(t *trace.Trace, cfg cache.Config, gapThreshold, window uint64) (VictimReport, error) {
	if gapThreshold == 0 || window == 0 {
		return VictimReport{}, fmt.Errorf("burst: gapThreshold and window must be positive")
	}
	if cfg.WriteHit != cache.WriteBack {
		return VictimReport{}, fmt.Errorf("burst: victim analysis requires a write-back cache (got %s)", cfg.WriteHit)
	}
	c, err := cache.New(cfg)
	if err != nil {
		return VictimReport{}, err
	}
	r := VictimReport{Window: window}
	var (
		now      uint64
		lastWB   uint64
		prevWBs  uint64
		runLen   int
		haveRun  bool
		winStart uint64
		winWBs   uint64
	)
	endRun := func() {
		if haveRun && runLen > 0 {
			r.Bursts[bucketOf(runLen)]++
			if runLen > r.MaxBurst {
				r.MaxBurst = runLen
			}
		}
		runLen = 0
		haveRun = false
	}
	for _, e := range t.Events {
		now += e.Instructions()
		c.Access(e)
		wbs := c.Stats().Writebacks
		newWBs := wbs - prevWBs
		prevWBs = wbs

		for now-winStart >= window {
			rate := float64(winWBs) / float64(window)
			if rate > r.PeakRate {
				r.PeakRate = rate
			}
			if winWBs > r.MaxPending {
				r.MaxPending = winWBs
			}
			winStart += window
			winWBs = 0
		}

		for i := uint64(0); i < newWBs; i++ {
			r.DirtyVictims++
			winWBs++
			if haveRun && now-lastWB <= gapThreshold {
				runLen++
			} else {
				endRun()
				haveRun = true
				runLen = 1
			}
			lastWB = now
		}
	}
	endRun()
	if winWBs > r.MaxPending {
		r.MaxPending = winWBs
	}
	if rate := float64(winWBs) / float64(window); rate > r.PeakRate {
		r.PeakRate = rate
	}
	if now > 0 {
		r.AvgRate = float64(r.DirtyVictims) / float64(now)
	}
	return r, nil
}
