package burst

import (
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
)

func w(addr uint32, gap uint16) trace.Event {
	return trace.Event{Addr: addr, Size: 4, Gap: gap, Kind: trace.Write}
}

func r(addr uint32, gap uint16) trace.Event {
	return trace.Event{Addr: addr, Size: 4, Gap: gap, Kind: trace.Read}
}

func TestBucketLabels(t *testing.T) {
	labels := BucketLabels()
	if len(labels) != 6 {
		t.Fatalf("%d labels", len(labels))
	}
	if bucketOf(1) != 0 || bucketOf(2) != 1 || bucketOf(3) != 2 || bucketOf(4) != 2 ||
		bucketOf(8) != 3 || bucketOf(16) != 4 || bucketOf(17) != 5 || bucketOf(1000) != 5 {
		t.Error("bucketOf boundaries wrong")
	}
}

func TestAnalyzeWritesValidation(t *testing.T) {
	tr := &trace.Trace{}
	if _, err := AnalyzeWrites(tr, 0, 100); err == nil {
		t.Error("zero gapThreshold accepted")
	}
	if _, err := AnalyzeWrites(tr, 2, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestWriteBurstDetection(t *testing.T) {
	// Burst of 3 back-to-back stores, a lone store far away, then a
	// burst of 2.
	tr := &trace.Trace{Events: []trace.Event{
		w(0x00, 0), w(0x08, 0), w(0x10, 0),
		r(0x100, 50),
		w(0x20, 50),
		w(0x30, 40), w(0x38, 0),
	}}
	rep, err := AnalyzeWrites(tr, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Writes != 6 {
		t.Fatalf("writes = %d", rep.Writes)
	}
	if rep.MaxBurst != 3 {
		t.Errorf("max burst = %d, want 3", rep.MaxBurst)
	}
	// Histogram: one length-3 burst (bucket "3-4"), one length-1, one
	// length-2.
	if rep.Bursts[2] != 1 || rep.Bursts[0] != 1 || rep.Bursts[1] != 1 {
		t.Errorf("histogram = %v", rep.Bursts)
	}
}

func TestWriteRates(t *testing.T) {
	// 8 stores in the first 8 instructions, then 92 quiet instructions
	// (window 10): peak 0.8/instr, average 8/100.
	tr := &trace.Trace{}
	for i := 0; i < 8; i++ {
		tr.Append(w(uint32(i*8), 0))
	}
	tr.Append(r(0x1000, 91))
	rep, err := AnalyzeWrites(tr, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakRate < 0.7 {
		t.Errorf("peak rate = %v, want ~0.8", rep.PeakRate)
	}
	if rep.AvgRate > 0.1 {
		t.Errorf("avg rate = %v, want 0.08", rep.AvgRate)
	}
	if rep.PeakToAvg() < 7 {
		t.Errorf("peak/avg = %v, want ~10", rep.PeakToAvg())
	}
}

func TestPeakToAvgZero(t *testing.T) {
	var wr WriteReport
	if wr.PeakToAvg() != 0 {
		t.Error("zero write report divides by zero")
	}
	var vr VictimReport
	if vr.PeakToAvg() != 0 {
		t.Error("zero victim report divides by zero")
	}
}

func victimCfg() cache.Config {
	return cache.Config{Size: 256, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
}

func TestAnalyzeVictimsValidation(t *testing.T) {
	tr := &trace.Trace{}
	if _, err := AnalyzeVictims(tr, victimCfg(), 0, 10); err == nil {
		t.Error("zero gapThreshold accepted")
	}
	if _, err := AnalyzeVictims(tr, victimCfg(), 4, 0); err == nil {
		t.Error("zero window accepted")
	}
	wt := victimCfg()
	wt.WriteHit = cache.WriteThrough
	if _, err := AnalyzeVictims(tr, wt, 4, 10); err == nil {
		t.Error("write-through cache accepted for victim analysis")
	}
	if _, err := AnalyzeVictims(tr, cache.Config{}, 4, 10); err == nil {
		t.Error("invalid cache config accepted")
	}
}

func TestVictimBursts(t *testing.T) {
	// 256B direct-mapped cache, 16 lines. Dirty lines 0..15, then a
	// conflicting sweep evicts all 16 dirty victims back-to-back — a
	// victim burst.
	tr := &trace.Trace{}
	for i := 0; i < 16; i++ {
		tr.Append(w(uint32(i*16), 0))
	}
	for i := 0; i < 16; i++ {
		tr.Append(r(uint32(256+i*16), 0))
	}
	rep, err := AnalyzeVictims(tr, victimCfg(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DirtyVictims != 16 {
		t.Fatalf("dirty victims = %d, want 16", rep.DirtyVictims)
	}
	if rep.MaxBurst != 16 {
		t.Errorf("max victim burst = %d, want 16", rep.MaxBurst)
	}
	if rep.Bursts[4] != 1 {
		t.Errorf("histogram = %v, want one run in bucket 9-16", rep.Bursts)
	}
	if rep.MaxPending < 8 {
		t.Errorf("max pending = %d, want >= 8 (window of 8 instructions)", rep.MaxPending)
	}
	if rep.PeakToAvg() <= 1 {
		t.Errorf("victims should be bursty: peak/avg = %v", rep.PeakToAvg())
	}
}

func TestVictimBucketPlacement(t *testing.T) {
	// Exactly 16 victims in a run lands in bucket "9-16" (index 4).
	tr := &trace.Trace{}
	for i := 0; i < 16; i++ {
		tr.Append(w(uint32(i*16), 0))
	}
	for i := 0; i < 16; i++ {
		tr.Append(r(uint32(256+i*16), 0))
	}
	rep, err := AnalyzeVictims(tr, victimCfg(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(0)
	for _, b := range rep.Bursts {
		total += b
	}
	if total != 1 {
		t.Fatalf("burst count = %d, want 1 run", total)
	}
	if rep.Bursts[4] != 1 && rep.Bursts[5] != 1 {
		t.Errorf("histogram = %v", rep.Bursts)
	}
}

func TestNoVictimsNoBursts(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{r(0x0, 0), r(0x10, 0)}}
	rep, err := AnalyzeVictims(tr, victimCfg(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DirtyVictims != 0 || rep.MaxBurst != 0 || rep.PeakRate != 0 {
		t.Errorf("phantom victims: %+v", rep)
	}
}
