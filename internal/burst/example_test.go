package burst_test

import (
	"fmt"

	"cachewrite/internal/burst"
	"cachewrite/internal/synth"
)

// Example measures the register-save pattern §3 worries about: long
// back-to-back store bursts that overwhelm a write buffer.
func Example() {
	t := synth.RegisterSave(20, 30, 200) // 20 calls saving 30 registers
	r, err := burst.AnalyzeWrites(t, 2, 64)
	if err != nil {
		panic(err)
	}
	fmt.Printf("max store burst: %d back-to-back stores\n", r.MaxBurst)
	fmt.Printf("peak/average write bandwidth: %.1fx\n", r.PeakToAvg())
	// Output:
	// max store burst: 30 back-to-back stores
	// peak/average write bandwidth: 7.2x
}
