// Package pipeline models the paper's sixth dimension of write-hit
// comparison (§3, Fig 3): how stores integrate into the machine
// pipeline, and what that costs in cycles per instruction.
//
// Three cache organizations are modelled on the paper's five-stage
// pipeline (IF RF ALU MEM WB):
//
//   - DirectMappedWriteThrough: stores write the data array in MEM
//     concurrently with the tag probe — one cycle per store, no
//     interlocks (Fig 3's left column).
//   - SimpleWriteBack: the probe happens in MEM and the data write in
//     WB (probe-before-write). A load immediately following a store
//     finds the data array busy and stalls one cycle (also the case
//     for set-associative write-through).
//   - DelayedWriteBack: the last-write register of §3.1/Fig 4 — the
//     probe for store N proceeds in parallel with the data write of
//     store N-1, restoring one-cycle stores. A read miss between the
//     probe and the deferred write forces the pending write to drain
//     first (one cycle).
//
// The model composes the interlock cost with cache-miss stalls and
// write-buffer stalls into a total CPI estimate, giving a quantitative
// form of the paper's Table 2 row "cycles required per write: 1 vs
// 1 to 2 (incl. probe)".
package pipeline

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
	"cachewrite/internal/writebuffer"
)

// Organization selects the store pipeline model.
type Organization uint8

const (
	// DirectMappedWriteThrough writes data concurrently with the probe.
	DirectMappedWriteThrough Organization = iota
	// SimpleWriteBack probes in MEM and writes in WB, interlocking
	// against an immediately-following load.
	SimpleWriteBack
	// DelayedWriteBack adds the last-write register of Fig 4.
	DelayedWriteBack
)

// String returns a readable organization name.
func (o Organization) String() string {
	switch o {
	case DirectMappedWriteThrough:
		return "direct-mapped write-through"
	case SimpleWriteBack:
		return "simple write-back"
	case DelayedWriteBack:
		return "write-back + delayed write register"
	default:
		return fmt.Sprintf("Organization(%d)", uint8(o))
	}
}

// Organizations lists the three models.
func Organizations() []Organization {
	return []Organization{DirectMappedWriteThrough, SimpleWriteBack, DelayedWriteBack}
}

// Config parameterizes the CPI model.
type Config struct {
	// Org is the store pipeline organization.
	Org Organization
	// Cache is the first-level cache; its hit/miss policies should match
	// the organization (write-through for DirectMappedWriteThrough).
	Cache cache.Config
	// MissPenalty is the stall, in cycles, per fetch-triggering miss.
	MissPenalty int
	// WriteBuffer, when non-nil, adds write-buffer-full stalls for
	// write-through organizations (the Fig 5 model).
	WriteBuffer *writebuffer.Config
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch c.Org {
	case DirectMappedWriteThrough, SimpleWriteBack, DelayedWriteBack:
	default:
		return fmt.Errorf("pipeline: unknown organization %d", c.Org)
	}
	if err := c.Cache.Validate(); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	if c.Org == DirectMappedWriteThrough && c.Cache.Assoc != 1 {
		return fmt.Errorf("pipeline: concurrent tag/data write requires a direct-mapped cache (assoc=%d)", c.Cache.Assoc)
	}
	if c.MissPenalty < 0 {
		return fmt.Errorf("pipeline: negative miss penalty %d", c.MissPenalty)
	}
	if c.WriteBuffer != nil {
		if err := c.WriteBuffer.Validate(); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
	}
	return nil
}

// Stats is the CPI breakdown produced by Evaluate.
type Stats struct {
	Instructions uint64
	Stores       uint64
	Loads        uint64

	// InterlockStalls counts cycles lost to store/load structural
	// hazards on the data array (zero for one-cycle-store
	// organizations).
	InterlockStalls uint64
	// DrainStalls counts cycles spent draining the delayed-write
	// register ahead of a miss refill (DelayedWriteBack only).
	DrainStalls uint64
	// MissStalls is fetch-triggering misses times the miss penalty.
	MissStalls uint64
	// WriteBufferStalls is the buffer-full stall total (write-through
	// organizations with a WriteBuffer configured).
	WriteBufferStalls uint64

	// Cache carries the underlying cache statistics.
	Cache cache.Stats
}

// CPI returns total cycles per instruction: one base cycle per
// instruction plus every stall component.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	stalls := s.InterlockStalls + s.DrainStalls + s.MissStalls + s.WriteBufferStalls
	return 1 + float64(stalls)/float64(s.Instructions)
}

// StoreCost returns the marginal cycles per store attributable to the
// organization's store handling (interlock + drain stalls per store) —
// the measured version of Table 2's "cycles required per write" row,
// minus the base cycle.
func (s Stats) StoreCost() float64 {
	if s.Stores == 0 {
		return 0
	}
	return float64(s.InterlockStalls+s.DrainStalls) / float64(s.Stores)
}

// Evaluate runs the trace through the cache and the pipeline model.
func Evaluate(cfg Config, t *trace.Trace) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	c, err := cache.New(cfg.Cache)
	if err != nil {
		return Stats{}, err
	}

	var s Stats
	prevWasStore := false // previous *instruction* was a store
	pendingWrite := false // delayed-write register holds a write
	for _, e := range t.Events {
		missesBefore := c.Stats().Misses()
		c.Access(e)
		missed := c.Stats().Misses() != missesBefore

		// Gap instructions are non-memory: they break any store/load
		// adjacency and give the delayed write a free slot to retire.
		if e.Gap > 0 {
			prevWasStore = false
			pendingWrite = false
		}

		switch e.Kind {
		case trace.Read:
			s.Loads++
			if prevWasStore && cfg.Org == SimpleWriteBack {
				// The store's WB-stage data write collides with this
				// load's MEM-stage data read.
				s.InterlockStalls++
			}
			if missed && pendingWrite && cfg.Org == DelayedWriteBack {
				// The refill must wait for the deferred write to drain.
				s.DrainStalls++
				pendingWrite = false
			}
			prevWasStore = false
		case trace.Write:
			s.Stores++
			if cfg.Org == DelayedWriteBack {
				pendingWrite = true
			}
			prevWasStore = true
		}
		if missed {
			s.MissStalls += uint64(cfg.MissPenalty)
			// A miss refill empties the pipeline's write-side state.
			prevWasStore = false
			pendingWrite = false
		}
	}
	s.Cache = c.Stats()
	s.Instructions = s.Cache.Instructions

	if cfg.WriteBuffer != nil && cfg.Cache.WriteHit == cache.WriteThrough {
		b, err := writebuffer.New(*cfg.WriteBuffer)
		if err != nil {
			return Stats{}, err
		}
		b.Run(t)
		s.WriteBufferStalls = b.Stats().StallCycles
	}
	return s, nil
}
