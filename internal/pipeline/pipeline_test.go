package pipeline

import (
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
	"cachewrite/internal/writebuffer"
)

func wtCfg() cache.Config {
	return cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteThrough, WriteMiss: cache.FetchOnWrite}
}

func wbCfg() cache.Config {
	return cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
}

func ev(k trace.Kind, addr uint32, gap uint16) trace.Event {
	return trace.Event{Addr: addr, Size: 4, Gap: gap, Kind: k}
}

func TestOrganizationStrings(t *testing.T) {
	for _, o := range Organizations() {
		if o.String() == "" {
			t.Errorf("organization %d has no name", o)
		}
	}
	if Organization(9).String() == "" {
		t.Error("unknown organization should still render")
	}
}

func TestValidate(t *testing.T) {
	good := Config{Org: SimpleWriteBack, Cache: wbCfg(), MissPenalty: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Org: Organization(9), Cache: wbCfg()},
		{Org: SimpleWriteBack, Cache: cache.Config{}},
		{Org: SimpleWriteBack, Cache: wbCfg(), MissPenalty: -1},
		{Org: DirectMappedWriteThrough, Cache: func() cache.Config {
			c := wtCfg()
			c.Assoc = 2
			return c
		}()},
		{Org: SimpleWriteBack, Cache: wbCfg(),
			WriteBuffer: &writebuffer.Config{Entries: -1, LineSize: 16}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Evaluate(Config{Org: Organization(9), Cache: wbCfg()}, &trace.Trace{}); err == nil {
		t.Error("Evaluate accepted a bad config")
	}
}

// TestStoreLoadInterlock: a load in the very next instruction after a
// store stalls once on SimpleWriteBack, never on the other two.
func TestStoreLoadInterlock(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{
		ev(trace.Read, 0x100, 0), // prime the line
		ev(trace.Write, 0x100, 0),
		ev(trace.Read, 0x104, 0), // back-to-back load after store
	}}
	for _, org := range Organizations() {
		cc := wbCfg()
		if org == DirectMappedWriteThrough {
			cc = wtCfg()
		}
		s, err := Evaluate(Config{Org: org, Cache: cc}, tr)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(0)
		if org == SimpleWriteBack {
			want = 1
		}
		if s.InterlockStalls != want {
			t.Errorf("%s: interlocks = %d, want %d", org, s.InterlockStalls, want)
		}
	}
}

// TestGapBreaksInterlock: any intervening non-memory instruction clears
// the hazard.
func TestGapBreaksInterlock(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{
		ev(trace.Read, 0x100, 0),
		ev(trace.Write, 0x100, 0),
		ev(trace.Read, 0x104, 1), // one ALU op between store and load
	}}
	s, err := Evaluate(Config{Org: SimpleWriteBack, Cache: wbCfg()}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.InterlockStalls != 0 {
		t.Errorf("interlocks = %d despite a gap", s.InterlockStalls)
	}
}

// TestDelayedWriteDrain: a read miss right after a store forces a
// one-cycle drain of the delayed-write register.
func TestDelayedWriteDrain(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{
		ev(trace.Read, 0x100, 0),
		ev(trace.Write, 0x100, 0),
		ev(trace.Read, 0x4000, 0), // miss: refill must wait for drain
	}}
	s, err := Evaluate(Config{Org: DelayedWriteBack, Cache: wbCfg(), MissPenalty: 10}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.DrainStalls != 1 {
		t.Errorf("drain stalls = %d, want 1", s.DrainStalls)
	}
	if s.MissStalls != 20 { // two read misses x 10
		t.Errorf("miss stalls = %d, want 20", s.MissStalls)
	}
}

// TestDelayedWriteNoDrainOnHit: read hits proceed without draining.
func TestDelayedWriteNoDrainOnHit(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{
		ev(trace.Read, 0x100, 0),
		ev(trace.Write, 0x100, 0),
		ev(trace.Read, 0x104, 0), // hit
	}}
	s, err := Evaluate(Config{Org: DelayedWriteBack, Cache: wbCfg()}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.DrainStalls != 0 {
		t.Errorf("drain stalls = %d on a read hit", s.DrainStalls)
	}
}

func TestCPIAndStoreCost(t *testing.T) {
	var s Stats
	if s.CPI() != 0 || s.StoreCost() != 0 {
		t.Error("zero stats must not divide by zero")
	}
	s = Stats{Instructions: 100, Stores: 10, InterlockStalls: 5, MissStalls: 15}
	if got := s.CPI(); got != 1.2 {
		t.Errorf("CPI = %v, want 1.2", got)
	}
	if got := s.StoreCost(); got != 0.5 {
		t.Errorf("StoreCost = %v, want 0.5", got)
	}
}

func TestWriteBufferStallsOnlyForWriteThrough(t *testing.T) {
	// A long, dense store burst into a slow write buffer.
	tr := &trace.Trace{}
	for i := 0; i < 100; i++ {
		tr.Append(ev(trace.Write, uint32(i*64), 0))
	}
	wbc := &writebuffer.Config{Entries: 2, LineSize: 16, RetireInterval: 40}
	wt, err := Evaluate(Config{Org: DirectMappedWriteThrough, Cache: wtCfg(), WriteBuffer: wbc}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if wt.WriteBufferStalls == 0 {
		t.Error("write-through organization recorded no write-buffer stalls")
	}
	wb, err := Evaluate(Config{Org: SimpleWriteBack, Cache: wbCfg(), WriteBuffer: wbc}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if wb.WriteBufferStalls != 0 {
		t.Error("write-back organization charged write-buffer stalls")
	}
}

// TestOrganizationOrdering: on a store-dense trace, the one-cycle-store
// organizations must not have higher store cost than SimpleWriteBack.
func TestOrganizationOrdering(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 2000; i++ {
		a := uint32((i % 61) * 8)
		tr.Append(ev(trace.Write, a, 0))
		tr.Append(ev(trace.Read, a, 0))
	}
	cost := map[Organization]float64{}
	for _, org := range Organizations() {
		cc := wbCfg()
		if org == DirectMappedWriteThrough {
			cc = wtCfg()
		}
		s, err := Evaluate(Config{Org: org, Cache: cc, MissPenalty: 0}, tr)
		if err != nil {
			t.Fatal(err)
		}
		cost[org] = s.StoreCost()
	}
	if cost[DirectMappedWriteThrough] != 0 {
		t.Errorf("WT store cost = %v, want 0", cost[DirectMappedWriteThrough])
	}
	if cost[SimpleWriteBack] <= cost[DelayedWriteBack] {
		t.Errorf("delayed write register did not help: simple=%v delayed=%v",
			cost[SimpleWriteBack], cost[DelayedWriteBack])
	}
}
