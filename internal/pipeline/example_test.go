package pipeline_test

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/pipeline"
	"cachewrite/internal/trace"
)

// Example shows the §3 pipeline dimension: back-to-back store/load
// pairs interlock on a simple write-back cache but not with the
// delayed-write register of Fig 4.
func Example() {
	t := &trace.Trace{}
	t.Append(trace.Event{Addr: 0x100, Size: 4, Kind: trace.Read}) // prime
	for i := 0; i < 1000; i++ {
		t.Append(trace.Event{Addr: 0x100, Size: 4, Kind: trace.Write})
		t.Append(trace.Event{Addr: 0x104, Size: 4, Kind: trace.Read})
	}
	for _, org := range []pipeline.Organization{pipeline.SimpleWriteBack, pipeline.DelayedWriteBack} {
		s, err := pipeline.Evaluate(pipeline.Config{
			Org: org,
			Cache: cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
				WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite},
		}, t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-36s %.2f extra cycles/store\n", org, s.StoreCost())
	}
	// Output:
	// simple write-back                    1.00 extra cycles/store
	// write-back + delayed write register  0.00 extra cycles/store
}
