package coherence

import (
	"reflect"
	"testing"

	"cachewrite/internal/trace"
)

func TestBuildWorkloadPrivateWindows(t *testing.T) {
	base := synthTrace(500, 11, 1<<12)
	w, err := BuildWorkload(base, WorkloadConfig{Cores: 2, SharedFraction: 0, Stride: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.PerCore) != 2 {
		t.Fatalf("per-core traces = %d", len(w.PerCore))
	}
	for i, e := range w.PerCore[0].Events {
		if e.Addr != base.Events[i].Addr {
			t.Fatalf("core 0 not identity-mapped at event %d: %#x vs %#x", i, e.Addr, base.Events[i].Addr)
		}
		if got := w.PerCore[1].Events[i].Addr; got != base.Events[i].Addr+1<<20 {
			t.Fatalf("core 1 window wrong at event %d: %#x", i, got)
		}
	}
}

func TestBuildWorkloadSharedFraction(t *testing.T) {
	base := synthTrace(500, 13, 1<<12)
	// Fraction 1: every address is shared, all cores replay the base
	// addresses verbatim.
	w, err := BuildWorkload(base, WorkloadConfig{Cores: 3, SharedFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		for i, e := range w.PerCore[c].Events {
			if e.Addr != base.Events[i].Addr {
				t.Fatalf("core %d event %d not shared: %#x", c, i, e.Addr)
			}
		}
	}
	// Fraction 0.5: some granules shared, some private, decided
	// identically for every core.
	w, err = BuildWorkload(base, WorkloadConfig{Cores: 2, SharedFraction: 0.5, Stride: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	shared, private := 0, 0
	for i, e := range w.PerCore[1].Events {
		if e.Addr == base.Events[i].Addr {
			shared++
		} else if e.Addr == base.Events[i].Addr+1<<20 {
			private++
		} else {
			t.Fatalf("event %d mapped to neither window: %#x", i, e.Addr)
		}
	}
	if shared == 0 || private == 0 {
		t.Fatalf("degenerate split: %d shared, %d private", shared, private)
	}
}

func TestBuildWorkloadDeterministic(t *testing.T) {
	base := synthTrace(300, 17, 1<<12)
	cfg := WorkloadConfig{Cores: 4, SharedFraction: 0.25, Stagger: 50}
	a, err := BuildWorkload(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildWorkload(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated builds differ")
	}
	want := []uint64{0, 50, 100, 150}
	if !reflect.DeepEqual(a.Offsets, want) {
		t.Fatalf("offsets = %v, want %v", a.Offsets, want)
	}
}

func TestBuildWorkloadCollisionDetected(t *testing.T) {
	// A footprint wider than the stride must be rejected: core 1's
	// private window would alias core 0's.
	base := &trace.Trace{Name: "wide", Events: []trace.Event{
		{Addr: 0x00, Size: 4, Kind: trace.Write},
		{Addr: 0x40, Size: 4, Kind: trace.Write},
	}}
	if _, err := BuildWorkload(base, WorkloadConfig{Cores: 2, SharedFraction: 0, Stride: 64}); err == nil {
		t.Fatal("window collision not detected")
	}
}

func TestBuildWorkloadValidation(t *testing.T) {
	base := synthTrace(10, 3, 256)
	bad := []WorkloadConfig{
		{Cores: 0},
		{Cores: MaxCores + 1},
		{Cores: 2, SharedFraction: -0.1},
		{Cores: 2, SharedFraction: 1.1},
		{Cores: 2, Stride: 48}, // not a power of two
		{Cores: 2, Stride: 32}, // below the sharing granule
	}
	for i, cfg := range bad {
		if _, err := BuildWorkload(base, cfg); err == nil {
			t.Errorf("bad workload config %d accepted", i)
		}
	}
	// Rebase overflow: a footprint near the top of the address space
	// cannot take a positive window shift.
	top := &trace.Trace{Events: []trace.Event{{Addr: 0xfffffff0, Size: 4, Kind: trace.Read}}}
	if _, err := BuildWorkload(top, WorkloadConfig{Cores: 2, SharedFraction: 0}); err == nil {
		t.Error("address-space overflow not detected")
	}
}

func TestBuildWorkloadEventCap(t *testing.T) {
	base := synthTrace(100, 19, 1<<12)
	w, err := BuildWorkload(base, WorkloadConfig{Cores: 2, MaxEventsPerCore: 25})
	if err != nil {
		t.Fatal(err)
	}
	for c, tr := range w.PerCore {
		if tr.Len() != 25 {
			t.Errorf("core %d has %d events, want 25", c, tr.Len())
		}
	}
}

func TestWorkloadInterleaved(t *testing.T) {
	base := synthTrace(200, 23, 1<<12)
	// A stagger far beyond the Gap field's capacity exercises the
	// Interleave gap-split fix inside the coherence layer: total
	// instruction time must survive the merge.
	w, err := BuildWorkload(base, WorkloadConfig{Cores: 2, SharedFraction: 0.25, Stagger: 100000})
	if err != nil {
		t.Fatal(err)
	}
	merged, st := w.Interleaved()
	if merged.Len() != 2*base.Len() {
		t.Fatalf("merged %d events, want %d", merged.Len(), 2*base.Len())
	}
	perCore := w.PerCore[0].Stats().Instructions
	want := 100000 + perCore // core 1 starts at 100000 and finishes last
	if got := merged.Stats().Instructions; got != want {
		t.Errorf("merged instructions = %d, want %d", got, want)
	}
	if st.GapSplits == 0 {
		t.Error("large stagger did not exercise the gap-split path")
	}
	if st.LostInstructions != 0 {
		t.Errorf("lost %d instructions in the merge", st.LostInstructions)
	}
}
