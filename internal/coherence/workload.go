// Multi-core workload construction: each core replays the base
// benchmark in a private address window (trace.Rebase), with a
// configurable fraction of 64-byte address granules overridden back to
// their base addresses so every core touches them at the same place —
// true sharing with deterministic, address-hashed selection. The
// per-core streams carry stagger offsets and are merged by instruction
// time, either inside System.Run (coherent replay) or via
// trace.InterleaveOffset (a single-cache baseline stream).
package coherence

import (
	"fmt"

	"cachewrite/internal/trace"
)

// SharedGranule is the sharing decision granularity in bytes: whether
// an address is shared or private is decided per 64-byte granule, so
// the choice is stable across line sizes up to the cache maximum.
const SharedGranule = 64

// DefaultStride is the default private-window spacing. The paper
// workloads place their footprints near 0x10000000 (heap) and
// 0x7fffffff (stack); 128MB steps keep up to MaxCores per-core images
// of both regions disjoint within the 32-bit space, and BuildWorkload
// verifies disjointness exactly rather than trusting the layout.
const DefaultStride = 1 << 27

// WorkloadConfig describes how to turn one benchmark trace into an
// N-core workload.
type WorkloadConfig struct {
	// Cores is the sharing degree (1..MaxCores).
	Cores int
	// SharedFraction in [0,1] is the fraction of 64-byte address
	// granules all cores share (selected by a deterministic address
	// hash); the rest of each core's references land in its private
	// window.
	SharedFraction float64
	// Stride is the private-window spacing in bytes (core i's private
	// addresses are base+i*Stride); 0 means DefaultStride. Must be a
	// power of two ≥ SharedGranule.
	Stride uint32
	// Stagger offsets core i's start by i*Stagger instructions,
	// breaking lockstep between the replicated streams.
	Stagger uint64
	// MaxEventsPerCore truncates the base trace to this many events
	// per core (0 = full trace) — the sweep experiments use a prefix
	// sample to bound simulation cost.
	MaxEventsPerCore int
}

// Workload is an N-core reference schedule: one trace per core plus
// per-core start offsets (instruction stagger).
type Workload struct {
	Name    string
	PerCore []*trace.Trace
	Offsets []uint64
}

// BuildWorkload constructs the N-core workload. It fails if any
// rebased access leaves the 32-bit address space or if two cores'
// private footprints (or a private and the shared footprint) collide
// at SharedGranule granularity — raise Stride if they do.
func BuildWorkload(base *trace.Trace, cfg WorkloadConfig) (*Workload, error) {
	if cfg.Cores < 1 || cfg.Cores > MaxCores {
		return nil, fmt.Errorf("coherence: %d cores outside [1,%d]", cfg.Cores, MaxCores)
	}
	if cfg.SharedFraction < 0 || cfg.SharedFraction > 1 {
		return nil, fmt.Errorf("coherence: shared fraction %v outside [0,1]", cfg.SharedFraction)
	}
	stride := cfg.Stride
	if stride == 0 {
		stride = DefaultStride
	}
	if stride < SharedGranule || stride&(stride-1) != 0 {
		return nil, fmt.Errorf("coherence: stride %d must be a power of two >= %d", stride, SharedGranule)
	}
	t := base
	if cfg.MaxEventsPerCore > 0 && base.Len() > cfg.MaxEventsPerCore {
		t = &trace.Trace{Name: base.Name, Events: base.Events[:cfg.MaxEventsPerCore]}
	}
	threshold := uint64(cfg.SharedFraction * float64(1<<32))

	w := &Workload{
		Name:    fmt.Sprintf("%s/x%d", base.Name, cfg.Cores),
		PerCore: make([]*trace.Trace, cfg.Cores),
		Offsets: make([]uint64, cfg.Cores),
	}
	// owner records, per shared granule, whether it belongs to the
	// shared footprint (-1) or one core's private image; a conflicting
	// claim means two windows collided and the workload would alias.
	owner := make(map[uint32]int)
	claim := func(g uint32, who int) error {
		if prev, ok := owner[g]; ok {
			if prev != who {
				return fmt.Errorf("coherence: address windows collide at granule %#x (stride %d too small for this footprint)",
					uint64(g)*SharedGranule, stride)
			}
			return nil
		}
		owner[g] = who
		return nil
	}
	for c := 0; c < cfg.Cores; c++ {
		img, err := trace.Rebase(t, int64(stride)*int64(c))
		if err != nil {
			return nil, fmt.Errorf("coherence: core %d window: %w", c, err)
		}
		img.Name = fmt.Sprintf("%s/core%d", base.Name, c)
		for i, e := range t.Events {
			if sharedGranule(e.Addr/SharedGranule, threshold) {
				// Shared granule: every core references the base
				// address, so the cores genuinely collide here.
				img.Events[i].Addr = e.Addr
				if err := claim(e.Addr/SharedGranule, -1); err != nil {
					return nil, err
				}
			} else if err := claim(img.Events[i].Addr/SharedGranule, c); err != nil {
				return nil, err
			}
		}
		w.PerCore[c] = img
		w.Offsets[c] = uint64(c) * cfg.Stagger
	}
	return w, nil
}

// sharedGranule decides, by deterministic hash, whether a granule is
// part of the shared region. The hash is a 32-bit splitmix-style
// mixer, so the shared set is a uniform pseudo-random sample of the
// footprint rather than one contiguous region.
func sharedGranule(g uint32, threshold uint64) bool {
	x := g + 0x9e3779b9
	x ^= x >> 16
	x *= 0x21f0aaad
	x ^= x >> 15
	x *= 0x735a2d97
	x ^= x >> 15
	return uint64(x) < threshold
}

// Interleaved merges the per-core streams (with their stagger offsets)
// into a single trace — the reference schedule one shared cache would
// observe. The stats report how faithfully the merged gaps fit the
// trace format (see trace.InterleaveStats).
func (w *Workload) Interleaved() (*trace.Trace, trace.InterleaveStats) {
	return trace.InterleaveOffset(w.Name, w.Offsets, w.PerCore...)
}
