// Package coherence simulates N cores with private first-level data
// caches over a shared second level, kept consistent by a snooping
// protocol. It is the multi-core extension of the paper's single-core
// write-policy taxonomy: every combination of coherence scheme ×
// write-hit × write-miss policy runs, so invalidations and update
// broadcasts interact directly with write-through/write-back and
// fetch-on-write/write-validate/write-around/write-invalidate.
//
// Three schemes are modelled:
//
//   - Invalidate: MSI-style write-invalidate snooping. A write
//     removes every remote copy (dirty remote data is flushed to the
//     shared level first), so subsequent remote accesses miss —
//     counted separately as sharing misses.
//   - Update: write-update (Dragon/Firefly-style). A write refreshes
//     remote copies in place, paying broadcast bytes on the bus
//     instead of future sharing misses.
//   - Hybrid: competitive update/invalidate. A copy absorbs updates
//     until it has received HybridK of them with no local reference
//     in between, then self-invalidates — bounding update traffic for
//     lines a core has stopped reading.
//
// State is byte-granular, reusing internal/cache's per-byte valid and
// dirty masks: a line with dirty bytes is the owner (M), a valid clean
// copy is shared (S), absent is invalid (I). The testable invariant is
// byte-level single-writer/multiple-reader: no byte is dirty in more
// than one private cache (CheckSingleWriter).
//
// The simulator is deterministic: per-core state lives in slices,
// broadcasts visit cores in index order, and the multi-core schedule
// merges per-core traces by instruction time with ties resolved
// lowest-core-first.
package coherence

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
)

// Scheme selects the snooping coherence protocol.
type Scheme uint8

const (
	// Invalidate is MSI-style write-invalidate snooping.
	Invalidate Scheme = iota
	// Update is write-update (Dragon/Firefly-style) snooping.
	Update
	// Hybrid is competitive update/invalidate: a copy self-invalidates
	// after HybridK consecutive remote updates without a local touch.
	Hybrid
)

// Schemes returns all coherence schemes in presentation order.
func Schemes() []Scheme { return []Scheme{Invalidate, Update, Hybrid} }

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Invalidate:
		return "invalidate"
	case Update:
		return "update"
	case Hybrid:
		return "hybrid"
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// MarshalText implements encoding.TextMarshaler for JSON output.
func (s Scheme) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// DefaultHybridK is the competitive threshold used when Config.HybridK
// is zero: a copy tolerates this many remote updates with no local
// reference before self-invalidating.
const DefaultHybridK = 4

// MaxCores bounds the system size.
const MaxCores = 64

// Config describes the multi-core system.
type Config struct {
	// Cores is the number of private-L1 cores (1..MaxCores).
	Cores int
	// L1 configures every core's private first-level cache.
	L1 cache.Config
	// L2, if non-nil, is the shared second level behind the snooping
	// bus; nil means the bus talks straight to memory.
	L2 *cache.Config
	// Scheme selects the coherence protocol.
	Scheme Scheme
	// HybridK is the Hybrid scheme's competitive threshold; 0 means
	// DefaultHybridK. Ignored by the other schemes.
	HybridK int
}

// Validate reports whether the configuration is realizable.
func (c Config) Validate() error {
	if c.Cores < 1 || c.Cores > MaxCores {
		return fmt.Errorf("coherence: %d cores outside [1,%d]", c.Cores, MaxCores)
	}
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("coherence: L1: %w", err)
	}
	if c.L2 != nil {
		if err := c.L2.Validate(); err != nil {
			return fmt.Errorf("coherence: L2: %w", err)
		}
		if c.L2.LineSize < c.L1.LineSize {
			return fmt.Errorf("coherence: L2 line size %dB smaller than L1's %dB", c.L2.LineSize, c.L1.LineSize)
		}
		if c.L2.Size < c.L1.Size {
			return fmt.Errorf("coherence: L2 size %dB smaller than one L1's %dB", c.L2.Size, c.L1.Size)
		}
	}
	switch c.Scheme {
	case Invalidate, Update, Hybrid:
	default:
		return fmt.Errorf("coherence: unknown scheme %d", uint8(c.Scheme))
	}
	if c.HybridK < 0 {
		return fmt.Errorf("coherence: negative HybridK %d", c.HybridK)
	}
	return nil
}

// Stats aggregates system-wide traffic and coherence counters. The
// L1ToL2*/L2ToMem* fields mirror hierarchy.Stats semantics exactly, so
// a 1-core system is stat-identical to the single-core hierarchy.
type Stats struct {
	// L1ToL2Transactions/Bytes count everything leaving the L1 complex
	// toward the shared level: line fetches, dirty write-backs
	// (including coherence-forced flushes) and write-through words.
	L1ToL2Transactions uint64
	L1ToL2Bytes        uint64
	// L2ToMem* mirror hierarchy.Stats: traffic at the back of the
	// shared L2, with write-backs charged full line size in
	// L2ToMemBytes and their dirty bytes recorded separately.
	L2ToMemTransactions   uint64
	L2ToMemBytes          uint64
	L2ToMemWritebacks     uint64
	L2ToMemWritebackBytes uint64
	L2ToMemDirtyBytes     uint64

	// InvalidationsSent counts write broadcasts (Invalidate scheme)
	// that removed at least one remote copy; InvalidationsReceived
	// counts the copies removed.
	InvalidationsSent     uint64
	InvalidationsReceived uint64
	// UpdatesSent counts write broadcasts (Update/Hybrid schemes) that
	// refreshed at least one remote copy; UpdatesReceived counts the
	// copies refreshed; UpdateTrafficBytes is the broadcast payload
	// (written bytes × broadcasts that found a copy).
	UpdatesSent        uint64
	UpdatesReceived    uint64
	UpdateTrafficBytes uint64
	// Interventions counts remote caches that supplied dirty data for
	// another core's access (the M→S downgrade flush);
	// InterventionDirtyBytes is the dirty bytes they flushed.
	Interventions          uint64
	InterventionDirtyBytes uint64
	// HybridInvalidations counts copies the Hybrid scheme
	// self-invalidated after HybridK unanswered remote updates.
	HybridInvalidations uint64
	// SharingMisses counts accesses that tag-missed on a line a
	// coherence action had previously removed from that core — an
	// upper bound on the coherence-miss class, counted on top of the
	// paper's miss taxonomy (the underlying events still appear in the
	// per-core cache.Stats miss counters).
	SharingMisses uint64
}

// BusBytes returns the L1-side bus traffic including coherence
// payloads: everything the L1 complex moved plus update broadcasts.
func (s Stats) BusBytes() uint64 { return s.L1ToL2Bytes + s.UpdateTrafficBytes }

// CoreStats is one core's share of the coherence counters (see Stats
// for field semantics, counted from this core's perspective: Sent
// counters are broadcasts this core issued, Received counters are
// actions applied to this core's copies).
type CoreStats struct {
	L1ToL2Transactions    uint64
	L1ToL2Bytes           uint64
	InvalidationsSent     uint64
	InvalidationsReceived uint64
	UpdatesSent           uint64
	UpdatesReceived       uint64
	Interventions         uint64
	HybridInvalidations   uint64
	SharingMisses         uint64
}

// core is one core's private state.
type core struct {
	l1 *cache.Cache
	// invalidated records line numbers removed from this core's L1 by
	// a coherence action; a later tag miss on such a line is a sharing
	// miss (entry consumed on first re-access).
	invalidated map[uint32]struct{}
	// hybrid counts consecutive remote updates per resident line
	// (Hybrid scheme only); a local reference resets the count.
	hybrid map[uint32]uint16
	stats  CoreStats
}

// System is the N-core simulator. Not safe for concurrent use.
type System struct {
	cfg       Config
	cores     []core
	l2        *cache.Cache
	stats     Stats
	lineSize  uint32
	lineShift uint
	hybridK   uint16
}

// New builds a system for the configuration.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := cfg.HybridK
	if k == 0 {
		k = DefaultHybridK
	}
	s := &System{
		cfg:      cfg,
		cores:    make([]core, cfg.Cores),
		lineSize: uint32(cfg.L1.LineSize),
		hybridK:  uint16(k),
	}
	for s.lineSize>>s.lineShift > 1 {
		s.lineShift++
	}
	if cfg.L2 != nil {
		l2, err := cache.New(*cfg.L2)
		if err != nil {
			return nil, err
		}
		s.l2 = l2
		l2.SetBackside(&memSink{s: s})
	}
	for i := range s.cores {
		l1, err := cache.New(cfg.L1)
		if err != nil {
			return nil, err
		}
		s.cores[i] = core{
			l1:          l1,
			invalidated: make(map[uint32]struct{}),
			hybrid:      make(map[uint32]uint16),
		}
		l1.SetBackside(&coreSink{s: s, core: i})
	}
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Cores returns the number of cores.
func (s *System) Cores() int { return len(s.cores) }

// L1 returns core i's private cache (for its paper-class statistics).
func (s *System) L1(i int) *cache.Cache { return s.cores[i].l1 }

// L2 returns the shared second-level cache, or nil.
func (s *System) L2() *cache.Cache { return s.l2 }

// Stats returns the system-wide counters accumulated so far.
func (s *System) Stats() Stats { return s.stats }

// CoreStats returns core i's coherence counters.
func (s *System) CoreStats(i int) CoreStats { return s.cores[i].stats }

// AggregateL1 sums every core's L1 counters — the system-wide view of
// the paper's per-cache statistics.
func (s *System) AggregateL1() cache.Stats {
	var agg cache.Stats
	for i := range s.cores {
		agg.Add(s.cores[i].l1.Stats())
	}
	return agg
}

// Access simulates one event issued by the given core: the snooping
// protocol acts on every remote cache first (freshness downgrades,
// invalidations or update broadcasts), then the event runs through the
// core's private L1 as usual.
func (s *System) Access(c int, e trace.Event) {
	if len(s.cores) > 1 {
		addr := e.Addr
		remaining := uint32(e.Size)
		for remaining > 0 {
			off := addr & (s.lineSize - 1)
			n := s.lineSize - off
			if n > remaining {
				n = remaining
			}
			s.snoopSpan(c, e.Kind, addr, n)
			addr += n
			remaining -= n
		}
	}
	s.cores[c].l1.Access(e)
}

// snoopSpan handles the protocol for the portion of an access within
// one L1 line: bytes [addr, addr+n).
func (s *System) snoopSpan(c int, kind trace.Kind, addr, n uint32) {
	lineNum := addr >> s.lineShift
	lineAddr := lineNum << s.lineShift
	me := &s.cores[c]

	local := me.l1.Probe(addr)
	if !local.Present {
		if _, ok := me.invalidated[lineNum]; ok {
			delete(me.invalidated, lineNum)
			me.stats.SharingMisses++
			s.stats.SharingMisses++
		}
	}
	// A local reference resets the competitive update counter: the
	// core still cares about this line.
	if s.cfg.Scheme == Hybrid {
		delete(me.hybrid, lineNum)
	}

	mask := spanMask(addr&(s.lineSize-1), n)
	covered := local.Present && local.Valid&mask == mask

	if kind == trace.Read {
		if !covered {
			// The fetch must observe remote dirty data: downgrade the
			// owner so the shared level is fresh before the fill.
			s.downgradeRemotes(c, lineAddr)
		}
		return
	}

	// Write.
	switch s.cfg.Scheme {
	case Invalidate:
		s.invalidateRemotes(c, lineAddr, lineNum)
	case Update, Hybrid:
		if s.writeWillFetch(local, covered, addr, n) {
			s.downgradeRemotes(c, lineAddr)
		}
		s.updateRemotes(c, addr, n, lineNum, lineAddr)
	}
}

// writeWillFetch reports whether the local L1 will fetch the line to
// service this write, in which case remote dirty data must be flushed
// to the shared level first. Conservative for partially valid lines:
// a downgrade of a clean remote set is a no-op, so erring toward
// freshness never loses data.
func (s *System) writeWillFetch(local cache.LineState, covered bool, addr, n uint32) bool {
	if local.Present {
		return !covered
	}
	switch s.cfg.L1.WriteMiss {
	case cache.FetchOnWrite:
		return true
	case cache.WriteValidate:
		// Fetches only when the write cannot validate whole
		// sub-blocks (the cache's byte-write fallback).
		g := uint32(s.cfg.L1.Granularity())
		if g <= 1 {
			return false
		}
		off := addr & (s.lineSize - 1)
		return off%g != 0 || n%g != 0
	}
	return false // write-around / write-invalidate never allocate
}

// downgradeRemotes flushes every remote dirty copy of the line at
// lineAddr to the shared level (M→S): the data stays readable remotely
// but the requesting core's fill now observes the newest bytes.
func (s *System) downgradeRemotes(c int, lineAddr uint32) {
	for j := range s.cores {
		if j == c {
			continue
		}
		if _, dirty := s.cores[j].l1.Downgrade(lineAddr, int(s.lineSize)); dirty > 0 {
			s.cores[j].stats.Interventions++
			s.stats.Interventions++
			s.stats.InterventionDirtyBytes += uint64(dirty)
		}
	}
}

// invalidateRemotes removes every remote copy of the line (the
// Invalidate scheme's write broadcast), flushing dirty remote data to
// the shared level before dropping it.
func (s *System) invalidateRemotes(c int, lineAddr, lineNum uint32) {
	hit := false
	for j := range s.cores {
		if j == c {
			continue
		}
		r := &s.cores[j]
		if _, dirty := r.l1.Downgrade(lineAddr, int(s.lineSize)); dirty > 0 {
			r.stats.Interventions++
			s.stats.Interventions++
			s.stats.InterventionDirtyBytes += uint64(dirty)
		}
		if lines, _ := r.l1.InvalidateRange(lineAddr, int(s.lineSize)); lines > 0 {
			hit = true
			r.stats.InvalidationsReceived++
			s.stats.InvalidationsReceived++
			r.invalidated[lineNum] = struct{}{}
		}
	}
	if hit {
		s.cores[c].stats.InvalidationsSent++
		s.stats.InvalidationsSent++
	}
}

// updateRemotes applies a write-update broadcast of bytes
// [addr, addr+n) to every remote copy. Under Hybrid, a copy that has
// absorbed hybridK updates with no local reference self-invalidates
// instead of taking another.
func (s *System) updateRemotes(c int, addr, n uint32, lineNum, lineAddr uint32) {
	hit := false
	for j := range s.cores {
		if j == c {
			continue
		}
		r := &s.cores[j]
		st := r.l1.Probe(lineAddr)
		if !st.Present {
			if s.cfg.Scheme == Hybrid {
				delete(r.hybrid, lineNum)
			}
			continue
		}
		if s.cfg.Scheme == Hybrid {
			cnt := r.hybrid[lineNum] + 1
			if cnt >= s.hybridK {
				// Competitive threshold reached: stop paying for
				// updates this core is not reading; flush any dirty
				// claim and drop the copy.
				delete(r.hybrid, lineNum)
				if _, dirty := r.l1.Downgrade(lineAddr, int(s.lineSize)); dirty > 0 {
					r.stats.Interventions++
					s.stats.Interventions++
					s.stats.InterventionDirtyBytes += uint64(dirty)
				}
				r.l1.InvalidateRange(lineAddr, int(s.lineSize))
				r.stats.HybridInvalidations++
				s.stats.HybridInvalidations++
				r.invalidated[lineNum] = struct{}{}
				hit = true // the broadcast still happened
				continue
			}
			r.hybrid[lineNum] = cnt
		}
		r.l1.SnoopUpdate(addr, uint8(n))
		hit = true
		r.stats.UpdatesReceived++
		s.stats.UpdatesReceived++
	}
	if hit {
		s.cores[c].stats.UpdatesSent++
		s.stats.UpdatesSent++
		s.stats.UpdateTrafficBytes += uint64(n)
	}
}

// Run replays a multi-core workload to completion: per-core streams
// are merged by global instruction time (each core's stagger offset
// applied), ties resolving lowest-core-first for determinism.
func (s *System) Run(w *Workload) error {
	if w == nil || len(w.PerCore) != len(s.cores) {
		got := 0
		if w != nil {
			got = len(w.PerCore)
		}
		return fmt.Errorf("coherence: workload has %d per-core traces, system has %d cores", got, len(s.cores))
	}
	type cursor struct {
		c    int
		i    int
		when uint64
	}
	cs := make([]cursor, 0, len(w.PerCore))
	for c, t := range w.PerCore {
		if t.Len() == 0 {
			continue
		}
		var off uint64
		if c < len(w.Offsets) {
			off = w.Offsets[c]
		}
		cs = append(cs, cursor{c: c, when: off + t.Events[0].Instructions()})
	}
	for len(cs) > 0 {
		best := 0
		for i := 1; i < len(cs); i++ {
			if cs[i].when < cs[best].when {
				best = i
			}
		}
		cu := &cs[best]
		t := w.PerCore[cu.c]
		s.Access(cu.c, t.Events[cu.i])
		cu.i++
		if cu.i >= t.Len() {
			cs = append(cs[:best], cs[best+1:]...)
			continue
		}
		cu.when += t.Events[cu.i].Instructions()
	}
	return nil
}

// Flush drains every level (flush-stop accounting): each L1 in core
// order, then the shared L2.
func (s *System) Flush() {
	for i := range s.cores {
		s.cores[i].l1.Flush()
	}
	if s.l2 != nil {
		s.l2.Flush()
	}
}

// CheckSingleWriter verifies the byte-level single-writer invariant:
// no byte of any line is dirty in more than one private cache. It
// returns nil when the invariant holds.
func (s *System) CheckSingleWriter() error {
	type claim struct {
		core  int
		dirty uint64
	}
	owners := make(map[uint32]claim)
	var conflict error
	for i := range s.cores {
		if conflict != nil {
			break
		}
		c := i
		s.cores[i].l1.VisitResident(func(addr uint32, st cache.LineState) {
			if st.Dirty == 0 || conflict != nil {
				return
			}
			if prev, ok := owners[addr]; ok && prev.dirty&st.Dirty != 0 {
				conflict = fmt.Errorf("coherence: line %#x bytes %#x dirty in cores %d and %d",
					addr, prev.dirty&st.Dirty, prev.core, c)
				return
			} else if ok {
				owners[addr] = claim{core: c, dirty: prev.dirty | st.Dirty}
			} else {
				owners[addr] = claim{core: c, dirty: st.Dirty}
			}
		})
	}
	return conflict
}

// spanMask is the byte mask of [off, off+n) within a line.
func spanMask(off, n uint32) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return ((uint64(1) << n) - 1) << off
}

// coreSink receives one core's L1 back-side traffic, mirroring the
// single-core hierarchy's accounting exactly (the 1-core equivalence
// tests pin this) while attributing traffic to the issuing core.
type coreSink struct {
	s    *System
	core int
}

func (k *coreSink) FetchLine(addr uint32, size int) {
	s := k.s
	s.stats.L1ToL2Transactions++
	s.stats.L1ToL2Bytes += uint64(size)
	c := &s.cores[k.core].stats
	c.L1ToL2Transactions++
	c.L1ToL2Bytes += uint64(size)
	if s.l2 != nil {
		s.l2.Access(trace.Event{Addr: addr, Size: uint8(size), Kind: trace.Read})
	}
}

func (k *coreSink) WritebackLine(addr uint32, size, dirtyBytes int) {
	s := k.s
	s.stats.L1ToL2Transactions++
	s.stats.L1ToL2Bytes += uint64(size)
	c := &s.cores[k.core].stats
	c.L1ToL2Transactions++
	c.L1ToL2Bytes += uint64(size)
	if s.l2 != nil {
		s.l2.Access(trace.Event{Addr: addr, Size: uint8(size), Kind: trace.Write})
	}
}

func (k *coreSink) WriteWord(addr uint32, size uint8) {
	s := k.s
	s.stats.L1ToL2Transactions++
	s.stats.L1ToL2Bytes += uint64(size)
	c := &s.cores[k.core].stats
	c.L1ToL2Transactions++
	c.L1ToL2Bytes += uint64(size)
	if s.l2 != nil {
		s.l2.Access(trace.Event{Addr: addr, Size: size, Kind: trace.Write})
	}
}

// memSink counts traffic at the back of the shared L2, mirroring the
// single-core hierarchy's memSink (including the sub-block dirty-byte
// accounting).
type memSink struct{ s *System }

func (m *memSink) FetchLine(addr uint32, size int) {
	m.s.stats.L2ToMemTransactions++
	m.s.stats.L2ToMemBytes += uint64(size)
}

func (m *memSink) WritebackLine(addr uint32, size, dirtyBytes int) {
	m.s.stats.L2ToMemTransactions++
	m.s.stats.L2ToMemBytes += uint64(size)
	m.s.stats.L2ToMemWritebacks++
	m.s.stats.L2ToMemWritebackBytes += uint64(size)
	m.s.stats.L2ToMemDirtyBytes += uint64(dirtyBytes)
}

func (m *memSink) WriteWord(addr uint32, size uint8) {
	m.s.stats.L2ToMemTransactions++
	m.s.stats.L2ToMemBytes += uint64(size)
}
