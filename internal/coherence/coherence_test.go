package coherence

import (
	"encoding/json"
	"reflect"
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/hierarchy"
	"cachewrite/internal/trace"
)

func l1cfg(hit cache.WriteHitPolicy, miss cache.WriteMissPolicy) cache.Config {
	return cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1, WriteHit: hit, WriteMiss: miss}
}

func l2cfg() *cache.Config {
	return &cache.Config{Size: 8 << 10, LineSize: 64, Assoc: 2,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
}

func mustSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// hitMissCombos enumerates every write-hit × write-miss policy pair.
func hitMissCombos() []cache.Config {
	var out []cache.Config
	for _, hit := range []cache.WriteHitPolicy{cache.WriteThrough, cache.WriteBack} {
		for _, miss := range cache.WriteMissPolicies() {
			out = append(out, l1cfg(hit, miss))
		}
	}
	return out
}

// synthTrace generates a deterministic reference stream confined to a
// small footprint so cores contend heavily.
func synthTrace(n int, seed uint64, footprint uint32) *trace.Trace {
	rng := seed | 1
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	tr := &trace.Trace{Name: "synth"}
	for i := 0; i < n; i++ {
		r := next()
		e := trace.Event{
			Addr: uint32(r) % footprint &^ 7,
			Size: 4,
			Gap:  uint16(r >> 32 & 7),
			Kind: trace.Read,
		}
		if r>>40&3 == 0 {
			e.Size = 8
		}
		if r>>48&3 != 0 {
			e.Kind = trace.Write
		}
		tr.Append(e)
	}
	return tr
}

func TestConfigValidate(t *testing.T) {
	good := Config{Cores: 2, L1: l1cfg(cache.WriteBack, cache.FetchOnWrite), L2: l2cfg()}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Cores: 0, L1: good.L1},
		{Cores: MaxCores + 1, L1: good.L1},
		{Cores: 2, L1: cache.Config{Size: 3}},
		{Cores: 2, L1: good.L1, Scheme: Scheme(9)},
		{Cores: 2, L1: good.L1, HybridK: -1},
		{Cores: 2, L1: good.L1, L2: &cache.Config{Size: 512, LineSize: 8, Assoc: 1,
			WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}}, // L2 line < L1 line
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestSingleCoreEquivalence: a 1-core coherent system is stat-identical
// to the existing single-core hierarchy, for every scheme and every
// write-hit × write-miss policy pair, with and without an L2.
func TestSingleCoreEquivalence(t *testing.T) {
	tr := synthTrace(20000, 42, 1<<15)
	for _, l1 := range hitMissCombos() {
		for _, scheme := range Schemes() {
			for _, withL2 := range []bool{true, false} {
				var sl2, hl2 *cache.Config
				if withL2 {
					sl2, hl2 = l2cfg(), l2cfg()
				}
				sys := mustSystem(t, Config{Cores: 1, L1: l1, L2: sl2, Scheme: scheme})
				h, err := hierarchy.New(hierarchy.Config{L1: l1, L2: hl2})
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range tr.Events {
					sys.Access(0, e)
					h.Access(e)
				}
				sys.Flush()
				h.Flush()
				name := l1.String() + "/" + scheme.String()
				if got, want := sys.L1(0).Stats(), h.L1().Stats(); got != want {
					t.Fatalf("%s: L1 stats differ:\n got %+v\nwant %+v", name, got, want)
				}
				if withL2 {
					if got, want := sys.L2().Stats(), h.L2().Stats(); got != want {
						t.Fatalf("%s: L2 stats differ:\n got %+v\nwant %+v", name, got, want)
					}
				}
				ss, hs := sys.Stats(), h.Stats()
				mirror := [][2]uint64{
					{ss.L1ToL2Transactions, hs.L1ToL2Transactions},
					{ss.L1ToL2Bytes, hs.L1ToL2Bytes},
					{ss.L2ToMemTransactions, hs.L2ToMemTransactions},
					{ss.L2ToMemBytes, hs.L2ToMemBytes},
					{ss.L2ToMemWritebacks, hs.L2ToMemWritebacks},
					{ss.L2ToMemWritebackBytes, hs.L2ToMemWritebackBytes},
					{ss.L2ToMemDirtyBytes, hs.L2ToMemDirtyBytes},
				}
				for i, m := range mirror {
					if m[0] != m[1] {
						t.Fatalf("%s: mirrored field %d: system %d, hierarchy %d", name, i, m[0], m[1])
					}
				}
				if ss.InvalidationsSent+ss.UpdatesSent+ss.Interventions+ss.SharingMisses != 0 {
					t.Fatalf("%s: phantom coherence activity on one core: %+v", name, ss)
				}
			}
		}
	}
}

// TestSingleWriterInvariant: under heavy contention, no byte is ever
// dirty in more than one private cache — for every coherence scheme ×
// write-hit × write-miss policy combination, checked after every event.
func TestSingleWriterInvariant(t *testing.T) {
	const cores = 3
	traces := make([]*trace.Trace, cores)
	for c := range traces {
		// A tiny footprint shared by all cores: maximal contention.
		traces[c] = synthTrace(1500, uint64(c+1)*977, 512)
	}
	for _, l1 := range hitMissCombos() {
		for _, scheme := range Schemes() {
			sys := mustSystem(t, Config{Cores: cores, L1: l1, Scheme: scheme, HybridK: 2, L2: l2cfg()})
			name := l1.String() + "/" + scheme.String()
			for i := 0; i < 1500; i++ {
				for c := 0; c < cores; c++ {
					sys.Access(c, traces[c].Events[i])
					if err := sys.CheckSingleWriter(); err != nil {
						t.Fatalf("%s: event %d core %d: %v", name, i, c, err)
					}
				}
			}
		}
	}
}

// TestInvalidateSemantics pins the MSI-style protocol actions and
// counters on a directed two-core scenario.
func TestInvalidateSemantics(t *testing.T) {
	sys := mustSystem(t, Config{Cores: 2,
		L1: l1cfg(cache.WriteBack, cache.FetchOnWrite), L2: l2cfg(), Scheme: Invalidate})
	wr := trace.Event{Addr: 0x100, Size: 4, Kind: trace.Write}
	rd := trace.Event{Addr: 0x100, Size: 4, Kind: trace.Read}

	// Core 0 dirties the line; core 1's fetch must trigger an
	// intervention (core 0 flushes, keeps a clean copy).
	sys.Access(0, wr)
	sys.Access(1, rd)
	if st := sys.Stats(); st.Interventions != 1 || st.InterventionDirtyBytes != 4 {
		t.Fatalf("after remote read: %+v, want 1 intervention of 4 dirty bytes", st)
	}
	if st := sys.L1(0).Probe(0x100); !st.Present || st.Dirty != 0 {
		t.Fatalf("owner after downgrade: %+v, want present and clean", st)
	}

	// Core 1 writes: core 0's copy is invalidated.
	sys.Access(1, wr)
	if st := sys.L1(0).Probe(0x100); st.Present {
		t.Fatal("remote copy survived an invalidating write")
	}
	st := sys.Stats()
	if st.InvalidationsSent != 1 || st.InvalidationsReceived != 1 {
		t.Fatalf("invalidations = sent %d received %d, want 1/1", st.InvalidationsSent, st.InvalidationsReceived)
	}
	if c0, c1 := sys.CoreStats(0), sys.CoreStats(1); c0.InvalidationsReceived != 1 || c1.InvalidationsSent != 1 {
		t.Fatalf("per-core attribution wrong: core0 %+v core1 %+v", c0, c1)
	}

	// Core 0 re-reads the invalidated line: a sharing miss, counted once.
	sys.Access(0, rd)
	sys.Access(0, rd)
	if st := sys.Stats(); st.SharingMisses != 1 {
		t.Fatalf("sharing misses = %d, want 1", st.SharingMisses)
	}
	if err := sys.CheckSingleWriter(); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateSemantics: a write-update broadcast refreshes remote
// copies in place and transfers the dirty claim to the writer.
func TestUpdateSemantics(t *testing.T) {
	sys := mustSystem(t, Config{Cores: 2,
		L1: l1cfg(cache.WriteBack, cache.FetchOnWrite), L2: l2cfg(), Scheme: Update})
	wr := trace.Event{Addr: 0x200, Size: 4, Kind: trace.Write}
	rd := trace.Event{Addr: 0x200, Size: 4, Kind: trace.Read}

	sys.Access(1, wr) // core 1 owns the line dirty
	sys.Access(0, rd) // core 0 fetches (intervention), both hold copies
	sys.Access(0, wr) // core 0's write updates core 1's copy
	st := sys.Stats()
	if st.UpdatesSent != 1 || st.UpdatesReceived != 1 || st.UpdateTrafficBytes != 4 {
		t.Fatalf("updates = sent %d received %d bytes %d, want 1/1/4", st.UpdatesSent, st.UpdatesReceived, st.UpdateTrafficBytes)
	}
	if st.InvalidationsSent != 0 || st.SharingMisses != 0 {
		t.Fatalf("update scheme produced invalidations or sharing misses: %+v", st)
	}
	p1 := sys.L1(1).Probe(0x200)
	if !p1.Present {
		t.Fatal("updated copy vanished")
	}
	if p1.Dirty&0xf != 0 {
		t.Fatalf("remote dirty claim not released: %#x", p1.Dirty)
	}
	if p0 := sys.L1(0).Probe(0x200); p0.Dirty&0xf == 0 {
		t.Fatal("writer does not own the written bytes")
	}
	if err := sys.CheckSingleWriter(); err != nil {
		t.Fatal(err)
	}
}

// TestHybridSemantics: a copy absorbs updates until HybridK arrive
// with no local reference, then self-invalidates; a local touch resets
// the countdown.
func TestHybridSemantics(t *testing.T) {
	sys := mustSystem(t, Config{Cores: 2,
		L1: l1cfg(cache.WriteBack, cache.FetchOnWrite), L2: l2cfg(), Scheme: Hybrid, HybridK: 2})
	wr := trace.Event{Addr: 0x300, Size: 4, Kind: trace.Write}
	rd := trace.Event{Addr: 0x300, Size: 4, Kind: trace.Read}

	sys.Access(1, rd) // core 1 caches the line
	sys.Access(0, wr) // update 1: tolerated
	if !sys.L1(1).Probe(0x300).Present {
		t.Fatal("copy dropped before the competitive threshold")
	}
	sys.Access(1, rd) // local touch resets the countdown
	sys.Access(0, wr) // update 1 again
	if !sys.L1(1).Probe(0x300).Present {
		t.Fatal("local touch did not reset the update countdown")
	}
	sys.Access(0, wr) // update 2: threshold reached, self-invalidate
	if sys.L1(1).Probe(0x300).Present {
		t.Fatal("copy survived past the competitive threshold")
	}
	st := sys.Stats()
	if st.HybridInvalidations != 1 {
		t.Fatalf("hybrid invalidations = %d, want 1", st.HybridInvalidations)
	}
	if st.UpdatesReceived != 2 {
		t.Fatalf("updates received = %d, want 2 (the tolerated ones)", st.UpdatesReceived)
	}
	sys.Access(1, rd)
	if sys.Stats().SharingMisses != 1 {
		t.Fatalf("re-access after self-invalidation not counted as sharing miss: %+v", sys.Stats())
	}
}

// TestRunDeterminism: building and replaying the same workload twice
// yields byte-identical statistics, per core and system-wide.
func TestRunDeterminism(t *testing.T) {
	base := synthTrace(4000, 7, 1<<14)
	run := func() []byte {
		w, err := BuildWorkload(base, WorkloadConfig{Cores: 4, SharedFraction: 0.3, Stagger: 100})
		if err != nil {
			t.Fatal(err)
		}
		sys := mustSystem(t, Config{Cores: 4,
			L1: l1cfg(cache.WriteBack, cache.WriteValidate), L2: l2cfg(), Scheme: Hybrid})
		if err := sys.Run(w); err != nil {
			t.Fatal(err)
		}
		sys.Flush()
		if err := sys.CheckSingleWriter(); err != nil {
			t.Fatal(err)
		}
		blob := struct {
			Sys   Stats
			Cores []CoreStats
			L1s   []cache.Stats
			L2    cache.Stats
		}{Sys: sys.Stats(), L2: sys.L2().Stats()}
		for i := 0; i < sys.Cores(); i++ {
			blob.Cores = append(blob.Cores, sys.CoreStats(i))
			blob.L1s = append(blob.L1s, sys.L1(i).Stats())
		}
		b, err := json.Marshal(blob)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated runs differ:\n%s\n%s", a, b)
	}
}

// TestRunRejectsMismatchedWorkload: core-count mismatches are errors,
// not silent truncation.
func TestRunRejectsMismatchedWorkload(t *testing.T) {
	sys := mustSystem(t, Config{Cores: 2, L1: l1cfg(cache.WriteBack, cache.FetchOnWrite)})
	w, err := BuildWorkload(synthTrace(10, 1, 256), WorkloadConfig{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(w); err == nil {
		t.Fatal("4-core workload accepted by 2-core system")
	}
	if err := sys.Run(nil); err == nil {
		t.Fatal("nil workload accepted")
	}
}

// TestSchemeTrafficTradeoff pins the qualitative contract of the
// protocol family on a producer/consumer pattern: invalidate pays
// sharing misses, update pays broadcast bytes instead, hybrid bounds
// the broadcast tail.
func TestSchemeTrafficTradeoff(t *testing.T) {
	results := map[Scheme]Stats{}
	for _, scheme := range Schemes() {
		sys := mustSystem(t, Config{Cores: 2,
			L1: l1cfg(cache.WriteBack, cache.FetchOnWrite), L2: l2cfg(), Scheme: scheme, HybridK: 4})
		// Core 1 reads the line once, then core 0 streams writes to it
		// while core 1 periodically re-reads.
		sys.Access(1, trace.Event{Addr: 0x40, Size: 4, Kind: trace.Read})
		for i := 0; i < 64; i++ {
			sys.Access(0, trace.Event{Addr: 0x40, Size: 4, Kind: trace.Write})
			if i%8 == 7 {
				sys.Access(1, trace.Event{Addr: 0x40, Size: 4, Kind: trace.Read})
			}
		}
		results[scheme] = sys.Stats()
	}
	if results[Invalidate].SharingMisses == 0 {
		t.Error("invalidate: producer/consumer produced no sharing misses")
	}
	if results[Update].SharingMisses != 0 {
		t.Error("update: copies should never be lost to coherence")
	}
	if results[Update].UpdateTrafficBytes == 0 {
		t.Error("update: no broadcast traffic recorded")
	}
	if h, u := results[Hybrid].UpdateTrafficBytes, results[Update].UpdateTrafficBytes; h >= u {
		t.Errorf("hybrid broadcast bytes (%d) not below pure update (%d)", h, u)
	}
	if results[Hybrid].HybridInvalidations == 0 {
		t.Error("hybrid: competitive threshold never fired")
	}
}
