package timing

import (
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
)

func baseCfg(miss cache.WriteMissPolicy, hit cache.WriteHitPolicy) Config {
	return Config{
		L1: cache.Config{Size: 1 << 10, LineSize: 16, Assoc: 1,
			WriteHit: hit, WriteMiss: miss},
		FetchLatency:        10,
		WriteBufferEntries:  4,
		WriteRetire:         6,
		VictimBufferEntries: 1,
		WritebackCycles:     6,
	}
}

func rd(addr uint32, gap uint16) trace.Event {
	return trace.Event{Addr: addr, Size: 4, Gap: gap, Kind: trace.Read}
}

func wr(addr uint32, gap uint16) trace.Event {
	return trace.Event{Addr: addr, Size: 4, Gap: gap, Kind: trace.Write}
}

func TestValidate(t *testing.T) {
	if err := baseCfg(cache.FetchOnWrite, cache.WriteBack).Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := baseCfg(cache.FetchOnWrite, cache.WriteBack)
	bad.L1 = cache.Config{}
	if bad.Validate() == nil {
		t.Error("bad L1 accepted")
	}
	bad = baseCfg(cache.FetchOnWrite, cache.WriteBack)
	bad.FetchLatency = -1
	if bad.Validate() == nil {
		t.Error("negative latency accepted")
	}
	bad = baseCfg(cache.FetchOnWrite, cache.WriteBack)
	bad.WriteBufferEntries = -1
	if bad.Validate() == nil {
		t.Error("negative buffer depth accepted")
	}
	if _, err := Evaluate(bad, &trace.Trace{}); err == nil {
		t.Error("Evaluate accepted bad config")
	}
}

func TestBaseCPIIsOne(t *testing.T) {
	// All hits after the first fill: CPI approaches 1.
	tr := &trace.Trace{}
	tr.Append(rd(0x100, 0))
	for i := 0; i < 1000; i++ {
		tr.Append(rd(0x100, 0))
	}
	s, err := Evaluate(baseCfg(cache.FetchOnWrite, cache.WriteBack), tr)
	if err != nil {
		t.Fatal(err)
	}
	if cpi := s.CPI(); cpi > 1.05 {
		t.Errorf("hit-dominated CPI = %v, want ~1", cpi)
	}
}

func TestReadMissStall(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{rd(0x100, 0)}}
	s, err := Evaluate(baseCfg(cache.FetchOnWrite, cache.WriteBack), tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.ReadMissStalls != 10 {
		t.Errorf("read miss stalls = %d, want 10", s.ReadMissStalls)
	}
	if s.Cycles != 11 { // 1 instruction + 10 stall
		t.Errorf("cycles = %d, want 11", s.Cycles)
	}
}

// TestWriteMissLatency is the paper's headline latency claim: a write
// miss stalls under fetch-on-write and proceeds immediately under
// write-validate.
func TestWriteMissLatency(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{wr(0x100, 0)}}
	fow, err := Evaluate(baseCfg(cache.FetchOnWrite, cache.WriteBack), tr)
	if err != nil {
		t.Fatal(err)
	}
	if fow.WriteMissStalls != 10 {
		t.Errorf("fetch-on-write stalls = %d, want 10", fow.WriteMissStalls)
	}
	wv, err := Evaluate(baseCfg(cache.WriteValidate, cache.WriteBack), tr)
	if err != nil {
		t.Fatal(err)
	}
	if wv.WriteMissStalls != 0 {
		t.Errorf("write-validate stalls = %d, want 0", wv.WriteMissStalls)
	}
	if wv.Cycles >= fow.Cycles {
		t.Errorf("write-validate (%d cycles) not faster than fetch-on-write (%d)", wv.Cycles, fow.Cycles)
	}
}

func TestWriteBufferStall(t *testing.T) {
	// Write-through + write-around: every write is a buffer word. With
	// a 1-entry buffer retiring every 50 cycles, back-to-back writes
	// stall.
	cfg := baseCfg(cache.WriteAround, cache.WriteThrough)
	cfg.WriteBufferEntries = 1
	cfg.WriteRetire = 50
	tr := &trace.Trace{Events: []trace.Event{
		wr(0x100, 0), wr(0x200, 0), wr(0x300, 0),
	}}
	s, err := Evaluate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.WriteBufferStalls == 0 {
		t.Error("no write-buffer stalls on a saturating store burst")
	}
	// Unbuffered: every word pays the full retire latency.
	cfg.WriteBufferEntries = 0
	s, err = Evaluate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.WriteBufferStalls != 150 {
		t.Errorf("unbuffered stalls = %d, want 150", s.WriteBufferStalls)
	}
}

func TestVictimBufferStall(t *testing.T) {
	// 1KB direct-mapped: dirty lines 0..63 then a conflicting read sweep
	// evicts 64 dirty victims back to back; a 1-entry victim buffer
	// draining at 20 cycles must stall.
	cfg := baseCfg(cache.FetchOnWrite, cache.WriteBack)
	cfg.WritebackCycles = 20
	tr := &trace.Trace{}
	for i := 0; i < 64; i++ {
		tr.Append(wr(uint32(i*16), 0))
	}
	for i := 0; i < 64; i++ {
		tr.Append(rd(uint32(1024+i*16), 0))
	}
	s, err := Evaluate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.VictimStalls == 0 {
		t.Error("no victim stalls on a dirty eviction sweep")
	}
	// A deep victim buffer absorbs the burst better.
	cfg.VictimBufferEntries = 64
	s2, err := Evaluate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if s2.VictimStalls >= s.VictimStalls {
		t.Errorf("deep victim buffer did not help: %d vs %d", s2.VictimStalls, s.VictimStalls)
	}
}

func TestCPIZeroSafe(t *testing.T) {
	var s Stats
	if s.CPI() != 0 || s.MemStallCPI() != 0 {
		t.Error("zero stats divide by zero")
	}
}

// TestPolicyLatencyOrdering: on a write-miss-heavy stream, total cycles
// order as the paper argues: write-validate fastest, fetch-on-write
// slowest, the no-allocate policies in between (they avoid fetches but
// pay write-buffer pressure).
func TestPolicyLatencyOrdering(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 4000; i++ {
		// Streaming writes with occasional re-reads of what was written.
		tr.Append(wr(uint32(0x10000+i*8), 2))
		if i%8 == 0 {
			tr.Append(rd(uint32(0x10000+i*8), 1))
		}
	}
	cycles := map[cache.WriteMissPolicy]uint64{}
	for _, p := range cache.WriteMissPolicies() {
		hit := cache.WriteBack
		if p == cache.WriteAround || p == cache.WriteInvalidate {
			hit = cache.WriteThrough
		}
		s, err := Evaluate(baseCfg(p, hit), tr)
		if err != nil {
			t.Fatal(err)
		}
		cycles[p] = s.Cycles
	}
	if cycles[cache.WriteValidate] >= cycles[cache.FetchOnWrite] {
		t.Errorf("write-validate (%d) not faster than fetch-on-write (%d)",
			cycles[cache.WriteValidate], cycles[cache.FetchOnWrite])
	}
	if cycles[cache.WriteInvalidate] >= cycles[cache.FetchOnWrite] {
		t.Errorf("write-invalidate (%d) not faster than fetch-on-write (%d)",
			cycles[cache.WriteInvalidate], cycles[cache.FetchOnWrite])
	}
}
