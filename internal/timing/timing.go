// Package timing is a trace-driven performance model for the memory
// system: it converts the functional simulator's hits, misses,
// write-throughs and write-backs into cycles, capturing the latency
// story that motivates the paper's write-miss taxonomy (§1: "write miss
// policies, although they do affect bandwidth, focus foremost on
// latency"; §4: "a cache using no-fetch-on-write can proceed
// immediately").
//
// The model:
//
//   - One cycle per instruction when nothing stalls.
//   - A read miss (or a fetch-triggering write miss under
//     fetch-on-write) stalls the CPU for FetchLatency cycles, plus any
//     wait for the dirty-victim buffer to drain when the victim is
//     dirty and the buffer is full.
//   - Eliminated write misses (write-validate / write-around /
//     write-invalidate) do not stall: the paper's central latency win.
//   - Write-through words enter a coalescing write buffer retired one
//     entry per WriteRetire cycles; a full buffer stalls the CPU (the
//     Fig 5 mechanism, here integrated with the rest of the machine).
//   - Dirty victims enter a victim buffer drained one entry per
//     WritebackCycles; a refill that produces a dirty victim while the
//     buffer is full waits for a slot (§3's "dirty victim buffer"
//     discussion).
package timing

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
)

// Config parameterizes the performance model.
type Config struct {
	// L1 is the first-level cache configuration.
	L1 cache.Config
	// FetchLatency is the CPU stall per line fetch from the next level.
	FetchLatency int
	// WriteBufferEntries is the coalescing write buffer depth for
	// write-through traffic (ignored if the configuration produces no
	// write-through words). Zero disables buffering: every
	// write-through word stalls WriteRetire cycles.
	WriteBufferEntries int
	// WriteRetire is the cycles the next level needs to retire one
	// write-buffer entry.
	WriteRetire int
	// VictimBufferEntries is the dirty-victim buffer depth (the paper
	// argues one entry usually suffices; here it is measurable). Zero
	// means no buffer: every write-back stalls WritebackCycles.
	VictimBufferEntries int
	// WritebackCycles is the cycles the next level needs to absorb one
	// dirty victim line.
	WritebackCycles int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("timing: %w", err)
	}
	if c.FetchLatency < 0 || c.WriteRetire < 0 || c.WritebackCycles < 0 {
		return fmt.Errorf("timing: latencies must be non-negative")
	}
	if c.WriteBufferEntries < 0 || c.VictimBufferEntries < 0 {
		return fmt.Errorf("timing: buffer depths must be non-negative")
	}
	return nil
}

// Stats is the cycle breakdown.
type Stats struct {
	Instructions uint64
	Cycles       uint64

	// ReadMissStalls covers read misses (including write-validate's
	// induced partial-validity fills).
	ReadMissStalls uint64
	// WriteMissStalls covers fetch-on-write fetches — the stalls the
	// no-fetch policies eliminate.
	WriteMissStalls uint64
	// WriteBufferStalls covers CPU waits on a full write buffer.
	WriteBufferStalls uint64
	// VictimStalls covers refills waiting on a full dirty-victim buffer.
	VictimStalls uint64

	// Cache carries the functional statistics.
	Cache cache.Stats
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// MemStallCPI returns the memory-system stall component of CPI.
func (s Stats) MemStallCPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	stalls := s.ReadMissStalls + s.WriteMissStalls + s.WriteBufferStalls + s.VictimStalls
	return float64(stalls) / float64(s.Instructions)
}

// drainQueue models a FIFO drained at a fixed rate: entries become free
// FixedRate cycles apart once the drain engine reaches them.
type drainQueue struct {
	freeAt []uint64 // completion time per occupied slot, FIFO order
	rate   uint64
}

// drain removes entries completed by time t.
func (q *drainQueue) drain(t uint64) {
	for len(q.freeAt) > 0 && q.freeAt[0] <= t {
		q.freeAt = q.freeAt[1:]
	}
}

// push inserts an entry at time t given capacity cap, returning the
// stall incurred (time the CPU waits for a slot) and the new current
// time.
func (q *drainQueue) push(t uint64, capacity int) (stall uint64, now uint64) {
	q.drain(t)
	if capacity <= 0 {
		// Unbuffered: the CPU absorbs the full drain latency.
		return q.rate, t + q.rate
	}
	if len(q.freeAt) >= capacity {
		wait := q.freeAt[0] - t
		t += wait
		stall = wait
		q.drain(t)
	}
	// The new entry completes rate cycles after the later of now and the
	// previous tail.
	start := t
	if n := len(q.freeAt); n > 0 && q.freeAt[n-1] > start {
		start = q.freeAt[n-1]
	}
	q.freeAt = append(q.freeAt, start+q.rate)
	return stall, t
}

// Evaluate runs the trace through the functional cache and the timing
// model.
func Evaluate(cfg Config, t *trace.Trace) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	c, err := cache.New(cfg.L1)
	if err != nil {
		return Stats{}, err
	}

	var s Stats
	var now uint64
	wb := &drainQueue{rate: uint64(cfg.WriteRetire)}
	vb := &drainQueue{rate: uint64(cfg.WritebackCycles)}

	var prev cache.Stats
	for _, e := range t.Events {
		now += e.Instructions()
		c.Access(e)
		cur := c.Stats()

		fetches := cur.Fetches - prev.Fetches
		writebacks := cur.Writebacks - prev.Writebacks
		wtWords := cur.WriteThroughs - prev.WriteThroughs

		// Dirty victims queue into the victim buffer; the CPU only waits
		// when the buffer is full (it must, or the victim's data would be
		// lost to the refill).
		for i := uint64(0); i < writebacks; i++ {
			stall, t2 := vb.push(now, cfg.VictimBufferEntries)
			s.VictimStalls += stall
			now = t2
		}

		// Fetches stall the CPU directly.
		if fetches > 0 {
			stall := fetches * uint64(cfg.FetchLatency)
			if e.Kind == trace.Write {
				s.WriteMissStalls += stall
			} else {
				s.ReadMissStalls += stall
			}
			now += stall
		}

		// Write-through words enter the write buffer.
		for i := uint64(0); i < wtWords; i++ {
			stall, t2 := wb.push(now, cfg.WriteBufferEntries)
			s.WriteBufferStalls += stall
			now = t2
		}

		prev = cur
	}
	s.Cache = c.Stats()
	s.Instructions = s.Cache.Instructions
	s.Cycles = now
	return s, nil
}
