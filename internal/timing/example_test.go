package timing_test

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/synth"
	"cachewrite/internal/timing"
)

// Example shows the paper's latency argument in cycles: on a streaming
// write workload, write-validate's no-fetch misses make it faster than
// fetch-on-write at identical geometry.
func Example() {
	stream := synth.Copy(0x10000, 0x80000, 4000, 8)
	for _, p := range []cache.WriteMissPolicy{cache.FetchOnWrite, cache.WriteValidate} {
		s, err := timing.Evaluate(timing.Config{
			L1: cache.Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
				WriteHit: cache.WriteBack, WriteMiss: p},
			FetchLatency:        10,
			WriteBufferEntries:  4,
			WriteRetire:         6,
			VictimBufferEntries: 1,
			WritebackCycles:     6,
		}, stream)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s CPI %.2f\n", p, s.CPI())
	}
	// Output:
	// fetch-on-write   CPI 6.00
	// write-validate   CPI 3.50
}
