// Package cache implements the paper's first-level data-cache
// simulator: a direct-mapped or set-associative cache with per-byte
// valid and dirty bits (sub-blocking), both write-hit policies
// (write-through, write-back) and all four useful write-miss policy
// combinations from the paper's taxonomy (Fig 12): fetch-on-write,
// write-validate, write-around and write-invalidate.
//
// The simulator tracks metadata only (tags and bitmasks) — experiments
// consume reference streams, not data values — and exposes the full set
// of counters the paper's figures are built from: writes to already
// dirty lines (Figs 1–2), eliminated write misses (Figs 13–16),
// back-side transactions and bytes (Figs 18–19), and dirty-victim byte
// statistics under both cold-stop and flush-stop accounting
// (Figs 20–25).
package cache

import "fmt"

// WriteHitPolicy selects what happens when a write hits in the cache
// (paper §3).
type WriteHitPolicy uint8

const (
	// WriteThrough writes the cache and passes every write on to the
	// next level (store-through).
	WriteThrough WriteHitPolicy = iota
	// WriteBack writes only the cache, marking the line dirty; data
	// moves to the next level when the dirty line is replaced (store-in,
	// copy-back).
	WriteBack
)

// String returns the conventional policy name.
func (p WriteHitPolicy) String() string {
	switch p {
	case WriteThrough:
		return "write-through"
	case WriteBack:
		return "write-back"
	default:
		return fmt.Sprintf("WriteHitPolicy(%d)", uint8(p))
	}
}

// WriteMissPolicy selects what happens when a write misses in the cache
// (paper §4, Fig 12). The three underlying policy bits — fetch-on-write,
// write-allocate, write-invalidate — admit exactly four useful
// combinations.
type WriteMissPolicy uint8

const (
	// FetchOnWrite fetches the missed line and allocates it before
	// writing (fetch-on-write + write-allocate). The write stalls for
	// the fetch; this is the baseline almost all prior literature
	// assumed.
	FetchOnWrite WriteMissPolicy = iota
	// WriteValidate allocates the line without fetching it: the written
	// bytes are marked valid (and dirty under write-back), the rest of
	// the line is marked invalid (no-fetch + write-allocate,
	// sub-block valid bits required).
	WriteValidate
	// WriteAround sends the write to the next level without disturbing
	// the cache; the old contents of the indexed line stay resident
	// (no-fetch + no-write-allocate).
	WriteAround
	// WriteInvalidate writes the data portion concurrently with the tag
	// probe; on a mismatch the corrupted resident line is simply marked
	// invalid and the write passes to the next level (no-fetch +
	// no-allocate + invalidate). Only meaningful for direct-mapped
	// write-through caches; in a set-associative cache the probe
	// precedes the write, so this degenerates to write-around unless the
	// cache is direct-mapped.
	WriteInvalidate
)

// String returns the paper's policy name.
func (p WriteMissPolicy) String() string {
	switch p {
	case FetchOnWrite:
		return "fetch-on-write"
	case WriteValidate:
		return "write-validate"
	case WriteAround:
		return "write-around"
	case WriteInvalidate:
		return "write-invalidate"
	default:
		return fmt.Sprintf("WriteMissPolicy(%d)", uint8(p))
	}
}

// WriteMissPolicies lists all four policies in the paper's
// least-to-most-traffic order (Fig 17: write-validate ≤ write-around ≤
// write-invalidate ≤ fetch-on-write).
func WriteMissPolicies() []WriteMissPolicy {
	return []WriteMissPolicy{WriteValidate, WriteAround, WriteInvalidate, FetchOnWrite}
}

// FetchesOnWriteMiss reports whether the policy fetches the missed line.
func (p WriteMissPolicy) FetchesOnWriteMiss() bool { return p == FetchOnWrite }

// Allocates reports whether the policy allocates a line on a write miss.
func (p WriteMissPolicy) Allocates() bool {
	return p == FetchOnWrite || p == WriteValidate
}

// Replacement selects the victim way within a set.
type Replacement uint8

const (
	// LRU replaces the least recently used way (the default; what the
	// paper's simulator uses).
	LRU Replacement = iota
	// FIFO replaces the oldest-allocated way regardless of use.
	FIFO
	// Random replaces a deterministic pseudo-random way.
	Random
)

// String returns the replacement policy name.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Replacement(%d)", uint8(r))
	}
}

// Config describes a cache.
type Config struct {
	// Size is the total data capacity in bytes (power of two).
	Size int
	// LineSize is the cache line size in bytes (power of two, 4..64).
	LineSize int
	// Assoc is the set associativity; 1 means direct-mapped. Must divide
	// Size/LineSize evenly with a power-of-two set count.
	Assoc int
	// WriteHit is the write-hit policy.
	WriteHit WriteHitPolicy
	// WriteMiss is the write-miss policy.
	WriteMiss WriteMissPolicy
	// Replacement selects the set victim policy; zero value is LRU.
	Replacement Replacement
	// ValidGranularity is the sub-block valid-bit granularity in bytes
	// (power of two, up to LineSize; 0 or 1 means per-byte). The paper
	// (§4) notes per-word valid bits cost 3.1% overhead vs 12.5% for
	// per-byte, but then writes narrower than the granularity cannot
	// write-validate: such writes fall back to fetch-on-write, exactly
	// as the paper suggests real machines would handle byte writes.
	ValidGranularity int
	// SectorFetch fetches only the accessed valid-granularity sub-blocks
	// (sectors) on a miss instead of the whole line — the classic sector
	// cache design, natural once sub-block valid bits exist. Misses to
	// unfetched sectors of a resident line count as partial-validity
	// read misses. Requires ValidGranularity >= 4.
	SectorFetch bool
	// WVMissWriteThrough makes write-validate misses also write through
	// even in a write-back cache — the paper's multiprocessor-safe
	// variant: "if write-validate is used on a write-back cache all
	// write misses should write through. If this is not done, the
	// remainder of the system will not know that the processor has
	// dirty data for that cache line in its cache."
	WVMissWriteThrough bool
}

// Granularity returns the effective valid-bit granularity in bytes.
func (c Config) Granularity() int {
	if c.ValidGranularity <= 1 {
		return 1
	}
	return c.ValidGranularity
}

// Validate reports whether the configuration is realizable.
func (c Config) Validate() error {
	if !isPow2(c.Size) || c.Size <= 0 {
		return fmt.Errorf("cache: size %d is not a positive power of two", c.Size)
	}
	if !isPow2(c.LineSize) || c.LineSize < 4 || c.LineSize > 64 {
		return fmt.Errorf("cache: line size %d is not a power of two in [4,64]", c.LineSize)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: associativity %d must be positive", c.Assoc)
	}
	lines := c.Size / c.LineSize
	if lines < c.Assoc {
		return fmt.Errorf("cache: %d lines cannot support associativity %d", lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets*c.Assoc != lines || !isPow2(sets) {
		return fmt.Errorf("cache: %d lines / assoc %d does not give a power-of-two set count", lines, c.Assoc)
	}
	switch c.WriteHit {
	case WriteThrough, WriteBack:
	default:
		return fmt.Errorf("cache: unknown write-hit policy %d", c.WriteHit)
	}
	switch c.WriteMiss {
	case FetchOnWrite, WriteValidate, WriteAround, WriteInvalidate:
	default:
		return fmt.Errorf("cache: unknown write-miss policy %d", c.WriteMiss)
	}
	switch c.Replacement {
	case LRU, FIFO, Random:
	default:
		return fmt.Errorf("cache: unknown replacement policy %d", c.Replacement)
	}
	if g := c.ValidGranularity; g != 0 {
		if !isPow2(g) || g > c.LineSize {
			return fmt.Errorf("cache: valid granularity %d must be a power of two <= line size %d", g, c.LineSize)
		}
	}
	if c.WVMissWriteThrough && c.WriteMiss != WriteValidate {
		return fmt.Errorf("cache: WVMissWriteThrough requires the write-validate policy (got %s)", c.WriteMiss)
	}
	if c.SectorFetch && c.Granularity() < 4 {
		return fmt.Errorf("cache: sector fetch requires ValidGranularity >= 4 (got %d)", c.Granularity())
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Size / c.LineSize / c.Assoc }

// String renders the configuration compactly, e.g.
// "8KB/16B/direct write-back fetch-on-write".
func (c Config) String() string {
	assoc := "direct"
	if c.Assoc > 1 {
		assoc = fmt.Sprintf("%d-way", c.Assoc)
	}
	return fmt.Sprintf("%s/%dB/%s %s %s", fmtSize(c.Size), c.LineSize, assoc, c.WriteHit, c.WriteMiss)
}

func fmtSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// MarshalText implements encoding.TextMarshaler so configurations and
// results serialize with policy names rather than enum numbers.
func (p WriteHitPolicy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *WriteHitPolicy) UnmarshalText(b []byte) error {
	switch string(b) {
	case "write-through", "wt":
		*p = WriteThrough
	case "write-back", "wb":
		*p = WriteBack
	default:
		return fmt.Errorf("cache: unknown write-hit policy %q", b)
	}
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (p WriteMissPolicy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *WriteMissPolicy) UnmarshalText(b []byte) error {
	switch string(b) {
	case "fetch-on-write", "fow":
		*p = FetchOnWrite
	case "write-validate", "wv":
		*p = WriteValidate
	case "write-around", "wa":
		*p = WriteAround
	case "write-invalidate", "wi":
		*p = WriteInvalidate
	default:
		return fmt.Errorf("cache: unknown write-miss policy %q", b)
	}
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (r Replacement) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (r *Replacement) UnmarshalText(b []byte) error {
	switch string(b) {
	case "lru", "":
		*r = LRU
	case "fifo":
		*r = FIFO
	case "random":
		*r = Random
	default:
		return fmt.Errorf("cache: unknown replacement policy %q", b)
	}
	return nil
}
