package cache_test

import (
	"reflect"
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/experiments"
	"cachewrite/internal/trace"
)

// TestKernelGoldenEquivalence pins the tentpole guarantee for the
// exact configuration matrix the paper figures sweep
// (experiments.SweepConfigs, 48 configs): the specialized batch
// kernels produce stats identical to the generic per-event Access path
// on a seeded trace. Every one of these configs classifies as the
// direct-mapped fast kernel, so this is the fast path's golden gate.
func TestKernelGoldenEquivalence(t *testing.T) {
	tr := &trace.Trace{Name: "kernelgolden"}
	state := uint32(777777)
	next := func() uint32 { state = state*1664525 + 1013904223; return state }
	for i := 0; i < 40000; i++ {
		r := next()
		addr := (r % (1 << 17)) &^ 7
		size := uint8(4)
		if r&1 == 0 {
			size = 8
		}
		k := trace.Read
		if r%3 == 0 {
			k = trace.Write
		}
		tr.Append(trace.Event{Addr: addr, Size: size, Gap: uint16(r % 7), Kind: k})
	}

	cfgs := experiments.SweepConfigs()
	if len(cfgs) != 48 {
		t.Fatalf("paper sweep has %d configs, want 48", len(cfgs))
	}
	const window = 1024
	dec := make([]cache.Decoded, window)
	for _, cfg := range cfgs {
		ref := cache.MustNew(cfg)
		ref.AccessTrace(tr)
		ref.Flush()

		got := cache.MustNew(cfg)
		for start := 0; start < tr.Len(); start += window {
			end := start + window
			if end > tr.Len() {
				end = tr.Len()
			}
			events := tr.Events[start:end]
			got.DecodeBatch(events, dec)
			got.AccessBatch(events, dec)
		}
		got.Flush()

		if !reflect.DeepEqual(got.Stats(), ref.Stats()) {
			t.Errorf("%s: batch kernel diverges from Access:\n batch %+v\n ref   %+v",
				cfg, got.Stats(), ref.Stats())
		}
	}
}
