package cache

import (
	"fmt"
	"math/bits"

	"cachewrite/internal/trace"
)

// line is one cache line's metadata. Valid and dirty are per-byte
// bitmasks (bit i covers byte i of the line); LineSize is capped at 64
// so a single word suffices. Sub-block valid bits are exactly the
// hardware write-validate requires (paper §4); per-byte dirty bits give
// the §5.2 dirty-byte statistics.
type line struct {
	tag   uint32
	valid uint64
	dirty uint64
	// lru is the last-touch stamp (LRU replacement); born is the
	// allocation stamp (FIFO replacement).
	lru  uint64
	born uint64
}

// Backside receives the cache's back-side traffic, allowing a second
// cache level (or any traffic sink) to be composed behind this one.
// All methods carry full addresses so the next level can index
// correctly. A nil backside is legal and means "count only".
type Backside interface {
	// FetchLine is called for every line fetch of size bytes at the
	// line-aligned address addr.
	FetchLine(addr uint32, size int)
	// WritebackLine is called for every dirty victim write-back:
	// size is the full line size, dirtyBytes the number of dirty bytes
	// (for sub-block write-back modelling).
	WritebackLine(addr uint32, size, dirtyBytes int)
	// WriteWord is called for every word passed through on
	// write-through, write-around or write-invalidate writes.
	WriteWord(addr uint32, size uint8)
}

// VictimObserver is an optional extension of Backside: when the
// attached backside also implements it, the cache reports every valid
// victim line (clean or dirty) at replacement time. A victim cache
// (writecache in victim mode) uses this to capture clean victims,
// which WritebackLine alone never sees.
type VictimObserver interface {
	// ObserveVictim is called once per replaced valid line with its
	// address, the line size and the count of dirty bytes (0 for clean
	// victims).
	ObserveVictim(addr uint32, size, dirtyBytes int)
}

// Cache simulates one level of data cache. It is not safe for
// concurrent use; simulate each cache from a single goroutine.
type Cache struct {
	cfg       Config
	lines     []line // sets*assoc, way-major within a set
	lineShift uint
	lineSize  uint32 // cfg.LineSize, hoisted for the access hot loop
	lineMask  uint32 // cfg.LineSize - 1
	setMask   uint32
	setShift  uint
	fullMask  uint64
	tick      uint64
	rng       uint64 // deterministic state for Random replacement
	stats     Stats
	backside  Backside
	// victimObs caches the Backside's VictimObserver side, hoisting the
	// per-eviction interface type assertion out of the hot loop.
	victimObs VictimObserver
	// class is the batch kernel selected for this configuration (see
	// kernel.go); chosen once here so AccessBatch dispatches with a
	// single switch instead of re-deriving the config class per window.
	class kernelClass
}

// SetBackside attaches a back-side traffic sink (nil detaches).
func (c *Cache) SetBackside(b Backside) {
	c.backside = b
	c.victimObs, _ = b.(VictimObserver)
}

// New builds a cache for the configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:       cfg,
		lines:     make([]line, sets*cfg.Assoc),
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		lineSize:  uint32(cfg.LineSize),
		lineMask:  uint32(cfg.LineSize - 1),
		setMask:   uint32(sets - 1),
		setShift:  uint(bits.TrailingZeros(uint(sets))),
		class:     classifyConfig(cfg),
	}
	if cfg.LineSize == 64 {
		c.fullMask = ^uint64(0)
	} else {
		c.fullMask = (uint64(1) << cfg.LineSize) - 1
	}
	c.rng = 0x2545f4914f6cdd1d
	return c, nil
}

// MustNew is New but panics on configuration errors; for tests and
// tables of known-good configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		// Documented must-style constructor: reaching this panic means a
		// hard-coded configuration table is wrong, not a runtime input.
		//simlint:allow nopanic must-style constructor for known-good config tables
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters accumulated so far.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears all lines and counters.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.tick = 0
	c.stats = Stats{}
}

// spanResult aggregates per-line outcomes of one (possibly
// line-crossing) access event.
type spanResult struct {
	tagMiss     bool // some span's tag lookup missed
	fetched     bool // some span fetched a line
	partial     bool // some span tag-hit but had invalid requested bytes
	allHitDirty bool // every span tag-hit a line that was already dirty
}

// Access simulates one trace event.
//
// It runs once per event for every gang member of every sweep, so it
// and everything it calls must stay allocation-free:
// TestAccessZeroAlloc pins that at runtime and the simlint hotpath
// analyzer pins it at compile time.
//
//simlint:hotpath
func (c *Cache) Access(e trace.Event) {
	c.stats.Instructions += e.Instructions()
	switch e.Kind {
	case trace.Read:
		c.stats.Reads++
	case trace.Write:
		c.stats.Writes++
	}

	res := spanResult{allHitDirty: true}
	if off := e.Addr & c.lineMask; off+uint32(e.Size) <= c.lineSize {
		// Fast path: the access stays within one line — the dominant
		// case for the word-sized events the workloads emit.
		c.accessSpan(e.Kind, e.Addr, off, uint32(e.Size), &res)
	} else {
		addr := e.Addr
		remaining := uint32(e.Size)
		for remaining > 0 {
			off := addr & c.lineMask
			n := c.lineSize - off
			if n > remaining {
				n = remaining
			}
			c.accessSpan(e.Kind, addr, off, n, &res)
			addr += n
			remaining -= n
		}
	}

	switch e.Kind {
	case trace.Read:
		if res.fetched {
			c.stats.ReadMissEvents++
			if res.partial {
				c.stats.PartialValidReadMisses++
			}
		}
	case trace.Write:
		if res.tagMiss {
			c.stats.WriteMissEvents++
			if res.fetched {
				c.stats.FetchedWriteMisses++
			} else {
				c.stats.EliminatedWriteMisses++
			}
		} else {
			c.stats.WriteHitEvents++
			if res.allHitDirty {
				c.stats.WritesToDirtyLines++
			}
		}
	}
}

// AccessTrace runs every event of t through the cache.
func (c *Cache) AccessTrace(t *trace.Trace) {
	for _, e := range t.Events {
		c.Access(e)
	}
}

// accessSpan handles the portion of an access falling within one line:
// bytes [off, off+n) of the line containing addr.
func (c *Cache) accessSpan(kind trace.Kind, addr, off, n uint32, res *spanResult) {
	lineNum := addr >> c.lineShift
	set := int(lineNum & c.setMask)
	tag := lineNum >> c.setShift
	mask := c.byteMask(off, n)
	base := set * c.cfg.Assoc

	// Direct-mapped lookup inlines to a single compare; the way loop is
	// only needed for set-associative configurations.
	way := 0
	if c.cfg.Assoc == 1 {
		if l := &c.lines[base]; l.valid == 0 || l.tag != tag {
			way = -1
		}
	} else {
		way = c.findWay(base, tag)
	}
	c.tick++

	lineAddr := lineNum << c.lineShift

	if kind == trace.Read {
		if way >= 0 {
			l := &c.lines[base+way]
			if l.valid&mask == mask {
				l.lru = c.tick
				res.allHitDirty = res.allHitDirty && l.dirty != 0
				return
			}
			// Tag hit but requested bytes invalid (write-validate residue
			// or unfetched sectors): fetch fills the invalid bytes; dirty
			// bytes we wrote are newer than memory and are kept.
			res.partial = true
			res.fetched = true
			if c.cfg.SectorFetch {
				need := c.outwardMask(off, n) &^ l.valid
				c.fetchPartial(lineAddr, bits.OnesCount64(need))
				l.valid |= need
			} else {
				c.fetchLine(lineAddr)
				l.valid = c.fullMask
			}
			l.lru = c.tick
			return
		}
		res.tagMiss = true
		res.fetched = true
		res.allHitDirty = false
		w := c.victimWay(base)
		c.evict(set, &c.lines[base+w])
		nl := line{tag: tag, valid: c.fullMask, lru: c.tick, born: c.tick}
		if c.cfg.SectorFetch {
			nl.valid = c.outwardMask(off, n)
			c.fetchPartial(lineAddr, bits.OnesCount64(nl.valid))
		} else {
			c.fetchLine(lineAddr)
		}
		c.lines[base+w] = nl
		return
	}

	// Write.
	if way >= 0 {
		l := &c.lines[base+way]
		res.allHitDirty = res.allHitDirty && l.dirty != 0
		if l.valid&mask != mask {
			// Partially-valid line (write-validate residue): mark written
			// bytes valid at the configured sub-block granularity. Bytes
			// that cannot be covered by whole sub-blocks force a fill, as
			// real sub-block hardware would (paper §4's byte-write case).
			l.valid |= c.inwardMask(off, n)
			if l.valid&mask != mask {
				c.stats.SubblockWriteFills++
				if c.cfg.SectorFetch {
					need := c.outwardMask(off, n) &^ l.valid
					c.fetchPartial(lineAddr, bits.OnesCount64(need))
					l.valid |= need
				} else {
					c.fetchLine(lineAddr)
					l.valid = c.fullMask
				}
			}
		}
		if c.cfg.WriteHit == WriteBack {
			l.dirty |= mask
		} else {
			c.writeThrough(addr, n)
		}
		l.lru = c.tick
		return
	}

	res.tagMiss = true
	res.allHitDirty = false
	switch c.cfg.WriteMiss {
	case FetchOnWrite:
		res.fetched = true
		w := c.victimWay(base)
		c.evict(set, &c.lines[base+w])
		nl := line{tag: tag, valid: c.fullMask, lru: c.tick, born: c.tick}
		if c.cfg.SectorFetch {
			nl.valid = c.outwardMask(off, n)
			c.fetchPartial(lineAddr, bits.OnesCount64(nl.valid))
		} else {
			c.fetchLine(lineAddr)
		}
		if c.cfg.WriteHit == WriteBack {
			nl.dirty = mask
		} else {
			c.writeThrough(addr, n)
		}
		c.lines[base+w] = nl

	case WriteValidate:
		w := c.victimWay(base)
		c.evict(set, &c.lines[base+w])
		if c.inwardMask(off, n) != mask {
			// The write does not cover whole valid-bit sub-blocks, so the
			// line cannot be validated without its old contents: fall back
			// to fetch-on-write (paper §4: machines with word valid bits
			// "would probably provide fetch-on-write for byte writes").
			res.fetched = true
			c.fetchLine(lineAddr)
			nl := line{tag: tag, valid: c.fullMask, lru: c.tick, born: c.tick}
			if c.cfg.WriteHit == WriteBack {
				nl.dirty = mask
			} else {
				c.writeThrough(addr, n)
			}
			c.lines[base+w] = nl
			return
		}
		nl := line{tag: tag, valid: mask, lru: c.tick, born: c.tick}
		switch {
		case c.cfg.WriteHit != WriteBack:
			c.writeThrough(addr, n)
		case c.cfg.WVMissWriteThrough:
			// Multiprocessor-safe variant: the missing write goes through
			// so the rest of the system sees it; the allocated line stays
			// clean.
			c.writeThrough(addr, n)
		default:
			nl.dirty = mask
		}
		c.lines[base+w] = nl

	case WriteAround:
		// The cache is untouched; the write goes to the next level.
		c.writeThrough(addr, n)

	case WriteInvalidate:
		// The data array was written concurrently with the tag probe, so
		// the replacement-candidate line is corrupted and must be
		// invalidated. (Direct-mapped: the only line in the set — the
		// paper's case. Set-associative: the way the replacement policy
		// selected, since that is the way a concurrent-write
		// implementation would have clobbered.)
		w := c.victimWay(base)
		l := &c.lines[base+w]
		if l.valid != 0 {
			// A dirty line would lose data if simply invalidated; write
			// it back first. (Write-invalidate is only sensible on
			// write-through caches, where lines are never dirty, but the
			// simulator stays correct for any combination.)
			if l.dirty != 0 {
				c.writebackLine(c.lineAddrOf(set, l.tag), l.dirty)
			}
			c.stats.Invalidates++
			*l = line{}
		}
		c.writeThrough(addr, n)
	}
}

// findWay returns the way index within the set whose tag matches, or -1.
func (c *Cache) findWay(base int, tag uint32) int {
	for w := 0; w < c.cfg.Assoc; w++ {
		l := &c.lines[base+w]
		if l.valid != 0 && l.tag == tag {
			return w
		}
	}
	return -1
}

// victimWay returns the way to replace: an invalid way if present,
// otherwise the one chosen by the configured replacement policy.
func (c *Cache) victimWay(base int) int {
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.lines[base+w].valid == 0 {
			return w
		}
	}
	switch c.cfg.Replacement {
	case FIFO:
		victim := 0
		var oldest uint64 = ^uint64(0)
		for w := 0; w < c.cfg.Assoc; w++ {
			if b := c.lines[base+w].born; b < oldest {
				oldest = b
				victim = w
			}
		}
		return victim
	case Random:
		c.rng ^= c.rng >> 12
		c.rng ^= c.rng << 25
		c.rng ^= c.rng >> 27
		return int((c.rng * 0x9e3779b97f4a7c15 >> 33) % uint64(c.cfg.Assoc))
	default: // LRU
		victim := 0
		var minLRU uint64 = ^uint64(0)
		for w := 0; w < c.cfg.Assoc; w++ {
			if l := &c.lines[base+w]; l.lru < minLRU {
				minLRU = l.lru
				victim = w
			}
		}
		return victim
	}
}

// evict retires a line ahead of a new allocation, accounting victim and
// write-back statistics. A fully-invalid line is free.
func (c *Cache) evict(set int, l *line) {
	if l.valid == 0 {
		return
	}
	c.stats.Victims++
	c.stats.VictimBytes += uint64(c.cfg.LineSize)
	db := 0
	if l.dirty != 0 {
		db = bits.OnesCount64(l.dirty)
		c.stats.DirtyVictims++
		c.stats.VictimDirtyBytes += uint64(db)
		c.writebackLine(c.lineAddrOf(set, l.tag), l.dirty)
	}
	if c.victimObs != nil {
		c.victimObs.ObserveVictim(c.lineAddrOf(set, l.tag), c.cfg.LineSize, db)
	}
	*l = line{}
}

// lineAddrOf reconstructs the byte address of a resident line from its
// set index and tag.
func (c *Cache) lineAddrOf(set int, tag uint32) uint32 {
	return (tag<<c.setShift | uint32(set)) << c.lineShift
}

// writebackLine accounts a dirty-line write-back and forwards it to the
// backside.
func (c *Cache) writebackLine(addr uint32, dirty uint64) {
	db := uint64(bits.OnesCount64(dirty))
	c.stats.Writebacks++
	c.stats.WritebackBytesFull += uint64(c.cfg.LineSize)
	c.stats.WritebackBytesDirty += db
	if c.backside != nil {
		c.backside.WritebackLine(addr, c.cfg.LineSize, int(db))
	}
}

// Flush empties the cache after execution, accounting flushed lines
// separately (flush-stop, paper §5: "it is assumed that the data cache
// is flushed of dirty cache lines after program execution").
func (c *Cache) Flush() {
	for i := range c.lines {
		l := &c.lines[i]
		if l.valid == 0 {
			continue
		}
		c.stats.FlushVictims++
		c.stats.FlushVictimBytes += uint64(c.cfg.LineSize)
		if l.dirty != 0 {
			db := bits.OnesCount64(l.dirty)
			c.stats.FlushDirtyVictims++
			c.stats.FlushVictimDirtyBytes += uint64(db)
			c.stats.FlushWritebacks++
			if c.backside != nil {
				// Flush traffic flows to the next level like any other
				// write-back (§5: "the flush traffic is added to the
				// write-back traffic"), but is accounted separately.
				c.backside.WritebackLine(c.lineAddrOf(i/c.cfg.Assoc, l.tag), c.cfg.LineSize, db)
			}
		}
		*l = line{}
	}
}

func (c *Cache) fetchLine(addr uint32) {
	c.stats.Fetches++
	c.stats.FetchBytes += uint64(c.cfg.LineSize)
	if c.backside != nil {
		c.backside.FetchLine(addr, c.cfg.LineSize)
	}
}

func (c *Cache) writeThrough(addr, n uint32) {
	c.stats.WriteThroughs++
	c.stats.WriteThroughBytes += uint64(n)
	if c.backside != nil {
		c.backside.WriteWord(addr, uint8(n))
	}
}

// outwardMask returns the byte mask of whole valid-granularity
// sub-blocks touched by [off, off+n) — the sectors a sector cache must
// fetch to cover the access.
func (c *Cache) outwardMask(off, n uint32) uint64 {
	g := uint32(c.cfg.Granularity())
	if g <= 1 {
		return c.byteMask(off, n)
	}
	start := off &^ (g - 1)
	end := (off + n + g - 1) &^ (g - 1)
	if end > uint32(c.cfg.LineSize) {
		end = uint32(c.cfg.LineSize)
	}
	return c.byteMask(start, end-start)
}

// fetchPartial accounts a partial (sector) fetch of nBytes.
func (c *Cache) fetchPartial(addr uint32, nBytes int) {
	c.stats.Fetches++
	c.stats.FetchBytes += uint64(nBytes)
	if c.backside != nil {
		c.backside.FetchLine(addr, nBytes)
	}
}

// inwardMask returns the byte mask of whole valid-granularity
// sub-blocks fully covered by [off, off+n). With granularity 1 it
// equals byteMask(off, n).
func (c *Cache) inwardMask(off, n uint32) uint64 {
	g := uint32(c.cfg.Granularity())
	if g <= 1 {
		return c.byteMask(off, n)
	}
	start := (off + g - 1) &^ (g - 1)
	end := (off + n) &^ (g - 1)
	if end <= start {
		return 0
	}
	return c.byteMask(start, end-start)
}

func (c *Cache) byteMask(off, n uint32) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return ((uint64(1) << n) - 1) << off
}

// LineState reports the resident state of the line containing addr, for
// tests and debugging tools.
type LineState struct {
	Present bool
	Valid   uint64 // per-byte valid mask
	Dirty   uint64 // per-byte dirty mask
}

// Probe inspects the cache without disturbing its state.
func (c *Cache) Probe(addr uint32) LineState {
	lineNum := addr >> c.lineShift
	base := int(lineNum&c.setMask) * c.cfg.Assoc
	tag := lineNum >> c.setShift
	if w := c.findWay(base, tag); w >= 0 {
		l := c.lines[base+w]
		return LineState{Present: true, Valid: l.valid, Dirty: l.dirty}
	}
	return LineState{}
}

// ResidentLines returns how many lines currently hold any valid bytes.
func (c *Cache) ResidentLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid != 0 {
			n++
		}
	}
	return n
}

// DirtyLines returns how many resident lines have any dirty bytes.
func (c *Cache) DirtyLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].dirty != 0 {
			n++
		}
	}
	return n
}

// String describes the cache.
func (c *Cache) String() string {
	return fmt.Sprintf("Cache(%s)", c.cfg)
}

// SeedDirty implements the warm-start methodology §5 attributes to
// Emer: "start the simulation with a statistically appropriate number
// of dirty blocks in the cache ... the initially dirty lines must be
// marked with non-matching but valid tags to generate write-back
// traffic." A fraction fracValid of all lines is made resident with a
// tag that cannot match any simulated address (the top tag bit is
// forced on, and workload addresses stay in the low 2GB), and a
// fraction fracDirty of those is marked fully dirty. Deterministic for
// a given seed. Must be called on an empty (fresh or Reset) cache.
func (c *Cache) SeedDirty(fracValid, fracDirty float64, seed uint64) error {
	if fracValid < 0 || fracValid > 1 || fracDirty < 0 || fracDirty > 1 {
		return fmt.Errorf("cache: seed fractions must be in [0,1]")
	}
	if c.ResidentLines() != 0 {
		return fmt.Errorf("cache: SeedDirty requires an empty cache")
	}
	rng := seed
	if rng == 0 {
		rng = 0x9e3779b97f4a7c15
	}
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x2545f4914f6cdd1d
	}
	// A tag with the top address bit set cannot match workload addresses
	// below 2GB (the trace generators' whole range).
	unmatchable := (uint32(1) << 31) >> (c.lineShift + c.setShift)
	threshValid := uint64(fracValid * float64(1<<32))
	threshDirty := uint64(fracDirty * float64(1<<32))
	for i := range c.lines {
		if next()&0xffffffff >= threshValid {
			continue
		}
		c.tick++
		l := &c.lines[i]
		l.tag = unmatchable | uint32(next())&^(uint32(1)<<31)>>(c.lineShift+c.setShift)
		l.valid = c.fullMask
		l.lru = c.tick
		l.born = c.tick
		if next()&0xffffffff < threshDirty {
			l.dirty = c.fullMask
		}
	}
	return nil
}

// Downgrade writes the dirty bytes of every resident line overlapping
// [addr, addr+size) back through the backside and marks those lines
// clean, keeping them valid — the coherence M→S transition: another
// core needs the data, so the owner flushes it to the shared level but
// keeps a readable copy. Returns the resident lines touched (clean or
// dirty) and the dirty bytes flushed. Write-backs are accounted like
// any other (Writebacks, WritebackBytes*, backside WritebackLine).
func (c *Cache) Downgrade(addr uint32, size int) (lines, dirtyBytes int) {
	if size <= 0 {
		return 0, 0
	}
	first := addr >> c.lineShift
	last := (addr + uint32(size) - 1) >> c.lineShift
	for ln := first; ln <= last; ln++ {
		set := int(ln & c.setMask)
		tag := ln >> c.setShift
		base := set * c.cfg.Assoc
		if w := c.findWay(base, tag); w >= 0 {
			l := &c.lines[base+w]
			lines++
			if l.dirty != 0 {
				dirtyBytes += bits.OnesCount64(l.dirty)
				c.writebackLine(c.lineAddrOf(set, l.tag), l.dirty)
				l.dirty = 0
			}
		}
	}
	return lines, dirtyBytes
}

// SnoopUpdate applies a remote core's write of n bytes at addr to a
// resident copy of the containing line, as a write-update coherence
// protocol does: the written bytes become valid (at the configured
// valid granularity) and any dirty claim this cache held on them is
// released — the writer now owns the newest version of those bytes.
// The span must lie within one line. The replacement stamp is not
// touched: receiving an update is not a local reference. Reports
// whether a resident copy was updated.
func (c *Cache) SnoopUpdate(addr uint32, n uint8) bool {
	lineNum := addr >> c.lineShift
	base := int(lineNum&c.setMask) * c.cfg.Assoc
	tag := lineNum >> c.setShift
	w := c.findWay(base, tag)
	if w < 0 {
		return false
	}
	off := addr & c.lineMask
	l := &c.lines[base+w]
	l.valid |= c.inwardMask(off, uint32(n))
	l.dirty &^= c.byteMask(off, uint32(n))
	return true
}

// VisitResident calls fn for every line holding valid bytes, in
// set-then-way order, with the line's byte address and state — for
// invariant checkers (coherence single-writer) and debugging tools.
func (c *Cache) VisitResident(fn func(addr uint32, st LineState)) {
	for i := range c.lines {
		l := &c.lines[i]
		if l.valid == 0 {
			continue
		}
		fn(c.lineAddrOf(i/c.cfg.Assoc, l.tag), LineState{Present: true, Valid: l.valid, Dirty: l.dirty})
	}
}

// InvalidateRange invalidates every resident line overlapping
// [addr, addr+size) — the back-invalidation an inclusive second level
// issues when it evicts one of its (longer) lines. It returns the
// number of lines invalidated and the dirty bytes lost; the caller is
// responsible for writing that dirty data onward (in an inclusive
// hierarchy the L2 merges it into the outgoing victim).
func (c *Cache) InvalidateRange(addr uint32, size int) (lines, dirtyBytes int) {
	if size <= 0 {
		return 0, 0
	}
	first := addr >> c.lineShift
	last := (addr + uint32(size) - 1) >> c.lineShift
	for ln := first; ln <= last; ln++ {
		set := int(ln & c.setMask)
		tag := ln >> c.setShift
		base := set * c.cfg.Assoc
		if w := c.findWay(base, tag); w >= 0 {
			l := &c.lines[base+w]
			lines++
			dirtyBytes += bits.OnesCount64(l.dirty)
			c.stats.Invalidates++
			*l = line{}
		}
	}
	return lines, dirtyBytes
}
