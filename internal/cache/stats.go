package cache

// Stats holds every counter the paper's figures are derived from.
// Event-level counters count trace events once even when an access
// spans multiple cache lines (an 8B double over 4B lines); traffic
// counters count per line/transaction, matching what the bus would see.
type Stats struct {
	// Instructions is the dynamic instruction count covered by the
	// accesses (event gaps + the referencing instructions).
	Instructions uint64

	// Reads and Writes count data reference events.
	Reads  uint64
	Writes uint64

	// ReadMissEvents counts read events that had to fetch at least one
	// line, including partial-validity misses induced by write-validate.
	ReadMissEvents uint64
	// PartialValidReadMisses counts the subset of ReadMissEvents where
	// the tag matched but some requested bytes were invalid (only
	// possible after write-validate allocations).
	PartialValidReadMisses uint64
	// WriteMissEvents counts write events whose tag lookup missed in at
	// least one spanned line, regardless of policy.
	WriteMissEvents uint64
	// FetchedWriteMisses counts write events that fetched at least one
	// line (non-zero only under fetch-on-write).
	FetchedWriteMisses uint64
	// EliminatedWriteMisses counts write events that tag-missed but
	// completed without fetching (the paper's "eliminated misses" under
	// write-validate / write-around / write-invalidate).
	EliminatedWriteMisses uint64

	// WritesToDirtyLines counts write events for which every spanned
	// line was resident and already dirty — the paper's Figs 1–2 metric:
	// the fraction of write traffic a write-back cache removes.
	WritesToDirtyLines uint64
	// WriteHitEvents counts write events where every spanned line was
	// resident (tag match) with the written bytes writable.
	WriteHitEvents uint64

	// Fetches counts line fetches from the next level; FetchBytes is
	// Fetches times the line size.
	Fetches    uint64
	FetchBytes uint64

	// WriteThroughs counts word transactions passed to the next level on
	// write-through, write-around or write-invalidate writes;
	// WriteThroughBytes sums their sizes.
	WriteThroughs     uint64
	WriteThroughBytes uint64

	// Writebacks counts dirty victim lines written back during program
	// execution (cold stop); WritebackBytesFull assumes whole-line
	// write-backs and WritebackBytesDirty assumes per-byte sub-block
	// dirty bits (paper §5.2's question).
	Writebacks          uint64
	WritebackBytesFull  uint64
	WritebackBytesDirty uint64

	// Victims counts valid lines replaced during program execution;
	// DirtyVictims those with at least one dirty byte;
	// VictimDirtyBytes sums dirty bytes over all victims; VictimBytes
	// sums line sizes over all victims.
	Victims          uint64
	DirtyVictims     uint64
	VictimDirtyBytes uint64
	VictimBytes      uint64

	// Invalidates counts lines invalidated by the write-invalidate
	// policy or by external back-invalidation (InvalidateRange).
	Invalidates uint64

	// SubblockWriteFills counts write hits on partially-valid lines that
	// had to fetch because the written bytes did not cover whole
	// valid-bit sub-blocks (only possible with ValidGranularity > 1).
	SubblockWriteFills uint64

	// Flush* mirror the victim counters for lines flushed by Flush()
	// after execution (flush-stop accounting, §5).
	FlushVictims          uint64
	FlushDirtyVictims     uint64
	FlushVictimDirtyBytes uint64
	FlushVictimBytes      uint64
	FlushWritebacks       uint64
}

// Misses returns the paper's fetch-triggering miss count: read misses
// plus fetched write misses. Eliminated misses are, per the paper's
// definition, not misses.
func (s Stats) Misses() uint64 { return s.ReadMissEvents + s.FetchedWriteMisses }

// Refs returns the total data reference events.
func (s Stats) Refs() uint64 { return s.Reads + s.Writes }

// MissRate returns misses per reference.
func (s Stats) MissRate() float64 { return ratio(s.Misses(), s.Refs()) }

// WriteMissFraction returns write misses as a fraction of all misses
// (paper Figs 10–11; meaningful under fetch-on-write where every write
// miss fetches).
func (s Stats) WriteMissFraction() float64 {
	return ratio(s.FetchedWriteMisses, s.Misses())
}

// WritesToDirtyFraction returns the fraction of writes to already dirty
// lines (paper Figs 1–2) — the write-traffic reduction of a write-back
// cache relative to write-through.
func (s Stats) WritesToDirtyFraction() float64 {
	return ratio(s.WritesToDirtyLines, s.Writes)
}

// DirtyVictimFraction returns the fraction of victims with at least one
// dirty byte, under cold-stop accounting (paper Fig 20 solid lines,
// Fig 23).
func (s Stats) DirtyVictimFraction() float64 { return ratio(s.DirtyVictims, s.Victims) }

// DirtyVictimFractionFlushed includes post-execution flush victims
// (paper Fig 20 dotted lines).
func (s Stats) DirtyVictimFractionFlushed() float64 {
	return ratio(s.DirtyVictims+s.FlushDirtyVictims, s.Victims+s.FlushVictims)
}

// DirtyBytesPerDirtyVictim returns the fraction of bytes dirty in
// victims that have at least one dirty byte, flush victims included
// (paper Figs 21, 24).
func (s Stats) DirtyBytesPerDirtyVictim(lineSize int) float64 {
	return ratio(s.VictimDirtyBytes+s.FlushVictimDirtyBytes,
		(s.DirtyVictims+s.FlushDirtyVictims)*uint64(lineSize))
}

// DirtyBytesPerVictim returns the fraction of bytes dirty averaged over
// all victims, clean or dirty, flush victims included (paper Figs 22,
// 25).
func (s Stats) DirtyBytesPerVictim() float64 {
	return ratio(s.VictimDirtyBytes+s.FlushVictimDirtyBytes,
		s.VictimBytes+s.FlushVictimBytes)
}

// BacksideTransactions returns the total transactions at the back of
// the cache during execution: fetches plus write-throughs plus
// write-backs (paper §5.1).
func (s Stats) BacksideTransactions() uint64 {
	return s.Fetches + s.WriteThroughs + s.Writebacks
}

// BacksideBytes returns back-side traffic in bytes, with write-backs
// counted whole-line (subblock=false) or dirty-bytes-only
// (subblock=true) — paper §5.2.
func (s Stats) BacksideBytes(subblock bool) uint64 {
	wb := s.WritebackBytesFull
	if subblock {
		wb = s.WritebackBytesDirty
	}
	return s.FetchBytes + s.WriteThroughBytes + wb
}

// Add accumulates other into s (for averaging across benchmarks).
func (s *Stats) Add(other Stats) {
	s.Instructions += other.Instructions
	s.Reads += other.Reads
	s.Writes += other.Writes
	s.ReadMissEvents += other.ReadMissEvents
	s.PartialValidReadMisses += other.PartialValidReadMisses
	s.WriteMissEvents += other.WriteMissEvents
	s.FetchedWriteMisses += other.FetchedWriteMisses
	s.EliminatedWriteMisses += other.EliminatedWriteMisses
	s.WritesToDirtyLines += other.WritesToDirtyLines
	s.WriteHitEvents += other.WriteHitEvents
	s.Fetches += other.Fetches
	s.FetchBytes += other.FetchBytes
	s.WriteThroughs += other.WriteThroughs
	s.WriteThroughBytes += other.WriteThroughBytes
	s.Writebacks += other.Writebacks
	s.WritebackBytesFull += other.WritebackBytesFull
	s.WritebackBytesDirty += other.WritebackBytesDirty
	s.Victims += other.Victims
	s.DirtyVictims += other.DirtyVictims
	s.VictimDirtyBytes += other.VictimDirtyBytes
	s.VictimBytes += other.VictimBytes
	s.Invalidates += other.Invalidates
	s.SubblockWriteFills += other.SubblockWriteFills
	s.FlushVictims += other.FlushVictims
	s.FlushDirtyVictims += other.FlushDirtyVictims
	s.FlushVictimDirtyBytes += other.FlushVictimDirtyBytes
	s.FlushVictimBytes += other.FlushVictimBytes
	s.FlushWritebacks += other.FlushWritebacks
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
