package cache

import "testing"

func sectorCfg() Config {
	return Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite,
		ValidGranularity: 8, SectorFetch: true}
}

func TestSectorFetchValidation(t *testing.T) {
	if err := sectorCfg().Validate(); err != nil {
		t.Fatalf("good sector config rejected: %v", err)
	}
	bad := sectorCfg()
	bad.ValidGranularity = 0 // per-byte
	if bad.Validate() == nil {
		t.Error("sector fetch with byte granularity accepted")
	}
}

func TestSectorReadMissFetchesOneSector(t *testing.T) {
	c := MustNew(sectorCfg())
	c.Access(rd(0x100, 4))
	s := c.Stats()
	if s.Fetches != 1 || s.FetchBytes != 8 {
		t.Errorf("fetches=%d bytes=%d, want 1/8 (one sector)", s.Fetches, s.FetchBytes)
	}
	st := c.Probe(0x100)
	if st.Valid != 0x00ff {
		t.Errorf("valid = %#x, want first sector", st.Valid)
	}
	// Reading inside the fetched sector hits.
	c.Access(rd(0x104, 4))
	if c.Stats().ReadMissEvents != 1 {
		t.Error("read within fetched sector missed")
	}
	// Reading the other sector is a partial miss fetching 8 more bytes.
	c.Access(rd(0x108, 8))
	s = c.Stats()
	if s.ReadMissEvents != 2 || s.PartialValidReadMisses != 1 {
		t.Errorf("misses=%d partial=%d, want 2/1", s.ReadMissEvents, s.PartialValidReadMisses)
	}
	if s.FetchBytes != 16 {
		t.Errorf("fetch bytes = %d, want 16", s.FetchBytes)
	}
}

func TestSectorFetchOnWrite(t *testing.T) {
	c := MustNew(sectorCfg())
	c.Access(wr(0x200, 4))
	s := c.Stats()
	if s.FetchedWriteMisses != 1 || s.FetchBytes != 8 {
		t.Errorf("fetched=%d bytes=%d, want 1/8", s.FetchedWriteMisses, s.FetchBytes)
	}
	st := c.Probe(0x200)
	if st.Valid != 0x00ff || st.Dirty != 0x000f {
		t.Errorf("valid=%#x dirty=%#x", st.Valid, st.Dirty)
	}
}

func TestSectorUnalignedReadFetchesBothSectors(t *testing.T) {
	// An 8B read at offset 4 touches both sectors of a 16B line.
	c := MustNew(sectorCfg())
	c.Access(rd(0x104, 8))
	s := c.Stats()
	if s.FetchBytes != 16 {
		t.Errorf("fetch bytes = %d, want 16 (both sectors)", s.FetchBytes)
	}
}

func TestSectorFetchLessTrafficMoreMisses(t *testing.T) {
	// Sparse accesses: sector fetching moves fewer bytes but misses more
	// often when spatial locality does appear.
	tr := randomTrace(21, 5000)
	full := MustNew(Config{Size: 1 << 10, LineSize: 64, Assoc: 1,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite})
	sect := MustNew(Config{Size: 1 << 10, LineSize: 64, Assoc: 1,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite,
		ValidGranularity: 8, SectorFetch: true})
	full.AccessTrace(tr)
	sect.AccessTrace(tr)
	if sect.Stats().FetchBytes >= full.Stats().FetchBytes {
		t.Errorf("sector fetch bytes %d >= full %d", sect.Stats().FetchBytes, full.Stats().FetchBytes)
	}
	if sect.Stats().Misses() < full.Stats().Misses() {
		t.Errorf("sector misses %d < full %d (impossible)", sect.Stats().Misses(), full.Stats().Misses())
	}
}

func TestSectorWriteHitFill(t *testing.T) {
	// Write-validate + sector fetch: a mis-sized write into an invalid
	// sector fills just that sector.
	cfg := sectorCfg()
	cfg.WriteMiss = WriteValidate
	c := MustNew(cfg)
	c.Access(wr(0x300, 8)) // validates sector 0
	c.Access(wr(0x30c, 4)) // half of sector 1: sub-block fill of 8B
	s := c.Stats()
	if s.SubblockWriteFills != 1 {
		t.Errorf("fills = %d", s.SubblockWriteFills)
	}
	if s.FetchBytes != 8 {
		t.Errorf("fetch bytes = %d, want 8 (one sector)", s.FetchBytes)
	}
	if st := c.Probe(0x300); st.Valid != 0xffff {
		t.Errorf("valid = %#x, want full", st.Valid)
	}
}
