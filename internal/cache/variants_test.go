package cache

import (
	"encoding/json"
	"testing"

	"cachewrite/internal/trace"
)

func TestReplacementString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Random.String() != "random" {
		t.Error("replacement names wrong")
	}
	if Replacement(9).String() == "" {
		t.Error("unknown replacement should render")
	}
}

func TestConfigValidateVariants(t *testing.T) {
	base := cfg8k16(WriteBack, WriteValidate)
	ok := base
	ok.Replacement = FIFO
	ok.ValidGranularity = 4
	ok.WVMissWriteThrough = true
	if err := ok.Validate(); err != nil {
		t.Fatalf("good variant config rejected: %v", err)
	}
	bad := base
	bad.Replacement = Replacement(9)
	if bad.Validate() == nil {
		t.Error("bad replacement accepted")
	}
	bad = base
	bad.ValidGranularity = 3
	if bad.Validate() == nil {
		t.Error("non-pow2 granularity accepted")
	}
	bad = base
	bad.ValidGranularity = 32 // > 16B line
	if bad.Validate() == nil {
		t.Error("granularity beyond line size accepted")
	}
	bad = cfg8k16(WriteBack, FetchOnWrite)
	bad.WVMissWriteThrough = true
	if bad.Validate() == nil {
		t.Error("WVMissWriteThrough without write-validate accepted")
	}
}

func TestGranularityDefault(t *testing.T) {
	c := Config{}
	if c.Granularity() != 1 {
		t.Errorf("default granularity = %d", c.Granularity())
	}
	c.ValidGranularity = 8
	if c.Granularity() != 8 {
		t.Errorf("granularity = %d", c.Granularity())
	}
}

// TestFIFOReplacement: FIFO evicts the oldest allocation even if it was
// just touched.
func TestFIFOReplacement(t *testing.T) {
	cfg := Config{Size: 64, LineSize: 16, Assoc: 2,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite, Replacement: FIFO}
	c := MustNew(cfg)
	c.Access(rd(0x00, 4)) // set 0, allocated first
	c.Access(rd(0x40, 4)) // set 0, allocated second
	c.Access(rd(0x00, 4)) // touch the first — FIFO must ignore this
	c.Access(rd(0x80, 4)) // replaces 0x00 (oldest), not 0x40
	if c.Probe(0x00).Present {
		t.Error("FIFO kept the oldest line")
	}
	if !c.Probe(0x40).Present {
		t.Error("FIFO evicted the younger line")
	}
}

// TestLRUVsFIFODiffer: the same trace distinguishes the two policies.
func TestLRUVsFIFODiffer(t *testing.T) {
	mkTrace := func() *trace.Trace {
		tr := &trace.Trace{}
		// Pattern with reuse of the oldest line.
		for i := 0; i < 200; i++ {
			tr.Append(rd(uint32(0x00), 4))
			tr.Append(rd(uint32(0x40+(i%3)*0x40), 4))
		}
		return tr
	}
	lru := MustNew(Config{Size: 64, LineSize: 16, Assoc: 2,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite, Replacement: LRU})
	fifo := MustNew(Config{Size: 64, LineSize: 16, Assoc: 2,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite, Replacement: FIFO})
	lru.AccessTrace(mkTrace())
	fifo.AccessTrace(mkTrace())
	if lru.Stats().Misses() >= fifo.Stats().Misses() {
		t.Errorf("LRU (%d misses) should beat FIFO (%d) on a reuse-the-hot-line pattern",
			lru.Stats().Misses(), fifo.Stats().Misses())
	}
}

// TestRandomReplacementDeterministic: two identical runs replace
// identically (the RNG is seeded constant).
func TestRandomReplacementDeterministic(t *testing.T) {
	run := func() Stats {
		c := MustNew(Config{Size: 256, LineSize: 16, Assoc: 4,
			WriteHit: WriteBack, WriteMiss: FetchOnWrite, Replacement: Random})
		for i := 0; i < 2000; i++ {
			c.Access(rd(uint32((i*97)%4096)&^3, 4))
		}
		return c.Stats()
	}
	if run() != run() {
		t.Error("random replacement is not deterministic")
	}
}

// TestWVMissWriteThrough: the multiprocessor-safe variant sends missing
// writes through and leaves the allocated line clean.
func TestWVMissWriteThrough(t *testing.T) {
	cfg := cfg8k16(WriteBack, WriteValidate)
	cfg.WVMissWriteThrough = true
	c := MustNew(cfg)
	c.Access(wr(0x200, 8))
	s := c.Stats()
	if s.WriteThroughs != 1 || s.WriteThroughBytes != 8 {
		t.Errorf("write-throughs = %d (%dB), want 1 (8B)", s.WriteThroughs, s.WriteThroughBytes)
	}
	st := c.Probe(0x200)
	if st.Valid != 0x00ff {
		t.Errorf("valid = %#x, want partial", st.Valid)
	}
	if st.Dirty != 0 {
		t.Errorf("dirty = %#x, want clean (data went through)", st.Dirty)
	}
	// Hits still follow plain write-back: a second write dirties.
	c.Access(wr(0x200, 8))
	if st := c.Probe(0x200); st.Dirty != 0x00ff {
		t.Errorf("write hit did not dirty the line: %#x", st.Dirty)
	}
	if c.Stats().WriteThroughs != 1 {
		t.Error("write hit went through in write-back mode")
	}
}

// TestGranularityFallbackOnMiss: with 8B valid granularity, a 4B write
// miss cannot write-validate and falls back to fetch-on-write.
func TestGranularityFallbackOnMiss(t *testing.T) {
	cfg := cfg8k16(WriteBack, WriteValidate)
	cfg.ValidGranularity = 8
	c := MustNew(cfg)
	c.Access(wr(0x200, 4))
	s := c.Stats()
	if s.Fetches != 1 || s.FetchedWriteMisses != 1 || s.EliminatedWriteMisses != 0 {
		t.Errorf("fallback not taken: fetches=%d fetched=%d eliminated=%d",
			s.Fetches, s.FetchedWriteMisses, s.EliminatedWriteMisses)
	}
	if st := c.Probe(0x200); st.Valid != 0xffff {
		t.Errorf("line should be fully valid after fallback: %#x", st.Valid)
	}
	// An aligned 8B write still write-validates.
	c.Access(wr(0x400, 8))
	s = c.Stats()
	if s.EliminatedWriteMisses != 1 {
		t.Errorf("aligned write did not write-validate: %d", s.EliminatedWriteMisses)
	}
	if st := c.Probe(0x400); st.Valid != 0x00ff {
		t.Errorf("valid = %#x, want the written 8B sub-block", st.Valid)
	}
}

// TestGranularityWriteHitFill: with 8B granularity, a 4B write hitting
// a partially-valid line whose sub-block is invalid forces a fill.
func TestGranularityWriteHitFill(t *testing.T) {
	cfg := cfg8k16(WriteBack, WriteValidate)
	cfg.ValidGranularity = 8
	c := MustNew(cfg)
	c.Access(wr(0x200, 8)) // validate bytes 0-7
	c.Access(wr(0x20c, 4)) // bytes 12-15: half of sub-block 8-15
	s := c.Stats()
	if s.SubblockWriteFills != 1 {
		t.Errorf("sub-block write fills = %d, want 1", s.SubblockWriteFills)
	}
	if s.Fetches != 1 {
		t.Errorf("fetches = %d, want 1", s.Fetches)
	}
	if st := c.Probe(0x200); st.Valid != 0xffff {
		t.Errorf("line should be filled: %#x", st.Valid)
	}
	// The written bytes are dirty per-byte regardless of granularity.
	if st := c.Probe(0x200); st.Dirty != 0x00ff|0xf000 {
		t.Errorf("dirty = %#x", st.Dirty)
	}
}

// TestGranularityAlignedHitNoFill: an aligned 8B write into the invalid
// half marks it valid without fetching.
func TestGranularityAlignedHitNoFill(t *testing.T) {
	cfg := cfg8k16(WriteBack, WriteValidate)
	cfg.ValidGranularity = 8
	c := MustNew(cfg)
	c.Access(wr(0x200, 8))
	c.Access(wr(0x208, 8))
	s := c.Stats()
	if s.SubblockWriteFills != 0 || s.Fetches != 0 {
		t.Errorf("aligned writes fetched: fills=%d fetches=%d", s.SubblockWriteFills, s.Fetches)
	}
	if st := c.Probe(0x200); st.Valid != 0xffff {
		t.Errorf("valid = %#x", st.Valid)
	}
}

// TestGranularityOneMatchesDefault: granularity 1 and 4 are identical
// for word-aligned traces.
func TestGranularityOneMatchesDefault(t *testing.T) {
	tr := randomTrace(3, 3000)
	base := cfg8k16(WriteBack, WriteValidate)
	g1 := MustNew(base)
	cfg4 := base
	cfg4.ValidGranularity = 4
	g4 := MustNew(cfg4)
	g1.AccessTrace(tr)
	g4.AccessTrace(tr)
	if g1.Stats() != g4.Stats() {
		t.Error("4B granularity differs from per-byte on a word-aligned trace")
	}
}

// TestGranularityDegradesWVBenefit: coarser valid bits can only reduce
// write-validate's eliminated misses.
func TestGranularityDegradesWVBenefit(t *testing.T) {
	tr := randomTrace(5, 4000)
	prev := ^uint64(0)
	for _, g := range []int{1, 8, 16} {
		cfg := cfg8k16(WriteBack, WriteValidate)
		cfg.ValidGranularity = g
		c := MustNew(cfg)
		c.AccessTrace(tr)
		el := c.Stats().EliminatedWriteMisses
		if el > prev {
			t.Errorf("granularity %d eliminated more misses (%d) than finer (%d)", g, el, prev)
		}
		prev = el
	}
}

func TestSeedDirty(t *testing.T) {
	c := MustNew(cfg8k16(WriteBack, FetchOnWrite))
	if err := c.SeedDirty(1.0, 0.5, 7); err != nil {
		t.Fatal(err)
	}
	if c.ResidentLines() != 512 {
		t.Fatalf("resident = %d, want all 512", c.ResidentLines())
	}
	dirty := c.DirtyLines()
	if dirty < 200 || dirty > 312 {
		t.Errorf("dirty lines = %d, want ~256", dirty)
	}
	// Seeded tags never match real addresses: the first access to any
	// low address must miss and evict a seeded victim.
	c.Access(rd(0x100, 4))
	s := c.Stats()
	if s.ReadMissEvents != 1 || s.Victims != 1 {
		t.Errorf("misses=%d victims=%d, want 1/1", s.ReadMissEvents, s.Victims)
	}
	// Statistically, evicting dirty seeded lines produces write-back
	// traffic immediately — the methodology's whole point.
	for i := 0; i < 200; i++ {
		c.Access(rd(uint32(0x1000+i*16), 4))
	}
	if c.Stats().Writebacks == 0 {
		t.Error("no write-back traffic from seeded dirty lines")
	}
}

func TestSeedDirtyValidation(t *testing.T) {
	c := MustNew(cfg8k16(WriteBack, FetchOnWrite))
	if err := c.SeedDirty(1.5, 0, 1); err == nil {
		t.Error("bad fraction accepted")
	}
	if err := c.SeedDirty(0.5, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SeedDirty(0.5, 0.5, 1); err == nil {
		t.Error("seeding a non-empty cache accepted")
	}
}

func TestSeedDirtyDeterministic(t *testing.T) {
	a := MustNew(cfg8k16(WriteBack, FetchOnWrite))
	b := MustNew(cfg8k16(WriteBack, FetchOnWrite))
	if err := a.SeedDirty(0.7, 0.5, 42); err != nil {
		t.Fatal(err)
	}
	if err := b.SeedDirty(0.7, 0.5, 42); err != nil {
		t.Fatal(err)
	}
	if a.ResidentLines() != b.ResidentLines() || a.DirtyLines() != b.DirtyLines() {
		t.Error("seeding not deterministic")
	}
}

// backsideRecorder records every backside callback for direct cache
// tests (hierarchy has its own integration coverage).
type backsideRecorder struct {
	fetches, writebacks, words int
	victims                    int
	lastFetchAddr              uint32
}

func (r *backsideRecorder) FetchLine(addr uint32, size int) {
	r.fetches++
	r.lastFetchAddr = addr
}
func (r *backsideRecorder) WritebackLine(addr uint32, size, dirtyBytes int) { r.writebacks++ }
func (r *backsideRecorder) WriteWord(addr uint32, size uint8)               { r.words++ }
func (r *backsideRecorder) ObserveVictim(addr uint32, size, dirtyBytes int) { r.victims++ }

func TestBacksideCallbacks(t *testing.T) {
	c := MustNew(cfg8k16(WriteBack, FetchOnWrite))
	rec := &backsideRecorder{}
	c.SetBackside(rec)
	c.Access(wr(0x100, 8))       // fetch-on-write: 1 fetch
	c.Access(rd(0x100+8<<10, 4)) // conflict: dirty victim writeback + fetch
	if rec.fetches != 2 || rec.writebacks != 1 || rec.victims != 1 {
		t.Errorf("callbacks: %+v", rec)
	}
	if rec.lastFetchAddr != 0x100+8<<10 {
		t.Errorf("fetch addr = %#x", rec.lastFetchAddr)
	}
	// Write-through words reach the backside too.
	wt := MustNew(cfg8k16(WriteThrough, WriteAround))
	rec2 := &backsideRecorder{}
	wt.SetBackside(rec2)
	wt.Access(wr(0x200, 4))
	if rec2.words != 1 {
		t.Errorf("write-through words = %d", rec2.words)
	}
	// Detach: no further callbacks.
	wt.SetBackside(nil)
	wt.Access(wr(0x300, 4))
	if rec2.words != 1 {
		t.Error("detached backside still called")
	}
}

func TestInvalidateRangeDirect(t *testing.T) {
	c := MustNew(cfg8k16(WriteBack, FetchOnWrite))
	c.Access(wr(0x100, 8)) // dirty line at 0x100
	c.Access(rd(0x110, 4)) // clean line at 0x110
	lines, dirty := c.InvalidateRange(0x100, 32)
	if lines != 2 || dirty != 8 {
		t.Errorf("invalidated %d lines, %d dirty bytes; want 2/8", lines, dirty)
	}
	if c.Probe(0x100).Present || c.Probe(0x110).Present {
		t.Error("lines survived InvalidateRange")
	}
	if c.Stats().Invalidates != 2 {
		t.Errorf("invalidates = %d", c.Stats().Invalidates)
	}
	// Empty and degenerate ranges.
	if l, d := c.InvalidateRange(0x100, 16); l != 0 || d != 0 {
		t.Error("re-invalidation found lines")
	}
	if l, d := c.InvalidateRange(0x100, 0); l != 0 || d != 0 {
		t.Error("zero-size range invalidated")
	}
}

func TestConfigStringVariantsAndSizes(t *testing.T) {
	if got := fmtSize(512); got != "512B" {
		t.Errorf("fmtSize(512) = %q", got)
	}
	if got := fmtSize(3 << 20); got != "3MB" {
		t.Errorf("fmtSize(3MB) = %q", got)
	}
	if got := fmtSize(1536); got != "1536B" {
		t.Errorf("fmtSize(1536) = %q", got)
	}
}

func TestOutwardMaskClampsAtLineEnd(t *testing.T) {
	c := MustNew(Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite,
		ValidGranularity: 8, SectorFetch: true})
	// Access touching the last bytes: outward mask must not pass the
	// line end.
	c.Access(rd(0x10c, 4))
	if st := c.Probe(0x100); st.Valid != 0xff00 {
		t.Errorf("valid = %#x, want upper sector only", st.Valid)
	}
}

func TestPolicyTextMarshalling(t *testing.T) {
	type doc struct {
		Hit  WriteHitPolicy  `json:"hit"`
		Miss WriteMissPolicy `json:"miss"`
		Repl Replacement     `json:"repl"`
	}
	in := doc{Hit: WriteBack, Miss: WriteValidate, Repl: FIFO}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"hit":"write-back","miss":"write-validate","repl":"fifo"}`
	if string(b) != want {
		t.Errorf("marshalled %s, want %s", b, want)
	}
	var out doc
	if err := json.Unmarshal([]byte(`{"hit":"wt","miss":"wa","repl":"random"}`), &out); err != nil {
		t.Fatal(err)
	}
	if out.Hit != WriteThrough || out.Miss != WriteAround || out.Repl != Random {
		t.Errorf("unmarshalled %+v", out)
	}
	if json.Unmarshal([]byte(`{"hit":"nope"}`), &out) == nil {
		t.Error("bad hit policy accepted")
	}
	if json.Unmarshal([]byte(`{"miss":"nope"}`), &out) == nil {
		t.Error("bad miss policy accepted")
	}
	if json.Unmarshal([]byte(`{"repl":"nope"}`), &out) == nil {
		t.Error("bad replacement accepted")
	}
}
