package cache

import (
	"testing"

	"cachewrite/internal/trace"
)

// cfg8k16 is the paper's standard 8KB direct-mapped geometry.
func cfg8k16(hit WriteHitPolicy, miss WriteMissPolicy) Config {
	return Config{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: hit, WriteMiss: miss}
}

func rd(addr uint32, size uint8) trace.Event {
	return trace.Event{Addr: addr, Size: size, Kind: trace.Read}
}

func wr(addr uint32, size uint8) trace.Event {
	return trace.Event{Addr: addr, Size: size, Kind: trace.Write}
}

func TestConfigValidate(t *testing.T) {
	good := cfg8k16(WriteBack, FetchOnWrite)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"non-pow2 size", func(c *Config) { c.Size = 3000 }},
		{"zero size", func(c *Config) { c.Size = 0 }},
		{"negative size", func(c *Config) { c.Size = -8 }},
		{"line too small", func(c *Config) { c.LineSize = 2 }},
		{"line too large", func(c *Config) { c.LineSize = 128 }},
		{"non-pow2 line", func(c *Config) { c.LineSize = 12 }},
		{"zero assoc", func(c *Config) { c.Assoc = 0 }},
		{"assoc exceeds lines", func(c *Config) { c.Size = 64; c.LineSize = 16; c.Assoc = 8 }},
		{"non-pow2 sets", func(c *Config) { c.Assoc = 3 }},
		{"bad hit policy", func(c *Config) { c.WriteHit = WriteHitPolicy(9) }},
		{"bad miss policy", func(c *Config) { c.WriteMiss = WriteMissPolicy(9) }},
	}
	for _, tc := range cases {
		c := good
		tc.mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestConfigSetsAndString(t *testing.T) {
	c := cfg8k16(WriteBack, FetchOnWrite)
	if c.Sets() != 512 {
		t.Errorf("Sets() = %d, want 512", c.Sets())
	}
	if got := c.String(); got != "8KB/16B/direct write-back fetch-on-write" {
		t.Errorf("String() = %q", got)
	}
	c.Assoc = 4
	if got := c.String(); got != "8KB/16B/4-way write-back fetch-on-write" {
		t.Errorf("String() = %q", got)
	}
	c.Size = 2 << 20
	if got := c.String(); got[:3] != "2MB" {
		t.Errorf("String() = %q, want 2MB prefix", got)
	}
}

func TestPolicyStrings(t *testing.T) {
	if WriteThrough.String() != "write-through" || WriteBack.String() != "write-back" {
		t.Error("write-hit policy names wrong")
	}
	want := map[WriteMissPolicy]string{
		FetchOnWrite: "fetch-on-write", WriteValidate: "write-validate",
		WriteAround: "write-around", WriteInvalidate: "write-invalidate",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if WriteHitPolicy(5).String() == "" || WriteMissPolicy(5).String() == "" {
		t.Error("unknown policies should still render")
	}
}

func TestPolicyPredicates(t *testing.T) {
	if !FetchOnWrite.FetchesOnWriteMiss() || WriteValidate.FetchesOnWriteMiss() {
		t.Error("FetchesOnWriteMiss wrong")
	}
	if !FetchOnWrite.Allocates() || !WriteValidate.Allocates() ||
		WriteAround.Allocates() || WriteInvalidate.Allocates() {
		t.Error("Allocates wrong")
	}
	ps := WriteMissPolicies()
	if len(ps) != 4 || ps[0] != WriteValidate || ps[3] != FetchOnWrite {
		t.Errorf("WriteMissPolicies() = %v", ps)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestReadMissThenHit(t *testing.T) {
	c := MustNew(cfg8k16(WriteBack, FetchOnWrite))
	c.Access(rd(0x100, 4))
	c.Access(rd(0x104, 4)) // same line
	c.Access(rd(0x100, 4))
	s := c.Stats()
	if s.Reads != 3 || s.ReadMissEvents != 1 {
		t.Errorf("reads=%d misses=%d, want 3/1", s.Reads, s.ReadMissEvents)
	}
	if s.Fetches != 1 || s.FetchBytes != 16 {
		t.Errorf("fetches=%d bytes=%d, want 1/16", s.Fetches, s.FetchBytes)
	}
	if !c.Probe(0x100).Present {
		t.Error("line not resident after read miss")
	}
}

func TestWriteHitWriteThrough(t *testing.T) {
	c := MustNew(cfg8k16(WriteThrough, FetchOnWrite))
	c.Access(rd(0x100, 4)) // bring the line in
	c.Access(wr(0x100, 4))
	c.Access(wr(0x104, 8))
	s := c.Stats()
	if s.WriteHitEvents != 2 {
		t.Errorf("write hits = %d, want 2", s.WriteHitEvents)
	}
	// Every write goes through, plus the fetch-on-write... no write
	// misses here, so exactly the two word transactions.
	if s.WriteThroughs != 2 || s.WriteThroughBytes != 12 {
		t.Errorf("write-throughs = %d (%dB), want 2 (12B)", s.WriteThroughs, s.WriteThroughBytes)
	}
	if st := c.Probe(0x100); st.Dirty != 0 {
		t.Errorf("write-through line dirty mask %b, want clean", st.Dirty)
	}
	if s.WritesToDirtyLines != 0 {
		t.Error("write-through lines are never dirty")
	}
}

func TestWriteHitWriteBackDirtyTracking(t *testing.T) {
	c := MustNew(cfg8k16(WriteBack, FetchOnWrite))
	c.Access(rd(0x100, 4))
	c.Access(wr(0x100, 4)) // first write: line clean before
	c.Access(wr(0x108, 8)) // second write: line already dirty
	s := c.Stats()
	if s.WriteHitEvents != 2 {
		t.Fatalf("write hits = %d, want 2", s.WriteHitEvents)
	}
	if s.WritesToDirtyLines != 1 {
		t.Errorf("writes to dirty = %d, want 1", s.WritesToDirtyLines)
	}
	if s.WriteThroughs != 0 {
		t.Error("write-back cache produced write-through traffic on hits")
	}
	st := c.Probe(0x100)
	// Bytes 0-3 and 8-15 of the line dirty.
	wantDirty := uint64(0x000f | 0xff00)
	if st.Dirty != wantDirty {
		t.Errorf("dirty mask %#x, want %#x", st.Dirty, wantDirty)
	}
}

func TestFetchOnWriteMiss(t *testing.T) {
	c := MustNew(cfg8k16(WriteBack, FetchOnWrite))
	c.Access(wr(0x200, 8))
	s := c.Stats()
	if s.WriteMissEvents != 1 || s.FetchedWriteMisses != 1 || s.EliminatedWriteMisses != 0 {
		t.Errorf("miss counters = %d/%d/%d", s.WriteMissEvents, s.FetchedWriteMisses, s.EliminatedWriteMisses)
	}
	if s.Fetches != 1 {
		t.Errorf("fetches = %d, want 1 (fetch-on-write)", s.Fetches)
	}
	st := c.Probe(0x200)
	if !st.Present || st.Valid != 0xffff {
		t.Fatalf("line state %+v; want fully valid", st)
	}
	if st.Dirty != 0x00ff {
		t.Errorf("dirty mask %#x, want first 8 bytes", st.Dirty)
	}
	// Read of the rest of the line must hit (it was fetched).
	c.Access(rd(0x208, 8))
	if c.Stats().ReadMissEvents != 0 {
		t.Error("read after fetch-on-write missed")
	}
}

func TestWriteValidateNoFetch(t *testing.T) {
	c := MustNew(cfg8k16(WriteBack, WriteValidate))
	c.Access(wr(0x200, 8))
	s := c.Stats()
	if s.Fetches != 0 {
		t.Fatalf("write-validate fetched %d lines", s.Fetches)
	}
	if s.EliminatedWriteMisses != 1 || s.FetchedWriteMisses != 0 {
		t.Errorf("eliminated=%d fetched=%d, want 1/0", s.EliminatedWriteMisses, s.FetchedWriteMisses)
	}
	st := c.Probe(0x200)
	if st.Valid != 0x00ff || st.Dirty != 0x00ff {
		t.Fatalf("line valid=%#x dirty=%#x, want 0xff/0xff (sub-block)", st.Valid, st.Dirty)
	}
	// Reading the written bytes hits with no fetch.
	c.Access(rd(0x200, 8))
	if c.Stats().ReadMissEvents != 0 {
		t.Error("read of written bytes missed")
	}
	// Reading the invalid half is the paper's induced miss: fetch and
	// count, preserving our dirty bytes.
	c.Access(rd(0x208, 8))
	s = c.Stats()
	if s.ReadMissEvents != 1 || s.PartialValidReadMisses != 1 {
		t.Errorf("partial-valid miss not counted: %d/%d", s.ReadMissEvents, s.PartialValidReadMisses)
	}
	if s.Fetches != 1 {
		t.Errorf("fetches = %d, want 1", s.Fetches)
	}
	st = c.Probe(0x200)
	if st.Valid != 0xffff || st.Dirty != 0x00ff {
		t.Errorf("after fill: valid=%#x dirty=%#x", st.Valid, st.Dirty)
	}
}

func TestWriteValidateWriteThrough(t *testing.T) {
	c := MustNew(cfg8k16(WriteThrough, WriteValidate))
	c.Access(wr(0x200, 8))
	s := c.Stats()
	if s.WriteThroughs != 1 {
		t.Errorf("write-throughs = %d, want 1", s.WriteThroughs)
	}
	st := c.Probe(0x200)
	if st.Valid != 0x00ff || st.Dirty != 0 {
		t.Errorf("valid=%#x dirty=%#x, want partial valid and clean", st.Valid, st.Dirty)
	}
}

func TestWriteAroundLeavesCacheAlone(t *testing.T) {
	c := MustNew(cfg8k16(WriteThrough, WriteAround))
	// Resident line A.
	c.Access(rd(0x100, 4))
	// Write miss to line B mapping to a different set: cache untouched.
	c.Access(wr(0x200, 8))
	s := c.Stats()
	if s.EliminatedWriteMisses != 1 {
		t.Errorf("eliminated = %d, want 1", s.EliminatedWriteMisses)
	}
	if c.Probe(0x200).Present {
		t.Error("write-around allocated a line")
	}
	if s.WriteThroughs != 1 || s.WriteThroughBytes != 8 {
		t.Errorf("write-through transactions = %d (%dB)", s.WriteThroughs, s.WriteThroughBytes)
	}
	// Write miss mapping to line A's set (same index, different tag):
	// the old contents stay resident and readable.
	conflict := uint32(0x100 + 8<<10)
	c.Access(wr(conflict, 8))
	if !c.Probe(0x100).Present {
		t.Error("write-around evicted the old line")
	}
	c.Access(rd(0x100, 4))
	if c.Stats().ReadMissEvents != 1 { // only the initial fill
		t.Error("read of preserved old line missed")
	}
}

func TestWriteInvalidate(t *testing.T) {
	c := MustNew(cfg8k16(WriteThrough, WriteInvalidate))
	c.Access(rd(0x100, 4))
	// A write miss whose index hits line 0x100's set corrupts and
	// invalidates it.
	conflict := uint32(0x100 + 8<<10)
	c.Access(wr(conflict, 8))
	s := c.Stats()
	if s.Invalidates != 1 {
		t.Fatalf("invalidates = %d, want 1", s.Invalidates)
	}
	if s.EliminatedWriteMisses != 1 {
		t.Errorf("eliminated = %d, want 1", s.EliminatedWriteMisses)
	}
	if c.Probe(0x100).Present || c.Probe(conflict).Present {
		t.Error("set should be empty after write-invalidate")
	}
	if s.WriteThroughs != 1 {
		t.Errorf("write-throughs = %d, want 1", s.WriteThroughs)
	}
	// Both the old contents and the written data now miss.
	c.Access(rd(0x100, 4))
	if c.Stats().ReadMissEvents != 2 {
		t.Error("read of invalidated line should miss")
	}
}

func TestWriteInvalidateEmptySet(t *testing.T) {
	c := MustNew(cfg8k16(WriteThrough, WriteInvalidate))
	c.Access(wr(0x100, 4))
	s := c.Stats()
	if s.Invalidates != 0 {
		t.Errorf("invalidated an empty set: %d", s.Invalidates)
	}
	if s.EliminatedWriteMisses != 1 {
		t.Errorf("eliminated = %d, want 1", s.EliminatedWriteMisses)
	}
}

func TestVictimStatistics(t *testing.T) {
	// 64B cache, 16B lines, direct-mapped: 4 sets.
	c := MustNew(Config{Size: 64, LineSize: 16, Assoc: 1,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite})
	c.Access(wr(0x00, 8)) // set 0, dirty 8 bytes (via fetch-on-write)
	c.Access(rd(0x10, 4)) // set 1, clean
	// Evict both with conflicting lines.
	c.Access(rd(0x40, 4)) // set 0: evicts dirty victim
	c.Access(rd(0x50, 4)) // set 1: evicts clean victim
	s := c.Stats()
	if s.Victims != 2 || s.DirtyVictims != 1 {
		t.Fatalf("victims=%d dirty=%d, want 2/1", s.Victims, s.DirtyVictims)
	}
	if s.VictimDirtyBytes != 8 {
		t.Errorf("victim dirty bytes = %d, want 8", s.VictimDirtyBytes)
	}
	if s.VictimBytes != 32 {
		t.Errorf("victim bytes = %d, want 32", s.VictimBytes)
	}
	if s.Writebacks != 1 || s.WritebackBytesFull != 16 || s.WritebackBytesDirty != 8 {
		t.Errorf("writebacks=%d full=%d dirty=%d", s.Writebacks, s.WritebackBytesFull, s.WritebackBytesDirty)
	}
	if got := s.DirtyVictimFraction(); got != 0.5 {
		t.Errorf("DirtyVictimFraction = %v, want 0.5", got)
	}
	if got := s.DirtyBytesPerDirtyVictim(16); got != 0.5 {
		t.Errorf("DirtyBytesPerDirtyVictim = %v, want 0.5", got)
	}
	if got := s.DirtyBytesPerVictim(); got != 0.25 {
		t.Errorf("DirtyBytesPerVictim = %v, want 0.25", got)
	}
}

func TestFlushAccounting(t *testing.T) {
	c := MustNew(cfg8k16(WriteBack, FetchOnWrite))
	c.Access(wr(0x100, 8))
	c.Access(rd(0x200, 4))
	if c.ResidentLines() != 2 || c.DirtyLines() != 1 {
		t.Fatalf("resident=%d dirty=%d", c.ResidentLines(), c.DirtyLines())
	}
	c.Flush()
	s := c.Stats()
	if s.FlushVictims != 2 || s.FlushDirtyVictims != 1 || s.FlushWritebacks != 1 {
		t.Errorf("flush: victims=%d dirty=%d wb=%d", s.FlushVictims, s.FlushDirtyVictims, s.FlushWritebacks)
	}
	if s.FlushVictimDirtyBytes != 8 || s.FlushVictimBytes != 32 {
		t.Errorf("flush bytes: dirty=%d total=%d", s.FlushVictimDirtyBytes, s.FlushVictimBytes)
	}
	if c.ResidentLines() != 0 || c.DirtyLines() != 0 {
		t.Error("cache not empty after flush")
	}
	// Program victims unchanged.
	if s.Victims != 0 {
		t.Error("flush counted as program victims")
	}
	if got := s.DirtyVictimFractionFlushed(); got != 0.5 {
		t.Errorf("flushed dirty fraction = %v, want 0.5", got)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 2 sets: 4 lines of 16B = 64B cache.
	c := MustNew(Config{Size: 64, LineSize: 16, Assoc: 2,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite})
	// Set 0 lines: 0x00, 0x40, 0x80 (tags 0,1,2).
	c.Access(rd(0x00, 4))
	c.Access(rd(0x40, 4))
	c.Access(rd(0x00, 4)) // touch 0x00: 0x40 becomes LRU
	c.Access(rd(0x80, 4)) // evicts 0x40
	if !c.Probe(0x00).Present {
		t.Error("recently used line evicted")
	}
	if c.Probe(0x40).Present {
		t.Error("LRU line survived")
	}
	if !c.Probe(0x80).Present {
		t.Error("new line not installed")
	}
	if s := c.Stats(); s.Victims != 1 {
		t.Errorf("victims = %d, want 1", s.Victims)
	}
}

func TestLineCrossingAccess(t *testing.T) {
	// 4B lines: an 8B write touches two lines but is one event.
	c := MustNew(Config{Size: 1 << 10, LineSize: 4, Assoc: 1,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite})
	c.Access(wr(0x100, 8))
	s := c.Stats()
	if s.Writes != 1 || s.WriteMissEvents != 1 {
		t.Errorf("events: writes=%d misses=%d, want 1/1", s.Writes, s.WriteMissEvents)
	}
	if s.Fetches != 2 {
		t.Errorf("fetches = %d, want 2 (two lines)", s.Fetches)
	}
	if !c.Probe(0x100).Present || !c.Probe(0x104).Present {
		t.Error("both lines should be resident")
	}
	// A second 8B write to the same two (now dirty) lines counts as one
	// write to already-dirty lines.
	c.Access(wr(0x100, 8))
	s = c.Stats()
	if s.WritesToDirtyLines != 1 {
		t.Errorf("writes-to-dirty = %d, want 1", s.WritesToDirtyLines)
	}
	// 8B write with only one of two lines dirty: not counted.
	c.Access(rd(0x108, 4))
	c.Access(wr(0x108, 8)) // line 0x108 clean-resident, 0x10c missing
	if s := c.Stats(); s.WritesToDirtyLines != 1 {
		t.Errorf("half-dirty write counted: %d", s.WritesToDirtyLines)
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Reads: 60, Writes: 40, ReadMissEvents: 6, FetchedWriteMisses: 4,
		WritesToDirtyLines: 10}
	if s.Misses() != 10 || s.Refs() != 100 {
		t.Error("Misses/Refs wrong")
	}
	if s.MissRate() != 0.1 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
	if s.WriteMissFraction() != 0.4 {
		t.Errorf("WriteMissFraction = %v", s.WriteMissFraction())
	}
	if s.WritesToDirtyFraction() != 0.25 {
		t.Errorf("WritesToDirtyFraction = %v", s.WritesToDirtyFraction())
	}
	var zero Stats
	if zero.MissRate() != 0 || zero.WriteMissFraction() != 0 ||
		zero.DirtyVictimFraction() != 0 || zero.DirtyBytesPerVictim() != 0 {
		t.Error("zero stats should produce zero ratios, not NaN")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Reads: 1, Writes: 2, Fetches: 3, FlushVictims: 4, Invalidates: 5}
	b := Stats{Reads: 10, Writes: 20, Fetches: 30, FlushVictims: 40, Invalidates: 50}
	a.Add(b)
	if a.Reads != 11 || a.Writes != 22 || a.Fetches != 33 || a.FlushVictims != 44 || a.Invalidates != 55 {
		t.Errorf("Add result %+v", a)
	}
}

func TestBacksideTraffic(t *testing.T) {
	s := Stats{Fetches: 2, FetchBytes: 32, WriteThroughs: 3, WriteThroughBytes: 12,
		Writebacks: 1, WritebackBytesFull: 16, WritebackBytesDirty: 10}
	if s.BacksideTransactions() != 6 {
		t.Errorf("transactions = %d, want 6", s.BacksideTransactions())
	}
	if s.BacksideBytes(false) != 60 {
		t.Errorf("bytes full = %d, want 60", s.BacksideBytes(false))
	}
	if s.BacksideBytes(true) != 54 {
		t.Errorf("bytes subblock = %d, want 54", s.BacksideBytes(true))
	}
}

func TestReset(t *testing.T) {
	c := MustNew(cfg8k16(WriteBack, FetchOnWrite))
	c.Access(wr(0x100, 8))
	c.Reset()
	if c.ResidentLines() != 0 {
		t.Error("lines survive Reset")
	}
	if c.Stats() != (Stats{}) {
		t.Error("stats survive Reset")
	}
}

func TestAccessTraceAndInstructionCount(t *testing.T) {
	c := MustNew(cfg8k16(WriteBack, FetchOnWrite))
	tr := &trace.Trace{Events: []trace.Event{
		{Addr: 0x100, Size: 4, Kind: trace.Read, Gap: 9},
		{Addr: 0x104, Size: 4, Kind: trace.Write, Gap: 4},
	}}
	c.AccessTrace(tr)
	if got := c.Stats().Instructions; got != 15 {
		t.Errorf("instructions = %d, want 15", got)
	}
}

func TestStringer(t *testing.T) {
	c := MustNew(cfg8k16(WriteBack, FetchOnWrite))
	if c.String() == "" || c.Config() != cfg8k16(WriteBack, FetchOnWrite) {
		t.Error("String/Config accessors broken")
	}
}

func TestLineSize64FullMask(t *testing.T) {
	c := MustNew(Config{Size: 1 << 10, LineSize: 64, Assoc: 1,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite})
	c.Access(rd(0x0, 4))
	if st := c.Probe(0x0); st.Valid != ^uint64(0) {
		t.Errorf("64B line valid mask %#x", st.Valid)
	}
}

// TestLineCrossingSpans pins the slow path taken when an access spans
// two cache lines (the fast path in Access covers everything else):
// each line is probed independently but the event counts once.
func TestLineCrossingSpans(t *testing.T) {
	cfg := Config{Size: 1 << 10, LineSize: 4, Assoc: 1,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite}

	c := MustNew(cfg)
	c.Access(rd(0x104, 8)) // spans lines 0x104 and 0x108
	s := c.Stats()
	if s.ReadMissEvents != 1 || s.Fetches != 2 || s.FetchBytes != 8 {
		t.Errorf("crossing read: events=%d fetches=%d bytes=%d, want 1/2/8",
			s.ReadMissEvents, s.Fetches, s.FetchBytes)
	}

	c = MustNew(cfg)
	c.Access(wr(0x104, 8))
	s = c.Stats()
	if s.WriteMissEvents != 1 || s.FetchedWriteMisses != 1 || s.Fetches != 2 {
		t.Errorf("crossing write: events=%d fetched=%d fetches=%d, want 1/1/2",
			s.WriteMissEvents, s.FetchedWriteMisses, s.Fetches)
	}
	if a, b := c.Probe(0x104), c.Probe(0x108); a.Dirty != 0xf || b.Dirty != 0xf {
		t.Errorf("crossing write dirty masks %#x %#x, want 0xf 0xf", a.Dirty, b.Dirty)
	}

	// Unaligned odd-size crossing: bytes [2,4) of one line, [4,6) of the
	// next — partial dirty masks on both sides.
	c = MustNew(cfg)
	c.Access(trace.Event{Addr: 0x102, Size: 4, Kind: trace.Write})
	if a, b := c.Probe(0x100), c.Probe(0x104); a.Dirty != 0xc || b.Dirty != 0x3 {
		t.Errorf("unaligned crossing dirty masks %#x %#x, want 0xc 0x3", a.Dirty, b.Dirty)
	}
}

// TestDowngrade: the coherence M→S transition flushes dirty bytes
// through the backside but keeps the line valid and readable.
func TestDowngrade(t *testing.T) {
	c := MustNew(Config{Size: 1 << 10, LineSize: 16, Assoc: 1,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite})
	rec := &seqBackside{}
	c.SetBackside(rec)
	c.Access(trace.Event{Addr: 0x100, Size: 4, Kind: trace.Write})
	lines, dirty := c.Downgrade(0x100, 16)
	if lines != 1 || dirty != 4 {
		t.Fatalf("downgrade = (%d lines, %d dirty), want (1, 4)", lines, dirty)
	}
	st := c.Probe(0x100)
	if !st.Present || st.Dirty != 0 {
		t.Fatalf("after downgrade: %+v, want present and clean", st)
	}
	if c.Stats().Writebacks != 1 || rec.writebacks != 1 {
		t.Errorf("writebacks = %d (backside %d), want 1", c.Stats().Writebacks, rec.writebacks)
	}
	// Idempotent: a second downgrade still sees the line but flushes
	// nothing; a downgrade of an absent line sees nothing.
	if lines, dirty = c.Downgrade(0x100, 16); lines != 1 || dirty != 0 {
		t.Errorf("second downgrade = (%d, %d), want (1, 0)", lines, dirty)
	}
	if lines, dirty = c.Downgrade(0x900, 16); lines != 0 || dirty != 0 {
		t.Errorf("absent downgrade = (%d, %d), want (0, 0)", lines, dirty)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks after idempotent downgrades = %d, want 1", c.Stats().Writebacks)
	}
}

// TestSnoopUpdate: a write-update protocol's remote write refreshes a
// resident copy — written bytes become valid, dirty claims on them are
// released — and misses absent lines without side effects.
func TestSnoopUpdate(t *testing.T) {
	c := MustNew(Config{Size: 1 << 10, LineSize: 16, Assoc: 1,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite})
	c.Access(trace.Event{Addr: 0x200, Size: 8, Kind: trace.Write})
	before := c.Probe(0x200)
	if before.Dirty == 0 {
		t.Fatal("setup: line should be dirty")
	}
	if !c.SnoopUpdate(0x200, 4) {
		t.Fatal("resident line not updated")
	}
	after := c.Probe(0x200)
	if after.Dirty != before.Dirty&^0xf {
		t.Errorf("dirty = %#x, want %#x (low word claim released)", after.Dirty, before.Dirty&^0xf)
	}
	if after.Valid&0xf != 0xf {
		t.Errorf("updated bytes not valid: %#x", after.Valid)
	}
	if c.SnoopUpdate(0x900, 4) {
		t.Error("absent line reported updated")
	}
}

// TestVisitResident: every valid line is reported exactly once with
// its reconstructed address.
func TestVisitResident(t *testing.T) {
	c := MustNew(Config{Size: 1 << 10, LineSize: 16, Assoc: 2,
		WriteHit: WriteBack, WriteMiss: FetchOnWrite})
	c.Access(trace.Event{Addr: 0x100, Size: 4, Kind: trace.Write})
	c.Access(trace.Event{Addr: 0x300, Size: 4, Kind: trace.Read})
	seen := map[uint32]LineState{}
	c.VisitResident(func(addr uint32, st LineState) { seen[addr] = st })
	if len(seen) != 2 {
		t.Fatalf("visited %d lines, want 2: %+v", len(seen), seen)
	}
	if st, ok := seen[0x100]; !ok || st.Dirty == 0 {
		t.Errorf("line 0x100: %+v, want present dirty", st)
	}
	if st, ok := seen[0x300]; !ok || st.Dirty != 0 {
		t.Errorf("line 0x300: %+v, want present clean", st)
	}
}
