package cache

import (
	"testing"

	"cachewrite/internal/trace"
)

// goldenTrace is a fixed LCG-driven mixed trace. The expected values in
// TestGoldenRegression pin the simulator's exact behaviour on it; any
// change to hit/miss/eviction semantics shows up as a diff here even if
// all the behavioural unit tests still pass.
func goldenTrace() *trace.Trace {
	tr := &trace.Trace{Name: "golden"}
	state := uint32(12345)
	next := func() uint32 { state = state*1664525 + 1013904223; return state }
	for i := 0; i < 20000; i++ {
		r := next()
		addr := (r % (1 << 16)) &^ 7
		size := uint8(4)
		if r&1 == 0 {
			size = 8
		}
		k := trace.Read
		if r%3 == 0 {
			k = trace.Write
		}
		tr.Append(trace.Event{Addr: addr, Size: size, Gap: uint16(r % 7), Kind: k})
	}
	return tr
}

func TestGoldenRegression(t *testing.T) {
	type golden struct {
		cfg                                  Config
		readMiss, wMiss, fetched, eliminated uint64
		toDirty, fetches, wbs, flushWBs, wts uint64
	}
	cases := []golden{
		{Config{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: WriteBack, WriteMiss: FetchOnWrite},
			11657, 5936, 5936, 0, 315, 17593, 6290, 195, 0},
		{Config{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: WriteBack, WriteMiss: WriteValidate},
			11962, 5936, 0, 5936, 315, 11962, 6290, 195, 0},
		{Config{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: WriteThrough, WriteMiss: WriteAround},
			11668, 5980, 0, 5980, 0, 11668, 0, 0, 6800},
		{Config{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: WriteThrough, WriteMiss: WriteInvalidate},
			12140, 6207, 0, 6207, 0, 12140, 0, 0, 6800},
		{Config{Size: 4 << 10, LineSize: 32, Assoc: 2, WriteHit: WriteBack, WriteMiss: WriteValidate},
			12607, 6398, 0, 6398, 150, 12607, 6603, 47, 0},
	}
	tr := goldenTrace()
	for _, g := range cases {
		c := MustNew(g.cfg)
		c.AccessTrace(tr)
		c.Flush()
		s := c.Stats()
		if s.ReadMissEvents != g.readMiss || s.WriteMissEvents != g.wMiss ||
			s.FetchedWriteMisses != g.fetched || s.EliminatedWriteMisses != g.eliminated ||
			s.WritesToDirtyLines != g.toDirty || s.Fetches != g.fetches ||
			s.Writebacks != g.wbs || s.FlushWritebacks != g.flushWBs ||
			s.WriteThroughs != g.wts {
			t.Errorf("%s drifted:\n got  rm=%d wm=%d f=%d el=%d td=%d fe=%d wb=%d fwb=%d wt=%d\n want rm=%d wm=%d f=%d el=%d td=%d fe=%d wb=%d fwb=%d wt=%d",
				g.cfg,
				s.ReadMissEvents, s.WriteMissEvents, s.FetchedWriteMisses, s.EliminatedWriteMisses,
				s.WritesToDirtyLines, s.Fetches, s.Writebacks, s.FlushWritebacks, s.WriteThroughs,
				g.readMiss, g.wMiss, g.fetched, g.eliminated,
				g.toDirty, g.fetches, g.wbs, g.flushWBs, g.wts)
		}
	}
}

// TestGoldenCrossPolicyConsistency: on the fixed trace, policy-
// independent quantities must agree across configurations sharing a
// geometry: the tag-level write-miss opportunity count differs only
// because resident contents differ, but total events are identical.
func TestGoldenCrossPolicyConsistency(t *testing.T) {
	tr := goldenTrace()
	var refStats *Stats
	for _, p := range WriteMissPolicies() {
		c := MustNew(Config{Size: 8 << 10, LineSize: 16, Assoc: 1,
			WriteHit: WriteBack, WriteMiss: p})
		c.AccessTrace(tr)
		s := c.Stats()
		if refStats == nil {
			refStats = &s
			continue
		}
		if s.Reads != refStats.Reads || s.Writes != refStats.Writes ||
			s.Instructions != refStats.Instructions {
			t.Errorf("%s: event totals differ across policies", p)
		}
	}
}
