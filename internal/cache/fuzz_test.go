package cache

import (
	"testing"

	"cachewrite/internal/trace"
)

// FuzzAccess: arbitrary access sequences must never panic the
// simulator, and the core accounting invariants must hold afterwards.
// The fuzzer drives one cache per policy with the same decoded events.
func FuzzAccess(f *testing.F) {
	f.Add(uint32(0x100), uint8(4), uint8(0), uint8(0))
	f.Add(uint32(0xfffffff8), uint8(8), uint8(1), uint8(3))
	f.Add(uint32(7), uint8(3), uint8(1), uint8(2)) // misaligned, odd size
	f.Add(uint32(0), uint8(255), uint8(0), uint8(1))

	cfgs := []Config{
		{Size: 512, LineSize: 16, Assoc: 1, WriteHit: WriteBack, WriteMiss: FetchOnWrite},
		{Size: 512, LineSize: 16, Assoc: 2, WriteHit: WriteBack, WriteMiss: WriteValidate},
		{Size: 512, LineSize: 16, Assoc: 1, WriteHit: WriteThrough, WriteMiss: WriteAround},
		{Size: 512, LineSize: 16, Assoc: 1, WriteHit: WriteThrough, WriteMiss: WriteInvalidate},
		{Size: 512, LineSize: 64, Assoc: 1, WriteHit: WriteBack, WriteMiss: WriteValidate, ValidGranularity: 8},
	}

	f.Fuzz(func(t *testing.T, addr uint32, size, kind, gap uint8) {
		if size == 0 {
			size = 1
		}
		e := trace.Event{Addr: addr, Size: size, Gap: uint16(gap), Kind: trace.Kind(kind % 2)}
		for _, cfg := range cfgs {
			c := MustNew(cfg)
			// A short prefix to populate state, then the fuzzed event,
			// then re-access to exercise hit paths.
			c.Access(trace.Event{Addr: addr &^ 63, Size: 4, Kind: trace.Read})
			c.Access(e)
			c.Access(e)
			s := c.Stats()
			if s.Reads+s.Writes != 3 {
				t.Fatalf("%s: event count %d", cfg, s.Reads+s.Writes)
			}
			if s.FetchedWriteMisses+s.EliminatedWriteMisses != s.WriteMissEvents {
				t.Fatalf("%s: write misses do not partition", cfg)
			}
			c.Flush()
			if c.ResidentLines() != 0 {
				t.Fatalf("%s: flush left residents", cfg)
			}
		}
	})
}
