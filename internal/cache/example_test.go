package cache_test

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
)

// Example_writeValidate demonstrates the paper's write-validate policy:
// a write miss allocates the line without fetching it, and only a later
// read of the never-written bytes pays a fetch.
func Example_writeValidate() {
	c := cache.MustNew(cache.Config{
		Size: 8 << 10, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.WriteValidate,
	})

	// An 8-byte store to an empty cache: no fetch.
	c.Access(trace.Event{Addr: 0x1000, Size: 8, Kind: trace.Write})
	fmt.Println("fetches after write miss:", c.Stats().Fetches)

	// Reading the written half hits.
	c.Access(trace.Event{Addr: 0x1000, Size: 8, Kind: trace.Read})
	fmt.Println("read misses after reading written bytes:", c.Stats().ReadMissEvents)

	// Reading the invalid half is the induced miss the paper charges
	// against the policy.
	c.Access(trace.Event{Addr: 0x1008, Size: 8, Kind: trace.Read})
	fmt.Println("read misses after reading unwritten bytes:", c.Stats().ReadMissEvents)

	// Output:
	// fetches after write miss: 0
	// read misses after reading written bytes: 0
	// read misses after reading unwritten bytes: 1
}

// Example_writesToDirty shows the Figs 1-2 metric: the share of writes
// landing on already-dirty lines, which is exactly the write traffic a
// write-back cache removes.
func Example_writesToDirty() {
	c := cache.MustNew(cache.Config{
		Size: 8 << 10, LineSize: 16, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite,
	})
	for i := 0; i < 4; i++ {
		c.Access(trace.Event{Addr: 0x2000 + uint32(i*4), Size: 4, Kind: trace.Write})
	}
	s := c.Stats()
	fmt.Printf("writes: %d, to already dirty lines: %d (%.0f%%)\n",
		s.Writes, s.WritesToDirtyLines, 100*s.WritesToDirtyFraction())
	// Output:
	// writes: 4, to already dirty lines: 3 (75%)
}
