package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cachewrite/internal/trace"
)

// randomTrace builds a reproducible trace with tunable locality: small
// address pools re-reference lines, exercising hits, misses, evictions
// and write-miss policies.
func randomTrace(seed int64, n int) *trace.Trace {
	r := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: "random"}
	// A mix of hot and cold regions.
	hot := make([]uint32, 32)
	for i := range hot {
		hot[i] = uint32(r.Intn(1<<14)) &^ 7
	}
	for i := 0; i < n; i++ {
		var addr uint32
		if r.Intn(3) > 0 {
			addr = hot[r.Intn(len(hot))]
		} else {
			addr = uint32(r.Intn(1<<20)) &^ 7
		}
		size := uint8(4)
		if r.Intn(2) == 0 {
			size = 8
		}
		addr &^= uint32(size) - 1
		k := trace.Read
		if r.Intn(3) == 0 {
			k = trace.Write
		}
		tr.Append(trace.Event{Addr: addr, Size: size, Gap: uint16(r.Intn(8)), Kind: k})
	}
	return tr
}

// allConfigs enumerates a representative config cross-product.
func propConfigs() []Config {
	var cfgs []Config
	for _, size := range []int{256, 1 << 10, 8 << 10} {
		for _, line := range []int{4, 16, 64} {
			for _, assoc := range []int{1, 2, 4} {
				for _, hit := range []WriteHitPolicy{WriteThrough, WriteBack} {
					for _, miss := range []WriteMissPolicy{FetchOnWrite, WriteValidate, WriteAround, WriteInvalidate} {
						c := Config{Size: size, LineSize: line, Assoc: assoc, WriteHit: hit, WriteMiss: miss}
						if c.Validate() == nil {
							cfgs = append(cfgs, c)
						}
						// Variant coverage: sector fetch + coarse valid bits.
						c.ValidGranularity = 8
						c.SectorFetch = true
						if c.Validate() == nil {
							cfgs = append(cfgs, c)
						}
					}
				}
			}
		}
	}
	return cfgs
}

// TestInvariantsAcrossConfigs checks the core accounting invariants on
// every representative configuration.
func TestInvariantsAcrossConfigs(t *testing.T) {
	tr := randomTrace(1, 4000)
	ts := tr.Stats()
	for _, cfg := range propConfigs() {
		c := MustNew(cfg)
		c.AccessTrace(tr)

		s := c.Stats()
		if s.Reads != ts.Reads || s.Writes != ts.Writes {
			t.Fatalf("%s: event counts drifted", cfg)
		}
		if s.ReadMissEvents > s.Reads {
			t.Fatalf("%s: more read misses than reads", cfg)
		}
		if s.WriteMissEvents > s.Writes {
			t.Fatalf("%s: more write misses than writes", cfg)
		}
		if s.FetchedWriteMisses+s.EliminatedWriteMisses != s.WriteMissEvents {
			t.Fatalf("%s: write misses don't partition: %d+%d != %d",
				cfg, s.FetchedWriteMisses, s.EliminatedWriteMisses, s.WriteMissEvents)
		}
		if s.WriteHitEvents+s.WriteMissEvents != s.Writes {
			t.Fatalf("%s: write events don't partition", cfg)
		}
		if s.WritesToDirtyLines > s.WriteHitEvents {
			t.Fatalf("%s: writes-to-dirty exceeds write hits", cfg)
		}
		if cfg.WriteMiss == FetchOnWrite && s.EliminatedWriteMisses != 0 {
			t.Fatalf("%s: fetch-on-write eliminated misses", cfg)
		}
		if cfg.WriteMiss != FetchOnWrite && s.FetchedWriteMisses != 0 &&
			!(cfg.WriteMiss == WriteValidate && cfg.Granularity() > 1) {
			// (Write-validate with coarse valid bits legitimately falls
			// back to fetch-on-write for writes narrower than a
			// sub-block.)
			t.Fatalf("%s: no-fetch policy fetched on write miss", cfg)
		}
		if s.DirtyVictims > s.Victims || s.VictimDirtyBytes > s.VictimBytes {
			t.Fatalf("%s: victim accounting inconsistent", cfg)
		}
		if s.WritebackBytesDirty > s.WritebackBytesFull {
			t.Fatalf("%s: dirty write-back bytes exceed full", cfg)
		}
		if cfg.WriteHit == WriteThrough {
			if c.DirtyLines() != 0 {
				t.Fatalf("%s: write-through cache holds dirty lines", cfg)
			}
			if s.Writebacks != 0 {
				t.Fatalf("%s: write-through cache wrote back", cfg)
			}
			if s.WriteThroughs < s.Writes {
				// Every write produces at least one word transaction
				// (line-crossing writes produce more).
				t.Fatalf("%s: write-through transactions %d < writes %d", cfg, s.WriteThroughs, s.Writes)
			}
		}
		if cfg.WriteMiss != WriteInvalidate && s.Invalidates != 0 {
			t.Fatalf("%s: invalidates without write-invalidate", cfg)
		}
		if cfg.Assoc > 1 && cfg.WriteMiss == WriteInvalidate {
			// Documented: degenerates safely; nothing more to check here.
			_ = s
		}
		resident := c.ResidentLines()
		if resident > cfg.Size/cfg.LineSize {
			t.Fatalf("%s: %d resident lines exceed capacity", cfg, resident)
		}
		c.Flush()
		if c.ResidentLines() != 0 || c.DirtyLines() != 0 {
			t.Fatalf("%s: flush left lines resident", cfg)
		}
		s = c.Stats()
		if s.FlushVictims != uint64(resident) {
			t.Fatalf("%s: flush victims %d != resident %d", cfg, s.FlushVictims, resident)
		}
	}
}

// TestMissCountsIndependentOfHitPolicy: the fetch-triggering miss count
// of a configuration depends only on geometry and write-miss policy —
// never on write-through vs write-back. (This is why the paper's miss
// comparisons need not specify the hit policy.)
func TestMissCountsIndependentOfHitPolicy(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed, 2000)
		for _, miss := range []WriteMissPolicy{FetchOnWrite, WriteValidate} {
			wt := MustNew(Config{Size: 1 << 10, LineSize: 16, Assoc: 1, WriteHit: WriteThrough, WriteMiss: miss})
			wb := MustNew(Config{Size: 1 << 10, LineSize: 16, Assoc: 1, WriteHit: WriteBack, WriteMiss: miss})
			wt.AccessTrace(tr)
			wb.AccessTrace(tr)
			if wt.Stats().Misses() != wb.Stats().Misses() ||
				wt.Stats().ReadMissEvents != wb.Stats().ReadMissEvents {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestFig17PartialOrderProperty: the paper's Fig 17 fetch-traffic
// partial order holds on random traces for direct-mapped caches:
// misses(WV) <= misses(WI), misses(WA) <= misses(WI),
// misses(WI) <= misses(FOW).
func TestFig17PartialOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed, 3000)
		misses := map[WriteMissPolicy]uint64{}
		for _, p := range WriteMissPolicies() {
			hit := WriteBack
			if p == WriteAround || p == WriteInvalidate {
				hit = WriteThrough
			}
			c := MustNew(Config{Size: 512, LineSize: 16, Assoc: 1, WriteHit: hit, WriteMiss: p})
			c.AccessTrace(tr)
			misses[p] = c.Stats().Misses()
		}
		return misses[WriteValidate] <= misses[WriteInvalidate] &&
			misses[WriteAround] <= misses[WriteInvalidate] &&
			misses[WriteInvalidate] <= misses[FetchOnWrite]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteValidateNeverWorseOnWrites: write-validate never fetches on
// writes, so its fetch count is bounded by fetch-on-write's.
func TestWriteValidateFetchBound(t *testing.T) {
	f := func(seed int64) bool {
		tr := randomTrace(seed, 2000)
		fow := MustNew(Config{Size: 1 << 10, LineSize: 16, Assoc: 2, WriteHit: WriteBack, WriteMiss: FetchOnWrite})
		wv := MustNew(Config{Size: 1 << 10, LineSize: 16, Assoc: 2, WriteHit: WriteBack, WriteMiss: WriteValidate})
		fow.AccessTrace(tr)
		wv.AccessTrace(tr)
		return wv.Stats().Fetches <= fow.Stats().Fetches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDirtyImpliesValid: a dirty byte is always a valid byte.
func TestDirtyImpliesValid(t *testing.T) {
	tr := randomTrace(7, 5000)
	for _, cfg := range propConfigs() {
		c := MustNew(cfg)
		for _, e := range tr.Events {
			c.Access(e)
		}
		for i := range c.lines {
			l := &c.lines[i]
			if l.dirty&^l.valid != 0 {
				t.Fatalf("%s: dirty bits %#x outside valid %#x", cfg, l.dirty, l.valid)
			}
		}
	}
}

// TestNoDuplicateTagsInSet: a tag appears at most once per set.
func TestNoDuplicateTagsInSet(t *testing.T) {
	tr := randomTrace(11, 5000)
	cfg := Config{Size: 1 << 10, LineSize: 16, Assoc: 4, WriteHit: WriteBack, WriteMiss: WriteValidate}
	c := MustNew(cfg)
	c.AccessTrace(tr)
	sets := cfg.Sets()
	for set := 0; set < sets; set++ {
		seen := map[uint32]bool{}
		for w := 0; w < cfg.Assoc; w++ {
			l := c.lines[set*cfg.Assoc+w]
			if l.valid == 0 {
				continue
			}
			if seen[l.tag] {
				t.Fatalf("set %d holds tag %#x twice", set, l.tag)
			}
			seen[l.tag] = true
		}
	}
}
