package cache

import (
	"reflect"
	"testing"

	"cachewrite/internal/trace"
)

// kernelTrace is a seeded mixed trace with hot/cold regions, reads and
// writes, several sizes, and (for small lines) line-crossing accesses —
// every path the kernels discriminate on.
func kernelTrace(n int) *trace.Trace {
	tr := &trace.Trace{Name: "kerneltest"}
	state := uint32(424243)
	next := func() uint32 { state = state*1664525 + 1013904223; return state }
	for i := 0; i < n; i++ {
		r := next()
		addr := (r % (1 << 15)) &^ 3
		size := uint8(4)
		switch r % 5 {
		case 0:
			size = 8
		case 1:
			size = 3 // unaligned odd size: exercises the crossing fallback
		case 2:
			size = 1
		}
		k := trace.Read
		if r%3 == 0 {
			k = trace.Write
		}
		tr.Append(trace.Event{Addr: addr, Size: size, Gap: uint16(r % 5), Kind: k})
	}
	return tr
}

// seqBackside records the full back-side call sequence so kernel
// equivalence covers not just final counters but the exact traffic
// stream (order, addresses, sizes) a second level would observe.
type seqBackside struct {
	fetches, writebacks, words int
	sum                        uint64
}

func (b *seqBackside) mix(vals ...uint64) {
	for _, v := range vals {
		b.sum = b.sum*1099511628211 + v
	}
}
func (b *seqBackside) FetchLine(addr uint32, size int) {
	b.fetches++
	b.mix(1, uint64(addr), uint64(size))
}
func (b *seqBackside) WritebackLine(addr uint32, size, dirtyBytes int) {
	b.writebacks++
	b.mix(2, uint64(addr), uint64(size), uint64(dirtyBytes))
}
func (b *seqBackside) WriteWord(addr uint32, size uint8) {
	b.words++
	b.mix(3, uint64(addr), uint64(size))
}
func (b *seqBackside) ObserveVictim(addr uint32, size, dirtyBytes int) {
	b.mix(4, uint64(addr), uint64(size), uint64(dirtyBytes))
}

// kernelConfigs enumerates the extended class grid: every write-hit ×
// write-miss policy at direct-mapped, 2-way and 4-way geometries,
// several line sizes, plus sub-block and sector variants that must
// classify as generic.
func kernelConfigs() []Config {
	var cfgs []Config
	add := func(c Config) {
		if c.Validate() == nil {
			cfgs = append(cfgs, c)
		}
	}
	for _, hit := range []WriteHitPolicy{WriteThrough, WriteBack} {
		for _, miss := range WriteMissPolicies() {
			for _, line := range []int{4, 16, 64} {
				for _, assoc := range []int{1, 2, 4} {
					for _, repl := range []Replacement{LRU, FIFO, Random} {
						add(Config{Size: 4 << 10, LineSize: line, Assoc: assoc,
							WriteHit: hit, WriteMiss: miss, Replacement: repl})
					}
				}
				// Generic-class variants: sub-block granularity and
				// sector fetch.
				add(Config{Size: 4 << 10, LineSize: line, Assoc: 1,
					WriteHit: hit, WriteMiss: miss, ValidGranularity: 4})
				add(Config{Size: 4 << 10, LineSize: line, Assoc: 2,
					WriteHit: hit, WriteMiss: miss, ValidGranularity: 4, SectorFetch: line >= 16})
			}
			if miss == WriteValidate {
				add(Config{Size: 4 << 10, LineSize: 16, Assoc: 1,
					WriteHit: WriteBack, WriteMiss: miss, WVMissWriteThrough: true})
			}
		}
	}
	return cfgs
}

// TestKernelClassSelection pins the kernel-selection rules.
func TestKernelClassSelection(t *testing.T) {
	cases := []struct {
		cfg  Config
		want kernelClass
	}{
		{Config{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: WriteBack, WriteMiss: FetchOnWrite}, kernelDirect},
		{Config{Size: 8 << 10, LineSize: 16, Assoc: 2, WriteHit: WriteBack, WriteMiss: FetchOnWrite}, kernelAssoc},
		{Config{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: WriteBack, WriteMiss: WriteValidate, ValidGranularity: 4}, kernelGeneric},
		{Config{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: WriteBack, WriteMiss: FetchOnWrite, ValidGranularity: 4, SectorFetch: true}, kernelGeneric},
		{Config{Size: 8 << 10, LineSize: 16, Assoc: 4, WriteHit: WriteThrough, WriteMiss: WriteAround, ValidGranularity: 1}, kernelAssoc},
	}
	for _, tc := range cases {
		c := MustNew(tc.cfg)
		if c.class != tc.want {
			t.Errorf("%s: class %d, want %d", tc.cfg, c.class, tc.want)
		}
	}
}

// TestKernelEquivalenceMatrix drives every kernel-grid configuration
// through the per-event Access path and the batch kernel path and
// requires identical stats, identical probe state, and an identical
// back-side call sequence.
func TestKernelEquivalenceMatrix(t *testing.T) {
	tr := kernelTrace(30000)
	const window = 512 // several decode windows, odd tail included
	for _, cfg := range kernelConfigs() {
		ref, bref := MustNew(cfg), &seqBackside{}
		got, bgot := MustNew(cfg), &seqBackside{}
		ref.SetBackside(bref)
		got.SetBackside(bgot)

		ref.AccessTrace(tr)

		dec := make([]Decoded, window)
		for start := 0; start < tr.Len(); start += window {
			end := start + window
			if end > tr.Len() {
				end = tr.Len()
			}
			events := tr.Events[start:end]
			got.DecodeBatch(events, dec)
			got.AccessBatch(events, dec)
		}

		ref.Flush()
		got.Flush()
		if !reflect.DeepEqual(got.Stats(), ref.Stats()) {
			t.Errorf("%s (class %d): batch kernel stats differ:\n batch %+v\n ref   %+v",
				cfg, got.class, got.Stats(), ref.Stats())
		}
		if *bgot != *bref {
			t.Errorf("%s (class %d): back-side sequence differs:\n batch %+v\n ref   %+v",
				cfg, got.class, *bgot, *bref)
		}
	}
}

// TestKernelGeometrySharing pins that DecodeBatch output from one gang
// member is valid for any member with an equal Geometry() key — the
// contract the sweep engine's per-geometry decode relies on.
func TestKernelGeometrySharing(t *testing.T) {
	tr := kernelTrace(20000)
	// 4KB direct and 8KB 2-way share (lineShift, setShift): 256 sets of
	// 16B lines each.
	a := MustNew(Config{Size: 4 << 10, LineSize: 16, Assoc: 1, WriteHit: WriteBack, WriteMiss: WriteValidate})
	b := MustNew(Config{Size: 8 << 10, LineSize: 16, Assoc: 2, WriteHit: WriteThrough, WriteMiss: WriteAround})
	if a.Geometry() != b.Geometry() {
		t.Fatalf("geometry keys differ: %#x vs %#x", a.Geometry(), b.Geometry())
	}
	ref := MustNew(b.Config())
	ref.AccessTrace(tr)
	ref.Flush()

	dec := make([]Decoded, tr.Len())
	a.DecodeBatch(tr.Events, dec) // decoded by the *other* member
	b.AccessBatch(tr.Events, dec)
	b.Flush()
	if !reflect.DeepEqual(b.Stats(), ref.Stats()) {
		t.Errorf("shared-geometry decode: stats differ:\n got %+v\n ref %+v", b.Stats(), ref.Stats())
	}
}

// TestKernelZeroAlloc pins the zero-allocation contract for decode and
// for every kernel class, mirroring TestAccessZeroAlloc.
func TestKernelZeroAlloc(t *testing.T) {
	tr := kernelTrace(4000)
	classes := []Config{
		{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: WriteBack, WriteMiss: WriteValidate},
		{Size: 8 << 10, LineSize: 16, Assoc: 2, WriteHit: WriteThrough, WriteMiss: WriteAround},
		{Size: 8 << 10, LineSize: 16, Assoc: 1, WriteHit: WriteBack, WriteMiss: FetchOnWrite, ValidGranularity: 4},
	}
	dec := make([]Decoded, tr.Len())
	for _, cfg := range classes {
		c := MustNew(cfg)
		c.DecodeBatch(tr.Events, dec)
		// Warm once so steady state is measured.
		c.AccessBatch(tr.Events, dec)
		if av := testing.AllocsPerRun(10, func() { c.DecodeBatch(tr.Events, dec) }); av != 0 {
			t.Errorf("%s: DecodeBatch allocates %v allocs/run", cfg, av)
		}
		if av := testing.AllocsPerRun(10, func() { c.AccessBatch(tr.Events, dec) }); av != 0 {
			t.Errorf("%s (class %d): AccessBatch allocates %v allocs/run", cfg, c.class, av)
		}
	}
}
