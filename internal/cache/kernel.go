package cache

import (
	"cachewrite/internal/trace"
)

// This file implements the specialized gang kernels: batch entry
// points that replay a pre-decoded window of trace events through a
// per-config-class fast path instead of the fully general Access
// machinery. The gang sweep engine (internal/sweep) decodes each
// pulse window once per address geometry and hands the decoded batch
// to every gang member sharing that geometry, amortizing the per-event
// address arithmetic across the whole gang — the same batched-dispatch
// idea DEW uses for fast L1 simulation.
//
// Three kernel classes exist:
//
//   - kernelDirect: direct-mapped, per-byte valid bits, whole-line
//     fills. The tag probe inlines to a single compare, there is no
//     way-search or victim-selection loop, and the sub-block
//     (inward/outward mask) machinery vanishes because granularity-1
//     masks equal the plain byte mask. This covers the paper's
//     dominant configuration class (every figure sweep config).
//   - kernelAssoc: set-associative, per-byte valid bits, whole-line
//     fills. Keeps the way search and replacement policy but reuses
//     the decoded tag/mask and skips the span walker.
//   - kernelGeneric: everything else (sub-block valid granularity,
//     sector fetch). Falls back to the per-event Access path.
//
// Every kernel is bit-identical to replaying the same events through
// Access: TestKernelGoldenEquivalence pins that for the full paper
// config matrix and TestKernelEquivalenceMatrix for the extended
// policy × geometry × class grid, including back-side call sequences.

// kernelClass selects the batch kernel for a configuration. It is
// computed once in New — kernel selection is per-gang-member setup
// work, never per-event work.
type kernelClass uint8

const (
	// kernelGeneric replays the batch through the per-event Access
	// path: sub-block granularity and sector caches keep the fully
	// general span machinery.
	kernelGeneric kernelClass = iota
	// kernelDirect is the direct-mapped no-sub-block fast path.
	kernelDirect
	// kernelAssoc is the set-associative no-sub-block path.
	kernelAssoc
)

// classifyConfig picks the most specialized kernel that is exactly
// equivalent to the generic path for cfg.
func classifyConfig(cfg Config) kernelClass {
	if cfg.Granularity() != 1 || cfg.SectorFetch {
		return kernelGeneric
	}
	if cfg.Assoc == 1 {
		return kernelDirect
	}
	return kernelAssoc
}

// Decoded is one event's geometry-dependent pre-decode: the line
// number, the tag, and the requested-byte mask. A zero mask marks an
// event the kernels must not handle inline (line-crossing or
// zero-size); they fall back to the generic Access path for it.
// Decoded values are shared by every cache with the same Geometry().
type Decoded struct {
	lineNum uint32
	tag     uint32
	mask    uint64
}

// Geometry returns a key identifying the cache's address-decode
// geometry. Two caches with equal keys decode any address to the same
// (line number, set index, tag, byte mask) regardless of
// associativity, policies or granularity, so one DecodeBatch output
// serves them all.
func (c *Cache) Geometry() uint64 {
	return uint64(c.lineShift)<<32 | uint64(c.setShift)
}

// DecodeBatch pre-decodes events for this cache's geometry into dst,
// which must be at least len(events) long. The decode depends only on
// Geometry(), so gang members sharing a geometry decode once and
// replay the same batch.
//
//simlint:hotpath
func (c *Cache) DecodeBatch(events []trace.Event, dst []Decoded) {
	dst = dst[:len(events)]
	lineShift, setShift := c.lineShift, c.setShift
	lineMask, lineSize := c.lineMask, c.lineSize
	for i, e := range events {
		lineNum := e.Addr >> lineShift
		d := Decoded{lineNum: lineNum, tag: lineNum >> setShift}
		off := e.Addr & lineMask
		if n := uint32(e.Size); n != 0 && off+n <= lineSize {
			// n is in [1,64] here, and a Go shift by 64 on uint64 yields
			// 0, so (1<<n)-1 is the full mask when n == 64.
			d.mask = ((uint64(1) << n) - 1) << off
		}
		dst[i] = d
	}
}

// AccessBatch replays a window of events through the kernel selected
// for this configuration at construction time. dec must be the
// DecodeBatch output of a cache with the same Geometry() and at least
// len(events) long. The result is bit-identical to calling Access on
// each event in order.
//
//simlint:hotpath
func (c *Cache) AccessBatch(events []trace.Event, dec []Decoded) {
	switch c.class {
	case kernelDirect:
		c.accessBatchDirect(events, dec)
	case kernelAssoc:
		c.accessBatchAssoc(events, dec)
	default:
		for _, e := range events {
			c.Access(e)
		}
	}
}

// accessBatchDirect is the direct-mapped granularity-1 kernel: one tag
// compare per event, no way loops, no sub-block masks. Events whose
// decoded mask is zero (line-crossing, zero-size) take the generic
// path, which handles multi-span accounting.
//
//simlint:hotpath
func (c *Cache) accessBatchDirect(events []trace.Event, dec []Decoded) {
	dec = dec[:len(events)]
	for i, e := range events {
		d := dec[i]
		if d.mask == 0 {
			c.Access(e)
			continue
		}
		c.stats.Instructions += e.Instructions()
		set := int(d.lineNum & c.setMask)
		l := &c.lines[set]
		c.tick++
		hit := l.valid != 0 && l.tag == d.tag

		if e.Kind == trace.Read {
			c.stats.Reads++
			if hit {
				if l.valid&d.mask == d.mask {
					l.lru = c.tick
					continue
				}
				// Tag hit with invalid requested bytes (write-validate
				// residue): whole-line fill, dirty bytes kept.
				c.stats.ReadMissEvents++
				c.stats.PartialValidReadMisses++
				c.fetchLine(d.lineNum << c.lineShift)
				l.valid = c.fullMask
				l.lru = c.tick
				continue
			}
			c.stats.ReadMissEvents++
			c.evict(set, l)
			*l = line{tag: d.tag, valid: c.fullMask, lru: c.tick, born: c.tick}
			c.fetchLine(d.lineNum << c.lineShift)
			continue
		}

		// Write.
		c.stats.Writes++
		if hit {
			c.stats.WriteHitEvents++
			if l.dirty != 0 {
				c.stats.WritesToDirtyLines++
			}
			// Granularity 1: the written bytes always validate exactly,
			// so there is never a sub-block fill.
			l.valid |= d.mask
			if c.cfg.WriteHit == WriteBack {
				l.dirty |= d.mask
			} else {
				c.writeThrough(e.Addr, uint32(e.Size))
			}
			l.lru = c.tick
			continue
		}
		c.stats.WriteMissEvents++
		switch c.cfg.WriteMiss {
		case FetchOnWrite:
			c.stats.FetchedWriteMisses++
			c.evict(set, l)
			nl := line{tag: d.tag, valid: c.fullMask, lru: c.tick, born: c.tick}
			c.fetchLine(d.lineNum << c.lineShift)
			if c.cfg.WriteHit == WriteBack {
				nl.dirty = d.mask
			} else {
				c.writeThrough(e.Addr, uint32(e.Size))
			}
			*l = nl

		case WriteValidate:
			// Granularity 1: a single-line write always covers whole
			// valid sub-blocks, so the fetch-on-write fallback for
			// narrow writes never triggers.
			c.stats.EliminatedWriteMisses++
			c.evict(set, l)
			nl := line{tag: d.tag, valid: d.mask, lru: c.tick, born: c.tick}
			if c.cfg.WriteHit != WriteBack || c.cfg.WVMissWriteThrough {
				c.writeThrough(e.Addr, uint32(e.Size))
			} else {
				nl.dirty = d.mask
			}
			*l = nl

		case WriteAround:
			c.stats.EliminatedWriteMisses++
			c.writeThrough(e.Addr, uint32(e.Size))

		case WriteInvalidate:
			c.stats.EliminatedWriteMisses++
			if l.valid != 0 {
				if l.dirty != 0 {
					c.writebackLine(c.lineAddrOf(set, l.tag), l.dirty)
				}
				c.stats.Invalidates++
				*l = line{}
			}
			c.writeThrough(e.Addr, uint32(e.Size))
		}
	}
}

// accessBatchAssoc is the set-associative granularity-1 kernel: the
// way search and replacement policy stay, the span walker and
// sub-block masks go.
//
//simlint:hotpath
func (c *Cache) accessBatchAssoc(events []trace.Event, dec []Decoded) {
	dec = dec[:len(events)]
	for i, e := range events {
		d := dec[i]
		if d.mask == 0 {
			c.Access(e)
			continue
		}
		c.stats.Instructions += e.Instructions()
		set := int(d.lineNum & c.setMask)
		base := set * c.cfg.Assoc
		way := c.findWay(base, d.tag)
		c.tick++

		if e.Kind == trace.Read {
			c.stats.Reads++
			if way >= 0 {
				l := &c.lines[base+way]
				if l.valid&d.mask == d.mask {
					l.lru = c.tick
					continue
				}
				c.stats.ReadMissEvents++
				c.stats.PartialValidReadMisses++
				c.fetchLine(d.lineNum << c.lineShift)
				l.valid = c.fullMask
				l.lru = c.tick
				continue
			}
			c.stats.ReadMissEvents++
			w := c.victimWay(base)
			c.evict(set, &c.lines[base+w])
			c.lines[base+w] = line{tag: d.tag, valid: c.fullMask, lru: c.tick, born: c.tick}
			c.fetchLine(d.lineNum << c.lineShift)
			continue
		}

		// Write.
		c.stats.Writes++
		if way >= 0 {
			l := &c.lines[base+way]
			c.stats.WriteHitEvents++
			if l.dirty != 0 {
				c.stats.WritesToDirtyLines++
			}
			l.valid |= d.mask
			if c.cfg.WriteHit == WriteBack {
				l.dirty |= d.mask
			} else {
				c.writeThrough(e.Addr, uint32(e.Size))
			}
			l.lru = c.tick
			continue
		}
		c.stats.WriteMissEvents++
		switch c.cfg.WriteMiss {
		case FetchOnWrite:
			c.stats.FetchedWriteMisses++
			w := c.victimWay(base)
			c.evict(set, &c.lines[base+w])
			nl := line{tag: d.tag, valid: c.fullMask, lru: c.tick, born: c.tick}
			c.fetchLine(d.lineNum << c.lineShift)
			if c.cfg.WriteHit == WriteBack {
				nl.dirty = d.mask
			} else {
				c.writeThrough(e.Addr, uint32(e.Size))
			}
			c.lines[base+w] = nl

		case WriteValidate:
			c.stats.EliminatedWriteMisses++
			w := c.victimWay(base)
			c.evict(set, &c.lines[base+w])
			nl := line{tag: d.tag, valid: d.mask, lru: c.tick, born: c.tick}
			if c.cfg.WriteHit != WriteBack || c.cfg.WVMissWriteThrough {
				c.writeThrough(e.Addr, uint32(e.Size))
			} else {
				nl.dirty = d.mask
			}
			c.lines[base+w] = nl

		case WriteAround:
			c.stats.EliminatedWriteMisses++
			c.writeThrough(e.Addr, uint32(e.Size))

		case WriteInvalidate:
			c.stats.EliminatedWriteMisses++
			w := c.victimWay(base)
			l := &c.lines[base+w]
			if l.valid != 0 {
				if l.dirty != 0 {
					c.writebackLine(c.lineAddrOf(set, l.tag), l.dirty)
				}
				c.stats.Invalidates++
				*l = line{}
			}
			c.writeThrough(e.Addr, uint32(e.Size))
		}
	}
}
