// Package vfs is the filesystem seam under every durability surface in
// the repository: the resilience checkpoint journal, the workload trace
// cache, and the simserved admission journal all open their files
// through the FS interface instead of calling os.* directly (enforced
// by simlint's vfsonly analyzer).
//
// Three implementations ship:
//
//   - OS: a passthrough to the real filesystem — what production runs
//     use; it adds nothing and costs one indirect call.
//   - Mem: an in-memory filesystem with an explicit durability model —
//     metadata operations (create, rename, remove, mkdir) are durable
//     immediately, file data survives a simulated crash only up to the
//     last Sync. Crash() models power loss: everything written since
//     the last Sync of each file is dropped.
//   - Faulty: a deterministic, seeded fault injector wrapped around any
//     inner FS. It can inject torn writes (short write, then an error),
//     ENOSPC, EIO on reads, rename failures, and fsync lies (Sync
//     reports success without making data durable), either
//     probabilistically from a reproducible Plan or pinned to an exact
//     operation index — the mechanism the crash-consistency harness
//     uses to enumerate every write boundary of a journal commit.
//
// The paper's thesis is that the write path is where systems quietly
// lose performance; "Writes Hurt" (PAPERS.md) extends it to modern
// write-asymmetric storage, where torn and failed writes are the
// common case. This package makes every one of those failure modes a
// first-class, reproducible test input.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"time"
)

// File is the subset of *os.File the durability surfaces use. Files
// opened for reading only return errors from Write and Sync.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Name returns the path the file was opened or created under.
	Name() string
	// Sync flushes the file's data to durable storage. On a Mem
	// filesystem this is the promotion point: data written before Sync
	// survives Crash, data written after does not.
	Sync() error
}

// FS abstracts the filesystem operations of the durability surfaces.
// Every method mirrors its os.* counterpart; error values wrap
// io/fs sentinels (fs.ErrNotExist, fs.ErrPermission) so callers use
// errors.Is, never equality or os-specific predicates.
type FS interface {
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// CreateTemp creates a new unique file in dir, following
	// os.CreateTemp's pattern rules, open for writing.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// Stat describes the named file.
	Stat(name string) (fs.FileInfo, error)
	// ReadDir lists the named directory in name order.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Chtimes sets the named file's access and modification times.
	Chtimes(name string, atime, mtime time.Time) error
}

// OS is the production FS: a zero-cost passthrough to the os package.
// The zero value is ready to use.
type OS struct{}

func (OS) Open(name string) (File, error)               { return os.Open(name) }
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (OS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (OS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}
