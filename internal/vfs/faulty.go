package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Sentinel errors for injected failures. Every injected fault wraps
// ErrFault plus the errno it models (syscall.ENOSPC, syscall.EIO), so
// callers classify with errors.Is and never string-match.
var (
	// ErrFault marks any error injected by a Faulty filesystem.
	ErrFault = errors.New("vfs: injected fault")
	// ErrCrashed is returned by every operation after a Faulty
	// filesystem hit its CrashAtOp boundary: the simulated machine has
	// lost power and nothing more can happen until recovery.
	ErrCrashed = errors.New("vfs: simulated crash (power cut)")
)

// IsStorageFault reports whether err is a storage-level failure — an
// injected fault, a simulated crash, or a real ENOSPC/EIO/EROFS from
// the OS — as opposed to logical errors like a missing file. The serve
// layer's per-tenant circuit breaker keys off this classification.
func IsStorageFault(err error) bool {
	return errors.Is(err, ErrFault) || errors.Is(err, ErrCrashed) ||
		errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EIO) ||
		errors.Is(err, syscall.EROFS)
}

// Kind names one injectable fault type.
type Kind uint8

const (
	// KindTornWrite: a Write persists only a prefix of its bytes, then
	// fails with EIO — the short-write-then-error shape of a torn
	// sector.
	KindTornWrite Kind = 1 << iota
	// KindENOSPC: a write-path operation fails with ENOSPC.
	KindENOSPC
	// KindReadEIO: a read-path operation fails with EIO (bit rot, bad
	// sector, dying device).
	KindReadEIO
	// KindRenameFail: a Rename fails with EIO without renaming.
	KindRenameFail
	// KindFsyncLie: Sync reports success without making data durable,
	// so the next Crash silently drops the "synced" bytes — the
	// firmware lie modern write-asymmetric devices are notorious for.
	KindFsyncLie
)

// String names the kind as accepted by ParsePlan.
func (k Kind) String() string {
	switch k {
	case KindTornWrite:
		return "torn"
	case KindENOSPC:
		return "enospc"
	case KindReadEIO:
		return "eio"
	case KindRenameFail:
		return "rename"
	case KindFsyncLie:
		return "fsynclie"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AllKinds is every injectable fault kind.
const AllKinds = KindTornWrite | KindENOSPC | KindReadEIO | KindRenameFail | KindFsyncLie

// Plan is a reproducible fault schedule. The zero Plan injects
// nothing (the Faulty FS still counts operations, which is how the
// crash harness measures a commit's write-boundary count).
type Plan struct {
	// Seed seeds the injection RNG; identical plans over identical
	// operation sequences inject identical faults.
	Seed int64
	// Rate is the per-eligible-operation injection probability for the
	// kinds enabled in Kinds (0 disables probabilistic injection).
	Rate float64
	// Kinds enables fault types for probabilistic injection, and for
	// KindFsyncLie makes *every* Sync lie (a lying drive lies
	// consistently, not per call).
	Kinds Kind
	// FailAtOp, when > 0, injects FailKind at exactly the FailAtOp'th
	// counted operation (1-based) if that kind applies to the
	// operation; inapplicable combinations inject nothing.
	FailAtOp int
	// FailKind is the kind FailAtOp injects.
	FailKind Kind
	// CrashAtOp, when > 0, simulates power loss at the CrashAtOp'th
	// counted operation: that operation and every later one fail with
	// ErrCrashed. Pair with Mem.Crash() to drop unsynced data before
	// recovery.
	CrashAtOp int
}

// ParsePlan parses the CLI form of a plan:
//
//	seed=7,rate=0.02,kinds=torn+enospc+rename
//
// Recognized kinds: torn, enospc, eio, rename, fsynclie, all.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		// An empty plan injects nothing; a caller that wants no faults
		// should not construct a Faulty at all. Refusing here catches
		// flag plumbing that silently dropped the spec.
		return p, fmt.Errorf("vfs: empty fault plan (want key=value fields: seed, rate, kinds)")
	}
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("vfs: plan field %q is not key=value", field)
		}
		if seen[key] {
			// A duplicate key means one of the two values is ignored
			// silently — always a typo in the spec, never intent.
			return p, fmt.Errorf("vfs: duplicate plan field %q", key)
		}
		seen[key] = true
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return p, fmt.Errorf("vfs: plan seed %q: %w", val, err)
			}
			p.Seed = n
		case "rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("vfs: plan rate %q must be in [0,1]", val)
			}
			p.Rate = f
		case "kinds":
			for _, name := range strings.Split(val, "+") {
				switch name {
				case "torn":
					p.Kinds |= KindTornWrite
				case "enospc":
					p.Kinds |= KindENOSPC
				case "eio":
					p.Kinds |= KindReadEIO
				case "rename":
					p.Kinds |= KindRenameFail
				case "fsynclie":
					p.Kinds |= KindFsyncLie
				case "all":
					p.Kinds = AllKinds
				default:
					return p, fmt.Errorf("vfs: unknown fault kind %q (want torn, enospc, eio, rename, fsynclie, all)", name)
				}
			}
		default:
			return p, fmt.Errorf("vfs: unknown plan field %q (want seed, rate, kinds)", key)
		}
	}
	return p, nil
}

// Counts is a Faulty filesystem's injection tally.
type Counts struct {
	Ops        int // counted operations so far
	Torn       int
	ENOSPC     int
	ReadEIO    int
	RenameFail int
	FsyncLies  int
	Crashed    int // operations refused after the crash boundary
}

// Total is the number of injected faults (crash refusals excluded).
func (c Counts) Total() int {
	return c.Torn + c.ENOSPC + c.ReadEIO + c.RenameFail + c.FsyncLies
}

func (c Counts) String() string {
	return fmt.Sprintf("ops=%d torn=%d enospc=%d eio=%d rename=%d fsynclie=%d crashed=%d",
		c.Ops, c.Torn, c.ENOSPC, c.ReadEIO, c.RenameFail, c.FsyncLies, c.Crashed)
}

// faultError wraps ErrFault together with the errno the fault models,
// so both errors.Is(err, vfs.ErrFault) and errors.Is(err, syscall.EIO)
// hold.
type faultError struct {
	kind  Kind
	op    string
	path  string
	under error
}

func (e *faultError) Error() string {
	return fmt.Sprintf("vfs: injected %s fault: %s %s: %v", e.kind, e.op, e.path, e.under)
}

func (e *faultError) Unwrap() []error { return []error{ErrFault, e.under} }

func injected(kind Kind, op, path string, under error) error {
	return &faultError{kind: kind, op: op, path: path, under: under}
}

// Faulty wraps an inner FS and injects faults according to a Plan.
// Construct with NewFaulty; safe for concurrent use. Operations are
// counted in arrival order (mutating operations only: temp creation,
// writes, syncs, renames, removes, mkdirs, chtimes), which is the
// coordinate system FailAtOp and CrashAtOp address.
type Faulty struct {
	inner FS

	mu      sync.Mutex
	plan    Plan
	rng     *rand.Rand
	counts  Counts
	crashed bool
}

// NewFaulty wraps inner with the fault plan.
func NewFaulty(inner FS, plan Plan) *Faulty {
	return &Faulty{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Reset replaces the plan and zeroes the operation counter and tallies
// (the crash harness reuses one Faulty across boundary iterations).
func (f *Faulty) Reset(plan Plan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan = plan
	f.rng = rand.New(rand.NewSource(plan.Seed))
	f.counts = Counts{}
	f.crashed = false
}

// Ops returns how many mutating operations have been counted.
func (f *Faulty) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts.Ops
}

// CountsSnapshot returns the injection tally so far.
func (f *Faulty) CountsSnapshot() Counts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// step counts one mutating operation and decides its fate: crashed,
// a planned fault kind, a probabilistic fault kind, or nothing (0).
// eligible is the set of kinds that can apply to this operation.
func (f *Faulty) step(eligible Kind) (Kind, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts.Ops++
	if f.plan.CrashAtOp > 0 && f.counts.Ops >= f.plan.CrashAtOp {
		f.crashed = true
	}
	if f.crashed {
		f.counts.Crashed++
		return 0, ErrCrashed
	}
	if f.plan.FailAtOp == f.counts.Ops && f.plan.FailKind&eligible != 0 {
		f.tally(f.plan.FailKind)
		return f.plan.FailKind, nil
	}
	if f.plan.Rate > 0 && f.plan.Kinds&eligible != 0 && f.rng.Float64() < f.plan.Rate {
		kind := f.pick(f.plan.Kinds & eligible)
		f.tally(kind)
		return kind, nil
	}
	return 0, nil
}

// readGate guards read-path operations: they are not counted, but they
// fail after a crash and are eligible for KindReadEIO injection.
func (f *Faulty) readGate() (Kind, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		f.counts.Crashed++
		return 0, ErrCrashed
	}
	if f.plan.Rate > 0 && f.plan.Kinds&KindReadEIO != 0 && f.rng.Float64() < f.plan.Rate {
		f.counts.ReadEIO++
		return KindReadEIO, nil
	}
	return 0, nil
}

// syncGate counts a Sync operation and decides whether it lies: a
// KindFsyncLie in Plan.Kinds makes every Sync lie (a lying device lies
// consistently), and FailAtOp can pin a single lie to one operation.
func (f *Faulty) syncGate() (lie bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts.Ops++
	if f.plan.CrashAtOp > 0 && f.counts.Ops >= f.plan.CrashAtOp {
		f.crashed = true
	}
	if f.crashed {
		f.counts.Crashed++
		return false, ErrCrashed
	}
	lie = f.plan.Kinds&KindFsyncLie != 0 ||
		(f.plan.FailAtOp == f.counts.Ops && f.plan.FailKind == KindFsyncLie)
	if lie {
		f.counts.FsyncLies++
	}
	return lie, nil
}

func (f *Faulty) tally(kind Kind) {
	switch kind {
	case KindTornWrite:
		f.counts.Torn++
	case KindENOSPC:
		f.counts.ENOSPC++
	case KindReadEIO:
		f.counts.ReadEIO++
	case KindRenameFail:
		f.counts.RenameFail++
	case KindFsyncLie:
		f.counts.FsyncLies++
	}
}

// pick chooses deterministically among the enabled eligible kinds.
func (f *Faulty) pick(set Kind) Kind {
	kinds := make([]Kind, 0, 5)
	for _, k := range [...]Kind{KindTornWrite, KindENOSPC, KindReadEIO, KindRenameFail, KindFsyncLie} {
		if set&k != 0 {
			kinds = append(kinds, k)
		}
	}
	if len(kinds) == 1 {
		return kinds[0]
	}
	return kinds[f.rng.Intn(len(kinds))]
}

func (f *Faulty) Open(name string) (File, error) {
	if kind, err := f.readGate(); err != nil {
		return nil, err
	} else if kind == KindReadEIO {
		return nil, injected(kind, "open", name, syscall.EIO)
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: inner}, nil
}

func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	if kind, err := f.step(KindENOSPC); err != nil {
		return nil, err
	} else if kind == KindENOSPC {
		return nil, injected(kind, "createtemp", dir, syscall.ENOSPC)
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: inner}, nil
}

func (f *Faulty) ReadFile(name string) ([]byte, error) {
	if kind, err := f.readGate(); err != nil {
		return nil, err
	} else if kind == KindReadEIO {
		return nil, injected(kind, "readfile", name, syscall.EIO)
	}
	return f.inner.ReadFile(name)
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if kind, err := f.step(KindRenameFail); err != nil {
		return err
	} else if kind == KindRenameFail {
		return injected(kind, "rename", oldpath, syscall.EIO)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(name string) error {
	if _, err := f.step(0); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	if kind, err := f.step(KindENOSPC); err != nil {
		return err
	} else if kind == KindENOSPC {
		return injected(kind, "mkdirall", path, syscall.ENOSPC)
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) Stat(name string) (fs.FileInfo, error) {
	if _, err := f.readGate(); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *Faulty) ReadDir(name string) ([]fs.DirEntry, error) {
	if kind, err := f.readGate(); err != nil {
		return nil, err
	} else if kind == KindReadEIO {
		return nil, injected(kind, "readdir", name, syscall.EIO)
	}
	return f.inner.ReadDir(name)
}

func (f *Faulty) Chtimes(name string, atime, mtime time.Time) error {
	if _, err := f.step(0); err != nil {
		return err
	}
	return f.inner.Chtimes(name, atime, mtime)
}

// faultyFile routes per-file operations through the injector.
type faultyFile struct {
	f     *Faulty
	inner File
}

func (h *faultyFile) Name() string { return h.inner.Name() }

func (h *faultyFile) Read(p []byte) (int, error) {
	if kind, err := h.f.readGate(); err != nil {
		return 0, err
	} else if kind == KindReadEIO {
		return 0, injected(kind, "read", h.inner.Name(), syscall.EIO)
	}
	return h.inner.Read(p)
}

func (h *faultyFile) Write(p []byte) (int, error) {
	kind, err := h.f.step(KindTornWrite | KindENOSPC)
	if err != nil {
		return 0, err
	}
	switch kind {
	case KindTornWrite:
		// Short write then error: a prefix lands, the rest is torn off.
		n, werr := h.inner.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, injected(kind, "write", h.inner.Name(), syscall.EIO)
	case KindENOSPC:
		return 0, injected(kind, "write", h.inner.Name(), syscall.ENOSPC)
	}
	return h.inner.Write(p)
}

func (h *faultyFile) Sync() error {
	lie, err := h.f.syncGate()
	if err != nil {
		return err
	}
	if lie {
		// Report success without flushing: the next crash drops the
		// bytes this Sync promised were durable.
		return nil
	}
	return h.inner.Sync()
}

func (h *faultyFile) Close() error {
	h.f.mu.Lock()
	crashed := h.f.crashed
	h.f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return h.inner.Close()
}
