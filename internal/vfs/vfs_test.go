package vfs

import (
	"errors"
	"io"
	"io/fs"
	"syscall"
	"testing"
	"time"
)

func writeAll(t *testing.T, f File, data string) {
	t.Helper()
	if _, err := io.WriteString(f, data); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func TestMemWriteSyncCrash(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := m.CreateTemp("/d", ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, "durable")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, " volatile")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename(f.Name(), "/d/file"); err != nil {
		t.Fatal(err)
	}
	if data, err := m.ReadFile("/d/file"); err != nil || string(data) != "durable volatile" {
		t.Fatalf("pre-crash read = %q, %v", data, err)
	}

	m.Crash()

	// The rename (metadata) survives; data reverts to the last Sync.
	data, err := m.ReadFile("/d/file")
	if err != nil {
		t.Fatalf("post-crash read: %v", err)
	}
	if string(data) != "durable" {
		t.Fatalf("post-crash content = %q, want %q (unsynced tail dropped)", data, "durable")
	}
}

func TestMemNeverSyncedFileSurvivesEmpty(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := m.CreateTemp("/d", ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, "never synced")
	f.Close()
	if err := m.Rename(f.Name(), "/d/husk"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	data, err := m.ReadFile("/d/husk")
	if err != nil {
		t.Fatalf("husk should exist after crash (metadata is durable): %v", err)
	}
	if len(data) != 0 {
		t.Fatalf("husk content = %q, want empty", data)
	}
}

func TestMemErrNotExist(t *testing.T) {
	m := NewMem()
	for name, call := range map[string]func() error{
		"open":    func() error { _, err := m.Open("/nope"); return err },
		"read":    func() error { _, err := m.ReadFile("/nope"); return err },
		"stat":    func() error { _, err := m.Stat("/nope"); return err },
		"remove":  func() error { return m.Remove("/nope") },
		"rename":  func() error { return m.Rename("/nope", "/other") },
		"chtimes": func() error { return m.Chtimes("/nope", time.Unix(0, 1), time.Unix(0, 1)) },
		"readdir": func() error { _, err := m.ReadDir("/nope"); return err },
	} {
		if err := call(); !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("%s on missing path: err = %v, want fs.ErrNotExist", name, err)
		}
	}
}

func TestMemReadDirSorted(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("/d/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"zeta", "alpha", "mid"} {
		f, err := m.CreateTemp("/d", "x-*")
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := m.Rename(f.Name(), "/d/"+name); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := m.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "sub", "zeta"}
	if len(entries) != len(want) {
		t.Fatalf("got %d entries, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		if e.Name() != want[i] {
			t.Fatalf("entry %d = %s, want %s", i, e.Name(), want[i])
		}
	}
	if !entries[2].IsDir() {
		t.Fatal("sub should be a directory")
	}
}

func TestMemRenameReplacesTarget(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/d", 0o755)
	mk := func(name, content string) {
		f, err := m.CreateTemp("/d", "t-*")
		if err != nil {
			t.Fatal(err)
		}
		writeAll(t, f, content)
		f.Sync()
		f.Close()
		if err := m.Rename(f.Name(), name); err != nil {
			t.Fatal(err)
		}
	}
	mk("/d/f", "old")
	mk("/d/f", "new")
	if data, _ := m.ReadFile("/d/f"); string(data) != "new" {
		t.Fatalf("content = %q, want new", data)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7,rate=0.25,kinds=torn+enospc+rename")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Rate != 0.25 || p.Kinds != KindTornWrite|KindENOSPC|KindRenameFail {
		t.Fatalf("plan = %+v", p)
	}
	if p, err := ParsePlan("kinds=all"); err != nil || p.Kinds != AllKinds {
		t.Fatalf("all kinds: %+v, %v", p, err)
	}
	for _, bad := range []string{
		"rate=2",          // rate above [0,1]
		"rate=-0.1",       // rate below [0,1]
		"rate=x",          // rate not a number
		"kinds=frob",      // unknown fault kind
		"nope=1",          // unknown field
		"seed",            // not key=value
		"",                // empty plan
		"   ",             // blank plan
		"seed=1,seed=2",   // duplicate key: second value would win silently
		"rate=0.1,rate=1", // duplicate key
		"kinds=torn,kinds=eio",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestFaultyTornWrite(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/d", 0o755)
	f := NewFaulty(m, Plan{FailAtOp: 2, FailKind: KindTornWrite}) // op1: createtemp, op2: write
	tmp, err := f.CreateTemp("/d", "t-*")
	if err != nil {
		t.Fatal(err)
	}
	n, err := tmp.Write([]byte("0123456789"))
	if err == nil {
		t.Fatal("torn write reported success")
	}
	if !errors.Is(err, ErrFault) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write err = %v, want ErrFault + EIO", err)
	}
	if n != 5 {
		t.Fatalf("torn write persisted %d bytes, want 5 (half)", n)
	}
	if data, _ := m.ReadFile(tmp.Name()); string(data) != "01234" {
		t.Fatalf("on-disk prefix = %q", data)
	}
	if c := f.CountsSnapshot(); c.Torn != 1 {
		t.Fatalf("counts = %+v, want one torn write", c)
	}
}

func TestFaultyENOSPCAndReadEIO(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/d", 0o755)
	f := NewFaulty(m, Plan{FailAtOp: 2, FailKind: KindENOSPC})
	tmp, _ := f.CreateTemp("/d", "t-*")
	if _, err := tmp.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrFault) {
		t.Fatalf("err = %v, want injected ENOSPC", err)
	}

	// Rate=1 read faults: every read path fails EIO.
	fr := NewFaulty(m, Plan{Rate: 1, Kinds: KindReadEIO})
	if _, err := fr.ReadFile(tmp.Name()); !errors.Is(err, syscall.EIO) {
		t.Fatalf("read err = %v, want EIO", err)
	}
	if _, err := fr.Open(tmp.Name()); !errors.Is(err, syscall.EIO) {
		t.Fatalf("open err = %v, want EIO", err)
	}
}

func TestFaultyRenameFail(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/d", 0o755)
	tmp, _ := m.CreateTemp("/d", "t-*")
	tmp.Close()
	f := NewFaulty(m, Plan{FailAtOp: 1, FailKind: KindRenameFail})
	if err := f.Rename(tmp.Name(), "/d/dst"); !errors.Is(err, ErrFault) {
		t.Fatalf("rename err = %v, want injected fault", err)
	}
	if _, err := m.Stat(tmp.Name()); err != nil {
		t.Fatal("failed rename must leave the source in place")
	}
	if _, err := m.Stat("/d/dst"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("failed rename must not create the target")
	}
}

func TestFaultyFsyncLieDropsDataAtCrash(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/d", 0o755)
	f := NewFaulty(m, Plan{Kinds: KindFsyncLie})
	tmp, err := f.CreateTemp("/d", "t-*")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, tmp, "promised durable")
	if err := tmp.Sync(); err != nil {
		t.Fatalf("a lying sync still reports success: %v", err)
	}
	tmp.Close()
	if err := f.Rename(tmp.Name(), "/d/f"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	data, err := m.ReadFile("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("post-crash content = %q; the lied-about bytes must be gone", data)
	}
	if c := f.CountsSnapshot(); c.FsyncLies != 1 {
		t.Fatalf("counts = %+v, want one fsync lie", c)
	}
}

func TestFaultyCrashAtOpKillsEverything(t *testing.T) {
	m := NewMem()
	m.MkdirAll("/d", 0o755)
	f := NewFaulty(m, Plan{CrashAtOp: 3}) // op1 createtemp, op2 write, op3 sync → crash
	tmp, err := f.CreateTemp("/d", "t-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync at crash boundary: %v, want ErrCrashed", err)
	}
	// Everything after the boundary is dead, reads included.
	if _, err := f.ReadFile(tmp.Name()); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: %v", err)
	}
	if err := f.Rename(tmp.Name(), "/d/f"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename after crash: %v", err)
	}
	if err := tmp.Close(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("close after crash: %v", err)
	}
}

func TestFaultyDeterministicBySeed(t *testing.T) {
	run := func() Counts {
		m := NewMem()
		m.MkdirAll("/d", 0o755)
		f := NewFaulty(m, Plan{Seed: 42, Rate: 0.5, Kinds: KindTornWrite | KindENOSPC | KindRenameFail})
		for i := 0; i < 40; i++ {
			tmp, err := f.CreateTemp("/d", "t-*")
			if err != nil {
				continue
			}
			_, _ = tmp.Write([]byte("payload"))
			_ = tmp.Close()
			_ = f.Rename(tmp.Name(), "/d/f")
		}
		return f.CountsSnapshot()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different injections:\n  %v\n  %v", a, b)
	}
	if a.Total() == 0 {
		t.Fatal("rate 0.5 over 120+ ops injected nothing")
	}
}

func TestIsStorageFault(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{injected(KindENOSPC, "write", "/f", syscall.ENOSPC), true},
		{ErrCrashed, true},
		{syscall.EIO, true},
		{syscall.EROFS, true},
		{fs.ErrNotExist, false},
		{errors.New("logic error"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsStorageFault(c.err); got != c.want {
			t.Errorf("IsStorageFault(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestOSPassthrough exercises the production FS against a real temp
// dir — the same sequence the journal uses.
func TestOSPassthrough(t *testing.T) {
	var osfs OS
	dir := t.TempDir()
	if err := osfs.MkdirAll(dir+"/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := osfs.CreateTemp(dir+"/sub", ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, "hello")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := osfs.Rename(f.Name(), dir+"/sub/final"); err != nil {
		t.Fatal(err)
	}
	if data, err := osfs.ReadFile(dir + "/sub/final"); err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	entries, err := osfs.ReadDir(dir + "/sub")
	if err != nil || len(entries) != 1 || entries[0].Name() != "final" {
		t.Fatalf("readdir: %v, %v", entries, err)
	}
	now := time.Now()
	if err := osfs.Chtimes(dir+"/sub/final", now, now); err != nil {
		t.Fatal(err)
	}
	if err := osfs.Remove(dir + "/sub/final"); err != nil {
		t.Fatal(err)
	}
	if _, err := osfs.Stat(dir + "/sub/final"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stat after remove: %v", err)
	}
}
