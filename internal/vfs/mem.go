package vfs

import (
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Mem is an in-memory FS with an explicit crash model, the substrate
// the crash-consistency harness runs on:
//
//   - Metadata operations — create, rename, remove, mkdir — are
//     durable the moment they return, modeling a journaling filesystem
//     whose metadata journal commits synchronously (the discipline the
//     checkpoint journal's rename-commit protocol assumes).
//   - File data is durable only up to the last successful Sync. Crash
//     truncates every file back to its last-synced content, so a
//     written-but-never-synced file survives as an empty husk — the
//     torn state a real power cut leaves behind.
//
// Mem is safe for concurrent use. The zero value is not usable;
// construct with NewMem.
type Mem struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
	seq   int64 // logical clock: mtimes and temp-name uniqueness
}

type memFile struct {
	data    []byte // visible content
	durable []byte // content surviving Crash (set by Sync; nil = nothing synced)
	mtime   time.Time
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem {
	return &Mem{files: map[string]*memFile{}, dirs: map[string]bool{"/": true, ".": true}}
}

// Crash simulates power loss: every file's visible content reverts to
// its last-synced state. Names, directories and renames survive (the
// metadata-journal model); unsynced data does not.
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	//simlint:allow determinism in-place state reset; nothing is emitted
	for _, f := range m.files {
		f.data = append([]byte(nil), f.durable...)
	}
}

func notExist(op, name string) error {
	return &fs.PathError{Op: op, Path: name, Err: fs.ErrNotExist}
}

func (m *Mem) tick() time.Time {
	m.seq++
	return time.Unix(0, m.seq)
}

func clean(name string) string { return filepath.Clean(name) }

func (m *Mem) Open(name string) (File, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return nil, notExist("open", name)
	}
	return &memHandle{m: m, name: name, readOnly: true}, nil
}

func (m *Mem) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if dir == "" {
		dir = "."
	}
	dir = clean(dir)
	if !m.dirs[dir] {
		return nil, notExist("createtemp", dir)
	}
	prefix, suffix := pattern, ""
	if i := strings.LastIndexByte(pattern, '*'); i >= 0 {
		prefix, suffix = pattern[:i], pattern[i+1:]
	}
	m.seq++
	name := filepath.Join(dir, fmt.Sprintf("%s%d%s", prefix, m.seq, suffix))
	m.files[name] = &memFile{mtime: time.Unix(0, m.seq)}
	return &memHandle{m: m, name: name}, nil
}

func (m *Mem) ReadFile(name string) ([]byte, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, notExist("readfile", name)
	}
	return append([]byte(nil), f.data...), nil
}

func (m *Mem) Rename(oldpath, newpath string) error {
	oldpath, newpath = clean(oldpath), clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	return nil
}

func (m *Mem) Remove(name string) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return notExist("remove", name)
	}
	delete(m.files, name)
	return nil
}

func (m *Mem) MkdirAll(path string, _ fs.FileMode) error {
	path = clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	for p := path; ; p = filepath.Dir(p) {
		m.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

func (m *Mem) Stat(name string) (fs.FileInfo, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return memInfo{name: filepath.Base(name), size: int64(len(f.data)), mtime: f.mtime}, nil
	}
	if m.dirs[name] {
		return memInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, notExist("stat", name)
}

func (m *Mem) ReadDir(name string) ([]fs.DirEntry, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[name] {
		return nil, notExist("readdir", name)
	}
	var names []string
	seen := map[string]bool{}
	//simlint:allow determinism entries are sorted before returning
	for p := range m.files {
		if filepath.Dir(p) == name {
			names = append(names, filepath.Base(p))
		}
	}
	//simlint:allow determinism entries are sorted before returning
	for d := range m.dirs {
		if d != name && filepath.Dir(d) == name && !seen[filepath.Base(d)] {
			seen[filepath.Base(d)] = true
			names = append(names, filepath.Base(d))
		}
	}
	sort.Strings(names)
	out := make([]fs.DirEntry, 0, len(names))
	for _, n := range names {
		full := filepath.Join(name, n)
		if f, ok := m.files[full]; ok {
			out = append(out, memEntry{memInfo{name: n, size: int64(len(f.data)), mtime: f.mtime}})
		} else {
			out = append(out, memEntry{memInfo{name: n, dir: true}})
		}
	}
	return out, nil
}

func (m *Mem) Chtimes(name string, _, mtime time.Time) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return notExist("chtimes", name)
	}
	f.mtime = mtime
	return nil
}

// memHandle is one open file. Reads serve the file's current visible
// content; writes append (the only write pattern the durability
// surfaces use — fresh temp files written front to back).
type memHandle struct {
	m        *Mem
	name     string
	readOnly bool
	offset   int
	closed   bool
}

func (h *memHandle) Name() string { return h.name }

func (h *memHandle) Read(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	f, ok := h.m.files[h.name]
	if !ok {
		return 0, notExist("read", h.name)
	}
	if h.offset >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[h.offset:])
	h.offset += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.readOnly {
		return 0, &fs.PathError{Op: "write", Path: h.name, Err: fs.ErrPermission}
	}
	f, ok := h.m.files[h.name]
	if !ok {
		return 0, notExist("write", h.name)
	}
	f.data = append(f.data, p...)
	f.mtime = h.m.tick()
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	f, ok := h.m.files[h.name]
	if !ok {
		return notExist("sync", h.name)
	}
	f.durable = append([]byte(nil), f.data...)
	return nil
}

func (h *memHandle) Close() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	return nil
}

// memInfo implements fs.FileInfo for Mem entries.
type memInfo struct {
	name  string
	size  int64
	mtime time.Time
	dir   bool
}

func (i memInfo) Name() string       { return i.name }
func (i memInfo) Size() int64        { return i.size }
func (i memInfo) ModTime() time.Time { return i.mtime }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }
func (i memInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}

// memEntry implements fs.DirEntry over memInfo.
type memEntry struct{ info memInfo }

func (e memEntry) Name() string               { return e.info.name }
func (e memEntry) IsDir() bool                { return e.info.dir }
func (e memEntry) Type() fs.FileMode          { return e.info.Mode().Type() }
func (e memEntry) Info() (fs.FileInfo, error) { return e.info, nil }
