package textplot

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"cachewrite/internal/stats"
)

func TestWriteChartCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChartCSV(&buf, sampleChart()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("%d rows, want 3", len(records))
	}
	if records[0][0] != "size" || records[0][1] != "alpha" || records[0][2] != "beta" {
		t.Errorf("header %v", records[0])
	}
	if records[1][0] != "1024" || records[1][1] != "10" || records[1][2] != "30" {
		t.Errorf("row 1 %v", records[1])
	}
}

func TestWriteChartCSVSparse(t *testing.T) {
	c := &stats.Chart{ID: "s", XLabel: "x"}
	a := stats.Series{Label: "a"}
	a.Point(1, 5)
	b := stats.Series{Label: "b"}
	b.Point(2, 6)
	c.Add(a)
	c.Add(b)
	var buf bytes.Buffer
	if err := WriteChartCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// x=1: a=5, b empty; x=2: a empty, b=6.
	if records[1][2] != "" || records[2][1] != "" {
		t.Errorf("sparse cells not empty: %v", records)
	}
}

func TestWriteTableCSV(t *testing.T) {
	tbl := &stats.Table{ID: "t", Columns: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	if err := WriteTableCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[1][1] != "2" {
		t.Errorf("records %v", records)
	}
}

func TestRenderChartMarkdown(t *testing.T) {
	out := RenderChartMarkdown(sampleChart())
	for _, want := range []string{"**FIG0 — Sample**", "| size |", "| alpha |", "|---|", "| 1K |", "| 10.000 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTableMarkdown(t *testing.T) {
	tbl := &stats.Table{ID: "t9", Title: "Pipes", Columns: []string{"name", "note"}}
	tbl.AddRow("x", "a|b")
	out := RenderTableMarkdown(tbl)
	if !strings.Contains(out, `a\|b`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
	if !strings.Contains(out, "**T9 — Pipes**") {
		t.Errorf("missing title:\n%s", out)
	}
}
