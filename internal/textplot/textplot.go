// Package textplot renders the experiment results (stats.Chart,
// stats.Table) as plain text: aligned tables of the series values and
// optional ASCII line plots, suitable for terminals and for diffing in
// EXPERIMENTS.md.
package textplot

import (
	"fmt"
	"math"
	"strings"

	"cachewrite/internal/stats"
)

// RenderTable renders a stats.Table with aligned columns.
func RenderTable(t *stats.Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// RenderChart renders a chart as a value grid: one row per X, one
// column per series.
func RenderChart(c *stats.Chart) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(c.ID), c.Title)
	if len(c.Series) == 0 {
		b.WriteString("(no series)\n")
		return b.String()
	}

	// Collect the union of X values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range c.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}

	tbl := &stats.Table{ID: c.ID, Title: c.Title, Columns: []string{c.XLabel}}
	for _, s := range c.Series {
		tbl.Columns = append(tbl.Columns, s.Label)
	}
	for _, x := range xs {
		row := []string{formatX(x, c.XScale)}
		for _, s := range c.Series {
			row = append(row, stats.FmtF(s.YAt(x)))
		}
		tbl.AddRow(row...)
	}
	// Reuse the table renderer minus its own header line.
	rendered := RenderTable(tbl)
	if i := strings.IndexByte(rendered, '\n'); i >= 0 {
		rendered = rendered[i+1:]
	}
	fmt.Fprintf(&b, "y: %s\n", c.YLabel)
	b.WriteString(rendered)
	return b.String()
}

// RenderASCIIPlot draws an ASCII line plot of the chart (height rows,
// width columns), one glyph per series.
func RenderASCIIPlot(c *stats.Chart, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	glyphs := "*o+x#@%&"
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(c.ID), c.Title)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x := scaleX(s.X[i], c.XScale)
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return b.String() + "(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			col := int((scaleX(s.X[i], c.XScale) - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = g
		}
	}
	for r, rowBytes := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.2f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.2f ", minY)
		}
		fmt.Fprintf(&b, "%s|%s|\n", label, string(rowBytes))
	}
	fmt.Fprintf(&b, "        %s -> %s (%s)\n", formatX(unscaleX(minX, c.XScale), c.XScale),
		formatX(unscaleX(maxX, c.XScale), c.XScale), c.XLabel)
	for si, s := range c.Series {
		fmt.Fprintf(&b, "        %c %s\n", glyphs[si%len(glyphs)], s.Label)
	}
	return b.String()
}

func scaleX(x float64, sc stats.Scale) float64 {
	if sc == stats.Log2 && x > 0 {
		return math.Log2(x)
	}
	return x
}

func unscaleX(x float64, sc stats.Scale) float64 {
	if sc == stats.Log2 {
		return math.Exp2(x)
	}
	return x
}

func formatX(x float64, sc stats.Scale) string {
	if sc == stats.Log2 && x >= 1024 && math.Mod(x, 1024) == 0 {
		return fmt.Sprintf("%gK", x/1024)
	}
	if x == math.Trunc(x) {
		return fmt.Sprintf("%g", x)
	}
	return fmt.Sprintf("%.2f", x)
}

// RenderHistogram renders labelled counts as a horizontal bar chart,
// scaled to width characters for the largest bucket.
func RenderHistogram(title string, labels []string, counts []uint64, width int) string {
	if width < 8 {
		width = 8
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	if len(labels) != len(counts) {
		b.WriteString("(label/count mismatch)\n")
		return b.String()
	}
	var maxCount uint64
	maxLabel := 0
	for i, c := range counts {
		if c > maxCount {
			maxCount = c
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxCount == 0 {
		b.WriteString("(empty)\n")
		return b.String()
	}
	for i, c := range counts {
		bar := int(uint64(width) * c / maxCount)
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%-*s |%s %d\n", maxLabel, labels[i], strings.Repeat("#", bar), c)
	}
	return b.String()
}
