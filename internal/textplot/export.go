package textplot

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cachewrite/internal/stats"
)

// WriteChartCSV writes the chart as CSV: a header row of the X label
// and series labels, then one row per X value. Missing points are
// empty cells. The output loads directly into any plotting tool.
func WriteChartCSV(w io.Writer, c *stats.Chart) error {
	cw := csv.NewWriter(w)
	header := append([]string{c.XLabel}, seriesLabels(c)...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, x := range unionX(c) {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for i := range c.Series {
			y := c.Series[i].YAt(x)
			if y != y { // NaN
				row = append(row, "")
			} else {
				row = append(row, strconv.FormatFloat(y, 'g', -1, 64))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableCSV writes a stats.Table as CSV.
func WriteTableCSV(w io.Writer, t *stats.Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderChartMarkdown renders the chart as a GitHub-flavoured Markdown
// table, suitable for pasting into EXPERIMENTS.md-style documents.
func RenderChartMarkdown(c *stats.Chart) string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s — %s** (y: %s)\n\n", strings.ToUpper(c.ID), c.Title, c.YLabel)
	header := append([]string{c.XLabel}, seriesLabels(c)...)
	writeMarkdownRow(&b, header)
	writeMarkdownRule(&b, len(header))
	for _, x := range unionX(c) {
		row := []string{formatX(x, c.XScale)}
		for i := range c.Series {
			row = append(row, stats.FmtF(c.Series[i].YAt(x)))
		}
		writeMarkdownRow(&b, row)
	}
	return b.String()
}

// RenderTableMarkdown renders a stats.Table as Markdown.
func RenderTableMarkdown(t *stats.Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s — %s**\n\n", strings.ToUpper(t.ID), t.Title)
	writeMarkdownRow(&b, t.Columns)
	writeMarkdownRule(&b, len(t.Columns))
	for _, row := range t.Rows {
		writeMarkdownRow(&b, row)
	}
	return b.String()
}

func writeMarkdownRow(b *strings.Builder, cells []string) {
	b.WriteByte('|')
	for _, cell := range cells {
		b.WriteByte(' ')
		b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
		b.WriteString(" |")
	}
	b.WriteByte('\n')
}

func writeMarkdownRule(b *strings.Builder, n int) {
	b.WriteByte('|')
	for i := 0; i < n; i++ {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
}

func seriesLabels(c *stats.Chart) []string {
	labels := make([]string, len(c.Series))
	for i := range c.Series {
		labels[i] = c.Series[i].Label
	}
	return labels
}

func unionX(c *stats.Chart) []float64 {
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range c.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	return xs
}
