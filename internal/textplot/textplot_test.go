package textplot

import (
	"strings"
	"testing"

	"cachewrite/internal/stats"
)

func sampleChart() *stats.Chart {
	c := &stats.Chart{ID: "fig0", Title: "Sample", XLabel: "size", YLabel: "pct", XScale: stats.Log2}
	a := stats.Series{Label: "alpha"}
	a.Point(1024, 10)
	a.Point(2048, 20)
	b := stats.Series{Label: "beta"}
	b.Point(1024, 30)
	b.Point(2048, 40)
	c.Add(a)
	c.Add(b)
	return c
}

func TestRenderTable(t *testing.T) {
	tbl := &stats.Table{ID: "t1", Title: "Things", Columns: []string{"name", "value"}}
	tbl.AddRow("short", "1")
	tbl.AddRow("much-longer-name", "22")
	out := RenderTable(tbl)
	if !strings.Contains(out, "T1 — Things") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "much-longer-name") || !strings.Contains(out, "22") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + columns + rule + 2 rows.
	if len(lines) != 5 {
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: every data line has the same prefix width before
	// the second column.
	idx := strings.Index(lines[1], "value")
	for _, ln := range lines[3:] {
		if len(ln) <= idx {
			t.Errorf("row too short for aligned columns: %q", ln)
		}
	}
}

func TestRenderChart(t *testing.T) {
	out := RenderChart(sampleChart())
	for _, want := range []string{"FIG0", "alpha", "beta", "10.000", "40.000", "1K", "2K", "y: pct"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderChartEmpty(t *testing.T) {
	out := RenderChart(&stats.Chart{ID: "e", Title: "Empty"})
	if !strings.Contains(out, "no series") {
		t.Errorf("empty chart output: %s", out)
	}
}

func TestRenderChartSparseSeries(t *testing.T) {
	c := &stats.Chart{ID: "s", Title: "Sparse", XLabel: "x"}
	a := stats.Series{Label: "a"}
	a.Point(1, 1)
	b := stats.Series{Label: "b"}
	b.Point(2, 2)
	c.Add(a)
	c.Add(b)
	out := RenderChart(c)
	// Missing points render as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("sparse chart should show dashes:\n%s", out)
	}
}

func TestRenderASCIIPlot(t *testing.T) {
	out := RenderASCIIPlot(sampleChart(), 40, 10)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("plot missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Errorf("plot missing legend:\n%s", out)
	}
	if !strings.Contains(out, "40.00") || !strings.Contains(out, "10.00") {
		t.Errorf("plot missing Y bounds:\n%s", out)
	}
}

func TestRenderASCIIPlotNoData(t *testing.T) {
	out := RenderASCIIPlot(&stats.Chart{ID: "n", Title: "None"}, 40, 10)
	if !strings.Contains(out, "no data") {
		t.Errorf("no-data plot output: %s", out)
	}
}

func TestRenderASCIIPlotDegenerate(t *testing.T) {
	// A single point (zero X and Y range) must not divide by zero.
	c := &stats.Chart{ID: "d", Title: "Dot"}
	s := stats.Series{Label: "only"}
	s.Point(5, 5)
	c.Add(s)
	out := RenderASCIIPlot(c, 1, 1) // also exercises minimum clamps
	if out == "" {
		t.Fatal("no output")
	}
}

func TestFormatX(t *testing.T) {
	if got := formatX(4096, stats.Log2); got != "4K" {
		t.Errorf("formatX(4096) = %q", got)
	}
	if got := formatX(16, stats.Log2); got != "16" {
		t.Errorf("formatX(16) = %q", got)
	}
	if got := formatX(2.5, stats.Linear); got != "2.50" {
		t.Errorf("formatX(2.5) = %q", got)
	}
}

func TestRenderHistogram(t *testing.T) {
	out := RenderHistogram("bursts", []string{"1", "2", "3-4"}, []uint64{10, 5, 0}, 20)
	if !strings.Contains(out, "bursts") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// Largest bucket gets the full width; half-size bucket gets half.
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Errorf("max bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Errorf("half bar wrong: %q", lines[2])
	}
	if strings.Contains(lines[3], "#") {
		t.Errorf("zero bucket has a bar: %q", lines[3])
	}
}

func TestRenderHistogramEdgeCases(t *testing.T) {
	if out := RenderHistogram("t", []string{"a"}, []uint64{0}, 10); !strings.Contains(out, "empty") {
		t.Error("all-zero histogram not flagged")
	}
	if out := RenderHistogram("t", []string{"a", "b"}, []uint64{1}, 10); !strings.Contains(out, "mismatch") {
		t.Error("mismatch not flagged")
	}
	// A tiny non-zero count still draws at least one mark.
	out := RenderHistogram("t", []string{"a", "b"}, []uint64{1000, 1}, 2)
	if !strings.Contains(out, "# 1\n") {
		t.Errorf("tiny bucket invisible:\n%s", out)
	}
}
