package stats

import (
	"math"
	"testing"
)

func TestSeriesPointAndYAt(t *testing.T) {
	var s Series
	s.Point(1, 10)
	s.Point(2, 20)
	if s.YAt(2) != 20 {
		t.Errorf("YAt(2) = %v", s.YAt(2))
	}
	if !math.IsNaN(s.YAt(3)) {
		t.Errorf("YAt(missing) = %v, want NaN", s.YAt(3))
	}
}

func TestChartAddFind(t *testing.T) {
	c := &Chart{ID: "x"}
	c.Add(Series{Label: "a"})
	c.Add(Series{Label: "b"})
	if c.Find("b") == nil || c.Find("b").Label != "b" {
		t.Error("Find failed")
	}
	if c.Find("zzz") != nil {
		t.Error("Find invented a series")
	}
}

func TestTableAddRowPads(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b", "c"}}
	tbl.AddRow("1")
	tbl.AddRow("1", "2", "3", "4") // extra cell dropped
	if len(tbl.Rows) != 2 {
		t.Fatal("rows missing")
	}
	if len(tbl.Rows[0]) != 3 || tbl.Rows[0][1] != "" {
		t.Errorf("padding wrong: %v", tbl.Rows[0])
	}
	if len(tbl.Rows[1]) != 3 || tbl.Rows[1][2] != "3" {
		t.Errorf("truncation wrong: %v", tbl.Rows[1])
	}
}

func TestMeanSeries(t *testing.T) {
	a := Series{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}}
	b := Series{Label: "b", X: []float64{1, 2}, Y: []float64{30, 40}}
	avg, err := MeanSeries("avg", []Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Label != "avg" || avg.Y[0] != 20 || avg.Y[1] != 30 {
		t.Errorf("avg = %+v", avg)
	}
	// Averaging must not alias the input X slice.
	avg.X[0] = 99
	if a.X[0] == 99 {
		t.Error("MeanSeries aliases input X")
	}
}

func TestMeanSeriesErrors(t *testing.T) {
	if _, err := MeanSeries("x", nil); err == nil {
		t.Error("empty input accepted")
	}
	a := Series{X: []float64{1, 2}, Y: []float64{1, 2}}
	b := Series{X: []float64{1}, Y: []float64{1}}
	if _, err := MeanSeries("x", []Series{a, b}); err == nil {
		t.Error("length mismatch accepted")
	}
	c := Series{X: []float64{1, 3}, Y: []float64{1, 2}}
	if _, err := MeanSeries("x", []Series{a, c}); err == nil {
		t.Error("X mismatch accepted")
	}
}

func TestPctAndFormatters(t *testing.T) {
	if Pct(0.25) != 25 {
		t.Errorf("Pct = %v", Pct(0.25))
	}
	if FmtPct(0.255) != "25.5%" {
		t.Errorf("FmtPct = %q", FmtPct(0.255))
	}
	if FmtF(math.NaN()) != "-" {
		t.Errorf("FmtF(NaN) = %q", FmtF(math.NaN()))
	}
	if FmtF(1.23456) != "1.235" {
		t.Errorf("FmtF = %q", FmtF(1.23456))
	}
	if FmtF(0.001) != "1.00e-03" {
		t.Errorf("FmtF small = %q", FmtF(0.001))
	}
	if FmtF(0) != "0.000" {
		t.Errorf("FmtF zero = %q", FmtF(0))
	}
}

func TestFmtCount(t *testing.T) {
	cases := map[uint64]string{
		0:          "0",
		999:        "999",
		1000:       "1,000",
		1234567:    "1,234,567",
		12:         "12",
		123456:     "123,456",
		1000000000: "1,000,000,000",
	}
	for in, want := range cases {
		if got := FmtCount(in); got != want {
			t.Errorf("FmtCount(%d) = %q, want %q", in, got, want)
		}
	}
}
