// Package stats provides the structured result types the experiment
// runners produce — charts of labelled series and simple tables — plus
// small aggregation helpers. Rendering lives in package textplot.
package stats

import (
	"fmt"
	"math"
)

// Scale describes how an axis is swept.
type Scale uint8

const (
	// Linear axis.
	Linear Scale = iota
	// Log2 axis (cache sizes, line sizes).
	Log2
)

// Series is one labelled curve: Y[i] plotted at X[i].
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Point appends a point to the series.
func (s *Series) Point(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// YAt returns the Y value at the given X, or NaN when absent.
func (s *Series) YAt(x float64) float64 {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i]
		}
	}
	return math.NaN()
}

// Chart is a named collection of series, matching one paper figure.
type Chart struct {
	ID     string // e.g. "fig13"
	Title  string
	XLabel string
	YLabel string
	XScale Scale
	Series []Series
}

// Add appends a series.
func (c *Chart) Add(s Series) { c.Series = append(c.Series, s) }

// Find returns the series with the given label, or nil.
func (c *Chart) Find(label string) *Series {
	for i := range c.Series {
		if c.Series[i].Label == label {
			return &c.Series[i]
		}
	}
	return nil
}

// Table is a rows-and-columns result, matching one paper table.
type Table struct {
	ID      string // e.g. "table1"
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// MeanSeries averages several same-X series into one labelled curve.
// All inputs must share identical X vectors.
func MeanSeries(label string, in []Series) (Series, error) {
	if len(in) == 0 {
		return Series{}, fmt.Errorf("stats: no series to average")
	}
	out := Series{Label: label, X: append([]float64(nil), in[0].X...)}
	out.Y = make([]float64, len(out.X))
	for _, s := range in {
		if len(s.X) != len(out.X) {
			return Series{}, fmt.Errorf("stats: series %q has %d points, want %d", s.Label, len(s.X), len(out.X))
		}
		for i := range s.X {
			if s.X[i] != out.X[i] {
				return Series{}, fmt.Errorf("stats: series %q X[%d]=%v differs from %v", s.Label, i, s.X[i], out.X[i])
			}
			out.Y[i] += s.Y[i]
		}
	}
	for i := range out.Y {
		out.Y[i] /= float64(len(in))
	}
	return out, nil
}

// Pct converts a fraction to a percentage.
func Pct(f float64) float64 { return f * 100 }

// FmtPct renders a fraction as "12.3%".
func FmtPct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// FmtF renders a float compactly.
func FmtF(f float64) string {
	switch {
	case math.IsNaN(f):
		return "-"
	case f != 0 && math.Abs(f) < 0.01:
		return fmt.Sprintf("%.2e", f)
	default:
		return fmt.Sprintf("%.3f", f)
	}
}

// FmtCount renders a count with thousands separators (e.g. 1_234_567).
func FmtCount(n uint64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var out []byte
	lead := len(s) % 3
	if lead > 0 {
		out = append(out, s[:lead]...)
	}
	for i := lead; i < len(s); i += 3 {
		if len(out) > 0 {
			out = append(out, ',')
		}
		out = append(out, s[i:i+3]...)
	}
	return string(out)
}
