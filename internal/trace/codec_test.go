package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTripBinary(t *testing.T, tr *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	return got
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	got := roundTripBinary(t, &Trace{Name: "empty"})
	if got.Name != "empty" || got.Len() != 0 {
		t.Fatalf("got %q with %d events", got.Name, got.Len())
	}
}

func TestBinaryRoundTripBasic(t *testing.T) {
	tr := testTrace()
	got := roundTripBinary(t, tr)
	if got.Name != tr.Name || !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Events, tr.Events)
	}
}

func TestBinaryRoundTripLargeAddressesAndJumps(t *testing.T) {
	tr := &Trace{Name: "jumps", Events: []Event{
		{Addr: 0xffff_fff8, Size: 8, Kind: Write, Gap: 0xffff},
		{Addr: 0, Size: 4, Kind: Read},                   // huge negative jump
		{Addr: 0x8000_0000, Size: 4, Kind: Read},         // huge positive jump
		{Addr: 0x8000_0010, Size: 16, Kind: Write},       // small delta
		{Addr: 0x8000_0008, Size: 8, Kind: Read, Gap: 1}, // small negative delta
	}}
	got := roundTripBinary(t, tr)
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Events, tr.Events)
	}
}

func TestBinaryDeltaIsCompact(t *testing.T) {
	// Sequential access should cost well under 4 bytes/event.
	tr := &Trace{Name: "seq"}
	for i := 0; i < 10000; i++ {
		tr.Append(Event{Addr: uint32(0x1000 + 8*i), Size: 8, Kind: Write})
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if perEvent := float64(buf.Len()) / float64(tr.Len()); perEvent > 3.0 {
		t.Errorf("sequential trace costs %.2f bytes/event, want <= 3", perEvent)
	}
}

func TestBinaryRejectsNonPowerOfTwoSize(t *testing.T) {
	tr := &Trace{Events: []Event{{Addr: 0, Size: 6, Kind: Read}}}
	if err := WriteBinary(&bytes.Buffer{}, tr); err == nil {
		t.Fatal("size 6 encoded without error")
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	_, err := ReadBinary(strings.NewReader("NOPE....."))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut += 3 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes decoded without error", cut)
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "prop"}
		sizes := []uint8{1, 2, 4, 8, 16, 32, 64}
		for i := 0; i < int(n); i++ {
			k := Read
			if r.Intn(2) == 0 {
				k = Write
			}
			size := sizes[r.Intn(len(sizes))]
			addr := uint32(r.Uint64()) &^ (uint32(size) - 1)
			tr.Append(Event{Addr: addr, Size: size, Gap: uint16(r.Intn(1 << 16)), Kind: k})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return got.Name == tr.Name && reflect.DeepEqual(got.Events, tr.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Events, tr.Events)
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# name: x\n\n# a comment\nr 0x10 4 0\n\nw 0x20 8 2\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "x" || got.Len() != 2 {
		t.Fatalf("name=%q len=%d", got.Name, got.Len())
	}
	if got.Events[1] != (Event{Addr: 0x20, Size: 8, Gap: 2, Kind: Write}) {
		t.Fatalf("second event = %+v", got.Events[1])
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"r 0x10 4",         // missing field
		"q 0x10 4 0",       // bad kind
		"r zz 4 0",         // bad address
		"r 0x10 zz 0",      // bad size
		"r 0x10 4 zz",      // bad gap
		"r 0x10 4 0 extra", // extra field
		"r 0x10 999 0",     // size out of uint8
		"r 0x10 4 70000",   // gap out of uint16
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if err := WriteBinaryCompressed(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatal("compressed round trip mismatch")
	}
}

func TestCompressedSmaller(t *testing.T) {
	tr := &Trace{Name: "seq"}
	for i := 0; i < 50000; i++ {
		tr.Append(Event{Addr: uint32(0x1000 + 8*i), Size: 8, Kind: Write})
	}
	var plain, comp bytes.Buffer
	if err := WriteBinary(&plain, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryCompressed(&comp, tr); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= plain.Len() {
		t.Errorf("compressed %d >= plain %d", comp.Len(), plain.Len())
	}
}

func TestCompressedBadMagic(t *testing.T) {
	if _, err := ReadBinaryCompressed(strings.NewReader("XXXXdata")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadAuto(t *testing.T) {
	tr := testTrace()
	var bin, comp, txt bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryCompressed(&comp, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&txt, tr); err != nil {
		t.Fatal(err)
	}
	for i, buf := range []*bytes.Buffer{&bin, &comp, &txt} {
		got, err := ReadAuto(buf)
		if err != nil {
			t.Fatalf("format %d: %v", i, err)
		}
		if got.Len() != tr.Len() {
			t.Errorf("format %d: %d events", i, got.Len())
		}
	}
	if _, err := ReadAuto(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}
