package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Lenient decoding: a damaged trace file degrades into a
// partial-but-reported run instead of aborting it. The strict readers
// (ReadBinary, StreamBinary) treat any malformed record as fatal; the
// lenient variants skip records whose values are out of range (bit
// flips in stored fields) and stop early — keeping everything decoded
// so far — when the stream becomes structurally undecodable
// (truncation, broken varint framing). Either way the caller learns
// exactly what was lost via DecodeStats.

// ErrCorruptRecord marks a record whose framing decoded but whose
// values are impossible (address out of the 32-bit space, gap beyond
// 16 bits). Strict readers return it wrapped; lenient readers skip the
// record and count it.
var ErrCorruptRecord = errors.New("corrupt record")

// DecodeStats reports what a lenient decode encountered.
type DecodeStats struct {
	// Decoded counts events delivered to the caller.
	Decoded uint64
	// Skipped counts corrupt records that were detected and dropped.
	Skipped uint64
	// Truncated reports that the stream ended before the event count in
	// its header was satisfied (or mid-record).
	Truncated bool
	// FirstErr is the first problem encountered, nil for a clean decode.
	// It is informational: lenient decoding has already degraded
	// gracefully around it.
	FirstErr error
}

// Damaged reports whether the decode lost anything.
func (s DecodeStats) Damaged() bool { return s.Skipped > 0 || s.Truncated }

// String summarises the decode for log lines.
func (s DecodeStats) String() string {
	if !s.Damaged() {
		return fmt.Sprintf("clean decode: %d events", s.Decoded)
	}
	trunc := ""
	if s.Truncated {
		trunc = ", stream truncated"
	}
	return fmt.Sprintf("damaged decode: %d events kept, %d corrupt records skipped%s (first error: %v)",
		s.Decoded, s.Skipped, trunc, s.FirstErr)
}

// note records the first problem and classifies it.
func (s *DecodeStats) note(err error) {
	if s.FirstErr == nil {
		s.FirstErr = err
	}
}

// ReadBinaryLenient decodes a CWT1 binary trace, skipping corrupt
// records and truncating at structural damage instead of failing. The
// returned trace holds every event that survived; DecodeStats reports
// what did not. The error is non-nil only when nothing can be decoded
// at all (unreadable or wrong-magic header).
func ReadBinaryLenient(r io.Reader) (*Trace, DecodeStats, error) {
	var ds DecodeStats
	br := bufio.NewReader(r)
	t := &Trace{}
	count, err := decodeHeader(br, t)
	if err != nil {
		return nil, ds, err
	}
	prev := uint32(0)
	for i := uint64(0); i < count; i++ {
		e, newPrev, err := decodeEvent(br, prev, i)
		prev = newPrev
		if err != nil {
			ds.note(err)
			if errors.Is(err, ErrCorruptRecord) {
				ds.Skipped++
				continue
			}
			ds.Truncated = true
			break
		}
		t.Events = append(t.Events, e)
		ds.Decoded++
	}
	return t, ds, nil
}

// StreamBinaryLenient is the streaming counterpart of
// ReadBinaryLenient: fn is invoked for every intact event; corrupt
// records are skipped and structural damage truncates the stream. An
// error from fn still stops the scan and is returned. The header must
// be intact.
func StreamBinaryLenient(r io.Reader, fn func(Event) error) (name string, ds DecodeStats, err error) {
	br := bufio.NewReader(r)
	var t Trace
	count, err := decodeHeader(br, &t)
	if err != nil {
		return "", ds, err
	}
	prev := uint32(0)
	for i := uint64(0); i < count; i++ {
		e, newPrev, derr := decodeEvent(br, prev, i)
		prev = newPrev
		if derr != nil {
			ds.note(derr)
			if errors.Is(derr, ErrCorruptRecord) {
				ds.Skipped++
				continue
			}
			ds.Truncated = true
			break
		}
		if err := fn(e); err != nil {
			return t.Name, ds, err
		}
		ds.Decoded++
	}
	return t.Name, ds, nil
}

// decodeHeader reads the magic, name and event count into t, returning
// the declared event count. Shared by the strict and lenient readers.
func decodeHeader(br *bufio.Reader, t *Trace) (uint64, error) {
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return 0, err
	}
	if m != magic {
		return 0, ErrBadMagic
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return 0, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return 0, fmt.Errorf("trace: reading name: %w", err)
	}
	t.Name = string(name)
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("trace: reading event count: %w", err)
	}
	return count, nil
}
