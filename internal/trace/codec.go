package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary trace format:
//
//	magic "CWT1" (4 bytes)
//	name length (uvarint) + name bytes
//	event count (uvarint)
//	per event:
//	  tag byte: bit0 = kind (0 read, 1 write),
//	            bits1..3 = log2(size) for power-of-two sizes 1..128,
//	            bit4 = gap present,
//	            bit5 = address is delta-encoded
//	  address: uvarint (absolute) or signed varint (delta from previous)
//	  gap: uvarint (only if bit4 set; omitted gaps are zero)
//
// Delta encoding keeps sequential workloads (linpack, liver) to ~3
// bytes/event.

var magic = [4]byte{'C', 'W', 'T', '1'}

var (
	// ErrBadMagic reports a stream that does not start with the trace
	// file magic.
	ErrBadMagic = errors.New("trace: bad magic (not a CWT1 trace file)")
)

const (
	tagKindWrite = 1 << 0
	tagSizeShift = 1
	tagSizeMask  = 0x7 << tagSizeShift
	tagHasGap    = 1 << 4
	tagDelta     = 1 << 5
)

func log2u8(v uint8) (uint8, bool) {
	if v == 0 || v&(v-1) != 0 {
		return 0, false
	}
	var n uint8
	for v > 1 {
		v >>= 1
		n++
	}
	return n, true
}

// WriteBinary encodes the trace to w in the CWT1 binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Events))); err != nil {
		return err
	}
	prev := uint32(0)
	for i, e := range t.Events {
		tag := byte(0)
		if e.Kind == Write {
			tag |= tagKindWrite
		}
		l2, ok := log2u8(e.Size)
		if !ok {
			return fmt.Errorf("trace: event %d has non-power-of-two size %d", i, e.Size)
		}
		tag |= l2 << tagSizeShift
		if e.Gap != 0 {
			tag |= tagHasGap
		}
		delta := int64(e.Addr) - int64(prev)
		// Use delta when it encodes smaller than the absolute address.
		useDelta := i > 0 && (delta < 1<<20 && delta > -(1<<20))
		if useDelta {
			tag |= tagDelta
		}
		if err := bw.WriteByte(tag); err != nil {
			return err
		}
		if useDelta {
			if err := putVarint(delta); err != nil {
				return err
			}
		} else if err := putUvarint(uint64(e.Addr)); err != nil {
			return err
		}
		if e.Gap != 0 {
			if err := putUvarint(uint64(e.Gap)); err != nil {
				return err
			}
		}
		prev = e.Addr
	}
	return bw.Flush()
}

// ReadBinary decodes a CWT1 binary trace from r. Decoding is strict:
// the first malformed record fails the whole read. Use
// ReadBinaryLenient to salvage what a damaged file still holds.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	t := &Trace{}
	count, err := decodeHeader(br, t)
	if err != nil {
		return nil, err
	}
	if count > 0 && count < 1<<28 {
		t.Events = make([]Event, 0, count)
	}
	prev := uint32(0)
	for i := uint64(0); i < count; i++ {
		e, newPrev, err := decodeEvent(br, prev, i)
		if err != nil {
			return nil, err
		}
		prev = newPrev
		t.Events = append(t.Events, e)
	}
	return t, nil
}

// WriteText encodes the trace in a line-oriented, human-readable format:
// a "# name: <name>" header followed by one "r|w <hex addr> <size>
// <gap>" line per event.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name: %s\n", t.Name); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes the text trace format produced by WriteText. Blank
// lines and lines starting with '#' (other than the name header) are
// ignored.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# name:"); ok {
				t.Name = strings.TrimSpace(rest)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		var e Event
		switch fields[0] {
		case "r":
			e.Kind = Read
		case "w":
			e.Kind = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad kind %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address: %w", lineNo, err)
		}
		e.Addr = uint32(addr)
		size, err := strconv.ParseUint(fields[2], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size: %w", lineNo, err)
		}
		e.Size = uint8(size)
		gap, err := strconv.ParseUint(fields[3], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad gap: %w", lineNo, err)
		}
		e.Gap = uint16(gap)
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
