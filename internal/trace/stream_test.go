package trace

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestStreamWriterRoundTrip(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	w := NewStreamWriter(&buf, tr.Name)
	for _, e := range tr.Events {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The stream is a valid CWT1 file readable by the in-memory decoder.
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatal("stream writer round trip mismatch")
	}
}

func TestStreamWriterMatchesWriteBinary(t *testing.T) {
	tr := testTrace()
	var a, b bytes.Buffer
	if err := WriteBinary(&a, tr); err != nil {
		t.Fatal(err)
	}
	w := NewStreamWriter(&b, tr.Name)
	for _, e := range tr.Events {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("stream writer output differs from WriteBinary (formats must be identical)")
	}
}

func TestStreamWriterErrors(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf, "x")
	if err := w.Append(Event{Addr: 0, Size: 6, Kind: Read}); err == nil {
		t.Error("non-power-of-two size accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Event{Addr: 0, Size: 4, Kind: Read}); err == nil {
		t.Error("append after Close accepted")
	}
	if err := w.Close(); err == nil {
		t.Error("double Close accepted")
	}
}

func TestStreamBinary(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var got []Event
	name, n, err := StreamBinary(&buf, func(e Event) error {
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if name != tr.Name || n != uint64(tr.Len()) {
		t.Errorf("name=%q n=%d", name, n)
	}
	if !reflect.DeepEqual(got, tr.Events) {
		t.Error("streamed events differ")
	}
}

func TestStreamBinaryEarlyStop(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	count := 0
	_, n, err := StreamBinary(&buf, func(e Event) error {
		count++
		if count == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if n != 2 {
		t.Errorf("processed %d events before stop, want 2", n)
	}
}

func TestStreamBinaryBadInput(t *testing.T) {
	if _, _, err := StreamBinary(bytes.NewReader([]byte("XXXX")), func(Event) error { return nil }); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := StreamBinary(bytes.NewReader(nil), func(Event) error { return nil }); err == nil {
		t.Error("empty stream accepted")
	}
}

// TestStreamLargeTraceConstantMemory is a smoke check that the
// streaming reader handles a large trace built by the streaming writer.
func TestStreamLargeTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf, "big")
	const n = 200_000
	for i := 0; i < n; i++ {
		if err := w.Append(Event{Addr: uint32(i * 8), Size: 8, Kind: Write}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var count uint64
	_, total, err := StreamBinary(&buf, func(e Event) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n || total != n {
		t.Errorf("streamed %d/%d events", count, total)
	}
}
