// Package trace defines the memory-reference stream representation used
// throughout the simulator.
//
// A trace is a sequence of Events. Each event is a data load or a data
// store of Size bytes at Addr, annotated with Gap: the number of
// instructions executed since the previous event that did not reference
// data memory. This keeps traces compact (no explicit instruction-fetch
// events) while preserving both the instruction count — needed for
// transactions-per-instruction metrics (paper Figs 18–19) — and the
// cycle position of every write — needed for the write-buffer timing
// model (paper Fig 5).
//
// The convention mirrors the paper's experimental environment (§2): the
// MultiTitan has no byte stores, so all events are aligned 4B or 8B
// word accesses, and instruction fetches are not part of the data
// stream (separate I and D caches are assumed).
package trace

import "fmt"

// Kind discriminates loads from stores.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is a single data-memory reference.
//
// The struct is packed to 8 bytes so multi-million-event traces stay
// cheap to hold in memory.
type Event struct {
	// Addr is the virtual byte address of the access.
	Addr uint32
	// Gap is the number of non-memory instructions executed since the
	// previous event. The instruction containing the reference itself is
	// NOT included in Gap; an event therefore accounts for Gap+1
	// instructions.
	Gap uint16
	// Size is the access width in bytes (4 or 8 in the workloads shipped
	// with this repository; the simulator accepts 1..255).
	Size uint8
	// Kind is Read or Write.
	Kind Kind
}

// Instructions returns the number of instructions this event accounts
// for: its gap plus the referencing instruction itself. It is called
// from cache.Access, so it is part of the zero-allocation hot path.
//
//simlint:hotpath
func (e Event) Instructions() uint64 { return uint64(e.Gap) + 1 }

// End returns the first byte address past the access.
func (e Event) End() uint32 { return e.Addr + uint32(e.Size) }

// String renders the event in the text trace format: "r addr size gap".
func (e Event) String() string {
	c := "r"
	if e.Kind == Write {
		c = "w"
	}
	return fmt.Sprintf("%s 0x%x %d %d", c, e.Addr, e.Size, e.Gap)
}

// Trace is an in-memory reference stream with its identifying metadata.
type Trace struct {
	// Name identifies the workload that produced the trace (e.g.
	// "linpack").
	Name string
	// Events is the reference stream in program order.
	Events []Event
}

// Stats summarises a trace, mirroring the columns of the paper's
// Table 1.
type Stats struct {
	Instructions uint64 // dynamic instruction count (gaps + references)
	Reads        uint64 // data loads
	Writes       uint64 // data stores
	ReadBytes    uint64 // bytes loaded
	WriteBytes   uint64 // bytes stored
}

// Refs returns the total number of data references.
func (s Stats) Refs() uint64 { return s.Reads + s.Writes }

// LoadStoreRatio returns reads per write, or 0 when the trace has no
// writes.
func (s Stats) LoadStoreRatio() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.Reads) / float64(s.Writes)
}

// Stats computes summary statistics for the trace.
func (t *Trace) Stats() Stats {
	var s Stats
	for _, e := range t.Events {
		s.Instructions += e.Instructions()
		switch e.Kind {
		case Read:
			s.Reads++
			s.ReadBytes += uint64(e.Size)
		case Write:
			s.Writes++
			s.WriteBytes += uint64(e.Size)
		}
	}
	return s
}

// Validate checks structural invariants: non-zero sizes, accesses
// aligned to their size, and no address wraparound. It returns an error
// describing the first violation.
func (t *Trace) Validate() error {
	for i, e := range t.Events {
		if e.Size == 0 {
			return fmt.Errorf("trace %q event %d: zero size", t.Name, i)
		}
		if e.Kind != Read && e.Kind != Write {
			return fmt.Errorf("trace %q event %d: bad kind %d", t.Name, i, e.Kind)
		}
		if uint32(e.Size)&(uint32(e.Size)-1) == 0 && e.Addr%uint32(e.Size) != 0 {
			return fmt.Errorf("trace %q event %d: address 0x%x not aligned to size %d", t.Name, i, e.Addr, e.Size)
		}
		if uint64(e.Addr)+uint64(e.Size) > 1<<32 {
			return fmt.Errorf("trace %q event %d: access at 0x%x size %d wraps the address space", t.Name, i, e.Addr, e.Size)
		}
	}
	return nil
}

// Writes returns a new trace containing only the store events, with
// gaps adjusted so instruction positions of the retained events are
// preserved (gaps of dropped reads are folded into the next write,
// saturating at the Gap field's capacity).
func (t *Trace) Writes() *Trace {
	out := &Trace{Name: t.Name}
	var pending uint64
	for _, e := range t.Events {
		if e.Kind != Write {
			pending += e.Instructions()
			continue
		}
		g := pending + uint64(e.Gap)
		if g > 0xffff {
			g = 0xffff
		}
		e.Gap = uint16(g)
		out.Events = append(out.Events, e)
		pending = 0
	}
	return out
}

// Slice returns a shallow sub-trace covering events [lo, hi).
func (t *Trace) Slice(lo, hi int) *Trace {
	return &Trace{Name: t.Name, Events: t.Events[lo:hi]}
}

// Append adds an event to the trace.
func (t *Trace) Append(e Event) { t.Events = append(t.Events, e) }

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }
