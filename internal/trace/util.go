package trace

import (
	"fmt"
	"sort"
)

// Concat joins traces end to end under a new name. Gaps are preserved;
// the instruction streams simply follow one another, as when one
// program phase follows another.
func Concat(name string, ts ...*Trace) *Trace {
	out := &Trace{Name: name}
	total := 0
	for _, t := range ts {
		total += t.Len()
	}
	out.Events = make([]Event, 0, total)
	for _, t := range ts {
		out.Events = append(out.Events, t.Events...)
	}
	return out
}

// InterleaveStats reports the timing fidelity of an interleave merge.
// The Gap field of an Event holds at most 65535 instructions, so a
// merged stream whose schedule contains a longer quiet period cannot
// express it on a single event; the merge instead carries the excess
// forward into the gaps of later events (which were computed against a
// smaller emitted time and therefore have headroom).
type InterleaveStats struct {
	// GapSplits counts events whose scheduled gap exceeded the Gap
	// field's capacity and was carried into subsequent events.
	GapSplits uint64
	// CarriedMax is the largest instruction deficit outstanding at any
	// point of the merge (how far emitted time lagged the schedule).
	CarriedMax uint64
	// LostInstructions is the deficit still outstanding when the merge
	// ran out of carrier events; Instructions() of the merged trace is
	// short by exactly this amount. Zero whenever enough events follow
	// every oversized gap.
	LostInstructions uint64
}

// Interleave merges traces by instruction time: events are replayed in
// global instruction order, modelling independent phases sharing one
// cache (coarse-grained multiprogramming without address translation).
// Gaps are recomputed so the merged trace's instruction positions match
// the union schedule. Gaps longer than the Gap field's capacity are
// split across subsequent events, preserving total instruction time
// (see InterleaveStats); use InterleaveOffset to also observe the
// fidelity counters.
func Interleave(name string, ts ...*Trace) *Trace {
	out, _ := InterleaveOffset(name, nil, ts...)
	return out
}

// InterleaveOffset is Interleave with a per-input start offset: input i
// begins at instruction time offsets[i] (missing entries mean zero), so
// staggered phase arrivals can be modelled. Ties at an instruction slot
// resolve by input order for determinism. The returned stats describe
// how faithfully the schedule fit the Gap field's capacity.
func InterleaveOffset(name string, offsets []uint64, ts ...*Trace) (*Trace, InterleaveStats) {
	type cursor struct {
		t    *Trace
		i    int
		when uint64 // instruction time of the event at i
	}
	cs := make([]*cursor, 0, len(ts))
	for si, t := range ts {
		if t.Len() == 0 {
			continue
		}
		var off uint64
		if si < len(offsets) {
			off = offsets[si]
		}
		cs = append(cs, &cursor{t: t, when: off + t.Events[0].Instructions()})
	}
	out := &Trace{Name: name}
	var st InterleaveStats
	// emitted is the instruction time the output events represent so
	// far (sum of gap+1); ideal is the same sum had gaps been unbounded.
	// Their difference is the deficit an oversized gap left behind,
	// absorbed by later events whose gaps are computed against emitted.
	var emitted, ideal uint64
	for len(cs) > 0 {
		// Pick the earliest event; ties resolve by input order for
		// determinism (cursor removal below preserves relative order).
		best := 0
		for i := 1; i < len(cs); i++ {
			if cs[i].when < cs[best].when {
				best = i
			}
		}
		c := cs[best]
		e := c.t.Events[c.i]
		gap := uint64(0)
		if c.when > emitted {
			gap = c.when - emitted - 1
		}
		if c.when > ideal {
			ideal += c.when - ideal
		} else {
			ideal++
		}
		if gap > 0xffff {
			st.GapSplits++
			gap = 0xffff
		}
		e.Gap = uint16(gap)
		out.Append(e)
		emitted += gap + 1
		if d := ideal - emitted; d > st.CarriedMax {
			st.CarriedMax = d
		}

		c.i++
		if c.i >= c.t.Len() {
			cs = append(cs[:best], cs[best+1:]...)
			continue
		}
		c.when += c.t.Events[c.i].Instructions()
	}
	st.LostInstructions = ideal - emitted
	return out, st
}

// Rebase returns a copy of the trace with delta added to every address.
// It fails if any access would leave the 32-bit address space.
func Rebase(t *Trace, delta int64) (*Trace, error) {
	out := &Trace{Name: t.Name, Events: make([]Event, t.Len())}
	for i, e := range t.Events {
		a := int64(e.Addr) + delta
		if a < 0 || a+int64(e.Size) > 1<<32 {
			return nil, fmt.Errorf("trace: rebased event %d at %#x+%d leaves the address space", i, e.Addr, delta)
		}
		e.Addr = uint32(a)
		out.Events[i] = e
	}
	return out, nil
}

// CompactRegions remaps the trace onto a dense address layout: every
// occupied 1<<blockBits superblock is assigned a consecutive slot
// (ascending by original block number) and addresses keep their offset
// within the block. Cache index and offset bits are untouched as long
// as blockBits exceeds the cache's index+offset width, so hit/miss
// behavior within each region is preserved while a sparse footprint
// (stack near the top of the address space, heap in the middle) packs
// into the low addresses — which lets per-core window shifts stay
// small. Numerically adjacent occupied blocks stay adjacent, so events
// spanning a block boundary remain contiguous. blockBits must be in
// [4, 31].
func CompactRegions(t *Trace, blockBits uint) (*Trace, error) {
	if blockBits < 4 || blockBits > 31 {
		return nil, fmt.Errorf("trace: compact block bits %d outside [4,31]", blockBits)
	}
	seen := make(map[uint32]struct{})
	for _, e := range t.Events {
		seen[e.Addr>>blockBits] = struct{}{}
		seen[(e.Addr+uint32(e.Size)-1)>>blockBits] = struct{}{}
	}
	blocks := make([]uint32, 0, len(seen))
	for b := range seen {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	slot := make(map[uint32]uint32, len(blocks))
	for i, b := range blocks {
		slot[b] = uint32(i)
	}
	mask := uint32(1)<<blockBits - 1
	out := &Trace{Name: t.Name, Events: make([]Event, t.Len())}
	for i, e := range t.Events {
		e.Addr = slot[e.Addr>>blockBits]<<blockBits | e.Addr&mask
		out.Events[i] = e
	}
	return out, nil
}

// Region is a contiguous address range [Base, Base+Size) with access
// counts, produced by Regions.
type Region struct {
	Base   uint32
	Size   uint64
	Reads  uint64
	Writes uint64
}

// Regions clusters the trace's footprint into regions separated by at
// least gap unused bytes and reports per-region access counts — a
// data-structure-level view of a workload (stack vs heap vs static, or
// individual arrays).
func Regions(t *Trace, gap uint32) []Region {
	if t.Len() == 0 {
		return nil
	}
	type span struct {
		lo, hi uint32
		r, w   uint64
	}
	spans := make([]span, 0, t.Len())
	for _, e := range t.Events {
		s := span{lo: e.Addr, hi: e.Addr + uint32(e.Size)}
		if e.Kind == Write {
			s.w = 1
		} else {
			s.r = 1
		}
		spans = append(spans, s)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })

	var out []Region
	cur := Region{Base: spans[0].lo}
	curHi := spans[0].lo
	flush := func() {
		cur.Size = uint64(curHi - cur.Base)
		out = append(out, cur)
	}
	for _, s := range spans {
		if s.lo > curHi && uint64(s.lo-curHi) >= uint64(gap) {
			flush()
			cur = Region{Base: s.lo}
			curHi = s.lo
		}
		cur.Reads += s.r
		cur.Writes += s.w
		if s.hi > curHi {
			curHi = s.hi
		}
	}
	flush()
	return out
}
