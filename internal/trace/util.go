package trace

import (
	"fmt"
	"sort"
)

// Concat joins traces end to end under a new name. Gaps are preserved;
// the instruction streams simply follow one another, as when one
// program phase follows another.
func Concat(name string, ts ...*Trace) *Trace {
	out := &Trace{Name: name}
	total := 0
	for _, t := range ts {
		total += t.Len()
	}
	out.Events = make([]Event, 0, total)
	for _, t := range ts {
		out.Events = append(out.Events, t.Events...)
	}
	return out
}

// Interleave merges traces by instruction time: events are replayed in
// global instruction order, modelling independent phases sharing one
// cache (coarse-grained multiprogramming without address translation).
// Gaps are recomputed so the merged trace's instruction positions match
// the union schedule; gaps saturate at the Gap field's capacity.
func Interleave(name string, ts ...*Trace) *Trace {
	type cursor struct {
		t    *Trace
		i    int
		when uint64 // instruction time of the event at i
	}
	cs := make([]*cursor, 0, len(ts))
	for _, t := range ts {
		if t.Len() == 0 {
			continue
		}
		cs = append(cs, &cursor{t: t, when: t.Events[0].Instructions()})
	}
	out := &Trace{Name: name}
	var lastTime uint64
	for len(cs) > 0 {
		// Pick the earliest event; ties resolve by input order for
		// determinism.
		best := 0
		for i := 1; i < len(cs); i++ {
			if cs[i].when < cs[best].when {
				best = i
			}
		}
		c := cs[best]
		e := c.t.Events[c.i]
		gap := uint64(0)
		if c.when > lastTime {
			gap = c.when - lastTime - 1
		}
		if gap > 0xffff {
			gap = 0xffff
		}
		e.Gap = uint16(gap)
		out.Append(e)
		lastTime = c.when

		c.i++
		if c.i >= c.t.Len() {
			cs = append(cs[:best], cs[best+1:]...)
			continue
		}
		c.when += c.t.Events[c.i].Instructions()
	}
	return out
}

// Rebase returns a copy of the trace with delta added to every address.
// It fails if any access would leave the 32-bit address space.
func Rebase(t *Trace, delta int64) (*Trace, error) {
	out := &Trace{Name: t.Name, Events: make([]Event, t.Len())}
	for i, e := range t.Events {
		a := int64(e.Addr) + delta
		if a < 0 || a+int64(e.Size) > 1<<32 {
			return nil, fmt.Errorf("trace: rebased event %d at %#x+%d leaves the address space", i, e.Addr, delta)
		}
		e.Addr = uint32(a)
		out.Events[i] = e
	}
	return out, nil
}

// Region is a contiguous address range [Base, Base+Size) with access
// counts, produced by Regions.
type Region struct {
	Base   uint32
	Size   uint64
	Reads  uint64
	Writes uint64
}

// Regions clusters the trace's footprint into regions separated by at
// least gap unused bytes and reports per-region access counts — a
// data-structure-level view of a workload (stack vs heap vs static, or
// individual arrays).
func Regions(t *Trace, gap uint32) []Region {
	if t.Len() == 0 {
		return nil
	}
	type span struct {
		lo, hi uint32
		r, w   uint64
	}
	spans := make([]span, 0, t.Len())
	for _, e := range t.Events {
		s := span{lo: e.Addr, hi: e.Addr + uint32(e.Size)}
		if e.Kind == Write {
			s.w = 1
		} else {
			s.r = 1
		}
		spans = append(spans, s)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })

	var out []Region
	cur := Region{Base: spans[0].lo}
	curHi := spans[0].lo
	flush := func() {
		cur.Size = uint64(curHi - cur.Base)
		out = append(out, cur)
	}
	for _, s := range spans {
		if s.lo > curHi && uint64(s.lo-curHi) >= uint64(gap) {
			flush()
			cur = Region{Base: s.lo}
			curHi = s.lo
		}
		cur.Reads += s.r
		cur.Writes += s.w
		if s.hi > curHi {
			curHi = s.hi
		}
	}
	flush()
	return out
}
