package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Read.String() != "read" {
		t.Errorf("Read.String() = %q", Read.String())
	}
	if Write.String() != "write" {
		t.Errorf("Write.String() = %q", Write.String())
	}
	if got := Kind(7).String(); got != "Kind(7)" {
		t.Errorf("Kind(7).String() = %q", got)
	}
}

func TestEventInstructions(t *testing.T) {
	e := Event{Gap: 0}
	if e.Instructions() != 1 {
		t.Errorf("zero-gap event accounts for %d instructions, want 1", e.Instructions())
	}
	e.Gap = 9
	if e.Instructions() != 10 {
		t.Errorf("gap-9 event accounts for %d instructions, want 10", e.Instructions())
	}
}

func TestEventEnd(t *testing.T) {
	e := Event{Addr: 0x100, Size: 8}
	if e.End() != 0x108 {
		t.Errorf("End() = %#x, want 0x108", e.End())
	}
}

func TestEventString(t *testing.T) {
	r := Event{Addr: 0x10, Size: 4, Gap: 3, Kind: Read}
	if got := r.String(); got != "r 0x10 4 3" {
		t.Errorf("read String() = %q", got)
	}
	w := Event{Addr: 0x20, Size: 8, Kind: Write}
	if got := w.String(); got != "w 0x20 8 0" {
		t.Errorf("write String() = %q", got)
	}
}

func testTrace() *Trace {
	return &Trace{Name: "t", Events: []Event{
		{Addr: 0, Size: 4, Kind: Read, Gap: 2},
		{Addr: 8, Size: 8, Kind: Write, Gap: 0},
		{Addr: 16, Size: 4, Kind: Read, Gap: 5},
		{Addr: 24, Size: 8, Kind: Write, Gap: 1},
	}}
}

func TestStats(t *testing.T) {
	s := testTrace().Stats()
	if s.Reads != 2 || s.Writes != 2 {
		t.Fatalf("reads=%d writes=%d, want 2/2", s.Reads, s.Writes)
	}
	if s.Refs() != 4 {
		t.Errorf("Refs() = %d, want 4", s.Refs())
	}
	// Instructions: gaps 2+0+5+1 = 8, plus 4 referencing instructions.
	if s.Instructions != 12 {
		t.Errorf("Instructions = %d, want 12", s.Instructions)
	}
	if s.ReadBytes != 8 || s.WriteBytes != 16 {
		t.Errorf("bytes = %d/%d, want 8/16", s.ReadBytes, s.WriteBytes)
	}
	if s.LoadStoreRatio() != 1.0 {
		t.Errorf("LoadStoreRatio = %v, want 1", s.LoadStoreRatio())
	}
}

func TestLoadStoreRatioNoWrites(t *testing.T) {
	tr := &Trace{Events: []Event{{Addr: 0, Size: 4, Kind: Read}}}
	if r := tr.Stats().LoadStoreRatio(); r != 0 {
		t.Errorf("ratio with no writes = %v, want 0", r)
	}
}

func TestValidateOK(t *testing.T) {
	if err := testTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateZeroSize(t *testing.T) {
	tr := &Trace{Events: []Event{{Addr: 0, Size: 0, Kind: Read}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("zero-size event accepted")
	}
}

func TestValidateBadKind(t *testing.T) {
	tr := &Trace{Events: []Event{{Addr: 0, Size: 4, Kind: Kind(9)}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestValidateMisaligned(t *testing.T) {
	tr := &Trace{Events: []Event{{Addr: 2, Size: 4, Kind: Read}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("misaligned access accepted")
	}
}

func TestValidateWraparound(t *testing.T) {
	tr := &Trace{Events: []Event{{Addr: 0xffff_fff8, Size: 8, Kind: Read}}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("in-range access at top of space rejected: %v", err)
	}
	tr = &Trace{Events: []Event{{Addr: 0xffff_fffc, Size: 8, Kind: Read}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("wrapping access accepted")
	}
}

func TestWritesFilter(t *testing.T) {
	w := testTrace().Writes()
	if w.Len() != 2 {
		t.Fatalf("Writes() kept %d events, want 2", w.Len())
	}
	for _, e := range w.Events {
		if e.Kind != Write {
			t.Fatalf("Writes() kept a %v", e.Kind)
		}
	}
	// First write absorbs the read before it: gap 0 + read's 2+1.
	if w.Events[0].Gap != 3 {
		t.Errorf("first write gap = %d, want 3", w.Events[0].Gap)
	}
	// Second write absorbs the second read (gap 5 + 1) plus its own 1.
	if w.Events[1].Gap != 7 {
		t.Errorf("second write gap = %d, want 7", w.Events[1].Gap)
	}
	// Instruction positions are preserved.
	if got, want := w.Stats().Instructions, testTrace().Stats().Instructions; got != want {
		t.Errorf("Writes() instructions = %d, want %d", got, want)
	}
}

func TestWritesGapSaturation(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 20; i++ {
		tr.Append(Event{Addr: uint32(i * 4), Size: 4, Kind: Read, Gap: 0xffff})
	}
	tr.Append(Event{Addr: 0, Size: 4, Kind: Write})
	w := tr.Writes()
	if w.Len() != 1 {
		t.Fatalf("kept %d events, want 1", w.Len())
	}
	if w.Events[0].Gap != 0xffff {
		t.Errorf("gap = %d, want saturated 0xffff", w.Events[0].Gap)
	}
}

func TestSliceAliasesAndAppend(t *testing.T) {
	tr := testTrace()
	s := tr.Slice(1, 3)
	if s.Len() != 2 || s.Events[0].Addr != 8 {
		t.Fatalf("Slice(1,3) = %+v", s.Events)
	}
	if s.Name != tr.Name {
		t.Errorf("slice name %q, want %q", s.Name, tr.Name)
	}
	tr.Append(Event{Addr: 32, Size: 4, Kind: Read})
	if tr.Len() != 5 {
		t.Errorf("Len after Append = %d, want 5", tr.Len())
	}
}

func TestStatsProperty(t *testing.T) {
	// Reads+Writes always equals the event count; instruction count is
	// always at least the event count.
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := &Trace{}
		for i := 0; i < int(n); i++ {
			k := Read
			if r.Intn(2) == 0 {
				k = Write
			}
			tr.Append(Event{
				Addr: uint32(r.Intn(1<<20) * 4),
				Size: 4,
				Gap:  uint16(r.Intn(100)),
				Kind: k,
			})
		}
		s := tr.Stats()
		return s.Reads+s.Writes == uint64(tr.Len()) &&
			s.Instructions >= uint64(tr.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
