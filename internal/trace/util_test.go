package trace

import "testing"

func TestConcat(t *testing.T) {
	a := &Trace{Name: "a", Events: []Event{{Addr: 0, Size: 4, Kind: Read}}}
	b := &Trace{Name: "b", Events: []Event{{Addr: 8, Size: 4, Kind: Write}}}
	out := Concat("ab", a, b)
	if out.Name != "ab" || out.Len() != 2 {
		t.Fatalf("concat = %q len %d", out.Name, out.Len())
	}
	if out.Events[0].Addr != 0 || out.Events[1].Addr != 8 {
		t.Error("order wrong")
	}
	if Concat("empty").Len() != 0 {
		t.Error("empty concat")
	}
}

func TestInterleaveByTime(t *testing.T) {
	// a's events at instruction times 1, 2; b's at 1.5-ish: b has gap 0
	// event after a gap-0 event... construct: a = events at t=1, t=2.
	// b = one event at t=3 (gap 2).
	a := &Trace{Events: []Event{
		{Addr: 0x0, Size: 4, Kind: Read}, // t=1
		{Addr: 0x4, Size: 4, Kind: Read}, // t=2
	}}
	b := &Trace{Events: []Event{
		{Addr: 0x100, Size: 4, Kind: Write, Gap: 2}, // t=3
	}}
	out := Interleave("mix", a, b)
	if out.Len() != 3 {
		t.Fatalf("len = %d", out.Len())
	}
	if out.Events[0].Addr != 0x0 || out.Events[1].Addr != 0x4 || out.Events[2].Addr != 0x100 {
		t.Fatalf("order: %+v", out.Events)
	}
	// Instruction positions preserved: total = 3.
	if got := out.Stats().Instructions; got != 3 {
		t.Errorf("instructions = %d, want 3", got)
	}
}

func TestInterleaveDeterministicTies(t *testing.T) {
	a := &Trace{Events: []Event{{Addr: 0x0, Size: 4, Kind: Read}}}
	b := &Trace{Events: []Event{{Addr: 0x100, Size: 4, Kind: Read}}}
	out := Interleave("mix", a, b)
	// Tie at t=1: input order wins.
	if out.Events[0].Addr != 0x0 {
		t.Error("tie broken against input order")
	}
	if out.Events[1].Gap != 0 {
		t.Errorf("tied second event gap = %d", out.Events[1].Gap)
	}
}

func TestInterleaveEmptyInputs(t *testing.T) {
	if Interleave("x").Len() != 0 {
		t.Error("no inputs should give empty trace")
	}
	a := &Trace{Events: []Event{{Addr: 0, Size: 4, Kind: Read}}}
	if Interleave("x", a, &Trace{}).Len() != 1 {
		t.Error("empty input mishandled")
	}
}

// TestInterleaveOffsetSplitsOversizedGaps is the regression test for
// the gap-clamp bug: a scheduled quiet period longer than the Gap
// field's 65535-instruction capacity used to be silently truncated,
// shortening the merged trace. The split implementation carries the
// excess into later carrier events, so total instruction time is
// preserved exactly.
func TestInterleaveOffsetSplitsOversizedGaps(t *testing.T) {
	a := &Trace{Events: []Event{{Addr: 0x0, Size: 4, Kind: Read}}} // t=1
	b := &Trace{Events: []Event{
		{Addr: 0x100, Size: 4, Kind: Read}, // t=offset+1
		{Addr: 0x104, Size: 4, Kind: Read}, // t=offset+2
		{Addr: 0x108, Size: 4, Kind: Read}, // t=offset+3
	}}
	const offset = 100000
	out, st := InterleaveOffset("mix", []uint64{0, offset}, a, b)
	if out.Len() != 4 {
		t.Fatalf("len = %d", out.Len())
	}
	// Union schedule: events at 1, 100001, 100002, 100003 → 100003
	// instructions total.
	if got := out.Stats().Instructions; got != offset+3 {
		t.Errorf("instructions = %d, want %d", got, offset+3)
	}
	if st.GapSplits != 1 {
		t.Errorf("gap splits = %d, want 1", st.GapSplits)
	}
	if st.LostInstructions != 0 {
		t.Errorf("lost instructions = %d, want 0", st.LostInstructions)
	}
	// The oversized gap saturates its event and the remainder lands on
	// the next carrier: 1 + (65535+1) + (34464+1) + (0+1) = 100003.
	if out.Events[1].Gap != 0xffff {
		t.Errorf("split event gap = %d, want 65535", out.Events[1].Gap)
	}
	if out.Events[2].Gap != 34464 {
		t.Errorf("carrier event gap = %d, want 34464", out.Events[2].Gap)
	}
	if st.CarriedMax != offset+1-65537 {
		t.Errorf("carried max = %d, want %d", st.CarriedMax, offset+1-65537)
	}
}

// TestInterleaveOffsetLostInstructions: when no carrier events follow
// an oversized gap, the deficit cannot be represented and must be
// reported, not silently dropped.
func TestInterleaveOffsetLostInstructions(t *testing.T) {
	a := &Trace{Events: []Event{{Addr: 0x0, Size: 4, Kind: Read}}}
	b := &Trace{Events: []Event{{Addr: 0x100, Size: 4, Kind: Read}}}
	out, st := InterleaveOffset("mix", []uint64{0, 200000}, a, b)
	want := uint64(200001 - (1 + 65536))
	if st.LostInstructions != want {
		t.Errorf("lost = %d, want %d", st.LostInstructions, want)
	}
	if got := out.Stats().Instructions; got != 200001-want {
		t.Errorf("instructions = %d, want %d", got, 200001-want)
	}
}

// TestInterleaveTieAfterCursorRemoval pins deterministic tie-breaking
// by original input order even after an earlier input exhausts
// mid-merge and its cursor is removed from the working set.
func TestInterleaveTieAfterCursorRemoval(t *testing.T) {
	// a exhausts at t=1; b and c then tie at t=3. Input order must
	// still favor b, not whichever cursor slot a's removal shifted.
	a := &Trace{Events: []Event{{Addr: 0xa0, Size: 4, Kind: Read}}}         // t=1
	b := &Trace{Events: []Event{{Addr: 0xb0, Size: 4, Kind: Read, Gap: 2}}} // t=3
	c := &Trace{Events: []Event{{Addr: 0xc0, Size: 4, Kind: Read, Gap: 2}}} // t=3
	out := Interleave("mix", a, b, c)
	if out.Len() != 3 {
		t.Fatalf("len = %d", out.Len())
	}
	if out.Events[1].Addr != 0xb0 || out.Events[2].Addr != 0xc0 {
		t.Fatalf("tie after removal broken against input order: %+v", out.Events)
	}
	if got := out.Stats().Instructions; got != 4 {
		t.Errorf("instructions = %d, want 4 (events at 1, 3, 3+1)", got)
	}
}

// TestInterleaveOffsetEmptyInputs: empty traces are skipped whether or
// not they carry offsets, and an all-empty merge is empty with clean
// stats.
func TestInterleaveOffsetEmptyInputs(t *testing.T) {
	out, st := InterleaveOffset("x", []uint64{5, 10})
	if out.Len() != 0 || st != (InterleaveStats{}) {
		t.Errorf("no inputs: len %d stats %+v", out.Len(), st)
	}
	a := &Trace{Events: []Event{{Addr: 0, Size: 4, Kind: Read}}}
	out, st = InterleaveOffset("x", []uint64{7, 3}, &Trace{}, a)
	if out.Len() != 1 || out.Events[0].Gap != 3 {
		t.Errorf("empty first input mishandled: len %d events %+v", out.Len(), out.Events)
	}
	if st != (InterleaveStats{}) {
		t.Errorf("stats = %+v, want zero", st)
	}
}

// TestRebaseUpperBoundary: an access ending exactly at the top of the
// 32-bit space (a+Size == 1<<32) is legal; one byte further is not.
func TestRebaseUpperBoundary(t *testing.T) {
	a := &Trace{Events: []Event{{Addr: 0xfffffff0, Size: 8, Kind: Read}}}
	out, err := Rebase(a, 8) // ends at 0x100000000 exactly
	if err != nil {
		t.Fatalf("boundary access rejected: %v", err)
	}
	if out.Events[0].Addr != 0xfffffff8 {
		t.Errorf("addr = %#x", out.Events[0].Addr)
	}
	if _, err := Rebase(a, 9); err == nil {
		t.Error("access one past the boundary accepted")
	}
}

func TestRebase(t *testing.T) {
	a := &Trace{Events: []Event{{Addr: 0x100, Size: 4, Kind: Read}}}
	out, err := Rebase(a, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Events[0].Addr != 0x1100 {
		t.Errorf("addr = %#x", out.Events[0].Addr)
	}
	// Original untouched.
	if a.Events[0].Addr != 0x100 {
		t.Error("Rebase mutated input")
	}
	if _, err := Rebase(a, -0x200); err == nil {
		t.Error("negative wrap accepted")
	}
	if _, err := Rebase(a, 1<<32-8); err == nil {
		t.Error("overflow accepted")
	}
}

func TestRegions(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Addr: 0x1000, Size: 4, Kind: Read},
		{Addr: 0x1004, Size: 4, Kind: Write},
		{Addr: 0x1008, Size: 8, Kind: Write},
		{Addr: 0x9000, Size: 4, Kind: Read},
	}}
	regions := Regions(tr, 0x100)
	if len(regions) != 2 {
		t.Fatalf("%d regions: %+v", len(regions), regions)
	}
	r0 := regions[0]
	if r0.Base != 0x1000 || r0.Size != 16 || r0.Reads != 1 || r0.Writes != 2 {
		t.Errorf("region 0 = %+v", r0)
	}
	r1 := regions[1]
	if r1.Base != 0x9000 || r1.Reads != 1 || r1.Writes != 0 {
		t.Errorf("region 1 = %+v", r1)
	}
	if Regions(&Trace{}, 16) != nil {
		t.Error("empty trace should give nil regions")
	}
}

func TestRegionsMergesOverlaps(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Addr: 0x100, Size: 8, Kind: Write},
		{Addr: 0x104, Size: 4, Kind: Read}, // inside previous span
	}}
	regions := Regions(tr, 64)
	if len(regions) != 1 || regions[0].Size != 8 {
		t.Fatalf("regions = %+v", regions)
	}
}

func TestCompactRegions(t *testing.T) {
	// Three sparse superblocks (the yacc shape: static data near 0,
	// heap in the middle, stack near the top) plus an event that spans
	// a boundary between two adjacent occupied blocks.
	tr := &Trace{Name: "sparse", Events: []Event{
		{Addr: 0x0000_1234, Size: 4, Kind: Read},
		{Addr: 0x1000_0008, Size: 8, Kind: Write, Gap: 3},
		{Addr: 0x7fff_ff00, Size: 4, Kind: Write},
		{Addr: 0x7ffffffc, Size: 8, Kind: Read}, // crosses into block 0x80
	}}
	out, err := CompactRegions(tr, 24)
	if err != nil {
		t.Fatal(err)
	}
	// Occupied blocks 0x00, 0x10, 0x7f, 0x80 -> slots 0..3; offsets and
	// every non-address field survive.
	want := []uint32{0x0000_1234, 0x0100_0008, 0x02ff_ff00, 0x02ff_fffc}
	for i, e := range out.Events {
		if e.Addr != want[i] {
			t.Errorf("event %d addr = %#x, want %#x", i, e.Addr, want[i])
		}
		if e.Size != tr.Events[i].Size || e.Kind != tr.Events[i].Kind || e.Gap != tr.Events[i].Gap {
			t.Errorf("event %d lost non-address fields: %+v", i, e)
		}
	}
	// The boundary-spanning event stays contiguous: its last byte lands
	// in the next compact block.
	if end := out.Events[3].Addr + 8; end != 0x0300_0004 {
		t.Errorf("spanning event ends at %#x", end)
	}
	if _, err := CompactRegions(tr, 3); err == nil {
		t.Error("block bits below range accepted")
	}
	if _, err := CompactRegions(tr, 32); err == nil {
		t.Error("block bits above range accepted")
	}
}
