package trace

import "testing"

func TestConcat(t *testing.T) {
	a := &Trace{Name: "a", Events: []Event{{Addr: 0, Size: 4, Kind: Read}}}
	b := &Trace{Name: "b", Events: []Event{{Addr: 8, Size: 4, Kind: Write}}}
	out := Concat("ab", a, b)
	if out.Name != "ab" || out.Len() != 2 {
		t.Fatalf("concat = %q len %d", out.Name, out.Len())
	}
	if out.Events[0].Addr != 0 || out.Events[1].Addr != 8 {
		t.Error("order wrong")
	}
	if Concat("empty").Len() != 0 {
		t.Error("empty concat")
	}
}

func TestInterleaveByTime(t *testing.T) {
	// a's events at instruction times 1, 2; b's at 1.5-ish: b has gap 0
	// event after a gap-0 event... construct: a = events at t=1, t=2.
	// b = one event at t=3 (gap 2).
	a := &Trace{Events: []Event{
		{Addr: 0x0, Size: 4, Kind: Read}, // t=1
		{Addr: 0x4, Size: 4, Kind: Read}, // t=2
	}}
	b := &Trace{Events: []Event{
		{Addr: 0x100, Size: 4, Kind: Write, Gap: 2}, // t=3
	}}
	out := Interleave("mix", a, b)
	if out.Len() != 3 {
		t.Fatalf("len = %d", out.Len())
	}
	if out.Events[0].Addr != 0x0 || out.Events[1].Addr != 0x4 || out.Events[2].Addr != 0x100 {
		t.Fatalf("order: %+v", out.Events)
	}
	// Instruction positions preserved: total = 3.
	if got := out.Stats().Instructions; got != 3 {
		t.Errorf("instructions = %d, want 3", got)
	}
}

func TestInterleaveDeterministicTies(t *testing.T) {
	a := &Trace{Events: []Event{{Addr: 0x0, Size: 4, Kind: Read}}}
	b := &Trace{Events: []Event{{Addr: 0x100, Size: 4, Kind: Read}}}
	out := Interleave("mix", a, b)
	// Tie at t=1: input order wins.
	if out.Events[0].Addr != 0x0 {
		t.Error("tie broken against input order")
	}
	if out.Events[1].Gap != 0 {
		t.Errorf("tied second event gap = %d", out.Events[1].Gap)
	}
}

func TestInterleaveEmptyInputs(t *testing.T) {
	if Interleave("x").Len() != 0 {
		t.Error("no inputs should give empty trace")
	}
	a := &Trace{Events: []Event{{Addr: 0, Size: 4, Kind: Read}}}
	if Interleave("x", a, &Trace{}).Len() != 1 {
		t.Error("empty input mishandled")
	}
}

func TestRebase(t *testing.T) {
	a := &Trace{Events: []Event{{Addr: 0x100, Size: 4, Kind: Read}}}
	out, err := Rebase(a, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Events[0].Addr != 0x1100 {
		t.Errorf("addr = %#x", out.Events[0].Addr)
	}
	// Original untouched.
	if a.Events[0].Addr != 0x100 {
		t.Error("Rebase mutated input")
	}
	if _, err := Rebase(a, -0x200); err == nil {
		t.Error("negative wrap accepted")
	}
	if _, err := Rebase(a, 1<<32-8); err == nil {
		t.Error("overflow accepted")
	}
}

func TestRegions(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Addr: 0x1000, Size: 4, Kind: Read},
		{Addr: 0x1004, Size: 4, Kind: Write},
		{Addr: 0x1008, Size: 8, Kind: Write},
		{Addr: 0x9000, Size: 4, Kind: Read},
	}}
	regions := Regions(tr, 0x100)
	if len(regions) != 2 {
		t.Fatalf("%d regions: %+v", len(regions), regions)
	}
	r0 := regions[0]
	if r0.Base != 0x1000 || r0.Size != 16 || r0.Reads != 1 || r0.Writes != 2 {
		t.Errorf("region 0 = %+v", r0)
	}
	r1 := regions[1]
	if r1.Base != 0x9000 || r1.Reads != 1 || r1.Writes != 0 {
		t.Errorf("region 1 = %+v", r1)
	}
	if Regions(&Trace{}, 16) != nil {
		t.Error("empty trace should give nil regions")
	}
}

func TestRegionsMergesOverlaps(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Addr: 0x100, Size: 8, Kind: Write},
		{Addr: 0x104, Size: 4, Kind: Read}, // inside previous span
	}}
	regions := Regions(tr, 64)
	if len(regions) != 1 || regions[0].Size != 8 {
		t.Fatalf("regions = %+v", regions)
	}
}
