package trace

import (
	"bufio"
	"compress/flate"
	"fmt"
	"io"
)

// Compressed trace format: magic "CWTZ" followed by a DEFLATE stream
// whose decompressed payload is a complete CWT1 binary trace. Long
// traces are highly compressible (delta-encoded sequential runs), so
// this typically shrinks files another 2-4x.

var magicZ = [4]byte{'C', 'W', 'T', 'Z'}

// WriteBinaryCompressed encodes the trace as a flate-compressed CWT1
// stream.
func WriteBinaryCompressed(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicZ[:]); err != nil {
		return err
	}
	fw, err := flate.NewWriter(bw, flate.DefaultCompression)
	if err != nil {
		return err
	}
	if err := WriteBinary(fw, t); err != nil {
		return err
	}
	if err := fw.Close(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinaryCompressed decodes a CWTZ stream.
func ReadBinaryCompressed(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magicZ {
		return nil, fmt.Errorf("trace: bad magic (not a CWTZ compressed trace)")
	}
	fr := flate.NewReader(br)
	defer fr.Close()
	return ReadBinary(fr)
}

// ReadAuto decodes a trace in any of the three formats (CWT1 binary,
// CWTZ compressed, text), sniffing the leading bytes.
func ReadAuto(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil && len(head) < 1 {
		return nil, fmt.Errorf("trace: empty input: %w", err)
	}
	switch {
	case len(head) >= 4 && [4]byte(head) == magic:
		return ReadBinary(br)
	case len(head) >= 4 && [4]byte(head) == magicZ:
		return ReadBinaryCompressed(br)
	default:
		return ReadText(br)
	}
}
