package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Streaming codec: process traces without holding them in memory. The
// on-disk format is identical to WriteBinary/ReadBinary (CWT1), so
// files are interchangeable between the streaming and in-memory APIs.

// StreamBinary decodes a CWT1 stream, invoking fn for every event in
// order. fn returning an error stops the scan and returns that error.
// The trace name is passed to fn via the returned name value.
func StreamBinary(r io.Reader, fn func(Event) error) (name string, events uint64, err error) {
	br := bufio.NewReader(r)
	var t Trace
	count, err := decodeHeader(br, &t)
	if err != nil {
		return t.Name, 0, err
	}
	name = t.Name
	prev := uint32(0)
	for i := uint64(0); i < count; i++ {
		e, newPrev, err := decodeEvent(br, prev, i)
		if err != nil {
			return name, i, err
		}
		prev = newPrev
		if err := fn(e); err != nil {
			return name, i + 1, err
		}
	}
	return name, count, nil
}

// decodeEvent reads one event given the previous address (for delta
// decoding); it is shared by ReadBinary, StreamBinary and their lenient
// variants. Value-range violations (a corrupt but structurally intact
// record) are reported wrapping ErrCorruptRecord so lenient decoding
// can skip the record and resynchronize on the next tag byte; I/O and
// varint-framing failures are returned as-is and end the stream. The
// returned address is the delta base for the next event, advanced as
// far as decoding got even when the record is rejected.
func decodeEvent(br *bufio.Reader, prev uint32, i uint64) (Event, uint32, error) {
	tag, err := br.ReadByte()
	if err != nil {
		return Event{}, prev, fmt.Errorf("trace: event %d tag: %w", i, err)
	}
	var e Event
	if tag&tagKindWrite != 0 {
		e.Kind = Write
	}
	e.Size = 1 << ((tag & tagSizeMask) >> tagSizeShift)
	if tag&tagDelta != 0 {
		d, err := binary.ReadVarint(br)
		if err != nil {
			return Event{}, prev, fmt.Errorf("trace: event %d delta: %w", i, err)
		}
		a := int64(prev) + d
		if a < 0 || a > int64(^uint32(0)) {
			return Event{}, prev, fmt.Errorf("trace: event %d: %w: delta %d from 0x%x leaves the address space", i, ErrCorruptRecord, d, prev)
		}
		e.Addr = uint32(a)
	} else {
		a, err := binary.ReadUvarint(br)
		if err != nil {
			return Event{}, prev, fmt.Errorf("trace: event %d addr: %w", i, err)
		}
		if a > uint64(^uint32(0)) {
			return Event{}, prev, fmt.Errorf("trace: event %d: %w: address 0x%x exceeds 32 bits", i, ErrCorruptRecord, a)
		}
		e.Addr = uint32(a)
	}
	if tag&tagHasGap != 0 {
		g, err := binary.ReadUvarint(br)
		if err != nil {
			return Event{}, e.Addr, fmt.Errorf("trace: event %d gap: %w", i, err)
		}
		if g > 0xffff {
			return Event{}, e.Addr, fmt.Errorf("trace: event %d: %w: gap %d exceeds 16 bits", i, ErrCorruptRecord, g)
		}
		e.Gap = uint16(g)
	}
	return e, e.Addr, nil
}

// StreamWriter emits a CWT1 stream incrementally: events are appended
// one at a time and the (count-prefixed) header is finalized by Close.
// Because the CWT1 header carries an event count, the writer buffers
// encoded events and emits everything on Close; the buffering is the
// encoded (compact) form, roughly 2-4 bytes per event, so a
// hundred-million-event trace streams in a few hundred MB rather than
// the multi-GB expanded form.
type StreamWriter struct {
	dst   io.Writer
	name  string
	buf   []byte
	count uint64
	prev  uint32
	done  bool
}

// NewStreamWriter starts a stream with the given trace name.
func NewStreamWriter(dst io.Writer, name string) *StreamWriter {
	return &StreamWriter{dst: dst, name: name}
}

// Append encodes one event.
func (w *StreamWriter) Append(e Event) error {
	if w.done {
		return fmt.Errorf("trace: append after Close")
	}
	tag := byte(0)
	if e.Kind == Write {
		tag |= tagKindWrite
	}
	l2, ok := log2u8(e.Size)
	if !ok {
		return fmt.Errorf("trace: event %d has non-power-of-two size %d", w.count, e.Size)
	}
	tag |= l2 << tagSizeShift
	if e.Gap != 0 {
		tag |= tagHasGap
	}
	delta := int64(e.Addr) - int64(w.prev)
	useDelta := w.count > 0 && delta < 1<<20 && delta > -(1<<20)
	if useDelta {
		tag |= tagDelta
	}
	w.buf = append(w.buf, tag)
	var tmp [binary.MaxVarintLen64]byte
	if useDelta {
		n := binary.PutVarint(tmp[:], delta)
		w.buf = append(w.buf, tmp[:n]...)
	} else {
		n := binary.PutUvarint(tmp[:], uint64(e.Addr))
		w.buf = append(w.buf, tmp[:n]...)
	}
	if e.Gap != 0 {
		n := binary.PutUvarint(tmp[:], uint64(e.Gap))
		w.buf = append(w.buf, tmp[:n]...)
	}
	w.prev = e.Addr
	w.count++
	return nil
}

// Close writes the header and the buffered event stream.
func (w *StreamWriter) Close() error {
	if w.done {
		return fmt.Errorf("trace: double Close")
	}
	w.done = true
	bw := bufio.NewWriter(w.dst)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(w.name)))
	if _, err := bw.Write(tmp[:n]); err != nil {
		return err
	}
	if _, err := bw.WriteString(w.name); err != nil {
		return err
	}
	n = binary.PutUvarint(tmp[:], w.count)
	if _, err := bw.Write(tmp[:n]); err != nil {
		return err
	}
	if _, err := bw.Write(w.buf); err != nil {
		return err
	}
	return bw.Flush()
}
