package trace

import (
	"bytes"
	"testing"
)

// FuzzReadBinary: arbitrary byte streams must never panic the decoder —
// they either parse or return an error — and whatever parses must
// re-encode and re-parse identically.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, &Trace{Name: "seed", Events: []Event{
		{Addr: 0x100, Size: 4, Kind: Read, Gap: 3},
		{Addr: 0x108, Size: 8, Kind: Write},
	}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("CWT1"))
	f.Add([]byte{})
	f.Add([]byte("CWT1\x00\xff\xff\xff\xff\xff\xff"))
	// Truncated and bit-flipped variants of the valid seed.
	raw := seed.Bytes()
	f.Add(raw[:len(raw)-1])
	f.Add(raw[:5])
	for pos := 4; pos < len(raw); pos += 3 {
		flipped := bytes.Clone(raw)
		flipped[pos] ^= 1 << (pos % 8)
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, tr); err != nil {
			// Decoded traces always have power-of-two sizes, so encoding
			// must succeed.
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		tr2, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tr2.Name != tr.Name || len(tr2.Events) != len(tr.Events) {
			t.Fatal("round trip drifted")
		}
		for i := range tr.Events {
			if tr.Events[i] != tr2.Events[i] {
				t.Fatalf("event %d drifted: %+v vs %+v", i, tr.Events[i], tr2.Events[i])
			}
		}
	})
}

// FuzzStreamBinary: the streaming decoder and both lenient decoders
// must never panic on arbitrary input, must agree with ReadBinary on
// intact streams, and lenient decoding must deliver exactly the events
// it counts.
func FuzzStreamBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, &Trace{Name: "seed", Events: []Event{
		{Addr: 0x2000, Size: 4, Kind: Write, Gap: 1},
		{Addr: 0x2004, Size: 4, Kind: Read},
		{Addr: 0x80000000, Size: 8, Kind: Write, Gap: 0xffff},
	}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	// Truncations and single-bit flips of a valid stream: the corpus the
	// issue's robustness story is about.
	raw := seed.Bytes()
	f.Add(raw[:len(raw)-2])
	f.Add(raw[:len(raw)/2])
	for _, pos := range []int{6, 8, len(raw) - 1} {
		flipped := bytes.Clone(raw)
		flipped[pos] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte("CWT1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var streamed []Event
		name, n, err := StreamBinary(bytes.NewReader(data), func(e Event) error {
			streamed = append(streamed, e)
			return nil
		})
		strict, strictErr := ReadBinary(bytes.NewReader(data))
		if (err == nil) != (strictErr == nil) {
			t.Fatalf("stream err %v vs read err %v disagree", err, strictErr)
		}
		if err == nil {
			if name != strict.Name || n != uint64(len(strict.Events)) || len(streamed) != len(strict.Events) {
				t.Fatalf("stream (%q, %d) vs read (%q, %d) drifted", name, n, strict.Name, len(strict.Events))
			}
			for i := range streamed {
				if streamed[i] != strict.Events[i] {
					t.Fatalf("event %d drifted", i)
				}
			}
		}

		// Lenient decoding: never errors past the header, counts what it
		// delivers, and loses nothing on inputs strict decoding accepts.
		ltr, ds, lerr := ReadBinaryLenient(bytes.NewReader(data))
		if lerr == nil && ds.Decoded != uint64(len(ltr.Events)) {
			t.Fatalf("lenient stats count %d but trace has %d", ds.Decoded, len(ltr.Events))
		}
		if strictErr == nil {
			if lerr != nil || ds.Damaged() || len(ltr.Events) != len(strict.Events) {
				t.Fatalf("lenient degraded an intact stream: err=%v stats=%v", lerr, ds)
			}
		}
		var lstreamed uint64
		_, sds, serr := StreamBinaryLenient(bytes.NewReader(data), func(Event) error {
			lstreamed++
			return nil
		})
		if serr == nil && sds.Decoded != lstreamed {
			t.Fatalf("lenient stream stats %d but fn saw %d", sds.Decoded, lstreamed)
		}
		if lerr == nil && serr == nil && sds != ds {
			// Identical inputs must damage identically (FirstErr aside).
			if sds.Decoded != ds.Decoded || sds.Skipped != ds.Skipped || sds.Truncated != ds.Truncated {
				t.Fatalf("lenient read %v vs stream %v disagree", ds, sds)
			}
		}
	})
}

// FuzzReadText: arbitrary text must never panic the text parser.
func FuzzReadText(f *testing.F) {
	f.Add("# name: x\nr 0x10 4 0\nw 0x20 8 1\n")
	f.Add("")
	f.Add("r")
	f.Add("r 0x10 4 0 5")
	f.Add("w 0xffffffff 255 65535\n")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ReadText(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

// FuzzReadAuto: format sniffing must never panic.
func FuzzReadAuto(f *testing.F) {
	f.Add([]byte("CWT1"))
	f.Add([]byte("CWTZ"))
	f.Add([]byte("r 0x10 4 0"))
	f.Add([]byte{0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadAuto(bytes.NewReader(data))
	})
}
