package trace

import (
	"bytes"
	"testing"
)

// FuzzReadBinary: arbitrary byte streams must never panic the decoder —
// they either parse or return an error — and whatever parses must
// re-encode and re-parse identically.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteBinary(&seed, &Trace{Name: "seed", Events: []Event{
		{Addr: 0x100, Size: 4, Kind: Read, Gap: 3},
		{Addr: 0x108, Size: 8, Kind: Write},
	}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("CWT1"))
	f.Add([]byte{})
	f.Add([]byte("CWT1\x00\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, tr); err != nil {
			// Decoded traces always have power-of-two sizes, so encoding
			// must succeed.
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		tr2, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tr2.Name != tr.Name || len(tr2.Events) != len(tr.Events) {
			t.Fatal("round trip drifted")
		}
		for i := range tr.Events {
			if tr.Events[i] != tr2.Events[i] {
				t.Fatalf("event %d drifted: %+v vs %+v", i, tr.Events[i], tr2.Events[i])
			}
		}
	})
}

// FuzzReadText: arbitrary text must never panic the text parser.
func FuzzReadText(f *testing.F) {
	f.Add("# name: x\nr 0x10 4 0\nw 0x20 8 1\n")
	f.Add("")
	f.Add("r")
	f.Add("r 0x10 4 0 5")
	f.Add("w 0xffffffff 255 65535\n")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := ReadText(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

// FuzzReadAuto: format sniffing must never panic.
func FuzzReadAuto(f *testing.F) {
	f.Add([]byte("CWT1"))
	f.Add([]byte("CWTZ"))
	f.Add([]byte("r 0x10 4 0"))
	f.Add([]byte{0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadAuto(bytes.NewReader(data))
	})
}
