package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func encodeTestTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func seqTrace(n int) *Trace {
	tr := &Trace{Name: "seq"}
	for i := 0; i < n; i++ {
		k := Read
		if i%3 == 0 {
			k = Write
		}
		tr.Append(Event{Addr: 0x1000 + uint32(i)*4, Size: 4, Gap: uint16(i % 7), Kind: k})
	}
	return tr
}

func TestLenientCleanDecode(t *testing.T) {
	tr := seqTrace(100)
	got, ds, err := ReadBinaryLenient(bytes.NewReader(encodeTestTrace(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Damaged() || ds.Skipped != 0 || ds.Truncated {
		t.Fatalf("clean input reported damage: %v", ds)
	}
	if ds.Decoded != 100 || len(got.Events) != 100 || got.Name != "seq" {
		t.Fatalf("decoded %d events (name %q), want 100 (seq)", len(got.Events), got.Name)
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d drifted: %+v vs %+v", i, got.Events[i], tr.Events[i])
		}
	}
	if !strings.Contains(ds.String(), "clean") {
		t.Errorf("stats string %q does not say clean", ds.String())
	}
}

func TestLenientTruncatedStream(t *testing.T) {
	raw := encodeTestTrace(t, seqTrace(200))
	cut := raw[:len(raw)/2]
	got, ds, err := ReadBinaryLenient(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Truncated {
		t.Fatal("truncation not reported")
	}
	if ds.FirstErr == nil {
		t.Error("no FirstErr for a truncated stream")
	}
	if ds.Decoded == 0 || len(got.Events) == 0 {
		t.Error("nothing salvaged from the intact prefix")
	}
	if ds.Decoded >= 200 {
		t.Errorf("decoded %d events from half a file", ds.Decoded)
	}
	// Strict decoding of the same input must fail outright.
	if _, err := ReadBinary(bytes.NewReader(cut)); err == nil {
		t.Error("strict ReadBinary accepted a truncated stream")
	}
}

// corruptGapRecord builds a stream whose middle record carries an
// impossible gap (> 16 bits): structurally decodable, semantically
// corrupt, so lenient mode can skip it and keep going.
func corruptGapRecord(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewStreamWriter(&buf, "dmg")
	if err := w.Append(Event{Addr: 0x100, Size: 4, Kind: Read}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Event{Addr: 0x104, Size: 4, Kind: Write, Gap: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Event{Addr: 0x108, Size: 4, Kind: Read}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The second record is "tag, varint delta 4>>... , gap 1". Find its
	// gap byte (value 1, last byte of the record) and blow it up to a
	// 3-byte varint > 0xffff by rewriting the stream directly: locate
	// the single 0x01 gap byte after the second tag.
	// Simpler: rebuild by hand below.
	_ = raw
	var hand bytes.Buffer
	hand.Write(magic[:])
	hand.WriteByte(3) // name length
	hand.WriteString("dmg")
	hand.WriteByte(3)                                // event count
	hand.Write([]byte{0x04, 0x80, 0x02})             // read, size 4 (log2=2 -> bits1..3=010), abs addr 0x100
	hand.Write([]byte{0x35, 0x08, 0x80, 0x80, 0x04}) // write+delta+gap, delta +4, gap 0x10000 (corrupt)
	hand.Write([]byte{0x24, 0x08})                   // read+delta, delta +4
	return hand.Bytes()
}

func TestLenientSkipsCorruptRecord(t *testing.T) {
	data := corruptGapRecord(t)
	// Strict: fails.
	if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("strict decode error = %v, want ErrCorruptRecord", err)
	}
	// Lenient: skips the middle record, keeps the outer two.
	got, ds, err := ReadBinaryLenient(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (%v)", ds.Skipped, ds)
	}
	if ds.Truncated {
		t.Error("corrupt record misreported as truncation")
	}
	if len(got.Events) != 2 {
		t.Fatalf("kept %d events, want 2", len(got.Events))
	}
	if got.Events[0].Addr != 0x100 || got.Events[1].Addr != 0x108 {
		t.Errorf("kept wrong events: %+v", got.Events)
	}
	if !errors.Is(ds.FirstErr, ErrCorruptRecord) {
		t.Errorf("FirstErr = %v, want ErrCorruptRecord", ds.FirstErr)
	}
	if !strings.Contains(ds.String(), "damaged") {
		t.Errorf("stats string %q does not say damaged", ds.String())
	}
}

func TestStreamBinaryLenient(t *testing.T) {
	data := corruptGapRecord(t)
	var seen []Event
	name, ds, err := StreamBinaryLenient(bytes.NewReader(data), func(e Event) error {
		seen = append(seen, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if name != "dmg" {
		t.Errorf("name = %q, want dmg", name)
	}
	if len(seen) != 2 || ds.Skipped != 1 || ds.Decoded != 2 {
		t.Errorf("seen %d events, stats %v", len(seen), ds)
	}
	// fn errors still stop the scan.
	boom := errors.New("boom")
	_, _, err = StreamBinaryLenient(bytes.NewReader(data), func(Event) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("callback error not propagated: %v", err)
	}
}

func TestLenientHeaderStillFatal(t *testing.T) {
	if _, _, err := ReadBinaryLenient(bytes.NewReader([]byte("NOPE"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic error = %v", err)
	}
	if _, _, err := ReadBinaryLenient(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, ds, err := StreamBinaryLenient(bytes.NewReader([]byte("CWT")), nil); err == nil {
		t.Errorf("3-byte input accepted: %v", ds)
	} else if err != io.ErrUnexpectedEOF && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Logf("header error: %v", err)
	}
}

func TestStrictDeltaWrapRejected(t *testing.T) {
	// A delta stepping below address zero is now a detected corruption,
	// not a silent uint32 wrap.
	var hand bytes.Buffer
	hand.Write(magic[:])
	hand.WriteByte(1)
	hand.WriteString("x")
	hand.WriteByte(2)
	hand.Write([]byte{0x04, 0x10}) // read, abs addr 0x10
	hand.Write([]byte{0x24, 0x3f}) // read+delta, delta -32 -> addr -16
	if _, err := ReadBinary(bytes.NewReader(hand.Bytes())); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("negative-address delta error = %v, want ErrCorruptRecord", err)
	}
	tr, ds, err := ReadBinaryLenient(bytes.NewReader(hand.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Skipped != 1 || len(tr.Events) != 1 {
		t.Errorf("lenient: kept %d skipped %d, want 1/1", len(tr.Events), ds.Skipped)
	}
}
