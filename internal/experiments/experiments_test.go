package experiments

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
	"cachewrite/internal/workload"
)

// syntheticEnv builds an Env from six small synthetic traces with mixed
// locality, so every experiment runs in milliseconds.
func syntheticEnv() *Env {
	names := workload.PaperOrder()
	ts := make([]*trace.Trace, len(names))
	for i, name := range names {
		r := rand.New(rand.NewSource(int64(i + 1)))
		tr := &trace.Trace{Name: name}
		hot := make([]uint32, 24)
		for j := range hot {
			hot[j] = uint32(r.Intn(1<<13)) &^ 7
		}
		for j := 0; j < 5000; j++ {
			addr := hot[r.Intn(len(hot))]
			if r.Intn(4) == 0 {
				addr = uint32(r.Intn(1<<19)) &^ 7
			}
			k := trace.Read
			if r.Intn(3) == 0 {
				k = trace.Write
			}
			size := uint8(4)
			if r.Intn(2) == 0 {
				size = 8
				addr &^= 7
			}
			tr.Append(trace.Event{Addr: addr, Size: size, Gap: uint16(r.Intn(6)), Kind: k})
		}
		ts[i] = tr
	}
	return NewEnvFromTraces(ts)
}

func TestIDsCompleteAndOrdered(t *testing.T) {
	ids := IDs()
	want := []string{"table1", "fig1", "fig2", "table2", "fig5", "fig7", "fig8", "fig9",
		"table3", "fig10", "fig11", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25",
		"ext-cpi", "ext-burst", "ext-victim", "ext-perf", "ext-reuse", "ext-bus", "ext-faults", "ext-switch", "ext-warm", "ext-l2policy",
		"ext-coh-miss", "ext-coh-traffic", "ext-coh-schemes"}
	if len(ids) != len(want) {
		t.Fatalf("have %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %s, want %s (full: %v)", i, ids[i], want[i], ids)
		}
	}
}

func TestDescribe(t *testing.T) {
	for _, id := range IDs() {
		desc, err := Describe(id)
		if err != nil || desc == "" {
			t.Errorf("Describe(%s) = %q, %v", id, desc, err)
		}
	}
	if _, err := Describe("nope"); err == nil {
		t.Error("unknown id described")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run(syntheticEnv(), "nope"); err == nil {
		t.Fatal("unknown experiment ran")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	env := syntheticEnv()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(env, id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.Chart == nil && res.Table == nil {
				t.Fatalf("%s produced nothing", id)
			}
			if res.Chart != nil {
				if len(res.Chart.Series) == 0 {
					t.Fatalf("%s chart has no series", id)
				}
				for _, s := range res.Chart.Series {
					if len(s.X) == 0 || len(s.X) != len(s.Y) {
						t.Fatalf("%s series %q malformed: %d/%d points",
							id, s.Label, len(s.X), len(s.Y))
					}
				}
			}
			if res.Table != nil && len(res.Table.Rows) == 0 {
				t.Fatalf("%s table has no rows", id)
			}
		})
	}
}

func TestPerBenchmarkChartsHaveAverage(t *testing.T) {
	env := syntheticEnv()
	for _, id := range []string{"fig1", "fig2", "fig7", "fig8", "fig10", "fig11",
		"fig21", "fig22", "fig23", "fig24", "fig25"} {
		res, err := Run(env, id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Chart.Find("average") == nil {
			t.Errorf("%s missing average series", id)
		}
		// 6 benchmarks + average.
		if len(res.Chart.Series) != 7 {
			t.Errorf("%s has %d series, want 7", id, len(res.Chart.Series))
		}
	}
}

func TestFig5SeriesShape(t *testing.T) {
	res, err := Run(syntheticEnv(), "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chart.Series) != 3 {
		t.Fatalf("fig5 has %d series, want 3", len(res.Chart.Series))
	}
	merged := res.Chart.Find("% merged by 8-entry write-buffer")
	if merged == nil {
		t.Fatal("missing merged series")
	}
	// Retire interval 0 merges nothing; merging is monotone.
	if merged.Y[0] != 0 {
		t.Errorf("merging at interval 0 = %v, want 0", merged.Y[0])
	}
	for i := 1; i < len(merged.Y); i++ {
		if merged.Y[i] < merged.Y[i-1]-1e-9 {
			t.Errorf("merging not monotone at %v", merged.X[i])
		}
	}
	cpi := res.Chart.Find("write buffer full stall CPI")
	if cpi == nil || cpi.Y[0] != 0 {
		t.Error("stall CPI series wrong")
	}
}

func TestFig13SeriesCount(t *testing.T) {
	res, err := Run(syntheticEnv(), "fig13")
	if err != nil {
		t.Fatal(err)
	}
	// 3 policies x (6 benchmarks + average) = 21 series.
	if len(res.Chart.Series) != 21 {
		t.Fatalf("fig13 has %d series, want 21", len(res.Chart.Series))
	}
	for _, p := range []string{"write-validate", "write-around", "write-invalidate"} {
		if res.Chart.Find("average/"+p) == nil {
			t.Errorf("missing average/%s", p)
		}
	}
}

func TestFig17NoViolationsOnSynthetic(t *testing.T) {
	res, err := Run(syntheticEnv(), "fig17")
	if err != nil {
		t.Fatal(err)
	}
	last := res.Table.Rows[len(res.Table.Rows)-1]
	if !strings.Contains(last[len(last)-1], "0 violations") {
		t.Errorf("partial order violated: %v", last)
	}
}

func TestFig18SeriesOrdering(t *testing.T) {
	res, err := Run(syntheticEnv(), "fig18")
	if err != nil {
		t.Fatal(err)
	}
	wt := res.Chart.Find("write-through")
	wb := res.Chart.Find("write-back")
	rm := res.Chart.Find("read misses")
	wm := res.Chart.Find("write misses")
	if wt == nil || wb == nil || rm == nil || wm == nil {
		t.Fatal("missing series")
	}
	for i := range wt.X {
		// Totals dominate their components.
		if wb.Y[i] < rm.Y[i] || wb.Y[i] < wm.Y[i] {
			t.Errorf("write-back total below a component at %v", wt.X[i])
		}
		if wt.Y[i] < rm.Y[i]+wm.Y[i] {
			t.Errorf("write-through below miss total at %v", wt.X[i])
		}
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Run(syntheticEnv(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	// 6 benchmarks + total.
	if len(res.Table.Rows) != 7 {
		t.Fatalf("table1 has %d rows", len(res.Table.Rows))
	}
	if res.Table.Rows[6][0] != "total" {
		t.Errorf("last row %v", res.Table.Rows[6])
	}
}

func TestStaticTables(t *testing.T) {
	for _, id := range []string{"table2", "table3"} {
		res, err := Run(nil, id) // static tables need no env
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Table.Rows) == 0 {
			t.Errorf("%s empty", id)
		}
	}
}

func TestDiagrams(t *testing.T) {
	for _, id := range []string{"fig3", "fig4", "fig6", "fig12"} {
		if Diagram(id) == "" {
			t.Errorf("no diagram for %s", id)
		}
	}
	if Diagram("fig13") != "" {
		t.Error("data figure returned a diagram")
	}
}

func TestCacheStatsMemoized(t *testing.T) {
	env := syntheticEnv()
	cfg := stdConfig(1<<10, 16)
	a, err := env.CacheStats(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.CacheStats(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("memoized result differs")
	}
}

func TestCacheStatsBadConfig(t *testing.T) {
	env := syntheticEnv()
	if _, err := env.CacheStats(0, cache.Config{}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestBenchNames(t *testing.T) {
	env := syntheticEnv()
	names := env.benchNames()
	if len(names) != 6 || names[0] != "ccom" {
		t.Errorf("benchNames = %v", names)
	}
}

// TestFig14AverageBand runs the headline experiment on the real (but
// truncated) workloads and checks the paper's central quantitative
// claim: at 8KB/16B, write-validate removes on the order of 30% of all
// misses.
func TestFig14AverageBand(t *testing.T) {
	if testing.Short() {
		t.Skip("real workloads in -short mode")
	}
	ts, err := workload.GenerateAll(1)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnvFromTraces(ts)
	var sum float64
	for ti := range env.Traces {
		red, err := missReductions(env, ti, StdCacheSize, StdLineSize)
		if err != nil {
			t.Fatal(err)
		}
		sum += red[cache.WriteValidate][1]
	}
	avg := sum / float64(len(env.Traces))
	if avg < 0.15 || avg > 0.55 {
		t.Errorf("write-validate total miss reduction at 8KB/16B = %.1f%%; paper reports ~31%%", avg*100)
	}
}

func TestPrecomputeWarmsMemo(t *testing.T) {
	env := syntheticEnv()
	if err := env.Precompute(4); err != nil {
		t.Fatal(err)
	}
	// Every sweep config must now be memoized: CacheStats returns
	// without re-simulating. (Indirect check: results agree with a fresh
	// env's computation.)
	fresh := syntheticEnv()
	for ti := range env.Traces {
		for _, cfg := range SweepConfigs() {
			a, err := env.CacheStats(ti, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fresh.CacheStats(ti, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("precomputed stats differ for %s on trace %d", cfg, ti)
			}
		}
	}
}

func TestPrecomputeWorkerClamp(t *testing.T) {
	env := syntheticEnv()
	if err := env.Precompute(0); err != nil {
		t.Fatal(err)
	}
}

// TestCacheStatsConcurrent: the memoized environment is safe under
// concurrent figure runners (Precompute's contract).
func TestCacheStatsConcurrent(t *testing.T) {
	env := syntheticEnv()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				cfg := stdConfig(CacheSizes[i%len(CacheSizes)], StdLineSize)
				if _, err := env.CacheStats((w+i)%len(env.Traces), cfg); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
