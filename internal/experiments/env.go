// Package experiments contains one runner per figure and table of the
// paper's evaluation. Each runner takes an Env (the six benchmark
// traces plus a memoized simulation cache) and produces a stats.Chart
// or stats.Table whose series correspond one-to-one with the paper's
// plot.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"cachewrite/internal/cache"
	"cachewrite/internal/sweep"
	"cachewrite/internal/trace"
	"cachewrite/internal/workload"
)

// Paper sweep axes.
var (
	// CacheSizes is the paper's cache-capacity sweep: 1KB to 128KB.
	CacheSizes = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	// LineSizes is the paper's line-size sweep: 4B to 64B.
	LineSizes = []int{4, 8, 16, 32, 64}
)

const (
	// StdCacheSize is the fixed capacity for line-size sweeps (8KB).
	StdCacheSize = 8 << 10
	// StdLineSize is the fixed line size for capacity sweeps (16B).
	StdLineSize = 16
)

// memoKey identifies one memoized simulation. cache.Config is a flat
// comparable struct, so the key works directly as a map key — no
// fmt.Sprintf string building on the lookup path.
type memoKey struct {
	ti  int
	cfg cache.Config
}

// shard spreads keys across the memo's lock shards.
func (k memoKey) shard() int {
	h := uint64(k.ti)
	h = h<<7 ^ uint64(k.cfg.Size)
	h = h<<7 ^ uint64(k.cfg.LineSize)
	h = h<<7 ^ uint64(k.cfg.Assoc)
	h = h<<3 ^ uint64(k.cfg.WriteHit)
	h = h<<3 ^ uint64(k.cfg.WriteMiss)
	h = h<<3 ^ uint64(k.cfg.Replacement)
	h = h<<7 ^ uint64(k.cfg.ValidGranularity)
	if k.cfg.SectorFetch {
		h ^= 1 << 40
	}
	if k.cfg.WVMissWriteThrough {
		h ^= 1 << 41
	}
	h *= 0x9e3779b97f4a7c15 // Fibonacci hash: mix all bits into the top
	return int(h >> (64 - memoShardBits))
}

const (
	memoShardBits = 6
	memoShards    = 1 << memoShardBits
)

// memoEntry is one simulation result. The once gate gives exact
// compute-once semantics under concurrent CacheStats calls for the
// same key without holding any shard lock during the simulation.
type memoEntry struct {
	once  sync.Once
	stats cache.Stats
	err   error
}

// memoShard is one lock stripe of the memo.
type memoShard struct {
	mu sync.Mutex
	m  map[memoKey]*memoEntry
}

// Env holds the benchmark traces and memoizes cache simulations so the
// many figures sharing a configuration pay for it once. The memo is
// sharded so parallel figure runners do not serialize on a single
// lock, and each key is computed exactly once even when raced.
type Env struct {
	Traces []*trace.Trace

	shards   [memoShards]memoShard
	computes atomic.Uint64
}

// NewEnv generates the six paper benchmarks at the given scale.
func NewEnv(scale int) (*Env, error) {
	ts, err := workload.GenerateAll(scale)
	if err != nil {
		return nil, err
	}
	return NewEnvFromTraces(ts), nil
}

// NewEnvCached is NewEnv backed by the on-disk trace cache at cacheDir
// (see workload.GenerateCached); an empty dir generates from scratch.
func NewEnvCached(scale int, cacheDir string) (*Env, error) {
	ts, err := workload.GenerateAllCached(cacheDir, scale)
	if err != nil {
		return nil, err
	}
	return NewEnvFromTraces(ts), nil
}

// NewEnvFromTraces wraps pre-generated traces (tests use this with
// truncated traces).
func NewEnvFromTraces(ts []*trace.Trace) *Env {
	return &Env{Traces: ts}
}

// entry returns the memo entry for k, creating it if needed. The shard
// lock is held only for the map access, never for a simulation.
func (e *Env) entry(k memoKey) *memoEntry {
	s := &e.shards[k.shard()]
	s.mu.Lock()
	ent := s.m[k]
	if ent == nil {
		if s.m == nil {
			s.m = make(map[memoKey]*memoEntry)
		}
		ent = &memoEntry{}
		s.m[k] = ent
	}
	s.mu.Unlock()
	return ent
}

// CacheStats runs trace index ti through the configuration (with a
// final flush) and memoizes the result. Concurrent callers asking for
// the same key compute it exactly once; callers with different keys
// never serialize on each other's simulations.
func (e *Env) CacheStats(ti int, cfg cache.Config) (cache.Stats, error) {
	ent := e.entry(memoKey{ti, cfg})
	ent.once.Do(func() {
		ent.stats, ent.err = e.compute(ti, cfg)
	})
	return ent.stats, ent.err
}

// compute performs one uncached simulation.
func (e *Env) compute(ti int, cfg cache.Config) (cache.Stats, error) {
	e.computes.Add(1)
	c, err := cache.New(cfg)
	if err != nil {
		return cache.Stats{}, fmt.Errorf("experiments: %s on %s: %w", cfg, e.Traces[ti].Name, err)
	}
	c.AccessTrace(e.Traces[ti])
	c.Flush()
	return c.Stats(), nil
}

// store seeds the memo with an externally computed result (the gang
// precompute path). If the key was already computed the existing value
// wins; gang and sequential results are bit-identical, so the outcome
// is the same either way.
func (e *Env) store(k memoKey, s cache.Stats) {
	ent := e.entry(k)
	ent.once.Do(func() { ent.stats = s })
}

// Computes reports how many simulations the environment has actually
// run (memo misses). Tests use it to assert compute-once semantics.
func (e *Env) Computes() uint64 { return e.computes.Load() }

// stdConfig returns the baseline write-back fetch-on-write cache used
// throughout §3 and §5.
func stdConfig(size, lineSize int) cache.Config {
	return cache.Config{
		Size: size, LineSize: lineSize, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite,
	}
}

// kb formats a byte count as its KB value for chart X axes.
func kb(bytes int) float64 { return float64(bytes) }

// benchNames returns the trace names in order.
func (e *Env) benchNames() []string {
	names := make([]string, len(e.Traces))
	for i, t := range e.Traces {
		names[i] = t.Name
	}
	return names
}

// SweepConfigs enumerates every cache configuration the paper figures
// consult: the capacity sweep at 16B lines and the line-size sweep at
// 8KB, each under all four write-miss policies (no-allocate policies
// paired with write-through, as in §4).
func SweepConfigs() []cache.Config {
	var cfgs []cache.Config
	add := func(size, line int) {
		for _, p := range cache.WriteMissPolicies() {
			cfg := stdConfig(size, line)
			cfg.WriteMiss = p
			if p == cache.WriteAround || p == cache.WriteInvalidate {
				cfg.WriteHit = cache.WriteThrough
			}
			cfgs = append(cfgs, cfg)
		}
	}
	for _, size := range CacheSizes {
		add(size, StdLineSize)
	}
	for _, line := range LineSizes {
		if line != StdLineSize {
			add(StdCacheSize, line)
		}
	}
	return cfgs
}

// Precompute warms the simulation memo for the full figure sweep using
// the given number of workers (values < 1 mean GOMAXPROCS). Running it
// before a batch of experiments turns the figure runners into pure
// lookups. It is safe to skip: every runner computes what it needs on
// demand.
func (e *Env) Precompute(workers int) error {
	return e.PrecomputeContext(context.Background(), workers)
}

// PrecomputeContext is Precompute with cancellation. The sweep is run
// by the gang engine — each trace's event slice is streamed once for a
// whole shard of configurations — on a bounded worker pool that
// abandons remaining work on the first error or cancellation.
func (e *Env) PrecomputeContext(ctx context.Context, workers int) error {
	return e.PrecomputeSweep(ctx, sweep.Options{Workers: workers})
}

// PrecomputeSweep is PrecomputeContext with the scheduler's full
// option set: a non-empty opt.Checkpoint makes the figure sweep
// crash-safe (completed units are journaled and a re-run resumes
// instead of recomputing), opt.SoftDeadline arms the worker watchdog,
// and opt.Retries bounds re-attempts of failed units. paperfigs uses
// this to survive SIGKILL mid-sweep.
func (e *Env) PrecomputeSweep(ctx context.Context, opt sweep.Options) error {
	cfgs := SweepConfigs()
	var units []sweep.Unit
	for ti, t := range e.Traces {
		units = append(units, sweep.Shard(ti, t, cfgs, opt.Shard)...)
	}
	return sweep.RunUnits(ctx, units, opt, func(u sweep.Unit, stats []cache.Stats) {
		for i, s := range stats {
			e.store(memoKey{u.TraceIndex, u.Cfgs[i]}, s)
		}
	})
}
