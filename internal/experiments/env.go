// Package experiments contains one runner per figure and table of the
// paper's evaluation. Each runner takes an Env (the six benchmark
// traces plus a memoized simulation cache) and produces a stats.Chart
// or stats.Table whose series correspond one-to-one with the paper's
// plot.
package experiments

import (
	"fmt"
	"sync"

	"cachewrite/internal/cache"
	"cachewrite/internal/trace"
	"cachewrite/internal/workload"
)

// Paper sweep axes.
var (
	// CacheSizes is the paper's cache-capacity sweep: 1KB to 128KB.
	CacheSizes = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	// LineSizes is the paper's line-size sweep: 4B to 64B.
	LineSizes = []int{4, 8, 16, 32, 64}
)

const (
	// StdCacheSize is the fixed capacity for line-size sweeps (8KB).
	StdCacheSize = 8 << 10
	// StdLineSize is the fixed line size for capacity sweeps (16B).
	StdLineSize = 16
)

// Env holds the benchmark traces and memoizes cache simulations so the
// many figures sharing a configuration pay for it once.
type Env struct {
	Traces []*trace.Trace

	mu   sync.Mutex
	memo map[string]cache.Stats
}

// NewEnv generates the six paper benchmarks at the given scale.
func NewEnv(scale int) (*Env, error) {
	ts, err := workload.GenerateAll(scale)
	if err != nil {
		return nil, err
	}
	return NewEnvFromTraces(ts), nil
}

// NewEnvFromTraces wraps pre-generated traces (tests use this with
// truncated traces).
func NewEnvFromTraces(ts []*trace.Trace) *Env {
	return &Env{Traces: ts, memo: make(map[string]cache.Stats)}
}

// CacheStats runs trace index ti through the configuration (with a
// final flush) and memoizes the result.
func (e *Env) CacheStats(ti int, cfg cache.Config) (cache.Stats, error) {
	key := fmt.Sprintf("%d|%d|%d|%d|%d|%d", ti, cfg.Size, cfg.LineSize, cfg.Assoc, cfg.WriteHit, cfg.WriteMiss)
	e.mu.Lock()
	if s, ok := e.memo[key]; ok {
		e.mu.Unlock()
		return s, nil
	}
	e.mu.Unlock()

	c, err := cache.New(cfg)
	if err != nil {
		return cache.Stats{}, fmt.Errorf("experiments: %s on %s: %w", cfg, e.Traces[ti].Name, err)
	}
	c.AccessTrace(e.Traces[ti])
	c.Flush()
	s := c.Stats()

	e.mu.Lock()
	e.memo[key] = s
	e.mu.Unlock()
	return s, nil
}

// stdConfig returns the baseline write-back fetch-on-write cache used
// throughout §3 and §5.
func stdConfig(size, lineSize int) cache.Config {
	return cache.Config{
		Size: size, LineSize: lineSize, Assoc: 1,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite,
	}
}

// kb formats a byte count as its KB value for chart X axes.
func kb(bytes int) float64 { return float64(bytes) }

// benchNames returns the trace names in order.
func (e *Env) benchNames() []string {
	names := make([]string, len(e.Traces))
	for i, t := range e.Traces {
		names[i] = t.Name
	}
	return names
}

// sweepConfigs enumerates every cache configuration the paper figures
// consult: the capacity sweep at 16B lines and the line-size sweep at
// 8KB, each under all four write-miss policies (no-allocate policies
// paired with write-through, as in §4).
func sweepConfigs() []cache.Config {
	var cfgs []cache.Config
	add := func(size, line int) {
		for _, p := range cache.WriteMissPolicies() {
			cfg := stdConfig(size, line)
			cfg.WriteMiss = p
			if p == cache.WriteAround || p == cache.WriteInvalidate {
				cfg.WriteHit = cache.WriteThrough
			}
			cfgs = append(cfgs, cfg)
		}
	}
	for _, size := range CacheSizes {
		add(size, StdLineSize)
	}
	for _, line := range LineSizes {
		if line != StdLineSize {
			add(StdCacheSize, line)
		}
	}
	return cfgs
}

// Precompute warms the simulation memo for the full figure sweep using
// the given number of workers (values < 1 mean one worker). Running it
// before a batch of experiments turns the figure runners into pure
// lookups. It is safe to skip: every runner computes what it needs on
// demand.
func (e *Env) Precompute(workers int) error {
	if workers < 1 {
		workers = 1
	}
	type job struct {
		ti  int
		cfg cache.Config
	}
	var jobs []job
	for ti := range e.Traces {
		for _, cfg := range sweepConfigs() {
			jobs = append(jobs, job{ti, cfg})
		}
	}
	ch := make(chan job)
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if _, err := e.CacheStats(j.ti, j.cfg); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}
