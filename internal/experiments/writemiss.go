package experiments

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/stats"
)

func init() {
	register("fig10", "write misses as % of all misses vs cache size (16B lines)", 100, fig10)
	register("fig11", "write misses as % of all misses vs line size (8KB caches)", 110, fig11)
	register("fig13", "write miss rate reductions of three write strategies vs cache size (16B lines)", 130, fig13)
	register("fig14", "total miss rate reductions of three write strategies vs cache size (16B lines)", 140, fig14)
	register("fig15", "write miss rate reductions of three write strategies vs line size (8KB caches)", 150, fig15)
	register("fig16", "total miss rate reductions of three write strategies vs line size (8KB caches)", 160, fig16)
	register("fig17", "empirical check of the relative fetch-traffic order of the four write-miss policies", 170, fig17)
}

// fig10 plots write misses as a percentage of all misses against cache
// size under fetch-on-write (the policy under which every write miss
// fetches).
func fig10(e *Env) (Result, error) {
	return writeMissShareSweep(e, "fig10",
		"Write misses as a percent of all misses vs cache size for 16B lines",
		"cache size (B)", CacheSizes,
		func(x int) (int, int) { return x, StdLineSize })
}

// fig11 plots the same against line size for 8KB caches.
func fig11(e *Env) (Result, error) {
	return writeMissShareSweep(e, "fig11",
		"Write misses as a percent of all misses vs line size for 8KB caches",
		"line size (B)", LineSizes,
		func(x int) (int, int) { return StdCacheSize, x })
}

func writeMissShareSweep(e *Env, id, title, xlabel string, xs []int, cfgOf func(x int) (size, line int)) (Result, error) {
	chart := &stats.Chart{ID: id, Title: title, XLabel: xlabel,
		YLabel: "write misses as % of all misses", XScale: stats.Log2}
	var perBench []stats.Series
	for ti, t := range e.Traces {
		s := stats.Series{Label: t.Name}
		for _, x := range xs {
			size, line := cfgOf(x)
			cs, err := e.CacheStats(ti, stdConfig(size, line))
			if err != nil {
				return Result{}, err
			}
			s.Point(float64(x), stats.Pct(cs.WriteMissFraction()))
		}
		perBench = append(perBench, s)
		chart.Add(s)
	}
	avg, err := stats.MeanSeries("average", perBench)
	if err != nil {
		return Result{}, err
	}
	chart.Add(avg)
	return Result{Chart: chart}, nil
}

// strategies are the three no-fetch policies compared against
// fetch-on-write in Figs 13-16.
var strategies = []cache.WriteMissPolicy{cache.WriteValidate, cache.WriteAround, cache.WriteInvalidate}

// missReductions computes, for trace ti and geometry (size, line), the
// write-miss reduction (Figs 13/15 metric) and total-miss reduction
// (Figs 14/16 metric) of each no-fetch strategy relative to
// fetch-on-write.
//
// Reductions count all fetch-triggering misses: a write-validate
// allocation whose invalid bytes are later read induces a read miss
// which charges against the policy, exactly as the paper defines
// eliminated misses (§4). Write-around can exceed 100% write-miss
// reduction when leaving old lines resident also avoids read misses
// (the paper's liver case).
func missReductions(e *Env, ti, size, line int) (map[cache.WriteMissPolicy][2]float64, error) {
	base := stdConfig(size, line)
	fow, err := e.CacheStats(ti, base)
	if err != nil {
		return nil, err
	}
	out := make(map[cache.WriteMissPolicy][2]float64, len(strategies))
	for _, p := range strategies {
		cfg := base
		cfg.WriteMiss = p
		if p == cache.WriteAround || p == cache.WriteInvalidate {
			// No-allocate policies are write-through policies (§4).
			cfg.WriteHit = cache.WriteThrough
		}
		cs, err := e.CacheStats(ti, cfg)
		if err != nil {
			return nil, err
		}
		saved := float64(fow.Misses()) - float64(cs.Misses())
		var wmr, tmr float64
		if fow.FetchedWriteMisses > 0 {
			wmr = saved / float64(fow.FetchedWriteMisses)
		}
		if fow.Misses() > 0 {
			tmr = saved / float64(fow.Misses())
		}
		out[p] = [2]float64{wmr, tmr}
	}
	return out, nil
}

func missReductionSweep(e *Env, id, title, xlabel string, xs []int, cfgOf func(x int) (size, line int), total bool) (Result, error) {
	ylabel := "% of write misses removed"
	if total {
		ylabel = "% of all misses removed"
	}
	chart := &stats.Chart{ID: id, Title: title, XLabel: xlabel, YLabel: ylabel, XScale: stats.Log2}
	idx := 0
	if total {
		idx = 1
	}
	for _, p := range strategies {
		var perBench []stats.Series
		for ti, t := range e.Traces {
			s := stats.Series{Label: fmt.Sprintf("%s/%s", t.Name, p)}
			for _, x := range xs {
				size, line := cfgOf(x)
				red, err := missReductions(e, ti, size, line)
				if err != nil {
					return Result{}, err
				}
				s.Point(float64(x), stats.Pct(red[p][idx]))
			}
			perBench = append(perBench, s)
			chart.Add(s)
		}
		avg, err := stats.MeanSeries("average/"+p.String(), perBench)
		if err != nil {
			return Result{}, err
		}
		chart.Add(avg)
	}
	return Result{Chart: chart}, nil
}

func fig13(e *Env) (Result, error) {
	return missReductionSweep(e, "fig13",
		"Write miss rate reductions of three write strategies for 16B lines",
		"cache size (B)", CacheSizes,
		func(x int) (int, int) { return x, StdLineSize }, false)
}

func fig14(e *Env) (Result, error) {
	return missReductionSweep(e, "fig14",
		"Total miss rate reductions of three write strategies for 16B lines",
		"cache size (B)", CacheSizes,
		func(x int) (int, int) { return x, StdLineSize }, true)
}

func fig15(e *Env) (Result, error) {
	return missReductionSweep(e, "fig15",
		"Write miss rate reductions of three write strategies for 8KB caches",
		"line size (B)", LineSizes,
		func(x int) (int, int) { return StdCacheSize, x }, false)
}

func fig16(e *Env) (Result, error) {
	return missReductionSweep(e, "fig16",
		"Total miss rate reduction of three write strategies for 8KB caches",
		"line size (B)", LineSizes,
		func(x int) (int, int) { return StdCacheSize, x }, true)
}

// fig17 verifies the paper's partial order of fetch traffic (Fig 17):
// write-validate <= write-invalidate, write-around <= write-invalidate,
// and write-invalidate <= fetch-on-write, across every benchmark and
// the full capacity and line-size sweeps. (Write-validate and
// write-around are mutually unordered.)
func fig17(e *Env) (Result, error) {
	tbl := &stats.Table{ID: "fig17",
		Title:   "Relative order of fetch traffic for write miss alternatives (empirical check)",
		Columns: []string{"benchmark", "config", "WV misses", "WA misses", "WI misses", "FOW misses", "order holds"},
	}
	type geom struct{ size, line int }
	var geoms []geom
	for _, s := range CacheSizes {
		geoms = append(geoms, geom{s, StdLineSize})
	}
	for _, l := range LineSizes {
		if l != StdLineSize {
			geoms = append(geoms, geom{StdCacheSize, l})
		}
	}
	violations := 0
	for ti, t := range e.Traces {
		for _, g := range geoms {
			m := map[cache.WriteMissPolicy]uint64{}
			for _, p := range cache.WriteMissPolicies() {
				cfg := stdConfig(g.size, g.line)
				cfg.WriteMiss = p
				if p == cache.WriteAround || p == cache.WriteInvalidate {
					cfg.WriteHit = cache.WriteThrough
				}
				cs, err := e.CacheStats(ti, cfg)
				if err != nil {
					return Result{}, err
				}
				m[p] = cs.Misses()
			}
			holds := m[cache.WriteValidate] <= m[cache.WriteInvalidate] &&
				m[cache.WriteAround] <= m[cache.WriteInvalidate] &&
				m[cache.WriteInvalidate] <= m[cache.FetchOnWrite]
			if !holds {
				violations++
			}
			tbl.AddRow(t.Name, fmt.Sprintf("%dKB/%dB", g.size>>10, g.line),
				fmt.Sprint(m[cache.WriteValidate]), fmt.Sprint(m[cache.WriteAround]),
				fmt.Sprint(m[cache.WriteInvalidate]), fmt.Sprint(m[cache.FetchOnWrite]),
				fmt.Sprint(holds))
		}
	}
	tbl.AddRow("TOTAL", "", "", "", "", "", fmt.Sprintf("%d violations", violations))
	return Result{Table: tbl}, nil
}
