package experiments

import (
	"fmt"

	"cachewrite/internal/cache"
	"cachewrite/internal/coherence"
	"cachewrite/internal/hierarchy"
	"cachewrite/internal/stats"
	"cachewrite/internal/trace"
)

func init() {
	register("ext-coh-miss", "EXTENSION: multi-core miss rate vs sharing degree per write-miss policy (MSI snooping, shared L2)", 400, extCohMiss)
	register("ext-coh-traffic", "EXTENSION: L1-side bus traffic vs sharing degree per write-miss policy (MSI snooping, shared L2)", 410, extCohTraffic)
	register("ext-coh-schemes", "EXTENSION: invalidate vs update vs competitive-hybrid coherence at 4 cores", 420, extCohSchemes)
}

// Coherence sweep parameters: each benchmark is replicated across the
// sharing degree with a quarter of its 64B address granules shared,
// cores staggered to break lockstep, and a prefix sample per core to
// bound simulation cost (each added core multiplies both the event
// count and the snoop work).
const (
	cohSharedFraction = 0.25
	cohStagger        = 2500
	cohMaxEvents      = 100000
)

// cohDegrees is the sharing-degree sweep: 1 core (the paper's world)
// through 8 cores contending on the shared granules.
var cohDegrees = []int{1, 2, 4, 8}

// cohL2 is the shared second level behind the snooping bus, matching
// the ext-l2policy geometry.
func cohL2() cache.Config {
	return cache.Config{Size: 64 << 10, LineSize: 64, Assoc: 4,
		WriteHit: cache.WriteBack, WriteMiss: cache.FetchOnWrite}
}

// cohL1 is the per-core private cache at the paper's standard geometry
// under the given write-miss policy (no-allocate policies paired with
// write-through, as in §4).
func cohL1(p cache.WriteMissPolicy) cache.Config {
	cfg := stdConfig(StdCacheSize, StdLineSize)
	cfg.WriteMiss = p
	if p == cache.WriteAround || p == cache.WriteInvalidate {
		cfg.WriteHit = cache.WriteThrough
	}
	return cfg
}

// cohRun is one coherent simulation's output: the summed per-core L1
// counters plus the system-level coherence/traffic counters.
type cohRun struct {
	l1  cache.Stats
	sys coherence.Stats
}

// cohWorkload builds the N-core workload for a benchmark. The paper
// traces have sparse footprints (yacc touches superblocks near 0x0,
// 0x10000000 and 0x7f000000, spanning 2GB), so no window stride could
// keep their raw images disjoint; compacting occupied 16MB superblocks
// first (cache index/offset bits untouched) shrinks every footprint
// below 64MB and the default 128MB stride fits all degrees.
func cohWorkload(t *trace.Trace, cores int) (*coherence.Workload, error) {
	dense, err := trace.CompactRegions(t, 24)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", t.Name, err)
	}
	w, err := coherence.BuildWorkload(dense, coherence.WorkloadConfig{
		Cores:            cores,
		SharedFraction:   cohSharedFraction,
		Stagger:          cohStagger,
		MaxEventsPerCore: cohMaxEvents,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s x%d: %w", t.Name, cores, err)
	}
	return w, nil
}

// cohSimulate replays t across the given sharing degree under one
// coherence scheme and write-miss policy.
func cohSimulate(t *trace.Trace, p cache.WriteMissPolicy, scheme coherence.Scheme, cores int) (cohRun, error) {
	w, err := cohWorkload(t, cores)
	if err != nil {
		return cohRun{}, err
	}
	l2 := cohL2()
	sys, err := coherence.New(coherence.Config{Cores: cores, L1: cohL1(p), L2: &l2, Scheme: scheme})
	if err != nil {
		return cohRun{}, fmt.Errorf("experiments: %s x%d: %w", t.Name, cores, err)
	}
	if err := sys.Run(w); err != nil {
		return cohRun{}, err
	}
	sys.Flush()
	return cohRun{l1: sys.AggregateL1(), sys: sys.Stats()}, nil
}

// cohSweepChart renders one metric of the sharing-degree sweep (MSI
// snooping) as a chart in the paper's per-benchmark + average style.
func cohSweepChart(e *Env, id, title, ylabel string, metric func(cohRun) float64) (Result, error) {
	chart := &stats.Chart{ID: id, Title: title,
		XLabel: "sharing degree (cores)", YLabel: ylabel, XScale: stats.Log2}
	for _, p := range cache.WriteMissPolicies() {
		var perBench []stats.Series
		for _, t := range e.Traces {
			s := stats.Series{Label: fmt.Sprintf("%s/%s", t.Name, p)}
			for _, cores := range cohDegrees {
				r, err := cohSimulate(t, p, coherence.Invalidate, cores)
				if err != nil {
					return Result{}, err
				}
				s.Point(float64(cores), metric(r))
			}
			perBench = append(perBench, s)
			chart.Add(s)
		}
		avg, err := stats.MeanSeries("average/"+p.String(), perBench)
		if err != nil {
			return Result{}, err
		}
		chart.Add(avg)
	}
	return Result{Chart: chart}, nil
}

// extCohMiss: aggregate L1 miss rate vs sharing degree. Sharing misses
// (lines lost to remote writes) push every policy's miss rate up with
// degree; the no-allocate policies additionally forgo the prefetch
// effect of fetch-on-write on shared granules.
func extCohMiss(e *Env) (Result, error) {
	return cohSweepChart(e, "ext-coh-miss",
		"BEYOND THE PAPER: multi-core miss rate vs sharing degree (8KB/16B private L1s, MSI snooping, 64KB shared L2, 25% shared granules)",
		"aggregate L1 miss rate (%)",
		func(r cohRun) float64 { return stats.Pct(r.l1.MissRate()) })
}

// extCohTraffic: L1-side bus bytes (fills, write-backs and coherence
// flushes, plus update broadcasts — zero under MSI) per 1000
// references vs sharing degree — the multi-core version of the paper's
// back-side traffic question.
func extCohTraffic(e *Env) (Result, error) {
	return cohSweepChart(e, "ext-coh-traffic",
		"BEYOND THE PAPER: L1-side bus traffic vs sharing degree (8KB/16B private L1s, MSI snooping, 64KB shared L2, 25% shared granules)",
		"bus bytes per 1000 references",
		func(r cohRun) float64 {
			if refs := r.l1.Refs(); refs > 0 {
				return float64(r.sys.BusBytes()) / float64(refs) * 1000
			}
			return 0
		})
}

// extCohSchemes compares the three coherence schemes at 4 cores (plus
// a no-coherence baseline: the same interleaved reference stream
// through one shared single-core hierarchy) under the standard
// write-back fetch-on-write policy.
func extCohSchemes(e *Env) (Result, error) {
	tbl := &stats.Table{ID: "ext-coh-schemes",
		Title: "Coherence schemes at 4 cores (8KB/16B WB+FOW private L1s, 64KB/64B shared L2, 25% shared granules; per 1000 references)",
		Columns: []string{"benchmark", "scheme", "miss rate", "sharing misses/1k",
			"invalidations/1k", "updates/1k", "bus bytes/1k"},
	}
	const cores = 4
	for _, t := range e.Traces {
		for _, scheme := range coherence.Schemes() {
			r, err := cohSimulate(t, cache.FetchOnWrite, scheme, cores)
			if err != nil {
				return Result{}, err
			}
			k := float64(r.l1.Refs()) / 1000
			tbl.AddRow(t.Name, scheme.String(),
				stats.FmtPct(r.l1.MissRate()),
				fmt.Sprintf("%.2f", float64(r.sys.SharingMisses)/k),
				fmt.Sprintf("%.2f", float64(r.sys.InvalidationsReceived+r.sys.HybridInvalidations)/k),
				fmt.Sprintf("%.2f", float64(r.sys.UpdatesReceived)/k),
				fmt.Sprintf("%.1f", float64(r.sys.BusBytes())/k))
		}
		// Baseline: the identical reference schedule through one
		// shared cache — what coherence overhead is measured against.
		w, err := cohWorkload(t, cores)
		if err != nil {
			return Result{}, err
		}
		merged, _ := w.Interleaved()
		l2 := cohL2()
		h, err := hierarchy.New(hierarchy.Config{L1: cohL1(cache.FetchOnWrite), L2: &l2})
		if err != nil {
			return Result{}, err
		}
		h.AccessTrace(merged)
		h.Flush()
		ls, hs := h.L1().Stats(), h.Stats()
		k := float64(ls.Refs()) / 1000
		tbl.AddRow(t.Name, "shared-L1 (no coherence)",
			stats.FmtPct(ls.MissRate()), "-", "-", "-",
			fmt.Sprintf("%.1f", float64(hs.L1ToL2Bytes)/k))
	}
	return Result{Table: tbl}, nil
}
