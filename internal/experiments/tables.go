package experiments

import (
	"fmt"

	"cachewrite/internal/stats"
)

func init() {
	register("table1", "test program characteristics", 1, table1)
	register("table2", "advantages and disadvantages of write-through and write-back caches", 30, table2)
	register("table3", "hardware requirements for high performance write-back and write-through caches", 95, table3)
}

// table1 regenerates the paper's Table 1 with the characteristics of
// our benchmark stand-ins (scaled-down, but with the same diversity and
// an overall load:store ratio near the paper's 2.4:1).
func table1(e *Env) (Result, error) {
	tbl := &stats.Table{ID: "table1", Title: "Test program characteristics",
		Columns: []string{"program", "dynamic instr.", "data reads", "data writes", "total refs.", "reads/write"},
	}
	var tot struct{ inst, r, w uint64 }
	for _, t := range e.Traces {
		s := t.Stats()
		tbl.AddRow(t.Name, stats.FmtCount(s.Instructions), stats.FmtCount(s.Reads),
			stats.FmtCount(s.Writes), stats.FmtCount(s.Refs()),
			fmt.Sprintf("%.2f", s.LoadStoreRatio()))
		tot.inst += s.Instructions
		tot.r += s.Reads
		tot.w += s.Writes
	}
	ratio := 0.0
	if tot.w > 0 {
		ratio = float64(tot.r) / float64(tot.w)
	}
	tbl.AddRow("total", stats.FmtCount(tot.inst), stats.FmtCount(tot.r),
		stats.FmtCount(tot.w), stats.FmtCount(tot.r+tot.w), fmt.Sprintf("%.2f", ratio))
	return Result{Table: tbl}, nil
}

// table2 reproduces the paper's qualitative comparison of write-through
// and write-back caches (Table 2). It is definitional rather than
// measured; the measured counterparts are Figs 1-2 (traffic) and Fig 5
// (burstiness).
func table2(*Env) (Result, error) {
	tbl := &stats.Table{ID: "table2", Title: "Advantages and disadvantages of write-through and write-back caches",
		Columns: []string{"feature", "write-through", "write-back"},
	}
	tbl.AddRow("traffic", "- more", "+ less")
	tbl.AddRow("additional buffers", "- write buffer needed", "- dirty victim buffer needed")
	tbl.AddRow("ability to handle bursty writes", "- write buffer can overflow", "+ OK unless writes miss with dirty victims")
	tbl.AddRow("single bit soft or hard error safe", "+ with parity", "- only with ECC")
	tbl.AddRow("pipelining", "+ same as loads if direct-mapped", "- doesn't match")
	tbl.AddRow("cycles required per write", "+ 1", "- 1 to 2 (incl. probe)")
	return Result{Table: tbl}, nil
}

// table3 reproduces the paper's Table 3: the surprisingly symmetric
// hardware requirements of high-performance write-back and
// write-through caches (§3.3).
func table3(*Env) (Result, error) {
	tbl := &stats.Table{ID: "table3", Title: "Hardware requirements for high performance write-back and write-through caches",
		Columns: []string{"feature", "write-back", "write-through"},
	}
	tbl.AddRow("exit traffic buffer", "dirty victim register", "write buffer")
	tbl.AddRow("bandwidth improvement", "delayed write register", "write cache")
	tbl.AddRow("other", "cache line dirty bits", "")
	return Result{Table: tbl}, nil
}

// Diagram returns an ASCII rendition of the paper's organization
// figures that carry no data: Fig 3 (pipelines), Fig 4 (delayed write),
// Fig 6 (write cache organization) and Fig 12 (write-miss taxonomy).
// It returns the empty string for unknown ids.
func Diagram(id string) string {
	switch id {
	case "fig3":
		return `FIG3 — Direct-mapped write-through and write-back pipelines
pipestage  load function              write-through$     write-back*
IF         instruction fetch
RF         register fetch
ALU        address calculation
MEM        cache access: read data,   write data         read tags
           read tags                  read tags
WB         write register file                           write data if tags hit
$ also assumes direct-mapped.  * also set-associative write-through.`
	case "fig4":
		return `FIG4 — Delayed write method for write-back caches
 addr from CPU            data from CPU
   |                         |            data to CPU if hit
   |   +---------------------+----------> in last-write register
   |   |  last write addr + comparator |
   |   |  last write data              |
   v   v
 [tags]  [data]   <- separate address lines: probe tag for write N
 direct-mapped       while writing data of write N-1`
	case "fig6":
		return `FIG6 — Write cache organization
 CPU addr/data
      |
 [ data cache (write-through, direct-mapped) ]
      | write misses in data cache but hit in write cache/buffer
      v                        return data if hit
 [ fully-associative write cache: MRU..LRU, 8B lines + tags ]
      | LRU entry on allocation
      v
 [ write buffer ] --> to next lower cache`
	case "fig12":
		return `FIG12 — Write miss alternatives
 fetch-on-write? --yes--> FETCH-ON-WRITE (implies write-allocate)
      |no
 write-allocate? --yes--> WRITE-VALIDATE (needs sub-block valid bits)
      |no
 write-invalidate? --yes--> WRITE-INVALIDATE
      |no
      +--> WRITE-AROUND`
	default:
		return ""
	}
}
