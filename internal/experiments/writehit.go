package experiments

import (
	"fmt"

	"cachewrite/internal/stats"
	"cachewrite/internal/writebuffer"
	"cachewrite/internal/writecache"
)

func init() {
	register("fig1", "write-back vs write-through: % writes to already dirty lines vs line size (8KB)", 10, fig1)
	register("fig2", "write-back vs write-through: % writes to already dirty lines vs cache size (16B lines)", 20, fig2)
	register("fig5", "coalescing write buffer: % writes merged and stall CPI vs retire interval", 50, fig5)
	register("fig7", "write cache: absolute % of writes removed vs entries", 70, fig7)
	register("fig8", "write cache: % of writes removed relative to a 4KB write-back cache", 80, fig8)
	register("fig9", "write cache: relative traffic reduction vs write-back cache size", 90, fig9)
}

// fig1 plots the fraction of writes to already-dirty lines against line
// size for 8KB direct-mapped caches — the write-traffic reduction a
// write-back cache achieves over write-through.
func fig1(e *Env) (Result, error) {
	return writesToDirtySweep(e, "fig1",
		"Write-back vs write-through cache behavior for 8KB caches",
		"line size (B)", LineSizes,
		func(x int) (int, int) { return StdCacheSize, x })
}

// fig2 plots the same metric against cache size for 16B lines.
func fig2(e *Env) (Result, error) {
	return writesToDirtySweep(e, "fig2",
		"Write-back vs write-through cache behavior for 16B lines",
		"cache size (B)", CacheSizes,
		func(x int) (int, int) { return x, StdLineSize })
}

func writesToDirtySweep(e *Env, id, title, xlabel string, xs []int, cfgOf func(x int) (size, line int)) (Result, error) {
	chart := &stats.Chart{ID: id, Title: title, XLabel: xlabel,
		YLabel: "% of writes to already dirty lines", XScale: stats.Log2}
	var perBench []stats.Series
	for ti, t := range e.Traces {
		s := stats.Series{Label: t.Name}
		for _, x := range xs {
			size, line := cfgOf(x)
			cs, err := e.CacheStats(ti, stdConfig(size, line))
			if err != nil {
				return Result{}, err
			}
			s.Point(float64(x), stats.Pct(cs.WritesToDirtyFraction()))
		}
		perBench = append(perBench, s)
		chart.Add(s)
	}
	avg, err := stats.MeanSeries("average", perBench)
	if err != nil {
		return Result{}, err
	}
	chart.Add(avg)
	return Result{Chart: chart}, nil
}

// fig5 reproduces the coalescing-write-buffer study: an 8-entry buffer
// of 16B entries retiring one entry every n cycles, n swept from 0 to
// 48. Results are averaged over the six benchmarks, as in the paper.
// The reference line is the merge rate of a 6-entry write cache with
// the same 16B entries.
func fig5(e *Env) (Result, error) {
	chart := &stats.Chart{ID: "fig5", Title: "Coalescing write buffer merges vs CPI",
		XLabel: "cycles per write retire", YLabel: "% merged / stall CPI", XScale: stats.Linear}
	merged := stats.Series{Label: "% merged by 8-entry write-buffer"}
	cpi := stats.Series{Label: "write buffer full stall CPI"}
	for n := 0; n <= 48; n += 4 {
		var mfrac, stall float64
		for _, t := range e.Traces {
			b, err := writebuffer.New(writebuffer.Config{Entries: 8, LineSize: 16, RetireInterval: n})
			if err != nil {
				return Result{}, err
			}
			b.Run(t)
			mfrac += b.Stats().MergedFraction()
			stall += b.Stats().StallCPI()
		}
		merged.Point(float64(n), stats.Pct(mfrac/float64(len(e.Traces))))
		cpi.Point(float64(n), stall/float64(len(e.Traces)))
	}
	// Reference: a 6-entry write cache with 16B lines never stalls and
	// merges this fraction regardless of retire interval.
	ref := stats.Series{Label: "% merged by 6-entry write cache"}
	var wcFrac float64
	for _, t := range e.Traces {
		wc, err := writecache.New(writecache.Config{Entries: 6, LineSize: 16})
		if err != nil {
			return Result{}, err
		}
		wc.Run(t)
		wcFrac += wc.Stats().RemovedFraction()
	}
	wcFrac /= float64(len(e.Traces))
	for n := 0; n <= 48; n += 4 {
		ref.Point(float64(n), stats.Pct(wcFrac))
	}
	chart.Add(merged)
	chart.Add(ref)
	chart.Add(cpi)
	return Result{Chart: chart}, nil
}

// writeCacheRemoved returns the fraction of writes removed by an
// n-entry write cache with 8B lines on trace ti.
func writeCacheRemoved(e *Env, ti, entries int) (float64, error) {
	wc, err := writecache.New(writecache.Config{Entries: entries, LineSize: 8})
	if err != nil {
		return 0, err
	}
	wc.Run(e.Traces[ti])
	return wc.Stats().RemovedFraction(), nil
}

// fig7 plots the absolute write-traffic reduction of a write cache with
// 0..16 8B entries, per benchmark and averaged.
func fig7(e *Env) (Result, error) {
	chart := &stats.Chart{ID: "fig7", Title: "Write cache absolute traffic reduction",
		XLabel: "write-cache entries", YLabel: "% of all writes removed", XScale: stats.Linear}
	var perBench []stats.Series
	for ti, t := range e.Traces {
		s := stats.Series{Label: t.Name}
		for n := 0; n <= 16; n++ {
			f, err := writeCacheRemoved(e, ti, n)
			if err != nil {
				return Result{}, err
			}
			s.Point(float64(n), stats.Pct(f))
		}
		perBench = append(perBench, s)
		chart.Add(s)
	}
	avg, err := stats.MeanSeries("average", perBench)
	if err != nil {
		return Result{}, err
	}
	chart.Add(avg)
	return Result{Chart: chart}, nil
}

// fig8 plots the write cache's reduction relative to what a 4KB
// direct-mapped write-back cache removes on the same trace.
func fig8(e *Env) (Result, error) {
	chart := &stats.Chart{ID: "fig8", Title: "Write cache traffic reduction relative to a 4KB write-back cache",
		XLabel: "write-cache entries", YLabel: "% of writes removed relative to write-back cache", XScale: stats.Linear}
	var perBench []stats.Series
	for ti, t := range e.Traces {
		wb, err := e.CacheStats(ti, stdConfig(4<<10, StdLineSize))
		if err != nil {
			return Result{}, err
		}
		wbFrac := wb.WritesToDirtyFraction()
		s := stats.Series{Label: t.Name}
		for n := 0; n <= 16; n++ {
			f, err := writeCacheRemoved(e, ti, n)
			if err != nil {
				return Result{}, err
			}
			rel := 0.0
			if wbFrac > 0 {
				rel = f / wbFrac
			}
			s.Point(float64(n), stats.Pct(rel))
		}
		perBench = append(perBench, s)
		chart.Add(s)
	}
	avg, err := stats.MeanSeries("average", perBench)
	if err != nil {
		return Result{}, err
	}
	chart.Add(avg)
	return Result{Chart: chart}, nil
}

// fig9 plots, for 1-, 5- and 15-entry write caches, the average
// reduction relative to direct-mapped write-back caches of 1KB to 64KB.
func fig9(e *Env) (Result, error) {
	chart := &stats.Chart{ID: "fig9", Title: "Relative traffic reduction of a write cache vs write-back cache size",
		XLabel: "write-back cache size (B)", YLabel: "relative % of all writes removed", XScale: stats.Log2}
	sizes := CacheSizes[:7] // 1KB..64KB
	for _, entries := range []int{15, 5, 1} {
		s := stats.Series{Label: fmt.Sprintf("%d entry write cache", entries)}
		for _, size := range sizes {
			var rel float64
			for ti := range e.Traces {
				wb, err := e.CacheStats(ti, stdConfig(size, StdLineSize))
				if err != nil {
					return Result{}, err
				}
				f, err := writeCacheRemoved(e, ti, entries)
				if err != nil {
					return Result{}, err
				}
				if wbFrac := wb.WritesToDirtyFraction(); wbFrac > 0 {
					rel += f / wbFrac
				}
			}
			s.Point(kb(size), stats.Pct(rel/float64(len(e.Traces))))
		}
		chart.Add(s)
	}
	return Result{Chart: chart}, nil
}
