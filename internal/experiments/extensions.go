package experiments

import (
	"fmt"

	"cachewrite/internal/burst"
	"cachewrite/internal/bus"
	"cachewrite/internal/cache"
	"cachewrite/internal/faults"
	"cachewrite/internal/hierarchy"
	"cachewrite/internal/pipeline"
	"cachewrite/internal/reuse"
	"cachewrite/internal/stats"
	"cachewrite/internal/synth"
	"cachewrite/internal/timing"
	"cachewrite/internal/writebuffer"
	"cachewrite/internal/writecache"
)

func init() {
	register("ext-cpi", "EXTENSION: store-pipeline CPI breakdown per organization (quantifies Table 2's cycles-per-write row)", 300, extCPI)
	register("ext-burst", "EXTENSION: burstiness of writes and dirty victims (the study §5.2 calls for)", 310, extBurst)
	register("ext-victim", "EXTENSION: write cache with victim-cache functionality (§3.2's merged structure)", 320, extVictim)
	register("ext-perf", "EXTENSION: timing model — CPI per write-miss policy (the latency view of Figs 13-16)", 330, extPerf)
	register("ext-reuse", "EXTENSION: write reuse-distance profile — analytical prediction of Figs 1-2", 340, extReuse)
	register("ext-bus", "EXTENSION: back-side port occupancy and write/fetch bandwidth ratio (§5.2's sizing question)", 350, extBus)
	register("ext-faults", "EXTENSION: fault injection — the §3 parity-vs-ECC error-tolerance argument, measured", 360, extFaults)
	register("ext-switch", "EXTENSION: context-switch (multiprogramming) impact on write locality", 370, extSwitch)
	register("ext-warm", "EXTENSION: cold-stop vs flush-stop vs Emer warm-start accounting (§5 methodology)", 380, extWarm)
	register("ext-l2policy", "EXTENSION: second-level write policies (the Przybylski gap §1 notes)", 390, extL2Policy)
}

// extCPI evaluates the three store-pipeline organizations of §3/Fig 3
// on every benchmark: miss stalls, store interlocks, delayed-write
// drains and write-buffer stalls, composed into CPI.
func extCPI(e *Env) (Result, error) {
	tbl := &stats.Table{ID: "ext-cpi",
		Title:   "Store pipeline organizations: CPI breakdown (miss penalty 10, write buffer 8x16B, retire 8)",
		Columns: []string{"benchmark", "organization", "store cost (cyc/store)", "interlock CPI", "wbuf CPI", "miss CPI", "total CPI"},
	}
	wbuf := &writebuffer.Config{Entries: 8, LineSize: 16, RetireInterval: 8}
	for _, t := range e.Traces {
		for _, org := range pipeline.Organizations() {
			cc := stdConfig(StdCacheSize, StdLineSize)
			if org == pipeline.DirectMappedWriteThrough {
				cc.WriteHit = cache.WriteThrough
			}
			s, err := pipeline.Evaluate(pipeline.Config{
				Org: org, Cache: cc, MissPenalty: 10, WriteBuffer: wbuf,
			}, t)
			if err != nil {
				return Result{}, err
			}
			inst := float64(s.Instructions)
			tbl.AddRow(t.Name, org.String(),
				fmt.Sprintf("%.3f", s.StoreCost()),
				fmt.Sprintf("%.4f", float64(s.InterlockStalls+s.DrainStalls)/inst),
				fmt.Sprintf("%.4f", float64(s.WriteBufferStalls)/inst),
				fmt.Sprintf("%.4f", float64(s.MissStalls)/inst),
				fmt.Sprintf("%.3f", s.CPI()))
		}
	}
	return Result{Table: tbl}, nil
}

// extBurst measures write and dirty-victim burstiness per benchmark at
// the paper's standard geometry — the quantitative answer to §5.2's
// closing question about write-back port sizing.
func extBurst(e *Env) (Result, error) {
	tbl := &stats.Table{ID: "ext-burst",
		Title:   "Burstiness of writes and dirty victims (8KB/16B WB cache; gap 2, window 64 instructions)",
		Columns: []string{"benchmark", "writes", "max write burst", "write peak/avg", "dirty victims", "max victim burst", "victim peak/avg", "victim buffer depth"},
	}
	for _, t := range e.Traces {
		wr, err := burst.AnalyzeWrites(t, 2, 64)
		if err != nil {
			return Result{}, err
		}
		vr, err := burst.AnalyzeVictims(t, stdConfig(StdCacheSize, StdLineSize), 2, 64)
		if err != nil {
			return Result{}, err
		}
		tbl.AddRow(t.Name,
			fmt.Sprint(wr.Writes),
			fmt.Sprint(wr.MaxBurst),
			fmt.Sprintf("%.1f", wr.PeakToAvg()),
			fmt.Sprint(vr.DirtyVictims),
			fmt.Sprint(vr.MaxBurst),
			fmt.Sprintf("%.1f", vr.PeakToAvg()),
			fmt.Sprint(vr.MaxPending))
	}
	return Result{Table: tbl}, nil
}

// extVictim measures the merged write/victim cache (§3.2's closing
// remark, Fig 6): per benchmark, how many L1 refills the victim-mode
// write cache captures and how much L1->L2 traffic that saves relative
// to the plain write-cache configuration.
func extVictim(e *Env) (Result, error) {
	tbl := &stats.Table{ID: "ext-victim",
		Title:   "Write cache with victim-cache functionality (8KB/16B WT L1, 8-entry write cache with 16B lines)",
		Columns: []string{"benchmark", "L1 fetches", "victim hits", "hit rate", "L1->L2 tx (plain)", "L1->L2 tx (victim)", "traffic saved"},
	}
	for _, t := range e.Traces {
		l1 := stdConfig(StdCacheSize, StdLineSize)
		l1.WriteHit = cache.WriteThrough
		wc := &writecache.Config{Entries: 8, LineSize: StdLineSize}

		plain, err := hierarchy.New(hierarchy.Config{L1: l1, WriteCache: wc})
		if err != nil {
			return Result{}, err
		}
		plain.AccessTrace(t)

		victim, err := hierarchy.New(hierarchy.Config{L1: l1, WriteCache: wc, VictimMode: true})
		if err != nil {
			return Result{}, err
		}
		victim.AccessTrace(t)

		pTx := plain.Stats().L1ToL2Transactions
		vTx := victim.Stats().L1ToL2Transactions
		fetches := victim.L1().Stats().Fetches
		hits := victim.Stats().VictimHits
		saved := 0.0
		if pTx > 0 {
			saved = 1 - float64(vTx)/float64(pTx)
		}
		hitRate := 0.0
		if fetches > 0 {
			hitRate = float64(hits) / float64(fetches)
		}
		tbl.AddRow(t.Name,
			fmt.Sprint(fetches),
			fmt.Sprint(hits),
			stats.FmtPct(hitRate),
			fmt.Sprint(pTx),
			fmt.Sprint(vTx),
			stats.FmtPct(saved))
	}
	return Result{Table: tbl}, nil
}

// extPerf runs the timing model: estimated CPI per write-miss policy on
// every benchmark — the latency consequence of the taxonomy, which the
// miss-count figures (13-16) can only imply. Latencies: 10-cycle
// fetch, 6-cycle write retire/write-back, 4-entry write buffer,
// 1-entry dirty-victim buffer.
func extPerf(e *Env) (Result, error) {
	tbl := &stats.Table{ID: "ext-perf",
		Title:   "Timing model: CPI per write-miss policy (8KB/16B L1, 10-cycle fetch)",
		Columns: []string{"benchmark", "fetch-on-write", "write-validate", "write-around", "write-invalidate", "WV speedup"},
	}
	order := []cache.WriteMissPolicy{cache.FetchOnWrite, cache.WriteValidate, cache.WriteAround, cache.WriteInvalidate}
	for _, t := range e.Traces {
		row := []string{t.Name}
		var fow, wv float64
		for _, p := range order {
			hit := cache.WriteBack
			if p == cache.WriteAround || p == cache.WriteInvalidate {
				hit = cache.WriteThrough
			}
			cfg := timing.Config{
				L1: cache.Config{Size: StdCacheSize, LineSize: StdLineSize, Assoc: 1,
					WriteHit: hit, WriteMiss: p},
				FetchLatency:        10,
				WriteBufferEntries:  4,
				WriteRetire:         6,
				VictimBufferEntries: 1,
				WritebackCycles:     6,
			}
			s, err := timing.Evaluate(cfg, t)
			if err != nil {
				return Result{}, err
			}
			row = append(row, fmt.Sprintf("%.3f", s.CPI()))
			switch p {
			case cache.FetchOnWrite:
				fow = s.CPI()
			case cache.WriteValidate:
				wv = s.CPI()
			}
		}
		row = append(row, fmt.Sprintf("%.2fx", fow/wv))
		tbl.AddRow(row...)
	}
	return Result{Table: tbl}, nil
}

// extReuse profiles write reuse distances (the analytical counterpart
// of Figs 1-2): one pass predicts the writes-to-dirty fraction of a
// fully-associative LRU cache at every capacity; comparing with the
// measured direct-mapped values isolates how much mapping conflicts
// cost each benchmark.
func extReuse(e *Env) (Result, error) {
	tbl := &stats.Table{ID: "ext-reuse",
		Title:   "Write reuse-distance profile (16B lines): predicted fully-associative vs measured direct-mapped writes-to-dirty",
		Columns: []string{"benchmark", "cold writes", "mean depth", "pred 1KB", "meas 1KB", "pred 8KB", "meas 8KB", "pred 64KB", "meas 64KB"},
	}
	for ti, t := range e.Traces {
		p, err := reuse.Analyze(t, StdLineSize)
		if err != nil {
			return Result{}, err
		}
		row := []string{t.Name,
			stats.FmtPct(float64(p.Cold) / float64(p.Writes)),
			fmt.Sprintf("%.0f", p.MeanDepth()),
		}
		for _, size := range []int{1 << 10, 8 << 10, 64 << 10} {
			lines := size / StdLineSize
			cs, err := e.CacheStats(ti, stdConfig(size, StdLineSize))
			if err != nil {
				return Result{}, err
			}
			row = append(row,
				stats.FmtPct(p.PredictDirtyFraction(lines)),
				stats.FmtPct(cs.WritesToDirtyFraction()))
		}
		tbl.AddRow(row...)
	}
	return Result{Table: tbl}, nil
}

// extBus answers §5.2's port-sizing questions with the bus model: the
// write-direction bandwidth requirement relative to the fetch
// direction (the paper's "about half"), and how much sub-block dirty
// bits shrink it, per benchmark at the standard geometry with an
// 8-byte port.
func extBus(e *Env) (Result, error) {
	tbl := &stats.Table{ID: "ext-bus",
		Title:   "Back-side port occupancy (8B port, 1-cycle overhead; 8KB/16B write-back L1)",
		Columns: []string{"benchmark", "fetch cyc/instr", "write cyc/instr", "write/fetch", "write/fetch (sub-block)"},
	}
	var ratios, subRatios float64
	for ti, t := range e.Traces {
		cc := stdConfig(StdCacheSize, StdLineSize)
		cs, err := e.CacheStats(ti, cc)
		if err != nil {
			return Result{}, err
		}
		full, err := bus.FromStats(bus.Config{WidthBytes: 8, OverheadCycles: 1}, cc, cs)
		if err != nil {
			return Result{}, err
		}
		sub, err := bus.FromStats(bus.Config{WidthBytes: 8, OverheadCycles: 1, SubblockWriteback: true}, cc, cs)
		if err != nil {
			return Result{}, err
		}
		ratios += full.WriteToFetchRatio()
		subRatios += sub.WriteToFetchRatio()
		tbl.AddRow(t.Name,
			fmt.Sprintf("%.4f", full.FetchPerInstr()),
			fmt.Sprintf("%.4f", full.WritePerInstr()),
			fmt.Sprintf("%.2f", full.WriteToFetchRatio()),
			fmt.Sprintf("%.2f", sub.WriteToFetchRatio()))
	}
	n := float64(len(e.Traces))
	tbl.AddRow("average", "", "", fmt.Sprintf("%.2f", ratios/n), fmt.Sprintf("%.2f", subRatios/n))
	return Result{Table: tbl}, nil
}

// extFaults quantifies §3's error-tolerance dimension by injecting
// single-bit upsets during trace replay: write-through + byte parity
// recovers everything by refetch; write-back + parity loses dirty
// data; write-back + ECC corrects singles but still loses dirty
// double-bit words — at 50% more check-bit overhead.
func extFaults(e *Env) (Result, error) {
	tbl := &stats.Table{ID: "ext-faults",
		Title:   "Fault injection (one upset per 200 accesses, 8KB/16B): recovery by organization",
		Columns: []string{"benchmark", "WT+parity losses", "WB+parity losses", "WB+ECC losses", "WB+ECC corrected", "injected (WB)"},
	}
	for _, t := range e.Traces {
		wt := stdConfig(StdCacheSize, StdLineSize)
		wt.WriteHit = cache.WriteThrough
		wb := stdConfig(StdCacheSize, StdLineSize)

		wtRep, err := faults.Inject(faults.Config{Cache: wt, Scheme: faults.ByteParity, ErrorEvery: 200}, t)
		if err != nil {
			return Result{}, err
		}
		wbPar, err := faults.Inject(faults.Config{Cache: wb, Scheme: faults.ByteParity, ErrorEvery: 200}, t)
		if err != nil {
			return Result{}, err
		}
		wbECC, err := faults.Inject(faults.Config{Cache: wb, Scheme: faults.WordSECECC, ErrorEvery: 200}, t)
		if err != nil {
			return Result{}, err
		}
		tbl.AddRow(t.Name,
			fmt.Sprint(wtRep.DataLoss),
			fmt.Sprint(wbPar.DataLoss),
			fmt.Sprint(wbECC.DataLoss),
			fmt.Sprint(wbECC.CorrectedInPlace),
			fmt.Sprint(wbECC.Injected))
	}
	return Result{Table: tbl}, nil
}

// extSwitch measures the effect of multiprogramming context switches
// (explicitly outside the paper's scope, §2) on the paper's central
// write-hit metric: the six benchmarks are round-robin interleaved at
// several quanta, and the writes-to-dirty fraction of the standard
// cache is compared with the benchmarks run in isolation.
func extSwitch(e *Env) (Result, error) {
	tbl := &stats.Table{ID: "ext-switch",
		Title:   "Context switching: writes-to-dirty % of the 8KB/16B write-back cache under round-robin multiprogramming",
		Columns: []string{"schedule", "writes to dirty lines", "miss rate"},
	}
	// Baseline: weighted aggregate of isolated runs.
	var agg cache.Stats
	for ti := range e.Traces {
		cs, err := e.CacheStats(ti, stdConfig(StdCacheSize, StdLineSize))
		if err != nil {
			return Result{}, err
		}
		agg.Add(cs)
	}
	tbl.AddRow("isolated (no switching)", stats.FmtPct(agg.WritesToDirtyFraction()), stats.FmtPct(agg.MissRate()))

	for _, quantum := range []uint64{100_000, 10_000, 1_000} {
		mixed, err := synth.RoundRobin("mix", quantum, e.Traces...)
		if err != nil {
			return Result{}, err
		}
		c, err := cache.New(stdConfig(StdCacheSize, StdLineSize))
		if err != nil {
			return Result{}, err
		}
		c.AccessTrace(mixed)
		s := c.Stats()
		tbl.AddRow(fmt.Sprintf("quantum %d instructions", quantum),
			stats.FmtPct(s.WritesToDirtyFraction()), stats.FmtPct(s.MissRate()))
	}
	return Result{Table: tbl}, nil
}

// extWarm compares the three §5 methodologies for end-of-simulation
// write-back accounting side by side: cold stop, flush stop, and the
// warm start the paper attributes to Emer ("it is probably best if the
// same program is run twice. The first execution will give the final
// percentage of dirty lines remaining. The second execution can start
// with the percentage of dirty lines left by the first execution").
func extWarm(e *Env) (Result, error) {
	tbl := &stats.Table{ID: "ext-warm",
		Title:   "End-of-run accounting methodologies (64KB/16B WB, where cold-stop distortion bites): % victims dirty",
		Columns: []string{"benchmark", "cold stop", "flush stop", "warm start", "resident dirty at end"},
	}
	// 64KB: large enough that several benchmarks end with most of their
	// writes still resident (the paper's liver/yacc anomaly).
	cfg := stdConfig(64<<10, StdLineSize)
	lines := cfg.Size / cfg.LineSize
	for _, t := range e.Traces {
		// First run: measure the residual state.
		first, err := cache.New(cfg)
		if err != nil {
			return Result{}, err
		}
		first.AccessTrace(t)
		fracValid := float64(first.ResidentLines()) / float64(lines)
		fracDirty := 0.0
		if first.ResidentLines() > 0 {
			fracDirty = float64(first.DirtyLines()) / float64(first.ResidentLines())
		}
		s1 := first.Stats()
		first.Flush()
		flushed := first.Stats()

		// Second run: seeded with the first run's residual fractions.
		second, err := cache.New(cfg)
		if err != nil {
			return Result{}, err
		}
		if err := second.SeedDirty(fracValid, fracDirty, 0x3a11); err != nil {
			return Result{}, err
		}
		second.AccessTrace(t)
		warm := second.Stats()

		tbl.AddRow(t.Name,
			stats.FmtPct(s1.DirtyVictimFraction()),
			stats.FmtPct(flushed.DirtyVictimFractionFlushed()),
			stats.FmtPct(warm.DirtyVictimFraction()),
			stats.FmtPct(fracValid*fracDirty))
	}
	return Result{Table: tbl}, nil
}

// extL2Policy addresses the gap §1 notes in Przybylski's work ("only
// considers the case of write-back caches at all levels"): with the L1
// fixed at the paper's standard configuration, the L2's write policies
// are swept and the traffic into memory compared. Averaged over the
// benchmarks; 64KB 4-way 64B-line L2 (small enough that L2 write
// misses actually occur on returning L1 victims).
func extL2Policy(e *Env) (Result, error) {
	tbl := &stats.Table{ID: "ext-l2policy",
		Title:   "Second-level write policies (8KB/16B WB+FOW L1; 64KB/64B 4-way L2): average traffic per 1000 instructions",
		Columns: []string{"L2 policy", "L1->L2 tx", "L2->mem tx", "L2->mem bytes"},
	}
	type combo struct {
		name string
		hit  cache.WriteHitPolicy
		miss cache.WriteMissPolicy
	}
	combos := []combo{
		{"write-through + fetch-on-write", cache.WriteThrough, cache.FetchOnWrite},
		{"write-through + write-around", cache.WriteThrough, cache.WriteAround},
		{"write-back + fetch-on-write", cache.WriteBack, cache.FetchOnWrite},
		{"write-back + write-validate", cache.WriteBack, cache.WriteValidate},
	}
	for _, cb := range combos {
		var l12, l2m, l2b, instr float64
		for _, t := range e.Traces {
			l2 := cache.Config{Size: 64 << 10, LineSize: 64, Assoc: 4,
				WriteHit: cb.hit, WriteMiss: cb.miss}
			h, err := hierarchy.New(hierarchy.Config{
				L1: stdConfig(StdCacheSize, StdLineSize),
				L2: &l2,
			})
			if err != nil {
				return Result{}, err
			}
			h.AccessTrace(t)
			h.Flush()
			hs := h.Stats()
			l12 += float64(hs.L1ToL2Transactions)
			l2m += float64(hs.L2ToMemTransactions)
			l2b += float64(hs.L2ToMemBytes)
			instr += float64(h.L1().Stats().Instructions)
		}
		k := instr / 1000
		tbl.AddRow(cb.name,
			fmt.Sprintf("%.2f", l12/k),
			fmt.Sprintf("%.2f", l2m/k),
			fmt.Sprintf("%.1f", l2b/k))
	}
	return Result{Table: tbl}, nil
}
