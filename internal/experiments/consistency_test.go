package experiments

import (
	"math"
	"testing"

	"cachewrite/internal/stats"
)

// These tests pin the figure runners to the underlying simulator: every
// plotted point must equal the value computed directly from CacheStats,
// so a refactor of a runner cannot silently change what a figure means.

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFig2PointsMatchDirectComputation(t *testing.T) {
	env := syntheticEnv()
	res, err := Run(env, "fig2")
	if err != nil {
		t.Fatal(err)
	}
	for ti, tr := range env.Traces {
		series := res.Chart.Find(tr.Name)
		for _, size := range CacheSizes {
			cs, err := env.CacheStats(ti, stdConfig(size, StdLineSize))
			if err != nil {
				t.Fatal(err)
			}
			want := stats.Pct(cs.WritesToDirtyFraction())
			if got := series.YAt(float64(size)); !almost(got, want) {
				t.Errorf("%s fig2 @%d: plotted %v, direct %v", tr.Name, size, got, want)
			}
		}
	}
}

func TestFig10PointsMatchDirectComputation(t *testing.T) {
	env := syntheticEnv()
	res, err := Run(env, "fig10")
	if err != nil {
		t.Fatal(err)
	}
	for ti, tr := range env.Traces {
		series := res.Chart.Find(tr.Name)
		for _, size := range CacheSizes {
			cs, err := env.CacheStats(ti, stdConfig(size, StdLineSize))
			if err != nil {
				t.Fatal(err)
			}
			want := stats.Pct(cs.WriteMissFraction())
			if got := series.YAt(float64(size)); !almost(got, want) {
				t.Errorf("%s fig10 @%d: plotted %v, direct %v", tr.Name, size, got, want)
			}
		}
	}
}

func TestFig18PointsMatchDirectComputation(t *testing.T) {
	env := syntheticEnv()
	res, err := Run(env, "fig18")
	if err != nil {
		t.Fatal(err)
	}
	wb := res.Chart.Find("write-back")
	wt := res.Chart.Find("write-through")
	for _, size := range CacheSizes {
		var wbWant, wtWant float64
		for ti := range env.Traces {
			cs, err := env.CacheStats(ti, stdConfig(size, StdLineSize))
			if err != nil {
				t.Fatal(err)
			}
			inst := float64(cs.Instructions)
			wbWant += (float64(cs.Misses()) + float64(cs.Writebacks) + float64(cs.FlushWritebacks)) / inst
			wtWant += (float64(cs.Misses()) + float64(cs.Writes)) / inst
		}
		n := float64(len(env.Traces))
		if got := wb.YAt(float64(size)); !almost(got, wbWant/n) {
			t.Errorf("fig18 write-back @%d: plotted %v, direct %v", size, got, wbWant/n)
		}
		if got := wt.YAt(float64(size)); !almost(got, wtWant/n) {
			t.Errorf("fig18 write-through @%d: plotted %v, direct %v", size, got, wtWant/n)
		}
	}
}

func TestFig14AverageIsMeanOfBenchmarks(t *testing.T) {
	env := syntheticEnv()
	res, err := Run(env, "fig14")
	if err != nil {
		t.Fatal(err)
	}
	avg := res.Chart.Find("average/write-validate")
	for _, size := range CacheSizes {
		var sum float64
		for _, tr := range env.Traces {
			sum += res.Chart.Find(tr.Name + "/write-validate").YAt(float64(size))
		}
		if got := avg.YAt(float64(size)); !almost(got, sum/float64(len(env.Traces))) {
			t.Errorf("fig14 average @%d: %v vs mean %v", size, got, sum/float64(len(env.Traces)))
		}
	}
}

func TestFig22IsFlushStopProduct(t *testing.T) {
	// Fig 22 is defined as dirty bytes over all victim bytes (flush
	// included); cross-check against fig20/fig21-style components for
	// one benchmark and size.
	env := syntheticEnv()
	cs, err := env.CacheStats(0, stdConfig(8<<10, StdLineSize))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(env, "fig22")
	if err != nil {
		t.Fatal(err)
	}
	got := res.Chart.Find(env.Traces[0].Name).YAt(8 << 10)
	want := stats.Pct(cs.DirtyBytesPerVictim())
	if !almost(got, want) {
		t.Errorf("fig22 = %v, direct %v", got, want)
	}
}
