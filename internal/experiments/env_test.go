package experiments

import (
	"context"
	"sync"
	"testing"

	"cachewrite/internal/cache"
)

// TestCacheStatsComputeOnceConcurrent hammers the memo from many
// goroutines (run under -race by `make check`) and asserts the
// misses-once contract: every distinct key is simulated exactly once,
// no matter how many callers race on it, and every caller sees the
// identical result.
func TestCacheStatsComputeOnceConcurrent(t *testing.T) {
	env := syntheticEnv()
	keys := []struct {
		ti  int
		cfg cache.Config
	}{
		{0, stdConfig(1<<10, StdLineSize)},
		{0, stdConfig(2<<10, StdLineSize)},
		{1, stdConfig(1<<10, StdLineSize)},
		{1, stdConfig(StdCacheSize, 32)},
	}
	want := make([]cache.Stats, len(keys))
	fresh := syntheticEnv()
	for i, k := range keys {
		s, err := fresh.CacheStats(k.ti, k.cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				k := keys[(g+i)%len(keys)]
				s, err := env.CacheStats(k.ti, k.cfg)
				if err != nil {
					errs <- err
					return
				}
				if s != want[(g+i)%len(keys)] {
					t.Errorf("concurrent CacheStats returned a divergent result for %s", k.cfg)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := env.Computes(); got != uint64(len(keys)) {
		t.Fatalf("memo computed %d simulations for %d distinct keys (misses-once violated)", got, len(keys))
	}
}

// TestCacheStatsMemoizedErrors: a failing key is also computed once and
// every caller sees the same error.
func TestCacheStatsMemoizedErrors(t *testing.T) {
	env := syntheticEnv()
	bad := cache.Config{Size: 7}
	if _, err := env.CacheStats(0, bad); err == nil {
		t.Fatal("invalid config succeeded")
	}
	if _, err := env.CacheStats(0, bad); err == nil {
		t.Fatal("memoized invalid config succeeded")
	}
	if got := env.Computes(); got != 1 {
		t.Fatalf("failing key computed %d times, want 1", got)
	}
}

// TestPrecomputeGangGoldenEquality is the golden-equality gate for the
// gang engine through the Env path: after a gang-driven Precompute,
// every sweep key must be memoized bit-identically to what a fresh
// sequential simulation produces, for every write-hit/write-miss combo
// in the paper sweep — and the precomputed env must not simulate again
// when the figures read those keys back.
func TestPrecomputeGangGoldenEquality(t *testing.T) {
	env := syntheticEnv()
	if err := env.Precompute(4); err != nil {
		t.Fatal(err)
	}
	preComputes := env.Computes()
	if preComputes != 0 {
		t.Fatalf("gang precompute used the sequential path %d times", preComputes)
	}
	fresh := syntheticEnv()
	for ti := range env.Traces {
		for _, cfg := range SweepConfigs() {
			a, err := env.CacheStats(ti, cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fresh.CacheStats(ti, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("gang-precomputed stats differ from sequential for %s on trace %d", cfg, ti)
			}
		}
	}
	if got := env.Computes(); got != 0 {
		t.Fatalf("CacheStats re-simulated %d precomputed keys", got)
	}
}

// TestPrecomputeCancelled: a cancelled context aborts the warmup with
// its error instead of hanging (the old channel-fed pool could strand
// its producer forever).
func TestPrecomputeCancelled(t *testing.T) {
	env := syntheticEnv()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := env.PrecomputeContext(ctx, 2); err == nil {
		t.Fatal("PrecomputeContext(cancelled) returned nil")
	}
}
