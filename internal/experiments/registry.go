package experiments

import (
	"fmt"
	"sort"

	"cachewrite/internal/stats"
)

// Result is the outcome of one experiment: a chart, a table, or both
// (Fig 17 produces a table of ordering checks).
type Result struct {
	Chart *stats.Chart
	Table *stats.Table
}

// Runner regenerates one paper figure or table.
type Runner func(e *Env) (Result, error)

// entry pairs a runner with its description for listings.
type entry struct {
	id    string
	desc  string
	order int
	run   Runner
}

var registry = map[string]entry{}

func register(id, desc string, order int, run Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = entry{id: id, desc: desc, order: order, run: run}
}

// IDs returns all experiment ids in paper order.
func IDs() []string {
	es := make([]entry, 0, len(registry))
	//simlint:allow determinism entries are sorted by paper order two lines down
	for _, e := range registry {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].order < es[j].order })
	ids := make([]string, len(es))
	for i, e := range es {
		ids[i] = e.id
	}
	return ids
}

// Describe returns the one-line description of an experiment.
func Describe(id string) (string, error) {
	e, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown id %q", id)
	}
	return e.desc, nil
}

// Run executes the experiment with the given id.
func Run(env *Env, id string) (Result, error) {
	e, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return e.run(env)
}
